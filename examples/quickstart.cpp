// Quickstart: the complete G-Store pipeline in one file.
//
//   1. generate a Graph500 Kronecker graph,
//   2. convert it to the space-efficient tile store on disk,
//   3. run BFS and PageRank through the slide-cache-rewind engine,
//   4. print what happened.
//
//   ./quickstart --scale=16 --edge-factor=8 --memory-mb=16
#include <cstdio>

#include "algo/bfs.h"
#include "algo/pagerank.h"
#include "graph/generator.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/tile_file.h"
#include "util/options.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("scale", "16", "log2 of the vertex count");
  opts.add("edge-factor", "8", "edges per vertex");
  opts.add("memory-mb", "16", "streaming+caching memory budget (MiB)");
  opts.add("root", "1", "BFS root vertex");
  opts.parse(argc, argv);
  if (opts.help_requested()) {
    std::fputs(opts.usage("quickstart").c_str(), stdout);
    return 0;
  }

  const unsigned scale = static_cast<unsigned>(opts.get_int("scale"));
  const unsigned ef = static_cast<unsigned>(opts.get_int("edge-factor"));

  std::printf("== G-Store quickstart ==\n");
  std::printf("generating Kron-%u-%u (undirected)...\n", scale, ef);
  Timer gen_timer;
  auto el = graph::kronecker(scale, ef, graph::GraphKind::kUndirected);
  std::printf("  %u vertices, %llu edges  (%.2fs)\n", el.vertex_count(),
              static_cast<unsigned long long>(el.edge_count()),
              gen_timer.seconds());

  io::TempDir dir("gstore-quickstart");
  std::printf("converting to tile store (symmetry + SNB)...\n");
  Timer conv_timer;
  const auto cs = tile::convert_to_tiles(el, dir.file("kron"));
  auto store = tile::TileStore::open(dir.file("kron"));
  std::printf("  %llu tiles, %llu stored edges, %.1f MiB on disk  (%.2fs)\n",
              static_cast<unsigned long long>(cs.tile_count),
              static_cast<unsigned long long>(cs.stored_edges),
              store.storage_bytes() / double(1 << 20), conv_timer.seconds());
  std::printf("  vs %.1f MiB as a raw edge list — %.1fx smaller\n",
              el.storage_bytes() / double(1 << 20),
              double(el.storage_bytes()) / store.storage_bytes());

  store::EngineConfig cfg;
  cfg.stream_memory_bytes = static_cast<std::uint64_t>(opts.get_int("memory-mb"))
                            << 20;
  cfg.segment_bytes = cfg.stream_memory_bytes / 8;

  {
    algo::TileBfs bfs(static_cast<graph::vid_t>(opts.get_int("root")));
    store::ScrEngine engine(store, cfg);
    Timer t;
    const auto stats = engine.run(bfs);
    std::printf("BFS:      %.3fs, %u levels, %llu vertices visited, "
                "%.1f MiB read, %llu tiles from cache\n",
                t.seconds(), bfs.max_depth(),
                static_cast<unsigned long long>(bfs.visited_count()),
                stats.bytes_read / double(1 << 20),
                static_cast<unsigned long long>(stats.tiles_from_cache));
  }
  {
    algo::TilePageRank pr(algo::PageRankOptions{0.85, 10, 1e-6});
    store::ScrEngine engine(store, cfg);
    Timer t;
    const auto stats = engine.run(pr);
    float max_rank = 0;
    graph::vid_t argmax = 0;
    for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
      if (pr.ranks()[v] > max_rank) {
        max_rank = pr.ranks()[v];
        argmax = v;
      }
    std::printf("PageRank: %.3fs, %u iterations, top vertex %u (rank %.2e), "
                "%.1f MiB read\n",
                t.seconds(), pr.iterations_run(), argmax, max_rank,
                stats.bytes_read / double(1 << 20));
  }
  std::printf("done.\n");
  return 0;
}
