// Shortest-path routing on a road-like grid network — exercises the SSSP
// extension algorithm (beyond the paper's three evaluated algorithms; the
// paper's §IX plans broader algorithm support).
//
// Builds a rows×cols grid with deterministic pseudo-weights, runs the
// tile-based Bellman-Ford SSSP, and prints travel costs to the corners plus
// the frontier-driven selective-fetch savings.
//
//   ./route_planner --rows=300 --cols=300
#include <cstdio>

#include "algo/sssp.h"
#include "graph/generator.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/tile_file.h"
#include "util/options.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("rows", "300", "grid rows");
  opts.add("cols", "300", "grid columns");
  opts.parse(argc, argv);
  if (opts.help_requested()) {
    std::fputs(opts.usage("route_planner").c_str(), stdout);
    return 0;
  }

  const auto rows = static_cast<graph::vid_t>(opts.get_int("rows"));
  const auto cols = static_cast<graph::vid_t>(opts.get_int("cols"));
  std::printf("building %ux%u road grid (%u intersections)\n", rows, cols,
              rows * cols);
  auto el = graph::grid(rows, cols);

  io::TempDir dir("gstore-routes");
  tile::ConvertOptions copt;
  copt.tile_bits = 12;  // smaller tiles: road networks have no hub tiles
  tile::convert_to_tiles(el, dir.file("roads"), copt);
  auto store = tile::TileStore::open(dir.file("roads"));

  algo::TileSssp sssp(0);  // from the top-left intersection
  store::ScrEngine engine(store);
  Timer t;
  const auto stats = engine.run(sssp);

  auto at = [&](graph::vid_t r, graph::vid_t c) {
    return sssp.distances()[r * cols + c];
  };
  std::printf("SSSP done in %u iterations (%.3fs)\n", stats.iterations,
              t.seconds());
  std::printf("travel cost from (0,0):\n");
  std::printf("  to (0,%u):    %.1f\n", cols - 1, at(0, cols - 1));
  std::printf("  to (%u,0):    %.1f\n", rows - 1, at(rows - 1, 0));
  std::printf("  to (%u,%u):  %.1f\n", rows - 1, cols - 1,
              at(rows - 1, cols - 1));
  std::printf("  to center:    %.1f\n", at(rows / 2, cols / 2));
  std::printf("selective fetch skipped %llu tile loads across the run\n",
              static_cast<unsigned long long>(stats.tiles_skipped));
  return 0;
}
