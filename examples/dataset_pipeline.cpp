// Real-dataset ingestion pipeline: everything between "I downloaded an edge
// list from SNAP/KONECT" and "G-Store is answering queries on it".
//
//   1. parse a text edge list (here: synthesized to a temp file, standing in
//      for a downloaded dataset),
//   2. normalize (drop self loops / duplicate edges),
//   3. relabel hubs-first (degree order) to concentrate the power-law mass
//      into few tiles — the locality real crawls exhibit,
//   4. convert to the tile store and deep-verify it,
//   5. stripe the data file RAID-0 style across 4 members (the paper's
//      testbed layout),
//   6. run PageRank + WCC on the striped store.
//
//   ./dataset_pipeline --scale=15 --edge-factor=10
#include <cstdio>

#include "algo/cc.h"
#include "algo/pagerank.h"
#include "graph/generator.h"
#include "graph/relabel.h"
#include "graph/text_io.h"
#include "io/file.h"
#include "io/striped.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/grouping.h"
#include "tile/tile_file.h"
#include "tile/verify.h"
#include "util/options.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("scale", "15", "log2 vertex count of the synthesized dataset");
  opts.add("edge-factor", "10", "edges per vertex");
  opts.add("stripes", "4", "RAID-0 members for the tile data");
  opts.parse(argc, argv);
  if (opts.help_requested()) {
    std::fputs(opts.usage("dataset_pipeline").c_str(), stdout);
    return 0;
  }
  const unsigned scale = static_cast<unsigned>(opts.get_int("scale"));
  const unsigned ef = static_cast<unsigned>(opts.get_int("edge-factor"));
  io::TempDir dir("gstore-pipeline");

  // 1. The "downloaded" dataset: a skewed follow graph as a text edge list.
  {
    auto raw = graph::twitter_like(scale, ef, graph::GraphKind::kDirected);
    graph::write_text_edges(dir.file("dataset.txt"), raw);
    std::printf("dataset: %s (%.1f MiB of text)\n", dir.file("dataset.txt").c_str(),
                io::File::file_size(dir.file("dataset.txt")) / double(1 << 20));
  }

  // 2. Parse + normalize.
  Timer t_parse;
  graph::TextReadOptions topt;
  topt.kind = graph::GraphKind::kDirected;
  auto el = graph::read_text_edges(dir.file("dataset.txt"), topt);
  const auto removed = el.normalize();
  std::printf("parsed %u vertices, %llu edges (%llu dups/loops dropped, %.2fs)\n",
              el.vertex_count(), static_cast<unsigned long long>(el.edge_count()),
              static_cast<unsigned long long>(removed), t_parse.seconds());

  // 3. Hubs-first relabeling: show the tile-concentration effect.
  auto count_occupied = [](const graph::EdgeList& g, const io::TempDir& d,
                           const std::string& name) {
    tile::ConvertOptions o;
    o.tile_bits = 10;
    tile::convert_to_tiles(g, d.file(name), o);
    auto s = tile::TileStore::open(d.file(name));
    std::uint64_t occupied = 0;
    for (std::uint64_t k = 0; k < s.grid().tile_count(); ++k)
      if (s.tile_edge_count(k) > 0) ++occupied;
    return occupied;
  };
  auto relabeled = graph::relabel_by_degree(el);
  std::printf("relabeling: %llu occupied tiles as-is → %llu hubs-first\n",
              static_cast<unsigned long long>(count_occupied(el, dir, "asis")),
              static_cast<unsigned long long>(
                  count_occupied(relabeled, dir, "hubs")));

  // 4. Convert the relabeled graph (the "hubs" store) and verify it.
  const auto report = tile::verify_store(dir.file("hubs"));
  std::printf("verify: %s (%llu tiles, %llu edges)\n",
              report.ok ? "OK" : report.problems[0].c_str(),
              static_cast<unsigned long long>(report.tiles_checked),
              static_cast<unsigned long long>(report.edges_checked));
  if (!report.ok) return 1;

  // 5. Stripe the data file RAID-0 style.
  const unsigned stripes = static_cast<unsigned>(opts.get_int("stripes"));
  const std::string tiles = tile::TileStore::tiles_path(dir.file("hubs"));
  io::stripe_file(tiles, tiles, stripes);
  std::printf("striped %s over %u members (64KB stripes)\n", tiles.c_str(),
              stripes);

  // 6. Query the striped store.
  io::DeviceConfig dev;
  dev.stripe_files = stripes;
  auto store = tile::TileStore::open(dir.file("hubs"), dev);
  {
    algo::TilePageRank pr(algo::PageRankOptions{0.85, 10, 1e-6});
    Timer t;
    store::ScrEngine(store).run(pr);
    const auto top =
        std::max_element(pr.ranks().begin(), pr.ranks().end()) - pr.ranks().begin();
    std::printf("pagerank: %.3fs, top vertex %lld (hubs-first relabeling "
                "puts the biggest hub near id 0)\n",
                t.seconds(), static_cast<long long>(top));
  }
  {
    algo::TileWcc wcc;
    Timer t;
    store::ScrEngine(store).run(wcc);
    std::printf("wcc: %.3fs, %llu weakly connected components\n", t.seconds(),
                static_cast<unsigned long long>(wcc.component_count()));
  }
  return 0;
}
