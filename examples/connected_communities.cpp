// Community / component analysis — the biology-network style workload from
// the paper's introduction (finding connected sub-networks in large sparse
// interaction graphs).
//
// Builds a sparse random interaction graph (below the connectivity
// threshold, so it fractures into many components), runs WCC on the tile
// store, and prints the component size distribution.
//
//   ./connected_communities --vertices=200000 --avg-degree=1.2
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "algo/cc.h"
#include "graph/generator.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/tile_file.h"
#include "util/histogram.h"
#include "util/options.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("vertices", "200000", "number of interacting entities");
  opts.add("avg-degree", "1.2", "average interactions per entity");
  opts.parse(argc, argv);
  if (opts.help_requested()) {
    std::fputs(opts.usage("connected_communities").c_str(), stdout);
    return 0;
  }

  const auto n = static_cast<graph::vid_t>(opts.get_int("vertices"));
  const auto m =
      static_cast<std::uint64_t>(opts.get_double("avg-degree") * n / 2);

  std::printf("building sparse interaction network: %u entities, %llu links\n",
              n, static_cast<unsigned long long>(m));
  auto el = graph::uniform_random(n, m, graph::GraphKind::kUndirected);
  el.normalize();

  io::TempDir dir("gstore-communities");
  tile::convert_to_tiles(el, dir.file("net"));
  auto store = tile::TileStore::open(dir.file("net"));

  algo::TileWcc wcc;
  store::ScrEngine engine(store);
  Timer t;
  const auto stats = engine.run(wcc);
  std::printf("WCC converged in %u iterations (%.3fs, %.1f MiB read)\n",
              stats.iterations, t.seconds(), stats.bytes_read / double(1 << 20));

  std::map<graph::vid_t, std::uint64_t> component_size;
  for (graph::vid_t v = 0; v < n; ++v) ++component_size[wcc.labels()[v]];
  std::printf("components found: %llu\n",
              static_cast<unsigned long long>(wcc.component_count()));

  LogHistogram sizes(10);
  std::uint64_t largest = 0;
  for (const auto& [root, size] : component_size) {
    sizes.add(size);
    largest = std::max(largest, size);
  }
  std::printf("largest component: %llu entities (%.1f%% of the network)\n",
              static_cast<unsigned long long>(largest), 100.0 * largest / n);
  std::printf("component size distribution:\n%s", sizes.to_string().c_str());
  return 0;
}
