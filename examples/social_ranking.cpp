// Social-network influencer ranking — the workload class the paper's intro
// motivates (recommendation systems, social networks).
//
// Builds a Twitter-like skewed directed graph, stores only out-edges (the
// paper's directed-graph symmetry saving), runs PageRank on the tile store,
// and reports the top influencers together with their degree — demonstrating
// that rank captures more than raw popularity.
//
//   ./social_ranking --scale=16 --edge-factor=12 --top=10
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/pagerank.h"
#include "graph/generator.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/grouping.h"
#include "tile/tile_file.h"
#include "util/histogram.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("scale", "15", "log2 of the user count");
  opts.add("edge-factor", "12", "follows per user");
  opts.add("top", "10", "how many influencers to print");
  opts.parse(argc, argv);
  if (opts.help_requested()) {
    std::fputs(opts.usage("social_ranking").c_str(), stdout);
    return 0;
  }

  const unsigned scale = static_cast<unsigned>(opts.get_int("scale"));
  const unsigned ef = static_cast<unsigned>(opts.get_int("edge-factor"));

  std::printf("building twitter-like follow graph (scale %u, ~%u follows/user)\n",
              scale, ef);
  auto el = graph::twitter_like(scale, ef, graph::GraphKind::kDirected);
  el.normalize();

  io::TempDir dir("gstore-social");
  tile::ConvertOptions copt;  // directed: out-edges only — half the I/O
  tile::convert_to_tiles(el, dir.file("follows"), copt);
  auto store = tile::TileStore::open(dir.file("follows"));

  // Skew report (the Fig 5 phenomenon on our stand-in data).
  LogHistogram h(10);
  for (std::uint64_t c : tile::tile_edge_counts(store)) h.add(c);
  std::printf("tile occupancy: %llu tiles, %.1f%% empty, largest %llu edges\n",
              static_cast<unsigned long long>(h.total()),
              100.0 * h.zeros() / h.total(),
              static_cast<unsigned long long>(h.max_value()));

  algo::TilePageRank pr(algo::PageRankOptions{0.85, 15, 1e-7});
  store::ScrEngine engine(store);
  engine.run(pr);

  const auto out_deg = el.degrees();
  const auto in_deg = el.in_degrees();
  std::vector<graph::vid_t> order(el.vertex_count());
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v) order[v] = v;
  const int top = static_cast<int>(opts.get_int("top"));
  std::partial_sort(order.begin(), order.begin() + top, order.end(),
                    [&](graph::vid_t a, graph::vid_t b) {
                      return pr.ranks()[a] > pr.ranks()[b];
                    });

  std::printf("\n%-6s %-10s %-12s %-10s %-10s\n", "rank", "user", "pagerank",
              "followers", "follows");
  for (int k = 0; k < top; ++k) {
    const graph::vid_t v = order[k];
    std::printf("%-6d %-10u %-12.3e %-10u %-10u\n", k + 1, v, pr.ranks()[v],
                in_deg[v], out_deg[v]);
  }
  return 0;
}
