// Graph500-style BFS harness: the benchmark the paper's BFS discussion is
// anchored to (it cites Graph500 and reports MTEPS for the trillion-edge
// runs). Runs BFS from several random roots and reports per-root and
// harmonic-mean MTEPS, plus I/O statistics from the SCR engine.
//
//   ./graph500_bfs --scale=18 --edge-factor=16 --roots=8
#include <cstdio>
#include <vector>

#include "algo/bfs.h"
#include "graph/generator.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/tile_file.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("scale", "17", "log2 of the vertex count");
  opts.add("edge-factor", "16", "edges per vertex");
  opts.add("roots", "8", "number of search roots");
  opts.add("memory-mb", "32", "stream+cache memory (MiB)");
  opts.parse(argc, argv);
  if (opts.help_requested()) {
    std::fputs(opts.usage("graph500_bfs").c_str(), stdout);
    return 0;
  }

  const unsigned scale = static_cast<unsigned>(opts.get_int("scale"));
  const unsigned ef = static_cast<unsigned>(opts.get_int("edge-factor"));

  std::printf("Kron-%u-%u: generating + converting...\n", scale, ef);
  auto el = graph::kronecker(scale, ef, graph::GraphKind::kUndirected);
  io::TempDir dir("gstore-g500");
  tile::convert_to_tiles(el, dir.file("g"));
  auto store = tile::TileStore::open(dir.file("g"));
  const auto deg = el.degrees();

  store::EngineConfig cfg;
  cfg.stream_memory_bytes = static_cast<std::uint64_t>(opts.get_int("memory-mb"))
                            << 20;
  cfg.segment_bytes = cfg.stream_memory_bytes / 8;

  Xoshiro256 rng(2016);
  const int roots = static_cast<int>(opts.get_int("roots"));
  double sum_inv_teps = 0;
  int counted = 0;
  std::printf("%-8s %-10s %-12s %-10s %-12s %-10s\n", "root", "time(s)",
              "edges", "levels", "MTEPS", "MiB read");
  for (int k = 0; k < roots; ++k) {
    graph::vid_t root;
    do {
      root = static_cast<graph::vid_t>(rng.next_below(el.vertex_count()));
    } while (deg[root] == 0);

    algo::TileBfs bfs(root);
    store::ScrEngine engine(store, cfg);
    Timer t;
    const auto stats = engine.run(bfs);
    const double secs = t.seconds();
    // Graph500 counts each input edge of the traversed component once.
    std::uint64_t traversed = 0;
    for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
      if (bfs.depth()[v] >= 0) traversed += deg[v];
    traversed /= 2;  // undirected: each edge counted at both endpoints
    const double mteps = traversed / secs / 1e6;
    std::printf("%-8u %-10.3f %-12llu %-10d %-12.1f %-10.1f\n", root, secs,
                static_cast<unsigned long long>(traversed), bfs.max_depth(),
                mteps, stats.bytes_read / double(1 << 20));
    if (traversed > 0) {
      sum_inv_teps += 1.0 / mteps;
      ++counted;
    }
  }
  if (counted > 0)
    std::printf("harmonic-mean MTEPS over %d roots: %.1f\n", counted,
                counted / sum_inv_teps);
  return 0;
}
