// Fuzz target: the WAL replay path plus the writer-open recovery path.
//
// The input bytes are written verbatim as a <base>.wal file — the attacker
// model is a corrupt or malicious log found on disk after a crash. Replay
// must classify it (clean / truncated / corrupt) without crashing, and the
// writer constructor must then recover it into an appendable, frame-aligned
// log whose own replay round-trips.
#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/types.h"
#include "ingest/wal.h"
#include "io/file.h"
#include "util/status.h"

using gstore::ingest::EdgeWal;
using gstore::ingest::WalReplay;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static gstore::io::TempDir* scratch = new gstore::io::TempDir("walfuzz");
  const std::string path = scratch->file("input.wal");

  {
    gstore::io::File f(path, gstore::io::OpenMode::kReadWrite);
    f.truncate(0);
    if (size > 0) f.pwrite_full(data, size, 0);
  }

  try {
    const WalReplay first = EdgeWal::replay(path);

    // Recovery: reopen for writing under the replayed generation (or 0 for
    // an absent/alien log) and append a batch; the combined log must replay
    // to the recovered prefix plus exactly that batch.
    EdgeWal wal(path, first.generation);
    const std::vector<gstore::graph::Edge> batch = {{1, 2}, {3, 4}, {5, 6}};
    wal.append(batch);

    const WalReplay second = EdgeWal::replay(path);
    const std::size_t kept = first.exists ? first.edges.size() : 0;
    if (second.tail != gstore::ingest::WalTail::kClean ||
        second.edges.size() != kept + batch.size())
      __builtin_trap();
    if (kept > 0 &&
        std::memcmp(second.edges.data(), first.edges.data(),
                    kept * sizeof(gstore::graph::Edge)) != 0)
      __builtin_trap();
  } catch (const gstore::Error&) {
    // Rejecting garbled input with a typed error is the correct outcome.
  }
  return 0;
}
