// Fuzz target: FaultSpec::parse — the one untrusted string parser in the
// fault-injection layer (it consumes --fault-spec from the CLI and config
// files). Any input must either parse or be rejected with a typed error;
// an accepted spec must round-trip exactly through to_string()/parse(),
// since gstore_run echoes the printed form back into scripts.
#include <cstddef>
#include <cstdint>
#include <string>

#include "io/fault.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Real specs are tens of bytes; capping keeps number-parsing linear.
  if (size > 4096) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const gstore::io::FaultSpec spec = gstore::io::FaultSpec::parse(text);
    const std::string printed = spec.to_string();
    const gstore::io::FaultSpec again = gstore::io::FaultSpec::parse(printed);
    if (again.to_string() != printed) __builtin_trap();
    if (spec.empty() != again.empty()) __builtin_trap();
  } catch (const gstore::Error&) {
    // Rejecting a garbled spec with a typed error is the correct outcome.
  }
  return 0;
}
