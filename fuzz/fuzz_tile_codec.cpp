// Fuzz target: the v3 tile-payload codecs over arbitrary bytes.
//
// The input is one tile payload (8-byte codec header + body) as it would sit
// in a <base>.tiles file. The contract under test:
//
//   * parse_tile_payload / decompress_tile reject any malformed payload with
//     a typed FormatError — never a crash, a wrapped size computation, or an
//     attacker-sized allocation — and they agree on accept vs reject;
//   * an accepted payload decodes identically through the streaming decoder
//     (TileDecoder, the EdgeBlock hot path) and the scalar oracle
//     (decompress_tile);
//   * whatever edges an accepted payload holds survive a re-encode round
//     trip bit-exactly, through compress_tile's codec pick and through every
//     codec forced individually.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "graph/types.h"
#include "tile/compress.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace gstore;
  const std::span<const std::uint8_t> payload(data, size);

  tile::TileCodecInfo info;
  try {
    info = tile::parse_tile_payload(payload);
  } catch (const FormatError&) {
    // Header rejected: the full decode must reject too, not limp through.
    try {
      (void)tile::decompress_tile(payload);
      std::abort();
    } catch (const FormatError&) {
    }
    return 0;
  }

  // Keep execs fast: a few run-encoded bytes can legally declare millions of
  // edges. Real tiles this size exist, but decoding them adds nothing per
  // input; the cross-checks below cover the loops at every count.
  if (info.edge_count > (1u << 16)) return 0;

  std::vector<tile::SnbEdge> oracle;
  try {
    oracle = tile::decompress_tile(payload);
  } catch (const FormatError&) {
    // Body rejected after a valid header: the streaming decoder must agree.
    try {
      tile::TileDecoder dec(info);
      graph::vid_t s[512], d[512];
      while (dec.decode(s, d, 512, 0, 0) > 0) {
      }
      std::abort();
    } catch (const FormatError&) {
    }
    return 0;
  }

  // Accepted: streaming decode agrees with the oracle edge for edge.
  {
    constexpr graph::vid_t kSrcBase = 1u << 20, kDstBase = 3u << 20;
    tile::TileDecoder dec(info);
    graph::vid_t s[512], d[512];
    std::size_t got, at = 0;
    while ((got = dec.decode(s, d, 512, kSrcBase, kDstBase)) > 0) {
      for (std::size_t k = 0; k < got; ++k, ++at) {
        if (at >= oracle.size() || s[k] != kSrcBase + oracle[at].src16 ||
            d[k] != kDstBase + oracle[at].dst16)
          std::abort();
      }
    }
    if (at != oracle.size()) std::abort();
  }

  // Re-encode round trips, through the pick and through each codec forced.
  if (tile::decompress_tile(tile::compress_tile(oracle)) != oracle)
    std::abort();
  for (unsigned c = 0; c < tile::kTileCodecCount; ++c) {
    const auto re =
        tile::encode_tile_as(static_cast<tile::TileCodec>(c), oracle);
    if (tile::decompress_tile(re) != oracle) std::abort();
  }
  return 0;
}
