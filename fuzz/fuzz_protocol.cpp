// Fuzz target: the serve wire surface — Json::parse over NDJSON frames
// plus the request-validation layer Server::dispatch runs before any
// state changes (op lookup, ranged id/timeout accessors,
// JobSpec::from_json, ingest edge decoding). The JobManager back-end is
// trusted-side and needs a disk store plus scheduler threads, so the
// harness stops at the validation boundary — which is exactly the code
// that faces client bytes.
//
// Invariants checked on every accepted value:
//   * dump() -> parse() -> dump() is a fixpoint (canonical form).
//   * Every rejection is a typed gstore error, never UB or a bare crash.
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "graph/types.h"
#include "serve/job.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace {

using gstore::serve::Json;

// Mirrors dispatch()'s per-op field validation (server.cpp). Bounds match
// the handlers: ids from 1, timeout_ms capped, vertex ids in vid_t range.
void validate_request(const Json& req) {
  if (!req.is_object()) return;
  try {
    const Json* op = req.find("op");
    if (!op || !op->is_string()) return;
    const std::string& name = op->as_string();
    if (name == "submit") {
      if (const Json* job = req.find("job"))
        (void)gstore::serve::JobSpec::from_json(*job, 4096);
    } else if (name == "status" || name == "result" || name == "cancel" ||
               name == "wait") {
      (void)req.at("id").as_u64_in(
          1, std::numeric_limits<std::uint64_t>::max());
      if (const Json* t = req.find("timeout_ms"))
        (void)t->as_u64_in(0, 600000);
    } else if (name == "ingest") {
      constexpr std::uint32_t kVidMax =
          std::numeric_limits<gstore::graph::vid_t>::max();
      for (const Json& e : req.at("edges").items()) {
        if (e.items().size() != 2) return;
        (void)e.items()[0].as_u32_in(0, kVidMax);
        (void)e.items()[1].as_u32_in(0, kVidMax);
      }
    }
  } catch (const gstore::Error&) {
    // Typed rejection is the correct outcome for a hostile field.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // One connection's worth of lines; handler input is capped far lower
  // (kMaxLineBytes), this just keeps parse time linear for the fuzzer.
  if (size > (1u << 16)) return 0;
  const std::string_view all(reinterpret_cast<const char*>(data), size);
  std::size_t start = 0;
  while (start <= all.size()) {
    const std::size_t nl = all.find('\n', start);
    const std::string_view line = all.substr(
        start,
        nl == std::string_view::npos ? all.size() - start : nl - start);
    if (!line.empty()) {
      try {
        const Json v = Json::parse(line);
        const std::string printed = v.dump();
        if (Json::parse(printed).dump() != printed) __builtin_trap();
        validate_request(v);
      } catch (const gstore::FormatError&) {
        // Malformed frame: rejected with a typed error.
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return 0;
}
