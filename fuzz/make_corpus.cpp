// Seed-corpus generator for the fuzz harnesses.
//
//   fuzz_make_corpus <out_dir>
//
// writes <out_dir>/wal_replay/* and <out_dir>/tile_meta/* — structurally
// valid inputs (plus near-valid crash artifacts like torn tails) so the
// fuzzers start from deep inside the parsers instead of bouncing off the
// magic-number checks. The checked-in corpora under fuzz/corpus/ were
// produced by this tool; rerun it after any format change.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "ingest/wal.h"
#include "io/file.h"
#include "tile/convert.h"
#include "tile/tile_file.h"

namespace fs = std::filesystem;
using namespace gstore;

namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void append_section(std::vector<std::uint8_t>& out,
                    const std::vector<std::uint8_t>& bytes) {
  const std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &len, 4);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void make_wal_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  io::TempDir tmp("walcorpus");
  const std::string path = tmp.file("seed.wal");

  {
    ingest::EdgeWal wal(path, /*generation=*/0);
    spit(dir / "empty_gen0.wal", slurp(path));

    wal.append(std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}});
    wal.append(std::vector<graph::Edge>{{7, 9}});
    spit(dir / "two_frames.wal", slurp(path));
  }

  // Torn tail: a crash mid-append leaves a half-written last frame.
  {
    std::vector<std::uint8_t> torn = slurp(path);
    torn.resize(torn.size() - 7);
    spit(dir / "torn_tail.wal", torn);
  }

  // Corrupt payload: one flipped byte inside the first frame's edges.
  {
    std::vector<std::uint8_t> bad = slurp(path);
    bad[sizeof(ingest::WalFileHeader) + sizeof(ingest::WalFrameHeader) + 2] ^=
        0x40;
    spit(dir / "corrupt_payload.wal", bad);
  }

  // Stale generation: valid frames stamped for an already-compacted store.
  {
    ingest::EdgeWal wal(path, /*generation=*/3);
    wal.append(std::vector<graph::Edge>{{4, 5}});
    spit(dir / "stale_gen3.wal", slurp(path));
  }
}

void make_tile_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  io::TempDir tmp("tilecorpus");
  const std::string base = tmp.file("g");

  graph::EdgeList el = graph::EdgeList::from_edges(
      {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {1, 4}, {0, 4}},
      graph::GraphKind::kUndirected);
  tile::ConvertOptions opts;
  opts.tile_bits = 1;  // several tiles even for this 5-vertex graph
  opts.group_side = 2;
  tile::convert_to_tiles(el, base, opts);

  const auto sei = slurp(base + ".sei");
  const auto tiles = slurp(base + ".tiles");
  const auto deg = slurp(base + ".deg");

  std::vector<std::uint8_t> full;
  append_section(full, sei);
  append_section(full, tiles);
  append_section(full, deg);
  spit(dir / "store_no_manifest", full);

  // Same store plus a generation-0 manifest naming the base files.
  {
    std::vector<std::uint8_t> with_cur = full;
    append_section(with_cur, {'0', '\n'});
    spit(dir / "store_manifest_gen0", with_cur);
  }

  // Directed variant exercises the other tuple orientation.
  {
    const std::string dbase = tmp.file("d");
    graph::EdgeList del = graph::EdgeList::from_edges(
        {{0, 1}, {1, 0}, {2, 3}, {3, 1}, {4, 0}}, graph::GraphKind::kDirected);
    tile::convert_to_tiles(del, dbase, opts);
    std::vector<std::uint8_t> out;
    append_section(out, slurp(dbase + ".sei"));
    append_section(out, slurp(dbase + ".tiles"));
    append_section(out, slurp(dbase + ".deg"));
    spit(dir / "store_directed", out);
  }

  // Header-only input: .sei present, data file missing.
  {
    std::vector<std::uint8_t> out;
    append_section(out, sei);
    spit(dir / "sei_only", out);
  }
}

// One seed per codec, from a tile shape that codec wins (or at least encodes
// distinctively), so the fuzzer starts inside every decode loop at once.
void make_codec_seeds(const fs::path& dir) {
  fs::create_directories(dir);

  // Clustered rows with short ascending runs — the kRuns/kDelta sweet spot.
  std::vector<tile::SnbEdge> clustered;
  for (std::uint16_t r = 0; r < 24; ++r)
    for (std::uint16_t c = 0; c < 40; ++c)
      clustered.push_back(
          {static_cast<std::uint16_t>(r * 3),
           static_cast<std::uint16_t>(r * 11 + c + (c % 5 == 0 ? 7 : 0))});
  // Narrow-width scatter — what kPacked compresses best.
  std::vector<tile::SnbEdge> narrow;
  for (std::uint32_t k = 0; k < 300; ++k)
    narrow.push_back({static_cast<std::uint16_t>((k * 37) % 61),
                      static_cast<std::uint16_t>((k * 101) % 113)});
  // A hub row plus sparse tail rows — the kHybrid shape.
  std::vector<tile::SnbEdge> hub;
  for (std::uint16_t d = 0; d < 400; ++d)
    hub.push_back({5, static_cast<std::uint16_t>(d * 2 + (d % 7))});
  hub.push_back({9, 10});
  hub.push_back({12, 40000});

  const char* names[tile::kTileCodecCount] = {"raw", "delta", "packed", "runs",
                                              "hybrid"};
  const std::vector<tile::SnbEdge>* shapes[tile::kTileCodecCount] = {
      &narrow, &clustered, &narrow, &clustered, &hub};
  for (unsigned c = 0; c < tile::kTileCodecCount; ++c) {
    auto edges = *shapes[c];
    std::sort(edges.begin(), edges.end());
    spit(dir / (std::string(names[c]) + ".payload"),
         tile::encode_tile_as(static_cast<tile::TileCodec>(c), edges));
  }
  spit(dir / "picked.payload", tile::compress_tile(clustered));
  spit(dir / "empty.payload", tile::compress_tile({}));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fuzz_make_corpus <out_dir>\n";
    return 2;
  }
  const fs::path out = argv[1];
  make_wal_seeds(out / "wal_replay");
  make_tile_seeds(out / "tile_meta");
  make_codec_seeds(out / "tile_codec");
  std::cout << "corpus written under " << out << "\n";
  return 0;
}
