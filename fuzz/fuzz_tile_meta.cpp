// Fuzz target: the tile-store open path over untrusted on-disk files.
//
// The input is a little container of the four files a store base can carry:
//
//   [u32 len][bytes] × 4   →  <base>.sei  <base>.tiles  <base>.deg  <base>.current
//
// (a length past the input's end is clamped; a missing trailing section
// means the file is absent). TileStore::open / load_degrees / read_range /
// verify_store must reject any inconsistency with a typed error — never a
// crash, a wrapped size computation, or an attacker-sized allocation.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/file.h"
#include "tile/tile_file.h"
#include "tile/verify.h"
#include "util/status.h"

namespace {

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  // Returns whether the section exists; fills `bytes` with its payload.
  bool next_section(std::vector<std::uint8_t>& bytes) {
    if (pos + 4 > size) return false;
    std::uint32_t len;
    std::memcpy(&len, data + pos, 4);
    pos += 4;
    const std::size_t avail = size - pos;
    const std::size_t take = std::min<std::size_t>(len, avail);
    bytes.assign(data + pos, data + pos + take);
    pos += take;
    return true;
  }
};

void place_file(const std::string& path, bool present,
                const std::vector<std::uint8_t>& bytes) {
  std::filesystem::remove(path);
  if (!present) return;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static gstore::io::TempDir* scratch = new gstore::io::TempDir("tilefuzz");
  const std::string base = scratch->file("store");

  Cursor cur{data, size};
  std::vector<std::uint8_t> bytes;
  const char* suffixes[4] = {".sei", ".tiles", ".deg", ".current"};
  for (const char* suffix : suffixes) {
    const bool present = cur.next_section(bytes);
    place_file(base + suffix, present, bytes);
  }

  gstore::io::DeviceConfig config;
  config.backend = gstore::io::Backend::kSync;  // no per-exec worker threads
  try {
    gstore::tile::TileStore store = gstore::tile::TileStore::open(base, config);
    (void)store.load_degrees();
    if (store.meta().tile_count > 0) {
      std::vector<std::uint8_t> buf(store.bytes_of_range(0, 1));
      store.read_range(0, 1, buf.data());
      (void)store.view(0, buf.data());
    }
    // Only well-formed headers get the (expensive) deep walk.
    (void)gstore::tile::verify_store(base);
  } catch (const gstore::Error&) {
    // Typed rejection is the expected outcome for garbled inputs.
  }
  return 0;
}
