// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (any non-Clang toolchain). Replicates the two libFuzzer behaviours the CI
// and local workflows rely on:
//
//   fuzz_foo corpus_dir file1 ...          run every input once (regression)
//   fuzz_foo --runs=N [--seed=S] corpus/   mutate corpus inputs N times
//
// Before each execution the candidate input is persisted to
// ./<harness>.cur_input, so a crash (abort, sanitizer report) always leaves
// the reproducer behind, mirroring libFuzzer's crash-* artifact.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Small splitmix-style generator: deterministic across platforms, no
// <random> engine-state differences between libstdc++ versions.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

void mutate(std::vector<std::uint8_t>& input, Rng& rng, std::size_t max_len) {
  const std::uint64_t op = rng.below(5);
  switch (op) {
    case 0: {  // flip random bytes
      if (input.empty()) break;
      const std::uint64_t n = 1 + rng.below(8);
      for (std::uint64_t i = 0; i < n; ++i)
        input[rng.below(input.size())] =
            static_cast<std::uint8_t>(rng.next());
      break;
    }
    case 1: {  // truncate
      if (input.empty()) break;
      input.resize(rng.below(input.size()));
      break;
    }
    case 2: {  // insert random bytes
      const std::uint64_t n = 1 + rng.below(16);
      const std::size_t at = rng.below(input.size() + 1);
      std::vector<std::uint8_t> junk(n);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                   junk.begin(), junk.end());
      break;
    }
    case 3: {  // overwrite a 4-byte window with an interesting value
      if (input.size() < 4) break;
      static constexpr std::uint32_t kInteresting[] = {
          0u,          1u,          0x7fffffffu, 0x80000000u,
          0xffffffffu, 0xfffffffeu, 0x00010000u, 64u << 20};
      const std::uint32_t v =
          kInteresting[rng.below(std::size(kInteresting))];
      std::memcpy(&input[rng.below(input.size() - 3)], &v, 4);
      break;
    }
    default: {  // duplicate a slice (grows structure-ish inputs)
      if (input.empty()) break;
      const std::size_t from = rng.below(input.size());
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(input.size() - from, 64));
      std::vector<std::uint8_t> slice(input.begin() + static_cast<std::ptrdiff_t>(from),
                                      input.begin() + static_cast<std::ptrdiff_t>(from + len));
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(rng.below(input.size() + 1)),
                   slice.begin(), slice.end());
      break;
    }
  }
  if (input.size() > max_len) input.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 0;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 20;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0) {
      runs = std::stoull(arg.substr(7));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--max-len=", 0) == 0) {
      max_len = std::stoull(arg.substr(10));
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore unknown libFuzzer-style flags so CI invocations stay
      // interchangeable between the two drivers.
      std::fprintf(stderr, "driver: ignoring flag %s\n", arg.c_str());
    } else if (fs::is_directory(arg)) {
      for (const auto& e : fs::directory_iterator(arg))
        if (e.is_regular_file()) inputs.push_back(e.path());
    } else {
      inputs.push_back(arg);
    }
  }

  const fs::path cur = fs::path(argv[0]).filename().string() + ".cur_input";
  std::uint64_t execs = 0;

  auto run_one = [&](const std::vector<std::uint8_t>& bytes) {
    write_file(cur, bytes);  // reproducer survives an abort below
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++execs;
  };

  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& p : inputs) corpus.push_back(read_file(p));

  for (const auto& bytes : corpus) run_one(bytes);

  if (runs > 0) {
    Rng rng{seed};
    std::vector<std::uint8_t> scratch;
    for (std::uint64_t i = 0; i < runs; ++i) {
      if (!corpus.empty() && rng.below(8) != 0) {
        scratch = corpus[rng.below(corpus.size())];
      } else {
        scratch.assign(rng.below(256), 0);
        for (auto& b : scratch) b = static_cast<std::uint8_t>(rng.next());
      }
      const std::uint64_t stack = 1 + rng.below(4);
      for (std::uint64_t m = 0; m < stack; ++m) mutate(scratch, rng, max_len);
      run_one(scratch);
    }
  }

  std::remove(cur.string().c_str());
  std::printf("driver: %llu execs, 0 crashes\n",
              static_cast<unsigned long long>(execs));
  return 0;
}
