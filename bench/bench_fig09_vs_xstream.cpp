// §VII-B text numbers — G-Store speedup over the X-Stream-like fully
// external engine: the paper reports 17x/21x/32x (BFS/PR/CC) on Kron-28-16
// and 12x/9x/17x on Twitter. The X-Stream architecture pays for (1) 2-4x
// bigger edge tuples, (2) streaming the full edge list every iteration with
// no selective fetch, and (3) writing+re-reading an update file.
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "baseline/xstream.h"
#include "bench_common.h"

namespace gstore {
namespace {

constexpr std::uint32_t kPrIters = 5;

void run_graph(const bench::NamedGraph& named, bench::Table& t) {
  const auto& el = named.el;
  io::TempDir dir("fig9xs");
  auto store = bench::open_store(dir, el, bench::default_tile_opts(), bench::one_ssd());
  store::EngineConfig cfg = bench::engine_config_fraction(store, 0.25);

  const std::size_t tuple = 8;
  const std::uint64_t xbytes =
      baseline::write_xstream_edges(dir.file("xs"), el, tuple);
  baseline::XStreamConfig xcfg;
  xcfg.tuple_bytes = tuple;
  xcfg.device = bench::one_ssd();
  xcfg.partitions = 4;

  const graph::vid_t root = bench::hub_root(el);

  auto xs_engine = [&] {
    return baseline::XStreamEngine(dir.file("xs"), dir.path(),
                                   el.vertex_count(), xbytes / tuple, xcfg);
  };

  {
    algo::TileBfs bfs(root);
    Timer tg;
    store::ScrEngine(store, cfg).run(bfs);
    const double gs = tg.seconds();
    auto xs = xs_engine();
    std::vector<std::int32_t> depth;
    Timer tx;
    xs.run_bfs(root, depth);
    t.row({named.name, "BFS", bench::fmt(gs), bench::fmt(tx.seconds()),
           bench::fmt(tx.seconds() / gs, 1) + "x"});
  }
  {
    algo::TilePageRank pr(algo::PageRankOptions{0.85, kPrIters, 0.0});
    Timer tg;
    store::ScrEngine(store, cfg).run(pr);
    const double gs = tg.seconds();
    auto xs = xs_engine();
    std::vector<float> rank;
    Timer tx;
    xs.run_pagerank(kPrIters, 0.85, el.degrees(), rank);
    t.row({named.name, "PageRank", bench::fmt(gs), bench::fmt(tx.seconds()),
           bench::fmt(tx.seconds() / gs, 1) + "x"});
  }
  {
    algo::TileWcc wcc;
    Timer tg;
    store::ScrEngine(store, cfg).run(wcc);
    const double gs = tg.seconds();
    auto xs = xs_engine();
    std::vector<graph::vid_t> label;
    Timer tx;
    xs.run_wcc(label);
    t.row({named.name, "CC", bench::fmt(gs), bench::fmt(tx.seconds()),
           bench::fmt(tx.seconds() / gs, 1) + "x"});
  }
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("§VII-B: G-Store vs X-Stream-like engine",
                "paper text — 17-32x on Kron, 9-17x on Twitter");

  bench::Table t({"graph", "algorithm", "G-Store (s)", "X-Stream (s)",
                  "speedup"});
  auto kron = bench::make_kron(bench::scale(), bench::edge_factor(),
                               graph::GraphKind::kUndirected);
  kron.el.normalize();
  run_graph(kron, t);
  auto tw = bench::make_twitterish(bench::scale(), bench::edge_factor(),
                                   graph::GraphKind::kUndirected);
  tw.el.normalize();
  tw.name = "Twitter-like";
  run_graph(tw, t);
  t.print();
  return 0;
}
