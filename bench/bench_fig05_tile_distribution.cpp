// Figure 5 — edge counts and sizes of tiles for the Twitter(-like) graph,
// tile ids sorted by edge count. The paper reports: 40% of tiles empty, 82%
// under 1,000 edges, 0.2% over 100,000 edges, largest tile 36M edges.
// Thresholds scale with graph size; the distribution *shape* (mass
// concentrated in a tiny fraction of tiles) is the reproduction target.
// Also prints the contrast with the scrambled Kron graph (98% of tiles under
// 1,000 edges, small maximum) the paper calls out.
#include <algorithm>

#include "bench_common.h"
#include "tile/grouping.h"
#include "util/histogram.h"

namespace gstore {
namespace {

void distribution_for(const std::string& label, const graph::EdgeList& el,
                      unsigned tile_bits) {
  io::TempDir dir("fig5");
  tile::ConvertOptions copt;
  copt.tile_bits = tile_bits;
  copt.group_side = 16;
  auto store = bench::open_store(dir, el, copt);

  auto counts = tile::tile_edge_counts(store);
  std::sort(counts.begin(), counts.end());
  const double n = static_cast<double>(counts.size());

  const auto frac_below = [&](std::uint64_t bound) {
    return 100.0 *
           (std::lower_bound(counts.begin(), counts.end(), bound) -
            counts.begin()) /
           n;
  };
  const std::uint64_t avg = store.edge_count() / counts.size();

  std::printf("\n%s: %llu tiles over %llu edges (avg %llu edges/tile)\n",
              label.c_str(),
              static_cast<unsigned long long>(counts.size()),
              static_cast<unsigned long long>(store.edge_count()),
              static_cast<unsigned long long>(avg));
  std::printf("  empty tiles:            %5.1f%%   (paper Twitter: 40%%)\n",
              frac_below(1));
  std::printf("  tiles < 16x avg:        %5.1f%%   (paper: 82%% under 1,000)\n",
              frac_below(16 * std::max<std::uint64_t>(avg, 1)));
  std::printf("  tiles > 1600x avg:      %5.2f%%   (paper: 0.2%% over 100,000)\n",
              100.0 - frac_below(1600 * std::max<std::uint64_t>(avg, 1)));
  std::printf("  largest tile:           %llu edges (%s)\n",
              static_cast<unsigned long long>(counts.back()),
              bench::fmt_bytes(counts.back() * store.meta().tuple_bytes()).c_str());

  // The sorted curve the figure plots, sampled at percentiles.
  std::printf("  sorted edge-count curve (percentile: edges):");
  for (const int pct : {10, 25, 50, 75, 90, 99, 100}) {
    const std::size_t idx =
        std::min(counts.size() - 1,
                 static_cast<std::size_t>(pct / 100.0 * counts.size()));
    std::printf(" p%d:%llu", pct,
                static_cast<unsigned long long>(counts[idx]));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Fig 5: tile edge-count distribution",
                "paper Fig 5 — Twitter tile occupancy is extremely skewed");
  const unsigned s = bench::scale();
  // tile_bits sized so the tile grid has hundreds of tiles per side, like
  // the paper's 2^16-wide tiles over 52M+ vertices.
  const unsigned tb = s > 10 ? s - 8 : 2;
  distribution_for("Twitter-like (directed)",
                   bench::make_twitterish(s, bench::edge_factor(),
                                          graph::GraphKind::kDirected)
                       .el,
                   tb);
  distribution_for("Kron (scrambled, undirected)",
                   bench::make_kron(s, bench::edge_factor(),
                                    graph::GraphKind::kUndirected)
                       .el,
                   tb);
  return 0;
}
