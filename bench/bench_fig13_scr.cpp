// Figure 13 — speedup of the slide-cache-rewind policy over the base policy
// (two big segments, no cache pool, no rewind) for BFS / PageRank / WCC.
// The paper measures >60% for BFS and >35% for PageRank and WCC with 8GB of
// memory on Kron-28-16; here the memory budget is the same fraction of the
// graph (8GB / 16GB = 50%).
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "bench_common.h"

namespace gstore {
namespace {

template <typename MakeAlgo>
void compare(const char* name, tile::TileStore& store, MakeAlgo&& make,
             bench::Table& t) {
  const std::uint64_t memory = store.data_bytes() / 2;  // paper's 8GB/16GB

  store::EngineConfig base;
  base.stream_memory_bytes = memory;
  base.segment_bytes = memory / 2;  // two big segments, nothing else
  base.policy = store::CachePolicyKind::kNone;
  base.rewind = false;

  store::EngineConfig scr;
  scr.stream_memory_bytes = memory;
  scr.segment_bytes = std::max<std::uint64_t>(memory / 32, 64 << 10);
  scr.policy = store::CachePolicyKind::kProactive;
  scr.rewind = true;

  auto a1 = make();
  Timer tb;
  const auto sb = store::ScrEngine(store, base).run(*a1);
  const double base_secs = tb.seconds();

  auto a2 = make();
  Timer ts;
  const auto ss = store::ScrEngine(store, scr).run(*a2);
  const double scr_secs = ts.seconds();

  // Cached tiles are pinned segment slices, never memcpy'd — a nonzero
  // copied-to-pool count here is a regression off the zero-copy path.
  t.row({name, bench::fmt(base_secs), bench::fmt(scr_secs),
         bench::fmt(base_secs / scr_secs) + "x",
         bench::fmt_bytes(sb.bytes_read), bench::fmt_bytes(ss.bytes_read),
         bench::fmt_bytes(ss.bytes_copied_to_pool)});
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Fig 13: slide-cache-rewind vs base policy",
                "paper Fig 13 — BFS +60%, PageRank/WCC +35%");

  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  io::TempDir dir("fig13");
  auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), bench::one_ssd());

  bench::Table t({"algorithm", "base (s)", "SCR (s)", "speedup", "base I/O",
                  "SCR I/O", "pool memcpy"});
  compare("BFS", store,
          [] { return std::make_unique<algo::TileBfs>(1); }, t);
  compare("PageRank", store,
          [] {
            return std::make_unique<algo::TilePageRank>(
                algo::PageRankOptions{0.85, 5, 0.0});
          },
          t);
  compare("WCC", store, [] { return std::make_unique<algo::TileWcc>(); }, t);
  t.print();
  return 0;
}
