// Table I — conversion time (seconds): CSR vs G-Store tile format, for the
// paper's four graphs (Kron-28-16, Twitter, Friendster, Subdomain → offline
// stand-ins at bench scale). The paper finds tile conversion *faster* than
// CSR for most graphs, with Twitter slower due to tile skew.
#include "bench_common.h"

int main() {
  using namespace gstore;
  bench::banner("Table I: conversion time (seconds)",
                "paper Table I — G-Store conversion is competitive with CSR");

  const unsigned s = bench::scale();
  const unsigned ef = bench::edge_factor();
  std::vector<bench::NamedGraph> graphs;
  graphs.push_back(bench::make_kron(s, ef, graph::GraphKind::kUndirected));
  graphs.push_back(bench::make_twitterish(s, ef, graph::GraphKind::kDirected));
  graphs.push_back(bench::make_friendsterish(s, ef, graph::GraphKind::kDirected));
  graphs.push_back(bench::make_subdomainish(s, ef, graph::GraphKind::kDirected));

  bench::Table t({"graph", "CSR (s)", "G-Store (s)", "pass1 (s)", "pass2 (s)",
                  "G-Store/CSR"});
  for (auto& g : graphs) {
    io::TempDir dir("tab1");
    const auto csr = tile::convert_to_csr_file(g.el, dir.file("csr"));
    tile::ConvertOptions copt;
    copt.tile_bits = s > 10 ? s - 8 : 2;
    copt.group_side = 16;
    const auto gs = tile::convert_to_tiles(g.el, dir.file("g"), copt);
    t.row({g.name, bench::fmt(csr.total_seconds), bench::fmt(gs.total_seconds),
           bench::fmt(gs.pass1_seconds), bench::fmt(gs.pass2_seconds),
           bench::fmt(gs.total_seconds / csr.total_seconds) + "x"});
  }
  t.print();
  std::printf("\npaper: Kron-28-16 57s vs 89s CSR; Twitter slower (25s vs 16s)\n");
  std::printf("       due to tile skew — the same ordering should appear above\n");
  return 0;
}
