// Table II — graphs and their sizes under the three representations, plus
// the space-saving factors. Two sections:
//   1. measured on disk at bench scale (this machine);
//   2. analytic at the paper's scales (sizes are exact functions of |V|,|E|),
//      reproducing the published 2-8x saving column including the Kron-33
//      jump to 8x when competitors need 8-byte vertex ids.
#include "bench_common.h"

#include "baseline/xstream.h"
#include "graph/csr.h"

namespace gstore {
namespace {

// Analytic sizes (bytes) for an undirected graph with 2^s vertices and
// ef*2^s undirected edges, mirroring §IV and Table II accounting.
struct PaperRow {
  std::string name;
  std::uint64_t vertices;   // 2^s
  std::uint64_t und_edges;  // ef * 2^s

  std::uint64_t vid_bytes() const { return vertices > (1ull << 32) ? 8 : 4; }
  std::uint64_t edge_list() const { return 2 * und_edges * 2 * vid_bytes(); }
  std::uint64_t csr() const {
    return 2 * und_edges * vid_bytes() + (vertices + 1) * 8;
  }
  std::uint64_t gstore() const {
    // SNB tuples are always 4B; add the start-edge file (8B per tile over
    // the upper-triangle grid of 2^16-wide tiles).
    const std::uint64_t p = (vertices + 65535) / 65536;
    const std::uint64_t tiles = p * (p + 1) / 2;
    return und_edges * 4 + (tiles + 1) * 8;
  }
};

}  // namespace
}  // namespace gstore

int main(int, char**) {  // benchmark-style flags are accepted and ignored
  using namespace gstore;
  bench::banner("Table II: graph sizes and space saving",
                "paper Table II — 2-8x saving vs edge list, 2-4x vs CSR");

  // ---- measured at bench scale ----
  // "v2" is the raw-SNB tile format; "v3" is the current per-tile codec
  // format — the format-change acceptance bar is ≥25% fewer bytes/edge on
  // the standard kron (RMAT) graph.
  std::printf("\n[measured on this machine]\n");
  const unsigned s = bench::scale();
  const unsigned ef = bench::edge_factor();
  std::vector<bench::NamedGraph> graphs;
  graphs.push_back(bench::make_kron(s, ef, graph::GraphKind::kUndirected));
  graphs.push_back(bench::make_twitterish(s, ef, graph::GraphKind::kDirected));
  graphs.push_back(bench::make_friendsterish(s, ef, graph::GraphKind::kDirected));

  struct MeasuredRow {
    std::string name;
    std::uint64_t edges, el_bytes, csr_bytes, v2_bytes, v3_bytes;
    double reduction() const { return 1.0 - double(v3_bytes) / v2_bytes; }
  };
  std::vector<MeasuredRow> measured;

  bench::Table t({"graph", "type", "vertices", "edges", "EdgeList", "CSR",
                  "v2 (raw SNB)", "v3 (codecs)", "vs EdgeList", "vs CSR",
                  "v3 vs v2"});
  for (auto& g : graphs) {
    io::TempDir dir("tab2");
    tile::ConvertOptions raw_opts;  // same geometry as open_store's default
    raw_opts.compress = false;
    tile::convert_to_tiles(g.el, dir.file("v2"), raw_opts);
    auto v2 = tile::TileStore::open(dir.file("v2"));
    auto store = bench::open_store(dir, g.el);
    const std::uint64_t el_bytes = baseline::xstream_storage_bytes(
        g.el.vertex_count(), g.el.edge_count(),
        g.el.kind() == graph::GraphKind::kUndirected);
    const graph::Csr csr = graph::Csr::build(g.el);
    const std::uint64_t gs = store.storage_bytes();
    const std::uint64_t v2_bytes = v2.storage_bytes();
    measured.push_back({g.name, g.el.edge_count(), el_bytes,
                        csr.storage_bytes(), v2_bytes, gs});
    t.row({g.name,
           g.el.kind() == graph::GraphKind::kUndirected ? "Undirected" : "Directed",
           std::to_string(g.el.vertex_count()), std::to_string(g.el.edge_count()),
           bench::fmt_bytes(el_bytes), bench::fmt_bytes(csr.storage_bytes()),
           bench::fmt_bytes(v2_bytes), bench::fmt_bytes(gs),
           bench::fmt(double(el_bytes) / gs, 1) + "x",
           bench::fmt(double(csr.storage_bytes()) / gs, 1) + "x",
           "-" + bench::fmt(100 * measured.back().reduction(), 1) + "%"});
  }
  t.print();

  std::FILE* json = std::fopen("BENCH_tab2_space.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"tab2_space\",\n  \"scale\": %u,\n"
                 "  \"edge_factor\": %u,\n  \"graphs\": [\n",
                 s, ef);
    for (std::size_t i = 0; i < measured.size(); ++i) {
      const MeasuredRow& r = measured[i];
      std::fprintf(
          json,
          "    {\"graph\": \"%s\", \"edges\": %llu, \"edge_list_bytes\": "
          "%llu, \"csr_bytes\": %llu, \"v2_bytes\": %llu, \"v3_bytes\": "
          "%llu, \"v2_bytes_per_edge\": %.3f, \"v3_bytes_per_edge\": %.3f, "
          "\"v3_vs_v2_reduction\": %.4f}%s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.edges),
          static_cast<unsigned long long>(r.el_bytes),
          static_cast<unsigned long long>(r.csr_bytes),
          static_cast<unsigned long long>(r.v2_bytes),
          static_cast<unsigned long long>(r.v3_bytes),
          double(r.v2_bytes) / r.edges, double(r.v3_bytes) / r.edges,
          r.reduction(), i + 1 < measured.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_tab2_space.json\n");
  }

  // ---- analytic at the paper's scales ----
  std::printf("\n[analytic at paper scales — exact size formulas]\n");
  const PaperRow rows[] = {
      {"Kron-28-16", 1ull << 28, 16ull << 28},
      {"Kron-30-16", 1ull << 30, 16ull << 30},
      {"Kron-33-16", 1ull << 33, 16ull << 33},
      {"Kron-31-256", 1ull << 31, 256ull << 31},
  };
  bench::Table t2({"graph", "EdgeList", "CSR", "G-Store", "vs EdgeList",
                   "vs CSR", "paper says"});
  const char* expect[] = {"4x / 2x", "4x / 2x", "8x / 4x", "4x / 2x"};
  int k = 0;
  for (const auto& r : rows) {
    t2.row({r.name, bench::fmt_bytes(r.edge_list()), bench::fmt_bytes(r.csr()),
            bench::fmt_bytes(r.gstore()),
            bench::fmt(double(r.edge_list()) / r.gstore(), 1) + "x",
            bench::fmt(double(r.csr()) / r.gstore(), 1) + "x", expect[k++]});
  }
  t2.print();
  return 0;
}
