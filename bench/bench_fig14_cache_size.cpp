// Figure 14 — effect of different cache sizes: total streaming+caching
// memory swept from 1/8 to ~1x of the graph size (the paper sweeps 1-8GB on
// Kron-28-16 and 1-4GB on Twitter, with ~30-46% gains at the top end).
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "bench_common.h"

namespace gstore {
namespace {

void sweep(const std::string& graph_name, tile::TileStore& store,
           graph::vid_t root, bench::Table& t) {
  const std::uint64_t data = store.data_bytes();
  double bfs_base = 0, pr_base = 0, wcc_base = 0;
  for (const int denom : {8, 4, 2, 1}) {
    store::EngineConfig cfg;
    cfg.stream_memory_bytes = std::max<std::uint64_t>(data / denom, 128 << 10);
    cfg.segment_bytes = std::max<std::uint64_t>(cfg.stream_memory_bytes / 16,
                                                32 << 10);
    algo::TileBfs bfs(root);
    Timer tb;
    store::ScrEngine(store, cfg).run(bfs);
    const double bfs_secs = tb.seconds();
    if (bfs_base == 0) bfs_base = bfs_secs;

    algo::TilePageRank pr(algo::PageRankOptions{0.85, 5, 0.0});
    Timer tp;
    store::ScrEngine(store, cfg).run(pr);
    const double pr_secs = tp.seconds();
    if (pr_base == 0) pr_base = pr_secs;

    algo::TileWcc wcc;
    Timer tw;
    store::ScrEngine(store, cfg).run(wcc);
    const double wcc_secs = tw.seconds();
    if (wcc_base == 0) wcc_base = wcc_secs;

    t.row({graph_name, "graph/" + std::to_string(denom),
           bench::fmt(bfs_secs) + " (" + bench::fmt(bfs_base / bfs_secs) + "x)",
           bench::fmt(pr_secs) + " (" + bench::fmt(pr_base / pr_secs) + "x)",
           bench::fmt(wcc_secs) + " (" + bench::fmt(wcc_base / wcc_secs) + "x)"});
  }
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Fig 14: effect of cache size",
                "paper Fig 14 — 30-46% gains from 1GB to 8GB memory");

  bench::Table t({"graph", "memory", "BFS s (speedup)", "PR s (speedup)",
                  "WCC s (speedup)"});
  {
    auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                              graph::GraphKind::kUndirected);
    io::TempDir dir("fig14");
    auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), bench::one_ssd());
    sweep(g.name, store, bench::hub_root(g.el), t);
  }
  {
    auto g = bench::make_twitterish(bench::scale(), bench::edge_factor(),
                                    graph::GraphKind::kUndirected);
    g.el.normalize();
    io::TempDir dir("fig14b");
    auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), bench::one_ssd());
    sweep(g.name, store, bench::hub_root(g.el), t);
  }
  t.print();
  return 0;
}
