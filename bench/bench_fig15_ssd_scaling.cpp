// Figure 15 — scalability on SSDs: the paper bundles 1/2/4/8 SSDs in
// software RAID-0 and sees near-ideal scaling to 4 disks and ~6x at 8 (CPU
// saturates first, especially for PageRank). This machine has one
// filesystem, so the device model emulates the array: aggregate bandwidth =
// devices x per-device rate, identical I/O path (DESIGN.md §3).
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "bench_common.h"

namespace gstore {
namespace {

double run_bfs(tile::TileStore& store, const store::EngineConfig& cfg,
               graph::vid_t root) {
  algo::TileBfs bfs(root);
  Timer t;
  store::ScrEngine(store, cfg).run(bfs);
  return t.seconds();
}
double run_pr(tile::TileStore& store, const store::EngineConfig& cfg) {
  algo::TilePageRank pr(algo::PageRankOptions{0.85, 5, 0.0});
  Timer t;
  store::ScrEngine(store, cfg).run(pr);
  return t.seconds();
}
double run_wcc(tile::TileStore& store, const store::EngineConfig& cfg) {
  algo::TileWcc wcc;
  Timer t;
  store::ScrEngine(store, cfg).run(wcc);
  return t.seconds();
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Fig 15: scalability on (emulated) SSD arrays",
                "paper Fig 15 — ~4x on 4 SSDs, ~6x on 8; PR CPU-bound first");

  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  io::TempDir dir("fig15");
  // Per-device bandwidth kept low so the 1-disk runs are clearly I/O-bound,
  // like the paper's 16GB graph on one SATA SSD.
  const std::uint64_t per_dev =
      static_cast<std::uint64_t>(env_int("GSTORE_BENCH_DEV_MBPS", 64)) << 20;

  bench::Table t({"SSDs", "BFS s (speedup)", "PR s (speedup)",
                  "WCC s (speedup)"});
  double bfs1 = 0, pr1 = 0, wcc1 = 0;
  for (const unsigned devices : {1u, 2u, 4u, 8u}) {
    io::DeviceConfig dev;
    dev.devices = devices;
    dev.per_device_bw = per_dev;
    auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), dev,
                                   "g" + std::to_string(devices));
    store::EngineConfig cfg = bench::engine_config_fraction(store, 0.25);
    const double b = run_bfs(store, cfg, bench::hub_root(g.el));
    const double p = run_pr(store, cfg);
    const double w = run_wcc(store, cfg);
    if (devices == 1) {
      bfs1 = b;
      pr1 = p;
      wcc1 = w;
    }
    t.row({std::to_string(devices),
           bench::fmt(b) + " (" + bench::fmt(bfs1 / b, 1) + "x)",
           bench::fmt(p) + " (" + bench::fmt(pr1 / p, 1) + "x)",
           bench::fmt(w) + " (" + bench::fmt(wcc1 / w, 1) + "x)"});
  }
  t.print();
  std::printf("\n(single CPU core: compute saturates earlier than the paper's "
              "56 threads, which is the same qualitative ceiling Fig 15 shows "
              "for PageRank)\n");
  return 0;
}
