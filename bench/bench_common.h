// Shared infrastructure for the per-table/per-figure benchmark binaries.
//
// Every binary prints the same rows/series its paper counterpart reports,
// at a machine-appropriate scale. Scale knobs:
//   GSTORE_BENCH_SCALE  — log2 vertex count for comparative runs (default 17)
//   GSTORE_BENCH_EF     — edge factor (default 16)
//   GSTORE_BENCH_BIG_SCALE — scale for the Table III large-graph run (default 20)
// Absolute seconds differ from the paper's 56-thread/8-SSD testbed; the
// reproduction target is each experiment's *shape* (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/generator.h"
#include "io/device.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/tile_file.h"
#include "util/options.h"
#include "util/timer.h"

namespace gstore::bench {

inline unsigned scale() {
  return static_cast<unsigned>(env_int("GSTORE_BENCH_SCALE", 18));
}
inline unsigned edge_factor() {
  return static_cast<unsigned>(env_int("GSTORE_BENCH_EF", 16));
}
inline unsigned big_scale() {
  return static_cast<unsigned>(env_int("GSTORE_BENCH_BIG_SCALE", 20));
}

// Emulated SSD-array profile used by I/O-bound comparisons so that results
// reflect the paper's disk-bound regime rather than this container's page
// cache. 256 MB/s ≈ one SATA SSD streaming tiles.
inline io::DeviceConfig one_ssd() {
  io::DeviceConfig d;
  d.devices = 1;
  d.per_device_bw = static_cast<std::uint64_t>(
      env_int("GSTORE_BENCH_SSD_MBPS", 128)) << 20;
  // Small bucket: a real disk cannot bank bandwidth while the CPU computes,
  // so idle credit must stay well below one segment's worth of bytes.
  d.burst_bytes = 64 << 10;
  return d;
}

// Tile geometry for comparative runs: sized so the grid has thousands of
// tiles (like the paper's 2^16-wide tiles over 10^8-10^9 vertices), which
// the SCR cache pool needs for useful granularity.
inline tile::ConvertOptions default_tile_opts() {
  tile::ConvertOptions o;
  const unsigned s = scale();
  o.tile_bits = s > 8 ? std::min(16u, s - 6) : 2;
  o.group_side = 8;
  return o;
}

// Root with the largest degree — BFS comparisons from a degenerate root
// (scrambled Kronecker leaves many zero-degree vertices) measure nothing.
inline graph::vid_t hub_root(const graph::EdgeList& el) {
  const auto deg = el.degrees();
  graph::vid_t best = 0;
  for (graph::vid_t v = 1; v < el.vertex_count(); ++v)
    if (deg[v] > deg[best]) best = v;
  return best;
}

struct NamedGraph {
  std::string name;
  graph::EdgeList el;
};

// The paper's graph collection mapped to offline stand-ins (DESIGN.md §3).
inline NamedGraph make_kron(unsigned s, unsigned ef, graph::GraphKind kind) {
  return {"Kron-" + std::to_string(s) + "-" + std::to_string(ef),
          graph::kronecker(s, ef, kind)};
}
inline NamedGraph make_twitterish(unsigned s, unsigned ef, graph::GraphKind kind) {
  return {"Twitter-like", graph::twitter_like(s, ef, kind)};
}
inline NamedGraph make_friendsterish(unsigned s, unsigned ef,
                                     graph::GraphKind kind) {
  // Friendster: social graph, flatter degree distribution than Twitter —
  // scrambled R-MAT at Graph500 parameters.
  return {"Friendster-like",
          graph::rmat(s, ef, kind, graph::RmatParams{0.57, 0.19, 0.19}, 99,
                      /*scramble=*/true)};
}
inline NamedGraph make_subdomainish(unsigned s, unsigned ef,
                                    graph::GraphKind kind) {
  // Subdomain web graph: strong id locality (pages of one site are numbered
  // together) — unscrambled, heavily diagonal R-MAT.
  return {"Subdomain-like",
          graph::rmat(s, ef, kind, graph::RmatParams{0.65, 0.15, 0.15}, 7,
                      /*scramble=*/false)};
}

// Converts into `dir` and opens with the given device profile.
inline tile::TileStore open_store(const io::TempDir& dir, const graph::EdgeList& el,
                                  tile::ConvertOptions copt = {},
                                  io::DeviceConfig dev = {},
                                  const std::string& name = "g") {
  tile::convert_to_tiles(el, dir.file(name), copt);
  return tile::TileStore::open(dir.file(name), dev);
}

// Engine config scaled to a fraction of the on-disk graph size.
inline store::EngineConfig engine_config_fraction(const tile::TileStore& store,
                                                  double fraction) {
  store::EngineConfig cfg;
  cfg.stream_memory_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(store.data_bytes() * fraction), 64 << 10);
  cfg.segment_bytes = std::max<std::uint64_t>(cfg.stream_memory_bytes / 8, 8 << 10);
  return cfg;
}

// ---- tiny fixed-width table printer ---------------------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}
inline std::string fmt_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 40))
    std::snprintf(buf, sizeof(buf), "%.2fTB", bytes / double(1ull << 40));
  else if (bytes >= (1ull << 30))
    std::snprintf(buf, sizeof(buf), "%.2fGB", bytes / double(1ull << 30));
  else if (bytes >= (1ull << 20))
    std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / double(1ull << 20));
  else
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  return buf;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace gstore::bench
