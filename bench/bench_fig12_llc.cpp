// Figure 12 — LLC operations and misses for various grouping sizes. The
// paper reads hardware counters; this container has none, so the engine's
// PageRank metadata access stream (one read of contrib[src] + one
// read-modify-write of incoming[dst] per edge, in tile layout order) is
// replayed through the set-associative cache model in src/cachesim. The
// paper finds the 256x256 grouping minimizes both transactions and misses
// (up to 21% fewer transactions, 35% fewer misses).
#include "bench_common.h"
#include "cachesim/cache_model.h"
#include "tile/grouping.h"

int main() {
  using namespace gstore;
  bench::banner("Fig 12: LLC operations and misses vs grouping (cache model)",
                "paper Fig 12 — best grouping cuts LLC ops ~21%, misses ~35%");

  const unsigned s = std::min(bench::scale(), 17u);  // replay is per-access
  auto g = bench::make_kron(s, bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  const unsigned tb = s > 12 ? s - 10 : 2;

  // Model the paper's Xeon: 256K L2, 16M LLC... scaled to the metadata size
  // of this graph so the working-set-vs-LLC crossover lands mid-sweep.
  const std::uint64_t rank_bytes = std::uint64_t{g.el.vertex_count()} * 4;
  const std::uint64_t llc_bytes = std::max<std::uint64_t>(rank_bytes / 8, 64 << 10);
  const std::uint64_t l2_bytes = std::max<std::uint64_t>(llc_bytes / 64, 8 << 10);
  std::printf("metadata %s, modeled L2 %s, LLC %s\n",
              bench::fmt_bytes(rank_bytes).c_str(),
              bench::fmt_bytes(l2_bytes).c_str(),
              bench::fmt_bytes(llc_bytes).c_str());

  bench::Table t({"group (tiles)", "LLC ops (M)", "LLC misses (M)",
                  "ops vs worst", "misses vs worst"});
  struct Sample {
    std::uint32_t q;
    std::uint64_t ops, misses;
  };
  std::vector<Sample> samples;
  for (const std::uint32_t q : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    io::TempDir dir("fig12");
    tile::ConvertOptions copt;
    copt.tile_bits = tb;
    copt.group_side = q;
    auto store = bench::open_store(dir, g.el, copt);

    cachesim::CacheHierarchy cache(l2_bytes, llc_bytes);
    // Replay: contiguous tile buffer, metadata arrays at fixed virtual bases.
    constexpr std::uint64_t kContribBase = 0x100000000ull;
    constexpr std::uint64_t kIncomingBase = 0x200000000ull;
    std::vector<std::uint8_t> buf;
    for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k) {
      const std::uint64_t bytes = store.tile_bytes(k);
      if (bytes == 0) continue;
      buf.resize(bytes);
      store.read_range(k, k + 1, buf.data());
      const tile::TileView v = store.view(k, buf.data());
      tile::visit_edges(v, [&](graph::vid_t a, graph::vid_t b) {
        cache.access(kContribBase + 4ull * a);
        cache.access(kIncomingBase + 4ull * b);
        cache.access(kContribBase + 4ull * b);   // symmetric store: both
        cache.access(kIncomingBase + 4ull * a);  // directions per tuple
      });
    }
    samples.push_back({q, cache.llc_operations(), cache.llc_misses()});
  }
  std::uint64_t worst_ops = 0, worst_miss = 0;
  for (const auto& smp : samples) {
    worst_ops = std::max(worst_ops, smp.ops);
    worst_miss = std::max(worst_miss, smp.misses);
  }
  for (const auto& smp : samples) {
    t.row({std::to_string(smp.q) + "x" + std::to_string(smp.q),
           bench::fmt(smp.ops / 1e6), bench::fmt(smp.misses / 1e6),
           bench::fmt(100.0 * (1.0 - double(smp.ops) / worst_ops), 1) + "% fewer",
           bench::fmt(100.0 * (1.0 - double(smp.misses) / worst_miss), 1) +
               "% fewer"});
  }
  t.print();
  return 0;
}
