// bench_serve — multi-tenant serving throughput and I/O dedup (docs/SERVE.md).
//
// Measures, on a multi-tile uniform-random graph:
//   * jobs/s        — end-to-end completion rate for a 128-job BFS mix
//                     flowing through submit → gang → done
//   * dedup (bytes) — bytes read by 32 co-scheduled BFS jobs vs 1 job;
//                     the shared fetch stream makes this ~1x, not 32x
//   * dedup (tiles) — tile dispatches per physical fetch for the 32-gang
//                     (each fetched tile feeds every subscribed kernel)
//
// Prints a table and writes BENCH_serve.json for machine consumption.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ingest/ingestor.h"
#include "serve/server.h"

namespace gstore::bench {
namespace {

using serve::Json;

struct GangRun {
  double seconds = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t tiles_physical = 0;   // fetched + served from cache
  std::uint64_t tile_dispatches = 0;  // per-subscriber kernel deliveries
  std::uint64_t jobs_done = 0;
};

Json bfs_json(graph::vid_t root) {
  Json j = Json::object();
  j.set("algo", Json("bfs"));
  j.set("root", Json(static_cast<std::uint64_t>(root)));
  return j;
}

// Runs `jobs` BFS submissions (round-robin over `roots`) through a fresh
// JobManager with the given gang width and returns the folded aggregate.
// stop(true) joins the scheduler thread, which is what publishes the
// gang-level I/O counters into the aggregate the stats() call reads.
GangRun run_jobs(ingest::EdgeIngestor& ingestor, std::size_t jobs,
                 std::size_t gang_width, const std::vector<graph::vid_t>& roots) {
  serve::ManagerOptions mo;
  mo.max_gang = gang_width;
  mo.max_queued = jobs;
  serve::JobManager manager(ingestor, mo);
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs);
  for (std::size_t k = 0; k < jobs; ++k) {
    Json j = bfs_json(roots[k % roots.size()]);
    ids.push_back(manager.submit(j));
  }
  Timer t;
  manager.start();
  for (const std::uint64_t id : ids)
    manager.wait(id, std::chrono::milliseconds(600000));
  manager.stop(true);
  GangRun out;
  out.seconds = t.seconds();
  const Json s = manager.stats();
  out.bytes_read = s.at("bytes_read").as_uint();
  out.tiles_physical =
      s.at("tiles_fetched").as_uint() + s.at("tiles_from_cache").as_uint();
  out.tile_dispatches = s.at("tile_dispatches").as_uint();
  out.jobs_done = s.at("jobs_done").as_uint();
  return out;
}

int run() {
  banner("bench_serve: multi-tenant shared-I/O tile scheduling",
         "new subsystem (no paper counterpart; see docs/SERVE.md)");

  // Multi-tile graph: enough tile rows that the gang's union fetch stream
  // has real structure, small enough to finish in CI time.
  const graph::vid_t n = 1u << std::min(scale(), 18u);
  const graph::EdgeList el = graph::uniform_random(
      n, static_cast<std::uint64_t>(n) * 3, graph::GraphKind::kUndirected, 23);
  io::TempDir dir;
  tile::convert_to_tiles(el, dir.file("g"), default_tile_opts());
  ingest::EdgeIngestor ingestor(dir.file("g"));

  // --- dedup: 1 BFS vs 32 co-scheduled BFS, identical roots ---
  const std::vector<graph::vid_t> same_root = {hub_root(el)};
  const GangRun single = run_jobs(ingestor, 1, 64, same_root);
  const GangRun gang32 = run_jobs(ingestor, 32, 64, same_root);
  const double byte_ratio =
      gang32.bytes_read / std::max<double>(single.bytes_read, 1);
  const double tile_dedup =
      gang32.tile_dispatches / std::max<double>(gang32.tiles_physical, 1);

  // --- throughput: 128 BFS jobs, mixed roots, gangs of 32 ---
  std::vector<graph::vid_t> roots;
  for (graph::vid_t r = 0; r < 16; ++r) roots.push_back((r * 37) % n);
  const GangRun mix = run_jobs(ingestor, 128, 32, roots);
  const double jobs_per_sec = mix.jobs_done / std::max(mix.seconds, 1e-9);

  Table table({"metric", "value"});
  table.row({"graph", std::to_string(el.vertex_count()) + " vertices, " +
                          std::to_string(el.edge_count()) + " edges"})
      .row({"1-job bytes read", fmt_bytes(single.bytes_read)})
      .row({"32-job bytes read", fmt_bytes(gang32.bytes_read)})
      .row({"bytes ratio (32 vs 1)", fmt(byte_ratio, 2) + "x  (target < 2x)"})
      .row({"tile dedup (32-gang)",
            fmt(tile_dedup, 1) + " dispatches/fetch"})
      .row({"mixed 128-job run", fmt(mix.seconds, 3) + " s"})
      .row({"throughput", fmt(jobs_per_sec, 1) + " jobs/s"});
  table.print();

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"serve\",\n"
        "  \"vertices\": %llu,\n"
        "  \"edges\": %llu,\n"
        "  \"single_bfs_bytes_read\": %llu,\n"
        "  \"gang32_bfs_bytes_read\": %llu,\n"
        "  \"gang32_byte_ratio\": %.4f,\n"
        "  \"gang32_tile_dispatches\": %llu,\n"
        "  \"gang32_tiles_physical\": %llu,\n"
        "  \"gang32_tile_dedup\": %.2f,\n"
        "  \"mixed_jobs\": %llu,\n"
        "  \"mixed_seconds\": %.4f,\n"
        "  \"jobs_per_sec\": %.1f\n"
        "}\n",
        static_cast<unsigned long long>(el.vertex_count()),
        static_cast<unsigned long long>(el.edge_count()),
        static_cast<unsigned long long>(single.bytes_read),
        static_cast<unsigned long long>(gang32.bytes_read), byte_ratio,
        static_cast<unsigned long long>(gang32.tile_dispatches),
        static_cast<unsigned long long>(gang32.tiles_physical), tile_dedup,
        static_cast<unsigned long long>(mix.jobs_done), mix.seconds,
        jobs_per_sec);
    std::fclose(json);
    std::printf("\nwrote BENCH_serve.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace gstore::bench

int main() { return gstore::bench::run(); }
