// Microbenchmarks (google-benchmark) for the hot kernels underneath the
// per-figure harnesses: SNB encode/decode, tile edge visitation in both
// tuple formats, the intra-tile compression codec (the paper's future-work
// extension), the cache model, and the degree-array representations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "cachesim/cache_model.h"
#include "graph/degree.h"
#include "graph/generator.h"
#include "ingest/delta.h"
#include "tile/compress.h"
#include "tile/edge_block.h"
#include "tile/grid.h"
#include "tile/snb.h"
#include "tile/tile_file.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace gstore {
namespace {

std::vector<tile::SnbEdge> random_tile(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<tile::SnbEdge> edges(n);
  for (auto& e : edges) {
    e.src16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
    e.dst16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
  }
  return edges;
}

// Hub-shaped tile (few sources, sorted destinations) — the compressible case.
std::vector<tile::SnbEdge> hub_tile(std::size_t n) {
  std::vector<tile::SnbEdge> edges(n);
  for (std::size_t i = 0; i < n; ++i) {
    edges[i].src16 = static_cast<std::uint16_t>(i / 1024);
    edges[i].dst16 = static_cast<std::uint16_t>((i % 1024) * 7);
  }
  return edges;
}

void BM_SnbDecode(benchmark::State& state) {
  const auto edges = random_tile(static_cast<std::size_t>(state.range(0)), 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (const auto& e : edges) {
      const graph::Edge g = tile::snb_decode(e, 1 << 16, 2 << 16);
      sink += g.src + g.dst;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_SnbDecode)->Arg(1 << 12)->Arg(1 << 16);

void BM_VisitEdgesSnb(benchmark::State& state) {
  const auto edges = random_tile(static_cast<std::size_t>(state.range(0)), 2);
  tile::TileView v;
  v.src_base = 0;
  v.dst_base = 0;
  v.edges = edges;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    tile::visit_edges(v, [&](graph::vid_t a, graph::vid_t b) { sink += a + b; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_VisitEdgesSnb)->Arg(1 << 16);

void BM_VisitEdgesFat(benchmark::State& state) {
  std::vector<graph::Edge> edges(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(3);
  for (auto& e : edges) {
    e.src = static_cast<graph::vid_t>(rng.next_below(1 << 20));
    e.dst = static_cast<graph::vid_t>(rng.next_below(1 << 20));
  }
  tile::TileView v;
  v.fat = true;
  v.fat_edges = edges;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    tile::visit_edges(v, [&](graph::vid_t a, graph::vid_t b) { sink += a + b; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_VisitEdgesFat)->Arg(1 << 16);

// Pure SoA decode throughput: SNB tuples → widened vid_t arrays, no kernel.
// The contrast with BM_SnbDecode (scalar, interleaved) is the widening loop
// the compiler can vectorize.
void BM_EdgeBlockDecode(benchmark::State& state) {
  const auto edges = random_tile(static_cast<std::size_t>(state.range(0)), 7);
  tile::TileView v;
  v.src_base = 1 << 16;
  v.dst_base = 2 << 16;
  v.edges = edges;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    tile::for_each_block(v, [&](const tile::EdgeBlock& b) {
      sink += b.src[0] + b.dst[b.size - 1];
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_EdgeBlockDecode)->Arg(1 << 12)->Arg(1 << 16);

// v3 codec decode into the same EdgeBlock SoA path, one benchmark per
// codec. packed/random is the fair comparison against BM_EdgeBlockDecode:
// an incompressible tile forces 16-bit planes, so the decoder runs its
// widest (memcpy-like) unpacking — the acceptance bar is staying within
// 10% of the raw block path above. The hub-tile variants show what decode
// costs when a codec actually wins on size.
struct CodecView {
  std::vector<std::uint8_t> payload;
  std::vector<tile::SnbEdge> raw;  // kRaw views alias the body instead
  tile::TileView v;

  CodecView(tile::TileCodec codec, std::vector<tile::SnbEdge> edges) {
    std::sort(edges.begin(), edges.end());  // what the v3 writer does
    payload = tile::encode_tile_as(codec, edges);
    const tile::TileCodecInfo info = tile::parse_tile_payload(payload);
    v.src_base = 1 << 16;
    v.dst_base = 2 << 16;
    v.codec = info.codec;
    v.src_bits = static_cast<std::uint8_t>(info.src_bits);
    v.dst_bits = static_cast<std::uint8_t>(info.dst_bits);
    v.coded_edges = info.edge_count;
    v.payload = info.body;
    if (info.codec == tile::TileCodec::kRaw) {
      raw = std::move(edges);
      v.edges = raw;
    }
  }
};

void BM_CodecBlockDecode(benchmark::State& state, tile::TileCodec codec,
                         bool hub) {
  const std::size_t n = 1 << 14;
  const CodecView cv(codec, hub ? hub_tile(n) : random_tile(n, 7));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    tile::for_each_block(cv.v, [&](const tile::EdgeBlock& b) {
      sink += b.src[0] + b.dst[b.size - 1];
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.counters["payload_bytes"] =
      static_cast<double>(cv.payload.size());
}
BENCHMARK_CAPTURE(BM_CodecBlockDecode, raw_random, tile::TileCodec::kRaw,
                  false);
BENCHMARK_CAPTURE(BM_CodecBlockDecode, packed_random, tile::TileCodec::kPacked,
                  false);
BENCHMARK_CAPTURE(BM_CodecBlockDecode, delta_hub, tile::TileCodec::kDelta,
                  true);
BENCHMARK_CAPTURE(BM_CodecBlockDecode, packed_hub, tile::TileCodec::kPacked,
                  true);
BENCHMARK_CAPTURE(BM_CodecBlockDecode, runs_hub, tile::TileCodec::kRuns, true);
BENCHMARK_CAPTURE(BM_CodecBlockDecode, hybrid_hub, tile::TileCodec::kHybrid,
                  true);

// The migration this path exists for: a per-vertex metadata gather (the shape
// of BFS depth checks / PageRank contribution reads) over tiles whose bases
// scatter across a working set far larger than the LLC. The per-edge variant
// interleaves decode + gather one edge at a time; the block variant decodes
// SoA, prefetches every gather address, then runs the flat kernel.
struct GatherFixture {
  static constexpr std::size_t kVertices = 1 << 26;  // 256 MiB of metadata
  static constexpr std::size_t kTiles = 256;
  static constexpr std::size_t kEdgesPerTile = 1 << 13;
  std::vector<std::uint32_t> meta;
  std::vector<std::vector<tile::SnbEdge>> tiles;
  std::vector<tile::TileView> views;

  GatherFixture() : meta(kVertices, 1) {
    Xoshiro256 rng(8);
    tiles.reserve(kTiles);
    views.reserve(kTiles);
    for (std::size_t t = 0; t < kTiles; ++t) {
      tiles.push_back(random_tile(kEdgesPerTile, 100 + t));
      tile::TileView v;
      v.src_base = static_cast<graph::vid_t>(
          rng.next_below(kVertices - (1ull << 16)));
      v.dst_base = static_cast<graph::vid_t>(
          rng.next_below(kVertices - (1ull << 16)));
      v.edges = tiles.back();
      views.push_back(v);
    }
  }
  std::size_t edges_total() const { return kTiles * kEdgesPerTile; }
};

void BM_VisitEdges_vs_ProcessBlock(benchmark::State& state, bool block) {
  static const GatherFixture fx;  // shared: 64 MiB built once
  const std::uint32_t* meta = fx.meta.data();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (const tile::TileView& v : fx.views) {
      if (block) {
        tile::for_each_block(v, [&](const tile::EdgeBlock& b) {
          b.prefetch_src(meta);
          b.prefetch_dst(meta);
          for (std::uint32_t k = 0; k < b.size; ++k)
            sink += meta[b.src[k]] + meta[b.dst[k]];
        });
      } else {
        tile::visit_edges(v, [&](graph::vid_t a, graph::vid_t b) {
          sink += meta[a] + meta[b];
        });
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.edges_total()));
}
BENCHMARK_CAPTURE(BM_VisitEdges_vs_ProcessBlock, per_edge, false);
BENCHMARK_CAPTURE(BM_VisitEdges_vs_ProcessBlock, block, true);

void BM_CompressHubTile(benchmark::State& state) {
  const auto edges = hub_tile(static_cast<std::size_t>(state.range(0)));
  std::size_t compressed = 0;
  for (auto _ : state) {
    auto payload = tile::compress_tile(edges);
    compressed = payload.size();
    benchmark::DoNotOptimize(payload);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
  state.counters["ratio"] =
      double(edges.size() * sizeof(tile::SnbEdge)) / double(compressed);
}
BENCHMARK(BM_CompressHubTile)->Arg(1 << 14);

void BM_DecompressHubTile(benchmark::State& state) {
  const auto payload =
      tile::compress_tile(hub_tile(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto edges = tile::decompress_tile(payload);
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecompressHubTile)->Arg(1 << 14);

void BM_CacheModelAccess(benchmark::State& state) {
  cachesim::CacheHierarchy cache(256 << 10, 16 << 20);
  Xoshiro256 rng(4);
  for (auto _ : state) {
    cache.access(rng.next_below(64ull << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelAccess);

void BM_CompressedDegreeLookup(benchmark::State& state) {
  std::vector<graph::degree_t> deg(1 << 20, 9);
  for (int i = 0; i < 1000; ++i) deg[i * 1000] = 100000;
  const auto cd = graph::CompressedDegrees::build(deg);
  Xoshiro256 rng(5);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += cd[static_cast<graph::vid_t>(rng.next_below(deg.size()))];
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompressedDegreeLookup);

void BM_KroneckerGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto el = graph::kronecker(static_cast<unsigned>(state.range(0)), 8,
                               graph::GraphKind::kUndirected);
    benchmark::DoNotOptimize(el);
  }
  state.SetItemsProcessed(state.iterations() * (8ll << state.range(0)));
}
BENCHMARK(BM_KroneckerGeneration)->Arg(14)->Unit(benchmark::kMillisecond);

// WAL framing cost: every ingest batch is CRC'd before the fsync.
void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)));
  std::iota(buf.begin(), buf.end(), std::uint8_t{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 12)->Arg(1 << 20);

// Delta-buffer insertion: tile lookup + SNB encode + degree bump per edge.
void BM_DeltaBufferAdd(benchmark::State& state) {
  constexpr graph::vid_t kN = 1 << 20;
  tile::TileStoreMeta meta;
  meta.flags = 1;  // symmetric, undirected
  meta.vertex_count = kN;
  meta.tile_bits = 12;
  const tile::Grid grid(kN, /*symmetric=*/true, 12, 8);
  Xoshiro256 rng(6);
  std::vector<graph::Edge> edges(1 << 14);
  for (auto& e : edges) {
    e.src = static_cast<graph::vid_t>(rng.next_below(kN));
    e.dst = static_cast<graph::vid_t>(rng.next_below(kN));
    if (e.src == e.dst) e.dst = (e.dst + 1) % kN;
  }
  for (auto _ : state) {
    ingest::DeltaBuffer delta(grid, meta, ~std::uint64_t{0});
    delta.add_batch(edges);
    benchmark::DoNotOptimize(delta.edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_DeltaBufferAdd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gstore

// Custom main: default to machine-readable JSON next to the binary, so CI
// and scripts get BENCH_micro_kernels.json without extra flags. Any explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
