// Compression ablation — per-codec sizes and throughputs for the v3 tile
// format (what was the paper's §VIII future-work item is now the production
// payload encoding). For each graph: bytes under every codec forced across
// all tiles, bytes under compress_tile's per-tile pick, the pick histogram,
// and encode/decode throughput of the picked payloads.
//
// Writes BENCH_compression_ablation.json; benchmark-style flags are
// accepted and ignored so CI can pass one command line to every bench.
#include "bench_common.h"
#include "tile/compress.h"

int main(int, char**) {
  using namespace gstore;
  bench::banner("v3 tile-codec ablation",
                "per-tile codec pick: raw / delta / packed / runs / hybrid");

  const unsigned s = bench::scale();
  const unsigned tb = s > 10 ? s - 8 : 2;
  struct Case {
    std::string name;
    bench::NamedGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"Kron", bench::make_kron(s, bench::edge_factor(),
                                            graph::GraphKind::kUndirected)});
  cases.push_back({"Twitter-like",
                   bench::make_twitterish(s, bench::edge_factor(),
                                          graph::GraphKind::kDirected)});

  const char* codec_names[tile::kTileCodecCount] = {"raw", "delta", "packed",
                                                    "runs", "hybrid"};
  struct CaseResult {
    std::string name;
    std::uint64_t raw_bytes = 0, picked_bytes = 0;
    std::uint64_t forced_bytes[tile::kTileCodecCount] = {};
    std::uint64_t picks[tile::kTileCodecCount] = {};
    double encode_secs = 0, decode_secs = 0;
  };
  std::vector<CaseResult> results;

  bench::Table t({"graph", "raw tiles", "picked", "ratio", "delta", "packed",
                  "runs", "hybrid", "encode MB/s", "decode MB/s"});
  for (auto& c : cases) {
    io::TempDir dir("compress");
    tile::ConvertOptions copt;
    copt.tile_bits = tb;
    copt.compress = false;  // raw SNB tiles: the codecs run here, per tile
    auto store = bench::open_store(dir, c.g.el, copt);

    CaseResult r;
    r.name = c.name;
    std::vector<std::uint8_t> buf;
    for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k) {
      const std::uint64_t bytes = store.tile_bytes(k);
      if (bytes == 0) continue;
      buf.resize(bytes);
      store.read_range(k, k + 1, buf.data());
      std::vector<tile::SnbEdge> edges(
          reinterpret_cast<const tile::SnbEdge*>(buf.data()),
          reinterpret_cast<const tile::SnbEdge*>(buf.data()) + bytes / 4);
      std::sort(edges.begin(), edges.end());  // what the v3 writer does
      for (unsigned cc = 0; cc < tile::kTileCodecCount; ++cc)
        r.forced_bytes[cc] +=
            tile::encode_tile_as(static_cast<tile::TileCodec>(cc), edges)
                .size();
      Timer te;
      auto payload = tile::compress_tile(edges);
      r.encode_secs += te.seconds();
      r.raw_bytes += bytes;
      r.picked_bytes += payload.size();
      ++r.picks[payload[0]];
      Timer td;
      auto back = tile::decompress_tile(payload);
      r.decode_secs += td.seconds();
      if (back.size() != edges.size()) {
        std::fprintf(stderr, "roundtrip mismatch!\n");
        return 1;
      }
    }
    t.row({r.name, bench::fmt_bytes(r.raw_bytes),
           bench::fmt_bytes(r.picked_bytes),
           bench::fmt(double(r.raw_bytes) / r.picked_bytes) + "x",
           bench::fmt_bytes(r.forced_bytes[1]), bench::fmt_bytes(r.forced_bytes[2]),
           bench::fmt_bytes(r.forced_bytes[3]), bench::fmt_bytes(r.forced_bytes[4]),
           bench::fmt(r.raw_bytes / r.encode_secs / (1 << 20), 0),
           bench::fmt(r.raw_bytes / r.decode_secs / (1 << 20), 0)});
    results.push_back(r);
  }
  t.print();

  std::printf("\n[codec pick histogram]\n");
  bench::Table h({"graph", "raw", "delta", "packed", "runs", "hybrid"});
  for (const auto& r : results)
    h.row({r.name, std::to_string(r.picks[0]), std::to_string(r.picks[1]),
           std::to_string(r.picks[2]), std::to_string(r.picks[3]),
           std::to_string(r.picks[4])});
  h.print();

  std::FILE* json = std::fopen("BENCH_compression_ablation.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"compression_ablation\",\n"
                 "  \"scale\": %u,\n  \"tile_bits\": %u,\n  \"graphs\": [\n",
                 s, tb);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(json,
                   "    {\"graph\": \"%s\", \"raw_bytes\": %llu, "
                   "\"picked_bytes\": %llu, \"ratio\": %.4f,\n"
                   "     \"encode_mb_s\": %.1f, \"decode_mb_s\": %.1f,\n"
                   "     \"forced_bytes\": {",
                   r.name.c_str(), static_cast<unsigned long long>(r.raw_bytes),
                   static_cast<unsigned long long>(r.picked_bytes),
                   double(r.raw_bytes) / r.picked_bytes,
                   r.raw_bytes / r.encode_secs / (1 << 20),
                   r.raw_bytes / r.decode_secs / (1 << 20));
      for (unsigned cc = 0; cc < tile::kTileCodecCount; ++cc)
        std::fprintf(json, "\"%s\": %llu%s", codec_names[cc],
                     static_cast<unsigned long long>(r.forced_bytes[cc]),
                     cc + 1 < tile::kTileCodecCount ? ", " : "},\n");
      std::fprintf(json, "     \"picks\": {");
      for (unsigned cc = 0; cc < tile::kTileCodecCount; ++cc)
        std::fprintf(json, "\"%s\": %llu%s", codec_names[cc],
                     static_cast<unsigned long long>(r.picks[cc]),
                     cc + 1 < tile::kTileCodecCount ? ", " : "}");
      std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_compression_ablation.json\n");
  }
  return 0;
}
