// Compression ablation — the paper's §VIII future-work item ("compression
// can be applied to the data present in tiles to provide further space
// saving"). Measures the varint-delta intra-tile codec on each graph: bytes
// before/after, ratio, and encode/decode throughput, per tile-occupancy
// class (dense hub tiles compress well; sparse tiles stay raw).
#include "bench_common.h"
#include "tile/compress.h"

int main() {
  using namespace gstore;
  bench::banner("Extension: intra-tile compression ablation",
                "paper §VIII future work — delta compression inside tiles");

  const unsigned s = bench::scale();
  const unsigned tb = s > 10 ? s - 8 : 2;
  struct Case {
    std::string name;
    bench::NamedGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"Kron", bench::make_kron(s, bench::edge_factor(),
                                            graph::GraphKind::kUndirected)});
  cases.push_back({"Twitter-like",
                   bench::make_twitterish(s, bench::edge_factor(),
                                          graph::GraphKind::kDirected)});

  bench::Table t({"graph", "raw tiles", "compressed", "ratio", "encode MB/s",
                  "decode MB/s", "tiles raw-fallback"});
  for (auto& c : cases) {
    io::TempDir dir("compress");
    tile::ConvertOptions copt;
    copt.tile_bits = tb;
    auto store = bench::open_store(dir, c.g.el, copt);

    std::uint64_t raw_bytes = 0, comp_bytes = 0, fallback = 0;
    double encode_secs = 0, decode_secs = 0;
    std::vector<std::uint8_t> buf;
    for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k) {
      const std::uint64_t bytes = store.tile_bytes(k);
      if (bytes == 0) continue;
      buf.resize(bytes);
      store.read_range(k, k + 1, buf.data());
      std::vector<tile::SnbEdge> edges(
          reinterpret_cast<const tile::SnbEdge*>(buf.data()),
          reinterpret_cast<const tile::SnbEdge*>(buf.data()) + bytes / 4);
      Timer te;
      auto payload = tile::compress_tile(edges);
      encode_secs += te.seconds();
      raw_bytes += bytes;
      comp_bytes += payload.size();
      if (static_cast<tile::TileCodec>(payload[0]) == tile::TileCodec::kRaw)
        ++fallback;
      Timer td;
      auto back = tile::decompress_tile(payload);
      decode_secs += td.seconds();
      if (back.size() != edges.size()) {
        std::fprintf(stderr, "roundtrip mismatch!\n");
        return 1;
      }
    }
    t.row({c.name, bench::fmt_bytes(raw_bytes), bench::fmt_bytes(comp_bytes),
           bench::fmt(double(raw_bytes) / comp_bytes) + "x",
           bench::fmt(raw_bytes / encode_secs / (1 << 20), 0),
           bench::fmt(raw_bytes / decode_secs / (1 << 20), 0),
           std::to_string(fallback)});
  }
  t.print();
  return 0;
}
