// Figure 11 — in-memory PageRank speedup for different physical-group sizes
// (the paper groups 32x32 … 1024x1024 tiles and finds 256x256 optimal: small
// groups thrash, huge groups overflow the LLC with metadata).
//
// The locality gradient only exists when the algorithm's metadata exceeds
// the cache level that grouping targets. The paper's rank array is 1GB vs a
// 16MB LLC; this container exposes a 2MB L2, so the sweep forces a vertex
// count whose 4B-per-vertex metadata (8MB at scale 21) clearly exceeds it
// regardless of the GSTORE_BENCH_SCALE default.
#include "algo/pagerank.h"
#include "bench_common.h"
#include "tile/grouping.h"

int main() {
  using namespace gstore;
  bench::banner("Fig 11: in-memory speedup from physical grouping",
                "paper Fig 11 — 256x256 grouping ~57% faster than 32x32");

  const unsigned s = std::max(bench::scale(), 21u);
  std::printf("graph: Kron-%u-8 (rank array %s, must exceed L2/LLC)\n", s,
              bench::fmt_bytes((std::uint64_t{1} << s) * 4).c_str());
  auto g = bench::make_kron(s, 8, graph::GraphKind::kUndirected);
  const unsigned tb = s - 10;  // 1024 tiles per side

  bench::Table t({"group (tiles)", "group metadata", "PR time (s)",
                  "speedup vs smallest"});
  double base = 0;
  for (const std::uint32_t q : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    io::TempDir dir("fig11");
    tile::ConvertOptions copt;
    copt.tile_bits = tb;
    copt.group_side = q;
    auto store = bench::open_store(dir, g.el, copt);
    store::EngineConfig cfg;
    cfg.stream_memory_bytes = store.data_bytes() * 2 + (16 << 20);  // cached
    cfg.segment_bytes = 4 << 20;

    algo::TilePageRank pr(algo::PageRankOptions{0.85, 4, 0.0});
    Timer timer;
    store::ScrEngine(store, cfg).run(pr);
    const double secs = timer.seconds();
    if (base == 0) base = secs;
    // Metadata touched per group: source+destination vertex ranges × 4B.
    const std::uint64_t md =
        tile::group_metadata_bytes(store.grid(), 1 % store.grid().group_count(),
                                   4);
    t.row({std::to_string(q) + "x" + std::to_string(q), bench::fmt_bytes(md),
           bench::fmt(secs), bench::fmt(base / secs) + "x"});
  }
  t.print();
  std::printf("\n(1 CPU core in this container: locality effects are visible "
              "but milder than the paper's 56-thread testbed)\n");
  return 0;
}
