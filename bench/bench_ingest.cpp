// bench_ingest — throughput of the online write path (docs/INGEST.md).
//
// Measures, on a Kronecker graph split 90/10 into a base store and a delta
// batch stream:
//   * ingest rate   — edges/s through WAL append (fsync per frame) + delta
//   * replay rate   — edges/s re-reading and CRC-checking the whole WAL
//   * compaction    — edges/s and MB/s folding the WAL into generation 1
//   * overlay tax   — PageRank runtime with the delta overlaid vs after
//                     compaction (the read-path cost of un-compacted edges)
//
// Prints a table and writes BENCH_ingest.json for machine consumption.
#include <cstdio>

#include "algo/pagerank.h"
#include "bench_common.h"
#include "ingest/ingestor.h"
#include "ingest/wal.h"

namespace gstore::bench {
namespace {

struct PrRun {
  double seconds = 0;
  store::EngineStats stats;
};

PrRun run_pagerank(tile::TileStore& store) {
  algo::PageRankOptions popt;
  popt.max_iterations = 5;
  popt.tolerance = 0;
  algo::TilePageRank pr(popt);
  Timer t;
  PrRun out;
  out.stats = store::ScrEngine(store, store::EngineConfig{}).run(pr);
  out.seconds = t.seconds();
  return out;
}

int run() {
  banner("bench_ingest: WAL + delta overlay + compaction throughput",
         "new subsystem (no paper counterpart; G-Store is convert-once)");

  const unsigned s = scale() > 2 ? scale() - 2 : scale();
  graph::EdgeList full =
      graph::kronecker(s, edge_factor(), graph::GraphKind::kUndirected, 11);
  // Self loops are dropped by ingest and by the converter; strip them up
  // front so both paths see identical work and the .deg files agree.
  {
    std::vector<graph::Edge> kept;
    kept.reserve(full.edge_count());
    for (const graph::Edge& e : full.edges())
      if (e.src != e.dst) kept.push_back(e);
    full = graph::EdgeList(std::move(kept), full.vertex_count(), full.kind());
  }
  const auto cut = static_cast<std::size_t>(full.edge_count() * 0.9);
  graph::EdgeList base({full.edges().begin(), full.edges().begin() + cut},
                       full.vertex_count(), full.kind());
  const std::vector<graph::Edge> delta(full.edges().begin() + cut,
                                       full.edges().end());

  io::TempDir dir;
  tile::ConvertOptions copt = default_tile_opts();
  tile::convert_to_tiles(base, dir.file("g"), copt);

  // --- ingest rate (batched WAL appends, one fsync each) ---
  ingest::IngestorOptions iopt;
  iopt.delta_budget_bytes = 1ull << 30;  // never auto-compact mid-measurement
  ingest::EdgeIngestor ingestor(dir.file("g"), iopt);
  constexpr std::size_t kBatch = 65536;
  Timer t_ingest;
  std::uint64_t ingested = 0;
  for (std::size_t at = 0; at < delta.size(); at += kBatch)
    ingested += ingestor.ingest(std::span<const graph::Edge>(delta).subspan(
        at, std::min(kBatch, delta.size() - at)));
  const double ingest_s = t_ingest.seconds();
  const double ingest_eps = ingested / std::max(ingest_s, 1e-9);

  // --- replay rate (full CRC-checked scan of the log) ---
  Timer t_replay;
  const ingest::WalReplay replayed =
      ingest::EdgeWal::replay(ingest::EdgeWal::path_for(dir.file("g")));
  const double replay_s = t_replay.seconds();
  const double replay_eps = replayed.edges.size() / std::max(replay_s, 1e-9);

  // --- read-path tax of the overlay ---
  const PrRun pr_overlay = run_pagerank(ingestor.store());
  const double pr_overlay_s = pr_overlay.seconds;

  // --- compaction throughput ---
  const ingest::CompactStats cs = ingestor.compact();
  const double compact_eps = cs.merged_edges / std::max(cs.seconds, 1e-9);
  const double compact_mbps =
      cs.bytes_written / double(1 << 20) / std::max(cs.seconds, 1e-9);

  const PrRun pr_compacted = run_pagerank(ingestor.store());
  const double pr_compacted_s = pr_compacted.seconds;
  // I/O resilience context: recovery counters across both engine runs. On
  // healthy hardware these are all zero; nonzero values explain outliers in
  // the timing columns (retried reads stall tiles, backoff sleeps serialize).
  const store::EngineStats& eo = pr_overlay.stats;
  const store::EngineStats& ec = pr_compacted.stats;
  const unsigned long long io_retries = eo.retries + ec.retries;
  const unsigned long long io_short_reads = eo.short_reads + ec.short_reads;
  const unsigned long long io_failed_reads = eo.failed_reads + ec.failed_reads;
  const double io_backoff_s = eo.backoff_seconds + ec.backoff_seconds;

  Table table({"metric", "value"});
  table.row({"graph", "Kron-" + std::to_string(s) + " (" +
                          std::to_string(full.edge_count()) + " edges)"})
      .row({"delta edges", std::to_string(ingested)})
      .row({"ingest rate", fmt(ingest_eps / 1e6, 2) + " Medges/s"})
      .row({"replay rate", fmt(replay_eps / 1e6, 2) + " Medges/s"})
      .row({"compaction rate", fmt(compact_eps / 1e6, 2) + " Medges/s"})
      .row({"compaction write", fmt(compact_mbps, 1) + " MB/s"})
      .row({"pagerank w/ overlay", fmt(pr_overlay_s, 3) + " s"})
      .row({"pagerank compacted", fmt(pr_compacted_s, 3) + " s"});
  table.print();

  std::FILE* json = std::fopen("BENCH_ingest.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"ingest\",\n"
        "  \"scale\": %u,\n"
        "  \"edge_factor\": %u,\n"
        "  \"base_edges\": %llu,\n"
        "  \"delta_edges\": %llu,\n"
        "  \"ingest_edges_per_sec\": %.0f,\n"
        "  \"replay_edges_per_sec\": %.0f,\n"
        "  \"compaction_edges_per_sec\": %.0f,\n"
        "  \"compaction_write_mb_per_sec\": %.1f,\n"
        "  \"compaction_seconds\": %.4f,\n"
        "  \"pagerank_overlay_seconds\": %.4f,\n"
        "  \"pagerank_compacted_seconds\": %.4f,\n"
        "  \"new_generation\": %u,\n"
        "  \"io_retries\": %llu,\n"
        "  \"io_short_reads\": %llu,\n"
        "  \"io_failed_reads\": %llu,\n"
        "  \"io_backoff_seconds\": %.4f\n"
        "}\n",
        s, edge_factor(), static_cast<unsigned long long>(cs.base_edges),
        static_cast<unsigned long long>(ingested), ingest_eps, replay_eps,
        compact_eps, compact_mbps, cs.seconds, pr_overlay_s, pr_compacted_s,
        cs.new_generation, io_retries, io_short_reads, io_failed_reads,
        io_backoff_s);
    std::fclose(json);
    std::printf("\nwrote BENCH_ingest.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace gstore::bench

int main() { return gstore::bench::run(); }
