// Table III — runtime of the big-graph runs (the paper: Kron-31-256 with a
// trillion edges in 32-70 minutes; Kron-33-16). This machine cannot hold a
// trillion edges, so we run the largest Kronecker graph that fits
// (GSTORE_BENCH_BIG_SCALE, default 20 → 16M edges) through the identical
// pipeline and report the same rows: seconds per algorithm plus the BFS
// MTEPS figure the paper quotes (432 MTEPS external BFS).
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "bench_common.h"

int main() {
  using namespace gstore;
  bench::banner("Table III: large-graph runtimes (scaled)",
                "paper Table III — BFS/PageRank/WCC on the largest graph");

  const unsigned s = bench::big_scale();
  const unsigned ef = bench::edge_factor();
  std::printf("generating Kron-%u-%u (undirected)...\n", s, ef);
  auto g = bench::make_kron(s, ef, graph::GraphKind::kUndirected);
  io::TempDir dir("tab3");

  Timer conv;
  auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), {});
  std::printf("converted: %s on disk (%.1fs)\n",
              bench::fmt_bytes(store.storage_bytes()).c_str(), conv.seconds());

  // The paper reserves 8GB for streaming on a 512GB graph (~1.5%); mirror
  // that ratio but keep at least a few MB.
  store::EngineConfig cfg = bench::engine_config_fraction(store, 0.10);

  bench::Table t({"algorithm", "time (s)", "iterations", "MiB read", "notes"});

  double bfs_secs = 0;
  std::uint64_t traversed = 0;
  {
    algo::TileBfs bfs(bench::hub_root(g.el));
    Timer timer;
    const auto stats = store::ScrEngine(store, cfg).run(bfs);
    bfs_secs = timer.seconds();
    const auto deg = g.el.degrees();
    for (graph::vid_t v = 0; v < g.el.vertex_count(); ++v)
      if (bfs.depth()[v] >= 0) traversed += deg[v];
    traversed /= 2;
    t.row({"BFS", bench::fmt(bfs_secs), std::to_string(stats.iterations),
           bench::fmt(stats.bytes_read / double(1 << 20), 1),
           bench::fmt(traversed / bfs_secs / 1e6, 1) + " MTEPS"});
  }
  {
    algo::TilePageRank pr(algo::PageRankOptions{0.85, 5, 0.0});
    Timer timer;
    const auto stats = store::ScrEngine(store, cfg).run(pr);
    const double per_iter = timer.seconds() / pr.iterations_run();
    t.row({"PageRank", bench::fmt(timer.seconds()),
           std::to_string(pr.iterations_run()),
           bench::fmt(stats.bytes_read / double(1 << 20), 1),
           bench::fmt(per_iter) + " s/iter"});
  }
  {
    algo::TileWcc wcc;
    Timer timer;
    const auto stats = store::ScrEngine(store, cfg).run(wcc);
    t.row({"WCC", bench::fmt(timer.seconds()), std::to_string(stats.iterations),
           bench::fmt(stats.bytes_read / double(1 << 20), 1),
           std::to_string(wcc.component_count()) + " components"});
  }
  t.print();

  std::printf("\npaper (Kron-31-256, 1T edges, 8 SSDs, 56 threads):\n");
  std::printf("  BFS 2548s (432 MTEPS) | PageRank 4215s | WCC 1925s\n");
  std::printf("paper (Kron-33-16, 256B edges):\n");
  std::printf("  BFS 1509s | PageRank 1883s | WCC 849s\n");
  return 0;
}
