// Figure 2 — the three motivating observations.
//  (a) PageRank speedup when the streamed edge tuple shrinks 16B → 8B
//      (X-Stream-like engine; the paper measures ~2×).
//  (b) In-memory PageRank vs number of 2D partitions (metadata access
//      localization; the paper peaks around 128–256 partitions).
//  (c) PageRank vs streaming memory size (flat: more streaming memory alone
//      does not help a disk-bound run).
#include <numeric>

#include "algo/pagerank.h"
#include "baseline/xstream.h"
#include "bench_common.h"
#include "graph/csr.h"

namespace gstore {
namespace {

using bench::Table;
using bench::fmt;

void part_a() {
  bench::banner("Fig 2(a): PageRank vs edge-tuple size (X-Stream-like engine)",
                "paper Fig 2(a) — halving tuple size ≈ doubles performance");
  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  const auto deg = g.el.degrees();

  Table t({"tuple size", "PR time (s)", "edge bytes read", "speedup vs 16B"});
  double t16 = 0;
  for (const std::size_t tuple : {std::size_t{16}, std::size_t{8}}) {
    io::TempDir dir("fig2a");
    const std::uint64_t bytes =
        baseline::write_xstream_edges(dir.file("e"), g.el, tuple);
    baseline::XStreamConfig cfg;
    cfg.tuple_bytes = tuple;
    cfg.device = bench::one_ssd();
    baseline::XStreamEngine eng(dir.file("e"), dir.path(), g.el.vertex_count(),
                                bytes / tuple, cfg);
    std::vector<float> rank;
    Timer timer;
    const auto stats = eng.run_pagerank(3, 0.85, deg, rank);
    const double secs = timer.seconds();
    if (tuple == 16) t16 = secs;
    t.row({std::to_string(tuple) + "B", fmt(secs), bench::fmt_bytes(stats.edge_bytes_read),
           fmt(t16 / secs) + "x"});
  }
  t.print();
}

void part_b() {
  bench::banner("Fig 2(b): in-memory PageRank vs partition count",
                "paper Fig 2(b) — localization peaks around 128-256 partitions");
  // 2D-partitioned in-memory PageRank: edges bucketed into k x k partitions;
  // processing partition-by-partition localizes rank-array accesses.
  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  const graph::vid_t n = g.el.vertex_count();
  const auto deg = g.el.degrees();

  Table t({"partitions (k x k)", "PR iter time (s)", "speedup vs k=1"});
  double t1 = 0;
  for (const unsigned k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    // Bucket edges by (src_part, dst_part), partitions in row-major order.
    const graph::vid_t span = (n + k - 1) / k;
    std::vector<std::vector<graph::Edge>> parts(std::size_t{k} * k);
    for (const graph::Edge& e : g.el.edges()) {
      if (e.src == e.dst) continue;
      parts[std::size_t{e.src / span} * k + e.dst / span].push_back(e);
    }
    std::vector<float> rank(n, 1.0f / n), incoming(n, 0.0f), contrib(n);
    Timer timer;
    for (int iter = 0; iter < 3; ++iter) {
      for (graph::vid_t v = 0; v < n; ++v)
        contrib[v] = deg[v] ? rank[v] / deg[v] : 0.0f;
      std::fill(incoming.begin(), incoming.end(), 0.0f);
      for (const auto& part : parts)
        for (const graph::Edge& e : part) {
          incoming[e.dst] += contrib[e.src];
          incoming[e.src] += contrib[e.dst];
        }
      for (graph::vid_t v = 0; v < n; ++v)
        rank[v] = 0.15f / n + 0.85f * incoming[v];
    }
    const double secs = timer.seconds() / 3;
    if (k == 1) t1 = secs;
    t.row({std::to_string(k) + "x" + std::to_string(k), fmt(secs, 4),
           fmt(t1 / secs) + "x"});
  }
  t.print();
}

void part_c() {
  bench::banner("Fig 2(c): PageRank vs streaming memory size",
                "paper Fig 2(c) — streaming memory alone has little effect");
  io::TempDir dir("fig2c");
  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), bench::one_ssd());

  Table t({"stream memory", "PR time (s)", "relative"});
  double base = 0;
  for (const std::uint64_t mem_mb : {2u, 4u, 8u, 16u, 32u}) {
    store::EngineConfig cfg;
    cfg.stream_memory_bytes = mem_mb << 20;
    cfg.segment_bytes = cfg.stream_memory_bytes / 2;  // segments only
    cfg.policy = store::CachePolicyKind::kNone;       // isolate streaming
    cfg.rewind = false;
    algo::TilePageRank pr(algo::PageRankOptions{0.85, 3, 0.0});
    Timer timer;
    store::ScrEngine(store, cfg).run(pr);
    const double secs = timer.seconds();
    if (base == 0) base = secs;
    t.row({std::to_string(mem_mb) + "MB", fmt(secs), fmt(secs / base) + "x"});
  }
  t.print();
}

}  // namespace
}  // namespace gstore

int main() {
  gstore::part_a();
  gstore::part_b();
  gstore::part_c();
  return 0;
}
