// Cross-engine matrix: all four architectures on one graph and equal memory.
//   G-Store     — symmetric SNB tiles, proactive caching, rewind
//   GridGraph   — full-matrix 8B grid, LRU (page-cache-like) caching  [§VIII]
//   FlashGraph  — semi-external CSR, selective vertex I/O, LRU pages  [Fig 9]
//   X-Stream    — fully external edge streaming with update files     [§VII-B]
// This is the summary view behind the paper's separate comparisons; bytes
// moved per run explains most of the ordering.
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "baseline/flashgraph.h"
#include "baseline/graphchi.h"
#include "baseline/gridgraph.h"
#include "baseline/xstream.h"
#include "bench_common.h"

int main() {
  using namespace gstore;
  bench::banner("Ablation: engine architecture matrix (PageRank, 5 iterations)",
                "summary of Fig 9 + §VII-B + §VIII comparisons");

  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  g.el.normalize();
  constexpr std::uint32_t kIters = 5;

  io::TempDir dir("matrix");
  bench::Table t({"engine", "on-disk", "PR time (s)", "bytes read", "vs G-Store"});
  double gstore_secs = 0;

  // G-Store
  {
    auto store =
        bench::open_store(dir, g.el, bench::default_tile_opts(), bench::one_ssd());
    store::EngineConfig cfg = bench::engine_config_fraction(store, 0.25);
    const std::uint64_t mem = cfg.stream_memory_bytes;
    algo::TilePageRank pr(algo::PageRankOptions{0.85, kIters, 0.0});
    Timer timer;
    const auto stats = store::ScrEngine(store, cfg).run(pr);
    gstore_secs = timer.seconds();
    t.row({"G-Store", bench::fmt_bytes(store.data_bytes()),
           bench::fmt(gstore_secs), bench::fmt_bytes(stats.bytes_read), "1.00x"});

    // GridGraph-like (same memory budget)
    {
      baseline::GridGraphConfig gcfg;
      gcfg.tile_bits = bench::default_tile_opts().tile_bits;
      gcfg.group_side = bench::default_tile_opts().group_side;
      gcfg.memory_bytes = mem;
      gcfg.device = bench::one_ssd();
      baseline::convert_to_gridgraph(g.el, dir.file("gg"), gcfg);
      baseline::GridGraphEngine eng(dir.file("gg"), gcfg);
      algo::TilePageRank pr2(algo::PageRankOptions{0.85, kIters, 0.0});
      Timer timer2;
      const auto s = eng.run(pr2);
      t.row({"GridGraph-like", bench::fmt_bytes(eng.tile_store().data_bytes()),
             bench::fmt(timer2.seconds()), bench::fmt_bytes(s.bytes_read),
             bench::fmt(timer2.seconds() / gstore_secs) + "x"});
    }
    // FlashGraph-like
    {
      tile::convert_to_csr_file(g.el, dir.file("csr"));
      baseline::FlashGraphConfig fcfg;
      fcfg.cache_bytes = mem;
      fcfg.device = bench::one_ssd();
      baseline::FlashGraphEngine eng(dir.file("csr"), fcfg);
      std::vector<float> rank;
      Timer timer2;
      const auto s = eng.run_pagerank(kIters, 0.85, rank);
      t.row({"FlashGraph-like",
             bench::fmt_bytes(io::File::file_size(dir.file("csr") + ".adj") +
                              io::File::file_size(dir.file("csr") + ".beg")),
             bench::fmt(timer2.seconds()), bench::fmt_bytes(s.bytes_read),
             bench::fmt(timer2.seconds() / gstore_secs) + "x"});
    }
    // GraphChi-like (PSW)
    {
      baseline::GraphChiConfig ccfg;
      ccfg.shards = 8;
      ccfg.device = bench::one_ssd();
      const std::uint64_t psw_bytes =
          baseline::build_graphchi_shards(g.el, dir.file("psw"), ccfg);
      baseline::GraphChiEngine eng(dir.file("psw"), ccfg);
      std::vector<float> rank;
      Timer timer2;
      const auto s = eng.run_pagerank(kIters, 0.85, g.el.degrees(), rank);
      t.row({"GraphChi-like", bench::fmt_bytes(psw_bytes),
             bench::fmt(timer2.seconds()), bench::fmt_bytes(s.bytes_read),
             bench::fmt(timer2.seconds() / gstore_secs) + "x"});
    }
    // X-Stream-like
    {
      const std::uint64_t xbytes =
          baseline::write_xstream_edges(dir.file("xs"), g.el, 8);
      baseline::XStreamConfig xcfg;
      xcfg.device = bench::one_ssd();
      xcfg.partitions = 4;
      baseline::XStreamEngine eng(dir.file("xs"), dir.path(),
                                  g.el.vertex_count(), xbytes / 8, xcfg);
      std::vector<float> rank;
      Timer timer2;
      const auto s = eng.run_pagerank(kIters, 0.85, g.el.degrees(), rank);
      t.row({"X-Stream-like", bench::fmt_bytes(xbytes),
             bench::fmt(timer2.seconds()),
             bench::fmt_bytes(s.edge_bytes_read + s.update_bytes_read +
                              s.update_bytes_written),
             bench::fmt(timer2.seconds() / gstore_secs) + "x"});
    }
  }
  t.print();
  return 0;
}
