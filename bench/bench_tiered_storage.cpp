// Tiered storage (paper §IX future work implemented): run the engine with
// part of the graph on an emulated SSD and the rest on an emulated HDD,
// sweeping the SSD share. Placement matters: putting the *largest* tiles on
// the SSD (where the power-law edge mass lives) beats a naive prefix
// placement at the same SSD capacity.
#include "algo/pagerank.h"
#include "bench_common.h"

namespace gstore {
namespace {

double run_pr(tile::TileStore& store) {
  store::EngineConfig cfg = bench::engine_config_fraction(store, 0.2);
  cfg.policy = store::CachePolicyKind::kNone;  // isolate raw tier bandwidth
  cfg.rewind = false;
  algo::TilePageRank pr(algo::PageRankOptions{0.85, 3, 0.0});
  Timer t;
  store::ScrEngine(store, cfg).run(pr);
  return t.seconds();
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Extension: tiered storage (SSD + HDD)",
                "paper §IX future work — hot tiles on SSD, bulk on HDD");

  auto g = bench::make_twitterish(bench::scale(), bench::edge_factor(),
                                  graph::GraphKind::kDirected);
  io::TempDir dir("tiered");
  tile::convert_to_tiles(g.el, dir.file("g"), bench::default_tile_opts());

  io::DeviceConfig dev;
  dev.devices = 1;
  dev.per_device_bw = 256ull << 20;  // SSD tier
  dev.slow_tier_bw = 32ull << 20;    // HDD tier (sequential-ish)
  dev.burst_bytes = 64 << 10;

  bench::Table t({"SSD share", "placement", "PR time (s)", "vs all-HDD"});
  double hdd_base = 0;
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const tile::TierPolicy policy :
         {tile::TierPolicy::kLargestTiles, tile::TierPolicy::kHotPrefix}) {
      auto store = tile::TileStore::open_tiered(dir.file("g"), dev, frac, policy);
      const double secs = run_pr(store);
      if (hdd_base == 0) hdd_base = secs;
      t.row({bench::fmt(100 * frac, 0) + "%",
             policy == tile::TierPolicy::kLargestTiles ? "largest-tiles"
                                                       : "prefix",
             bench::fmt(secs), bench::fmt(hdd_base / secs) + "x"});
      if (frac == 0.0 || frac == 1.0) break;  // placement irrelevant at ends
    }
  }
  t.print();
  std::printf("\n(largest-tiles placement concentrates the skewed edge mass "
              "on the fast tier,\n so mid-range SSD shares recover most of "
              "the all-SSD performance)\n");
  return 0;
}
