// I/O-path ablation (paper §V-B: batched Linux AIO instead of "direct and
// synchronous POSIX I/O", overlapped with compute via the two-segment
// slide). Three configurations on the same store and algorithm:
//   sync          — synchronous reads, no overlap (the POSIX baseline)
//   async         — batched async engine, but compute waits for each segment
//   async+overlap — the G-Store design: next segment loads while this one
//                   computes
// Also reports the syscall batching the paper highlights: read requests per
// submit call.
#include "algo/bfs.h"
#include "algo/pagerank.h"
#include "bench_common.h"

namespace gstore {
namespace {

struct Mode {
  const char* name;
  io::Backend backend;
  bool overlap;
};

constexpr Mode kModes[] = {
    {"sync POSIX", io::Backend::kSync, false},
    {"async batched", io::Backend::kThreadPool, false},
    {"async + overlap", io::Backend::kThreadPool, true},
};

template <typename RunFn>
void sweep(const char* title, const graph::EdgeList& el, RunFn&& run) {
  bench::Table t({"I/O mode", "time (s)", "speedup", "io-wait (s)",
                  "reqs/submit"});
  double base = 0;
  for (const auto& m : kModes) {
    io::TempDir dir("aio");
    // Overlap matters when storage keeps pace with compute (the paper's
    // 8-SSD array feeding 56 threads): emulate a fast NVMe-class device so
    // the I/O and compute phases are comparable on this machine.
    io::DeviceConfig dev = bench::one_ssd();
    dev.per_device_bw = static_cast<std::uint64_t>(
        env_int("GSTORE_BENCH_FAST_MBPS", 512)) << 20;
    dev.backend = m.backend;
    auto store = bench::open_store(dir, el, bench::default_tile_opts(), dev);
    store::EngineConfig cfg = bench::engine_config_fraction(store, 0.25);
    cfg.overlap_io = m.overlap;
    cfg.policy = store::CachePolicyKind::kNone;  // isolate the I/O path
    cfg.rewind = false;

    Timer timer;
    const store::EngineStats stats = run(store, cfg);
    const double secs = timer.seconds();
    if (base == 0) base = secs;
    const auto dstats = store.device().stats();
    t.row({m.name, bench::fmt(secs), bench::fmt(base / secs) + "x",
           bench::fmt(stats.io_wait_seconds),
           dstats.submit_calls
               ? bench::fmt(double(dstats.read_ops) / dstats.submit_calls, 1)
               : "-"});
  }
  std::printf("\n%s\n", title);
  t.print();
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Ablation: asynchronous batched I/O and overlap",
                "paper §V-B — AIO batching + I/O/compute pipelining");

  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);

  sweep("PageRank (streaming: contiguous reads, overlap dominates)", g.el,
        [](tile::TileStore& store, const store::EngineConfig& cfg) {
          algo::TilePageRank pr(algo::PageRankOptions{0.85, 5, 0.0});
          return store::ScrEngine(store, cfg).run(pr);
        });
  const graph::vid_t root = bench::hub_root(g.el);
  sweep("BFS (selective: fragmented reads, batching merges them per submit)",
        g.el, [root](tile::TileStore& store, const store::EngineConfig& cfg) {
          algo::TileBfs bfs(root);
          return store::ScrEngine(store, cfg).run(bfs);
        });
  return 0;
}
