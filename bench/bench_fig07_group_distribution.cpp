// Figure 7 — range of edge counts across physical groups for the
// Twitter(-like) graph, group ids sorted by edge count. The paper (q = 256)
// reports 364,227 edges in the smallest non-trivial group and over a billion
// in the largest — i.e. groups span ~4 orders of magnitude, mostly tens to
// hundreds of MB.
#include <algorithm>

#include "bench_common.h"
#include "tile/grouping.h"

int main() {
  using namespace gstore;
  bench::banner("Fig 7: physical-group edge counts (Twitter-like)",
                "paper Fig 7 — group sizes span orders of magnitude");

  const unsigned s = bench::scale();
  const unsigned tb = s > 10 ? s - 8 : 2;  // ~256 tiles per side
  auto g = bench::make_twitterish(s, bench::edge_factor(),
                                  graph::GraphKind::kDirected);

  io::TempDir dir("fig7");
  tile::ConvertOptions copt;
  copt.tile_bits = tb;
  copt.group_side = 16;  // scaled analogue of the paper's q=256
  auto store = bench::open_store(dir, g.el, copt);

  auto stats = tile::group_stats(store);
  std::sort(stats.begin(), stats.end(),
            [](const auto& a, const auto& b) { return a.edges < b.edges; });

  bench::Table t({"group rank", "tiles", "edges", "size"});
  const std::size_t n = stats.size();
  for (const int pct : {0, 10, 25, 50, 75, 90, 100}) {
    const std::size_t idx =
        std::min(n - 1, static_cast<std::size_t>(pct / 100.0 * n));
    t.row({"p" + std::to_string(pct), std::to_string(stats[idx].tiles),
           std::to_string(stats[idx].edges), bench::fmt_bytes(stats[idx].bytes)});
  }
  t.print();

  const auto& smallest = stats.front();
  const auto& largest = stats.back();
  std::printf("\n%zu groups; smallest %llu edges, largest %llu edges (%.0fx)\n",
              n, static_cast<unsigned long long>(smallest.edges),
              static_cast<unsigned long long>(largest.edges),
              smallest.edges ? double(largest.edges) / smallest.edges : 0.0);
  std::printf("paper: smallest 364,227, largest >1B (~3000x) for Twitter q=256\n");
  return 0;
}
