// Figure 9 — G-Store speedup over the FlashGraph-like semi-external CSR
// engine for BFS / PageRank / CC on undirected (-u) and directed (-d)
// graphs. The paper reports ~2x (PageRank), ~1.5x (CC), ~1.4x (BFS
// undirected), and a slight FlashGraph win on directed BFS where G-Store has
// no space advantage.
#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "baseline/flashgraph.h"
#include "bench_common.h"

namespace gstore {
namespace {

constexpr std::uint32_t kPrIters = 5;

struct Workload {
  std::string name;
  graph::GraphKind kind;
  bench::NamedGraph (*make)(unsigned, unsigned, graph::GraphKind);
};

void run_workload(const Workload& w, bench::Table& t) {
  auto g = w.make(bench::scale(), bench::edge_factor(), w.kind);
  g.el.normalize();
  const std::string label =
      g.name + (w.kind == graph::GraphKind::kUndirected ? "-u" : "-d");

  io::TempDir dir("fig9");
  auto store = bench::open_store(dir, g.el, bench::default_tile_opts(), bench::one_ssd());
  tile::convert_to_csr_file(g.el, dir.file("csr"));

  store::EngineConfig cfg = bench::engine_config_fraction(store, 0.25);
  baseline::FlashGraphConfig fcfg;
  fcfg.cache_bytes = cfg.stream_memory_bytes;  // equal memory budgets
  fcfg.device = bench::one_ssd();

  const graph::vid_t root = bench::hub_root(g.el);

  auto time_gstore = [&](auto&& fn) {
    Timer timer;
    fn();
    return timer.seconds();
  };

  // BFS
  {
    algo::TileBfs bfs(root);
    const double gs =
        time_gstore([&] { store::ScrEngine(store, cfg).run(bfs); });
    baseline::FlashGraphEngine fg(dir.file("csr"), fcfg);
    std::vector<std::int32_t> depth;
    Timer timer;
    fg.run_bfs(root, depth);
    const double fgs = timer.seconds();
    t.row({label, "BFS", bench::fmt(gs), bench::fmt(fgs),
           bench::fmt(fgs / gs) + "x"});
  }
  // PageRank
  {
    algo::TilePageRank pr(algo::PageRankOptions{0.85, kPrIters, 0.0});
    const double gs = time_gstore([&] { store::ScrEngine(store, cfg).run(pr); });
    baseline::FlashGraphEngine fg(dir.file("csr"), fcfg);
    std::vector<float> rank;
    Timer timer;
    fg.run_pagerank(kPrIters, 0.85, rank);
    const double fgs = timer.seconds();
    t.row({label, "PageRank", bench::fmt(gs), bench::fmt(fgs),
           bench::fmt(fgs / gs) + "x"});
  }
  // CC / WCC
  {
    algo::TileWcc wcc;
    const double gs = time_gstore([&] { store::ScrEngine(store, cfg).run(wcc); });
    baseline::FlashGraphEngine fg(dir.file("csr"), fcfg);
    std::vector<graph::vid_t> label_out;
    Timer timer;
    fg.run_wcc(label_out);
    const double fgs = timer.seconds();
    t.row({label, "CC/WCC", bench::fmt(gs), bench::fmt(fgs),
           bench::fmt(fgs / gs) + "x"});
  }
}

}  // namespace
}  // namespace gstore

int main() {
  using namespace gstore;
  bench::banner("Fig 9: G-Store vs FlashGraph-like engine",
                "paper Fig 9 — ~2x PR, ~1.5x CC, ~1.4x BFS-u; BFS-d about even");

  bench::Table t({"graph", "algorithm", "G-Store (s)", "FlashGraph (s)",
                  "speedup"});
  const Workload workloads[] = {
      {"Kron", graph::GraphKind::kUndirected, bench::make_kron},
      {"Twitter-like", graph::GraphKind::kUndirected, bench::make_twitterish},
      {"Twitter-like", graph::GraphKind::kDirected, bench::make_twitterish},
      {"Friendster-like", graph::GraphKind::kUndirected, bench::make_friendsterish},
  };
  for (const auto& w : workloads) run_workload(w, t);
  t.print();
  return 0;
}
