// bench_priority — grid-order vs priority-driven selective tile scheduling
// (docs/SCHEDULING.md; ISSUE 10).
//
// On a skewed (R-MAT) graph behind the emulated one-SSD device profile,
// runs BFS, delta-stepping SSSP and push-based PageRank-delta under both
// schedules and records, per algorithm:
//   * sweeps        — grid iterations vs worklist rounds to convergence
//   * bytes fetched — total tile payload read from the device
//   * wasted bytes  — priority-round fetches that produced zero updates
//   * wall seconds  — end-to-end engine time
//   * identical     — BFS/SSSP results compared bit-for-bit across schedules
//
// What the numbers show (and why): on a COLD run the grid sweep with
// selective fetch is already a near-optimal byte amortizer — one fetch per
// active tile per sweep drains every pending row at once — so priority
// mode's exact worklist fetches match BFS byte-for-byte and sit within a
// few percent of grid on SSSP at a coarse delta, while fine deltas trade
// extra refetches for fewer wasted relaxations (PageRank-delta converts
// that into a wall-clock win when compute-bound). The decisive byte win of
// the worklist machinery is the INCREMENTAL path, measured last: resuming
// a converged SSSP over a small WAL delta re-fetches only the perturbed
// neighbourhood instead of re-streaming the graph (~3x fewer bytes here,
// and the gap widens with graph size at fixed delta-batch size). Prints a
// table and writes BENCH_priority.json for machine consumption.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "algo/bfs.h"
#include "algo/pagerank_delta.h"
#include "algo/sssp.h"
#include "bench_common.h"
#include "ingest/delta.h"

namespace gstore::bench {
namespace {

struct Run {
  std::uint64_t sweeps = 0;  // iterations (grid) or rounds (priority)
  std::uint64_t bytes_read = 0;
  std::uint64_t wasted_bytes = 0;
  double seconds = 0;
};

Run fold(const store::EngineStats& s, double seconds) {
  Run r;
  r.sweeps = s.rounds > 0 ? s.rounds : s.iterations;
  r.bytes_read = s.bytes_read;
  r.wasted_bytes = s.wasted_fetch_bytes;
  r.seconds = seconds;
  return r;
}

store::EngineConfig sched_config(const tile::TileStore& store,
                                 store::ScheduleMode mode) {
  store::EngineConfig cfg = engine_config_fraction(store, 0.2);
  cfg.schedule = mode;
  return cfg;
}

// Runs `make()`'s algorithm under both schedules on a fresh engine each and
// returns {grid, priority, results_identical}.
template <typename Algo, typename Make, typename Fingerprint>
std::pair<std::array<Run, 2>, bool> compare(tile::TileStore& store,
                                            const Make& make,
                                            const Fingerprint& fp) {
  std::array<Run, 2> out;
  Algo grid_algo = make();
  {
    store::ScrEngine engine(store,
                            sched_config(store, store::ScheduleMode::kGrid));
    Timer t;
    const store::EngineStats s = engine.run(grid_algo);
    out[0] = fold(s, t.seconds());
  }
  Algo prio_algo = make();
  {
    store::ScrEngine engine(
        store, sched_config(store, store::ScheduleMode::kPriority));
    Timer t;
    const store::EngineStats s = engine.run(prio_algo);
    out[1] = fold(s, t.seconds());
  }
  return {out, fp(grid_algo, prio_algo)};
}

int run() {
  banner("bench_priority: grid vs priority-driven tile scheduling",
         "delta-stepping worklists (no paper counterpart; docs/SCHEDULING.md)");

  // Skewed band graph: unscrambled, heavily diagonal R-MAT (the "subdomain
  // web" profile — dense communities with id locality) with every edge
  // folded into a band |u-v| <= W around the diagonal, plus a backbone
  // chain for connectivity. The band keeps the skew but gives the graph a
  // real diameter (~n/W hops instead of a small-world ~6), which is the
  // regime priority scheduling targets: a grid Bellman-Ford sweep
  // re-fetches every wavefront tile once per sweep for dozens of sweeps,
  // while bucket draining settles each tile in a few rounds. Small-world
  // graphs (Graph500 Kronecker) converge in so few sweeps that both
  // schedules fetch the same bytes — this bench measures the regime where
  // the schedule matters.
  graph::EdgeList skew =
      graph::rmat(scale(), edge_factor(), graph::GraphKind::kUndirected,
                  graph::RmatParams{0.65, 0.15, 0.15}, 42,
                  /*scramble=*/false);
  const graph::vid_t n = skew.vertex_count();
  const graph::vid_t band = n >> 5;
  std::vector<graph::Edge> edges;
  edges.reserve(skew.edge_count() + n);
  for (const graph::Edge& e : skew.edges()) {
    // Fold the far endpoint to the same offset within the source's band:
    // degree skew and within-community structure survive, long-range jumps
    // don't.
    const graph::vid_t span =
        e.src > e.dst ? e.src - e.dst : e.dst - e.src;
    graph::Edge f = e;
    if (span > band) f.dst = e.src ^ std::max<graph::vid_t>(span & (band - 1), 1);
    edges.push_back(f);
  }
  for (graph::vid_t u = 0; u + 1 < n; ++u) edges.push_back({u, u + 1});
  graph::EdgeList el(std::move(edges), n, graph::GraphKind::kUndirected);
  el.normalize();
  io::TempDir dir;
  tile::TileStore store = open_store(dir, el, default_tile_opts(), one_ssd());
  const graph::vid_t root = hub_root(el);

  const auto [bfs, bfs_same] = compare<algo::TileBfs>(
      store, [&] { return algo::TileBfs(root); },
      [](const algo::TileBfs& a, const algo::TileBfs& b) {
        return a.depth() == b.depth();
      });
  // Coarse default: buckets of ~delta/mean-weight hops keep the round
  // count near the sweep count, so each fetch drains as many rows as a
  // grid sweep would. Finer deltas (e.g. 8) order relaxations strictly —
  // fewer wasted relaxations, but each tile is refetched once per bucket
  // its rows span, which costs bytes at tile granularity.
  const float sssp_delta =
      static_cast<float>(env_int("GSTORE_BENCH_DELTA", 256));
  const auto [sssp, sssp_same] = compare<algo::TileSssp>(
      store,
      [&] {
        algo::TileSssp s(root);
        s.set_delta(sssp_delta);
        return s;
      },
      [](const algo::TileSssp& a, const algo::TileSssp& b) {
        const auto& da = a.distances();
        const auto& db = b.distances();
        return da.size() == db.size() &&
               std::memcmp(da.data(), db.data(),
                           da.size() * sizeof(float)) == 0;
      });
  const auto [pr, pr_converged] = compare<algo::TilePageRankDelta>(
      store, [] { return algo::TilePageRankDelta(algo::PageRankDeltaOptions{}); },
      [](const algo::TilePageRankDelta& a, const algo::TilePageRankDelta& b) {
        // Float ranks are epsilon-, not bit-comparable across schedules
        // (tests/property_test.cpp pins the epsilon); here record that both
        // drained their residual below tolerance.
        return a.residual_mass() < 1e-6 && b.residual_mass() < 1e-6;
      });

  // --- incremental recompute: resume over a WAL delta vs cold rerun ------
  // Converge SSSP once, splice a small batch of new band edges in as a
  // delta overlay, then resume from the converged state: the worklist is
  // seeded from only the delta-touched tiles and the cascade re-fetches
  // just the perturbed neighbourhood. The cold rerun over the same
  // base ∪ overlay view is the byte baseline it replaces.
  store::EngineStats resume_stats, rerun_stats;
  bool resume_same = false;
  {
    algo::TileSssp inc(root);
    inc.set_delta(sssp_delta);
    store::ScrEngine engine(
        store, sched_config(store, store::ScheduleMode::kPriority));
    engine.run(inc);

    std::vector<graph::Edge> batch;
    for (graph::vid_t k = 0; k < 24; ++k) {
      const graph::vid_t u = (root + k * 8191) % n;
      const graph::vid_t v = u ^ (1u + k % (band - 1));
      if (u != v && v < n) batch.push_back({u, v});
    }
    ingest::DeltaBuffer dbuf(store.grid(), store.meta(), 1 << 20);
    dbuf.add_batch(batch);
    const auto dirty = dbuf.take_dirty_tiles();
    store.attach_overlay(&dbuf);
    resume_stats = engine.resume(inc, dirty);

    algo::TileSssp ref(root);
    ref.set_delta(sssp_delta);
    store::ScrEngine rerun(
        store, sched_config(store, store::ScheduleMode::kPriority));
    rerun_stats = rerun.run(ref);
    resume_same =
        inc.distances().size() == ref.distances().size() &&
        std::memcmp(inc.distances().data(), ref.distances().data(),
                    inc.distances().size() * sizeof(float)) == 0;
    store.attach_overlay(nullptr);
  }

  struct NamedPair {
    const char* name;
    const std::array<Run, 2>& runs;
    bool same;
  };
  const NamedPair rows[] = {{"bfs", bfs, bfs_same},
                            {"sssp", sssp, sssp_same},
                            {"pagerank-delta", pr, pr_converged}};

  Table table({"algo", "schedule", "sweeps", "bytes read", "wasted",
               "seconds", "identical"});
  for (const auto& r : rows) {
    table.row({r.name, "grid", std::to_string(r.runs[0].sweeps),
               fmt_bytes(r.runs[0].bytes_read), "-",
               fmt(r.runs[0].seconds, 3), "-"});
    table.row({"", "priority", std::to_string(r.runs[1].sweeps),
               fmt_bytes(r.runs[1].bytes_read),
               fmt_bytes(r.runs[1].wasted_bytes), fmt(r.runs[1].seconds, 3),
               r.same ? "yes" : "NO"});
  }
  table.row({"sssp +delta", "cold rerun",
             std::to_string(rerun_stats.iterations),
             fmt_bytes(rerun_stats.bytes_read), "-", "-", "-"});
  table.row({"", "resume", std::to_string(resume_stats.rounds),
             fmt_bytes(resume_stats.bytes_read),
             fmt_bytes(resume_stats.wasted_fetch_bytes), "-",
             resume_same ? "yes" : "NO"});
  table.print();

  std::FILE* json = std::fopen("BENCH_priority.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"priority\",\n"
                 "  \"vertices\": %llu,\n"
                 "  \"edges\": %llu,\n",
                 static_cast<unsigned long long>(el.vertex_count()),
                 static_cast<unsigned long long>(el.edge_count()));
    for (std::size_t k = 0; k < 3; ++k) {
      const auto& r = rows[k];
      const double ratio =
          static_cast<double>(r.runs[1].bytes_read) /
          std::max<double>(static_cast<double>(r.runs[0].bytes_read), 1.0);
      std::fprintf(
          json,
          "  \"%s\": {\n"
          "    \"grid_sweeps\": %llu,\n"
          "    \"grid_bytes_read\": %llu,\n"
          "    \"grid_seconds\": %.4f,\n"
          "    \"priority_rounds\": %llu,\n"
          "    \"priority_bytes_read\": %llu,\n"
          "    \"priority_wasted_bytes\": %llu,\n"
          "    \"priority_seconds\": %.4f,\n"
          "    \"priority_byte_ratio\": %.4f,\n"
          "    \"identical\": %s\n"
          "  }%s\n",
          r.name, static_cast<unsigned long long>(r.runs[0].sweeps),
          static_cast<unsigned long long>(r.runs[0].bytes_read),
          r.runs[0].seconds,
          static_cast<unsigned long long>(r.runs[1].sweeps),
          static_cast<unsigned long long>(r.runs[1].bytes_read),
          static_cast<unsigned long long>(r.runs[1].wasted_bytes),
          r.runs[1].seconds, ratio, r.same ? "true" : "false",
          ",");
    }
    const double inc_ratio =
        static_cast<double>(resume_stats.bytes_read) /
        std::max<double>(static_cast<double>(rerun_stats.bytes_read), 1.0);
    std::fprintf(
        json,
        "  \"sssp_incremental\": {\n"
        "    \"cold_rerun_bytes_read\": %llu,\n"
        "    \"resume_bytes_read\": %llu,\n"
        "    \"resume_rounds\": %llu,\n"
        "    \"resume_byte_ratio\": %.4f,\n"
        "    \"identical\": %s\n"
        "  }\n",
        static_cast<unsigned long long>(rerun_stats.bytes_read),
        static_cast<unsigned long long>(resume_stats.bytes_read),
        static_cast<unsigned long long>(resume_stats.rounds), inc_ratio,
        resume_same ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_priority.json\n");
  }
  return (bfs_same && sssp_same && resume_same) ? 0 : 1;
}

}  // namespace
}  // namespace gstore::bench

int main() { return gstore::bench::run(); }
