// Figure 10 — speedup from the space-saving techniques, measured with three
// *real* on-disk format variants of the same graph:
//   Base          — full matrix (both orientations) + 8-byte tuples (the
//                   traditional 2D-partitioned layout: 4x the bytes)
//   Symmetry      — upper triangle + 8-byte tuples (2x the bytes)
//   Symmetry+SNB  — the G-Store format (1x)
// The paper measures ~2x from symmetry and 4.8-4.9x total: more than the 4x
// byte ratio, because the smaller format also caches a larger fraction of
// the graph in the same memory.
#include "algo/bfs.h"
#include "algo/pagerank.h"
#include "bench_common.h"

int main() {
  using namespace gstore;
  bench::banner("Fig 10: speedup from symmetry and SNB",
                "paper Fig 10 — ~2x from symmetry, ~4.8x with SNB");

  auto g = bench::make_kron(bench::scale(), bench::edge_factor(),
                            graph::GraphKind::kUndirected);
  g.el.normalize();

  struct Variant {
    const char* name;
    bool symmetry;
    bool snb;
  };
  const Variant variants[] = {
      {"Base", false, false},
      {"Symmetry", true, false},
      {"Symmetry+SNB", true, true},
  };

  bench::Table t({"format", "on-disk", "BFS (s)", "BFS speedup", "PR (s)",
                  "PR speedup"});
  double bfs_base = 0, pr_base = 0;
  for (const auto& v : variants) {
    io::TempDir dir("fig10");
    tile::ConvertOptions copt;
    copt.symmetry = v.symmetry;
    copt.snb = v.snb;
    auto store = bench::open_store(dir, g.el, copt, bench::one_ssd());
    // Fixed memory budget across variants (the paper allocates 8GB for all
    // three): sized relative to the *smallest* format so caching matters.
    store::EngineConfig cfg;
    cfg.stream_memory_bytes = std::max<std::uint64_t>(
        g.el.edge_count() * 4 / 2, 256 << 10);  // half the SNB format size
    cfg.segment_bytes = cfg.stream_memory_bytes / 8;

    algo::TileBfs bfs(bench::hub_root(g.el));
    Timer tb;
    store::ScrEngine(store, cfg).run(bfs);
    const double bfs_secs = tb.seconds();
    if (bfs_base == 0) bfs_base = bfs_secs;

    algo::TilePageRank pr(algo::PageRankOptions{0.85, 5, 0.0});
    Timer tp;
    store::ScrEngine(store, cfg).run(pr);
    const double pr_secs = tp.seconds();
    if (pr_base == 0) pr_base = pr_secs;

    t.row({v.name, bench::fmt_bytes(store.data_bytes()), bench::fmt(bfs_secs),
           bench::fmt(bfs_base / bfs_secs, 1) + "x", bench::fmt(pr_secs),
           bench::fmt(pr_base / pr_secs, 1) + "x"});
  }
  t.print();
  return 0;
}
