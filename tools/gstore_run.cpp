// gstore_run — run a graph algorithm on a converted tile store.
//
//   gstore_run --store=/data/kron20 --algo=bfs --root=1
//   gstore_run --store=/data/kron20 --algo=pagerank --iterations=20
//   gstore_run --store=/data/kron20 --algo=wcc --memory-mb=256
//   gstore_run --store=/data/kron20 --algo=kcore --k=8
//   gstore_run --store=/data/kron20 --algo=sssp --schedule=priority
//   gstore_run --store=/data/kron20 --algo=sssp --follow-wal --incremental
//
// Prints run statistics (iterations, bytes read, cache hits, timings) and an
// algorithm-specific summary. --schedule=priority drives the worklist
// scheduler (docs/SCHEDULING.md); --incremental runs cold without the
// overlay first, then resumes over only the WAL delta's tiles.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>

#include "algo/bfs.h"
#include "ingest/delta.h"
#include "ingest/wal.h"
#include "algo/bfs_async.h"
#include "algo/cc.h"
#include "algo/kcore.h"
#include "algo/pagerank.h"
#include "algo/pagerank_delta.h"
#include "algo/scc.h"
#include "algo/sssp.h"
#include "io/fault.h"
#include "store/scr_engine.h"
#include "tile/tile_file.h"
#include "util/options.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

bool g_trace = false;

void print_stats(const gstore::store::EngineStats& s, double secs) {
  const bool priority = s.rounds > 0;
  if (g_trace) {
    if (priority)
      std::printf(
          "round bucket  disk-tiles  cache-tiles  fetched-kb  edges        "
          "sec\n");
    else
      std::printf("iter  disk-tiles  cache-tiles  skipped  edges        sec\n");
    for (std::size_t k = 0; k < s.per_iteration.size(); ++k) {
      const auto& it = s.per_iteration[k];
      if (priority)
        std::printf("%-5zu %-7u %-11llu %-12llu %-11llu %-12llu %.4f\n", k,
                    it.bucket,
                    static_cast<unsigned long long>(it.tiles_from_disk),
                    static_cast<unsigned long long>(it.tiles_from_cache),
                    static_cast<unsigned long long>(it.bytes_fetched >> 10),
                    static_cast<unsigned long long>(it.edges_processed),
                    it.seconds);
      else
        std::printf("%-5zu %-11llu %-12llu %-8llu %-12llu %.4f\n", k,
                    static_cast<unsigned long long>(it.tiles_from_disk),
                    static_cast<unsigned long long>(it.tiles_from_cache),
                    static_cast<unsigned long long>(it.tiles_skipped),
                    static_cast<unsigned long long>(it.edges_processed),
                    it.seconds);
    }
  }
  if (priority)
    std::printf(
        "run: %.3fs | %llu rounds (max bucket %u) | %.1f MiB read in %llu "
        "batches | %llu tiles from disk, %llu from cache\n",
        secs, static_cast<unsigned long long>(s.rounds), s.max_bucket,
        s.bytes_read / double(1 << 20),
        static_cast<unsigned long long>(s.io_batches),
        static_cast<unsigned long long>(s.tiles_from_disk),
        static_cast<unsigned long long>(s.tiles_from_cache));
  else
    std::printf(
        "run: %.3fs | %u iterations | %.1f MiB read in %llu batches | "
        "%llu tiles from disk, %llu from cache, %llu skipped\n",
        secs, s.iterations, s.bytes_read / double(1 << 20),
        static_cast<unsigned long long>(s.io_batches),
        static_cast<unsigned long long>(s.tiles_from_disk),
        static_cast<unsigned long long>(s.tiles_from_cache),
        static_cast<unsigned long long>(s.tiles_skipped));
  std::printf("     io-wait %.3fs | compute %.3fs | %llu edges processed\n",
              s.io_wait_seconds, s.compute_seconds,
              static_cast<unsigned long long>(s.edges_processed));
  if (s.wasted_fetch_bytes)
    std::printf("     wasted fetches: %.1f MiB read in rounds with zero "
                "updates\n",
                s.wasted_fetch_bytes / double(1 << 20));
  if (s.retries || s.short_reads || s.failed_reads || s.tile_resubmits)
    std::printf("     recovery: %llu retries, %llu short reads, %llu failed "
                "reads, %llu tile resubmits, %.3fs backoff\n",
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.short_reads),
                static_cast<unsigned long long>(s.failed_reads),
                static_cast<unsigned long long>(s.tile_resubmits),
                s.backoff_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("store", "", "tile-store base path (from gstore_convert)");
  opts.add("algo", "bfs",
           "bfs | bfs-async | pagerank | pagerank-delta | wcc | sssp | kcore | "
           "scc");
  opts.add("in-store", "",
           "scc: base path of the matching in-edge store (convert with "
           "--in-edges)");
  opts.add("root", "0", "root vertex for bfs/sssp");
  opts.add("iterations", "20", "pagerank iteration cap");
  opts.add("tolerance", "1e-6", "pagerank convergence tolerance (0 = fixed)");
  opts.add("k", "4", "k for kcore");
  opts.add("memory-mb", "64", "streaming+caching memory (MiB)");
  opts.add("segment-mb", "8", "segment size (MiB)");
  opts.add("policy", "proactive", "caching policy: proactive | lru | none");
  opts.add_flag("no-rewind", "disable the rewind phase (base policy)");
  opts.add("devices", "0", "emulate N SSDs (0 = native speed)");
  opts.add("stripe", "0", "read .tiles from a striped set of N members");
  opts.add("fault-spec", "",
           "inject I/O faults, e.g. seed=7,eio=0.01,short=0.05,"
           "eintr=0.1,latency=0.01:5,torn-tail=64 (see io/fault.h)");
  opts.add_flag("follow-wal",
                "overlay un-compacted edges from <store>.wal onto the run");
  opts.add("schedule", "grid",
           "tile schedule: grid (row-order slide) | priority (bucketed "
           "worklist, highest-priority tiles first)");
  opts.add_flag("incremental",
                "with --follow-wal: run cold without the overlay, then attach "
                "it and resume over only the delta's tiles (bfs/sssp/"
                "pagerank-delta)");
  opts.add_flag("trace", "print per-iteration engine statistics");

  try {
    opts.parse(argc, argv);
    if (opts.help_requested() || opts.get("store").empty()) {
      std::fputs(opts.usage("gstore_run").c_str(), stdout);
      return opts.help_requested() ? 0 : 2;
    }

    io::DeviceConfig dev;
    dev.devices = static_cast<unsigned>(opts.get_int("devices"));
    dev.stripe_files = static_cast<unsigned>(opts.get_int("stripe"));
    dev.fault_spec = opts.get("fault-spec");
    if (!dev.fault_spec.empty())
      std::printf("fault injection: %s\n",
                  io::FaultSpec::parse(dev.fault_spec).to_string().c_str());
    auto store = tile::TileStore::open(opts.get("store"), dev);

    // --follow-wal: replay un-compacted edges into a read-only overlay so
    // the run observes them without waiting for a compaction. With
    // --incremental the attach is deferred: the cold run sees the base store
    // only, then resume() re-activates just the delta's tiles.
    const bool incremental =
        opts.get_bool("incremental") && opts.get_bool("follow-wal");
    std::unique_ptr<ingest::DeltaBuffer> overlay;
    if (opts.get_bool("follow-wal")) {
      const auto wal =
          ingest::EdgeWal::replay(ingest::EdgeWal::path_for(opts.get("store")));
      overlay = std::make_unique<ingest::DeltaBuffer>(
          store.grid(), store.meta(), ~std::uint64_t{0});
      if (wal.exists && wal.generation == store.meta().generation)
        overlay->add_batch(wal.edges);
      if (!incremental) store.attach_overlay(overlay.get());
      std::printf("wal: generation %u, %llu edges %s\n", wal.generation,
                  static_cast<unsigned long long>(overlay->ingested_edges()),
                  incremental ? "pending (incremental resume)" : "overlaid");
    }

    std::printf("store: %u vertices, %llu stored edges, %llu tiles, "
                "generation %u, %s%s%s\n",
                store.vertex_count(),
                static_cast<unsigned long long>(store.edge_count()),
                static_cast<unsigned long long>(store.grid().tile_count()),
                store.meta().generation,
                store.meta().symmetric() ? "symmetric" : "full",
                store.meta().directed() ? ", directed" : ", undirected",
                store.meta().fat_tuples() ? ", 8B tuples" : ", SNB");

    store::EngineConfig cfg;
    cfg.stream_memory_bytes =
        static_cast<std::uint64_t>(opts.get_int("memory-mb")) << 20;
    cfg.segment_bytes =
        static_cast<std::uint64_t>(opts.get_int("segment-mb")) << 20;
    const std::string policy = opts.get("policy");
    cfg.policy = policy == "lru"    ? store::CachePolicyKind::kLru
                 : policy == "none" ? store::CachePolicyKind::kNone
                                    : store::CachePolicyKind::kProactive;
    cfg.rewind = !opts.get_bool("no-rewind");
    const std::string schedule = opts.get("schedule");
    if (schedule == "priority")
      cfg.schedule = store::ScheduleMode::kPriority;
    else if (schedule != "grid")
      throw InvalidArgument("unknown schedule: " + schedule);

    g_trace = opts.get_bool("trace");
    store::ScrEngine engine(store, cfg);
    const std::string algo = opts.get("algo");
    const auto root = static_cast<graph::vid_t>(opts.get_int("root"));

    // --incremental epilogue: attach the deferred overlay and re-run over
    // only the tiles the WAL delta touched. Algorithms that cannot resume
    // from prior state (see docs/SCHEDULING.md) fall back to a cold rerun
    // inside resume().
    auto resume_delta = [&](store::TileAlgorithm& a) {
      if (!incremental || !overlay) return;
      store.attach_overlay(overlay.get());
      const auto delta = overlay->nonempty_tiles();
      std::printf("incremental: resuming over %zu delta tiles\n", delta.size());
      Timer rt;
      const auto rs = engine.resume(a, delta);
      print_stats(rs, rt.seconds());
    };
    Timer t;

    if (algo == "bfs") {
      algo::TileBfs bfs(root);
      const auto s = engine.run(bfs);
      print_stats(s, t.seconds());
      resume_delta(bfs);
      std::printf("bfs: visited %llu vertices, max depth %d\n",
                  static_cast<unsigned long long>(bfs.visited_count()),
                  bfs.max_depth());
    } else if (algo == "bfs-async") {
      algo::TileBfsAsync bfs(root);
      const auto s = engine.run(bfs);
      print_stats(s, t.seconds());
      const auto d = bfs.depths();
      std::printf("bfs-async: %u passes, reached %lld vertices\n", bfs.passes(),
                  static_cast<long long>(std::count_if(
                      d.begin(), d.end(), [](int x) { return x >= 0; })));
    } else if (algo == "pagerank") {
      algo::PageRankOptions popt;
      popt.max_iterations = static_cast<std::uint32_t>(opts.get_int("iterations"));
      popt.tolerance = opts.get_double("tolerance");
      algo::TilePageRank pr(popt);
      const auto s = engine.run(pr);
      print_stats(s, t.seconds());
      const auto it = std::max_element(pr.ranks().begin(), pr.ranks().end());
      std::printf("pagerank: %u iterations, final delta %.2e, top vertex %lld "
                  "(rank %.3e)\n",
                  pr.iterations_run(), pr.last_delta(),
                  static_cast<long long>(it - pr.ranks().begin()), *it);
    } else if (algo == "pagerank-delta") {
      algo::PageRankDeltaOptions popt;
      popt.tolerance = opts.get_double("tolerance");
      algo::TilePageRankDelta pr(popt);
      const auto s = engine.run(pr);
      print_stats(s, t.seconds());
      resume_delta(pr);
      const auto ranks = pr.ranks();
      const auto it = std::max_element(ranks.begin(), ranks.end());
      std::printf("pagerank-delta: %u rounds, residual mass %.2e, top vertex "
                  "%lld (rank %.3e)\n",
                  pr.rounds_run(), pr.residual_mass(),
                  static_cast<long long>(it - ranks.begin()), *it);
    } else if (algo == "wcc") {
      algo::TileWcc wcc;
      const auto s = engine.run(wcc);
      print_stats(s, t.seconds());
      std::printf("wcc: %llu components\n",
                  static_cast<unsigned long long>(wcc.component_count()));
    } else if (algo == "sssp") {
      algo::TileSssp sssp(root);
      const auto s = engine.run(sssp);
      print_stats(s, t.seconds());
      resume_delta(sssp);
      std::uint64_t reached = 0;
      for (float d : sssp.distances())
        if (d != algo::TileSssp::kInf) ++reached;
      std::printf("sssp: reached %llu vertices\n",
                  static_cast<unsigned long long>(reached));
    } else if (algo == "kcore") {
      algo::TileKCore kcore(static_cast<graph::degree_t>(opts.get_int("k")));
      const auto s = engine.run(kcore);
      print_stats(s, t.seconds());
      std::printf("kcore: %llu vertices in the %lld-core\n",
                  static_cast<unsigned long long>(kcore.core_size()),
                  static_cast<long long>(opts.get_int("k")));
    } else if (algo == "scc") {
      if (opts.get("in-store").empty())
        throw InvalidArgument("scc needs --in-store=<base> (in-edge store)");
      auto in_store = tile::TileStore::open(opts.get("in-store"), dev);
      const auto labels = algo::tile_scc(store, in_store, algo::SccOptions{cfg});
      std::unordered_set<graph::vid_t> comps(labels.begin(), labels.end());
      std::printf("scc: %zu strongly connected components (%.3fs)\n",
                  comps.size(), t.seconds());
    } else {
      throw InvalidArgument("unknown algorithm: " + algo);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fputs("error: unknown exception\n", stderr);
    return 1;
  }
}
