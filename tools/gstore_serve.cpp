// gstore_serve — the multi-tenant query daemon.
//
//   # serve a converted store on an ephemeral port (printed on stdout)
//   gstore_serve --store=/data/kron20
//
//   # fixed port, wider gangs, chaos testing
//   gstore_serve --store=/data/kron20 --port=7474 --max-gang=64
//                --fault-spec=seed=7,eio=0.001
//
// Clients speak newline-delimited JSON over TCP (docs/SERVE.md) — one
// request object per line, one response object per line. gstore_cli wraps
// the protocol for shells and scripts. Concurrent jobs share one tile-fetch
// stream per gang (src/serve/scheduler.h): the daemon reads each needed
// tile once per round no matter how many jobs subscribe to it.
//
// The process runs until a client sends {"op": "shutdown"} or it receives
// SIGINT/SIGTERM; both paths stop accepting, then either drain or cancel
// the job queue before exiting.
#include <csignal>
#include <cstdio>
#include <string>

#include "ingest/ingestor.h"
#include "io/fault.h"
#include "serve/server.h"
#include "util/options.h"
#include "util/status.h"

namespace {

gstore::serve::Server* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: a lock-free atomic store only. Calling stop() here
  // would lock Server::state_mu_ — which the main thread may already hold
  // inside wait_shutdown() when the signal lands on it (self-deadlock; the
  // debug-build lockdep catches it). wait_shutdown() polls the flag.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("store", "", "tile-store base path (from gstore_convert)");
  opts.add("host", "127.0.0.1", "listen address");
  opts.add("port", "0", "listen port (0 = ephemeral, printed on stdout)");
  opts.add("max-gang", "32", "jobs co-scheduled on one fetch stream (1-64)");
  opts.add("max-queued", "1024", "queued-job backpressure threshold");
  opts.add("stream-mb", "64", "scheduler stream memory budget (MiB)");
  opts.add("segment-mb", "8", "async I/O segment size (MiB)");
  opts.add("delta-budget-mb", "64", "ingest delta-buffer budget (MiB)");
  opts.add("devices", "0", "emulate N SSDs (0 = native speed)");
  opts.add("fault-spec", "",
           "inject I/O faults on the serve read path, e.g. "
           "seed=7,eio=0.01,short=0.05 (see io/fault.h)");
  opts.add_flag("no-rewind", "disable the rewind phase");

  try {
    opts.parse(argc, argv);
    if (opts.help_requested() || opts.get("store").empty()) {
      std::fputs(opts.usage("gstore_serve").c_str(), stdout);
      return opts.help_requested() ? 0 : 2;
    }

    ingest::IngestorOptions iopt;
    iopt.delta_budget_bytes =
        static_cast<std::uint64_t>(opts.get_int("delta-budget-mb")) << 20;
    ingest::EdgeIngestor ingestor(opts.get("store"), iopt);

    serve::ManagerOptions mopt;
    mopt.max_gang = static_cast<std::size_t>(opts.get_int("max-gang"));
    mopt.max_queued = static_cast<std::size_t>(opts.get_int("max-queued"));
    mopt.scheduler.stream_memory_bytes =
        static_cast<std::uint64_t>(opts.get_int("stream-mb")) << 20;
    mopt.scheduler.segment_bytes =
        static_cast<std::uint64_t>(opts.get_int("segment-mb")) << 20;
    mopt.scheduler.rewind = !opts.get_bool("no-rewind");
    mopt.snapshot_device.devices =
        static_cast<unsigned>(opts.get_int("devices"));
    mopt.snapshot_device.fault_spec = opts.get("fault-spec");
    if (!mopt.snapshot_device.fault_spec.empty())
      std::printf("fault injection: %s\n",
                  io::FaultSpec::parse(mopt.snapshot_device.fault_spec)
                      .to_string()
                      .c_str());

    serve::JobManager manager(ingestor, mopt);
    manager.start();

    serve::ServeOptions sopt;
    sopt.host = opts.get("host");
    sopt.port = static_cast<int>(opts.get_int("port"));
    serve::Server server(manager, sopt);
    server.start();

    // The port line is the boot handshake scripts wait for (tests and the
    // CI smoke parse it to find an ephemeral port).
    std::printf("gstore_serve ready on %s:%d\n", sopt.host.c_str(),
                server.port());
    std::fflush(stdout);

    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    const bool drain = server.wait_shutdown();
    server.stop();
    manager.stop(drain);
    g_server = nullptr;
    std::printf("gstore_serve: shut down (%s)\n",
                drain ? "drained" : "cancelled");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fputs("error: unknown exception\n", stderr);
    return 1;
  }
}
