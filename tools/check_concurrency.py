#!/usr/bin/env python3
"""Project-specific concurrency/I/O lint for the G-Store core.

Seven rule families clang-tidy cannot express for us:

R1 cross-thread annotations.
   A member documented as shared across threads carries the token
   `cross-thread` in the comment block or trailing comment of its
   declaration. The lint enforces that such a member is declared
   std::atomic<...> (or std::atomic_ref-accessed raw storage explicitly
   tagged `cross-thread-via-atomic_ref`), and that no source file mutates it
   with plain `=` / `+=` / `++` / `--` syntax. Atomic types overload those
   operators with seq_cst, which compiles fine but hides the memory-order
   decision — this codebase requires explicit .store()/.load()/.fetch_*().

R2 raw buffer management on I/O paths.
   `new[]` / `delete[]` / malloc / free / aligned_alloc are banned in
   src/io, src/store and src/tile except inside util/aligned_buffer.h.
   I/O buffers must be AlignedBuffer (O_DIRECT alignment, RAII) or
   std::vector (non-DMA scratch).

R3 O_DIRECT alignment.
   Constructing AlignedBuffer with an explicit alignment argument other
   than kIoAlignment on an I/O path defeats the 4096-byte contract that
   O_DIRECT reads rely on.

R4 raw synchronization primitives.
   std::mutex / std::shared_mutex / std::condition_variable and their lock
   helpers (lock_guard, unique_lock, scoped_lock, shared_lock) are banned in
   src/ outside util/sync.{h,cpp}: raw primitives carry no thread-safety
   annotations and bypass lockdep, so misuse is invisible to both the
   compile-time and the runtime checkers. Use gstore::Mutex / MutexLock /
   CondVar etc. from util/sync.h. (Tests and tools may keep raw primitives —
   they model *external* callers.)

R5 audited thread-safety escape hatches.
   Every use of GSTORE_NO_THREAD_SAFETY_ANALYSIS outside util/sync.h must
   carry a `SAFETY:` comment within the three preceding lines (or on the
   same line) explaining the external synchronization contract the analysis
   cannot see. An unexplained escape hatch is indistinguishable from a
   silenced bug.

R6 per-item dynamic scheduling.
   `schedule(dynamic, 1)` is banned in src/: one work item per dispatch is
   either pure scheduling overhead (swarms of near-empty tiles) or load
   imbalance with nothing to steal (one hub tile per item). Chunk by cost
   first (see cost_chunks in src/store/chunking.h) and use
   schedule(dynamic) over the chunks.

R7 detached threads.
   `.detach()` is banned in src/: a detached thread outlives every owner,
   cannot be joined at shutdown, and turns clean teardown into a data race
   (ASan/TSan report it as a leak or a use-after-free of whatever the
   thread still touches). Every std::thread in the daemon is tracked and
   joined — see serve::Server's connection registry for the pattern.

Exit status 0 when clean, 1 with findings (one per line, grep-style).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CROSS_THREAD = "cross-thread"
VIA_ATOMIC_REF = "cross-thread-via-atomic_ref"
IO_DIRS = ("src/io", "src/store", "src/tile")
RAW_ALLOC = re.compile(
    r"(?<![\w.])(new\s+[\w:<>]+\s*\[|delete\s*\[\]|std::malloc\b|(?<!std::)\bmalloc\s*\(|"
    r"std::free\b|aligned_alloc\s*\(|posix_memalign\s*\()"
)
# Matches "AlignedBuffer(size, alignment)" — two top-level arguments.
ALIGNED_BUFFER_2ARG = re.compile(r"AlignedBuffer\s*\(([^(),]+),([^()]+)\)")
# R4: raw standard synchronization primitives (types, helpers, includes).
# once_flag/call_once and the bare std::lock/std::try_lock algorithms are
# banned alongside the lock types: they take locks invisibly to both the
# thread-safety analysis and gstore-lint's lock modeling (use the
# gstore::OnceFlag / gstore::call_once wrappers from util/sync.h).
RAW_SYNC = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|once_flag)\b"
    r"|std::(?:call_once|try_lock|lock)\s*\("
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)
SYNC_COMPONENT = ("src/util/sync.h", "src/util/sync.cpp")
# R5: escape hatch + its justification marker.
NO_TSA = "GSTORE_NO_THREAD_SAFETY_ANALYSIS"
SAFETY_MARK = re.compile(r"//.*\bSAFETY:")
# R6: one-work-item-per-dispatch OpenMP scheduling.
DYNAMIC_ONE = re.compile(r"schedule\s*\(\s*dynamic\s*,\s*1\s*\)")
# R7: fire-and-forget threads.
DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")
MEMBER_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>[\w:][\w:<>,\s*&]*?)\s+(?P<name>\w+)\s*(?:=[^;]*|\{[^;]*\})?;"
)
LINE_COMMENT = re.compile(r"//.*$")


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents never match rules."""
    out = []
    quote = None
    prev = ""
    for ch in line:
        if quote:
            out.append(" ")
            if ch == quote and prev != "\\":
                quote = None
        elif ch in "\"'":
            quote = ch
            out.append(" ")
        else:
            out.append(ch)
        prev = ch if prev != "\\" else ""
    return "".join(out)


def find_cross_thread_members(path: Path, lines: list[str]):
    """Yields (lineno, name, type, via_ref) for annotated member declarations.

    The annotation may sit in the comment lines directly above the
    declaration or in a trailing comment on the declaration line itself.
    """
    pending = False  # annotation seen in the preceding comment block
    pending_via_ref = False
    for i, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        is_comment = stripped.startswith("//")
        annotated_here = CROSS_THREAD in raw
        if is_comment:
            if annotated_here:
                pending = True
                pending_via_ref = pending_via_ref or VIA_ATOMIC_REF in raw
            continue
        m = MEMBER_DECL.match(LINE_COMMENT.sub("", raw))
        if m and (pending or annotated_here):
            via_ref = pending_via_ref or VIA_ATOMIC_REF in raw
            yield i, m.group("name"), m.group("type").strip(), via_ref
        if stripped:  # any non-comment line breaks the comment block
            pending = False
            pending_via_ref = False


PLAIN_WRITE = (
    r"(?<![\w.>])({name})\s*(=(?!=)|\+=|-=|\|=|&=|\+\+|--)",
    r"(\+\+|--)\s*({name})\b",
)


def main(root: Path) -> int:
    findings: list[str] = []
    src = root / "src"
    files = sorted(src.rglob("*.h")) + sorted(src.rglob("*.cpp"))

    # Pass 1: collect annotated members and check their declarations.
    annotated: dict[str, tuple[Path, bool]] = {}
    for path in files:
        lines = path.read_text().splitlines()
        for lineno, name, type_, via_ref in find_cross_thread_members(path, lines):
            annotated[name] = (path, via_ref)
            is_atomic = "atomic" in type_
            if not is_atomic and not via_ref:
                findings.append(
                    f"{path}:{lineno}: R1: member '{name}' is documented "
                    f"cross-thread but declared '{type_}' — make it "
                    f"std::atomic or tag it {VIA_ATOMIC_REF}"
                )

    # Pass 2: per-line rules.
    for path in files:
        rel = path.relative_to(root).as_posix()
        on_io_path = any(rel.startswith(d) for d in IO_DIRS)
        is_allocator = rel == "src/util/aligned_buffer.h"
        is_sync_component = rel in SYNC_COMPONENT
        lines = path.read_text().splitlines()
        for lineno, raw in enumerate(lines, start=1):
            code = strip_strings(LINE_COMMENT.sub("", raw))
            if not code.strip():
                continue
            # A declaration's default initializer (`= 0`) is not a write.
            is_declaration = MEMBER_DECL.match(code) is not None

            for name, (decl_path, _) in annotated.items():
                if is_declaration:
                    break
                # Same component only: the declaring file and its
                # header/source sibling (throttle.h <-> throttle.cpp). A
                # same-named field elsewhere is a different member.
                if decl_path.parent != path.parent or decl_path.stem != path.stem:
                    continue
                for pat in PLAIN_WRITE:
                    if re.search(pat.format(name=name), code):
                        findings.append(
                            f"{path}:{lineno}: R1: plain write to "
                            f"cross-thread member '{name}' — use explicit "
                            f".store()/.fetch_*() (or atomic_ref) with a "
                            f"memory order"
                        )
                        break

            if on_io_path and not is_allocator and RAW_ALLOC.search(code):
                findings.append(
                    f"{path}:{lineno}: R2: raw allocation on an I/O path — "
                    f"use gstore::AlignedBuffer or std::vector"
                )

            if on_io_path:
                for m in ALIGNED_BUFFER_2ARG.finditer(code):
                    align = m.group(2).strip()
                    if align not in ("kIoAlignment", "gstore::kIoAlignment"):
                        findings.append(
                            f"{path}:{lineno}: R3: AlignedBuffer with "
                            f"alignment '{align}' on an I/O path — O_DIRECT "
                            f"requires kIoAlignment"
                        )

            if not is_sync_component:
                # R4 inspects the raw line (not comment-stripped) so banned
                # includes are caught too; doc comments naming std::mutex
                # don't appear in src/ outside sync.h, and a false positive
                # there would be a prompt to reword, not a real cost.
                m = RAW_SYNC.search(strip_strings(raw))
                if m:
                    findings.append(
                        f"{path}:{lineno}: R4: raw '{m.group(0).strip()}' "
                        f"outside util/sync.h — use the annotated wrappers "
                        f"(gstore::Mutex/MutexLock/CondVar...)"
                    )

                if NO_TSA in raw:
                    window = lines[max(0, lineno - 4):lineno]
                    if not any(SAFETY_MARK.search(w) for w in window):
                        findings.append(
                            f"{path}:{lineno}: R5: "
                            f"{NO_TSA} without a SAFETY: justification "
                            f"comment in the preceding 3 lines"
                        )

            if DYNAMIC_ONE.search(code):
                findings.append(
                    f"{path}:{lineno}: R6: schedule(dynamic, 1) — chunk work "
                    f"items by cost and use schedule(dynamic) over the "
                    f"chunks (see cost_chunks in src/store/chunking.h)"
                )

            if DETACH.search(code):
                findings.append(
                    f"{path}:{lineno}: R7: detached thread — every thread "
                    f"must be tracked and joined at shutdown (see "
                    f"serve::Server's connection registry for the pattern)"
                )

    for f in findings:
        print(f)
    if findings:
        print(f"check_concurrency: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("check_concurrency: clean")
    return 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    if root.name == "src":  # accept either the repo root or src/ itself
        root = root.parent
    sys.exit(main(root))
