// gstore_cli — shell client for a running gstore_serve daemon.
//
//   gstore_cli --port=7474 submit bfs 0            # returns a job id
//   gstore_cli --port=7474 submit pagerank -- damping=0.9 iterations=30
//   gstore_cli --port=7474 wait 3                  # block until job 3 ends
//   gstore_cli --port=7474 result 3
//   gstore_cli --port=7474 stats
//   gstore_cli --port=7474 raw '{"op":"ping"}'     # arbitrary request line
//   gstore_cli --port=7474 shutdown                # drain and stop
//
// Every response is printed as one JSON line (the daemon's own wire
// format), so scripts can pipe the output straight into a JSON parser.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"
#include "util/options.h"
#include "util/status.h"

namespace {

using gstore::serve::Json;

// "key=value" → response field on the submit job object. Numeric values
// that parse completely become JSON numbers, everything else stays string.
void set_kv(Json& job, const std::string& kv) {
  const std::size_t eq = kv.find('=');
  if (eq == std::string::npos)
    throw gstore::InvalidArgument("expected key=value, got \"" + kv + "\"");
  const std::string key = kv.substr(0, eq);
  const std::string value = kv.substr(eq + 1);
  char* end = nullptr;
  const double num = std::strtod(value.c_str(), &end);
  if (end != value.c_str() && *end == '\0')
    job.set(key, Json(num));
  else
    job.set(key, Json(value));
}

std::uint64_t parse_id(const std::string& arg) {
  char* end = nullptr;
  const unsigned long long id = std::strtoull(arg.c_str(), &end, 10);
  if (end == arg.c_str() || *end != '\0')
    throw gstore::InvalidArgument("bad job id \"" + arg + "\"");
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("host", "127.0.0.1", "daemon address");
  opts.add("port", "0", "daemon port (required)");
  opts.add("timeout-ms", "60000", "wait timeout");

  try {
    opts.parse(argc, argv);
    const std::vector<std::string>& args = opts.positional();
    if (opts.help_requested() || args.empty() || opts.get_int("port") == 0) {
      std::fputs(opts.usage("gstore_cli").c_str(), stdout);
      std::fputs(
          "commands:\n"
          "  ping | info | stats | compact | shutdown [cancel]\n"
          "  submit <bfs|sssp|pagerank|wcc|neighbors> [vertex] [k=v...]\n"
          "  status <id> | result <id> | cancel <id> | wait <id>\n"
          "  raw <json-line>\n",
          stdout);
      return opts.help_requested() ? 0 : 2;
    }

    serve::Client client(opts.get("host"),
                         static_cast<int>(opts.get_int("port")));
    const std::string& cmd = args[0];
    Json req = Json::object();

    if (cmd == "ping" || cmd == "info" || cmd == "stats" ||
        cmd == "compact") {
      req.set("op", Json(cmd));
    } else if (cmd == "shutdown") {
      req.set("op", Json("shutdown"));
      req.set("drain", Json(!(args.size() > 1 && args[1] == "cancel")));
    } else if (cmd == "submit") {
      if (args.size() < 2)
        throw InvalidArgument("submit needs an algorithm name");
      Json job = Json::object();
      job.set("algo", Json(args[1]));
      std::size_t next = 2;
      if (next < args.size() &&
          args[next].find('=') == std::string::npos) {
        const std::uint64_t v = parse_id(args[next++]);
        job.set(args[1] == "neighbors" ? "vertex" : "root", Json(v));
      }
      for (; next < args.size(); ++next) {
        if (args[next] == "--") continue;
        set_kv(job, args[next]);
      }
      req.set("op", Json("submit"));
      req.set("job", std::move(job));
    } else if (cmd == "status" || cmd == "result" || cmd == "cancel" ||
               cmd == "wait") {
      if (args.size() < 2) throw InvalidArgument(cmd + " needs a job id");
      req.set("op", Json(cmd));
      req.set("id", Json(parse_id(args[1])));
      if (cmd == "wait")
        req.set("timeout_ms",
                Json(static_cast<std::uint64_t>(opts.get_int("timeout-ms"))));
    } else if (cmd == "raw") {
      if (args.size() < 2) throw InvalidArgument("raw needs a JSON line");
      Json response = client.request(Json::parse(args[1]));
      std::printf("%s\n", response.dump().c_str());
      return 0;
    } else {
      throw InvalidArgument("unknown command \"" + cmd + "\"");
    }

    Json response = client.request(req);
    std::printf("%s\n", response.dump().c_str());
    const Json* ok = response.find("ok");
    return (ok != nullptr && ok->as_bool()) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fputs("error: unknown exception\n", stderr);
    return 1;
  }
}
