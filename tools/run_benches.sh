#!/usr/bin/env bash
# Records the micro-kernel benchmark baseline with provenance.
#
# Benchmark JSONs are only comparable when they come from the same kind of
# build, and a debug-build baseline is worse than none (it once shipped in
# BENCH_micro_kernels.json — kernels looked 5-20x slower than they are). This
# script refuses to run from anything but a Release/RelWithDebInfo build dir
# and stamps the build type plus the git SHA of the working tree into the
# JSON's "context" object, so every recorded number can be traced to the
# code and flags that produced it.
#
# Usage: tools/run_benches.sh [build-dir] [-- extra benchmark flags...]
#   build-dir defaults to build-release (the `release` CMake preset).
#   The refreshed baselines are written to BENCH_micro_kernels.json and
#   BENCH_serve.json at the repo root (override the micro-kernel path with
#   GSTORE_BENCH_OUT; skip the serving benchmark with GSTORE_SKIP_SERVE=1).
set -euo pipefail

die() { echo "run_benches.sh: $*" >&2; exit 1; }

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-build-release}
[[ $# -gt 0 ]] && shift
[[ ${1:-} == -- ]] && shift
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

cache="$build_dir/CMakeCache.txt"
[[ -f "$cache" ]] || die "$build_dir is not a configured build directory (no CMakeCache.txt); run: cmake --preset release && cmake --build build-release -j"

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' "$cache")
case "$build_type" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *) die "refusing to record benchmarks from a '$build_type' build — numbers from unoptimized builds are not comparable; use the 'release' preset (cmake --preset release)" ;;
esac

bench="$build_dir/bench/bench_micro_kernels"
[[ -x "$bench" ]] || die "$bench not built; run: cmake --build $build_dir --target bench_micro_kernels -j"

out=${GSTORE_BENCH_OUT:-$repo_root/BENCH_micro_kernels.json}
git_sha=$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)
git_dirty=false
if ! git -C "$repo_root" diff --quiet HEAD -- 2>/dev/null; then git_dirty=true; fi

echo "run_benches.sh: $build_type build at $git_sha (dirty=$git_dirty)"
"$bench" --benchmark_out="$out" --benchmark_out_format=json "$@"

# Stamp provenance into the JSON context so the baseline is self-describing.
stamp() {
  python3 - "$1" "$build_type" "$git_sha" "$git_dirty" <<'EOF'
import json, sys
path, build_type, sha, dirty = sys.argv[1:5]
with open(path) as f:
    doc = json.load(f)
doc.setdefault("context", {})["gstore"] = {
    "build_type": build_type,
    "git_sha": sha,
    "git_dirty": dirty == "true",
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"run_benches.sh: wrote {path}")
EOF
}
stamp "$out"

# Multi-tenant serving baseline (jobs/s + shared-fetch dedup ratios). The
# binary writes BENCH_serve.json into its cwd, so run it from the repo root.
if [[ ${GSTORE_SKIP_SERVE:-0} != 1 ]]; then
  serve_bench="$build_dir/bench/bench_serve"
  [[ -x "$serve_bench" ]] || die "$serve_bench not built; run: cmake --build $build_dir --target bench_serve -j"
  (cd "$repo_root" && "$serve_bench")
  stamp "$repo_root/BENCH_serve.json"
fi

# Tile-format space baseline (v2 raw SNB vs v3 codecs, bytes/edge). Writes
# BENCH_tab2_space.json into its cwd, so run it from the repo root.
if [[ ${GSTORE_SKIP_TAB2:-0} != 1 ]]; then
  tab2_bench="$build_dir/bench/bench_tab2_space"
  [[ -x "$tab2_bench" ]] || die "$tab2_bench not built; run: cmake --build $build_dir --target bench_tab2_space -j"
  (cd "$repo_root" && "$tab2_bench")
  stamp "$repo_root/BENCH_tab2_space.json"
fi

# Scheduling baseline (grid vs priority worklists: sweeps-to-convergence and
# bytes fetched for BFS/SSSP/PageRank-delta on a skewed graph). Writes
# BENCH_priority.json into its cwd, so run it from the repo root. The binary
# exits non-zero if the two schedules disagree bit-for-bit on BFS/SSSP.
if [[ ${GSTORE_SKIP_PRIORITY:-0} != 1 ]]; then
  prio_bench="$build_dir/bench/bench_priority"
  [[ -x "$prio_bench" ]] || die "$prio_bench not built; run: cmake --build $build_dir --target bench_priority -j"
  (cd "$repo_root" && "$prio_bench")
  stamp "$repo_root/BENCH_priority.json"
fi
