// gstore_convert — command-line converter between graph representations.
//
//   # generate a synthetic graph into the binary edge-list format
//   gstore_convert --generate=kron --scale=20 --edge-factor=16 ...
//       --undirected --out=/data/kron20.el
//
//   # convert an edge-list file into a tile store (writes .tiles/.sei/.deg)
//   gstore_convert --in=/data/kron20.el --out=/data/kron20
//
//   # also emit the CSR files used by the FlashGraph-like baseline
//   gstore_convert --in=/data/kron20.el --out=/data/kron20 --csr
#include <cstdio>
#include <string>

#include "graph/generator.h"
#include "graph/graph_io.h"
#include "tile/convert.h"
#include "io/striped.h"
#include "tile/verify.h"
#include "tile/tile_file.h"
#include "util/options.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

gstore::graph::EdgeList generate(const gstore::Options& opts) {
  using namespace gstore::graph;
  const std::string kind_name = opts.get("generate");
  const unsigned scale = static_cast<unsigned>(opts.get_int("scale"));
  const unsigned ef = static_cast<unsigned>(opts.get_int("edge-factor"));
  const GraphKind kind =
      opts.get_bool("undirected") ? GraphKind::kUndirected : GraphKind::kDirected;
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  if (kind_name == "kron") return kronecker(scale, ef, kind, seed);
  if (kind_name == "rmat") return rmat(scale, ef, kind, RmatParams{}, seed);
  if (kind_name == "twitter") return twitter_like(scale, ef, kind, seed);
  if (kind_name == "uniform")
    return uniform_random(gstore::graph::vid_t{1} << scale,
                          std::uint64_t{ef} << scale, kind, seed);
  throw gstore::InvalidArgument("unknown generator: " + kind_name +
                                " (kron|rmat|twitter|uniform)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("in", "", "input binary edge-list file (from a previous --generate)");
  opts.add("out", "", "output path: .el file for --generate, tile-store base otherwise");
  opts.add("generate", "", "generate a graph instead of reading one (kron|rmat|twitter|uniform)");
  opts.add("scale", "20", "generator: log2 vertex count");
  opts.add("edge-factor", "16", "generator: edges per vertex");
  opts.add("seed", "1", "generator: random seed");
  opts.add_flag("undirected", "generator: produce an undirected graph");
  opts.add("tile-bits", "16", "tile width = 2^tile-bits vertices");
  opts.add("group-side", "256", "tiles per physical-group side (q)");
  opts.add_flag("in-edges", "directed graphs: store in-edges instead of out-edges");
  opts.add_flag("no-snb", "ablation: store 8-byte full-vid tuples");
  opts.add_flag("no-symmetry", "ablation: store both orientations of undirected edges");
  opts.add_flag("normalize", "drop self loops and duplicate edges first");
  opts.add_flag("csr", "also write <out>.beg/.adj CSR files");
  opts.add_flag("verify", "deep-verify the written tile store");
  opts.add("stripe", "0", "also write a RAID-0 striped copy of .tiles over N member files");

  try {
    opts.parse(argc, argv);
    if (opts.help_requested() || opts.get("out").empty()) {
      std::fputs(opts.usage("gstore_convert").c_str(), stdout);
      return opts.help_requested() ? 0 : 2;
    }

    graph::EdgeList el;
    if (!opts.get("generate").empty()) {
      Timer t;
      el = generate(opts);
      std::printf("generated %u vertices, %llu edges (%.2fs)\n",
                  el.vertex_count(),
                  static_cast<unsigned long long>(el.edge_count()), t.seconds());
      if (opts.get("in").empty()) {
        graph::write_edge_file(opts.get("out"), el);
        std::printf("wrote %s\n", opts.get("out").c_str());
        return 0;
      }
    } else {
      if (opts.get("in").empty())
        throw InvalidArgument("need --in=<file> or --generate=<kind>");
      Timer t;
      el = graph::read_edge_file(opts.get("in"));
      std::printf("read %u vertices, %llu edges (%.2fs)\n", el.vertex_count(),
                  static_cast<unsigned long long>(el.edge_count()), t.seconds());
    }

    if (opts.get_bool("normalize")) {
      const auto removed = el.normalize();
      std::printf("normalize: removed %llu self-loops/duplicates\n",
                  static_cast<unsigned long long>(removed));
    }

    tile::ConvertOptions copt;
    copt.tile_bits = static_cast<unsigned>(opts.get_int("tile-bits"));
    copt.group_side = static_cast<std::uint32_t>(opts.get_int("group-side"));
    copt.out_edges = !opts.get_bool("in-edges");
    copt.snb = !opts.get_bool("no-snb");
    copt.symmetry = !opts.get_bool("no-symmetry");
    const auto stats = tile::convert_to_tiles(el, opts.get("out"), copt);
    std::printf("tile store: %llu tiles, %llu edges, %.1f MiB "
                "(pass1 %.2fs, pass2 %.2fs)\n",
                static_cast<unsigned long long>(stats.tile_count),
                static_cast<unsigned long long>(stats.stored_edges),
                stats.bytes_written / double(1 << 20), stats.pass1_seconds,
                stats.pass2_seconds);

    if (const auto stripes = opts.get_int("stripe"); stripes > 0) {
      const std::string tiles = tile::TileStore::tiles_path(opts.get("out"));
      const std::uint64_t striped = io::stripe_file(
          tiles, tiles, static_cast<unsigned>(stripes));
      std::printf("striped %s over %lld members (%.1f MiB, 64KB stripes)\n",
                  tiles.c_str(), static_cast<long long>(stripes),
                  striped / double(1 << 20));
    }

    if (opts.get_bool("verify")) {
      const auto report = tile::verify_store(opts.get("out"));
      if (!report.ok) {
        for (const auto& p : report.problems)
          std::fprintf(stderr, "verify: %s\n", p.c_str());
        return 1;
      }
      std::printf("verify: OK (%llu tiles, %llu edges)\n",
                  static_cast<unsigned long long>(report.tiles_checked),
                  static_cast<unsigned long long>(report.edges_checked));
    }

    if (opts.get_bool("csr")) {
      const auto cs = tile::convert_to_csr_file(el, opts.get("out"));
      std::printf("CSR files: %.1f MiB (%.2fs)\n",
                  cs.bytes_written / double(1 << 20), cs.total_seconds);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fputs("error: unknown exception\n", stderr);
    return 1;
  }
}
