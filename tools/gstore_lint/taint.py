"""GL6: whole-program taint of untrusted bytes.

The frontends emit per-function TaintEvents (see model.TaintEvent for the
atom grammar); this module runs the interprocedural fixpoint over the
merged Program and turns tainted-atom-reaches-sink into findings.

Trust model
-----------
*Sources.* Wire-record fields (`f:TilesFileHeader.edge_count`, ...) are
intrinsically untrusted: their bytes come off disk or the socket.
`src:Json.as_uint`-style atoms mark Json accessor results, untrusted by
construction. Derived records (JobSpec) start clean; their fields become
tainted only when an unsanitized flow writes into them.

*Granularity.* Record fields are class-level atoms, global across the
program: wire structs are parsed at one trust boundary and fan out
everywhere, so `meta_.tile_count` in scheduler.cpp is the same atom as
the one tile_file.cpp validated. Locals/params/returns are per-function.

*Sanitizers.* Three cuts: (1) calls to util/checked.h helpers and the
ranged Json accessors contribute no atoms at all; (2) an explicit range
check (compare + throw/return/abort branch) emits a sanitize event that
blesses the compared atoms for the whole enclosing function
(flow-insensitive — a check anywhere in the body counts); (3) a sanitize
event over a field atom blesses that field *program-wide*: validating
`meta_.tile_count` once at the load boundary is the documented contract
for every later use. Use-before-validation within one function is
therefore out of scope (the runtime fuzzers cover it); what GL6 hunts is
values that never meet a bound at all.

*Out-params.* Writes through pointer/reference parameters are not
propagated back to callers — except through tracked-record fields, which
are global anyway. This is the main modeled precision loss.
"""

from __future__ import annotations

from .gccfront import WIRE_RECORDS
from .model import Finding, Program

_MAX_ROUNDS = 60


class _State:
    def __init__(self, program: Program):
        self.program = program
        self.blessed: set[str] = set()        # field keys validated anywhere
        self.tainted_fields: set[str] = set()  # derived fields made dirty
        self.fn_in: dict[str, set[int]] = {}   # key -> tainted param slots
        self.fn_ret: set[str] = set()          # keys whose return is tainted
        self.local: dict[str, set[str]] = {}   # key -> tainted local atoms
        self.sanitized: dict[str, set[str]] = {}
        # why-chains for trace rendering
        self.cause: dict[tuple[str, str], tuple] = {}   # (fn, atom) -> (ev, src_atom, src_fn)
        self.field_cause: dict[str, tuple] = {}
        self.in_cause: dict[tuple[str, int], tuple] = {}
        self.ret_cause: dict[str, tuple] = {}

    def atom_tainted(self, key: str, atom: str) -> bool:
        if atom.startswith("src:"):
            return True
        if atom.startswith("f:"):
            fk = atom[2:]
            if fk in self.blessed:
                return False
            return fk.split(".", 1)[0] in WIRE_RECORDS or \
                fk in self.tainted_fields
        if atom.startswith("p") and atom[1:].isdigit():
            return int(atom[1:]) in self.fn_in.get(key, set())
        if atom.startswith("r:"):
            return atom[2:] in self.fn_ret
        return atom in self.local.get(key, set())


def _prime(state: _State) -> None:
    """Sanitize events: collect per-function cuts and global blessings."""
    for fn in state.program.fns.values():
        cuts = state.sanitized.setdefault(fn.key, set())
        for ev in fn.taints:
            if ev.kind != "sanitize":
                continue
            for a in ev.atoms:
                cuts.add(a)
                if a.startswith("f:"):
                    state.blessed.add(a[2:])


def _solve(state: _State) -> None:
    program = state.program
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fn in program.fns.values():
            key = fn.key
            local = state.local.setdefault(key, set())
            cuts = state.sanitized.get(key, set())
            for ev in fn.taints:
                if ev.kind != "flow" or ev.dst in cuts:
                    continue
                hot = next((a for a in ev.atoms if a not in cuts
                            and state.atom_tainted(key, a)), None)
                if hot is None:
                    continue
                dst = ev.dst
                if dst.startswith("f:"):
                    fk = dst[2:]
                    if fk not in state.blessed and \
                            fk not in state.tainted_fields:
                        state.tainted_fields.add(fk)
                        state.field_cause[fk] = (key, ev, hot)
                        changed = True
                elif dst.startswith("a:"):
                    head, _, pos = dst.rpartition(":")
                    callee = head[2:]
                    slot = int(pos)
                    ins = state.fn_in.setdefault(callee, set())
                    if slot not in ins:
                        ins.add(slot)
                        state.in_cause[(callee, slot)] = (key, ev, hot)
                        changed = True
                elif dst == "ret":
                    if key not in state.fn_ret:
                        state.fn_ret.add(key)
                        state.ret_cause[key] = (key, ev, hot)
                        changed = True
                elif dst not in local:
                    local.add(dst)
                    state.cause[(key, dst)] = (ev, hot, key)
                    changed = True
        if not changed:
            return


def _explain(state: _State, key: str, atom: str, depth: int = 0) -> list:
    """Human chain from `atom` (in function `key`) back to a source."""
    if depth > 7:
        return ["..."]
    if atom.startswith("src:"):
        return [f"untrusted source {atom[4:]}"]
    if atom.startswith("f:"):
        fk = atom[2:]
        rec = fk.split(".", 1)[0]
        if rec in WIRE_RECORDS:
            return [f"{fk} is a wire-struct field (raw bytes)"]
        cause = state.field_cause.get(fk)
        if cause is None:
            return [f"field {fk} tainted"]
        cfn, ev, hot = cause
        return [f"{fk} written unsanitized at {ev.file}:{ev.line}"] + \
            _explain(state, cfn, hot, depth + 1)
    if atom.startswith("p") and atom[1:].isdigit():
        cause = state.in_cause.get((key, int(atom[1:])))
        if cause is None:
            return [f"parameter {atom} tainted"]
        cfn, ev, hot = cause
        return [f"{atom} of {_short(key)} tainted by call at "
                f"{ev.file}:{ev.line}"] + _explain(state, cfn, hot,
                                                   depth + 1)
    if atom.startswith("r:"):
        callee = atom[2:]
        cause = state.ret_cause.get(callee)
        if cause is None:
            return [f"return of {_short(callee)} tainted"]
        cfn, ev, hot = cause
        return [f"return of {_short(callee)} tainted at "
                f"{ev.file}:{ev.line}"] + _explain(state, cfn, hot,
                                                   depth + 1)
    cause = state.cause.get((key, atom))
    if cause is None:
        return [f"{atom} tainted"]
    ev, hot, cfn = cause
    return [f"{atom} <- {ev.detail} at {ev.file}:{ev.line}"] + \
        _explain(state, cfn, hot, depth + 1)


def _short(key: str) -> str:
    return key.split("(", 1)[0]


def _alt_sites(state: _State, key: str, atom: str) -> list:
    """(file, line) of every step on the why-chain, so a GL-SAFE(GL6)
    waiver at the *source* suppresses the sink finding too."""
    out = []
    seen = 0
    while seen < 8:
        seen += 1
        if atom.startswith("f:"):
            cause = state.field_cause.get(atom[2:])
        elif atom.startswith("p") and atom[1:].isdigit():
            cause = state.in_cause.get((key, int(atom[1:])))
        elif atom.startswith("r:"):
            cause = state.ret_cause.get(atom[2:])
        elif atom.startswith("src:"):
            return out
        else:
            c = state.cause.get((key, atom))
            cause = (c[2], c[0], c[1]) if c else None
        if cause is None:
            return out
        cfn, ev, hot = cause
        out.append((ev.file, ev.line))
        key, atom = cfn, hot
    return out


_SINK_VERB = {
    "alloc": "an allocation size", "index": "an index",
    "length": "an I/O length", "shift": "a shift amount",
    "loop": "a loop bound",
}


def analyze(program: Program, root: str) -> list[Finding]:
    state = _State(program)
    _prime(state)
    _solve(state)
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for fn in program.fns.values():
        cuts = state.sanitized.get(fn.key, set())
        for ev in fn.taints:
            if ev.kind != "sink":
                continue
            hot = next((a for a in ev.atoms if a not in cuts
                        and state.atom_tainted(fn.key, a)), None)
            if hot is None:
                continue
            k = (ev.file, ev.line, ev.dst, hot)
            if k in seen:
                continue
            seen.add(k)
            chain = _explain(state, fn.key, hot)
            findings.append(Finding(
                "GL6", ev.file, ev.line,
                f"untrusted value reaches {_SINK_VERB.get(ev.dst, ev.dst)}"
                f" ({ev.detail}): {' <- '.join(chain)} — bound it with a "
                f"ranged accessor, util/checked.h, an explicit range "
                f"check, or GL-SAFE(GL6)",
                fn=fn.key, trace=tuple(chain),
                alt=tuple(_alt_sites(state, fn.key, hot))))
    return findings
