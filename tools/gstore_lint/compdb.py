"""compile_commands.json loading and TU selection."""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass
from pathlib import Path


@dataclass
class Entry:
    file: str        # absolute path
    directory: str
    args: list[str]  # compiler argv, including the source file


def load(path: str) -> list[Entry]:
    data = json.loads(Path(path).read_text())
    out: list[Entry] = []
    seen: set[str] = set()
    for item in data:
        directory = item.get("directory", ".")
        file = item.get("file", "")
        fabs = str((Path(directory) / file).resolve()) \
            if not Path(file).is_absolute() else str(Path(file).resolve())
        if fabs in seen:
            continue
        seen.add(fabs)
        if "arguments" in item:
            args = list(item["arguments"])
        else:
            args = shlex.split(item.get("command", ""))
        if not args:
            continue
        out.append(Entry(file=fabs, directory=directory, args=args))
    return out


def default_compdb(root: Path) -> Path | None:
    """Conventional build-tree locations.

    Prefers the release-flavored trees so the auto-pick matches what the
    gates (CI, lint_clean_tree) lint: Debug/sanitizer trees compile
    GSTORE_DCHECK into real calls (dcheck_cmp_failed -> fprintf) that
    GL1/GL5 then flag on paths the gated configurations never contain.
    Newest-mtime alone made the pick flip whenever a sanitizer tree was
    the last one reconfigured. Falls back to newest for ad-hoc dirs.
    """
    for name in ("build-release", "build"):
        p = root / name / "compile_commands.json"
        if p.exists():
            return p
    candidates = sorted(
        root.glob("build*/compile_commands.json"),
        key=lambda p: p.stat().st_mtime, reverse=True)
    return candidates[0] if candidates else None


def select(entries: list[Entry], root: Path,
           only: list[str] | None = None) -> list[Entry]:
    """Keeps TUs under root/src, or matching the explicit filters."""
    out = []
    for e in entries:
        if only:
            if any(sub in e.file for sub in only):
                out.append(e)
            continue
        try:
            rel = Path(e.file).relative_to(root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] == "src":
            out.append(e)
    return out
