"""Frontend-neutral event IR.

Both frontends (gccfront, clangfront) lower each function body into a
FnModel: a qualified identity plus flat, evaluation-ordered event lists.
Checks consume only this IR, so their semantics cannot drift between
frontends.

Function identity is `qualified::name(param-fingerprint)`. Call events
carry the same key form for resolved callees, which is what stitches the
cross-TU call graph together. Template instantiations of one primary
template can share a key; merging their out-edges is conservative in the
right direction for reachability checks (GL1/GL5).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CallEvent:
    callee: str | None      # resolved key, or None (indirect/virtual call)
    callee_name: str        # last name component ('pwrite_full', 'push_back')
    scope: str              # 'project' | 'std' | 'global' | 'unknown'
    file: str
    line: int
    locks: tuple[str, ...]  # guard descriptions lexically held at this site
    shielded: bool          # inside a try body with a catch(...) handler
    is_dtor: bool = False


@dataclass(frozen=True)
class ThrowEvent:
    file: str
    line: int
    shielded: bool


@dataclass(frozen=True)
class CompletionEvent:
    kind: str               # 'check' | 'use' | 'reset'
    var: str                # stable id of the Completion lvalue
    detail: str             # field name or event cause
    file: str
    line: int


@dataclass(frozen=True)
class PinStoreEvent:
    kind: str               # 'member' | 'container'
    detail: str
    file: str
    line: int


@dataclass(frozen=True)
class ArithEvent:
    op: str                 # '*' | '+' | '<<'
    detail: str             # the tainted source, e.g. 'TilesFileHeader.edge_count'
    file: str
    line: int


@dataclass(frozen=True)
class RawSyncEvent:
    what: str               # e.g. 'std::once_flag', 'std::call_once'
    file: str
    line: int


@dataclass(frozen=True)
class AtomicOpEvent:
    member: str             # field name the operator was applied to
    op: str                 # 'operator=', 'operator++', ...
    file: str
    line: int


@dataclass
class FnModel:
    key: str
    pretty: str
    file: str
    line: int
    noexcept: bool
    # GENERIC raw dumps omit try_catch_expr subtrees; a truncated FnModel
    # is missing part of its body and is patched from the GIMPLE dump.
    truncated: bool = False
    calls: list[CallEvent] = field(default_factory=list)
    throws: list[ThrowEvent] = field(default_factory=list)
    completions: list[CompletionEvent] = field(default_factory=list)
    pin_stores: list[PinStoreEvent] = field(default_factory=list)
    ariths: list[ArithEvent] = field(default_factory=list)
    raw_syncs: list[RawSyncEvent] = field(default_factory=list)
    atomic_ops: list[AtomicOpEvent] = field(default_factory=list)

    @property
    def name(self) -> str:
        head = self.key.split("(", 1)[0]
        return head.rsplit("::", 1)[-1]


class Program:
    """All FnModels merged across TUs, keyed by function identity."""

    def __init__(self) -> None:
        self.fns: dict[str, FnModel] = {}

    def add(self, fn: FnModel) -> None:
        have = self.fns.get(fn.key)
        if have is None:
            self.fns[fn.key] = fn
            return
        # Same function seen from another TU (inline/header definitions) or
        # a ctor's base/complete variants: union the event lists.
        for attr in ("calls", "throws", "completions", "pin_stores",
                     "ariths", "raw_syncs", "atomic_ops"):
            seen = set(getattr(have, attr))
            for ev in getattr(fn, attr):
                if ev not in seen:
                    getattr(have, attr).append(ev)
                    seen.add(ev)
        # noexcept must agree; if any definition shows the wrapper, trust it.
        have.noexcept = have.noexcept or fn.noexcept
        have.truncated = have.truncated or fn.truncated

    def by_name(self, name: str) -> list[FnModel]:
        return [f for f in self.fns.values() if f.name == name]


@dataclass(frozen=True)
class Finding:
    check: str              # 'GL1'..'GL5', 'R1', 'R4', 'GL-WAIVER'
    file: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"
