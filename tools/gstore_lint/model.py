"""Frontend-neutral event IR.

Both frontends (gccfront, clangfront) lower each function body into a
FnModel: a qualified identity plus flat, evaluation-ordered event lists.
Checks consume only this IR, so their semantics cannot drift between
frontends.

Function identity is `qualified::name(param-fingerprint)`. Call events
carry the same key form for resolved callees, which is what stitches the
cross-TU call graph together. Template instantiations of one primary
template can share a key; merging their out-edges is conservative in the
right direction for reachability checks (GL1/GL5).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CallEvent:
    callee: str | None      # resolved key, or None (indirect/virtual call)
    callee_name: str        # last name component ('pwrite_full', 'push_back')
    scope: str              # 'project' | 'std' | 'global' | 'unknown'
    file: str
    line: int
    locks: tuple[str, ...]  # guard descriptions lexically held at this site
    shielded: bool          # inside a try body with a catch(...) handler
    is_dtor: bool = False
    lock_ids: tuple[str, ...] = ()  # lock identities held at this site


@dataclass(frozen=True)
class ThrowEvent:
    file: str
    line: int
    shielded: bool


@dataclass(frozen=True)
class CompletionEvent:
    kind: str               # 'check' | 'use' | 'reset'
    var: str                # stable id of the Completion lvalue
    detail: str             # field name or event cause
    file: str
    line: int


@dataclass(frozen=True)
class PinStoreEvent:
    kind: str               # 'member' | 'container'
    detail: str
    file: str
    line: int


@dataclass(frozen=True)
class ArithEvent:
    op: str                 # '*' | '+' | '<<'
    detail: str             # the tainted source, e.g. 'TilesFileHeader.edge_count'
    file: str
    line: int


@dataclass(frozen=True)
class TaintEvent:
    """One GL6 dataflow fact. Atoms are scope-qualified strings:

      p<N>            parameter N of the enclosing function (0 = this)
      l:<name>        a local variable (function-scoped)
      f:<Rec>.<fld>   a field of a tracked record (program-global)
      r:<callee-key>  the return value of a call
      a:<callee-key>:<N>  argument N at a call site (caller side)
      ret             the enclosing function's return value
      src:<label>     an intrinsic untrusted source (wire field, Json
                      accessor) — always tainted
    """
    kind: str               # 'flow' | 'sink' | 'sanitize'
    dst: str                # flow: destination atom; sink: sink kind
    #                         ('alloc'|'index'|'length'|'shift'|'loop');
    #                         sanitize: ''
    atoms: tuple[str, ...]  # source atoms feeding dst / the sink /
    #                         the atoms being range-blessed
    detail: str             # human label for the site
    file: str
    line: int


@dataclass(frozen=True)
class AcquireEvent:
    """A gstore guard construction: `lock` is the lock *identity*
    (member path + owning class, e.g. 'CachePool::mutex_'), `held` the
    identities lexically held when this acquisition happens."""
    lock: str
    held: tuple[str, ...]
    file: str
    line: int


@dataclass(frozen=True)
class RawSyncEvent:
    what: str               # e.g. 'std::once_flag', 'std::call_once'
    file: str
    line: int


@dataclass(frozen=True)
class AtomicOpEvent:
    member: str             # field name the operator was applied to
    op: str                 # 'operator=', 'operator++', ...
    file: str
    line: int


@dataclass
class FnModel:
    key: str
    pretty: str
    file: str
    line: int
    noexcept: bool
    # GENERIC raw dumps omit try_catch_expr subtrees; a truncated FnModel
    # is missing part of its body and is patched from the GIMPLE dump.
    truncated: bool = False
    calls: list[CallEvent] = field(default_factory=list)
    throws: list[ThrowEvent] = field(default_factory=list)
    completions: list[CompletionEvent] = field(default_factory=list)
    pin_stores: list[PinStoreEvent] = field(default_factory=list)
    ariths: list[ArithEvent] = field(default_factory=list)
    raw_syncs: list[RawSyncEvent] = field(default_factory=list)
    atomic_ops: list[AtomicOpEvent] = field(default_factory=list)
    taints: list[TaintEvent] = field(default_factory=list)
    acquires: list[AcquireEvent] = field(default_factory=list)

    @property
    def name(self) -> str:
        head = self.key.split("(", 1)[0]
        return head.rsplit("::", 1)[-1]


# Every event list an FnModel carries; shared by Program.add's merge, the
# driver's path normalization, and the dump cache's (de)serialization.
EVENT_ATTRS = ("calls", "throws", "completions", "pin_stores", "ariths",
               "raw_syncs", "atomic_ops", "taints", "acquires")
EVENT_TYPES = {"calls": CallEvent, "throws": ThrowEvent,
               "completions": CompletionEvent, "pin_stores": PinStoreEvent,
               "ariths": ArithEvent, "raw_syncs": RawSyncEvent,
               "atomic_ops": AtomicOpEvent, "taints": TaintEvent,
               "acquires": AcquireEvent}


class Program:
    """All FnModels merged across TUs, keyed by function identity."""

    def __init__(self) -> None:
        self.fns: dict[str, FnModel] = {}

    def add(self, fn: FnModel) -> None:
        have = self.fns.get(fn.key)
        if have is None:
            self.fns[fn.key] = fn
            return
        # Same function seen from another TU (inline/header definitions) or
        # a ctor's base/complete variants: union the event lists.
        for attr in EVENT_ATTRS:
            seen = set(getattr(have, attr))
            for ev in getattr(fn, attr):
                if ev not in seen:
                    getattr(have, attr).append(ev)
                    seen.add(ev)
        # noexcept must agree; if any definition shows the wrapper, trust it.
        have.noexcept = have.noexcept or fn.noexcept
        have.truncated = have.truncated or fn.truncated

    def by_name(self, name: str) -> list[FnModel]:
        return [f for f in self.fns.values() if f.name == name]


@dataclass(frozen=True)
class Finding:
    check: str              # 'GL1'..'GL7', 'R1', 'R4', 'GL-WAIVER'
    file: str
    line: int
    message: str
    # Enclosing function key at the anchor site ('' when not applicable).
    fn: str = ""
    # Step-by-step explanation (taint path, lock-acquisition chains) for
    # --format=json and verbose reporting.
    trace: tuple[str, ...] = ()
    # Additional (file, line) sites that belong to this finding: any of
    # them carrying a GL-SAFE waiver for `check` suppresses it (a GL7
    # cycle can be waived at either acquisition edge, a GL6 flow at the
    # source or the sink).
    alt: tuple[tuple[str, int], ...] = ()

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"

    def stable_id(self) -> str:
        """Line-independent identity for machine consumers: adding code
        above a finding must not change its ID, so the digest covers the
        check, file, enclosing function, and message with line-number
        noise stripped."""
        import hashlib
        import os
        import re
        rel = os.path.basename(self.file)
        norm = re.sub(r":\d+", "", self.message)
        h = hashlib.sha256(
            f"{self.check}|{rel}|{self.fn}|{norm}".encode()).hexdigest()
        return f"{self.check}-{h[:12]}"
