"""Lowers GCC GENERIC dump sections into the event IR (model.FnModel).

The interesting structural facts, verified against GCC 12 dumps:

  * A guard scope is a `try_finally_expr` whose finalizer calls a
    function_decl carrying `note: destructor` whose class is one of the
    gstore guard types (MutexLock / WriterMutexLock / ReaderMutexLock).
    The guarded region is the try body (`op 0`).
  * A noexcept function's body is rooted at `must_not_throw_expr`.
  * `try_block` + `handler` without a `type:` attribute is catch(...);
    calls in the try body are shielded from unwind propagation.
  * Virtual calls appear as `obj_type_ref` with no resolvable decl; they
    lower to CallEvent(callee=None) and are documented as opaque.
  * Typedef names survive on the type-variant chain, so `BufferPin`
    (= std::shared_ptr<const std::uint8_t>) is identified by name even
    though the underlying record is just `shared_ptr`.
"""

from __future__ import annotations

import re
import sys
from .gccdump import Node, Section
from .model import (AcquireEvent, ArithEvent, AtomicOpEvent, CallEvent,
                    CompletionEvent, FnModel, PinStoreEvent, RawSyncEvent,
                    TaintEvent, ThrowEvent)

GUARD_CLASSES = {"MutexLock", "WriterMutexLock", "ReaderMutexLock"}
PIN_TYPEDEF = "BufferPin"
COMPLETION_RECORD = "Completion"
COMPLETION_CHECK_FIELDS = {"ok", "error"}
COMPLETION_USE_FIELDS = {"bytes"}
CONTAINER_STORE_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "assign", "insert_or_assign", "try_emplace",
}
WIRE_RECORDS = {
    "TilesFileHeader", "WalFileHeader", "WalFrameHeader", "FaultSpec",
    "TileStoreMeta", "TilePayloadHeader",
}
# GL6 field-level tracking. Wire records are *intrinsically* untrusted
# (their bytes come straight off disk/socket); derived records (JobSpec)
# start clean and become tainted only if an unsanitized flow writes into
# them. Both are tracked class-level: one field atom per (record, field),
# not per instance — wire structs are parsed in one place and fan out.
DERIVED_RECORDS = {"JobSpec"}
TRACKED_RECORDS = WIRE_RECORDS | DERIVED_RECORDS
# Json accessor methods whose return value is attacker-controlled.
JSON_SOURCE_METHODS = {"as_int", "as_uint", "as_number"}
# Calls that *cut* taint: their result is range-checked by construction.
# util/checked.h helpers trap overflow; the as_*_in Json accessors and
# clamp_* helpers enforce explicit bounds; std::min/clamp impose a ceiling.
SANITIZER_NAMES = {
    "checked_add", "checked_mul", "checked_shl", "checked_in",
    "as_u32_in", "as_u64_in", "as_i64_in", "as_f64_in",
    "min", "clamp",
}
# Sink table: callee name -> (argument indexes, sink kind). Indexes count
# `this` as 0 for methods, so resize's size is arg 1. Scope is checked at
# the call site: std/global for the libc+container entries, any scope for
# the project I/O lengths.
SINK_CALLS = {
    "resize": ((1,), "alloc"), "reserve": ((1,), "alloc"),
    "malloc": ((0,), "alloc"), "calloc": ((0, 1), "alloc"),
    "realloc": ((1,), "alloc"), "aligned_alloc": ((1,), "alloc"),
    "operator new": ((0,), "alloc"), "operator new []": ((0,), "alloc"),
    "memcpy": ((2,), "length"), "memmove": ((2,), "length"),
    "memset": ((2,), "length"), "strncpy": ((2,), "length"),
    "pread_some": ((2,), "length"), "pread_full": ((2,), "length"),
    "pwrite_full": ((2,), "length"),
}
# operator[] is an indexing sink only on contiguous containers; map/
# unordered_map keys are lookups, not offsets.
INDEX_RECORDS = {"vector", "array", "basic_string", "span", "deque"}
# Calls that never return: a compare branching into one is a range check.
COLD_VALIDATORS = {"abort", "terminate", "check_failed", "dcheck_failed",
                   "__assert_fail", "exit", "_exit"}
_COMPARE_TAGS = {"eq_expr", "ne_expr", "lt_expr", "le_expr", "gt_expr",
                 "ge_expr"}
RAW_SYNC_RECORDS = {
    "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "once_flag", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock",
}
RAW_SYNC_CALLS = {"std::call_once", "std::lock", "std::try_lock"}
ATOMIC_RECORDS = {"atomic", "__atomic_base", "atomic_ref", "__atomic_float"}
ATOMIC_PLAIN_OPS = {
    "operator=", "operator++", "operator--", "operator+=", "operator-=",
    "operator|=", "operator&=", "operator^=",
}

# Attribute keys whose referents belong to the evaluation tree. Everything
# else (type:, scpe:, size:, ...) leads into the type graph and is not
# walked.
_WALK_NAMED = {"body", "expr", "cond", "then", "else", "init", "clnp",
               "stmt", "hdlr", "decl"}
_CALL_TAGS = {"call_expr", "aggr_init_expr"}
_ARITH_TAGS = {"mult_expr": "*", "plus_expr": "+", "lshift_expr": "<<"}


def _walk_children(node: Node) -> list[int]:
    out = []
    for key, vals in node.attrs.items():
        take = (key.isdigit() or key.startswith("op ")
                or key in _WALK_NAMED)
        if not take:
            continue
        # `decl` only matters on target_expr (the temporary); elsewhere it
        # points at declarations we treat as leaves.
        if key == "decl" and node.tag != "target_expr":
            continue
        for v in vals:
            if v.startswith("@"):
                out.append((key, int(v[1:])))
    # Positional children first in index order, then ops, then named slots
    # in source order of common tags (cond/then/else, body/hdlr).
    def rank(kv):
        k, _ = kv
        if k.isdigit():
            return (0, int(k))
        if k.startswith("op "):
            return (1, int(k[3:]))
        order = ["init", "cond", "then", "else", "decl", "expr", "body",
                 "stmt", "clnp", "hdlr"]
        return (2, order.index(k) if k in order else len(order))
    out.sort(key=rank)
    return [idx for _, idx in out]


class _SectionView:
    """Navigation helpers bound to one dump section."""

    def __init__(self, section: Section):
        self.s = section

    def node(self, idx):
        return self.s.node(idx)

    def ident(self, idx: int | None) -> str | None:
        n = self.node(idx)
        if n is None:
            return None
        if n.tag == "identifier_node":
            return n.strg
        if n.tag == "type_decl":
            return self.ident(n.ref("name"))
        return None

    def decl_name(self, decl: Node | None) -> str | None:
        if decl is None:
            return None
        return self.ident(decl.ref("name"))

    def type_names(self, type_idx: int | None, depth: int = 0) -> set[str]:
        """All names on the type chain: typedef variants, the record's own
        name, and one level through pointers/references."""
        names: set[str] = set()
        seen = set()
        idx = type_idx
        while idx is not None and idx not in seen and len(seen) < 16:
            seen.add(idx)
            n = self.node(idx)
            if n is None:
                break
            nm = self.ident(n.ref("name"))
            if nm:
                names.add(nm)
            if n.tag in ("pointer_type", "reference_type") and depth < 2:
                names |= self.type_names(
                    n.ref("ptd") or n.ref("refd"), depth + 1)
            idx = n.ref("unql")
        return names

    def scope_chain(self, decl: Node | None) -> list[str]:
        chain: list[str] = []
        guard = 0
        cur = decl.ref("scpe") if decl is not None else None
        while cur is not None and guard < 24:
            guard += 1
            n = self.node(cur)
            if n is None or n.tag == "translation_unit_decl":
                break
            if n.tag == "namespace_decl":
                nm = self.ident(n.ref("name"))
                chain.append(nm or "<anon-ns>")
                cur = n.ref("scpe")
            elif n.tag in ("record_type", "union_type"):
                td = self.node(n.ref("name"))
                nm = self.ident(n.ref("name"))
                chain.append(nm or "<anon-record>")
                cur = td.ref("scpe") if td is not None else None
            elif n.tag == "function_decl":
                chain.append(self.decl_name(n) or "<fn>")
                cur = n.ref("scpe")
            elif n.tag == "type_decl":
                chain.append(self.ident(n.ref("name")) or "<type>")
                cur = n.ref("scpe")
            else:
                break
        chain.reverse()
        return chain

    def scope_kind(self, chain: list[str]) -> str:
        if not chain:
            return "global"
        head = chain[0]
        if head == "std" or head.startswith("__"):
            return "std"
        if "gstore" in chain:
            return "project"
        return "unknown"

    def _type_code(self, idx: int | None, depth: int = 0) -> str:
        n = self.node(idx)
        if n is None or depth > 3:
            return "?"
        if n.tag == "pointer_type":
            return "P" + self._type_code(n.ref("ptd"), depth + 1)
        if n.tag == "reference_type":
            return "R" + self._type_code(n.ref("refd"), depth + 1)
        nm = self.ident(n.ref("name"))
        if nm:
            return nm
        if n.ref("unql") is not None:
            return self._type_code(n.ref("unql"), depth + 1)
        return n.tag

    def fingerprint(self, decl: Node) -> str:
        ftype = self.node(decl.ref("type"))
        if ftype is None:
            return ""
        codes = []
        cur = ftype.ref("prms")
        guard = 0
        while cur is not None and guard < 32:
            guard += 1
            tl = self.node(cur)
            if tl is None or tl.tag != "tree_list":
                break
            v = tl.ref("valu")
            if v is not None:
                codes.append(self._type_code(v))
            cur = tl.ref("chan")
        # Non-variadic prms lists terminate with void; that is arity
        # punctuation, not a parameter.
        if codes and codes[-1] == "void":
            codes.pop()
        return ",".join(codes)

    def fn_key(self, decl: Node) -> tuple[str, str, str]:
        """(key, qualified_name, scope_kind) for a function_decl."""
        chain = self.scope_chain(decl)
        name = self.decl_name(decl) or "<unnamed>"
        qual = "::".join(chain + [name]) if chain else name
        return (f"{qual}({self.fingerprint(decl)})", qual,
                self.scope_kind(chain))

    def srcp(self, decl: Node | None) -> tuple[str, int]:
        if decl is None:
            return ("<unknown>", 0)
        v = decl.value("srcp")
        if not v or ":" not in v:
            return ("<unknown>", 0)
        f, _, ln = v.rpartition(":")
        try:
            return (f, int(ln))
        except ValueError:
            return (f, 0)


_PRETTY_NAME = re.compile(r"([~\w]+|operator\s*[^\s(]*)\s*\(")


def _key_from_pretty(pretty: str) -> str | None:
    """'void gstore::quiesce()' -> 'gstore::quiesce()'. Returns None for
    signatures too exotic to parse (operators with spaces, conversions)."""
    paren = pretty.find("(")
    if paren <= 0:
        return None
    head = pretty[:paren].split()
    if not head:
        return None
    qual = head[-1]
    if not re.fullmatch(r"[\w:~]+", qual):
        return None
    params = pretty[paren + 1:pretty.rfind(")")].strip()
    fingerprint = "" if params in ("", "void") else params
    return f"{qual}({fingerprint})"


def _own_decl(view: _SectionView) -> Node | None:
    """The section's own function_decl, found by voting on the scpe anchors
    of its result/parm/var decls (other decls referenced in the section are
    forward declarations whose params rarely appear)."""
    m = _PRETTY_NAME.search(view.s.pretty)
    base = m.group(1) if m else None
    score: dict[int, int] = {}
    for n in view.s.nodes.values():
        w = {"result_decl": 10, "var_decl": 2, "parm_decl": 1}.get(n.tag)
        if w is None:
            continue
        scpe = n.ref("scpe")
        if scpe is None:
            continue
        target = view.node(scpe)
        if target is not None and target.tag == "function_decl":
            score[scpe] = score.get(scpe, 0) + w
    if score:
        best = view.node(max(score, key=lambda k: score[k]))
        # Callee parm_decls also vote; trust the winner only when its name
        # does not contradict the section pretty (operator identifiers dump
        # nameless and cannot be disproved).
        name = view.decl_name(best)
        if base is None or name is None or name == base:
            return best
    # Voting failed or picked a callee: match the pretty base identifier
    # against function_decl nodes directly.
    for n in view.s.nodes.values():
        if n.tag == "function_decl" and view.decl_name(n) == base:
            return n
    return None


def _callee_decl(view: _SectionView, call: Node) -> Node | None:
    fn = view.node(call.ref("fn"))
    if fn is None:
        return None
    if fn.tag == "addr_expr":
        target = view.node(fn.ref("op 0"))
        if target is not None and target.tag == "function_decl":
            return target
    if fn.tag == "function_decl":
        return fn
    return None  # obj_type_ref (virtual), function pointers, std::function


def _subtree(view: _SectionView, root_idx: int, limit: int = 20000):
    """All evaluation-tree nodes under root (pre-order, cycle-safe)."""
    seen: set[int] = set()
    stack = [root_idx]
    while stack and len(seen) < limit:
        idx = stack.pop()
        if idx in seen:
            continue
        seen.add(idx)
        n = view.node(idx)
        if n is None:
            continue
        yield n
        for c in reversed(_walk_children(n)):
            stack.append(c)


def _guard_of_finalizer(view: _SectionView, fin_idx: int):
    """If this try_finally finalizer destroys a gstore guard, return its
    description ('MutexLock lock'); else None."""
    for n in _subtree(view, fin_idx, limit=64):
        if n.tag not in _CALL_TAGS:
            continue
        decl = _callee_decl(view, n)
        if decl is None or "destructor" not in decl.attrs.get("note", []):
            continue
        chain = view.scope_chain(decl)
        if not chain or chain[-1] not in GUARD_CLASSES:
            continue
        if "gstore" not in chain:
            continue
        var = "?"
        arg0 = view.node(n.ref("0"))
        if arg0 is not None and arg0.tag == "addr_expr":
            v = view.node(arg0.ref("op 0"))
            if v is not None:
                var = view.decl_name(v) or "?"
        return f"{chain[-1]} {var}"
    return None


def _bottom_decl(view: _SectionView, idx: int | None, depth: int = 0):
    """Follows component/indirect/array/nop chains to the base decl."""
    n = view.node(idx)
    if n is None or depth > 24:
        return None
    if n.tag in ("var_decl", "parm_decl", "result_decl"):
        return n
    if n.tag in ("component_ref", "array_ref", "indirect_ref", "nop_expr",
                 "convert_expr", "non_lvalue_expr", "addr_expr",
                 "view_convert_expr", "save_expr"):
        return _bottom_decl(view, n.ref("op 0"), depth + 1)
    if n.tag in _CALL_TAGS:
        # std::move / std::forward are casts, not calls; look through them.
        decl = _callee_decl(view, n)
        if decl is not None and view.decl_name(decl) in ("move", "forward"):
            return _bottom_decl(view, n.ref("0"), depth + 1)
    return None


def _int_typed(view: _SectionView, n: Node | None) -> bool:
    """Integer-ish value (what GL6 tracks: sizes, counts, offsets)."""
    if n is None:
        return False
    t = view.node(n.ref("type"))
    seen = 0
    while t is not None and seen < 8:
        seen += 1
        if t.tag in ("integer_type", "enumeral_type", "boolean_type"):
            return True
        if t.ref("unql") is None:
            return False
        t = view.node(t.ref("unql"))
    return False


def _param_indexes(view: _SectionView, own_decl: Node | None) -> dict:
    """parm_decl node idx -> positional index (0 = `this` for methods).

    The raw dump drops the decl chain (`chan:`) from parm_decls, so order
    is reconstructed by matching each parm's passed type (`argt:`) against
    the function type's `prms:` tree_list, which *is* in positional order.
    Same-typed parameters tie-break by node index (creation order tracks
    declaration order in practice); a total failure to match falls back to
    node-index order outright, which only risks swapping same-typed
    neighbors — a flow-precision loss, never a crash."""
    if own_decl is None:
        return {}
    parms = sorted((n for n in view.s.nodes.values()
                    if n.tag == "parm_decl"
                    and n.ref("scpe") == own_decl.idx),
                   key=lambda n: n.idx)
    if not parms:
        return {}
    ftype = view.node(own_decl.ref("type"))
    slots: list[int | None] = []
    cur = ftype.ref("prms") if ftype is not None else None
    guard = 0
    while cur is not None and guard < 32:
        guard += 1
        tl = view.node(cur)
        if tl is None or tl.tag != "tree_list":
            break
        slots.append(tl.ref("valu"))
        cur = tl.ref("chan")
    out: dict[int, int] = {}
    used: set[int] = set()
    for p in parms:
        want = p.ref("argt") or p.ref("type")
        pos = next((j for j, s in enumerate(slots)
                    if j not in used and s == want), None)
        if pos is not None:
            out[p.idx] = pos
            used.add(pos)
    rest = [j for j in range(max(len(slots), len(parms))) if j not in used]
    for p in parms:
        if p.idx not in out and rest:
            out[p.idx] = rest.pop(0)
    # `this` is always position 0 regardless of what matching said.
    this = next((p for p in parms if view.decl_name(p) == "this"), None)
    if this is not None and out.get(this.idx) != 0:
        swapped = next((k for k, v in out.items() if v == 0), None)
        if swapped is not None:
            out[swapped] = out.get(this.idx, 0)
        out[this.idx] = 0
    return out


def _record_contains_pin(view: _SectionView, type_idx: int | None) -> bool:
    """Does this record (directly) carry a BufferPin field?"""
    seen = set()
    idx = type_idx
    while idx is not None and idx not in seen:
        seen.add(idx)
        n = view.node(idx)
        if n is None:
            return False
        if n.tag in ("record_type", "union_type"):
            f = n.ref("flds")
            guard = 0
            while f is not None and guard < 64:
                guard += 1
                fd = view.node(f)
                if fd is None:
                    break
                if fd.tag == "field_decl" and \
                        PIN_TYPEDEF in view.type_names(fd.ref("type")):
                    return True
                f = fd.ref("next")
            return False
        if n.tag in ("reference_type", "pointer_type"):
            idx = n.ref("refd") or n.ref("ptd")
        else:
            idx = n.ref("unql")
    return False


def _is_pin_type(view: _SectionView, type_idx: int | None) -> bool:
    return PIN_TYPEDEF in view.type_names(type_idx)


def _is_completion_decl(view: _SectionView, decl: Node | None) -> bool:
    if decl is None:
        return False
    return COMPLETION_RECORD in view.type_names(decl.ref("type"))


def _collect_taint(view: _SectionView):
    """Returns (tainted decl indexes, expr_tainted checker) for a section."""

    def expr_tainted(idx: int, tainted: set[int]) -> str | None:
        for n in _subtree(view, idx, limit=2000):
            if n.tag == "component_ref":
                fd = view.node(n.ref("op 1"))
                if fd is not None and fd.tag == "field_decl":
                    rec = view.node(fd.ref("scpe"))
                    if rec is not None:
                        rn = view.ident(rec.ref("name"))
                        if rn in WIRE_RECORDS:
                            return f"{rn}.{view.decl_name(fd)}"
            elif n.tag in _CALL_TAGS:
                decl = _callee_decl(view, n)
                if decl is not None:
                    chain = view.scope_chain(decl)
                    if chain and chain[-1] in WIRE_RECORDS:
                        return f"{chain[-1]}::{view.decl_name(decl)}()"
            elif n.tag in ("var_decl", "parm_decl") and n.idx in tainted:
                return view.decl_name(n) or "local"
        return None

    tainted: set[int] = set()
    for _ in range(2):
        for n in view.s.nodes.values():
            if n.tag == "var_decl" and n.idx not in tainted:
                init = n.ref("init")
                if init is not None and expr_tainted(init, tainted):
                    tainted.add(n.idx)
            elif n.tag in ("modify_expr", "init_expr"):
                lhs = _bottom_decl(view, n.ref("op 0"))
                rhs = n.ref("op 1")
                if lhs is not None and lhs.tag == "var_decl" and \
                        lhs.idx not in tainted and rhs is not None and \
                        expr_tainted(rhs, tainted):
                    tainted.add(lhs.idx)
    return tainted, expr_tainted


class _Lowerer:
    def __init__(self, section: Section):
        self.view = _SectionView(section)
        self.fn: FnModel | None = None
        self.taint: set[int] = set()
        self.taint_checker = None
        self.line = 0
        self.params: dict[int, int] = {}     # parm_decl idx -> position
        self.guard_ids: dict[str, str] = {}  # guard var name -> lock id

    def lower(self) -> FnModel | None:
        view = self.view
        root = view.s.root
        if root is None:
            return None
        decl = _own_decl(view)
        if decl is not None:
            key, qual, _kind = view.fn_key(decl)
            file, line = view.srcp(decl)
        else:
            # Anchorless section (no params/locals/returns reference the
            # own function_decl): synthesize identity from the pretty
            # signature. For no-arg functions the key matches the one
            # call sites compute; parameterized anchorless functions get
            # a standalone (unlinkable) key, which only costs call-graph
            # edges, not direct findings.
            key = _key_from_pretty(view.s.pretty)
            if key is None:
                return None
            file, line = "<unknown>", 0
        noexc = root.tag == "must_not_throw_expr"
        if not noexc and root.tag == "bind_expr":
            body = view.node(root.ref("body"))
            noexc = body is not None and body.tag == "must_not_throw_expr"
        ln = root.value("line")
        if line == 0 and ln is not None and ln.isdigit():
            line = int(ln)
        self.fn = FnModel(key=key, pretty=view.s.pretty, file=file,
                          line=line, noexcept=noexc)
        # The raw dumper prints try_catch_expr with no operands and does
        # not queue its subtree, so part of this body never reached the
        # dump. Mark it for recovery from the GIMPLE dump (gimplepatch).
        self.fn.truncated = any(
            n.tag == "try_catch_expr" for n in view.s.nodes.values())
        self.line = line
        self.taint, self.taint_checker = _collect_taint(view)
        self.params = _param_indexes(view, decl)
        self._scan_decls()
        self._walk(root.idx, locks=(), lids=(), shielded=False, depth=0)
        self._walk_var_inits(decl)
        return self.fn

    def _walk_var_inits(self, own_decl: Node | None) -> None:
        """Scalar local initializers (`size_t n = h.len * 8;`) live on the
        var_decl's `init:` attr; the statement stream shows only bare
        decl_expr markers. Walk them explicitly, line-stamped from the
        decl, so GL3/GL4 see initializer expressions. Ordering against
        the statement stream is restored downstream by line sort."""
        view = self.view
        for n in view.s.nodes.values():
            if n.tag != "var_decl":
                continue
            init = n.ref("init")
            if init is None:
                continue
            if own_decl is not None and n.ref("scpe") != own_decl.idx:
                continue
            _, ln = view.srcp(n)
            if ln:
                self.line = ln
            if _int_typed(view, n):
                atoms = self._atoms_of(init)
                if atoms:
                    name = view.decl_name(n)
                    if name:
                        self.fn.taints.append(TaintEvent(
                            kind="flow", dst=f"l:{name}", atoms=atoms,
                            detail=f"init of '{name}'", file=self.fn.file,
                            line=self.line))
            self._walk(init, locks=(), lids=(), shielded=False, depth=0)

    # -- declaration-level scans (R4 raw sync types) --------------------

    def _scan_decls(self) -> None:
        view, fn = self.view, self.fn
        for n in view.s.nodes.values():
            if n.tag not in ("var_decl", "parm_decl", "field_decl"):
                continue
            f, ln = view.srcp(n)
            if f == "<unknown>":
                continue
            names = view.type_names(n.ref("type"))
            hit = names & RAW_SYNC_RECORDS
            if not hit:
                continue
            # The decl itself must be project-owned: std's own internals
            # (call_once's parms, lock_guard fields) use these types too.
            if view.scope_kind(view.scope_chain(n)) == "std":
                continue
            # Only std's primitives count; a project record that happens to
            # share a name would be caught by its scope below.
            tnode = view.node(n.ref("type"))
            std_owned = False
            seen = set()
            idx = n.ref("type")
            while idx is not None and idx not in seen:
                seen.add(idx)
                tnode = view.node(idx)
                if tnode is None:
                    break
                if tnode.tag in ("record_type", "union_type"):
                    td = view.node(tnode.ref("name"))
                    chain = view.scope_chain(td) if td else []
                    std_owned = bool(chain) and (
                        chain[0] == "std" or chain[0].startswith("__"))
                    break
                idx = tnode.ref("unql") or tnode.ref("refd") or \
                    tnode.ref("ptd")
            if std_owned:
                fn.raw_syncs.append(RawSyncEvent(
                    what=f"std::{sorted(hit)[0]}", file=f, line=ln))

    # -- ordered body walk ----------------------------------------------

    def _walk(self, idx: int, locks: tuple, lids: tuple, shielded: bool,
              depth: int) -> None:
        if depth > 4000:
            return
        view, fn = self.view, self.fn
        n = view.node(idx)
        if n is None:
            return
        # Declarations are leaves of the evaluation walk; their initializers
        # surface through the statement stream (target_expr / ctor calls).
        if n.tag in ("var_decl", "parm_decl", "field_decl",
                     "function_decl", "result_decl"):
            return
        ln = n.value("line")
        if ln is not None and ln.isdigit():
            self.line = int(ln)

        if n.tag == "try_finally_expr":
            fin = n.ref("op 1")
            guard = _guard_of_finalizer(view, fin) if fin is not None \
                else None
            body = n.ref("op 0")
            if body is not None:
                inner_lids = lids
                if guard:
                    gid = self.guard_ids.get(guard.split(" ", 1)[-1])
                    if gid and gid not in lids:
                        inner_lids = lids + (gid,)
                self._walk(body, locks + (guard,) if guard else locks,
                           inner_lids, shielded, depth + 1)
            if fin is not None:
                self._walk(fin, locks, lids, shielded, depth + 1)
            return

        if n.tag == "try_block":
            handlers = []
            h = n.ref("hdlr")
            if h is not None:
                hn = view.node(h)
                if hn is not None and hn.tag == "statement_list":
                    handlers = [view.node(i)
                                for _, i in hn.indexed_refs()]
                elif hn is not None:
                    handlers = [hn]
            catch_all = any(hh is not None and not hh.has_attr("type")
                            for hh in handlers)
            body = n.ref("body")
            if body is not None:
                self._walk(body, locks, lids, shielded or catch_all,
                           depth + 1)
            for hh in handlers:
                if hh is not None and hh.ref("body") is not None:
                    self._walk(hh.ref("body"), locks, lids, shielded,
                               depth + 1)
            return

        if n.tag == "throw_expr":
            fn.throws.append(ThrowEvent(file=fn.file, line=self.line,
                                        shielded=shielded))
            return  # the __cxa machinery below is a cold path

        if n.tag in _CALL_TAGS:
            self._handle_call(n, locks, lids, shielded)
            for c in _walk_children(n):
                self._walk(c, locks, lids, shielded, depth + 1)
            return

        if n.tag in ("modify_expr", "init_expr"):
            self._handle_store(n, depth)
            rhs = n.ref("op 1")
            if rhs is not None:
                self._walk(rhs, locks, lids, shielded, depth + 1)
            return

        if n.tag == "component_ref":
            self._handle_field_read(n)
            base = n.ref("op 0")
            if base is not None:
                self._walk(base, locks, lids, shielded, depth + 1)
            return

        if n.tag == "cond_expr":
            self._handle_cond(n)

        if n.tag == "array_ref":
            atoms = self._atoms_of(n.ref("op 1"))
            if atoms:
                fn.taints.append(TaintEvent(
                    kind="sink", dst="index", atoms=atoms,
                    detail="array index", file=fn.file, line=self.line))

        op = _ARITH_TAGS.get(n.tag)
        if op is not None:
            self._handle_arith(n, op)
            if op == "<<":
                atoms = self._atoms_of(n.ref("op 1"))
                if atoms:
                    fn.taints.append(TaintEvent(
                        kind="sink", dst="shift", atoms=atoms,
                        detail="shift amount", file=fn.file,
                        line=self.line))

        for c in _walk_children(n):
            self._walk(c, locks, lids, shielded, depth + 1)

    # -- event emitters --------------------------------------------------

    def _handle_call(self, call: Node, locks: tuple, lids: tuple,
                     shielded: bool) -> None:
        view, fn = self.view, self.fn
        decl = _callee_decl(view, call)
        if decl is None:
            fn.calls.append(CallEvent(
                callee=None, callee_name="<indirect>", scope="unknown",
                file=fn.file, line=self.line, locks=locks,
                shielded=shielded, lock_ids=lids))
        else:
            key, qual, kind = view.fn_key(decl)
            name = qual.rsplit("::", 1)[-1]
            is_dtor = "destructor" in decl.attrs.get("note", [])
            fn.calls.append(CallEvent(
                callee=key, callee_name=name, scope=kind, file=fn.file,
                line=self.line, locks=locks, shielded=shielded,
                is_dtor=is_dtor, lock_ids=lids))
            if qual in RAW_SYNC_CALLS:
                fn.raw_syncs.append(RawSyncEvent(
                    what=qual, file=fn.file, line=self.line))
            self._maybe_atomic_op(call, decl, qual, name)
            self._maybe_container_pin_store(call, decl, name, kind)
            self._maybe_member_pin_store(call, decl)
            self._maybe_guard_ctor(call, decl, lids)
            self._taint_call(call, decl, key, name, kind)
        # Passing a Completion lvalue to a callee transfers the checking
        # obligation (the callee inspects ok/error) — mark it checked.
        for _, argidx in call.indexed_refs():
            base = _bottom_decl(view, argidx)
            if base is not None and _is_completion_decl(view, base):
                fn.completions.append(CompletionEvent(
                    kind="check",
                    var=f"{view.decl_name(base) or 'c'}@{base.idx}",
                    detail="passed-to-callee", file=fn.file,
                    line=self.line))

    def _maybe_atomic_op(self, call: Node, decl: Node, qual: str,
                         name: str) -> None:
        view, fn = self.view, self.fn
        if name not in ATOMIC_PLAIN_OPS:
            return
        chain = view.scope_chain(decl)
        if len(chain) < 2 or chain[-1] not in ATOMIC_RECORDS:
            return
        arg0 = view.node(call.ref("0"))
        target = view.node(arg0.ref("op 0")) if arg0 is not None and \
            arg0.tag == "addr_expr" else None
        member = None
        if target is not None and target.tag == "component_ref":
            fd = view.node(target.ref("op 1"))
            member = view.decl_name(fd)
        if member:
            fn.atomic_ops.append(AtomicOpEvent(
                member=member, op=name, file=fn.file, line=self.line))

    def _maybe_container_pin_store(self, call: Node, decl: Node,
                                   name: str, kind: str) -> None:
        view, fn = self.view, self.fn
        if name not in CONTAINER_STORE_METHODS or kind != "std":
            return
        for _, argidx in call.indexed_refs():
            arg = view.node(argidx)
            if arg is None:
                continue
            # Expression types canonicalize (BufferPin -> shared_ptr), so
            # also consult the *declared* type of the underlying decl,
            # which keeps the typedef spelling.
            t = arg.ref("type")
            hit = _is_pin_type(view, t) or _record_contains_pin(view, t)
            if not hit:
                base = _bottom_decl(view, argidx)
                if base is not None:
                    bt = base.ref("type")
                    hit = _is_pin_type(view, bt) or \
                        _record_contains_pin(view, bt)
            if hit:
                fn.pin_stores.append(PinStoreEvent(
                    kind="container",
                    detail=f"{name}() argument carries a {PIN_TYPEDEF}",
                    file=fn.file, line=self.line))
                return

    def _maybe_member_pin_store(self, call: Node, decl: Node) -> None:
        """`pin_ = ...` lowers to an operator= *call* on the shared_ptr,
        not a modify_expr; member construction lowers to a ctor call. Both
        target `&this->pin_` as argument 0."""
        view, fn = self.view, self.fn
        notes = decl.attrs.get("note", [])
        if "constructor" in notes:
            pass
        elif "operator" in notes:
            # Assignment-like operators return a reference to their own
            # class (filters operator bool / operator-> observers).
            mtype = view.node(decl.ref("type"))
            retn = view.node(mtype.ref("retn")) if mtype is not None \
                else None
            if retn is None or retn.tag != "reference_type" or \
                    mtype.ref("clas") is None:
                return
            refd = view.node(retn.ref("refd"))
            clas = view.node(mtype.ref("clas"))
            while refd is not None and refd.ref("unql") is not None:
                refd = view.node(refd.ref("unql"))
            if refd is None or clas is None or refd.idx != clas.idx:
                return
        else:
            return
        arg0 = view.node(call.ref("0"))
        if arg0 is None or arg0.tag != "addr_expr":
            return
        tgt = view.node(arg0.ref("op 0"))
        if tgt is None or tgt.tag != "component_ref":
            return
        fd = view.node(tgt.ref("op 1"))
        if fd is None or fd.tag != "field_decl" or \
                not _is_pin_type(view, fd.ref("type")):
            return
        base = _bottom_decl(view, tgt.ref("op 0"))
        if base is not None and base.tag == "var_decl":
            return  # member of a local aggregate: judged where *it* escapes
        if self._own_record_field(fd):
            return  # the record's own lifecycle members initialize it
        fn.pin_stores.append(PinStoreEvent(
            kind="member",
            detail=f"store into {PIN_TYPEDEF} member "
                   f"'{view.decl_name(fd)}'",
            file=fn.file, line=self.line))

    def _own_record_field(self, fd: Node) -> bool:
        """True when the current function is a *lifecycle* member (ctor,
        dtor, assignment) of the record that declares `fd`: those touch
        the field to initialize/move it, which is not an escape. Ordinary
        member functions of the record stay in scope for GL2."""
        view = self.view
        rec = view.node(fd.ref("scpe"))
        rec_name = view.ident(rec.ref("name")) if rec is not None else None
        if not rec_name:
            return False
        qual = self.fn.key.split("(", 1)[0]
        parts = qual.split("::")
        if len(parts) < 2 or parts[-2] != rec_name:
            return False
        return (parts[-1] in (rec_name, "~" + rec_name) or
                "operator=" in self.fn.pretty)

    def _handle_store(self, n: Node, depth: int) -> None:
        view, fn = self.view, self.fn
        lhs_idx = n.ref("op 0")
        lhs = view.node(lhs_idx)
        if lhs is not None and lhs.tag == "component_ref":
            fd = view.node(lhs.ref("op 1"))
            if fd is not None and fd.tag == "field_decl" and \
                    _is_pin_type(view, fd.ref("type")):
                base = _bottom_decl(view, lhs.ref("op 0"))
                # Storing through a member of *this* (or of anything that is
                # not a plain local) escapes the pin past the current scope.
                local = base is not None and base.tag == "var_decl"
                if not local and not self._own_record_field(fd):
                    fn.pin_stores.append(PinStoreEvent(
                        kind="member",
                        detail=f"store into {PIN_TYPEDEF} member "
                               f"'{view.decl_name(fd)}'",
                        file=fn.file, line=self.line))
        self._taint_store(n)
        base = _bottom_decl(view, lhs_idx)
        if base is not None and _is_completion_decl(view, base):
            lhs_node = view.node(lhs_idx)
            if lhs_node is not None and lhs_node.tag in (
                    "var_decl", "parm_decl", "result_decl"):
                fn.completions.append(CompletionEvent(
                    kind="reset",
                    var=f"{view.decl_name(base) or 'c'}@{base.idx}",
                    detail="reassigned",
                    file=fn.file, line=self.line))
            # Writes to individual fields are construction, not use.

    def _handle_field_read(self, n: Node) -> None:
        view, fn = self.view, self.fn
        fd = view.node(n.ref("op 1"))
        if fd is None or fd.tag != "field_decl":
            return
        fname = view.decl_name(fd)
        if fname not in COMPLETION_CHECK_FIELDS | COMPLETION_USE_FIELDS:
            return
        rec = view.node(fd.ref("scpe"))
        if rec is None or view.ident(rec.ref("name")) != COMPLETION_RECORD:
            return
        base = _bottom_decl(view, n.ref("op 0"))
        if base is None or not _is_completion_decl(view, base):
            return
        kind = "check" if fname in COMPLETION_CHECK_FIELDS else "use"
        fn.completions.append(CompletionEvent(
            kind=kind, var=f"{view.decl_name(base) or 'c'}@{base.idx}",
            detail=fname, file=fn.file, line=self.line))

    def _handle_arith(self, n: Node, op: str) -> None:
        view, fn = self.view, self.fn
        t = view.node(n.ref("type"))
        if t is None or t.tag not in ("integer_type", "enumeral_type"):
            return
        checker = self.taint_checker
        if checker is None:
            return
        for opk in ("op 0", "op 1"):
            ref = n.ref(opk)
            if ref is None:
                continue
            src = checker(ref, self.taint)
            if src:
                fn.ariths.append(ArithEvent(
                    op=op, detail=src, file=fn.file, line=self.line))
                return

    # -- GL6/GL7 emitters -------------------------------------------------

    def _atoms_of(self, idx: int | None) -> tuple[str, ...]:
        """Taint atoms an expression's value derives from (see
        model.TaintEvent for the grammar). Tracked-record field reads and
        resolved calls are extraction *boundaries*: the field atom / the
        r: atom stands for the whole subexpression, and sanitizer calls
        contribute nothing at all (the cut)."""
        view = self.view
        out: list[str] = []
        seen: set[int] = set()

        def rec(i, d):
            if i is None or i in seen or d > 40 or len(out) > 16:
                return
            seen.add(i)
            n = view.node(i)
            if n is None:
                return
            if n.tag == "component_ref":
                fd = view.node(n.ref("op 1"))
                if fd is not None and fd.tag == "field_decl":
                    recn = view.node(fd.ref("scpe"))
                    rn = view.ident(recn.ref("name")) \
                        if recn is not None else None
                    if rn in TRACKED_RECORDS:
                        out.append(f"f:{rn}.{view.decl_name(fd)}")
                        return
                rec(n.ref("op 0"), d + 1)
                return
            if n.tag == "var_decl":
                nm = view.decl_name(n)
                if nm:
                    out.append(f"l:{nm}")
                return
            if n.tag == "parm_decl":
                pos = self.params.get(n.idx)
                if pos is not None:
                    out.append(f"p{pos}")
                return
            if n.tag in _CALL_TAGS:
                decl = _callee_decl(view, n)
                if decl is None:
                    return               # indirect call: opaque
                key, qual, _kind = view.fn_key(decl)
                name = qual.rsplit("::", 1)[-1]
                if name in SANITIZER_NAMES:
                    return               # sanitized by construction
                chain = view.scope_chain(decl)
                if name in JSON_SOURCE_METHODS and chain and \
                        chain[-1] == "Json":
                    out.append(f"src:Json.{name}")
                    return
                if name in ("move", "forward"):
                    rec(n.ref("0"), d + 1)
                    return
                out.append(f"r:{key}")
                return
            for c in _walk_children(n):
                rec(c, d + 1)

        rec(idx, 0)
        return tuple(dict.fromkeys(out))

    def _taint_store(self, n: Node) -> None:
        view, fn = self.view, self.fn
        lhs = view.node(n.ref("op 0"))
        if lhs is None:
            return
        dst = None
        if lhs.tag == "component_ref":
            fd = view.node(lhs.ref("op 1"))
            if fd is not None and fd.tag == "field_decl":
                recn = view.node(fd.ref("scpe"))
                rn = view.ident(recn.ref("name")) \
                    if recn is not None else None
                if rn in TRACKED_RECORDS:
                    dst = f"f:{rn}.{view.decl_name(fd)}"
        elif lhs.tag == "var_decl" and _int_typed(view, lhs):
            nm = view.decl_name(lhs)
            dst = f"l:{nm}" if nm else None
        elif lhs.tag == "parm_decl" and _int_typed(view, lhs):
            pos = self.params.get(lhs.idx)
            dst = f"p{pos}" if pos is not None else None
        elif lhs.tag == "result_decl":
            dst = "ret"
        if dst is None:
            return
        atoms = self._atoms_of(n.ref("op 1"))
        if atoms:
            fn.taints.append(TaintEvent(
                kind="flow", dst=dst, atoms=atoms,
                detail=f"store to {dst}", file=fn.file, line=self.line))

    def _taint_call(self, call: Node, decl: Node, key: str, name: str,
                    kind: str) -> None:
        """Caller-side GL6 facts: integer argument flows into the callee's
        parameter slots, plus the sink table."""
        view, fn = self.view, self.fn
        args: dict[int, int] = dict(call.indexed_refs())
        for pos, argidx in sorted(args.items()):
            argn = view.node(argidx)
            if not _int_typed(view, argn):
                continue
            atoms = self._atoms_of(argidx)
            if atoms:
                fn.taints.append(TaintEvent(
                    kind="flow", dst=f"a:{key}:{pos}", atoms=atoms,
                    detail=f"arg {pos} of {name}", file=fn.file,
                    line=self.line))
        sink = SINK_CALLS.get(name)
        if sink is not None:
            idxs, skind = sink
            project_ok = name in ("pread_some", "pread_full",
                                  "pwrite_full")
            if (kind in ("std", "global")) or (project_ok and
                                               kind == "project"):
                atoms = []
                for pos in idxs:
                    if pos in args:
                        atoms.extend(self._atoms_of(args[pos]))
                atoms = tuple(dict.fromkeys(atoms))
                if atoms:
                    fn.taints.append(TaintEvent(
                        kind="sink", dst=skind, atoms=atoms,
                        detail=f"{name}()", file=fn.file, line=self.line))
        if name == "operator[]" and kind == "std":
            chain = view.scope_chain(decl)
            if chain and chain[-1] in INDEX_RECORDS and 1 in args:
                atoms = self._atoms_of(args[1])
                if atoms:
                    fn.taints.append(TaintEvent(
                        kind="sink", dst="index", atoms=atoms,
                        detail=f"{chain[-1]}::operator[]", file=fn.file,
                        line=self.line))

    def _handle_cond(self, n: Node) -> None:
        """Two GL6 facts live on cond_expr. A loop latch (both branches
        are gotos in genericized loop form) whose condition compares a
        tainted value is a loop-bound sink. A branch that compares a
        value and then throws/returns/aborts is explicit range
        validation: the compared atoms are sanitized for the rest of the
        function (flow-insensitive blessing; see taint.py)."""
        view, fn = self.view, self.fn
        cond = n.ref("op 0")
        if cond is None:
            return
        catoms: list[str] = []
        for cnode in _subtree(view, cond, limit=200):
            if cnode.tag in _COMPARE_TAGS:
                catoms.extend(self._atoms_of(cnode.ref("op 0")))
                catoms.extend(self._atoms_of(cnode.ref("op 1")))
        atoms = tuple(dict.fromkeys(catoms))
        if not atoms:
            return
        b1 = view.node(n.ref("op 1"))
        b2 = view.node(n.ref("op 2"))
        if b1 is not None and b2 is not None and \
                b1.tag == "goto_expr" and b2.tag == "goto_expr":
            fn.taints.append(TaintEvent(
                kind="sink", dst="loop", atoms=atoms, detail="loop bound",
                file=fn.file, line=self.line))
            return
        for bidx in (n.ref("op 1"), n.ref("op 2")):
            if bidx is None:
                continue
            for bnode in _subtree(view, bidx, limit=300):
                bails = bnode.tag in ("throw_expr", "return_expr")
                if not bails and bnode.tag in _CALL_TAGS:
                    d = _callee_decl(view, bnode)
                    bails = d is not None and \
                        view.decl_name(d) in COLD_VALIDATORS
                if bails:
                    fn.taints.append(TaintEvent(
                        kind="sanitize", dst="", atoms=atoms,
                        detail="range check", file=fn.file,
                        line=self.line))
                    return

    def _maybe_guard_ctor(self, call: Node, decl: Node,
                          lids: tuple) -> None:
        """A gstore guard construction is a lock acquisition; record the
        guard variable's lock identity so the try_finally that scopes it
        (walked next, in statement order) can push the identity."""
        view, fn = self.view, self.fn
        if "constructor" not in decl.attrs.get("note", []):
            return
        chain = view.scope_chain(decl)
        if not chain or chain[-1] not in GUARD_CLASSES or \
                "gstore" not in chain:
            return
        var = None
        arg0 = view.node(call.ref("0"))
        if arg0 is not None and arg0.tag == "addr_expr":
            v = view.node(arg0.ref("op 0"))
            if v is not None:
                var = view.decl_name(v)
        lock = self._lock_identity(call.ref("1"))
        if lock is None:
            return                       # unresolvable: under-approximate
        if var:
            self.guard_ids[var] = lock
        fn.acquires.append(AcquireEvent(
            lock=lock, held=lids, file=fn.file, line=self.line))

    def _lock_identity(self, idx: int | None,
                       depth: int = 0) -> str | None:
        """Lock identity for a guard ctor's mutex argument: member path +
        owning class ('CachePool::mutex_'), or a function-qualified name
        for local/param mutexes. Class-level, not instance-level — two
        instances of one class share an identity, which over-approximates
        in the direction GL7 wants."""
        view = self.view
        n = view.node(idx)
        if n is None or depth > 12:
            return None
        if n.tag in ("addr_expr", "nop_expr", "convert_expr",
                     "non_lvalue_expr", "save_expr", "indirect_ref",
                     "view_convert_expr"):
            return self._lock_identity(n.ref("op 0"), depth + 1)
        if n.tag == "component_ref":
            fd = view.node(n.ref("op 1"))
            if fd is None or fd.tag != "field_decl":
                return None
            recn = view.node(fd.ref("scpe"))
            rn = view.ident(recn.ref("name")) if recn is not None else None
            fname = view.decl_name(fd)
            return f"{rn}::{fname}" if rn and fname else None
        if n.tag in ("var_decl", "parm_decl"):
            nm = view.decl_name(n)
            qual = self.fn.key.split("(", 1)[0]
            return f"{qual}::{nm}" if nm else None
        return None


def lower_section(section: Section) -> FnModel | None:
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 20000))
    try:
        return _Lowerer(section).lower()
    except RecursionError:
        return None
