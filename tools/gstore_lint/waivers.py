"""GL-SAFE waiver comments: the audited escape hatch.

Grammar (documented in docs/CORRECTNESS.md):

    // GL-SAFE(<tag>[,<tag>...]): <reason>

where <tag> is GL1..GL7, R1, R4, or the alias `lock-free` (== GL1). The
waiver applies to findings on its own line, on any directly following
comment lines (a multi-line rationale), and on the first statement line
after the comment block (comment-above style). A trailing waiver on the
statement line itself also works. The reason is mandatory: a reasonless
waiver is
itself reported as [GL-WAIVER], because an unexplained suppression is
indistinguishable from a silenced bug (same policy as R5's SAFETY:
comments).
"""

from __future__ import annotations

import re
from pathlib import Path

from .model import Finding

WAIVER = re.compile(r"//\s*GL-SAFE\(([^)]*)\)\s*:?\s*(.*)")
ALIASES = {"lock-free": "GL1", "pin": "GL2"}
VALID = {"GL1", "GL2", "GL3", "GL4", "GL5", "GL6", "GL7", "R1", "R4"}


class Waivers:
    def __init__(self) -> None:
        # (abs file, line) -> set of waived check ids
        self._by_line: dict[tuple[str, int], set[str]] = {}
        self._errors: list[Finding] = []
        self._loaded: set[str] = set()

    def load_file(self, path: str) -> None:
        if path in self._loaded:
            return
        self._loaded.add(path)
        try:
            text = Path(path).read_text(errors="replace")
        except OSError:
            return
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            m = WAIVER.search(line)
            if not m:
                continue
            tags = set()
            bad = []
            for raw in m.group(1).split(","):
                t = raw.strip()
                t = ALIASES.get(t, t)
                if t in VALID:
                    tags.add(t)
                elif t:
                    bad.append(t)
            reason = m.group(2).strip()
            if not reason or bad or not tags:
                why = ("no reason given" if not reason else
                       f"unknown tag(s): {', '.join(bad)}" if bad else
                       "no valid tags")
                self._errors.append(Finding(
                    check="GL-WAIVER", file=path, line=lineno,
                    message=f"malformed GL-SAFE waiver ({why}) — use "
                            f"// GL-SAFE(GLn): reason"))
                continue
            # Waives the waiver line, the rest of its comment block (a
            # multi-line rationale), and the first statement line after it.
            end = lineno + 1
            while end <= len(lines) and lines[end - 1].lstrip().startswith("//"):
                end += 1
            for ln in range(lineno, end + 1):
                self._by_line.setdefault((path, ln), set()).update(tags)

    def waived(self, check: str, file: str, line: int) -> bool:
        return check in self._by_line.get((file, line), set())

    def errors(self) -> list[Finding]:
        return list(self._errors)

    def all_waivers(self) -> list[tuple[str, int, str]]:
        out = []
        for (f, ln), tags in sorted(self._by_line.items()):
            out.append((f, ln, ",".join(sorted(tags))))
        return out
