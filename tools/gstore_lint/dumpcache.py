"""Per-TU lowering cache.

Compiling a TU to its GENERIC+GIMPLE dumps dominates lint wall-time
(~3s/TU); the whole-program fixpoint over the merged Program is
milliseconds. Caching therefore happens at the per-TU boundary: the
*lowered FnModels* are stored, keyed by the dump command plus a content
hash of every file the TU includes (computed with the compiler's own
`-MM` dependency scan, so a header edit anywhere in the include closure
invalidates exactly the TUs that see it). The interprocedural checks
(GL6 taint fixpoint, GL7 lock graph) still run on every invocation —
only the frontend work is skipped.

Entries self-invalidate when the lowering code changes: the key mixes in
a digest of the gstore_lint sources themselves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import tempfile
from pathlib import Path

from .model import EVENT_ATTRS, EVENT_TYPES, FnModel

_TOOL_FILES = ("model.py", "gccdump.py", "gccfront.py", "gimplepatch.py",
               "dumpcache.py")


def _tool_digest() -> str:
    h = hashlib.sha256()
    here = Path(__file__).resolve().parent
    for name in _TOOL_FILES:
        p = here / name
        try:
            h.update(p.read_bytes())
        except OSError:
            h.update(b"?")
    return h.hexdigest()[:16]


_TOOL = _tool_digest()


def key(args: list[str], directory: str) -> str:
    h = hashlib.sha256()
    h.update(_TOOL.encode())
    h.update("\0".join(args).encode())
    h.update(directory.encode())
    return h.hexdigest()[:32]


def _file_sha(path: str) -> str | None:
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]
    except OSError:
        return None


def dep_files(args: list[str], directory: str) -> list[str] | None:
    """The TU's include closure via the compiler's -MM scan (project
    headers only; system headers are pinned by the toolchain and excluded
    by -MM's design). None when the scan fails (entry stays uncached)."""
    cmd: list[str] = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a == "-o":
            skip = True
            continue
        if a == "-c":
            continue
        cmd.append(a)
    cmd += ["-MM", "-MG"]
    try:
        proc = subprocess.run(cmd, cwd=directory, capture_output=True,
                              text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    text = proc.stdout.replace("\\\n", " ")
    _, _, rhs = text.partition(":")
    out = []
    for tok in rhs.split():
        p = tok if os.path.isabs(tok) else os.path.join(directory, tok)
        out.append(os.path.normpath(p))
    return out


def _fn_to_dict(fn: FnModel) -> dict:
    d = {"key": fn.key, "pretty": fn.pretty, "file": fn.file,
         "line": fn.line, "noexcept": fn.noexcept,
         "truncated": fn.truncated}
    for attr in EVENT_ATTRS:
        d[attr] = [dataclasses.asdict(ev) for ev in getattr(fn, attr)]
    return d


def _fn_from_dict(d: dict) -> FnModel:
    fn = FnModel(key=d["key"], pretty=d["pretty"], file=d["file"],
                 line=d["line"], noexcept=d["noexcept"],
                 truncated=d.get("truncated", False))
    for attr in EVENT_ATTRS:
        cls = EVENT_TYPES[attr]
        evs = []
        for ev in d.get(attr, []):
            # JSON round-trips tuples as lists; restore tuple fields.
            kw = {k: tuple(tuple(x) if isinstance(x, list) else x
                           for x in v) if isinstance(v, list) else v
                  for k, v in ev.items()}
            evs.append(cls(**kw))
        setattr(fn, attr, evs)
    return fn


def lookup(cache_dir: str, cache_key: str) -> list[FnModel] | None:
    path = Path(cache_dir) / f"{cache_key}.json"
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    for dep, sha in data.get("deps", []):
        if _file_sha(dep) != sha:
            return None
    return [_fn_from_dict(d) for d in data.get("fns", [])]


def store(cache_dir: str, cache_key: str, deps: list[str],
          fns: list[FnModel]) -> None:
    shas = []
    for dep in deps:
        sha = _file_sha(dep)
        if sha is None:
            return                       # closure unreadable: don't cache
        shas.append((dep, sha))
    payload = {"deps": shas, "fns": [_fn_to_dict(fn) for fn in fns]}
    d = Path(cache_dir)
    try:
        d.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(d), suffix=".tmp")
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f)
        os.replace(tmp, d / f"{cache_key}.json")
    except OSError:
        pass                             # cache is best-effort
