"""CLI driver: compile TUs to ASTs, lower, run checks, report.

    python3 tools/gstore_lint --compdb build/compile_commands.json
    python3 tools/gstore_lint --files tests/lint/gl1_flagged.cpp --gl4-all

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import functools
import multiprocessing
import os
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from gstore_lint import checks, compdb, dumpcache, gccdump, gccfront, \
    gimplepatch, model  # noqa: E402
from gstore_lint.model import FnModel, Program  # noqa: E402
from gstore_lint.waivers import Waivers  # noqa: E402

CHECK_IDS = ["GL1", "GL2", "GL3", "GL4", "GL5", "GL6", "GL7", "R1", "R4"]


def _file_index(root: Path) -> dict[str, list[str]]:
    """basename -> absolute path(s) for in-tree sources. GCC raw dumps
    print srcp as a bare basename, so findings must be re-anchored."""
    index: dict[str, list[str]] = {}
    dirs = [root / d for d in
            ("src", "tests", "fuzz", "tools", "bench", "examples")]
    exts = {".h", ".hpp", ".cpp", ".cc"}
    files = [p for p in root.glob("*") if p.suffix in exts]
    for d in dirs:
        if d.is_dir():
            files.extend(p for p in d.rglob("*") if p.suffix in exts)
    for p in files:
        index.setdefault(p.name, []).append(str(p))
    return index


def _normalize(fn: FnModel, directory: str, tu_file: str,
               index: dict[str, list[str]]) -> FnModel:
    """Rewrites event file paths to absolute. GCC srcp is basename-only,
    so resolution goes: the TU's own file if the basename matches, else a
    unique in-tree basename match, else the compile-directory join.
    '<unknown>' (anchorless sections) resolves to the TU's own file."""
    cache: dict[str, str] = {}

    def ab(f: str) -> str:
        if f in cache:
            return cache[f]
        if f == "<unknown>":
            out = tu_file
        elif os.path.isabs(f) or f.startswith("<"):
            out = f
        elif os.path.basename(tu_file) == os.path.basename(f):
            out = tu_file
        else:
            hits = index.get(os.path.basename(f), [])
            if len(hits) == 1:
                out = hits[0]
            else:
                out = os.path.normpath(os.path.join(directory, f))
        cache[f] = out
        return out

    fn.file = ab(fn.file)
    for attr in model.EVENT_ATTRS:
        setattr(fn, attr,
                [replace(ev, file=ab(ev.file)) for ev in getattr(fn, attr)])
    return fn


def _lower_tu_gcc(entry: compdb.Entry,
                  index: dict[str, list[str]],
                  cache_dir: str | None = None) -> tuple[str, list[FnModel],
                                                         str]:
    ck = None
    if cache_dir:
        ck = dumpcache.key(entry.args, entry.directory)
        hit = dumpcache.lookup(cache_dir, ck)
        if hit is not None:
            return (entry.file, hit, "")
    try:
        text, gimple_text = gccdump.run_dump(entry.args, entry.directory)
    except gccdump.DumpError as e:
        return (entry.file, [], str(e))
    fns = []
    for section in gccdump.parse_dump(text):
        fn = gccfront.lower_section(section)
        if fn is None:
            continue
        fns.append(_normalize(fn, entry.directory, entry.file, index))
    # Patch truncated bodies (try_catch_expr dumper gap) from the GIMPLE
    # dump of the same compile. Matching is by qualified name; an
    # overload set sharing one name is skipped rather than guessed at.
    truncated = [fn for fn in fns if fn.truncated]
    if truncated:
        bodies = gimplepatch.parse(gimple_text)
        for fn in truncated:
            qual, _, fprint = fn.key.partition("(")
            cand = bodies.get(qual, [])
            if len(cand) > 1:
                # Overload set: narrow by parameter count (the GENERIC
                # fingerprint includes `this`, and so does GIMPLE).
                want = gimplepatch.arity(fprint.rstrip(")"))
                cand = [c for c in cand if c[0] == want]
            if len(cand) != 1:
                continue
            patch = gimplepatch.recover(fn, cand[0][2], entry.file,
                                        cand[0][1])
            fns.append(_normalize(patch, entry.directory, entry.file,
                                  index))
    if ck is not None:
        deps = dumpcache.dep_files(entry.args, entry.directory)
        if deps is not None:
            dumpcache.store(cache_dir, ck, deps, fns)
    return (entry.file, fns, "")


def _resolve_gimple_calls(program: Program) -> None:
    """GIMPLE-recovered calls carry only a bare callee name (scope
    'gimple'). Resolve each against the merged program: a unique project
    function with that name becomes a real call-graph edge; otherwise the
    name keeps enough scope for the leaf-blocking/allocation tables."""
    by_name: dict[str, list[str]] = {}
    for fn in program.fns.values():
        # Project functions only: the program also carries std:: templates
        # instantiated with project types, and resolving a bare 'reserve'
        # to std::vector::reserve would eat the allocation-table match.
        if "gstore" in fn.key:
            by_name.setdefault(fn.name, []).append(fn.key)
    for fn in program.fns.values():
        out = []
        for call in fn.calls:
            if call.scope != "gimple":
                out.append(call)
                continue
            keys = by_name.get(call.callee_name, [])
            if len(keys) == 1:
                call = replace(call, callee=keys[0], scope="project")
            elif call.callee_name.startswith("__builtin_"):
                call = replace(call,
                               callee_name=call.callee_name[len(
                                   "__builtin_"):],
                               scope="global")
            elif not keys:
                # Not a project symbol anywhere: std/global method or
                # libc call — the name-table checks may consume it.
                call = replace(call, scope="std")
            else:
                call = replace(call, scope="unknown")
            out.append(call)
        fn.calls = out
        # Recovered taint events carry the same bare names inside their
        # atoms ('r:gimple:<name>') and flow destinations
        # ('a:gimple:<name>:<N>'); resolve the unique ones so the GL6
        # fixpoint can cross the patched functions. Ambiguous or unknown
        # names stay as-is, which taint.py treats as untainted (a miss,
        # never a false positive).
        def fix_atom(a: str) -> str:
            if a.startswith("r:gimple:"):
                keys = by_name.get(a[len("r:gimple:"):], [])
                if len(keys) == 1:
                    return f"r:{keys[0]}"
            return a

        taints = []
        for ev in fn.taints:
            dst = ev.dst
            if dst.startswith("a:gimple:"):
                head, _, pos = dst.rpartition(":")
                keys = by_name.get(head[len("a:gimple:"):], [])
                if len(keys) == 1:
                    dst = f"a:{keys[0]}:{pos}"
            atoms = tuple(fix_atom(a) for a in ev.atoms)
            if dst != ev.dst or atoms != ev.atoms:
                ev = replace(ev, dst=dst, atoms=atoms)
            taints.append(ev)
        fn.taints = taints


def _pick_frontend(requested: str, index: dict[str, list[str]],
                   cache_dir: str | None = None):
    if requested in ("clang", "auto"):
        try:
            from gstore_lint import clangfront
            if clangfront.available():
                return "clang", clangfront.lower_tu
        except Exception:
            pass
        if requested == "clang":
            return None, None
    return "gcc", functools.partial(_lower_tu_gcc, index=index,
                                    cache_dir=cache_dir)


def _annotated_members(root: Path) -> dict[str, str]:
    """cross-thread-annotated member name -> declaring file stem, reusing
    the textual finder from check_concurrency.py (comments do not exist in
    the AST, so this part is necessarily textual)."""
    sys.path.insert(0, str(root / "tools"))
    try:
        import check_concurrency as cc
    except ImportError:
        return {}
    out: dict[str, str] = {}
    src = root / "src"
    if not src.is_dir():
        return {}
    for path in list(src.rglob("*.h")) + list(src.rglob("*.cpp")):
        lines = path.read_text(errors="replace").splitlines()
        for _ln, name, _type, _via in cc.find_cross_thread_members(
                path, lines):
            out[name] = path.stem
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="gstore_lint",
        description="AST-grade domain-invariant lint for G-Store")
    ap.add_argument("--compdb", help="compile_commands.json path")
    ap.add_argument("--require-compdb", action="store_true",
                    help="fail (exit 2) instead of searching when --compdb "
                         "is missing or unreadable")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--checks", default=",".join(CHECK_IDS),
                    help="comma-separated subset of: %s" %
                         ",".join(CHECK_IDS))
    ap.add_argument("--files", nargs="*", default=None,
                    help="substring filters selecting TUs (default: src/)")
    ap.add_argument("--gl4-all", action="store_true",
                    help="treat every TU as a parser TU for GL4 (fixtures)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="parallel TU compiles (default: cpu count)")
    ap.add_argument("--frontend", choices=["auto", "gcc", "clang"],
                    default="auto")
    ap.add_argument("--format", choices=["text", "json"], default="text",
                    help="findings output: human text (default) or a JSON "
                         "array with stable IDs and traces")
    ap.add_argument("--cache-dir", default=None,
                    help="cache per-TU lowering results here, keyed by "
                         "command + include-closure content hash (GCC "
                         "frontend only; the whole-program checks still "
                         "run every time)")
    ap.add_argument("--list-waivers", action="store_true",
                    help="print every GL-SAFE waiver in analyzed files")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    root = Path(args.root).resolve()
    enabled = {c.strip().upper() for c in args.checks.split(",") if c.strip()}
    bad = enabled - set(CHECK_IDS)
    if bad:
        print(f"gstore_lint: unknown checks: {', '.join(sorted(bad))}",
              file=sys.stderr)
        return 2

    compdb_path = args.compdb
    if compdb_path is None:
        found = compdb.default_compdb(root)
        if found is None:
            print("gstore_lint: no compile_commands.json found (configure "
                  "with CMAKE_EXPORT_COMPILE_COMMANDS=ON or pass --compdb)",
                  file=sys.stderr)
            return 2
        compdb_path = str(found)
    try:
        entries = compdb.load(compdb_path)
    except (OSError, ValueError) as e:
        print(f"gstore_lint: cannot read {compdb_path}: {e}",
              file=sys.stderr)
        return 2
    entries = compdb.select(entries, root, only=args.files)
    if not entries:
        print("gstore_lint: no translation units selected", file=sys.stderr)
        return 2

    index = _file_index(root)
    frontend, lower_tu = _pick_frontend(args.frontend, index,
                                        cache_dir=args.cache_dir)
    if frontend is None:
        print("gstore_lint: --frontend clang requested but clang.cindex "
              "is unavailable", file=sys.stderr)
        return 2
    if args.verbose:
        print(f"gstore_lint: frontend={frontend}, {len(entries)} TU(s)",
              file=sys.stderr)

    jobs = args.jobs or min(len(entries), os.cpu_count() or 1)
    program = Program()
    errors: list[str] = []
    if jobs > 1 and len(entries) > 1:
        with multiprocessing.Pool(jobs) as pool:
            results = pool.map(lower_tu, entries)
    else:
        results = [lower_tu(e) for e in entries]
    for file, fns, err in results:
        if err:
            errors.append(f"{file}: {err}")
        for fn in fns:
            program.add(fn)
    if errors:
        for e in errors:
            print(f"gstore_lint: {e}", file=sys.stderr)
        return 2
    _resolve_gimple_calls(program)

    annotated = _annotated_members(root) if "R1" in enabled else None
    findings = checks.run_all(program, str(root), enabled,
                              gl4_all=args.gl4_all, annotated=annotated)

    waivers = Waivers()
    files_seen = {fn.file for fn in program.fns.values()}
    files_seen |= {f.file for f in findings}
    for f in findings:
        files_seen |= {af for af, _ in f.alt}
    for f in sorted(files_seen):
        if not f.startswith("<") and _under(f, root):
            waivers.load_file(f)

    if args.list_waivers:
        for f, ln, tags in waivers.all_waivers():
            print(f"{_rel(f, root)}:{ln}: GL-SAFE({tags})")
        return 0

    # A finding may be waivable at secondary sites too (GL6: anywhere on
    # the taint chain; GL7: any acquisition edge of the cycle).
    kept = [f for f in findings
            if not waivers.waived(f.check, f.file, f.line)
            and not any(waivers.waived(f.check, af, al)
                        for af, al in f.alt)]
    kept.extend(waivers.errors())
    kept = sorted(set(kept), key=lambda f: (f.file, f.line, f.check))

    if args.format == "json":
        import json
        payload = [{"id": f.stable_id(), "check": f.check,
                    "file": _rel(f.file, root), "line": f.line,
                    "function": f.fn.split("(", 1)[0] if f.fn else "",
                    "message": f.message,
                    "trace": list(f.trace)} for f in kept]
        print(json.dumps(payload, indent=2))
        if kept:
            print(f"gstore_lint: {len(kept)} finding(s)", file=sys.stderr)
            return 1
        if args.verbose:
            print(f"gstore_lint: clean ({len(program.fns)} functions, "
                  f"{len(entries)} TUs)", file=sys.stderr)
        return 0

    for f in kept:
        print(f"{_rel(f.file, root)}:{f.line}: [{f.check}] {f.message}")
    if kept:
        print(f"gstore_lint: {len(kept)} finding(s)", file=sys.stderr)
        return 1
    if args.verbose:
        print(f"gstore_lint: clean ({len(program.fns)} functions, "
              f"{len(entries)} TUs)", file=sys.stderr)
    else:
        print("gstore_lint: clean")
    return 0


def _under(f: str, root: Path) -> bool:
    try:
        Path(f).relative_to(root)
        return True
    except ValueError:
        return False


def _rel(f: str, root: Path | str) -> str:
    try:
        return os.path.relpath(f, str(root))
    except ValueError:
        return f


if __name__ == "__main__":
    sys.exit(main())
