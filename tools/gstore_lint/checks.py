"""The GL1..GL7 checks plus AST-grade R1/R4, over the event IR.

All checks are pure functions of (Program, configuration); waiver
filtering happens in the driver so `--list-waivers` and waiver auditing
see the unfiltered stream.
"""

from __future__ import annotations

import os
from pathlib import Path

from . import lockgraph, taint
from .model import Finding, Program

# -- GL1: blocking-under-lock ------------------------------------------------

# Entry points that block by contract: syscalls, stdio, sleeps. Matched by
# bare name when the callee resolves into std:: / global scope. Formatting
# (snprintf, to_chars) and clock reads (VDSO) are deliberately absent.
SYSCALL_NAMES = {
    "open", "openat", "creat", "close", "read", "write", "pread", "pwrite",
    "pread64", "pwrite64", "preadv", "pwritev", "readv", "writev",
    "fsync", "fdatasync", "sync", "syncfs", "sync_file_range",
    "ftruncate", "truncate", "fallocate", "posix_fallocate",
    "stat", "fstat", "lstat", "stat64", "fstat64", "statx",
    "lseek", "lseek64", "unlink", "unlinkat", "rename", "renameat",
    "mkdir", "rmdir", "opendir", "readdir", "closedir",
    "mmap", "mmap64", "munmap", "msync", "mprotect",
    "ioctl", "fcntl", "flock", "poll", "ppoll", "select", "epoll_wait",
    "nanosleep", "usleep", "sleep", "clock_nanosleep",
    "fopen", "fclose", "fread", "fwrite", "fflush", "fprintf", "vfprintf",
    "printf", "vprintf", "fputs", "fputc", "fgets", "puts", "putc",
    "getline", "getchar", "fgetc", "perror",
    "system", "popen", "pclose", "fork", "execve", "syscall",
    "send", "recv", "sendto", "recvfrom", "connect", "accept",
}
SLEEP_QUALS = {
    "std::this_thread::sleep_for", "std::this_thread::sleep_until",
}
# Allocation entry points flagged when they appear *lexically* inside a
# guarded region (no propagation: guarded containers growing under their
# own lock elsewhere is their callers' audited business).
ALLOC_NAMES = {
    "operator new", "operator new []", "malloc", "calloc", "realloc",
    "strdup", "aligned_alloc", "posix_memalign",
}
ALLOC_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "insert", "resize", "reserve", "assign", "append", "make_shared",
    "make_unique", "allocate", "allocate_shared", "to_string",
}
# Cold abort/assert paths: reaching one means the process is going down;
# holding a lock across it is not the fleet-stall GL1 hunts.
COLD_NAMES = {
    "check_failed", "dcheck_failed", "abort", "terminate", "__assert_fail",
    "exit", "_exit", "quick_exit",
}
# The synchronization component itself (lock/unlock/wait plumbing and
# lockdep bookkeeping) is the mechanism, not a subject.
SYNC_PREFIXES = (
    "gstore::Mutex::", "gstore::SharedMutex::", "gstore::CondVar::",
    "gstore::MutexLock", "gstore::WriterMutexLock",
    "gstore::ReaderMutexLock", "gstore::sync_detail::",
)
SYNC_COMPONENT = ("src/util/sync.h", "src/util/sync.cpp")

GL4_DEFAULT_FILES = {"tile_file.cpp", "wal.cpp", "fault.cpp", "compress.cpp"}
GL4_EXEMPT_FILES = {"checked.h"}
GL5_ROOT_NAMES = {"quiesce", "quiesce_all"}


def _qual(callee_key: str | None) -> str:
    return callee_key.split("(", 1)[0] if callee_key else ""


def _skip_gl1(call) -> bool:
    q = _qual(call.callee)
    if q.startswith(SYNC_PREFIXES):
        return True
    if call.callee_name in COLD_NAMES:
        return True
    return False


def _blocking_leaf(call) -> str | None:
    """Why this call blocks by itself, or None."""
    q = _qual(call.callee)
    if q in SLEEP_QUALS:
        return call.callee_name
    if call.scope in ("std", "global") and \
            call.callee_name in SYSCALL_NAMES:
        return call.callee_name
    return None


def _propagate_blocking(program: Program) -> dict[str, tuple[str, str]]:
    """key -> (leaf name, via key or '') for project functions that can
    reach a blocking entry point."""
    blocking: dict[str, tuple[str, str]] = {}
    changed = True
    while changed:
        changed = False
        for fn in program.fns.values():
            if fn.key in blocking:
                continue
            if fn.key.split("(", 1)[0].startswith(SYNC_PREFIXES):
                continue
            for call in fn.calls:
                if _skip_gl1(call):
                    continue
                leaf = _blocking_leaf(call)
                if leaf is not None:
                    blocking[fn.key] = (leaf, "")
                    changed = True
                    break
                if call.callee in blocking and call.callee != fn.key:
                    blocking[fn.key] = (blocking[call.callee][0],
                                        call.callee)
                    changed = True
                    break
    return blocking


def _chain(program: Program, blocking, start_key: str) -> str:
    names = []
    key = start_key
    for _ in range(6):
        names.append(_qual(key).rsplit("::", 1)[-1] or key)
        nxt = blocking.get(key, ("", ""))[1]
        if not nxt:
            break
        key = nxt
    leaf = blocking.get(start_key, ("?", ""))[0]
    if not names or names[-1] != leaf:
        names.append(leaf)
    return " -> ".join(names)


def check_gl1(program: Program, root: str) -> list[Finding]:
    findings: list[Finding] = []
    blocking = _propagate_blocking(program)
    for fn in program.fns.values():
        if _rel(fn.file, root) in SYNC_COMPONENT:
            continue
        for call in fn.calls:
            if not call.locks or _skip_gl1(call):
                continue
            held = call.locks[-1]
            leaf = _blocking_leaf(call)
            if leaf is not None:
                findings.append(Finding(
                    "GL1", call.file, call.line,
                    f"'{call.callee_name}' may block while '{held}' is "
                    f"held"))
                continue
            if call.callee in blocking:
                findings.append(Finding(
                    "GL1", call.file, call.line,
                    f"call to '{_qual(call.callee)}' may block while "
                    f"'{held}' is held "
                    f"(path: {_chain(program, blocking, call.callee)})"))
                continue
            if call.scope in ("std", "global") and \
                    call.callee_name in (ALLOC_NAMES | ALLOC_METHODS):
                findings.append(Finding(
                    "GL1", call.file, call.line,
                    f"'{call.callee_name}' allocates while '{held}' is "
                    f"held — move the allocation outside the guarded "
                    f"region or waive with the guarded-resource rationale"))
    return findings


# -- GL2: pin escape ---------------------------------------------------------

def check_gl2(program: Program, root: str) -> list[Finding]:
    findings = []
    for fn in program.fns.values():
        for ev in fn.pin_stores:
            findings.append(Finding(
                "GL2", ev.file, ev.line,
                f"{ev.detail} — a pinned slice must not outlive its "
                f"Segment fill scope (audited owners waive with "
                f"GL-SAFE(GL2))"))
    return findings


# -- GL3: unchecked completion ----------------------------------------------

def check_gl3(program: Program, root: str) -> list[Finding]:
    findings = []
    for fn in program.fns.values():
        # Completion's own members (including the compiler-generated
        # copy/move operations) legitimately touch .bytes memberwise.
        if "Completion::" in fn.key:
            continue
        state: dict[str, bool] = {}
        # Initializer-hoisted events are emitted out of order; source line
        # order restores the evaluation sequence (single-pass functions).
        for ev in sorted(fn.completions, key=lambda e: e.line):
            if ev.kind == "check":
                state[ev.var] = True
            elif ev.kind == "reset":
                state[ev.var] = False
            elif ev.kind == "use" and not state.get(ev.var, False):
                name = ev.var.split("@", 1)[0]
                findings.append(Finding(
                    "GL3", ev.file, ev.line,
                    f"Completion '{name}': '{ev.detail}' consumed before "
                    f"ok/error was inspected (short-read/failure results "
                    f"carry partial byte counts)"))
                state[ev.var] = True  # one report per unchecked window
    return findings


# -- GL4: untrusted arithmetic ----------------------------------------------

_GL4_HELPERS = {"*": "checked_mul", "+": "checked_add", "<<": "checked_shl"}


def check_gl4(program: Program, root: str, parser_files=None,
              gl4_all: bool = False) -> list[Finding]:
    files = parser_files or GL4_DEFAULT_FILES
    findings = []
    for fn in program.fns.values():
        base = Path(fn.file).name
        if base in GL4_EXEMPT_FILES:
            continue
        if not gl4_all and base not in files:
            continue
        for ev in fn.ariths:
            helper = _GL4_HELPERS[ev.op]
            findings.append(Finding(
                "GL4", ev.file, ev.line,
                f"'{ev.op}' on untrusted value ({ev.detail}) — route "
                f"through gstore::{helper} (util/checked.h)"))
    return findings


# -- GL5: unwind noexcept ----------------------------------------------------

def check_gl5(program: Program, root: str) -> list[Finding]:
    findings = []
    roots = [fn for fn in program.fns.values()
             if fn.name in GL5_ROOT_NAMES and "gstore" in fn.key]
    for fn in roots:
        if not fn.noexcept:
            findings.append(Finding(
                "GL5", fn.file, fn.line,
                f"unwind-path root '{_qual(fn.key)}' is not noexcept"))
    visited: set[str] = set()
    stack = [fn.key for fn in roots]
    while stack:
        key = stack.pop()
        if key in visited:
            continue
        visited.add(key)
        fn = program.fns.get(key)
        if fn is None:
            continue
        for call in fn.calls:
            if call.shielded or call.scope != "project":
                continue
            q = _qual(call.callee)
            if q.startswith(SYNC_PREFIXES) or \
                    call.callee_name in COLD_NAMES:
                continue
            target = program.fns.get(call.callee)
            if target is None:
                continue  # no body seen; cross-check is per-TU best effort
            if not target.noexcept:
                findings.append(Finding(
                    "GL5", call.file, call.line,
                    f"call to non-noexcept '{q}' on the quiesce/drain "
                    f"unwind path — mark it noexcept or shield with "
                    f"catch(...)"))
                continue
            stack.append(call.callee)
    return findings


# -- R1/R4 (AST versions of check_concurrency rules) -------------------------

def check_r4(program: Program, root: str) -> list[Finding]:
    findings = []
    seen = set()
    for fn in program.fns.values():
        for ev in fn.raw_syncs:
            rel = _rel(ev.file, root)
            # In-tree files only (fixtures included); the sync component
            # itself wraps the primitives and is exempt.
            if rel.startswith("..") or os.path.isabs(rel) or \
                    rel in SYNC_COMPONENT:
                continue
            k = (rel, ev.line, ev.what)
            if k in seen:
                continue
            seen.add(k)
            findings.append(Finding(
                "R4", ev.file, ev.line,
                f"raw '{ev.what}' outside util/sync.h (AST: survives "
                f"typedefs and macros) — use the annotated wrappers "
                f"from util/sync.h"))
    return findings


def check_r1(program: Program, root: str, annotated=None) -> list[Finding]:
    """Plain operator writes to cross-thread members, seen through the
    atomic<T> operator overloads the textual rule can miss."""
    if not annotated:
        return []
    findings = []
    seen = set()
    for fn in program.fns.values():
        for ev in fn.atomic_ops:
            decl_stem = annotated.get(ev.member)
            if decl_stem is None:
                continue
            if Path(ev.file).stem != decl_stem:
                continue
            k = (ev.file, ev.line, ev.member, ev.op)
            if k in seen:
                continue
            seen.add(k)
            findings.append(Finding(
                "R1", ev.file, ev.line,
                f"plain '{ev.op}' on cross-thread member '{ev.member}' "
                f"(atomic overload hides the memory order) — use "
                f".store()/.fetch_*() explicitly"))
    return findings


def _rel(file: str, root: str) -> str:
    try:
        return os.path.relpath(file, root)
    except ValueError:
        return file


# -- GL6/GL7: whole-program taint and lock order ------------------------------
# The heavy lifting lives in taint.py / lockgraph.py; these wrappers keep
# the uniform (Program, root) check signature.

def check_gl6(program: Program, root: str) -> list[Finding]:
    return taint.analyze(program, root)


def check_gl7(program: Program, root: str) -> list[Finding]:
    return lockgraph.analyze(program, root)


ALL_CHECKS = {
    "GL1": check_gl1,
    "GL2": check_gl2,
    "GL3": check_gl3,
    "GL5": check_gl5,
    "GL6": check_gl6,
    "GL7": check_gl7,
    "R4": check_r4,
}


def run_all(program: Program, root: str, enabled: set[str],
            gl4_all: bool = False, annotated=None) -> list[Finding]:
    findings: list[Finding] = []
    for name, fn in ALL_CHECKS.items():
        if name in enabled:
            findings.extend(fn(program, root))
    if "GL4" in enabled:
        findings.extend(check_gl4(program, root, gl4_all=gl4_all))
    if "R1" in enabled:
        findings.extend(check_r1(program, root, annotated=annotated))
    return findings
