"""Recovers function bodies the GENERIC raw dumper drops.

GCC's raw tree dumper prints `try_catch_expr` nodes without operands, so
any function whose body genericizes under an EH-only cleanup — typically
one returning a non-trivial value, where the NRVO'd return object must be
destroyed if an exception escapes — dumps as an empty shell. ~6% of
project sections lose some or all of their body this way, including
exactly the value-returning collectors (reap_all, entries) GL1 exists to
police.

The GIMPLE dump of the same compile (`-fdump-tree-gimple-raw-lineno`)
has no such gap: it is printed by the gimple pretty-printer, which
handles every statement kind. It costs different information — callees
appear as unqualified names, and declared types lose template arguments —
so it is used only to *patch* functions the GENERIC dump truncated,
with name-based callee resolution done later against the full program
(see __main__._resolve_gimple_calls). Identity (key, noexcept) still
comes from the GENERIC section; only events are recovered here.

Format sketch (indentation-nested, one statement per line):

    struct vector gstore::io::AsyncEngine::Impl::reap_all (struct Impl * const this)
    gimple_bind <
      struct vector D.1234;
      struct MutexLock lock;

      [/abs/path.cpp:171:13] gimple_call <__ct_comp , NULL, &lock, &this->mutex>
      [/abs/path.cpp:171:13] gimple_try <GIMPLE_TRY_FINALLY,
        EVAL <
          [/abs/path.cpp:176:17] gimple_call <reserve, NULL, &done, _3>
        >
        CLEANUP <
          [/abs/path.cpp:171:13] gimple_call <__dt_comp , NULL, &lock>
        >
      >
    >
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .gccfront import COLD_VALIDATORS, DERIVED_RECORDS, INDEX_RECORDS, \
    JSON_SOURCE_METHODS, SANITIZER_NAMES, SINK_CALLS
from .model import AcquireEvent, ArithEvent, CallEvent, CompletionEvent, \
    FnModel, PinStoreEvent, TaintEvent

GUARD_CLASSES = {"MutexLock", "WriterMutexLock", "ReaderMutexLock"}
WIRE_RECORDS = {
    "TilesFileHeader", "WalFileHeader", "WalFrameHeader", "FaultSpec",
    "TileStoreMeta", "TilePayloadHeader",
}
# Member names whose declared type is a wire record: GIMPLE text types
# only block-local decls, so `store.meta_.tile_count` is recognized by the
# member name rather than by the (invisible) type of `meta_`.
WIRE_MEMBERS = {"meta_": "TileStoreMeta"}
CONTAINER_STORE_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "assign", "insert_or_assign", "try_emplace",
}
COMPLETION_CHECK_FIELDS = {"ok", "error"}
COMPLETION_USE_FIELDS = {"bytes"}
# Structural plumbing that is not a call in the source program.
_PLUMBING = {
    "__ct_comp", "__ct_base", "__dt_comp", "__dt_base",
    "__cxa_begin_catch", "__cxa_end_catch", "__cxa_rethrow",
    "__builtin_eh_pointer", "__cxa_throw", "__cxa_allocate_exception",
}

_LOC = re.compile(r"^\[([^:\]]+):(\d+):\d+\]\s*")
_CALL = re.compile(r"gimple_call <([^,>]+)(.*)")
_ASSIGN = re.compile(r"gimple_assign <(\w+), (.*)")
_FIELD = re.compile(r"(\w+)(?:->|\.)(\w+)")
_CHAIN = re.compile(r"\w+(?:(?:->|\.)\w+)+")
_ADDR_ARG = re.compile(r"&(\w+)\b")
_WORD = re.compile(r"\b([A-Za-z_]\w*(?:\.\d+)?|_\d+|D\.\d+)\b")
_DECL = re.compile(r"(?:struct|class|union|enum)?\s*"
                   r"(?P<type>[\w:]+)[\s*&]+(?P<name>\w+)(?:\[\d*\])?;$")
_ARITH = {"mult_expr": "*", "plus_expr": "+", "lshift_expr": "<<"}
_COND = re.compile(r"gimple_cond <(\w+), ([^,]+), ([^,]+),"
                   r"(?: <([^>]+)>, <([^>]+)>>)?")
_COLD_CALLS = COLD_VALIDATORS
# Tracked records for GL6 field atoms (wire + derived, per gccfront).
_TRACKED = WIRE_RECORDS | DERIVED_RECORDS
# Type/qualifier words that never name a record in a parameter decl.
_PARAM_SKIP = {"const", "struct", "class", "union", "enum", "volatile",
               "unsigned", "signed", "long", "short", "int", "char",
               "bool", "float", "double", "void", "__restrict__"}


def _parse_params(params: str) -> list[tuple[str, str]]:
    """[(name, short record type or '')] in positional order, from the
    textual parameter list of a GIMPLE function header. `this` is the
    first entry for methods, matching gccfront's p0-is-this numbering."""
    out: list[tuple[str, str]] = []
    params = params.strip()
    if params in ("", "void"):
        return out
    depth = 0
    cur = ""
    parts: list[str] = []
    for ch in params:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    parts.append(cur)
    for p in parts:
        toks = re.findall(r"[\w:.]+", p)
        if not toks:
            continue
        name = toks[-1]
        ty = ""
        for t in reversed(toks[:-1]):
            base = t.split("::")[-1]
            if base in _PARAM_SKIP:
                continue
            ty = base.split("<")[0]
            break
        out.append((name, ty))
    return out


@dataclass
class Block:
    kind: str                       # bind | try_finally | try_catch |
    header: str                     # eval | cleanup | other
    children: list = field(default_factory=list)   # str stmts and Blocks

    def text(self) -> str:
        out = [self.header]
        for c in self.children:
            out.append(c.text() if isinstance(c, Block) else c)
        return "\n".join(out)


def _block_kind(stripped: str) -> str:
    if "gimple_bind <" in stripped:
        return "bind"
    if "gimple_try <GIMPLE_TRY_FINALLY" in stripped:
        return "try_finally"
    if "gimple_try <GIMPLE_TRY_CATCH" in stripped:
        return "try_catch"
    if stripped == "EVAL <":
        return "eval"
    if stripped == "CLEANUP <":
        return "cleanup"
    return "other"


def _is_header(line: str) -> bool:
    return (bool(line) and not line[0].isspace()
            and " (" in line
            and not line.startswith((">", "gimple_", "__attribute__", ";;")))


def arity(params: str) -> int:
    """Top-level parameter count of a textual parameter list. Tracks <>
    depth so template-argument commas (GENERIC pretty params) don't split."""
    params = params.strip()
    if params in ("", "void"):
        return 0
    depth = 0
    n = 1
    for ch in params:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        elif ch == "," and depth == 0:
            n += 1
    return n


def parse(text: str) -> dict[str, list[tuple[int, str, Block]]]:
    """qualified function name -> [(arity, params-text, body)] (overloads
    share a name; the caller disambiguates by parameter count)."""
    out: dict[str, list[tuple[int, str, Block]]] = {}
    qual: str | None = None
    nargs = 0
    params_text = ""
    root: Block | None = None
    stack: list[Block] = []
    for line in text.splitlines():
        stripped = line.strip()
        if _is_header(line):
            if qual and root is not None:
                out.setdefault(qual, []).append((nargs, params_text, root))
            head, _, params = line.rsplit(" (", 1)[0], None, \
                line.rsplit(" (", 1)[-1]
            params = params.rsplit(")", 1)[0]
            name = head.split()[-1] if head.split() else ""
            qual = name if re.fullmatch(r"[\w:~]+", name) else None
            nargs = arity(params)
            params_text = params
            root = None
            stack = []
            continue
        if qual is None or not stripped:
            # Blank lines still delimit bind decl lists; keep them.
            if stack and not stripped:
                stack[-1].children.append("")
            continue
        # Closers: a line of only '>' tokens pops one level per token.
        if re.fullmatch(r"[>\s,]+", stripped):
            for _ in range(stripped.count(">")):
                if stack:
                    stack.pop()
            continue
        # `gimple_catch <NULL, ` opens a multi-line construct without a
        # trailing '<'; missing it makes the closer over-pop and every
        # later CLEANUP attach one level too shallow (losing guard
        # regions that contain a catch clause).
        opens = (stripped.endswith("<")
                 or "gimple_try <GIMPLE" in stripped
                 or ("gimple_catch <" in stripped
                     and not stripped.endswith(">")))
        if opens:
            blk = Block(_block_kind(stripped), stripped)
            if stack:
                stack[-1].children.append(blk)
            elif root is None:
                root = blk
            else:  # stray second top-level block: nest under root
                root.children.append(blk)
            stack.append(blk)
        elif stack:
            stack[-1].children.append(stripped)
    if qual and root is not None:
        out.setdefault(qual, []).append((nargs, params_text, root))
    return out


class _Recover:
    def __init__(self, fn: FnModel, tu_file: str, params: str = ""):
        self.fn = fn
        self.tu = tu_file
        self.decls: dict[str, str] = {}      # var name -> class-ish name
        self.tainted: dict[str, str] = {}    # tainted name -> origin label
        self.file = tu_file
        self.line = fn.line
        # GL6/GL7 state: positional parameter map (this = slot 0 for
        # methods, as in gccfront), temp/local -> source atoms, and guard
        # variable -> lock identity.
        self.params: dict[str, int] = {}
        for i, (nm, ty) in enumerate(_parse_params(params)):
            self.params[nm] = i
            if ty:
                self.decls.setdefault(nm, ty)
        self.src_of: dict[str, tuple[str, ...]] = {}
        self.addr_of: dict[str, str] = {}    # temp -> '&this->mu_' text
        self.cond_taint: dict[str, tuple] = {}  # iftmp -> compared atoms
        self.guard_ids: dict[str, str] = {}
        self.fnqual = fn.key.split("(", 1)[0]
        self.owner = (self.fnqual.rsplit("::", 1)[0].rsplit("::", 1)[-1]
                      if "::" in self.fnqual else "")

    def _loc(self, stmt: str) -> str:
        m = _LOC.match(stmt)
        if m:
            self.file, self.line = m.group(1), int(m.group(2))
        return _LOC.sub("", stmt)

    def _bind_decls(self, blk: Block) -> None:
        for c in blk.children:
            if not isinstance(c, str):
                continue
            if c == "":
                break                        # decls end at the blank line
            m = _DECL.search(c)
            if m:
                self.decls[m.group("name")] = m.group("type").split("::")[-1]

    def _guard_in_cleanup(self, blk: Block) -> str | None:
        for sub in blk.children:
            if isinstance(sub, Block) and sub.kind == "cleanup":
                for m in re.finditer(
                        r"gimple_call <__dt_\w+ ?,[^>]*&(\w+)", sub.text()):
                    cls = self.decls.get(m.group(1))
                    if cls in GUARD_CLASSES:
                        return f"{cls} {m.group(1)}"
        return None

    def _has_catch(self, blk: Block) -> bool:
        for sub in blk.children:
            if isinstance(sub, Block) and sub.kind == "cleanup":
                if "gimple_catch" in sub.text():
                    return True
        return False

    def walk(self, blk: Block, locks: tuple, lids: tuple,
             shielded: bool) -> None:
        if blk.kind == "bind":
            self._bind_decls(blk)
        guard = None
        shield_eval = False
        if blk.kind == "try_finally":
            guard = self._guard_in_cleanup(blk)
        elif blk.kind == "try_catch":
            shield_eval = self._has_catch(blk)
        kids = blk.children
        for i, c in enumerate(kids):
            if isinstance(c, Block):
                inner_locks = locks
                inner_lids = lids
                inner_shield = shielded
                if c.kind == "eval":
                    if guard:
                        inner_locks = locks + (guard,)
                        gid = self.guard_ids.get(guard.split(" ", 1)[-1])
                        if gid:
                            inner_lids = lids + (gid,)
                    if shield_eval:
                        inner_shield = True
                self.walk(c, inner_locks, inner_lids, inner_shield)
            else:
                self._stmt(c, locks, lids, shielded, kids, i)

    def _stmt(self, stmt: str, locks: tuple, lids: tuple, shielded: bool,
              kids: list = (), at: int = 0) -> None:
        stmt = self._loc(stmt)
        m = _CALL.match(stmt)
        if m:
            self._call(m.group(1).strip(), m.group(2), locks, lids,
                       shielded)
            return
        m = _ASSIGN.match(stmt)
        if m:
            self._assign(m.group(1), m.group(2))
            return
        if stmt.startswith("gimple_cond"):
            self._cond(stmt, kids, at)
        elif stmt.startswith("gimple_return"):
            inner = stmt[len("gimple_return <"):].rstrip(">")
            inner = re.sub(r"\[[^\]]*\]", "", inner)
            if "retval" in inner:
                atoms = (self.src_of.get("*<retval>")
                         or self.src_of.get("<retval>") or ())
            else:
                atoms = self._atoms(inner)
            if atoms:
                self.fn.taints.append(TaintEvent(
                    kind="flow", dst="ret", atoms=atoms,
                    detail="returned value", file=self.file,
                    line=self.line))

    def _wire_source(self, text: str) -> str | None:
        """Untrusted-source label if `text` reads a wire-record field."""
        for m in _CHAIN.finditer(text):
            comps = re.split(r"->|\.", m.group(0))
            if self.decls.get(comps[0]) in WIRE_RECORDS:
                return f"{self.decls[comps[0]]}.{comps[-1]}"
            for i, c in enumerate(comps):
                if c in WIRE_MEMBERS:
                    rec = WIRE_MEMBERS[c]
                    return (f"{rec}.{comps[-1]}" if i < len(comps) - 1
                            else rec)
        return None

    def _completion_vars(self, argtext: str) -> list[str]:
        out = []
        for w in _WORD.findall(argtext):
            if self.decls.get(w) == "Completion":
                out.append(w)
        return out

    def _field_atom(self, chain: str) -> str | None:
        """`f:Rec.fld` if a member chain lands in a tracked record."""
        comps = re.split(r"->|\.", chain.strip().lstrip("&*"))
        rec = self.decls.get(comps[0])
        if rec in _TRACKED and len(comps) > 1:
            return f"f:{rec}.{comps[-1]}"
        if comps[0] == "this" and self.owner in _TRACKED and len(comps) > 1:
            return f"f:{self.owner}.{comps[-1]}"
        for i, c in enumerate(comps):
            if c in WIRE_MEMBERS and i < len(comps) - 1:
                return f"f:{WIRE_MEMBERS[c]}.{comps[-1]}"
        return None

    def _atoms(self, text: str) -> tuple[str, ...]:
        """Source atoms of a textual GIMPLE operand: tracked-record field
        chains, parameters, and temps/locals resolved through src_of."""
        out: dict[str, None] = {}
        spans: list[tuple[int, int]] = []
        for m in _CHAIN.finditer(text):
            a = self._field_atom(m.group(0))
            if a:
                out[a] = None
                spans.append(m.span())
            elif m.group(0) in self.src_of:
                for x in self.src_of[m.group(0)]:
                    out[x] = None
                spans.append(m.span())
        for m in _WORD.finditer(text):
            if any(s <= m.start() < e for s, e in spans):
                continue
            w = m.group(1)
            if w in self.params:
                out[f"p{self.params[w]}"] = None
            elif w in self.src_of:
                for x in self.src_of[w]:
                    out[x] = None
            if len(out) >= 8:
                break
        return tuple(out)

    def _lock_identity(self, text: str) -> str | None:
        """Class-level identity of a guard ctor's lock argument, matching
        gccfront: `&this->mu_` -> Owner::mu_, `&obj.mu_` -> Decl::mu_,
        `&mu` -> fnqual::mu. The address is often computed into an SSA
        temp first (`addr_expr, _1, &this->mu_`); addr_of resolves it."""
        t = re.sub(r"\[[^\]]*\]", "", text).strip()
        t = self.addr_of.get(t, t)
        t = t.lstrip("&").strip()
        comps = re.split(r"->|\.", t)
        if len(comps) >= 2:
            base, fld = comps[0], comps[-1]
            if base == "this":
                return f"{self.owner}::{fld}" if self.owner else None
            cls = self.decls.get(base)
            return f"{cls}::{fld}" if cls else None
        if re.fullmatch(r"\w+", t):
            return f"{self.fnqual}::{t}"
        return None

    def _call(self, name: str, argtext: str, locks: tuple, lids: tuple,
              shielded: bool) -> None:
        fn = self.fn
        argtext = re.sub(r"\[[^\]]*\]", "", argtext)   # strip per-arg locs
        if name not in _PLUMBING:
            fn.calls.append(CallEvent(
                callee=None, callee_name=name, scope="gimple",
                file=self.file, line=self.line, locks=locks,
                shielded=shielded, lock_ids=lids))
        # GL2: container-store of a BufferPin-typed local.
        if name in CONTAINER_STORE_METHODS:
            for v in _ADDR_ARG.findall(argtext):
                if self.decls.get(v) == "BufferPin":
                    fn.pin_stores.append(PinStoreEvent(
                        kind="container",
                        detail=f"{name}() argument carries a BufferPin",
                        file=self.file, line=self.line))
                    break
        # GL3: reassignment resets; any other call taking the lvalue
        # transfers the checking obligation.
        cvars = self._completion_vars(argtext)
        if cvars:
            kind = "reset" if name == "operator=" else "check"
            detail = "reassigned" if kind == "reset" else "passed-to-callee"
            for v in cvars:
                fn.completions.append(CompletionEvent(
                    kind=kind, var=v, detail=detail,
                    file=self.file, line=self.line))
        # GL4: calls on wire-record lvalues taint their destination.
        lhs = argtext.split(",")[1].strip() if "," in argtext else ""
        if lhs and lhs != "NULL":
            src = self._wire_source(argtext)
            if src is None:
                for v in _WORD.findall(argtext):
                    if self.decls.get(v) in WIRE_RECORDS:
                        src = self.decls[v]
                        break
            if src is not None:
                self.tainted[lhs] = f"{src} via {name}()"
        # GL6/GL7 below: positional args (args[0] is the object for
        # method calls, matching GENERIC's this-at-slot-0 indexing).
        parts = [p.strip() for p in argtext.rstrip(">").split(",")]
        args = parts[2:]
        base = (name[len("__builtin_"):] if name.startswith("__builtin_")
                else name)
        # GL7: guard construction -> AcquireEvent with the lock identity.
        if name in ("__ct_comp", "__ct_base") and len(args) >= 2:
            v = _ADDR_ARG.match(args[0])
            if v and self.decls.get(v.group(1)) in GUARD_CLASSES:
                ident = self._lock_identity(args[1])
                if ident:
                    self.guard_ids[v.group(1)] = ident
                    fn.acquires.append(AcquireEvent(
                        lock=ident, held=lids, file=self.file,
                        line=self.line))
        if name in _PLUMBING:
            return
        has_lhs = lhs and lhs != "NULL"
        if base in SANITIZER_NAMES:
            # Ranged/checked helper: its result is clean by construction.
            if has_lhs:
                self.src_of[lhs] = ()
            return
        if base in JSON_SOURCE_METHODS:
            if has_lhs:
                self.src_of[lhs] = (f"src:Json.{base}",)
            return
        # Taint crossing the call: each arg with source atoms flows into
        # the callee (resolved by name later, see _resolve_gimple_calls),
        # and the result may carry the callee's return taint.
        for i, a in enumerate(args):
            atoms = self._atoms(a)
            if atoms:
                fn.taints.append(TaintEvent(
                    kind="flow", dst=f"a:gimple:{name}:{i}", atoms=atoms,
                    detail=f"argument {i} of {name}()", file=self.file,
                    line=self.line))
        if has_lhs:
            self.src_of[lhs] = (f"r:gimple:{name}",)
        # GL6 sinks: allocation/length tables plus operator[] on a
        # known indexable container local.
        sink = SINK_CALLS.get(base)
        if sink is not None:
            positions, verb = sink
            for pos in positions:
                if pos < len(args):
                    atoms = self._atoms(args[pos])
                    if atoms:
                        fn.taints.append(TaintEvent(
                            kind="sink", dst=verb, atoms=atoms,
                            detail=f"{base}()", file=self.file,
                            line=self.line))
        elif base == "operator[]" and len(args) >= 2:
            recv = re.split(r"->|\.", args[0].lstrip("&*"))[0]
            if self.decls.get(recv) in INDEX_RECORDS:
                atoms = self._atoms(args[1])
                if atoms:
                    fn.taints.append(TaintEvent(
                        kind="sink", dst="index", atoms=atoms,
                        detail="operator[]", file=self.file,
                        line=self.line))

    def _assign(self, op: str, rest: str) -> None:
        fn = self.fn
        rest = re.sub(r"\[[^\]]*\]", "", rest)
        parts = [p.strip() for p in rest.rstrip(">").split(",")]
        lhs = parts[0] if parts else ""
        rhs = ", ".join(parts[1:])
        # GL3 field accesses: `c->ok`, `c->bytes`.
        for base, fieldname in _FIELD.findall(rhs):
            if self.decls.get(base) != "Completion":
                continue
            if fieldname in COMPLETION_CHECK_FIELDS:
                fn.completions.append(CompletionEvent(
                    kind="check", var=base, detail=fieldname,
                    file=self.file, line=self.line))
            elif fieldname in COMPLETION_USE_FIELDS:
                fn.completions.append(CompletionEvent(
                    kind="use", var=base, detail=fieldname,
                    file=self.file, line=self.line))
        # GL4 taint: wire-record field read taints the destination...
        tainted_rhs = self._wire_source(rhs)
        if tainted_rhs is None:
            for w in _WORD.findall(rhs):
                if w in self.tainted:
                    tainted_rhs = self.tainted[w]
                    break
        if tainted_rhs is not None and lhs:
            self.tainted[lhs] = tainted_rhs
        # ... and tainted multiply/add/shift is the GL4 event itself.
        arith = _ARITH.get(op)
        if arith and tainted_rhs is not None:
            fn.ariths.append(ArithEvent(
                op=arith, detail=tainted_rhs,
                file=self.file, line=self.line))
        if op == "addr_expr" and lhs and len(parts) > 1:
            self.addr_of[lhs] = parts[1]
        # Short-circuit `a || b` lowers to an iftmp boolean set under the
        # cond's labels; _cond pre-seeded cond_taint so the temp carries
        # the compared atoms into the final `if (iftmp)` test.
        if op == "integer_cst" and lhs in self.cond_taint:
            self.src_of[lhs] = self.cond_taint[lhs]
            return
        # GL6: thread source atoms through the assignment. Stores into a
        # tracked-record field or the return slot become flow events;
        # anything else updates the local resolution map (reassignment
        # overwrites, killing stale taint).
        atoms = self._atoms(rhs)
        if not lhs:
            return
        fa = self._field_atom(lhs)
        if fa:
            if atoms:
                fn.taints.append(TaintEvent(
                    kind="flow", dst=fa, atoms=atoms,
                    detail=f"store to {fa[2:]}", file=self.file,
                    line=self.line))
        elif "retval" in lhs:
            if atoms:
                fn.taints.append(TaintEvent(
                    kind="flow", dst="ret", atoms=atoms,
                    detail="returned value", file=self.file,
                    line=self.line))
            self.src_of[lhs] = atoms
        else:
            self.src_of[lhs] = atoms

    def _cond(self, stmt: str, kids: list, at: int) -> None:
        """A comparison whose failure branch bails (throw / return / a
        never-returns call) is a range check: bless the compared atoms
        for this function — and program-wide for field atoms (taint.py's
        trust-boundary contract). Branch structure is labels-and-gotos at
        this dump stage, so the scan is a bounded window over the
        flattened statements following the cond."""
        m = _COND.match(stmt)
        if not m:
            return
        atoms = tuple(dict.fromkeys(
            self._atoms(m.group(2)) + self._atoms(m.group(3))))
        if not atoms:
            return
        lines: list[str] = []
        for c in kids[at + 1:]:
            lines.extend((c.text() if isinstance(c, Block) else c)
                         .splitlines())
            if len(lines) > 60:
                break
        labels_left = {m.group(4), m.group(5)} - {None}
        bail = False
        for ln in lines[:60]:
            if not labels_left:
                break
            lm = re.search(r"gimple_label <<([^>]+)>>", ln)
            if lm:
                labels_left.discard(lm.group(1))
                continue
            cm = re.search(r"gimple_assign <integer_cst, (\S+),", ln)
            if cm:
                seen = self.cond_taint.get(cm.group(1), ())
                self.cond_taint[cm.group(1)] = tuple(
                    dict.fromkeys(seen + atoms))
            if ("__cxa_throw" in ln or "__cxa_allocate_exception" in ln
                    or "gimple_return" in ln
                    or any(f"gimple_call <{c}" in ln.replace(
                        "gimple_call <__builtin_", "gimple_call <")
                        for c in _COLD_CALLS)):
                bail = True
                break
        if bail:
            self.fn.taints.append(TaintEvent(
                kind="sanitize", dst="", atoms=atoms,
                detail="compare-and-bail", file=self.file,
                line=self.line))


def recover(base: FnModel, body: Block, tu_file: str,
            params: str = "") -> FnModel:
    """Events for `base` (identity reused) re-read from the GIMPLE body."""
    patch = FnModel(key=base.key, pretty=base.pretty, file=base.file,
                    line=base.line, noexcept=base.noexcept)
    r = _Recover(patch, tu_file, params)
    r.walk(body, locks=(), lids=(), shielded=False)
    return patch
