"""Recovers function bodies the GENERIC raw dumper drops.

GCC's raw tree dumper prints `try_catch_expr` nodes without operands, so
any function whose body genericizes under an EH-only cleanup — typically
one returning a non-trivial value, where the NRVO'd return object must be
destroyed if an exception escapes — dumps as an empty shell. ~6% of
project sections lose some or all of their body this way, including
exactly the value-returning collectors (reap_all, entries) GL1 exists to
police.

The GIMPLE dump of the same compile (`-fdump-tree-gimple-raw-lineno`)
has no such gap: it is printed by the gimple pretty-printer, which
handles every statement kind. It costs different information — callees
appear as unqualified names, and declared types lose template arguments —
so it is used only to *patch* functions the GENERIC dump truncated,
with name-based callee resolution done later against the full program
(see __main__._resolve_gimple_calls). Identity (key, noexcept) still
comes from the GENERIC section; only events are recovered here.

Format sketch (indentation-nested, one statement per line):

    struct vector gstore::io::AsyncEngine::Impl::reap_all (struct Impl * const this)
    gimple_bind <
      struct vector D.1234;
      struct MutexLock lock;

      [/abs/path.cpp:171:13] gimple_call <__ct_comp , NULL, &lock, &this->mutex>
      [/abs/path.cpp:171:13] gimple_try <GIMPLE_TRY_FINALLY,
        EVAL <
          [/abs/path.cpp:176:17] gimple_call <reserve, NULL, &done, _3>
        >
        CLEANUP <
          [/abs/path.cpp:171:13] gimple_call <__dt_comp , NULL, &lock>
        >
      >
    >
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .model import ArithEvent, CallEvent, CompletionEvent, FnModel, \
    PinStoreEvent

GUARD_CLASSES = {"MutexLock", "WriterMutexLock", "ReaderMutexLock"}
WIRE_RECORDS = {
    "TilesFileHeader", "WalFileHeader", "WalFrameHeader", "FaultSpec",
    "TileStoreMeta",
}
# Member names whose declared type is a wire record: GIMPLE text types
# only block-local decls, so `store.meta_.tile_count` is recognized by the
# member name rather than by the (invisible) type of `meta_`.
WIRE_MEMBERS = {"meta_": "TileStoreMeta"}
CONTAINER_STORE_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "assign", "insert_or_assign", "try_emplace",
}
COMPLETION_CHECK_FIELDS = {"ok", "error"}
COMPLETION_USE_FIELDS = {"bytes"}
# Structural plumbing that is not a call in the source program.
_PLUMBING = {
    "__ct_comp", "__ct_base", "__dt_comp", "__dt_base",
    "__cxa_begin_catch", "__cxa_end_catch", "__cxa_rethrow",
    "__builtin_eh_pointer", "__cxa_throw", "__cxa_allocate_exception",
}

_LOC = re.compile(r"^\[([^:\]]+):(\d+):\d+\]\s*")
_CALL = re.compile(r"gimple_call <([^,>]+)(.*)")
_ASSIGN = re.compile(r"gimple_assign <(\w+), (.*)")
_FIELD = re.compile(r"(\w+)(?:->|\.)(\w+)")
_CHAIN = re.compile(r"\w+(?:(?:->|\.)\w+)+")
_ADDR_ARG = re.compile(r"&(\w+)\b")
_WORD = re.compile(r"\b([A-Za-z_]\w*(?:\.\d+)?|_\d+|D\.\d+)\b")
_DECL = re.compile(r"(?:struct|class|union|enum)?\s*"
                   r"(?P<type>[\w:]+)[\s*&]+(?P<name>\w+)(?:\[\d*\])?;$")
_ARITH = {"mult_expr": "*", "plus_expr": "+", "lshift_expr": "<<"}


@dataclass
class Block:
    kind: str                       # bind | try_finally | try_catch |
    header: str                     # eval | cleanup | other
    children: list = field(default_factory=list)   # str stmts and Blocks

    def text(self) -> str:
        out = [self.header]
        for c in self.children:
            out.append(c.text() if isinstance(c, Block) else c)
        return "\n".join(out)


def _block_kind(stripped: str) -> str:
    if "gimple_bind <" in stripped:
        return "bind"
    if "gimple_try <GIMPLE_TRY_FINALLY" in stripped:
        return "try_finally"
    if "gimple_try <GIMPLE_TRY_CATCH" in stripped:
        return "try_catch"
    if stripped == "EVAL <":
        return "eval"
    if stripped == "CLEANUP <":
        return "cleanup"
    return "other"


def _is_header(line: str) -> bool:
    return (bool(line) and not line[0].isspace()
            and " (" in line
            and not line.startswith((">", "gimple_", "__attribute__", ";;")))


def arity(params: str) -> int:
    """Top-level parameter count of a textual parameter list. Tracks <>
    depth so template-argument commas (GENERIC pretty params) don't split."""
    params = params.strip()
    if params in ("", "void"):
        return 0
    depth = 0
    n = 1
    for ch in params:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        elif ch == "," and depth == 0:
            n += 1
    return n


def parse(text: str) -> dict[str, list[tuple[int, Block]]]:
    """qualified function name -> [(arity, body)] (overloads share a
    name; the caller disambiguates by parameter count)."""
    out: dict[str, list[tuple[int, Block]]] = {}
    qual: str | None = None
    nargs = 0
    root: Block | None = None
    stack: list[Block] = []
    for line in text.splitlines():
        stripped = line.strip()
        if _is_header(line):
            if qual and root is not None:
                out.setdefault(qual, []).append((nargs, root))
            head, _, params = line.rsplit(" (", 1)[0], None, \
                line.rsplit(" (", 1)[-1]
            params = params.rsplit(")", 1)[0]
            name = head.split()[-1] if head.split() else ""
            qual = name if re.fullmatch(r"[\w:~]+", name) else None
            nargs = arity(params)
            root = None
            stack = []
            continue
        if qual is None or not stripped:
            # Blank lines still delimit bind decl lists; keep them.
            if stack and not stripped:
                stack[-1].children.append("")
            continue
        # Closers: a line of only '>' tokens pops one level per token.
        if re.fullmatch(r"[>\s,]+", stripped):
            for _ in range(stripped.count(">")):
                if stack:
                    stack.pop()
            continue
        opens = stripped.endswith("<") or "gimple_try <GIMPLE" in stripped
        if opens:
            blk = Block(_block_kind(stripped), stripped)
            if stack:
                stack[-1].children.append(blk)
            elif root is None:
                root = blk
            else:  # stray second top-level block: nest under root
                root.children.append(blk)
            stack.append(blk)
        elif stack:
            stack[-1].children.append(stripped)
    if qual and root is not None:
        out.setdefault(qual, []).append((nargs, root))
    return out


class _Recover:
    def __init__(self, fn: FnModel, tu_file: str):
        self.fn = fn
        self.tu = tu_file
        self.decls: dict[str, str] = {}      # var name -> class-ish name
        self.tainted: dict[str, str] = {}    # tainted name -> origin label
        self.file = tu_file
        self.line = fn.line

    def _loc(self, stmt: str) -> str:
        m = _LOC.match(stmt)
        if m:
            self.file, self.line = m.group(1), int(m.group(2))
        return _LOC.sub("", stmt)

    def _bind_decls(self, blk: Block) -> None:
        for c in blk.children:
            if not isinstance(c, str):
                continue
            if c == "":
                break                        # decls end at the blank line
            m = _DECL.search(c)
            if m:
                self.decls[m.group("name")] = m.group("type").split("::")[-1]

    def _guard_in_cleanup(self, blk: Block) -> str | None:
        for sub in blk.children:
            if isinstance(sub, Block) and sub.kind == "cleanup":
                for m in re.finditer(
                        r"gimple_call <__dt_\w+ ?,[^>]*&(\w+)", sub.text()):
                    cls = self.decls.get(m.group(1))
                    if cls in GUARD_CLASSES:
                        return f"{cls} {m.group(1)}"
        return None

    def _has_catch(self, blk: Block) -> bool:
        for sub in blk.children:
            if isinstance(sub, Block) and sub.kind == "cleanup":
                if "gimple_catch" in sub.text():
                    return True
        return False

    def walk(self, blk: Block, locks: tuple, shielded: bool) -> None:
        if blk.kind == "bind":
            self._bind_decls(blk)
        guard = None
        shield_eval = False
        if blk.kind == "try_finally":
            guard = self._guard_in_cleanup(blk)
        elif blk.kind == "try_catch":
            shield_eval = self._has_catch(blk)
        for c in blk.children:
            if isinstance(c, Block):
                inner_locks = locks
                inner_shield = shielded
                if c.kind == "eval":
                    if guard:
                        inner_locks = locks + (guard,)
                    if shield_eval:
                        inner_shield = True
                self.walk(c, inner_locks, inner_shield)
            else:
                self._stmt(c, locks, shielded)

    def _stmt(self, stmt: str, locks: tuple, shielded: bool) -> None:
        stmt = self._loc(stmt)
        m = _CALL.match(stmt)
        if m:
            self._call(m.group(1).strip(), m.group(2), locks, shielded)
            return
        m = _ASSIGN.match(stmt)
        if m:
            self._assign(m.group(1), m.group(2))

    def _wire_source(self, text: str) -> str | None:
        """Untrusted-source label if `text` reads a wire-record field."""
        for m in _CHAIN.finditer(text):
            comps = re.split(r"->|\.", m.group(0))
            if self.decls.get(comps[0]) in WIRE_RECORDS:
                return f"{self.decls[comps[0]]}.{comps[-1]}"
            for i, c in enumerate(comps):
                if c in WIRE_MEMBERS:
                    rec = WIRE_MEMBERS[c]
                    return (f"{rec}.{comps[-1]}" if i < len(comps) - 1
                            else rec)
        return None

    def _completion_vars(self, argtext: str) -> list[str]:
        out = []
        for w in _WORD.findall(argtext):
            if self.decls.get(w) == "Completion":
                out.append(w)
        return out

    def _call(self, name: str, argtext: str, locks: tuple,
              shielded: bool) -> None:
        fn = self.fn
        argtext = re.sub(r"\[[^\]]*\]", "", argtext)   # strip per-arg locs
        if name not in _PLUMBING:
            fn.calls.append(CallEvent(
                callee=None, callee_name=name, scope="gimple",
                file=self.file, line=self.line, locks=locks,
                shielded=shielded))
        # GL2: container-store of a BufferPin-typed local.
        if name in CONTAINER_STORE_METHODS:
            for v in _ADDR_ARG.findall(argtext):
                if self.decls.get(v) == "BufferPin":
                    fn.pin_stores.append(PinStoreEvent(
                        kind="container",
                        detail=f"{name}() argument carries a BufferPin",
                        file=self.file, line=self.line))
                    break
        # GL3: reassignment resets; any other call taking the lvalue
        # transfers the checking obligation.
        cvars = self._completion_vars(argtext)
        if cvars:
            kind = "reset" if name == "operator=" else "check"
            detail = "reassigned" if kind == "reset" else "passed-to-callee"
            for v in cvars:
                fn.completions.append(CompletionEvent(
                    kind=kind, var=v, detail=detail,
                    file=self.file, line=self.line))
        # GL4: calls on wire-record lvalues taint their destination.
        lhs = argtext.split(",")[1].strip() if "," in argtext else ""
        if lhs and lhs != "NULL":
            src = self._wire_source(argtext)
            if src is None:
                for v in _WORD.findall(argtext):
                    if self.decls.get(v) in WIRE_RECORDS:
                        src = self.decls[v]
                        break
            if src is not None:
                self.tainted[lhs] = f"{src} via {name}()"

    def _assign(self, op: str, rest: str) -> None:
        fn = self.fn
        rest = re.sub(r"\[[^\]]*\]", "", rest)
        parts = [p.strip() for p in rest.rstrip(">").split(",")]
        lhs = parts[0] if parts else ""
        rhs = ", ".join(parts[1:])
        # GL3 field accesses: `c->ok`, `c->bytes`.
        for base, fieldname in _FIELD.findall(rhs):
            if self.decls.get(base) != "Completion":
                continue
            if fieldname in COMPLETION_CHECK_FIELDS:
                fn.completions.append(CompletionEvent(
                    kind="check", var=base, detail=fieldname,
                    file=self.file, line=self.line))
            elif fieldname in COMPLETION_USE_FIELDS:
                fn.completions.append(CompletionEvent(
                    kind="use", var=base, detail=fieldname,
                    file=self.file, line=self.line))
        # GL4 taint: wire-record field read taints the destination...
        tainted_rhs = self._wire_source(rhs)
        if tainted_rhs is None:
            for w in _WORD.findall(rhs):
                if w in self.tainted:
                    tainted_rhs = self.tainted[w]
                    break
        if tainted_rhs is not None and lhs:
            self.tainted[lhs] = tainted_rhs
        # ... and tainted multiply/add/shift is the GL4 event itself.
        arith = _ARITH.get(op)
        if arith and tainted_rhs is not None:
            fn.ariths.append(ArithEvent(
                op=arith, detail=tainted_rhs,
                file=self.file, line=self.line))


def recover(base: FnModel, body: Block, tu_file: str) -> FnModel:
    """Events for `base` (identity reused) re-read from the GIMPLE body."""
    patch = FnModel(key=base.key, pretty=base.pretty, file=base.file,
                    line=base.line, noexcept=base.noexcept)
    r = _Recover(patch, tu_file)
    r.walk(body, locks=(), shielded=False)
    return patch
