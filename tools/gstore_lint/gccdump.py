"""GCC GENERIC tree-dump frontend: dump generation and raw-dump parsing.

`g++ -fdump-tree-original-raw-lineno=<file>` writes, per function, the
GENERIC tree as a numbered node graph:

    ;; Function void gstore::Holder::locked_log() (null)
    ;; enabled by -tree-original

    @1      bind_expr        type: @2       vars: @3       body: @4
    @2      void_type        name: @5       algn: 8
    @4      statement_list   0   : @10      1   : @11
    ...

Node references are section-local. Attribute keys are the short codes
print-tree uses (`name:`, `scpe:`, `op 0:`, `fn  :`, positional `0   :`
for call arguments and statement-list entries, ...). Identifier payloads
are `strg: <text> lngt: <n>`; `<text>` may contain spaces (`operator new`)
or colons (string literals), so it is extracted first via the trailing
length and blanked before key scanning.

The dumps include every instantiated std:: entity, which makes them large
(~10 MB per TU). Sections are filtered by their pretty name before node
parsing: only project functions (and unscoped free functions) are parsed
in detail, which keeps the per-TU cost dominated by the compile itself.
"""

from __future__ import annotations

import os
import re
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

SECTION_HEADER = re.compile(r"^;; Function (.+?) \((.*)\)\s*$")
NODE_START = re.compile(r"^@(\d+)\s+(\S+)\s*(.*)$")
# `strg: <payload> lngt: <n>` — non-greedy up to the length marker.
STRG = re.compile(r"strg:\s(.*?)\s*lngt:\s*(-?\d+)")
# Attribute keys: positional indexes, `op N`, or the 2-4 char codes.
KEY = re.compile(r"(?:(?<=\s)|^)(op \d+|\d+|[a-z_]{2,4})\s*: ")

# Pretty-name prefixes/infixes that mark sections we never analyze: std
# library internals, gcc/glibc implementation namespaces, compiler thunks.
_SKIP_MARKERS = (
    "std::",
    "__gnu_cxx::",
    "__cxxabiv1::",
    "__gnu_debug::",
    "operator new",
    "operator delete",
    "__static_initialization",
    "_GLOBAL__",
)


def keep_section(pretty: str) -> bool:
    """Parse this section in detail?

    Project code (anything mentioning gstore) is always kept; so are free
    functions outside any skip namespace (tools, tests, fixtures). A
    std:: template instantiated *with* project types is kept too — its
    body may call back into project code (e.g. a callback invoked through
    std machinery).
    """
    if "gstore" in pretty:
        return True
    return not any(m in pretty for m in _SKIP_MARKERS)


@dataclass
class Node:
    idx: int
    tag: str
    attrs: dict[str, list[str]] = field(default_factory=dict)
    strg: str | None = None

    def ref(self, key: str) -> int | None:
        vals = self.attrs.get(key)
        if not vals:
            return None
        v = vals[0]
        return int(v[1:]) if v.startswith("@") else None

    def refs(self, key: str) -> list[int]:
        out = []
        for v in self.attrs.get(key, ()):
            if v.startswith("@"):
                out.append(int(v[1:]))
        return out

    def value(self, key: str) -> str | None:
        vals = self.attrs.get(key)
        return vals[0] if vals else None

    def has_attr(self, key: str) -> bool:
        return key in self.attrs

    def indexed_refs(self) -> list[tuple[int, int]]:
        """Positional children `0:`..`N:` (call args, statement lists)."""
        out = []
        for k, vals in self.attrs.items():
            if k.isdigit() and vals and vals[0].startswith("@"):
                out.append((int(k), int(vals[0][1:])))
        out.sort()
        return out


@dataclass
class Section:
    pretty: str
    nodes: dict[int, Node] = field(default_factory=dict)

    @property
    def root(self) -> Node | None:
        return self.nodes.get(1)

    def node(self, idx: int | None) -> Node | None:
        return None if idx is None else self.nodes.get(idx)


def _parse_node_text(idx: int, tag: str, text: str) -> Node:
    node = Node(idx=idx, tag=tag)
    m = STRG.search(text)
    if m:
        node.strg = m.group(1)
        text = text[: m.start()] + text[m.end():]
    pos: list[tuple[str, int, int]] = []  # (key, value_start, key_start)
    for km in KEY.finditer(text):
        pos.append((km.group(1), km.end(), km.start()))
    for i, (key, vstart, _) in enumerate(pos):
        vend = pos[i + 1][2] if i + 1 < len(pos) else len(text)
        value = text[vstart:vend].strip()
        if value:
            node.attrs.setdefault(key, []).append(value)
    return node


def parse_dump(text: str) -> list[Section]:
    sections: list[Section] = []
    cur: Section | None = None
    # (idx, tag, accumulated attr text) for the node being accumulated.
    pending: list[str] | None = None
    pending_head: tuple[int, str] | None = None

    def flush() -> None:
        nonlocal pending, pending_head
        if cur is not None and pending_head is not None:
            idx, tag = pending_head
            cur.nodes[idx] = _parse_node_text(idx, tag, " ".join(pending))
        pending = None
        pending_head = None

    for line in text.splitlines():
        if line.startswith(";; Function"):
            flush()
            m = SECTION_HEADER.match(line)
            pretty = m.group(1) if m else line[len(";; Function "):]
            if keep_section(pretty):
                cur = Section(pretty=pretty)
                sections.append(cur)
            else:
                cur = None
            continue
        if cur is None or not line or line.startswith(";;"):
            continue
        if line.startswith("@"):
            m = NODE_START.match(line)
            if m:
                flush()
                pending_head = (int(m.group(1)), m.group(2))
                pending = [m.group(3)]
                continue
        if pending is not None:
            pending.append(line.strip())
    flush()
    return sections


class DumpError(RuntimeError):
    pass


# Flags that fight with -S/-o or just waste time at lint. -O0 halves the
# compile without changing the pre-gimplification tree we read.
_STRIP_FLAGS = {"-c", "-S", "-E", "-flto", "-g", "-g3", "-ggdb"}
_STRIP_PREFIX = ("-O", "-fdump-", "-flto=", "-fuse-linker-plugin")
_STRIP_WITH_ARG = {"-o", "-MF", "-MT", "-MQ", "-MD", "-MMD"}


def dump_command(args: list[str], dump_path: str,
                 gimple_path: str) -> list[str]:
    out: list[str] = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in _STRIP_WITH_ARG:
            skip = a in {"-o", "-MF", "-MT", "-MQ"}
            continue
        if a in _STRIP_FLAGS or a.startswith(_STRIP_PREFIX):
            continue
        out.append(a)
    # Both dumps come from the one compile: GENERIC for full-fidelity
    # lowering, GIMPLE to patch the sections the raw GENERIC dumper
    # truncates at try_catch_expr (see gimplepatch.py).
    out += ["-O0", "-S", "-o", os.devnull,
            f"-fdump-tree-original-raw-lineno={dump_path}",
            f"-fdump-tree-gimple-raw-lineno={gimple_path}"]
    return out


def run_dump(args: list[str], directory: str) -> tuple[str, str]:
    """Compiles one TU with tree dumping; returns (generic, gimple) text."""
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".orig", prefix="gstore_lint_", delete=False
    ) as tf:
        dump_path = tf.name
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".gimple", prefix="gstore_lint_", delete=False
    ) as tf:
        gimple_path = tf.name
    try:
        cmd = dump_command(args, dump_path, gimple_path)
        proc = subprocess.run(
            cmd, cwd=directory, capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise DumpError(
                f"dump compile failed ({' '.join(cmd[:3])}...):\n"
                f"{proc.stderr.strip()[:2000]}"
            )
        return (Path(dump_path).read_text(errors="replace"),
                Path(gimple_path).read_text(errors="replace"))
    finally:
        for p in (dump_path, gimple_path):
            try:
                os.unlink(p)
            except OSError:
                pass
