"""libclang (clang.cindex) frontend — used when the bindings are present.

This is the frontend the suite was designed around; gcc-only machines (and
the CI fallback path) use gccfront instead, and tests/lint pins the gcc
frontend so fixture expectations stay deterministic. Both lower to the
same event IR, so check semantics are shared.

Identity note: functions are keyed by USR-derived qualified name plus a
parameter fingerprint compatible with gccfront's (type spellings reduced
to their last name component), so a mixed-frontend run still links the
call graph.
"""

from __future__ import annotations

import os
import re
from dataclasses import replace

from .gccfront import (ATOMIC_PLAIN_OPS, ATOMIC_RECORDS,
                       COMPLETION_CHECK_FIELDS, COMPLETION_RECORD,
                       COMPLETION_USE_FIELDS, CONTAINER_STORE_METHODS,
                       GUARD_CLASSES, PIN_TYPEDEF, RAW_SYNC_CALLS,
                       RAW_SYNC_RECORDS, WIRE_RECORDS)
from .model import (ArithEvent, AtomicOpEvent, CallEvent, CompletionEvent,
                    FnModel, PinStoreEvent, RawSyncEvent, ThrowEvent)

try:
    from clang import cindex  # type: ignore
    _HAVE = True
except Exception:  # pragma: no cover - exercised only without libclang
    cindex = None
    _HAVE = False


def available() -> bool:
    if not _HAVE:
        return False
    try:
        cindex.Index.create()
        return True
    except Exception:
        return False


_TYPE_NAME = re.compile(r"[\w:]+")


def _last_name(spelling: str) -> str:
    m = _TYPE_NAME.search(spelling or "")
    return (m.group(0).rsplit("::", 1)[-1]) if m else "?"


def _qualified(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    parts.reverse()
    return "::".join(parts)


def _scope_kind(qual: str) -> str:
    head = qual.split("::", 1)[0]
    if head == "std" or head.startswith("__"):
        return "std"
    if "gstore" in qual.split("::"):
        return "project"
    return "global" if "::" not in qual else "unknown"


def _fingerprint(cursor) -> str:
    codes = []
    for arg in cursor.get_arguments() or []:
        codes.append(_last_name(arg.type.spelling))
    if not codes and cursor.type is not None:
        codes = [_last_name(t.spelling)
                 for t in cursor.type.argument_types() or []]
    return ",".join(codes)


def _fn_key(cursor) -> tuple[str, str, str]:
    qual = _qualified(cursor)
    return f"{qual}({_fingerprint(cursor)})", qual, _scope_kind(qual)


def _type_names(t) -> set[str]:
    names: set[str] = set()
    seen = 0
    while t is not None and seen < 8:
        seen += 1
        if t.spelling:
            names.add(_last_name(t.spelling))
        d = t.get_declaration()
        if d is not None and d.spelling:
            names.add(d.spelling)
        nxt = t.get_canonical() if t.get_canonical().spelling != t.spelling \
            else None
        if nxt is None:
            p = t.get_pointee()
            nxt = p if p is not None and p.spelling else None
        if nxt is None or nxt.spelling == t.spelling:
            break
        t = nxt
    return names


def _loc(cursor) -> tuple[str, int]:
    loc = cursor.location
    if loc is None or loc.file is None:
        return ("<unknown>", 0)
    return (os.path.abspath(loc.file.name), loc.line or 0)


class _Lowerer:
    CK = None  # populated lazily below

    def __init__(self, fn_cursor):
        self.cursor = fn_cursor
        key, qual, _ = _fn_key(fn_cursor)
        file, line = _loc(fn_cursor)
        noexc = False
        try:
            spec = fn_cursor.exception_specification_kind
            noexc = spec in (
                cindex.ExceptionSpecificationKind.BASIC_NOEXCEPT,
                cindex.ExceptionSpecificationKind.COMPUTED_NOEXCEPT,
                cindex.ExceptionSpecificationKind.DYNAMIC_NONE,
            )
        except Exception:
            pass
        self.fn = FnModel(key=key, pretty=qual, file=file, line=line,
                          noexcept=noexc)
        self.tainted: set[str] = set()

    def lower(self) -> FnModel:
        body = None
        for ch in self.cursor.get_children():
            if ch.kind == cindex.CursorKind.COMPOUND_STMT:
                body = ch
        if body is not None:
            self._collect_taint(body)
            self._walk(body, locks=(), shielded=False)
        return self.fn

    # taint: two passes over DECL_STMT/assignment initializers
    def _expr_tainted(self, node) -> str | None:
        for c in _all(node):
            if c.kind == cindex.CursorKind.MEMBER_REF_EXPR:
                parent_t = None
                ch = list(c.get_children())
                if ch:
                    parent_t = ch[0].type
                if parent_t is not None and \
                        (_type_names(parent_t) & WIRE_RECORDS):
                    return f"{_last_name(parent_t.spelling)}.{c.spelling}"
            if c.kind == cindex.CursorKind.DECL_REF_EXPR and \
                    c.spelling in self.tainted:
                return c.spelling
        return None

    def _collect_taint(self, body) -> None:
        for _ in range(2):
            for c in _all(body):
                if c.kind == cindex.CursorKind.VAR_DECL:
                    init = list(c.get_children())
                    if init and self._expr_tainted(init[-1]):
                        self.tainted.add(c.spelling)
                elif c.kind == cindex.CursorKind.BINARY_OPERATOR:
                    ch = list(c.get_children())
                    if len(ch) == 2 and _op_spelling(c) == "=" and \
                            ch[0].kind == cindex.CursorKind.DECL_REF_EXPR \
                            and self._expr_tainted(ch[1]):
                        self.tainted.add(ch[0].spelling)

    def _walk(self, node, locks, shielded) -> None:
        k = node.kind
        CK = cindex.CursorKind
        if k == CK.CXX_TRY_STMT:
            ch = list(node.get_children())
            body, handlers = ch[0] if ch else None, ch[1:]
            catch_all = any(_is_catch_all(h) for h in handlers)
            if body is not None:
                self._walk(body, locks, shielded or catch_all)
            for h in handlers:
                self._walk(h, locks, shielded)
            return
        if k == CK.CXX_THROW_EXPR:
            self.fn.throws.append(ThrowEvent(*self._where(node), shielded))
            return
        if k == CK.COMPOUND_STMT:
            active = list(locks)
            for ch in node.get_children():
                guard = _guard_decl(ch)
                if guard is not None:
                    active = active + [guard]
                self._walk(ch, tuple(active), shielded)
            return
        if k in (CK.CALL_EXPR,):
            self._handle_call(node, locks, shielded)
        elif k == CK.MEMBER_REF_EXPR:
            self._handle_member_ref(node)
        elif k == CK.BINARY_OPERATOR:
            self._handle_binop(node, locks, shielded)
            return
        for ch in node.get_children():
            self._walk(ch, locks, shielded)

    def _where(self, node) -> tuple[str, int]:
        f, ln = _loc(node)
        return (f if f != "<unknown>" else self.fn.file, ln)

    def _handle_call(self, node, locks, shielded) -> None:
        ref = node.referenced
        file, line = self._where(node)
        if ref is None:
            self.fn.calls.append(CallEvent(
                callee=None, callee_name="<indirect>", scope="unknown",
                file=file, line=line, locks=locks, shielded=shielded))
            return
        key, qual, kind = _fn_key(ref)
        name = qual.rsplit("::", 1)[-1]
        self.fn.calls.append(CallEvent(
            callee=key, callee_name=name, scope=kind, file=file,
            line=line, locks=locks, shielded=shielded,
            is_dtor=ref.kind == cindex.CursorKind.DESTRUCTOR))
        if qual in RAW_SYNC_CALLS:
            self.fn.raw_syncs.append(RawSyncEvent(qual, file, line))
        parent = ref.semantic_parent
        if name in ATOMIC_PLAIN_OPS and parent is not None and \
                parent.spelling in ATOMIC_RECORDS:
            args = list(node.get_children())
            member = None
            for a in args[:1]:
                for m in _all(a):
                    if m.kind == cindex.CursorKind.MEMBER_REF_EXPR:
                        member = m.spelling
                        break
            if member:
                self.fn.atomic_ops.append(
                    AtomicOpEvent(member, name, file, line))
        if name in CONTAINER_STORE_METHODS and \
                _scope_kind(_qualified(parent) if parent else "") == "std":
            for a in node.get_children():
                names = _type_names(a.type) if a.type is not None else set()
                if PIN_TYPEDEF in names or _contains_pin(a.type):
                    self.fn.pin_stores.append(PinStoreEvent(
                        "container",
                        f"{name}() argument carries a {PIN_TYPEDEF}",
                        file, line))
                    break
        for a in node.get_children():
            for m in _all(a, depth=3):
                if m.kind == cindex.CursorKind.DECL_REF_EXPR and \
                        m.referenced is not None and \
                        (COMPLETION_RECORD in
                         _type_names(m.referenced.type)):
                    self.fn.completions.append(CompletionEvent(
                        "check", f"{m.spelling}@{m.referenced.hash}",
                        "passed-to-callee", file, line))

    def _handle_member_ref(self, node) -> None:
        fname = node.spelling
        if fname not in COMPLETION_CHECK_FIELDS | COMPLETION_USE_FIELDS:
            return
        ch = list(node.get_children())
        if not ch:
            return
        base = ch[0]
        if COMPLETION_RECORD not in _type_names(base.type):
            return
        ref = base.referenced if hasattr(base, "referenced") else None
        var = f"{base.spelling}@{ref.hash if ref else 0}"
        file, line = self._where(node)
        kind = "check" if fname in COMPLETION_CHECK_FIELDS else "use"
        self.fn.completions.append(
            CompletionEvent(kind, var, fname, file, line))

    def _handle_binop(self, node, locks, shielded) -> None:
        op = _op_spelling(node)
        file, line = self._where(node)
        ch = list(node.get_children())
        if op == "=" and len(ch) == 2:
            lhs = ch[0]
            if lhs.kind == cindex.CursorKind.MEMBER_REF_EXPR and \
                    lhs.type is not None and \
                    PIN_TYPEDEF in _type_names(lhs.type):
                inner = list(lhs.get_children())
                base_is_local = bool(inner) and \
                    inner[0].kind == cindex.CursorKind.DECL_REF_EXPR and \
                    inner[0].referenced is not None and \
                    inner[0].referenced.kind == cindex.CursorKind.VAR_DECL
                if not base_is_local:
                    self.fn.pin_stores.append(PinStoreEvent(
                        "member",
                        f"store into {PIN_TYPEDEF} member '{lhs.spelling}'",
                        file, line))
            if lhs.kind == cindex.CursorKind.DECL_REF_EXPR and \
                    COMPLETION_RECORD in _type_names(lhs.type):
                ref = lhs.referenced
                self.fn.completions.append(CompletionEvent(
                    "reset", f"{lhs.spelling}@{ref.hash if ref else 0}",
                    "reassigned", file, line))
            self._walk(ch[1], locks, shielded)
            return
        if op in ("*", "+", "<<") and node.type is not None and \
                node.type.get_canonical().kind in _INT_KINDS:
            for side in ch:
                src = self._expr_tainted(side)
                if src:
                    self.fn.ariths.append(ArithEvent(op, src, file, line))
                    break
        for c in ch:
            self._walk(c, locks, shielded)


_INT_KINDS = set()
if _HAVE:
    _INT_KINDS = {
        cindex.TypeKind.INT, cindex.TypeKind.UINT, cindex.TypeKind.LONG,
        cindex.TypeKind.ULONG, cindex.TypeKind.LONGLONG,
        cindex.TypeKind.ULONGLONG, cindex.TypeKind.SHORT,
        cindex.TypeKind.USHORT, cindex.TypeKind.CHAR_U,
        cindex.TypeKind.UCHAR, cindex.TypeKind.SCHAR,
    }


def _op_spelling(node):
    try:
        toks = [t.spelling for t in node.get_tokens()]
        for t in toks:
            if t in ("=", "*", "+", "<<", "+=", "-="):
                return t
    except Exception:
        pass
    return "?"


def _all(node, depth: int = 64):
    stack = [(node, 0)]
    while stack:
        n, d = stack.pop()
        yield n
        if d < depth:
            for c in n.get_children():
                stack.append((c, d + 1))


def _is_catch_all(handler) -> bool:
    if handler.kind != cindex.CursorKind.CXX_CATCH_STMT:
        return False
    ch = list(handler.get_children())
    return not ch or ch[0].kind == cindex.CursorKind.COMPOUND_STMT


def _guard_decl(stmt):
    """A DECL_STMT declaring a gstore guard -> its description."""
    if stmt.kind != cindex.CursorKind.DECL_STMT:
        return None
    for d in stmt.get_children():
        if d.kind == cindex.CursorKind.VAR_DECL and \
                (_type_names(d.type) & GUARD_CLASSES):
            cls = sorted(_type_names(d.type) & GUARD_CLASSES)[0]
            return f"{cls} {d.spelling}"
    return None


def _contains_pin(t) -> bool:
    if t is None:
        return False
    d = t.get_declaration()
    if d is None:
        return False
    try:
        for f in d.type.get_fields():
            if PIN_TYPEDEF in _type_names(f.type):
                return True
    except Exception:
        return False
    return False


def lower_tu(entry) -> tuple[str, list[FnModel], str]:
    """Entry point matching gccfront's worker signature."""
    index = cindex.Index.create()
    args = [a for a in entry.args[1:] if a not in ("-c", entry.file)]
    try:
        tu = index.parse(entry.file, args=args)
    except Exception as e:
        return (entry.file, [], f"libclang parse failed: {e}")
    sev = cindex.Diagnostic.Error
    errs = [d for d in tu.diagnostics if d.severity >= sev]
    if errs:
        return (entry.file, [], f"libclang diagnostics: {errs[0]}")
    fns: list[FnModel] = []
    decls = FnModel(key=f"<decls:{entry.file}>", pretty="<decls>",
                    file=entry.file, line=0, noexcept=False)

    def visit(c):
        if c.kind in (cindex.CursorKind.VAR_DECL,
                      cindex.CursorKind.FIELD_DECL):
            hit = _type_names(c.type) & RAW_SYNC_RECORDS
            if hit:
                qual = _qualified(c.type.get_declaration()) \
                    if c.type.get_declaration() else ""
                if qual.startswith("std::") or qual.startswith("__"):
                    f, ln = _loc(c)
                    decls.raw_syncs.append(RawSyncEvent(
                        f"std::{sorted(hit)[0]}", f, ln))
        if c.kind in (cindex.CursorKind.FUNCTION_DECL,
                      cindex.CursorKind.CXX_METHOD,
                      cindex.CursorKind.CONSTRUCTOR,
                      cindex.CursorKind.DESTRUCTOR,
                      cindex.CursorKind.LAMBDA_EXPR) and c.is_definition():
            fns.append(_Lowerer(c).lower())
            return
        for ch in c.get_children():
            visit(ch)
    visit(tu.cursor)
    if decls.raw_syncs:
        fns.append(decls)
    return (entry.file, fns, "")
