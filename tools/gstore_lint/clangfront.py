"""libclang (clang.cindex) frontend — used when the bindings are present.

This is the frontend the suite was designed around; gcc-only machines (and
the CI fallback path) use gccfront instead, and tests/lint pins the gcc
frontend so fixture expectations stay deterministic. Both lower to the
same event IR, so check semantics are shared.

Identity note: functions are keyed by USR-derived qualified name plus a
parameter fingerprint compatible with gccfront's (type spellings reduced
to their last name component), so a mixed-frontend run still links the
call graph.
"""

from __future__ import annotations

import os
import re
from dataclasses import replace

from .gccfront import (ATOMIC_PLAIN_OPS, ATOMIC_RECORDS, COLD_VALIDATORS,
                       COMPLETION_CHECK_FIELDS, COMPLETION_RECORD,
                       COMPLETION_USE_FIELDS, CONTAINER_STORE_METHODS,
                       GUARD_CLASSES, INDEX_RECORDS, JSON_SOURCE_METHODS,
                       PIN_TYPEDEF, RAW_SYNC_CALLS, RAW_SYNC_RECORDS,
                       SANITIZER_NAMES, SINK_CALLS, TRACKED_RECORDS,
                       WIRE_RECORDS)
from .model import (AcquireEvent, ArithEvent, AtomicOpEvent, CallEvent,
                    CompletionEvent, FnModel, PinStoreEvent, RawSyncEvent,
                    TaintEvent, ThrowEvent)

try:
    from clang import cindex  # type: ignore
    _HAVE = True
except Exception:  # pragma: no cover - exercised only without libclang
    cindex = None
    _HAVE = False


def available() -> bool:
    if not _HAVE:
        return False
    try:
        cindex.Index.create()
        return True
    except Exception:
        return False


_TYPE_NAME = re.compile(r"[\w:]+")


def _last_name(spelling: str) -> str:
    m = _TYPE_NAME.search(spelling or "")
    return (m.group(0).rsplit("::", 1)[-1]) if m else "?"


def _qualified(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    parts.reverse()
    return "::".join(parts)


def _scope_kind(qual: str) -> str:
    head = qual.split("::", 1)[0]
    if head == "std" or head.startswith("__"):
        return "std"
    if "gstore" in qual.split("::"):
        return "project"
    return "global" if "::" not in qual else "unknown"


def _fingerprint(cursor) -> str:
    codes = []
    for arg in cursor.get_arguments() or []:
        codes.append(_last_name(arg.type.spelling))
    if not codes and cursor.type is not None:
        codes = [_last_name(t.spelling)
                 for t in cursor.type.argument_types() or []]
    return ",".join(codes)


def _fn_key(cursor) -> tuple[str, str, str]:
    qual = _qualified(cursor)
    return f"{qual}({_fingerprint(cursor)})", qual, _scope_kind(qual)


def _type_names(t) -> set[str]:
    names: set[str] = set()
    seen = 0
    while t is not None and seen < 8:
        seen += 1
        if t.spelling:
            names.add(_last_name(t.spelling))
        d = t.get_declaration()
        if d is not None and d.spelling:
            names.add(d.spelling)
        nxt = t.get_canonical() if t.get_canonical().spelling != t.spelling \
            else None
        if nxt is None:
            p = t.get_pointee()
            nxt = p if p is not None and p.spelling else None
        if nxt is None or nxt.spelling == t.spelling:
            break
        t = nxt
    return names


def _loc(cursor) -> tuple[str, int]:
    loc = cursor.location
    if loc is None or loc.file is None:
        return ("<unknown>", 0)
    return (os.path.abspath(loc.file.name), loc.line or 0)


class _Lowerer:
    CK = None  # populated lazily below

    def __init__(self, fn_cursor):
        self.cursor = fn_cursor
        key, qual, _ = _fn_key(fn_cursor)
        file, line = _loc(fn_cursor)
        noexc = False
        try:
            spec = fn_cursor.exception_specification_kind
            noexc = spec in (
                cindex.ExceptionSpecificationKind.BASIC_NOEXCEPT,
                cindex.ExceptionSpecificationKind.COMPUTED_NOEXCEPT,
                cindex.ExceptionSpecificationKind.DYNAMIC_NONE,
            )
        except Exception:
            pass
        self.fn = FnModel(key=key, pretty=qual, file=file, line=line,
                          noexcept=noexc)
        self.tainted: set[str] = set()
        self.fnqual = qual
        # GL6 parameter slots: `this` is slot 0 for non-static methods,
        # declared parameters follow — matching gccfront's numbering.
        offset = 0
        try:
            if fn_cursor.kind in (cindex.CursorKind.CXX_METHOD,
                                  cindex.CursorKind.CONSTRUCTOR,
                                  cindex.CursorKind.DESTRUCTOR) and \
                    not fn_cursor.is_static_method():
                offset = 1
        except Exception:
            pass
        self.arg_offset = offset
        self.params: dict[str, int] = {}
        for i, p in enumerate(fn_cursor.get_arguments() or []):
            if p.spelling:
                self.params[p.spelling] = i + offset

    def lower(self) -> FnModel:
        body = None
        for ch in self.cursor.get_children():
            if ch.kind == cindex.CursorKind.COMPOUND_STMT:
                body = ch
        if body is not None:
            self._collect_taint(body)
            self._walk(body, locks=(), lids=(), shielded=False)
        return self.fn

    # taint: two passes over DECL_STMT/assignment initializers
    def _expr_tainted(self, node) -> str | None:
        for c in _all(node):
            if c.kind == cindex.CursorKind.MEMBER_REF_EXPR:
                parent_t = None
                ch = list(c.get_children())
                if ch:
                    parent_t = ch[0].type
                if parent_t is not None and \
                        (_type_names(parent_t) & WIRE_RECORDS):
                    return f"{_last_name(parent_t.spelling)}.{c.spelling}"
            if c.kind == cindex.CursorKind.DECL_REF_EXPR and \
                    c.spelling in self.tainted:
                return c.spelling
        return None

    def _collect_taint(self, body) -> None:
        for _ in range(2):
            for c in _all(body):
                if c.kind == cindex.CursorKind.VAR_DECL:
                    init = list(c.get_children())
                    if init and self._expr_tainted(init[-1]):
                        self.tainted.add(c.spelling)
                elif c.kind == cindex.CursorKind.BINARY_OPERATOR:
                    ch = list(c.get_children())
                    if len(ch) == 2 and _op_spelling(c) == "=" and \
                            ch[0].kind == cindex.CursorKind.DECL_REF_EXPR \
                            and self._expr_tainted(ch[1]):
                        self.tainted.add(ch[0].spelling)

    def _walk(self, node, locks, lids, shielded) -> None:
        k = node.kind
        CK = cindex.CursorKind
        if k == CK.CXX_TRY_STMT:
            ch = list(node.get_children())
            body, handlers = ch[0] if ch else None, ch[1:]
            catch_all = any(_is_catch_all(h) for h in handlers)
            if body is not None:
                self._walk(body, locks, lids, shielded or catch_all)
            for h in handlers:
                self._walk(h, locks, lids, shielded)
            return
        if k == CK.CXX_THROW_EXPR:
            self.fn.throws.append(ThrowEvent(*self._where(node), shielded))
            return
        if k == CK.COMPOUND_STMT:
            active = list(locks)
            alids = list(lids)
            for ch in node.get_children():
                guard = _guard_decl(ch)
                if guard is not None:
                    gid = self._guard_identity(ch)
                    if gid:
                        f, ln = self._where(ch)
                        self.fn.acquires.append(AcquireEvent(
                            lock=gid, held=tuple(alids), file=f, line=ln))
                        alids = alids + [gid]
                    active = active + [guard]
                self._walk(ch, tuple(active), tuple(alids), shielded)
            return
        if k == CK.DECL_STMT:
            for d in node.get_children():
                if d.kind == CK.VAR_DECL and _int_type(d.type):
                    init = list(d.get_children())
                    if init:
                        atoms = self._atoms_of(init[-1])
                        if atoms:
                            f, ln = self._where(d)
                            self.fn.taints.append(TaintEvent(
                                kind="flow", dst=f"l:{d.spelling}",
                                atoms=atoms,
                                detail=f"store to l:{d.spelling}",
                                file=f, line=ln))
        elif k == CK.RETURN_STMT:
            ch = list(node.get_children())
            if ch:
                atoms = self._atoms_of(ch[0])
                if atoms:
                    f, ln = self._where(node)
                    self.fn.taints.append(TaintEvent(
                        kind="flow", dst="ret", atoms=atoms,
                        detail="returned value", file=f, line=ln))
        elif k == CK.IF_STMT:
            self._handle_if(node)
        elif k in (CK.FOR_STMT, CK.WHILE_STMT, CK.DO_STMT):
            self._handle_loop(node)
        elif k == CK.ARRAY_SUBSCRIPT_EXPR:
            ch = list(node.get_children())
            if len(ch) == 2:
                atoms = self._atoms_of(ch[1])
                if atoms:
                    f, ln = self._where(node)
                    self.fn.taints.append(TaintEvent(
                        kind="sink", dst="index", atoms=atoms,
                        detail="array index", file=f, line=ln))
        if k in (CK.CALL_EXPR,):
            self._handle_call(node, locks, lids, shielded)
        elif k == CK.MEMBER_REF_EXPR:
            self._handle_member_ref(node)
        elif k == CK.BINARY_OPERATOR:
            self._handle_binop(node, locks, lids, shielded)
            return
        for ch in node.get_children():
            self._walk(ch, locks, lids, shielded)

    def _where(self, node) -> tuple[str, int]:
        f, ln = _loc(node)
        return (f if f != "<unknown>" else self.fn.file, ln)

    def _handle_call(self, node, locks, lids, shielded) -> None:
        ref = node.referenced
        file, line = self._where(node)
        if ref is None:
            self.fn.calls.append(CallEvent(
                callee=None, callee_name="<indirect>", scope="unknown",
                file=file, line=line, locks=locks, shielded=shielded,
                lock_ids=lids))
            return
        key, qual, kind = _fn_key(ref)
        name = qual.rsplit("::", 1)[-1]
        self.fn.calls.append(CallEvent(
            callee=key, callee_name=name, scope=kind, file=file,
            line=line, locks=locks, shielded=shielded,
            is_dtor=ref.kind == cindex.CursorKind.DESTRUCTOR,
            lock_ids=lids))
        self._taint_call(node, ref, key, name, kind, file, line)
        if qual in RAW_SYNC_CALLS:
            self.fn.raw_syncs.append(RawSyncEvent(qual, file, line))
        parent = ref.semantic_parent
        if name in ATOMIC_PLAIN_OPS and parent is not None and \
                parent.spelling in ATOMIC_RECORDS:
            args = list(node.get_children())
            member = None
            for a in args[:1]:
                for m in _all(a):
                    if m.kind == cindex.CursorKind.MEMBER_REF_EXPR:
                        member = m.spelling
                        break
            if member:
                self.fn.atomic_ops.append(
                    AtomicOpEvent(member, name, file, line))
        if name in CONTAINER_STORE_METHODS and \
                _scope_kind(_qualified(parent) if parent else "") == "std":
            for a in node.get_children():
                names = _type_names(a.type) if a.type is not None else set()
                if PIN_TYPEDEF in names or _contains_pin(a.type):
                    self.fn.pin_stores.append(PinStoreEvent(
                        "container",
                        f"{name}() argument carries a {PIN_TYPEDEF}",
                        file, line))
                    break
        for a in node.get_children():
            for m in _all(a, depth=3):
                if m.kind == cindex.CursorKind.DECL_REF_EXPR and \
                        m.referenced is not None and \
                        (COMPLETION_RECORD in
                         _type_names(m.referenced.type)):
                    self.fn.completions.append(CompletionEvent(
                        "check", f"{m.spelling}@{m.referenced.hash}",
                        "passed-to-callee", file, line))

    def _handle_member_ref(self, node) -> None:
        fname = node.spelling
        if fname not in COMPLETION_CHECK_FIELDS | COMPLETION_USE_FIELDS:
            return
        ch = list(node.get_children())
        if not ch:
            return
        base = ch[0]
        if COMPLETION_RECORD not in _type_names(base.type):
            return
        ref = base.referenced if hasattr(base, "referenced") else None
        var = f"{base.spelling}@{ref.hash if ref else 0}"
        file, line = self._where(node)
        kind = "check" if fname in COMPLETION_CHECK_FIELDS else "use"
        self.fn.completions.append(
            CompletionEvent(kind, var, fname, file, line))

    # ---- GL6/GL7 lowering -------------------------------------------

    def _member_atom(self, node):
        """`f:Rec.fld` when a member ref lands in a tracked record (the
        field's declaring class, so derived uses and implicit-this reads
        key the same atom as gccfront)."""
        try:
            r = node.referenced
            parent = r.semantic_parent if r is not None else None
            cls = parent.spelling if parent is not None else ""
            if cls in TRACKED_RECORDS and node.spelling:
                return f"f:{cls}.{node.spelling}"
        except Exception:
            pass
        return None

    def _atoms_of(self, node) -> tuple[str, ...]:
        """Source atoms of an expression, pruned at sanitizer calls."""
        if node is None:
            return ()
        CK = cindex.CursorKind
        out: dict[str, None] = {}
        stack = [(node, 0)]
        while stack and len(out) < 8:
            n, d = stack.pop()
            k = n.kind
            if k == CK.MEMBER_REF_EXPR:
                fa = self._member_atom(n)
                if fa:
                    out[fa] = None
                    continue
            elif k == CK.DECL_REF_EXPR:
                r = n.referenced
                if r is not None:
                    if r.kind == CK.PARM_DECL and \
                            r.spelling in self.params:
                        out[f"p{self.params[r.spelling]}"] = None
                    elif r.kind == CK.VAR_DECL:
                        out[f"l:{r.spelling}"] = None
                continue
            elif k == CK.CALL_EXPR:
                r = n.referenced
                nm = r.spelling if r is not None else ""
                if nm in SANITIZER_NAMES:
                    continue            # checked/ranged helper: clean cut
                if nm in ("move", "forward"):
                    for c in n.get_children():
                        stack.append((c, d + 1))
                    continue
                if nm in JSON_SOURCE_METHODS and r is not None and \
                        r.semantic_parent is not None and \
                        r.semantic_parent.spelling == "Json":
                    out[f"src:Json.{nm}"] = None
                    continue
                if r is not None:
                    out[f"r:{_fn_key(r)[0]}"] = None
                continue
            if d < 6:
                for c in n.get_children():
                    stack.append((c, d + 1))
        return tuple(out)

    def _taint_call(self, node, ref, key, name, kind, file, line) -> None:
        """Argument flows into the callee plus name-table sinks, with
        GENERIC-compatible slot numbering (object = slot 0)."""
        fn = self.fn
        if name in SANITIZER_NAMES:
            return
        args = list(node.get_arguments() or [])
        offset = 0
        try:
            if ref.kind in (cindex.CursorKind.CXX_METHOD,
                            cindex.CursorKind.CONSTRUCTOR,
                            cindex.CursorKind.DESTRUCTOR) and \
                    not ref.is_static_method():
                offset = 1
        except Exception:
            pass
        for i, a in enumerate(args):
            if not _int_type(a.type):
                continue
            atoms = self._atoms_of(a)
            if atoms:
                fn.taints.append(TaintEvent(
                    kind="flow", dst=f"a:{key}:{i + offset}", atoms=atoms,
                    detail=f"argument of {name}()", file=file, line=line))
        sink = SINK_CALLS.get(name)
        if sink is not None:
            project_only = name.startswith(("pread_", "pwrite_"))
            if (project_only and kind == "project") or \
                    (not project_only and kind in ("std", "global")):
                positions, verb = sink
                for pos in positions:
                    ai = pos - offset
                    if 0 <= ai < len(args):
                        atoms = self._atoms_of(args[ai])
                        if atoms:
                            fn.taints.append(TaintEvent(
                                kind="sink", dst=verb, atoms=atoms,
                                detail=f"{name}()", file=file, line=line))
        elif name == "operator[]" and args:
            parent = ref.semantic_parent
            if parent is not None and parent.spelling in INDEX_RECORDS \
                    and kind == "std":
                atoms = self._atoms_of(args[0])
                if atoms:
                    fn.taints.append(TaintEvent(
                        kind="sink", dst="index", atoms=atoms,
                        detail=f"{parent.spelling}::operator[]",
                        file=file, line=line))

    def _cmp_atoms(self, node) -> tuple[str, ...]:
        """Atoms compared anywhere inside `node` (both operands of every
        comparison binop)."""
        catoms: list[str] = []
        for c in _all(node, depth=6):
            if c.kind == cindex.CursorKind.BINARY_OPERATOR and \
                    _op_spelling(c) in _CMP_OPS:
                for side in c.get_children():
                    catoms.extend(self._atoms_of(side))
        return tuple(dict.fromkeys(catoms))

    def _handle_if(self, node) -> None:
        """Compare-and-bail range validation -> sanitize event (see
        gccfront._handle_cond for the shared semantics)."""
        CK = cindex.CursorKind
        ch = list(node.get_children())
        if len(ch) < 2:
            return
        atoms = self._cmp_atoms(ch[0])
        if not atoms:
            return
        for branch in ch[1:]:
            for m in _all(branch, depth=8):
                bails = m.kind in (CK.CXX_THROW_EXPR, CK.RETURN_STMT)
                if not bails and m.kind == CK.CALL_EXPR and \
                        m.referenced is not None and \
                        m.referenced.spelling in COLD_VALIDATORS:
                    bails = True
                if bails:
                    f, ln = self._where(node)
                    self.fn.taints.append(TaintEvent(
                        kind="sanitize", dst="", atoms=atoms,
                        detail="range check", file=f, line=ln))
                    return

    def _handle_loop(self, node) -> None:
        """A loop whose controlling comparison reads tainted atoms is a
        loop-bound sink (the GENERIC latch form, in clang terms)."""
        CK = cindex.CursorKind
        catoms: list[str] = []
        for c in node.get_children():
            if c.kind == CK.COMPOUND_STMT:
                continue
            catoms.extend(self._cmp_atoms(c))
        atoms = tuple(dict.fromkeys(catoms))
        if atoms:
            f, ln = self._where(node)
            self.fn.taints.append(TaintEvent(
                kind="sink", dst="loop", atoms=atoms, detail="loop bound",
                file=f, line=ln))

    def _guard_identity(self, stmt):
        """Lock identity for a guard DECL_STMT: `Rec::field` via the
        field's declaring class, else `fnqual::var` for a plain local or
        parameter mutex — both matching gccfront's keying."""
        CK = cindex.CursorKind
        for d in stmt.get_children():
            if d.kind != CK.VAR_DECL or \
                    not (_type_names(d.type) & GUARD_CLASSES):
                continue
            var = None
            for m in _all(d, depth=6):
                if m.kind == CK.MEMBER_REF_EXPR:
                    r = m.referenced
                    p = r.semantic_parent if r is not None else None
                    if p is not None and p.spelling and m.spelling:
                        return f"{p.spelling}::{m.spelling}"
                elif var is None and m.kind == CK.DECL_REF_EXPR and \
                        m.referenced is not None and \
                        m.referenced.kind in (CK.VAR_DECL, CK.PARM_DECL) \
                        and (_type_names(m.referenced.type) &
                             {"Mutex", "SharedMutex"}):
                    var = f"{self.fnqual}::{m.spelling}"
            if var:
                return var
        return None

    def _handle_binop(self, node, locks, lids, shielded) -> None:
        op = _op_spelling(node)
        file, line = self._where(node)
        ch = list(node.get_children())
        if op == "=" and len(ch) == 2:
            lhs = ch[0]
            if lhs.kind == cindex.CursorKind.MEMBER_REF_EXPR and \
                    lhs.type is not None and \
                    PIN_TYPEDEF in _type_names(lhs.type):
                inner = list(lhs.get_children())
                base_is_local = bool(inner) and \
                    inner[0].kind == cindex.CursorKind.DECL_REF_EXPR and \
                    inner[0].referenced is not None and \
                    inner[0].referenced.kind == cindex.CursorKind.VAR_DECL
                if not base_is_local:
                    self.fn.pin_stores.append(PinStoreEvent(
                        "member",
                        f"store into {PIN_TYPEDEF} member '{lhs.spelling}'",
                        file, line))
            if lhs.kind == cindex.CursorKind.DECL_REF_EXPR and \
                    COMPLETION_RECORD in _type_names(lhs.type):
                ref = lhs.referenced
                self.fn.completions.append(CompletionEvent(
                    "reset", f"{lhs.spelling}@{ref.hash if ref else 0}",
                    "reassigned", file, line))
            # GL6: assignment flow into a tracked field / local / param.
            dst = None
            if lhs.kind == cindex.CursorKind.MEMBER_REF_EXPR:
                dst = self._member_atom(lhs)
            elif lhs.kind == cindex.CursorKind.DECL_REF_EXPR and \
                    _int_type(lhs.type):
                r = lhs.referenced
                if r is not None and r.kind == cindex.CursorKind.PARM_DECL \
                        and r.spelling in self.params:
                    dst = f"p{self.params[r.spelling]}"
                elif r is not None and \
                        r.kind == cindex.CursorKind.VAR_DECL:
                    dst = f"l:{r.spelling}"
            if dst:
                atoms = self._atoms_of(ch[1])
                if atoms:
                    self.fn.taints.append(TaintEvent(
                        kind="flow", dst=dst, atoms=atoms,
                        detail=f"store to {dst.split(':', 1)[-1]}",
                        file=file, line=line))
            self._walk(ch[1], locks, lids, shielded)
            return
        if op in ("*", "+", "<<") and node.type is not None and \
                node.type.get_canonical().kind in _INT_KINDS:
            for side in ch:
                src = self._expr_tainted(side)
                if src:
                    self.fn.ariths.append(ArithEvent(op, src, file, line))
                    break
        if op == "<<" and len(ch) == 2:
            atoms = self._atoms_of(ch[1])
            if atoms:
                self.fn.taints.append(TaintEvent(
                    kind="sink", dst="shift", atoms=atoms,
                    detail="shift amount", file=file, line=line))
        for c in ch:
            self._walk(c, locks, lids, shielded)


_INT_KINDS = set()
if _HAVE:
    _INT_KINDS = {
        cindex.TypeKind.INT, cindex.TypeKind.UINT, cindex.TypeKind.LONG,
        cindex.TypeKind.ULONG, cindex.TypeKind.LONGLONG,
        cindex.TypeKind.ULONGLONG, cindex.TypeKind.SHORT,
        cindex.TypeKind.USHORT, cindex.TypeKind.CHAR_U,
        cindex.TypeKind.UCHAR, cindex.TypeKind.SCHAR,
    }


_CMP_OPS = {"<", ">", "<=", ">=", "==", "!="}


def _int_type(t) -> bool:
    """Integer-ish (incl. bool/enum), mirroring gccfront._int_typed."""
    try:
        c = t.get_canonical()
        return c.kind in _INT_KINDS or c.kind in (
            cindex.TypeKind.BOOL, cindex.TypeKind.ENUM)
    except Exception:
        return False


def _op_spelling(node):
    try:
        toks = [t.spelling for t in node.get_tokens()]
        for t in toks:
            if t in ("=", "*", "+", "<<", "+=", "-=") or t in _CMP_OPS:
                return t
    except Exception:
        pass
    return "?"


def _all(node, depth: int = 64):
    stack = [(node, 0)]
    while stack:
        n, d = stack.pop()
        yield n
        if d < depth:
            for c in n.get_children():
                stack.append((c, d + 1))


def _is_catch_all(handler) -> bool:
    if handler.kind != cindex.CursorKind.CXX_CATCH_STMT:
        return False
    ch = list(handler.get_children())
    return not ch or ch[0].kind == cindex.CursorKind.COMPOUND_STMT


def _guard_decl(stmt):
    """A DECL_STMT declaring a gstore guard -> its description."""
    if stmt.kind != cindex.CursorKind.DECL_STMT:
        return None
    for d in stmt.get_children():
        if d.kind == cindex.CursorKind.VAR_DECL and \
                (_type_names(d.type) & GUARD_CLASSES):
            cls = sorted(_type_names(d.type) & GUARD_CLASSES)[0]
            return f"{cls} {d.spelling}"
    return None


def _contains_pin(t) -> bool:
    if t is None:
        return False
    d = t.get_declaration()
    if d is None:
        return False
    try:
        for f in d.type.get_fields():
            if PIN_TYPEDEF in _type_names(f.type):
                return True
    except Exception:
        return False
    return False


def lower_tu(entry) -> tuple[str, list[FnModel], str]:
    """Entry point matching gccfront's worker signature."""
    index = cindex.Index.create()
    args = [a for a in entry.args[1:] if a not in ("-c", entry.file)]
    try:
        tu = index.parse(entry.file, args=args)
    except Exception as e:
        return (entry.file, [], f"libclang parse failed: {e}")
    sev = cindex.Diagnostic.Error
    errs = [d for d in tu.diagnostics if d.severity >= sev]
    if errs:
        return (entry.file, [], f"libclang diagnostics: {errs[0]}")
    fns: list[FnModel] = []
    decls = FnModel(key=f"<decls:{entry.file}>", pretty="<decls>",
                    file=entry.file, line=0, noexcept=False)

    def visit(c):
        if c.kind in (cindex.CursorKind.VAR_DECL,
                      cindex.CursorKind.FIELD_DECL):
            hit = _type_names(c.type) & RAW_SYNC_RECORDS
            if hit:
                qual = _qualified(c.type.get_declaration()) \
                    if c.type.get_declaration() else ""
                if qual.startswith("std::") or qual.startswith("__"):
                    f, ln = _loc(c)
                    decls.raw_syncs.append(RawSyncEvent(
                        f"std::{sorted(hit)[0]}", f, ln))
        if c.kind in (cindex.CursorKind.FUNCTION_DECL,
                      cindex.CursorKind.CXX_METHOD,
                      cindex.CursorKind.CONSTRUCTOR,
                      cindex.CursorKind.DESTRUCTOR,
                      cindex.CursorKind.LAMBDA_EXPR) and c.is_definition():
            fns.append(_Lowerer(c).lower())
            return
        for ch in c.get_children():
            visit(ch)
    visit(tu.cursor)
    if decls.raw_syncs:
        fns.append(decls)
    return (entry.file, fns, "")
