"""gstore_lint: AST-grade domain-invariant static analysis for G-Store.

Five domain checks (GL1..GL5) plus AST-grade versions of the
check_concurrency.py rules R1 and R4, computed over real compiler ASTs
rather than source text:

  GL1 blocking-under-lock   no syscall / file I/O / sleep reachable (over the
                            call graph) and no direct allocation while a
                            gstore::Mutex / SharedMutex guard is held.
  GL2 pin escape            BufferPin values must not be stored into members
                            or containers outside the audited cache-pool
                            owner.
  GL3 unchecked completion  a Completion's ok/error must be inspected before
                            bytes is consumed.
  GL4 untrusted arithmetic  in parser TUs, * / + / << on disk- or CLI-derived
                            fields must flow through util/checked.h.
  GL5 unwind noexcept       everything reachable from drain()/quiesce() on
                            the unwind path must be noexcept or shielded by
                            catch(...).

Two frontends lower translation units into the same event IR
(gstore_lint.model):

  * clangfront  — libclang python bindings (clang.cindex), per the original
                  design. Used when importable.
  * gccfront    — GCC GENERIC tree dumps (-fdump-tree-original-raw-lineno),
                  requiring nothing beyond the project's own compiler. This
                  is the reference frontend on gcc-only machines and in CI
                  images without libclang.

Findings are grep-style `file:line: [GLn] message`; exit status is 0 when
clean, 1 with findings, 2 on usage/environment errors. Waivers are audited
source comments: `// GL-SAFE(GLn): reason` (see waivers.py).
"""

__version__ = "1.0"
