"""GL7: static lock-order graph over gstore guard acquisitions.

The frontends emit an AcquireEvent per guard construction (lock identity
plus the identities lexically held at that point) and stamp every
CallEvent with the identities held at the call site. This module builds
the global order graph:

  * direct edges: AcquireEvent(lock=B, held=(..., A))  =>  A -> B
  * transitive edges: a call made while holding A into a function whose
    transitive acquisition summary contains B      =>  A -> B (via f)

and reports every cycle as a potential ABBA deadlock with one
representative acquisition chain per edge. Identities are class-level
('CachePool::mutex_'), not instance-level: two instances of one class
share a node, which over-approximates — the safe direction for deadlock
detection. The flip side is that self-edges (A -> A) are *not* reported:
under class-level identity they usually mean two instances locked in a
deliberate address order, which the runtime lockdep already polices
per-instance.

A cycle can be waived at any of its acquisition sites: every edge's
(file, line) lands in Finding.alt.
"""

from __future__ import annotations

from .model import Finding, Program

_MAX_ROUNDS = 60


def _summaries(program: Program) -> dict[str, set[str]]:
    """key -> every lock identity the function can acquire, transitively
    through project calls."""
    acq: dict[str, set[str]] = {}
    for fn in program.fns.values():
        s = acq.setdefault(fn.key, set())
        for ev in fn.acquires:
            s.add(ev.lock)
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fn in program.fns.values():
            s = acq[fn.key]
            for call in fn.calls:
                if call.callee and call.callee in acq:
                    extra = acq[call.callee] - s
                    if extra:
                        s |= extra
                        changed = True
        if not changed:
            break
    return acq


def _edges(program: Program, acq: dict[str, set[str]]):
    """(A, B) -> representative site (file, line, fn key, via)."""
    edges: dict[tuple[str, str], tuple] = {}
    for fn in program.fns.values():
        for ev in fn.acquires:
            for held in ev.held:
                if held != ev.lock:
                    edges.setdefault((held, ev.lock),
                                     (ev.file, ev.line, fn.key, ""))
        for call in fn.calls:
            if not call.lock_ids or not call.callee:
                continue
            for inner in acq.get(call.callee, ()):
                for held in call.lock_ids:
                    if held != inner:
                        edges.setdefault(
                            (held, inner),
                            (call.file, call.line, fn.key,
                             call.callee.split("(", 1)[0]))
    return edges


def _sccs(nodes: set[str], succ: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan, iterative."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    for start in sorted(nodes):
        if start in index:
            continue
        work = [(start, iter(sorted(succ.get(start, ()))))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on.add(start)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on.add(w)
                    work.append((w, iter(sorted(succ.get(w, ())))))
                    advanced = True
                    break
                if w in on:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                out.append(comp)
    return out


def _cycle_in(comp: list[str], succ: dict[str, set[str]]) -> list[str]:
    """One simple cycle through an SCC (DFS from its first node)."""
    inside = set(comp)
    start = comp[0]
    path = [start]
    seen = {start}
    while True:
        cur = path[-1]
        nxts = [w for w in sorted(succ.get(cur, ())) if w in inside]
        step = next((w for w in nxts if w == start), None)
        if step is not None:
            return path
        step = next((w for w in nxts if w not in seen), None)
        if step is None:
            # dead-end inside the SCC (shouldn't happen); backtrack
            path.pop()
            if not path:
                return comp
            continue
        seen.add(step)
        path.append(step)


def analyze(program: Program, root: str) -> list[Finding]:
    acq = _summaries(program)
    edges = _edges(program, acq)
    succ: dict[str, set[str]] = {}
    nodes: set[str] = set()
    for (a, b) in edges:
        succ.setdefault(a, set()).add(b)
        nodes.add(a)
        nodes.add(b)
    findings: list[Finding] = []
    for comp in _sccs(nodes, succ):
        if len(comp) < 2:
            continue
        cyc = _cycle_in(comp, succ)
        pairs = [(cyc[i], cyc[(i + 1) % len(cyc)]) for i in range(len(cyc))]
        trace = []
        alt = []
        for a, b in pairs:
            file, line, fnkey, via = edges[(a, b)]
            hop = f" via {via}()" if via else ""
            trace.append(f"{a} -> {b} at {file}:{line} in "
                         f"{fnkey.split('(', 1)[0]}{hop}")
            alt.append((file, line))
        file0, line0, fn0, _ = edges[pairs[0]]
        ring = " -> ".join(cyc + [cyc[0]])
        findings.append(Finding(
            "GL7", file0, line0,
            f"lock-order cycle (potential ABBA deadlock): {ring}; "
            + "; ".join(trace)
            + " — impose a global order or waive one edge with "
              "GL-SAFE(GL7)",
            fn=fn0, trace=tuple(trace), alt=tuple(alt[1:])))
    return findings
