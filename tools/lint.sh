#!/usr/bin/env bash
# Static-analysis entry point: custom concurrency lint + clang-tidy.
#
#   tools/lint.sh            # lint src/ (generates build-tidy/ if needed)
#   tools/lint.sh --no-tidy  # only the python lint (no clang-tidy required)
#
# The python lint always runs. clang-tidy runs when installed; when it is
# not (some CI images and dev boxes carry only gcc), the script says so and
# still succeeds on the strength of the python lint — CI runs the full
# version with clang-tidy installed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_tidy=1
if [[ "${1:-}" == "--no-tidy" ]]; then
  run_tidy=0
fi

echo "== check_concurrency.py =="
python3 tools/check_concurrency.py "$ROOT"

if [[ $run_tidy -eq 0 ]]; then
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy: not installed; skipped (python lint passed) =="
  exit 0
fi

echo "== clang-tidy =="
TIDY_BUILD="$ROOT/build-tidy"
if [[ ! -f "$TIDY_BUILD/compile_commands.json" ]]; then
  cmake --preset tidy >/dev/null
fi

# run-clang-tidy parallelizes when available; otherwise loop.
mapfile -t sources < <(find src tools -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$TIDY_BUILD" "${sources[@]}"
else
  status=0
  for f in "${sources[@]}"; do
    clang-tidy -quiet -p "$TIDY_BUILD" "$f" || status=1
  done
  exit $status
fi
