#!/usr/bin/env bash
# Static-analysis entry point: every sub-linter runs, every failure counts.
#
#   tools/lint.sh            # check_concurrency + gstore_lint + clang-tidy
#   tools/lint.sh --no-tidy  # skip clang-tidy (e.g. when not installed)
#   tools/lint.sh --fix      # let clang-tidy apply its suggested fixes
#
# Earlier versions exited on the first stage's status, so a later stage
# could mask an earlier failure (or vice versa). Now each stage runs
# unconditionally and the script exits nonzero if ANY stage failed.
#
# Stages:
#   1. tools/check_concurrency.py  — textual rules R1-R6 (no dependencies)
#   2. tools/gstore_lint           — AST-grade GL1-GL5 + R1/R4; needs a
#      compile_commands.json (any build*/ dir; every preset exports one).
#      Skipped with a notice when none exists yet — CI always has one.
#   3. clang-tidy                  — when installed; CI runs it.
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_tidy=1
tidy_fix=0
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --fix) tidy_fix=1 ;;
    *) echo "usage: tools/lint.sh [--no-tidy] [--fix]" >&2; exit 2 ;;
  esac
done

status=0

echo "== check_concurrency.py =="
python3 tools/check_concurrency.py "$ROOT" || status=1

echo "== gstore_lint =="
if compgen -G "$ROOT"/build*/compile_commands.json >/dev/null; then
  python3 tools/gstore_lint --root "$ROOT" || status=1
else
  echo "gstore_lint: no build*/compile_commands.json yet; skipped" \
       "(configure any preset first — all of them export one)"
fi

if [[ $run_tidy -eq 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy =="
    TIDY_BUILD="$ROOT/build-tidy"
    if [[ ! -f "$TIDY_BUILD/compile_commands.json" ]]; then
      cmake --preset tidy >/dev/null || status=1
    fi
    fix_args=()
    if [[ $tidy_fix -eq 1 ]]; then
      fix_args=(-fix)
    fi
    # run-clang-tidy parallelizes when available; otherwise loop.
    mapfile -t sources < <(find src tools -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p "$TIDY_BUILD" "${fix_args[@]}" \
        "${sources[@]}" || status=1
    else
      for f in "${sources[@]}"; do
        clang-tidy -quiet -p "$TIDY_BUILD" "${fix_args[@]}" "$f" || status=1
      done
    fi
  else
    echo "== clang-tidy: not installed; skipped =="
  fi
fi

if [[ $status -ne 0 ]]; then
  echo "lint.sh: FAILED (one or more sub-linters reported findings)" >&2
else
  echo "lint.sh: all sub-linters clean"
fi
exit $status
