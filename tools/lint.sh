#!/usr/bin/env bash
# Static-analysis entry point: custom concurrency lint + clang-tidy.
#
#   tools/lint.sh            # lint src/ (generates build-tidy/ if needed)
#   tools/lint.sh --no-tidy  # only the python lint (no clang-tidy required)
#   tools/lint.sh --fix      # let clang-tidy apply its suggested fixes
#
# The python lint always runs (rules R1-R5, including the raw-mutex ban).
# clang-tidy runs when installed; when it is not (some CI images and dev
# boxes carry only gcc), the script says so and still succeeds on the
# strength of the python lint — CI runs the full version with clang-tidy
# installed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_tidy=1
tidy_fix=0
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --fix) tidy_fix=1 ;;
    *) echo "usage: tools/lint.sh [--no-tidy] [--fix]" >&2; exit 2 ;;
  esac
done

echo "== check_concurrency.py =="
python3 tools/check_concurrency.py "$ROOT"

if [[ $run_tidy -eq 0 ]]; then
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy: not installed; skipped (python lint passed) =="
  exit 0
fi

echo "== clang-tidy =="
TIDY_BUILD="$ROOT/build-tidy"
if [[ ! -f "$TIDY_BUILD/compile_commands.json" ]]; then
  cmake --preset tidy >/dev/null
fi

fix_args=()
if [[ $tidy_fix -eq 1 ]]; then
  fix_args=(-fix)
fi

# run-clang-tidy parallelizes when available; otherwise loop.
mapfile -t sources < <(find src tools -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$TIDY_BUILD" "${fix_args[@]}" "${sources[@]}"
else
  status=0
  for f in "${sources[@]}"; do
    clang-tidy -quiet -p "$TIDY_BUILD" "${fix_args[@]}" "$f" || status=1
  done
  exit $status
fi
