// gstore_ingest — append edges to a converted tile store through the WAL.
//
//   # durably ingest an edge-list file in 64k-edge batches
//   gstore_ingest --store=/data/kron20 --edges=/data/new.el --batch=65536
//
//   # fold the WAL into the next store generation
//   gstore_ingest --store=/data/kron20 --compact
//
//   # inspect the write path's state
//   gstore_ingest --store=/data/kron20 --status
//
// Ingested edges are queryable immediately via `gstore_run --follow-wal`
// and are merged into the base tiles by --compact (see docs/INGEST.md).
#include <cstdio>
#include <string>

#include "graph/graph_io.h"
#include "ingest/ingestor.h"
#include "tile/verify.h"
#include "util/options.h"
#include "util/status.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gstore;
  Options opts;
  opts.add("store", "", "tile-store base path (from gstore_convert)");
  opts.add("edges", "", "binary edge-list file to ingest (original orientation)");
  opts.add("batch", "65536", "edges per WAL frame (one fsync each)");
  opts.add("budget-mb", "64", "delta-buffer memory budget (MiB)");
  opts.add_flag("compact", "fold the WAL into a new store generation");
  opts.add_flag("status", "print generation / WAL / delta state and exit");
  opts.add_flag("verify", "deep-verify the store (including WAL CRCs) last");

  try {
    opts.parse(argc, argv);
    if (opts.help_requested() || opts.get("store").empty()) {
      std::fputs(opts.usage("gstore_ingest").c_str(), stdout);
      return opts.help_requested() ? 0 : 2;
    }

    ingest::IngestorOptions iopt;
    iopt.delta_budget_bytes =
        static_cast<std::uint64_t>(opts.get_int("budget-mb")) << 20;
    ingest::EdgeIngestor ingestor(opts.get("store"), iopt);

    if (opts.get_bool("status")) {
      std::printf("generation %u | %llu base edges | %llu un-compacted edges "
                  "(%.1f KiB WAL, %.1f MiB delta)\n",
                  ingestor.generation(),
                  static_cast<unsigned long long>(ingestor.store().edge_count()),
                  static_cast<unsigned long long>(
                      ingestor.delta().ingested_edges()),
                  ingestor.wal_bytes() / 1024.0,
                  ingestor.delta().memory_bytes() / double(1 << 20));
      return 0;
    }

    if (!opts.get("edges").empty()) {
      const graph::EdgeList el = graph::read_edge_file(opts.get("edges"));
      const auto batch =
          static_cast<std::size_t>(std::max<long long>(1, opts.get_int("batch")));
      Timer t;
      std::uint64_t accepted = 0;
      const auto all = el.span();
      for (std::size_t at = 0; at < all.size(); at += batch)
        accepted += ingestor.ingest(
            all.subspan(at, std::min(batch, all.size() - at)));
      const double secs = t.seconds();
      std::printf("ingested %llu/%llu edges in %.3fs (%.0f edges/s, "
                  "%zu-edge frames)\n",
                  static_cast<unsigned long long>(accepted),
                  static_cast<unsigned long long>(el.edge_count()), secs,
                  secs > 0 ? accepted / secs : 0.0, batch);
    }

    if (opts.get_bool("compact")) {
      const ingest::CompactStats cs = ingestor.compact();
      std::printf("compacted generation %u -> %u: %llu base + %llu wal = "
                  "%llu edges, %.1f MiB written in %.3fs\n",
                  cs.old_generation, cs.new_generation,
                  static_cast<unsigned long long>(cs.base_edges),
                  static_cast<unsigned long long>(cs.wal_edges),
                  static_cast<unsigned long long>(cs.merged_edges),
                  cs.bytes_written / double(1 << 20), cs.seconds);
    }

    if (opts.get_bool("verify")) {
      const auto report = tile::verify_store(opts.get("store"));
      if (!report.ok) {
        for (const auto& p : report.problems)
          std::fprintf(stderr, "verify: %s\n", p.c_str());
        return 1;
      }
      std::printf("verify: OK (%llu tiles, %llu edges, %llu WAL frames)\n",
                  static_cast<unsigned long long>(report.tiles_checked),
                  static_cast<unsigned long long>(report.edges_checked),
                  static_cast<unsigned long long>(report.wal_frames_checked));
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fputs("error: unknown exception\n", stderr);
    return 1;
  }
}
