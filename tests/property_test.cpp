// Randomized property tests: engine-configuration invariance, format
// round-trips, and data-structure invariants under random operation
// sequences. Seeds are fixed — failures reproduce deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "algo/reference.h"
#include "graph/degree.h"
#include "graph/generator.h"
#include "ingest/delta.h"
#include "io/tiering.h"
#include "store/cache_pool.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "tile/compress.h"
#include "tile/edge_block.h"
#include "tile/grid.h"
#include "tile/snb.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace gstore {
namespace {

using graph::EdgeList;
using graph::GraphKind;
using graph::vid_t;

// ---- engine-config invariance ----------------------------------------------
//
// Whatever the memory budget, segment size, policy, overlap mode, or device
// emulation, results must be identical. One graph, many random configs.

class RandomConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomConfigTest, ResultsInvariantToEngineConfig) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  auto el = graph::kronecker(9, 5, GraphKind::kUndirected,
                             1000 + GetParam());
  el.normalize();
  io::TempDir dir;
  tile::ConvertOptions copt;
  copt.tile_bits = static_cast<unsigned>(4 + rng.next_below(5));  // 4..8
  copt.group_side = static_cast<std::uint32_t>(1 + rng.next_below(6));
  auto store = gstore::testing::make_store(dir, el, copt);

  const auto want_bfs = algo::ref_bfs(el, 0);
  const auto want_pr = algo::ref_pagerank(el, 3);

  for (int trial = 0; trial < 4; ++trial) {
    store::EngineConfig cfg;
    cfg.stream_memory_bytes = 4096 + rng.next_below(512 << 10);
    cfg.segment_bytes = 512 + rng.next_below(64 << 10);
    cfg.policy = static_cast<store::CachePolicyKind>(rng.next_below(3));
    cfg.rewind = rng.next_below(2) == 0;
    cfg.overlap_io = rng.next_below(2) == 0;
    cfg.selective_fetch = rng.next_below(2) == 0;

    algo::TileBfs bfs(0);
    store::ScrEngine(store, cfg).run(bfs);
    for (vid_t v = 0; v < el.vertex_count(); ++v)
      ASSERT_EQ(bfs.depth()[v], want_bfs[v])
          << "trial " << trial << " mem=" << cfg.stream_memory_bytes
          << " seg=" << cfg.segment_bytes;

    algo::TilePageRank pr(algo::PageRankOptions{0.85, 3, 0.0});
    store::ScrEngine(store, cfg).run(pr);
    for (vid_t v = 0; v < el.vertex_count(); ++v)
      ASSERT_NEAR(pr.ranks()[v], want_pr[v], 1e-4) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTest, ::testing::Range(0, 6));

// ---- block decode equals per-edge decode ------------------------------------
//
// for_each_block() is the hot path; visit_edges() is the oracle. Whatever the
// tile geometry, tuple format, or overlay splicing, both must visit the same
// edge multiset — and the block metadata (view/first/size) must tile the view
// exactly.

using EdgeMultiset = std::multiset<std::pair<vid_t, vid_t>>;

EdgeMultiset per_edge_multiset(const tile::TileView& v) {
  EdgeMultiset out;
  tile::visit_edges(v, [&](vid_t a, vid_t b) { out.insert({a, b}); });
  return out;
}

EdgeMultiset block_multiset(const tile::TileView& v) {
  EdgeMultiset out;
  std::size_t covered = 0;
  tile::for_each_block(v, [&](const tile::EdgeBlock& b) {
    EXPECT_EQ(b.view, &v);
    EXPECT_EQ(b.first, covered);
    EXPECT_GT(b.size, 0u);
    EXPECT_LE(b.size, tile::EdgeBlock::kMaxEdges);
    covered += b.size;
    for (std::uint32_t k = 0; k < b.size; ++k) out.insert({b.src[k], b.dst[k]});
  });
  EXPECT_EQ(covered, v.edge_count());
  return out;
}

TEST(PropertyEdgeBlock, BlockAndPerEdgeVisitIdenticalMultisets) {
  for (unsigned tb = 4; tb <= 16; ++tb) {
    const vid_t n = static_cast<vid_t>((3u << tb) + 17);  // ragged tile rows
    const std::uint64_t m = std::min<std::uint64_t>(2 * n, 60'000);
    auto el = graph::uniform_random(n, m, GraphKind::kDirected, 600 + tb);
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = tb;
    o.snb = tb % 3 != 0;  // exercise the fat-tuple branch too
    auto store = gstore::testing::make_store(dir, el, o);

    // Overlay splicing only exists for SNB stores.
    std::unique_ptr<ingest::DeltaBuffer> delta;
    if (o.snb) {
      delta = std::make_unique<ingest::DeltaBuffer>(store.grid(), store.meta(),
                                                    1 << 20);
      auto extra = graph::uniform_random(n, 500, GraphKind::kDirected, 900 + tb);
      delta->add_batch(extra.edges());
      store.attach_overlay(delta.get());
    }

    std::vector<std::uint8_t> buf;
    for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k) {
      const std::uint64_t bytes = store.tile_bytes(k);
      if (bytes > 0) {
        buf.resize(bytes);
        store.read_range(k, k + 1, buf.data());
      }
      const tile::TileView v = store.view(k, bytes > 0 ? buf.data() : nullptr);
      // Base tile, no overlay splicing.
      ASSERT_EQ(block_multiset(v), per_edge_multiset(v))
          << "tile_bits " << tb << " tile " << k;
      // Spliced overlay view, the way the engine builds it in process_one.
      if (delta != nullptr) {
        const std::span<const tile::SnbEdge> extra = delta->tile_edges(k);
        if (extra.empty()) continue;
        const tile::TileView ov = tile::splice_view(v, extra);
        ASSERT_EQ(block_multiset(ov), per_edge_multiset(ov))
            << "overlay tile_bits " << tb << " tile " << k;
      }
    }
  }
}

// Every codec — forced, not just whatever compress_tile picked — must push
// the same edge multiset through the block path, the per-edge path, and an
// overlay splice, at every tile width the grid supports.
TEST(PropertyEdgeBlock, EveryCodecMatchesRawBlocksAcrossTileBits) {
  Xoshiro256 rng(2026);
  for (unsigned tb = 4; tb <= 16; ++tb) {
    const std::uint64_t width = std::uint64_t{1} << tb;
    std::vector<tile::SnbEdge> edges(1 + rng.next_below(700));
    for (auto& e : edges) {
      e.src16 = static_cast<std::uint16_t>(rng.next_below(width));
      e.dst16 = static_cast<std::uint16_t>(rng.next_below(width));
    }
    std::sort(edges.begin(), edges.end());
    const vid_t src_base = static_cast<vid_t>(width * (1 + tb % 3));
    const vid_t dst_base = static_cast<vid_t>(width * (2 + tb % 5));
    EdgeMultiset want;
    for (const auto& e : edges)
      want.insert({src_base + e.src16, dst_base + e.dst16});
    std::vector<tile::SnbEdge> extra(edges.begin(),
                                     edges.begin() + edges.size() / 2);
    EdgeMultiset overlay_want;
    for (const auto& e : extra)
      overlay_want.insert({src_base + e.src16, dst_base + e.dst16});

    for (unsigned c = 0; c < tile::kTileCodecCount; ++c) {
      const auto codec = static_cast<tile::TileCodec>(c);
      const auto payload = tile::encode_tile_as(codec, edges);
      const tile::TileCodecInfo info = tile::parse_tile_payload(payload);
      ASSERT_EQ(info.codec, codec);
      ASSERT_EQ(info.edge_count, edges.size());

      tile::TileView v;
      v.src_base = src_base;
      v.dst_base = dst_base;
      v.codec = info.codec;
      v.src_bits = static_cast<std::uint8_t>(info.src_bits);
      v.dst_bits = static_cast<std::uint8_t>(info.dst_bits);
      v.coded_edges = info.edge_count;
      v.payload = info.body;
      if (info.codec == tile::TileCodec::kRaw)
        v.edges = std::span<const tile::SnbEdge>(
            reinterpret_cast<const tile::SnbEdge*>(info.body.data()),
            static_cast<std::size_t>(info.edge_count));

      ASSERT_EQ(block_multiset(v), want)
          << "codec " << c << " tile_bits " << tb;
      ASSERT_EQ(per_edge_multiset(v), want)
          << "codec " << c << " tile_bits " << tb;
      if (!extra.empty()) {
        const tile::TileView ov = tile::splice_view(v, extra);
        ASSERT_EQ(block_multiset(ov), overlay_want)
            << "overlay codec " << c << " tile_bits " << tb;
      }
    }
  }
}

// The v3 store and an uncompressed v2 store of the same graph must be
// indistinguishable through the block path — with and without an attached
// overlay — at every tile width.
TEST(PropertyEdgeBlock, CompressedStoreMatchesRawStoreWithOverlay) {
  for (unsigned tb = 4; tb <= 16; tb += 3) {
    const vid_t n = static_cast<vid_t>((3u << tb) + 17);
    const std::uint64_t m = std::min<std::uint64_t>(2 * n, 60'000);
    auto el = graph::uniform_random(n, m, GraphKind::kDirected, 1300 + tb);
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = tb;
    auto coded = gstore::testing::make_store(dir, el, o, {}, "coded");
    tile::ConvertOptions rawo = o;
    rawo.compress = false;
    auto raw = gstore::testing::make_store(dir, el, rawo, {}, "raw");
    ASSERT_EQ(coded.meta().version, 3u);
    ASSERT_TRUE(coded.packed_payloads());
    ASSERT_EQ(raw.meta().version, 2u);
    ASSERT_FALSE(raw.packed_payloads());

    auto extra = graph::uniform_random(n, 500, GraphKind::kDirected, 1700 + tb);
    ingest::DeltaBuffer dc(coded.grid(), coded.meta(), 1 << 20);
    dc.add_batch(extra.edges());
    coded.attach_overlay(&dc);
    ingest::DeltaBuffer dr(raw.grid(), raw.meta(), 1 << 20);
    dr.add_batch(extra.edges());
    raw.attach_overlay(&dr);

    ASSERT_EQ(coded.grid().tile_count(), raw.grid().tile_count());
    std::vector<std::uint8_t> cbuf, rbuf;
    for (std::uint64_t k = 0; k < coded.grid().tile_count(); ++k) {
      ASSERT_EQ(coded.tile_edge_count(k), raw.tile_edge_count(k));
      const std::uint64_t cb = coded.tile_bytes(k);
      const std::uint64_t rb = raw.tile_bytes(k);
      if (cb > 0) {
        cbuf.resize(cb);
        coded.read_range(k, k + 1, cbuf.data());
      }
      if (rb > 0) {
        rbuf.resize(rb);
        raw.read_range(k, k + 1, rbuf.data());
      }
      const tile::TileView cv = coded.view(k, cb > 0 ? cbuf.data() : nullptr);
      const tile::TileView rv = raw.view(k, rb > 0 ? rbuf.data() : nullptr);
      ASSERT_EQ(block_multiset(cv), block_multiset(rv))
          << "tile_bits " << tb << " tile " << k;
      const std::span<const tile::SnbEdge> ce = dc.tile_edges(k);
      const std::span<const tile::SnbEdge> re = dr.tile_edges(k);
      ASSERT_EQ(ce.size(), re.size());
      if (!ce.empty()) {
        ASSERT_EQ(block_multiset(tile::splice_view(cv, ce)),
                  block_multiset(tile::splice_view(rv, re)))
            << "overlay tile_bits " << tb << " tile " << k;
      }
    }
  }
}

// Backward compat: stores written under the v1/v2 formats (single start-edge
// index, raw SNB payloads) still open and decode the same multiset the v3
// writer produces for the same graph.
TEST(PropertyFormatCompat, LegacyStoresDecodeIdenticallyToV3) {
  auto el = graph::uniform_random(900, 4'000, GraphKind::kDirected, 77);
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 8;
  auto v3 = gstore::testing::make_store(dir, el, o, {}, "v3");
  tile::ConvertOptions rawo = o;
  rawo.compress = false;
  auto v2 = gstore::testing::make_store(dir, el, rawo, {}, "v2");
  // A v1 store is a v2 store whose headers predate the generation field:
  // version byte 1, generation bytes zero (they were reserved zeros).
  tile::convert_to_tiles(el, dir.file("v1"), rawo);
  auto patch32 = [](const std::string& path, std::uint64_t off,
                    std::uint32_t val) {
    io::File f(path, io::OpenMode::kReadWrite);
    f.pwrite_full(&val, sizeof(val), off);
  };
  patch32(tile::TileStore::sei_path(dir.file("v1")), 8, 1);
  patch32(tile::TileStore::sei_path(dir.file("v1")), 48, 0);
  patch32(tile::TileStore::tiles_path(dir.file("v1")), 8, 1);
  auto v1 = tile::TileStore::open(dir.file("v1"));

  ASSERT_EQ(v3.meta().version, 3u);
  ASSERT_EQ(v2.meta().version, 2u);
  ASSERT_EQ(v1.meta().version, 1u);

  auto edges_of = [](tile::TileStore& s) {
    auto v = gstore::testing::decode_all_edges(s);
    std::sort(v.begin(), v.end(), [](const graph::Edge& a,
                                     const graph::Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    return v;
  };
  const auto want = edges_of(v3);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(edges_of(v2), want);
  EXPECT_EQ(edges_of(v1), want);
}

// ---- conversion round-trip over random graphs -------------------------------

TEST(PropertyConvert, RandomGraphsSurviveRoundTrip) {
  Xoshiro256 rng(424242);
  for (int trial = 0; trial < 12; ++trial) {
    const vid_t n = static_cast<vid_t>(2 + rng.next_below(400));
    const std::uint64_t m = rng.next_below(4 * n + 1);
    const GraphKind kind =
        rng.next_below(2) ? GraphKind::kUndirected : GraphKind::kDirected;
    auto el = graph::uniform_random(n, m, kind, 99 + trial);

    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = static_cast<unsigned>(1 + rng.next_below(8));
    o.group_side = static_cast<std::uint32_t>(1 + rng.next_below(5));
    o.snb = rng.next_below(2) == 0;
    auto store = gstore::testing::make_store(dir, el, o);

    // The decoded multiset must equal the canonicalized input multiset.
    std::multiset<std::pair<vid_t, vid_t>> want;
    for (graph::Edge e : el.edges()) {
      if (e.src == e.dst) continue;
      if (kind == GraphKind::kUndirected && e.src > e.dst)
        std::swap(e.src, e.dst);
      want.insert({e.src, e.dst});
    }
    std::multiset<std::pair<vid_t, vid_t>> have;
    for (const graph::Edge& e : gstore::testing::decode_all_edges(store))
      have.insert({e.src, e.dst});
    ASSERT_EQ(have, want) << "trial " << trial << " n=" << n << " m=" << m;
  }
}

// ---- WCC equals reference on random sparse graphs ---------------------------

TEST(PropertyWcc, RandomSparseGraphs) {
  for (int trial = 0; trial < 8; ++trial) {
    auto el = graph::uniform_random(300, 200 + 40u * trial,
                                    GraphKind::kUndirected, 5 + trial);
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = 5;
    auto store = gstore::testing::make_store(dir, el, o);
    algo::TileWcc wcc;
    store::ScrEngine(store).run(wcc);
    const auto want = algo::ref_wcc(el);
    for (vid_t v = 0; v < el.vertex_count(); ++v)
      ASSERT_EQ(wcc.labels()[v], want[v]) << "trial " << trial;
  }
}

// ---- compression codec fuzz -------------------------------------------------

TEST(PropertyCompress, RoundTripsArbitraryTiles) {
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<tile::SnbEdge> edges(rng.next_below(300));
    // Mix of shapes: clustered rows, duplicates, extremes.
    const std::uint32_t row_spread = 1 + static_cast<std::uint32_t>(
                                             rng.next_below(1 << 16));
    for (auto& e : edges) {
      e.src16 = static_cast<std::uint16_t>(rng.next_below(row_spread));
      e.dst16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
    }
    if (!edges.empty() && trial % 3 == 0) {
      edges.push_back(edges.front());  // duplicates
      edges.push_back({0xffff, 0xffff});
      edges.push_back({0, 0});
    }
    auto payload = tile::compress_tile(edges);
    auto back = tile::decompress_tile(payload);
    // Order-preserving round trip: compress_tile never reorders.
    ASSERT_EQ(back, edges) << "trial " << trial;
  }
}

// ---- cache pool invariants under random operations ---------------------------

TEST(PropertyCachePool, InvariantsHoldUnderRandomOps) {
  Xoshiro256 rng(31337);
  store::CachePool pool(10'000);
  std::map<std::uint64_t, std::size_t> shadow;  // idx -> size
  std::vector<std::uint8_t> blob(2'000, 0x5c);

  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t idx = rng.next_below(40);
    switch (rng.next_below(4)) {
      case 0: {  // insert
        const std::size_t sz = rng.next_below(1'500);
        const std::size_t old = shadow.count(idx) ? shadow[idx] : 0;
        const std::uint64_t used_without = pool.used() - old;
        const bool fits = used_without + sz <= pool.budget();
        const bool ok = pool.insert(idx, blob.data(), sz);
        ASSERT_EQ(ok, fits) << "op " << op;
        if (ok) {
          shadow[idx] = sz;
        } else {
          shadow.erase(idx);  // failed insert erases the old entry
        }
        break;
      }
      case 1:  // erase
        pool.erase(idx);
        shadow.erase(idx);
        break;
      case 2:  // touch
        pool.touch(idx);
        break;
      case 3: {  // evict
        const std::uint64_t need = rng.next_below(4'000);
        pool.evict_lru(need);
        // Rebuild the shadow from the pool (eviction picks by recency,
        // which the shadow does not model).
        std::map<std::uint64_t, std::size_t> rebuilt;
        for (const auto& e : pool.entries()) rebuilt[e.layout_idx] = e.bytes;
        shadow = std::move(rebuilt);
        ASSERT_GE(pool.free_bytes() + 0, 0u);
        break;
      }
    }
    // Invariants after every operation.
    ASSERT_LE(pool.used(), pool.budget()) << "op " << op;
    std::uint64_t sum = 0;
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& e : pool.entries()) {
      sum += e.bytes;
      if (!first) {
        ASSERT_GT(e.layout_idx, prev) << "entries must be sorted";
      }
      prev = e.layout_idx;
      first = false;
    }
    ASSERT_EQ(sum, pool.used()) << "op " << op;
    ASSERT_EQ(pool.tile_count(), shadow.size()) << "op " << op;
  }
}

// ---- tier map vs naive per-byte reference ------------------------------------

TEST(PropertyTierMap, MatchesNaiveReference) {
  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    io::TierMap map;
    std::vector<unsigned> byte_tier(2'000, 0);  // default fast
    std::uint64_t pos = rng.next_below(50);
    while (pos < byte_tier.size()) {
      const std::uint64_t len = 1 + rng.next_below(200);
      const std::uint64_t end = std::min<std::uint64_t>(pos + len,
                                                        byte_tier.size());
      const unsigned tier = static_cast<unsigned>(rng.next_below(2));
      map.add_range(pos, end, tier);
      for (std::uint64_t b = pos; b < end; ++b) byte_tier[b] = tier;
      pos = end + rng.next_below(100);
    }
    for (int probe = 0; probe < 50; ++probe) {
      const std::uint64_t a = rng.next_below(byte_tier.size());
      const std::uint64_t b = a + rng.next_below(byte_tier.size() - a + 1);
      std::uint64_t slow = 0;
      for (std::uint64_t k = a; k < b; ++k) slow += byte_tier[k] == 1;
      const auto [got_fast, got_slow] = map.split(a, b);
      ASSERT_EQ(got_slow, slow) << "trial " << trial;
      ASSERT_EQ(got_fast, (b - a) - slow) << "trial " << trial;
    }
  }
}

// ---- histogram vs naive -------------------------------------------------------

TEST(PropertyHistogram, CountsMatchNaive) {
  Xoshiro256 rng(1618);
  LogHistogram h(10);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_below(1'000'000);
    h.add(v);
    values.push_back(v);
  }
  ASSERT_EQ(h.total(), values.size());
  for (const std::uint64_t bound : {0u, 1u, 10u, 999u, 123456u, 2000000u}) {
    const auto naive = static_cast<std::uint64_t>(
        std::count_if(values.begin(), values.end(),
                      [&](std::uint64_t v) { return v < bound; }));
    ASSERT_EQ(h.count_below(bound), naive) << "bound " << bound;
  }
  std::uint64_t bucket_sum = 0;
  for (const auto& b : h.buckets()) bucket_sum += b.count;
  ASSERT_EQ(bucket_sum, h.total());
}

// ---- SNB encode/decode at tile boundaries ------------------------------------
//
// The 4-byte SNB tuple drops all high bits; corruption shows up exactly at
// tile edges, so the boundary ids are tested explicitly on top of the
// random sweep.

TEST(PropertySnb, RoundTripsAtTileBoundaries) {
  for (const unsigned tile_bits : {4u, 8u, 16u}) {
    const vid_t width = vid_t{1} << tile_bits;
    const vid_t vertex_count = width * 7;  // 7×7 tile grid
    tile::Grid grid(vertex_count, /*symmetric=*/false, tile_bits);
    ASSERT_EQ(grid.p(), 7u);

    const std::uint32_t last = grid.p() - 1;
    const std::vector<std::uint32_t> tiles = {0, 1, last};
    for (const std::uint32_t i : tiles) {
      for (const std::uint32_t j : tiles) {
        const vid_t sb = grid.tile_base(i);
        const vid_t db = grid.tile_base(j);
        // First, last, and one interior local id of each tile row/column.
        const std::vector<vid_t> src_ids = {sb, sb + width - 1, sb + width / 2};
        const std::vector<vid_t> dst_ids = {db, db + width - 1, db + width / 2};
        for (const vid_t s : src_ids) {
          for (const vid_t d : dst_ids) {
            const tile::SnbEdge e = tile::snb_encode(s, d, sb, db);
            const graph::Edge back = tile::snb_decode(e, sb, db);
            ASSERT_EQ(back.src, s) << "tile_bits=" << tile_bits;
            ASSERT_EQ(back.dst, d) << "tile_bits=" << tile_bits;
          }
        }
      }
    }

    // Random sweep inside random tiles.
    Xoshiro256 rng(tile_bits * 271 + 9);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto i = static_cast<std::uint32_t>(rng.next_below(grid.p()));
      const auto j = static_cast<std::uint32_t>(rng.next_below(grid.p()));
      const vid_t s = grid.tile_base(i) + rng.next_below(width);
      const vid_t d = grid.tile_base(j) + rng.next_below(width);
      const graph::Edge back = tile::snb_decode(
          tile::snb_encode(s, d, grid.tile_base(i), grid.tile_base(j)),
          grid.tile_base(i), grid.tile_base(j));
      ASSERT_EQ(back.src, s);
      ASSERT_EQ(back.dst, d);
    }
  }
}

// ---- compressed degrees: MSB overflow flagging ------------------------------

TEST(PropertyDegrees, OverflowFlagRoundTrips) {
  using graph::CompressedDegrees;
  using graph::degree_t;
  Xoshiro256 rng(4242);

  std::vector<degree_t> degrees(20'000);
  std::size_t want_overflow = 0;
  for (auto& d : degrees) {
    if (rng.next_below(50) == 0) {
      // Power-law tail: exceeds the 15-bit inline range, must take the
      // overflow path (MSB set, low bits index the 4-byte table).
      d = CompressedDegrees::kInlineMax + 1 +
          static_cast<degree_t>(rng.next_below(1'000'000));
      ++want_overflow;
    } else {
      d = static_cast<degree_t>(rng.next_below(CompressedDegrees::kInlineMax + 1));
    }
  }
  // Pin the boundary values explicitly.
  degrees[0] = 0;
  degrees[1] = CompressedDegrees::kInlineMax;       // largest inline
  degrees[2] = CompressedDegrees::kInlineMax + 1;   // smallest overflow
  want_overflow = static_cast<std::size_t>(
      std::count_if(degrees.begin(), degrees.end(), [](degree_t d) {
        return d > CompressedDegrees::kInlineMax;
      }));

  const auto cd = CompressedDegrees::build(degrees);
  ASSERT_TRUE(cd.compressed());
  ASSERT_EQ(cd.size(), degrees.size());
  ASSERT_EQ(cd.overflow_count(), want_overflow);
  for (vid_t v = 0; v < cd.size(); ++v)
    ASSERT_EQ(cd[v], degrees[v]) << "vertex " << v;
  // 2-byte inline entries + 4-byte overflow table beats the plain array.
  ASSERT_LT(cd.storage_bytes(), degrees.size() * sizeof(degree_t));

  // Too many heavy vertices → format falls back, still lossless.
  std::vector<degree_t> heavy(CompressedDegrees::kMaxOverflow + 1,
                              CompressedDegrees::kInlineMax + 7);
  const auto fallback = CompressedDegrees::build(heavy);
  ASSERT_FALSE(fallback.compressed());
  for (vid_t v = 0; v < fallback.size(); ++v) ASSERT_EQ(fallback[v], heavy[v]);
}

}  // namespace
}  // namespace gstore
// Appended: priority-schedule equivalence (ISSUE 10).
//
// The worklist scheduler changes WHICH tiles are fetched WHEN — never what
// the algorithms compute. BFS and SSSP converge to order-independent
// fixpoints, so priority mode must be bit-identical to grid order at every
// tile width, with and without an overlay, on v2 and v3 stores. PageRank-
// delta's fixed-point truncation lands at different drain times across
// schedules, so it agrees to within the tolerance instead.
#include "algo/pagerank_delta.h"
#include "algo/sssp.h"

namespace gstore {
namespace {

store::EngineConfig schedule_cfg(store::ScheduleMode mode) {
  store::EngineConfig cfg;
  cfg.stream_memory_bytes = 96 << 10;  // several slide phases per round
  cfg.segment_bytes = 8 << 10;
  cfg.schedule = mode;
  return cfg;
}

void expect_bfs_sssp_schedule_identical(tile::TileStore& store,
                                        const std::string& label) {
  const auto grid = schedule_cfg(store::ScheduleMode::kGrid);
  const auto prio = schedule_cfg(store::ScheduleMode::kPriority);
  {
    algo::TileBfs a(0), b(0);
    store::ScrEngine(store, grid).run(a);
    const auto stats = store::ScrEngine(store, prio).run(b);
    ASSERT_EQ(a.depth(), b.depth()) << label;
    EXPECT_GT(stats.rounds, 0u) << label;
  }
  {
    algo::TileSssp a(0), b(0);
    store::ScrEngine(store, grid).run(a);
    store::ScrEngine(store, prio).run(b);
    const auto& da = a.distances();
    const auto& db = b.distances();
    ASSERT_EQ(da.size(), db.size()) << label;
    for (std::size_t v = 0; v < da.size(); ++v)
      ASSERT_EQ(da[v], db[v]) << label << " vertex " << v;
  }
}

TEST(PropertyPriority, BfsSsspBitIdenticalToGridAcrossTileBits) {
  for (unsigned tb = 4; tb <= 16; tb += 2) {
    const vid_t n = static_cast<vid_t>((3u << tb) + 17);
    const std::uint64_t m = std::min<std::uint64_t>(2 * n, 50'000);
    auto el = graph::uniform_random(n, m, GraphKind::kUndirected, 8100 + tb);
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = tb;
    auto store = gstore::testing::make_store(dir, el, o);
    expect_bfs_sssp_schedule_identical(store, "v3 tb=" + std::to_string(tb));

    // Same store with a WAL-style overlay spliced in.
    ingest::DeltaBuffer delta(store.grid(), store.meta(), 1 << 20);
    auto extra =
        graph::uniform_random(n, 600, GraphKind::kUndirected, 9100 + tb);
    delta.add_batch(extra.edges());
    store.attach_overlay(&delta);
    expect_bfs_sssp_schedule_identical(
        store, "v3+overlay tb=" + std::to_string(tb));
  }
}

TEST(PropertyPriority, BfsSsspBitIdenticalOnUncompressedV2Stores) {
  for (const unsigned tb : {5u, 9u, 13u}) {
    const vid_t n = static_cast<vid_t>((3u << tb) + 17);
    const std::uint64_t m = std::min<std::uint64_t>(2 * n, 40'000);
    auto el = graph::uniform_random(n, m, GraphKind::kUndirected, 5400 + tb);
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = tb;
    o.compress = false;
    auto store = gstore::testing::make_store(dir, el, o);
    ASSERT_EQ(store.meta().version, 2u);
    expect_bfs_sssp_schedule_identical(store, "v2 tb=" + std::to_string(tb));

    ingest::DeltaBuffer delta(store.grid(), store.meta(), 1 << 20);
    auto extra =
        graph::uniform_random(n, 400, GraphKind::kUndirected, 6400 + tb);
    delta.add_batch(extra.edges());
    store.attach_overlay(&delta);
    expect_bfs_sssp_schedule_identical(
        store, "v2+overlay tb=" + std::to_string(tb));
  }
}

TEST(PropertyPriority, DirectedAndInEdgeStoresMatchAcrossSchedules) {
  auto el = graph::uniform_random(3000, 12'000, GraphKind::kDirected, 321);
  for (const bool in_edges : {false, true}) {
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = 6;
    o.out_edges = !in_edges;
    auto store = gstore::testing::make_store(dir, el, o);
    expect_bfs_sssp_schedule_identical(
        store, in_edges ? "in-edges" : "out-edges");
  }
}

TEST(PropertyPriority, PageRankDeltaAgreesAcrossSchedulesAndWithPowerIteration) {
  auto el = graph::kronecker(10, 6, GraphKind::kUndirected, 99);
  el.normalize();
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 6;
  auto store = gstore::testing::make_store(dir, el, o);

  algo::PageRankDeltaOptions dopt;
  dopt.tolerance = 1e-9;
  algo::TilePageRankDelta grid_pr(dopt), prio_pr(dopt);
  store::ScrEngine(store, schedule_cfg(store::ScheduleMode::kGrid))
      .run(grid_pr);
  const auto stats =
      store::ScrEngine(store, schedule_cfg(store::ScheduleMode::kPriority))
          .run(prio_pr);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_LT(grid_pr.residual_mass(), 1e-8);
  EXPECT_LT(prio_pr.residual_mass(), 1e-8);

  // Cross-schedule agreement: truncation order differs, the fixpoint not.
  const auto ga = grid_pr.ranks();
  const auto pa = prio_pr.ranks();
  ASSERT_EQ(ga.size(), pa.size());
  for (std::size_t v = 0; v < ga.size(); ++v)
    ASSERT_NEAR(ga[v], pa[v], 1e-6) << "vertex " << v;

  // Against the converged pull-based power iteration: same linear system
  // (dangling mass evaporates in both formulations).
  algo::TilePageRank power(algo::PageRankOptions{0.85, 300, 1e-10});
  store::ScrEngine(store).run(power);
  const auto& wa = power.ranks();
  double drift = 0;
  for (std::size_t v = 0; v < ga.size(); ++v)
    drift = std::max(drift, std::abs(double(ga[v]) - double(wa[v])));
  EXPECT_LT(drift, 1e-5) << "pagerank-delta fixpoint drifted from power "
                            "iteration";
}

}  // namespace
}  // namespace gstore
