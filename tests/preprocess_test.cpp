// Tests for the preprocessing substrate: text loaders, vertex relabeling,
// and deep store verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generator.h"
#include "graph/relabel.h"
#include "graph/text_io.h"
#include "io/file.h"
#include "test_util.h"
#include "tile/verify.h"
#include "util/status.h"

namespace gstore {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::GraphKind;
using graph::vid_t;

// ---- text I/O ------------------------------------------------------------

TEST(TextIo, ParsesPlainEdges) {
  const auto el = graph::parse_text_edges("0 1\n1 2\n2 0\n");
  EXPECT_EQ(el.vertex_count(), 3u);
  EXPECT_EQ(el.edge_count(), 3u);
  EXPECT_EQ(el.edges()[1], (Edge{1, 2}));
}

TEST(TextIo, SkipsCommentsAndBlanks) {
  const auto el = graph::parse_text_edges(
      "# SNAP style header\n% matrixmarket style\n\n  \n5 7\n");
  EXPECT_EQ(el.edge_count(), 1u);
  EXPECT_EQ(el.vertex_count(), 8u);
}

TEST(TextIo, AcceptsTabsCommasAndWeights) {
  const auto el = graph::parse_text_edges("0\t1\t2.5\n1,2\n3 4 -1e3\n");
  EXPECT_EQ(el.edge_count(), 3u);
  EXPECT_EQ(el.edges()[2], (Edge{3, 4}));
}

TEST(TextIo, RejectsGarbageWithLineNumber) {
  try {
    graph::parse_text_edges("0 1\nfoo bar\n");
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
  EXPECT_THROW(graph::parse_text_edges("0 1 pizza\n"), FormatError);
  EXPECT_THROW(graph::parse_text_edges("0\n"), FormatError);
  EXPECT_THROW(graph::parse_text_edges("0 99999999999\n"), FormatError);
}

TEST(TextIo, MinVertexCountRespected) {
  graph::TextReadOptions o;
  o.min_vertex_count = 100;
  const auto el = graph::parse_text_edges("0 1\n", o);
  EXPECT_EQ(el.vertex_count(), 100u);
}

TEST(TextIo, EmptyInputYieldsValidGraph) {
  const auto el = graph::parse_text_edges("# nothing\n");
  EXPECT_EQ(el.edge_count(), 0u);
  EXPECT_GE(el.vertex_count(), 1u);
}

TEST(TextIo, FileRoundTrip) {
  io::TempDir dir;
  auto el = graph::kronecker(8, 4, GraphKind::kDirected, 3);
  graph::write_text_edges(dir.file("g.txt"), el);
  graph::TextReadOptions o;
  o.kind = GraphKind::kDirected;
  o.min_vertex_count = el.vertex_count();
  const auto back = graph::read_text_edges(dir.file("g.txt"), o);
  EXPECT_EQ(back.edges(), el.edges());
  EXPECT_EQ(back.vertex_count(), el.vertex_count());
}

TEST(TextIo, MissingFileThrows) {
  EXPECT_THROW(graph::read_text_edges("/nonexistent/graph.txt"), IoError);
}

// ---- relabeling ------------------------------------------------------------

TEST(Relabel, DegreeOrderPutsHubsFirst) {
  auto el = graph::star(50);  // vertex 0 is the hub already
  // Move the hub to id 49 first, then check degree_order restores it to 0.
  graph::Permutation flip(50);
  for (vid_t v = 0; v < 50; ++v) flip[v] = 49 - v;
  auto flipped = graph::apply_permutation(el, flip);
  EXPECT_EQ(flipped.degrees()[49], 49u);

  const auto perm = graph::degree_order(flipped);
  auto restored = graph::apply_permutation(flipped, perm);
  EXPECT_EQ(restored.degrees()[0], 49u);  // hub back at id 0
}

TEST(Relabel, PermutationPreservesStructure) {
  auto el = graph::kronecker(8, 4, GraphKind::kUndirected, 9);
  el.normalize();
  const auto perm = graph::shuffle_order(el.vertex_count(), 42);
  auto shuffled = graph::apply_permutation(el, perm);

  // Degree multiset is invariant under relabeling.
  auto d1 = el.degrees();
  auto d2 = shuffled.degrees();
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(shuffled.edge_count(), el.edge_count());
}

TEST(Relabel, ShuffleIsAPermutation) {
  const auto perm = graph::shuffle_order(1000, 7);
  std::set<vid_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
  // Deterministic per seed, different across seeds.
  EXPECT_EQ(graph::shuffle_order(1000, 7), perm);
  EXPECT_NE(graph::shuffle_order(1000, 8), perm);
}

TEST(Relabel, SizeMismatchThrows) {
  auto el = graph::path(10);
  EXPECT_THROW(graph::apply_permutation(el, graph::Permutation(5)), Error);
}

TEST(Relabel, DegreeOrderImprovesTileConcentration) {
  // Hubs-first relabeling must concentrate edges into fewer tiles than a
  // random shuffle of the same graph.
  auto el = graph::twitter_like(11, 8, GraphKind::kDirected);
  auto shuffled =
      graph::apply_permutation(el, graph::shuffle_order(el.vertex_count(), 3));
  auto hubs_first = graph::relabel_by_degree(shuffled);

  auto occupied_tiles = [](const EdgeList& g) {
    io::TempDir dir;
    tile::ConvertOptions o;
    o.tile_bits = 6;
    auto store = gstore::testing::make_store(dir, g, o);
    std::uint64_t occupied = 0;
    for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k)
      if (store.tile_edge_count(k) > 0) ++occupied;
    return occupied;
  };
  EXPECT_LT(occupied_tiles(hubs_first), occupied_tiles(shuffled));
}

// ---- verify_store -----------------------------------------------------------

TEST(VerifyStore, CleanStorePasses) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, GraphKind::kUndirected, 31);
  tile::ConvertOptions o;
  o.tile_bits = 5;
  tile::convert_to_tiles(el, dir.file("g"), o);
  const auto report = tile::verify_store(dir.file("g"));
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
  EXPECT_GT(report.edges_checked, 0u);
  EXPECT_EQ(report.tiles_checked, 0u + tile::TileStore::open(dir.file("g"))
                                            .grid()
                                            .tile_count());
}

TEST(VerifyStore, AllFormatVariantsPass) {
  io::TempDir dir;
  auto el = graph::kronecker(8, 5, GraphKind::kDirected, 32);
  el.normalize();
  int idx = 0;
  for (const bool snb : {true, false})
    for (const bool out_edges : {true, false}) {
      tile::ConvertOptions o;
      o.tile_bits = 5;
      o.snb = snb;
      o.out_edges = out_edges;
      const std::string base = dir.file("v" + std::to_string(idx++));
      tile::convert_to_tiles(el, base, o);
      const auto report = tile::verify_store(base);
      EXPECT_TRUE(report.ok)
          << "snb=" << snb << " out=" << out_edges << ": "
          << (report.problems.empty() ? "" : report.problems[0]);
    }
}

TEST(VerifyStore, DetectsCorruptedTileData) {
  io::TempDir dir;
  auto el = graph::complete(40);  // dense: any corruption hits real tuples
  tile::ConvertOptions o;
  o.tile_bits = 4;
  tile::convert_to_tiles(el, dir.file("g"), o);
  {
    // Flip high bytes mid-file so some tuple decodes out of range.
    io::File f(dir.file("g.tiles"), io::OpenMode::kReadWrite);
    std::vector<std::uint8_t> junk(64, 0xee);
    f.pwrite_full(junk.data(), junk.size(), 64 + 100);
  }
  const auto report = tile::verify_store(dir.file("g"));
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.problems.empty());
}

TEST(VerifyStore, ReportsUnopenableStore) {
  const auto report = tile::verify_store("/nonexistent/base");
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find("open failed"), std::string::npos);
}

TEST(VerifyStore, CapsProblemCount) {
  io::TempDir dir;
  auto el = graph::complete(64);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  tile::convert_to_tiles(el, dir.file("g"), o);
  {
    io::File f(dir.file("g.tiles"), io::OpenMode::kReadWrite);
    std::vector<std::uint8_t> junk(2048, 0xff);  // wreck many tuples
    f.pwrite_full(junk.data(), junk.size(), 64);
  }
  const auto report = tile::verify_store(dir.file("g"), 5);
  EXPECT_FALSE(report.ok);
  EXPECT_LE(report.problems.size(), 6u);  // cap plus at most one in-flight
}

}  // namespace
}  // namespace gstore
