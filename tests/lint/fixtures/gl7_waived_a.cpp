// GL7 waived fixture, TU 1 of 2: same forward edge as
// gl7_flagged_a.cpp on the OrderPairW lock pair. The waiver sits on the
// back edge in gl7_waived_b.cpp — a cycle is waivable at any one of its
// acquisition sites.
#include "gl7_pair.h"

namespace gstore::lintfix {

void OrderPairW::fwd() {
  MutexLock la(a);
  MutexLock lb(b);
}

}  // namespace gstore::lintfix
