// GL7 waived fixture, TU 2 of 2: the back edge of the ABBA cycle,
// silenced by an audited GL-SAFE waiver on its acquisition site.
// gstore_lint must come back clean.
#include "gl7_pair.h"

namespace gstore::lintfix {

void OrderPairW::rev() {
  MutexLock lb(b);
  // GL-SAFE(GL7): fixture twin — rev() only runs during single-threaded
  // teardown, after every fwd() caller has drained.
  MutexLock la(a);
}

}  // namespace gstore::lintfix
