// GL6 waived fixture, TU 2 of 2: the identical cross-TU taint path as
// gl6_flagged_b.cpp, silenced by an audited GL-SAFE waiver at the sink.
// gstore_lint must come back clean.
#include <cstdint>
#include <vector>

#include "ingest/wal.h"

namespace gstore::lintfix {

std::uint64_t frame_edges_ok(const ingest::WalFrameHeader& h);

void reserve_frame_ok(const ingest::WalFrameHeader& h,
                      std::vector<std::uint64_t>& out) {
  // GL-SAFE(GL6): fixture twin — every real caller cross-checks
  // edge_count against payload_bytes before handing the header over.
  out.resize(frame_edges_ok(h));
}

}  // namespace gstore::lintfix
