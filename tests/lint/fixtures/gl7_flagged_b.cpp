// GL7 negative fixture, TU 2 of 2: acquires OrderPair::b then
// OrderPair::a — the back edge of the ABBA cycle whose forward edge is
// in gl7_flagged_a.cpp.
#include "gl7_pair.h"

namespace gstore::lintfix {

void OrderPair::rev() {
  MutexLock lb(b);
  MutexLock la(a);
}

}  // namespace gstore::lintfix
