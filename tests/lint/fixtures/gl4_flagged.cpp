// GL4 negative fixture (run with --gl4-all): unchecked arithmetic on a
// field read from a wire record. gstore_lint must flag the multiply.
#include <cstdint>

#include "ingest/wal.h"

namespace gstore::lintfix {

std::uint64_t payload_bytes(const ingest::WalFrameHeader& h);

std::uint64_t payload_bytes(const ingest::WalFrameHeader& h) {
  return static_cast<std::uint64_t>(h.edge_count) * 24;
}

}  // namespace gstore::lintfix
