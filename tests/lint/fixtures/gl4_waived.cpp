// GL4 positive fixture: the same wire-field arithmetic routed through the
// checked helper, plus a waived raw form. gstore_lint must stay quiet.
#include <cstdint>

#include "ingest/wal.h"
#include "util/checked.h"

namespace gstore::lintfix {

std::uint64_t payload_bytes(const ingest::WalFrameHeader& h);
std::uint64_t raw_payload_bytes(const ingest::WalFrameHeader& h);

std::uint64_t payload_bytes(const ingest::WalFrameHeader& h) {
  return checked_mul(h.edge_count, 24, "fixture payload size");
}

// GL-SAFE(GL4): fixture — edge_count is 32-bit, so x24 fits in 64 bits.
// (GENERIC attributes a single-statement body to the header line, so the
// waiver sits on both the header and the return.)
std::uint64_t raw_payload_bytes(const ingest::WalFrameHeader& h) {
  // GL-SAFE(GL4): fixture — see the 32-bit range note above.
  return static_cast<std::uint64_t>(h.edge_count) * 24;
}

}  // namespace gstore::lintfix
