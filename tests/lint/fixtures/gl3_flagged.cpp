// GL3 negative fixture: a Completion's byte count is consumed before its
// ok/error fields were inspected. gstore_lint must flag the read.
#include <cstddef>

#include "io/async_engine.h"

namespace gstore::lintfix {

std::size_t consume(const io::Completion& c);

std::size_t consume(const io::Completion& c) {
  return c.bytes;
}

}  // namespace gstore::lintfix
