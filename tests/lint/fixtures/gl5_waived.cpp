// GL5 positive fixture: the unwind-path callee is noexcept itself and a
// second, throwing callee carries an audited waiver. Must stay quiet.
#include <vector>

namespace gstore::lintfix5 {

void shrink(std::vector<int>& v) noexcept;
void grow(std::vector<int>& v);
void quiesce(std::vector<int>& v) noexcept;

void shrink(std::vector<int>& v) noexcept {
  if (!v.empty()) v.pop_back();
}

void grow(std::vector<int>& v) { v.resize(v.size() + 1); }

void quiesce(std::vector<int>& v) noexcept {
  shrink(v);
  // GL-SAFE(GL5): fixture — growth failure here terminates by design.
  grow(v);
}

}  // namespace gstore::lintfix5
