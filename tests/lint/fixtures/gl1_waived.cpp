// GL1 positive fixture: the same shape as gl1_flagged.cpp with audited
// GL-SAFE waivers on each guarded statement. gstore_lint must stay quiet.
#include <unistd.h>

#include <vector>

#include "util/sync.h"

namespace gstore::lintfix {

class Spooler {
 public:
  void flush();

 private:
  Mutex mu_{"lintfix::Spooler"};
  std::vector<char> log_;
};

void Spooler::flush() {
  MutexLock lock(mu_);
  // GL-SAFE(GL1): fixture — the write is the serialized handoff itself.
  ::write(2, "x", 1);
  // GL-SAFE(GL1): fixture — the log is the guarded resource; growth is
  // bounded by the one-byte append.
  log_.push_back('x');
}

}  // namespace gstore::lintfix
