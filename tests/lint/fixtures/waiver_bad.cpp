// Waiver-audit fixture: a reasonless GL-SAFE must itself be reported as
// [GL-WAIVER] — an unexplained suppression is indistinguishable from a
// silenced bug.
#include <unistd.h>

#include "util/sync.h"

namespace gstore::lintfix {

class Quiet {
 public:
  void flush();

 private:
  Mutex mu_{"lintfix::Quiet"};
};

void Quiet::flush() {
  MutexLock lock(mu_);
  // GL-SAFE(GL1):
  ::write(2, "x", 1);
}

}  // namespace gstore::lintfix
