// GL5 negative fixture: a noexcept quiesce root calls a function that can
// throw, unshielded. gstore_lint must flag the call.
#include <vector>

namespace gstore::lintfix5 {

void grow(std::vector<int>& v);
void quiesce(std::vector<int>& v) noexcept;

void grow(std::vector<int>& v) { v.resize(v.size() + 1); }

void quiesce(std::vector<int>& v) noexcept { grow(v); }

}  // namespace gstore::lintfix5
