// Shared by the GL7 fixture TUs: one lock pair, two methods, each
// defined in a different .cpp so the A->B / B->A cycle only closes once
// both TUs' acquisition graphs are merged.
#pragma once

#include "util/sync.h"

namespace gstore::lintfix {

struct OrderPair {
  Mutex a{"OrderPair::a"};
  Mutex b{"OrderPair::b"};
  void fwd();  // gl7_flagged_a.cpp: acquires a, then b
  void rev();  // gl7_flagged_b.cpp: acquires b, then a
};

struct OrderPairW {
  Mutex a{"OrderPairW::a"};
  Mutex b{"OrderPairW::b"};
  void fwd();  // gl7_waived_a.cpp: acquires a, then b
  void rev();  // gl7_waived_b.cpp: acquires b, then a (waived)
};

}  // namespace gstore::lintfix
