// GL6 waived fixture, TU 1 of 2: same wire-field pass-through as
// gl6_flagged_a.cpp (distinct name so the twin sets never collide in one
// analysis run). The waiver lives at the sink in gl6_waived_b.cpp.
#include <cstdint>

#include "ingest/wal.h"

namespace gstore::lintfix {

std::uint64_t frame_edges_ok(const ingest::WalFrameHeader& h) {
  return h.edge_count;
}

}  // namespace gstore::lintfix
