// R4 negative fixture: raw std synchronization hidden behind a typedef —
// invisible to the textual lint, visible to the AST. Must be flagged.
#include <mutex>

namespace gstore::lintfixr4 {

using Hidden = std::mutex;

class Counter {
 public:
  void bump();

 private:
  Hidden mu_;
  int n_ = 0;
};

void Counter::bump() {
  std::lock_guard<Hidden> g(mu_);
  ++n_;
}

}  // namespace gstore::lintfixr4
