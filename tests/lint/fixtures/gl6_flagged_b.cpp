// GL6 negative fixture, TU 2 of 2: the untrusted count crosses the TU
// boundary via frame_edges() (gl6_flagged_a.cpp) and drives a resize()
// with no range check anywhere on the path. gstore_lint must flag the
// resize with the full cross-function taint chain.
#include <cstdint>
#include <vector>

#include "ingest/wal.h"

namespace gstore::lintfix {

std::uint64_t frame_edges(const ingest::WalFrameHeader& h);

void reserve_frame(const ingest::WalFrameHeader& h,
                   std::vector<std::uint64_t>& out) {
  out.resize(frame_edges(h));
}

}  // namespace gstore::lintfix
