// GL6 negative fixture, TU 1 of 2: reads a wire-struct field and hands
// it on through its return value. The sink lives in gl6_flagged_b.cpp —
// the finding only appears when the summary fixpoint carries this
// function's taint across the TU boundary into the caller.
#include <cstdint>

#include "ingest/wal.h"

namespace gstore::lintfix {

std::uint64_t frame_edges(const ingest::WalFrameHeader& h) {
  return h.edge_count;
}

}  // namespace gstore::lintfix
