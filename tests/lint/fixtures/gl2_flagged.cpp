// GL2 negative fixture: BufferPins stored into a member and into a
// container that both outlive the fill scope. gstore_lint must flag both.
#include <utility>
#include <vector>

#include "store/segment.h"

namespace gstore::lintfix {

class PinHoarder {
 public:
  void adopt(store::BufferPin p);
  void stash(const store::BufferPin& p);

 private:
  store::BufferPin kept_;
  std::vector<store::BufferPin> pile_;
};

void PinHoarder::adopt(store::BufferPin p) { kept_ = std::move(p); }

void PinHoarder::stash(const store::BufferPin& p) { pile_.push_back(p); }

}  // namespace gstore::lintfix
