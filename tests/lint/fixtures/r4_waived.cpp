// R4 positive fixture: the same typedef-hidden raw mutex carrying audited
// waivers (fixtures model external callers). gstore_lint must stay quiet.
#include <mutex>

namespace gstore::lintfixr4 {

// GL-SAFE(R4): fixture — models an external caller outside the gstore
// wrapper discipline.
using Hidden = std::mutex;

class Counter {
 public:
  void bump();

 private:
  // GL-SAFE(R4): fixture — see the typedef note above.
  Hidden mu_;
  int n_ = 0;
};

void Counter::bump() {
  // GL-SAFE(R4): fixture — see the typedef note above.
  std::lock_guard<Hidden> g(mu_);
  ++n_;
}

}  // namespace gstore::lintfixr4
