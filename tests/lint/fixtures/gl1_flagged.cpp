// GL1 negative fixture: a blocking syscall and a lexical allocation both
// happen while a gstore::Mutex guard is held. gstore_lint must flag both.
#include <unistd.h>

#include <vector>

#include "util/sync.h"

namespace gstore::lintfix {

class Spooler {
 public:
  void flush();

 private:
  Mutex mu_{"lintfix::Spooler"};
  std::vector<char> log_;
};

void Spooler::flush() {
  MutexLock lock(mu_);
  ::write(2, "x", 1);
  log_.push_back('x');
}

}  // namespace gstore::lintfix
