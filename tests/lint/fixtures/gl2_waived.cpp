// GL2 positive fixture: the same pin stores carrying audited GL-SAFE
// waivers (the fixture plays a cache-pool-style owner). Must stay quiet.
#include <utility>
#include <vector>

#include "store/segment.h"

namespace gstore::lintfix {

class PinHoarder {
 public:
  void adopt(store::BufferPin p);
  void stash(const store::BufferPin& p);

 private:
  store::BufferPin kept_;
  std::vector<store::BufferPin> pile_;
};

void PinHoarder::adopt(store::BufferPin p) {
  // GL-SAFE(GL2): fixture — this class models an audited pin owner whose
  // release path is tested elsewhere.
  kept_ = std::move(p);
}

void PinHoarder::stash(const store::BufferPin& p) {
  // GL-SAFE(GL2): fixture — audited owner (see adopt).
  pile_.push_back(p);
}

}  // namespace gstore::lintfix
