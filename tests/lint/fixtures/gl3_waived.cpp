// GL3 positive fixture: one consumer checks ok first (the idiomatic shape)
// and one carries an audited waiver. gstore_lint must stay quiet on both.
#include <cstddef>

#include "io/async_engine.h"

namespace gstore::lintfix {

std::size_t checked_consume(const io::Completion& c);
std::size_t waived_consume(const io::Completion& c);

std::size_t checked_consume(const io::Completion& c) {
  if (!c.ok) return 0;
  return c.bytes;
}

// GL-SAFE(GL3): fixture — the byte count is advisory in this consumer.
// (GENERIC attributes a single-statement body to the header line, so the
// waiver sits on both the header and the return.)
std::size_t waived_consume(const io::Completion& c) {
  // GL-SAFE(GL3): fixture — advisory byte count (see above).
  return c.bytes;
}

}  // namespace gstore::lintfix
