// GL7 negative fixture, TU 1 of 2: acquires OrderPair::a then
// OrderPair::b. The reverse order lives in gl7_flagged_b.cpp; the
// lock-order cycle (and the [GL7] finding) only exists once the two TUs
// are analyzed together.
#include "gl7_pair.h"

namespace gstore::lintfix {

void OrderPair::fwd() {
  MutexLock la(a);
  MutexLock lb(b);
}

}  // namespace gstore::lintfix
