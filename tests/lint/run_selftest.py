#!/usr/bin/env python3
"""gstore_lint self-test: every check fires on its flagged fixture and
stays quiet on the GL-SAFE-waived twin.

    python3 tests/lint/run_selftest.py <repo_root> [--cxx <compiler>]

Builds a throwaway compile_commands.json covering tests/lint/fixtures/
and runs the linter over it twice: the *_flagged.cpp set must produce
exactly the expected [GLn]/[R4]/[GL-WAIVER] findings (exit 1), and the
*_waived.cpp set must come back clean (exit 0). Runs the real frontend
over real ASTs — no mocking — so it doubles as an end-to-end test of the
dump/parse/lower pipeline.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# fixture basename -> set of check tags that must appear for it.
FLAGGED = {
    "gl1_flagged.cpp": {"GL1"},
    "gl2_flagged.cpp": {"GL2"},
    "gl3_flagged.cpp": {"GL3"},
    "gl4_flagged.cpp": {"GL4"},
    "gl5_flagged.cpp": {"GL5"},
    # Cross-TU pairs: the taint source / forward lock edge lives in _a,
    # the finding lands in (or is anchored by) the other TU. Both files
    # must be in the same analysis run for the check to fire at all.
    "gl6_flagged_a.cpp": set(),
    "gl6_flagged_b.cpp": {"GL6"},
    "gl7_flagged_a.cpp": {"GL7"},
    "gl7_flagged_b.cpp": set(),
    "r4_flagged.cpp": {"R4"},
    "waiver_bad.cpp": {"GL-WAIVER"},
}
WAIVED = [
    "gl1_waived.cpp",
    "gl2_waived.cpp",
    "gl3_waived.cpp",
    "gl4_waived.cpp",
    "gl5_waived.cpp",
    "gl6_waived_a.cpp",
    "gl6_waived_b.cpp",
    "gl7_waived_a.cpp",
    "gl7_waived_b.cpp",
    "r4_waived.cpp",
]


def write_compdb(tmp: Path, root: Path, cxx: str,
                 fixtures: list[Path]) -> Path:
    entries = []
    for f in fixtures:
        entries.append({
            "directory": str(tmp),
            "file": str(f),
            "arguments": [cxx, "-std=c++20", f"-I{root / 'src'}",
                          "-c", str(f), "-o", str(tmp / (f.stem + ".o"))],
        })
    path = tmp / "compile_commands.json"
    path.write_text(json.dumps(entries))
    return path


def run_lint(root: Path, compdb: Path, files: list[str],
             frontend: str | None = None) -> tuple[int, str]:
    cmd = [sys.executable, str(root / "tools" / "gstore_lint"),
           "--compdb", str(compdb), "--root", str(root),
           "--gl4-all", "--files", *files]
    if frontend:
        cmd += ["--frontend", frontend]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("root", type=Path)
    ap.add_argument("--cxx", default="c++")
    ap.add_argument("--frontend", default=None,
                    help="forwarded to gstore_lint (gcc | clang | auto)")
    args = ap.parse_args()
    root = args.root.resolve()
    fixdir = root / "tests" / "lint" / "fixtures"
    fixtures = sorted(fixdir.glob("*.cpp"))
    missing = ({*FLAGGED} | {*WAIVED}) - {f.name for f in fixtures}
    if missing:
        print(f"selftest: missing fixtures: {sorted(missing)}")
        return 1

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="gstore_lint_selftest_") as td:
        tmp = Path(td)
        compdb = write_compdb(tmp, root, args.cxx, fixtures)

        # Flagged set: the linter must exit 1 and each fixture must carry
        # its own tag — firing on the wrong file doesn't count.
        rc, out = run_lint(root, compdb, sorted(FLAGGED), args.frontend)
        if rc != 1:
            failures.append(f"flagged set: expected exit 1, got {rc}\n{out}")
        for name, tags in sorted(FLAGGED.items()):
            for tag in sorted(tags):
                hit = any(name in line and f"[{tag}]" in line
                          for line in out.splitlines())
                if not hit:
                    failures.append(f"{name}: no [{tag}] finding\n{out}")

        # Waived set: identical violations under audited waivers -> clean.
        rc, out = run_lint(root, compdb, WAIVED, args.frontend)
        if rc != 0:
            failures.append(f"waived set: expected exit 0, got {rc}\n{out}")

    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}")
        return 1
    print(f"selftest: ok ({len(FLAGGED)} flagged, {len(WAIVED)} waived)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
