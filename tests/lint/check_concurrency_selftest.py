#!/usr/bin/env python3
"""check_concurrency.py self-test, exercising the R4 ban list (including
the PR-6 additions: timed/recursive mutexes, once_flag/call_once, and the
bare std::lock/std::try_lock algorithms) plus one fixture per other rule
(R7, the detached-thread ban, arrived with gstore_serve in PR 7).

    python3 tests/lint/check_concurrency_selftest.py <repo_root>

Writes a throwaway tree under a tempdir and runs the real lint's main()
against it — no regex re-implementation here, so a drifting pattern in
the lint fails this test, not just the fixtures.
"""

from __future__ import annotations

import contextlib
import io
import sys
import tempfile
from pathlib import Path

R4_BANNED_LINES = [
    "std::mutex plain_mu;",
    "std::recursive_mutex rec_mu;",
    "std::timed_mutex timed_mu;",
    "std::recursive_timed_mutex rec_timed_mu;",
    "std::shared_mutex rw_mu;",
    "std::condition_variable cv;",
    "std::once_flag flag;",
    "void a() { std::call_once(flag, []{}); }",
    "void b() { std::lock(plain_mu, rec_mu); }",
    "void c() { std::try_lock(plain_mu, rec_mu); }",
    "void d() { std::lock_guard<std::mutex> g(plain_mu); }",
    "#include <mutex>",
]
# Wrapper idioms and lookalikes the ban must NOT catch.
R4_CLEAN_LINES = [
    "gstore::OnceFlag flag;",
    "void a() { gstore::call_once(flag, []{}); }",
    "void b(gstore::Mutex& mu) { gstore::MutexLock lock(mu); }",
    "int lock(int);                 // free function named lock",
    "int e(int x) { return lock(x); }",
    "struct W { void unlock(); };   // member named like the protocol",
]


def run_lint(cc, root: Path) -> tuple[int, str]:
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = cc.main(root)
    return rc, buf.getvalue()


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
    sys.path.insert(0, str(root / "tools"))
    import check_concurrency as cc

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="cc_selftest_") as td:
        tree = Path(td)

        # Banned constructs: every line must yield exactly one R4 finding.
        bad = tree / "bad" / "src" / "victim.cpp"
        bad.parent.mkdir(parents=True)
        bad.write_text("\n".join(R4_BANNED_LINES) + "\n")
        rc, out = run_lint(cc, tree / "bad")
        if rc != 1:
            failures.append(f"banned set: expected exit 1, got {rc}\n{out}")
        for lineno, line in enumerate(R4_BANNED_LINES, start=1):
            if f"victim.cpp:{lineno}: R4:" not in out:
                failures.append(f"banned line {lineno} ({line!r}) not "
                                f"flagged\n{out}")

        # Wrapper idioms: the lint must stay quiet.
        ok = tree / "ok" / "src" / "wrapped.cpp"
        ok.parent.mkdir(parents=True)
        ok.write_text("\n".join(R4_CLEAN_LINES) + "\n")
        rc, out = run_lint(cc, tree / "ok")
        if rc != 0:
            failures.append(f"clean set: expected exit 0, got {rc}\n{out}")

        # The sync component itself is exempt from R4.
        sync = tree / "sync" / "src" / "util" / "sync.h"
        sync.parent.mkdir(parents=True)
        sync.write_text("#include <mutex>\nstd::mutex wrapped_mu;\n")
        rc, out = run_lint(cc, tree / "sync")
        if rc != 0:
            failures.append(f"sync.h exemption: expected exit 0, got "
                            f"{rc}\n{out}")

        # One fixture per non-R4 rule, so the whole surface has coverage.
        other = tree / "other" / "src" / "io" / "probe.cpp"
        other.parent.mkdir(parents=True)
        other.write_text(
            "// cross-thread: shared counter\n"
            "std::uint64_t hits_ = 0;\n"                      # R1: not atomic
            "char* raw = new char[64];\n"                     # R2: raw alloc
            "auto buf = AlignedBuffer(4096, 512);\n"          # R3: alignment
            "GSTORE_NO_THREAD_SAFETY_ANALYSIS void f();\n"    # R5: no SAFETY:
            "#pragma omp parallel for schedule(dynamic, 1)\n"  # R6
            "void g() { std::thread([]{}).detach(); }\n")     # R7: detach
        rc, out = run_lint(cc, tree / "other")
        if rc != 1:
            failures.append(f"other-rules set: expected exit 1, got "
                            f"{rc}\n{out}")
        for rule in ("R1", "R2", "R3", "R5", "R6", "R7"):
            if f" {rule}: " not in out:
                failures.append(f"rule {rule} did not fire\n{out}")

        # Joined threads (and a member merely named detach-ish) stay clean.
        joined = tree / "joined" / "src" / "threads.cpp"
        joined.parent.mkdir(parents=True)
        joined.write_text(
            "void h() { std::thread t([]{}); t.join(); }\n"
            "const char* s = \"call .detach() never\";  // in a literal\n")
        rc, out = run_lint(cc, tree / "joined")
        if rc != 0:
            failures.append(f"joined-threads set: expected exit 0, got "
                            f"{rc}\n{out}")

    if failures:
        for f in failures:
            print(f"check_concurrency selftest FAIL: {f}")
        return 1
    print(f"check_concurrency selftest: ok "
          f"({len(R4_BANNED_LINES)} banned, {len(R4_CLEAN_LINES)} clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
