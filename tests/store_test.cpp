#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "store/cache_pool.h"
#include "store/caching_policy.h"
#include "store/memory_budget.h"
#include "store/segment.h"
#include "util/status.h"

namespace gstore::store {
namespace {

std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

// ---- MemoryBudget ---------------------------------------------------------

TEST(MemoryBudget, SplitsPoolFromSegments) {
  const auto b = MemoryBudget::compute(100, 20);
  EXPECT_EQ(b.segment_bytes, 20u);
  EXPECT_EQ(b.pool_bytes, 60u);
}

TEST(MemoryBudget, ShrinksSegmentsWhenTight) {
  const auto b = MemoryBudget::compute(30, 20);
  EXPECT_EQ(b.segment_bytes, 15u);
  EXPECT_EQ(b.pool_bytes, 0u);
}

TEST(MemoryBudget, RejectsZero) {
  EXPECT_THROW(MemoryBudget::compute(0, 1), Error);
  EXPECT_THROW(MemoryBudget::compute(1, 0), Error);
}

// ---- Segment ----------------------------------------------------------------

TEST(Segment, PacksTilesUntilFull) {
  Segment s(100);
  EXPECT_TRUE(s.try_add(0, 40));
  EXPECT_TRUE(s.try_add(1, 40));
  EXPECT_FALSE(s.try_add(2, 40));  // would exceed capacity
  EXPECT_TRUE(s.try_add(2, 20));
  EXPECT_EQ(s.used(), 100u);
  ASSERT_EQ(s.slots().size(), 3u);
  EXPECT_EQ(s.slots()[1].offset, 40u);
  EXPECT_EQ(s.slots()[2].layout_idx, 2u);
}

TEST(Segment, ClearResets) {
  Segment s(64);
  s.try_add(0, 32);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.used(), 0u);
  EXPECT_TRUE(s.try_add(5, 64));
}

TEST(Segment, EnsureCapacityGrowsForOversizedTile) {
  Segment s(16);
  s.ensure_capacity(1024);
  EXPECT_GE(s.capacity(), 1024u);
  EXPECT_TRUE(s.try_add(0, 1024));
  // Data is writable across the grown buffer.
  std::memset(s.slot_data(s.slots()[0]), 0x5a, 1024);
}

// ---- CachePool ---------------------------------------------------------

TEST(CachePool, InsertWithinBudget) {
  CachePool pool(100);
  const auto d = bytes(40, 1);
  EXPECT_TRUE(pool.insert(7, d.data(), d.size()));
  EXPECT_TRUE(pool.contains(7));
  EXPECT_EQ(pool.used(), 40u);
  EXPECT_EQ(pool.free_bytes(), 60u);
}

TEST(CachePool, RejectsWhenFull) {
  CachePool pool(50);
  const auto d = bytes(40, 1);
  EXPECT_TRUE(pool.insert(1, d.data(), d.size()));
  EXPECT_FALSE(pool.insert(2, d.data(), d.size()));
  EXPECT_FALSE(pool.contains(2));
}

TEST(CachePool, ReplaceSameTile) {
  CachePool pool(100);
  const auto a = bytes(40, 1);
  const auto b = bytes(60, 2);
  EXPECT_TRUE(pool.insert(3, a.data(), a.size()));
  EXPECT_TRUE(pool.insert(3, b.data(), b.size()));
  EXPECT_EQ(pool.used(), 60u);
  EXPECT_EQ(pool.tile_count(), 1u);
  EXPECT_EQ(pool.entries()[0].bytes, 60u);
  EXPECT_EQ(pool.entries()[0].data[0], 2);
}

TEST(CachePool, EraseFreesBudget) {
  CachePool pool(100);
  const auto d = bytes(70, 1);
  pool.insert(1, d.data(), d.size());
  EXPECT_EQ(pool.erase(1), 70u);
  EXPECT_EQ(pool.erase(1), 0u);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(CachePool, EntriesInLayoutOrder) {
  CachePool pool(1000);
  const auto d = bytes(10, 0);
  pool.insert(9, d.data(), d.size());
  pool.insert(2, d.data(), d.size());
  pool.insert(5, d.data(), d.size());
  const auto entries = pool.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].layout_idx, 2u);
  EXPECT_EQ(entries[1].layout_idx, 5u);
  EXPECT_EQ(entries[2].layout_idx, 9u);
}

TEST(CachePool, LruEvictionEvictsColdest) {
  CachePool pool(100);
  const auto d = bytes(30, 0);
  pool.insert(1, d.data(), d.size());
  pool.insert(2, d.data(), d.size());
  pool.insert(3, d.data(), d.size());
  pool.touch(1);  // 2 is now coldest
  pool.evict_lru(30);
  EXPECT_TRUE(pool.contains(1));
  EXPECT_FALSE(pool.contains(2));
  EXPECT_TRUE(pool.contains(3));
}

TEST(CachePool, DataIsCopied) {
  CachePool pool(100);
  auto d = bytes(8, 0xaa);
  pool.insert(0, d.data(), d.size());
  d[0] = 0x00;  // mutate the source after insertion
  EXPECT_EQ(pool.entries()[0].data[0], 0xaa);
}

TEST(CachePool, ZeroBudgetAcceptsNothing) {
  CachePool pool(0);
  const auto d = bytes(1, 0);
  EXPECT_FALSE(pool.insert(0, d.data(), d.size()));
}

// ---- zero-copy pinning ------------------------------------------------------

TEST(Segment, BeginFillReusesBufferWhenUnpinned) {
  Segment s(64);
  s.try_add(0, 16);
  const std::uint8_t* before = s.data();
  s.begin_fill();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.data(), before);
  EXPECT_EQ(s.buffer_refreshes(), 0u);
}

TEST(Segment, BeginFillRefreshesBufferWhilePinned) {
  Segment s(64);
  ASSERT_TRUE(s.try_add(0, 16));
  std::memset(s.slot_data(s.slots()[0]), 0xab, 16);
  const BufferPin pin = s.pin_slot(s.slots()[0]);
  const std::uint8_t* old_buf = s.data();
  s.begin_fill();
  EXPECT_NE(s.data(), old_buf);
  EXPECT_EQ(s.buffer_refreshes(), 1u);
  // Scribbling over the fresh buffer must not disturb the pinned slice.
  ASSERT_TRUE(s.try_add(1, 16));
  std::memset(s.slot_data(s.slots()[0]), 0x11, 16);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(pin.get()[i], 0xab);
}

// ASan regression: the pinned slice must keep the backing buffer alive even
// after the segment itself is gone (a use-after-free here is exactly the bug
// the refcounted design exists to prevent).
TEST(Segment, PinOutlivesSegment) {
  BufferPin pin;
  {
    Segment s(32);
    ASSERT_TRUE(s.try_add(0, 8));
    std::memset(s.slot_data(s.slots()[0]), 0xcd, 8);
    pin = s.pin_slot(s.slots()[0]);
  }
  for (int i = 0; i < 8; ++i) ASSERT_EQ(pin.get()[i], 0xcd);
}

TEST(Segment, PinSurvivesEnsureCapacityReplacement) {
  Segment s(16);
  ASSERT_TRUE(s.try_add(0, 8));
  std::memset(s.slot_data(s.slots()[0]), 0x42, 8);
  const BufferPin pin = s.pin_slot(s.slots()[0]);
  s.clear();
  s.ensure_capacity(4096);  // replaces the buffer; the pin holds the old one
  ASSERT_TRUE(s.try_add(1, 4096));
  std::memset(s.slot_data(s.slots()[0]), 0x00, 4096);
  for (int i = 0; i < 8; ++i) ASSERT_EQ(pin.get()[i], 0x42);
}

TEST(CachePool, InsertPinnedIsZeroCopy) {
  Segment s(64);
  ASSERT_TRUE(s.try_add(0, 16));
  std::memset(s.slot_data(s.slots()[0]), 0x7e, 16);
  CachePool pool(100);
  EXPECT_TRUE(pool.insert_pinned(4, s.pin_slot(s.slots()[0]), 16));
  EXPECT_EQ(pool.bytes_copied(), 0u);
  EXPECT_EQ(pool.used(), 16u);
  // Zero-copy means the pool serves the segment's own bytes.
  EXPECT_EQ(pool.entries()[0].data, s.data());
}

TEST(CachePool, BytesCopiedCountsCopyingInserts) {
  CachePool pool(100);
  const auto d = bytes(8, 1);
  EXPECT_TRUE(pool.insert(0, d.data(), d.size()));
  EXPECT_EQ(pool.bytes_copied(), 8u);
  EXPECT_TRUE(pool.insert(1, d.data(), d.size()));
  EXPECT_EQ(pool.bytes_copied(), 16u);
}

TEST(CachePool, ErasedPinReleasesBuffer) {
  Segment s(64);
  ASSERT_TRUE(s.try_add(0, 16));
  CachePool pool(100);
  ASSERT_TRUE(pool.insert_pinned(0, s.pin_slot(s.slots()[0]), 16));
  pool.erase(0);
  // With the pin dropped, begin_fill can reuse the buffer in place.
  s.begin_fill();
  EXPECT_EQ(s.buffer_refreshes(), 0u);
}

TEST(CachePool, ForEachEntryMatchesEntries) {
  CachePool pool(1000);
  const auto d = bytes(10, 3);
  pool.insert(9, d.data(), d.size());
  pool.insert(2, d.data(), d.size());
  std::vector<CachePool::Entry> seen;
  pool.for_each_entry([&](const CachePool::Entry& e) { seen.push_back(e); });
  const auto snapshot = pool.entries();
  ASSERT_EQ(seen.size(), snapshot.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].layout_idx, snapshot[i].layout_idx);
    EXPECT_EQ(seen[i].data, snapshot[i].data);
    EXPECT_EQ(seen[i].bytes, snapshot[i].bytes);
  }
}

// ---- policies ------------------------------------------------------------

// Minimal algorithm stub exposing a controllable oracle.
class StubAlgo final : public TileAlgorithm {
 public:
  std::string name() const override { return "stub"; }
  void init(const tile::TileStore&) override {}
  void begin_iteration(std::uint32_t) override {}
  void process_tile(const tile::TileView&) override {}
  bool end_iteration(std::uint32_t) override { return false; }
  bool tile_useful_next(std::uint32_t i, std::uint32_t) const override {
    return useful_rows.empty() || useful_rows.count(i) > 0;
  }
  std::set<std::uint32_t> useful_rows;  // empty = everything useful
};

TEST(CachingPolicy, NoneNeverCaches) {
  auto p = CachingPolicy::make(CachePolicyKind::kNone);
  StubAlgo algo;
  EXPECT_FALSE(p->should_cache(0, {0, 0}, algo));
}

TEST(CachingPolicy, LruAlwaysCachesAndEvicts) {
  auto p = CachingPolicy::make(CachePolicyKind::kLru);
  StubAlgo algo;
  EXPECT_TRUE(p->should_cache(0, {0, 0}, algo));
  CachePool pool(50);
  const auto d = bytes(40, 0);
  pool.insert(1, d.data(), d.size());
  tile::Grid grid(256, false, 4, 1);
  EXPECT_TRUE(p->make_room(pool, 40, grid, algo));
  EXPECT_EQ(pool.tile_count(), 0u);
}

TEST(CachingPolicy, ProactiveConsultsOracle) {
  auto p = CachingPolicy::make(CachePolicyKind::kProactive);
  StubAlgo algo;
  algo.useful_rows = {2};
  EXPECT_TRUE(p->should_cache(0, {2, 3}, algo));
  EXPECT_FALSE(p->should_cache(0, {1, 3}, algo));
}

TEST(CachingPolicy, ProactiveAnalyzeEvictsRuledOutTiles) {
  auto p = CachingPolicy::make(CachePolicyKind::kProactive);
  StubAlgo algo;
  tile::Grid grid(16 * 8, false, 4, 1);  // p = 8, rows 0..7
  CachePool pool(1000);
  const auto d = bytes(10, 0);
  // Insert tiles from rows 0..7 (layout index of (i,0) in a p=8 full grid).
  for (std::uint32_t i = 0; i < 8; ++i)
    pool.insert(grid.layout_index(i, 0), d.data(), d.size());
  algo.useful_rows = {1, 4};
  p->analyze(pool, grid, algo);
  EXPECT_EQ(pool.tile_count(), 2u);
  EXPECT_TRUE(pool.contains(grid.layout_index(1, 0)));
  EXPECT_TRUE(pool.contains(grid.layout_index(4, 0)));
}

TEST(CachingPolicy, ProactiveMakeRoomOnlyDropsUseless) {
  auto p = CachingPolicy::make(CachePolicyKind::kProactive);
  StubAlgo algo;
  tile::Grid grid(16 * 4, false, 4, 1);
  CachePool pool(30);
  const auto d = bytes(10, 0);
  pool.insert(grid.layout_index(0, 0), d.data(), d.size());
  pool.insert(grid.layout_index(1, 0), d.data(), d.size());
  pool.insert(grid.layout_index(2, 0), d.data(), d.size());
  algo.useful_rows = {0, 1, 2, 3};  // everything still useful
  EXPECT_FALSE(p->make_room(pool, 10, grid, algo));
  EXPECT_EQ(pool.tile_count(), 3u);  // nothing sacrificed
  algo.useful_rows = {0};
  EXPECT_TRUE(p->make_room(pool, 10, grid, algo));
  EXPECT_EQ(pool.tile_count(), 1u);
}

}  // namespace
}  // namespace gstore::store
