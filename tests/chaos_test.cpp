// Chaos tests: whole-engine runs under injected I/O faults.
//
// The contract being proven: transient faults (EINTR/EAGAIN storms, EIO
// blips, short reads) are fully absorbed by the recovery stack — results are
// bit-identical to a fault-free run — while faults that exhaust every retry
// budget surface as ONE clean IoError after a full quiesce, never as partial
// tile data or a worker scribbling into freed segment buffers (the latter is
// what ASan/TSan watch for here).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "graph/generator.h"
#include "io/file.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "tile/tile_file.h"
#include "util/status.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gstore::store {
namespace {

using graph::GraphKind;

tile::ConvertOptions small_tiles() {
  tile::ConvertOptions o;
  o.tile_bits = 5;   // 32-vertex tiles → many tiles at small scale
  o.group_side = 3;  // non-dividing group side
  return o;
}

EngineConfig tiny_memory() {
  EngineConfig c;
  c.stream_memory_bytes = 16 << 10;  // forces many slide phases
  c.segment_bytes = 2 << 10;
  return c;
}

io::DeviceConfig fast_backoff(const std::string& fault_spec) {
  io::DeviceConfig dev;
  dev.fault_spec = fault_spec;
  dev.retry.backoff_initial_ms = 0.1;  // keep injected-failure tests fast
  dev.retry.backoff_max_ms = 1.0;
  return dev;
}

TEST(Chaos, TransientFaultsPreserveResultsBitForBit) {
#ifdef _OPENMP
  // PageRank accumulates floats; one thread pins the summation order so the
  // faulty run can be compared bit-for-bit against the clean one.
  omp_set_num_threads(1);
#endif
  io::TempDir dir;
  const auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 17);
  auto clean = gstore::testing::make_store(dir, el, small_tiles());
  // Same converted files, reopened behind a fault injector throwing a mix
  // of everything the retry stack claims to absorb.
  auto faulty = tile::TileStore::open(
      dir.file("g"),
      fast_backoff("seed=42,eio=0.05,eintr=0.15,eagain=0.05,short=0.15"));

  std::uint64_t retries = 0, short_reads = 0, failed = 0;
  const auto track = [&](const EngineStats& s) {
    retries += s.retries;
    short_reads += s.short_reads;
    failed += s.failed_reads;
  };

  {
    algo::TileBfs a(1), b(1);
    ScrEngine(clean, tiny_memory()).run(a);
    track(ScrEngine(faulty, tiny_memory()).run(b));
    EXPECT_EQ(a.depth(), b.depth());
    EXPECT_EQ(a.visited_count(), b.visited_count());
  }
  {
    algo::PageRankOptions popt;
    popt.max_iterations = 5;
    popt.tolerance = 0;
    algo::TilePageRank a(popt), b(popt);
    ScrEngine(clean, tiny_memory()).run(a);
    track(ScrEngine(faulty, tiny_memory()).run(b));
    ASSERT_EQ(a.ranks().size(), b.ranks().size());
    EXPECT_EQ(std::memcmp(a.ranks().data(), b.ranks().data(),
                          a.ranks().size() * sizeof(float)),
              0)
        << "pagerank diverged under injected faults";
  }
  {
    algo::TileWcc a, b;
    ScrEngine(clean, tiny_memory()).run(a);
    track(ScrEngine(faulty, tiny_memory()).run(b));
    EXPECT_EQ(a.labels(), b.labels());
    EXPECT_EQ(a.component_count(), b.component_count());
  }

  // The runs must actually have exercised the recovery machinery — a quiet
  // pass would mean the injector was wired out, not that the engine is
  // robust.
  EXPECT_GT(retries, 0u);
  EXPECT_GT(short_reads, 0u);
  EXPECT_EQ(failed, 0u);  // nothing exhausted its budget
}

TEST(Chaos, FaultPastEveryBudgetIsOneCleanError) {
  io::TempDir dir;
  const auto el = graph::kronecker(8, 4, GraphKind::kUndirected, 23);
  // Read 1 serves TileStore::open's header; read 2 (an engine tile read —
  // the codec-compressed store fits a single batch) then fails with zero
  // retry budget anywhere, making a single blip behave like a dead sector.
  io::DeviceConfig dev = fast_backoff("seed=1,eio-nth=2");
  dev.retry.max_retries = 0;
  auto store = gstore::testing::make_store(dir, el, small_tiles(), dev);
  EngineConfig cfg = tiny_memory();
  cfg.read_retry_budget = 0;

  algo::TileWcc wcc;
  try {
    ScrEngine(store, cfg).run(wcc);
    FAIL() << "expected the exhausted-budget read to abort the run";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget"), std::string::npos) << what;
    EXPECT_NE(what.find("tile read at offset"), std::string::npos) << what;
  }
  EXPECT_GT(store.device().stats().failed_reads, 0u);
  // Clean quiesce: nothing is still in flight after the exception.
  std::vector<io::Completion> none;
  EXPECT_EQ(store.device().poll(0, 64, none), 0u);

  // The device and store remain usable — the nth-read fault is spent, so a
  // rerun completes and produces a sane result.
  algo::TileWcc again;
  const EngineStats s = ScrEngine(store, cfg).run(again);
  EXPECT_GT(s.iterations, 0u);
  EXPECT_GT(again.component_count(), 0u);
}

TEST(Chaos, FailureWhileSiblingSegmentMidFillUnwindsCleanly) {
  io::TempDir dir;
  const auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 29);
  // Every read sleeps 10ms, so when the doomed read (an early tile read;
  // read 1 is open's header) surfaces its failure, the prefetching sibling
  // segment still has reads in flight writing into its buffer.
  // Unwinding without draining them is a heap-use-after-free ASan catches.
  io::DeviceConfig dev = fast_backoff("seed=2,eio-nth=3,latency=1:10");
  dev.retry.max_retries = 0;
  auto store = gstore::testing::make_store(dir, el, small_tiles(), dev);
  EngineConfig cfg = tiny_memory();
  cfg.read_retry_budget = 0;

  algo::TileWcc wcc;
  EXPECT_THROW(ScrEngine(store, cfg).run(wcc), IoError);
  std::vector<io::Completion> none;
  EXPECT_EQ(store.device().poll(0, 64, none), 0u);

  // Rerun to completion on the same device: recovery left no wreckage.
  algo::TileWcc again;
  const EngineStats s = ScrEngine(store, cfg).run(again);
  EXPECT_GT(s.iterations, 0u);
}

TEST(Chaos, TruncatedTileFileIsRejectedNotProcessed) {
  // Regression: a Completion with ok == true but bytes < length (the tile
  // file lost its tail) must fail the read, never be processed as a full
  // tile — partial tile data silently corrupts every algorithm downstream.
  io::TempDir dir;
  const auto el = graph::kronecker(8, 4, GraphKind::kUndirected, 31);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  // Truncate the open .tiles file behind the store's back; the async
  // engine's EOF handling turns the lost tail into a short completion.
  {
    io::File f(tile::TileStore::tiles_path(dir.file("g")),
               io::OpenMode::kReadWrite);
    f.truncate(f.size() - 10);
  }
  algo::TileWcc wcc;
  try {
    ScrEngine(store, tiny_memory()).run(wcc);
    FAIL() << "expected the truncated tile to abort the run";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
  std::vector<io::Completion> none;
  EXPECT_EQ(store.device().poll(0, 64, none), 0u);
}

TEST(Chaos, CorruptCodecPayloadIsOneCleanFormatError) {
  // Regression: a v3 payload header flipped on disk after open throws
  // FormatError from a decode running *inside* an OpenMP worker region.
  // The engine must capture it and rethrow on the orchestrating thread
  // (an exception escaping the region terminates the process), quiesce
  // in-flight sibling reads, and leave the device reusable.
  io::TempDir dir;
  const auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 41);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  std::uint8_t good = 0;
  {
    // Flip the first tile's codec byte (payloads start at file offset 64)
    // to an out-of-range id; parse_tile_payload rejects it on dispatch.
    io::File f(tile::TileStore::tiles_path(dir.file("g")),
               io::OpenMode::kReadWrite);
    f.pread_full(&good, 1, 64);
    const std::uint8_t bad = 0xff;
    f.pwrite_full(&bad, 1, 64);
  }
  algo::TileWcc wcc;
  try {
    ScrEngine(store, tiny_memory()).run(wcc);
    FAIL() << "expected the corrupt payload to abort the run";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("codec"), std::string::npos)
        << e.what();
  }
  std::vector<io::Completion> none;
  EXPECT_EQ(store.device().poll(0, 64, none), 0u);

  // Restore the byte: the same store and device run to completion.
  {
    io::File f(tile::TileStore::tiles_path(dir.file("g")),
               io::OpenMode::kReadWrite);
    f.pwrite_full(&good, 1, 64);
  }
  algo::TileWcc again;
  const EngineStats s = ScrEngine(store, tiny_memory()).run(again);
  EXPECT_GT(s.iterations, 0u);
  EXPECT_GT(again.component_count(), 0u);
}

TEST(Chaos, SyncBackendHonorsTheSameRetryContract) {
  // overlap_io == false exercises Device::read's inline retry loop instead
  // of the worker-pool path; results must match the clean run just the same.
  io::TempDir dir;
  const auto el = graph::kronecker(8, 4, GraphKind::kUndirected, 37);
  auto clean = gstore::testing::make_store(dir, el, small_tiles());
  auto faulty = tile::TileStore::open(
      dir.file("g"), fast_backoff("seed=6,eintr=0.2,eio=0.05"));
  EngineConfig cfg = tiny_memory();
  cfg.overlap_io = false;
  algo::TileWcc a, b;
  ScrEngine(clean, cfg).run(a);
  ScrEngine(faulty, cfg).run(b);
  EXPECT_EQ(a.labels(), b.labels());
}

}  // namespace
}  // namespace gstore::store
// Appended: priority scheduling under fault storms (ISSUE 10).
#include "algo/pagerank_delta.h"
#include "algo/sssp.h"

namespace gstore::store {
namespace {

TEST(Chaos, PriorityScheduleSurvivesFaultStormBitForBit) {
  io::TempDir dir;
  const auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 53);
  auto clean = gstore::testing::make_store(dir, el, small_tiles());
  auto faulty = tile::TileStore::open(
      dir.file("g"),
      fast_backoff("seed=77,eio=0.05,eintr=0.15,eagain=0.05,short=0.15"));

  EngineConfig prio = tiny_memory();
  prio.schedule = ScheduleMode::kPriority;
  std::uint64_t recovered = 0;

  {
    // Clean grid order is the reference; the faulty run uses the worklist
    // scheduler — two schedules AND a fault storm between the runs, and the
    // fixpoints must still agree bit for bit.
    algo::TileBfs a(1), b(1);
    ScrEngine(clean, tiny_memory()).run(a);
    const auto s = ScrEngine(faulty, prio).run(b);
    recovered += s.retries + s.short_reads;
    EXPECT_EQ(a.depth(), b.depth());
  }
  {
    algo::TileSssp a(1), b(1);
    ScrEngine(clean, tiny_memory()).run(a);
    const auto s = ScrEngine(faulty, prio).run(b);
    recovered += s.retries + s.short_reads;
    EXPECT_EQ(a.distances(), b.distances());
  }
  {
    // PageRank-delta is deterministic *within* a schedule (fixed-point
    // integer deposits commute), and the round structure depends only on
    // residual state — never on I/O timing — so clean-priority and
    // faulty-priority agree bit for bit.
    algo::TilePageRankDelta a, b;
    ScrEngine(clean, prio).run(a);
    const auto s = ScrEngine(faulty, prio).run(b);
    recovered += s.retries + s.short_reads;
    ASSERT_EQ(a.ranks().size(), b.ranks().size());
    EXPECT_EQ(std::memcmp(a.ranks().data(), b.ranks().data(),
                          a.ranks().size() * sizeof(float)),
              0)
        << "pagerank-delta diverged under injected faults";
  }
  EXPECT_GT(recovered, 0u) << "storm never reached the recovery machinery";
}

TEST(Chaos, PriorityModeFaultPastBudgetQuiescesCleanly) {
  io::TempDir dir;
  const auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 59);
  io::DeviceConfig dev = fast_backoff("seed=3,eio-nth=3,latency=1:10");
  dev.retry.max_retries = 0;
  auto store = gstore::testing::make_store(dir, el, small_tiles(), dev);
  EngineConfig cfg = tiny_memory();
  cfg.schedule = ScheduleMode::kPriority;
  cfg.read_retry_budget = 0;

  algo::TileSssp sssp(1);
  EXPECT_THROW(ScrEngine(store, cfg).run(sssp), IoError);
  // The round's quiesce-before-throw contract: nothing still in flight.
  std::vector<io::Completion> none;
  EXPECT_EQ(store.device().poll(0, 64, none), 0u);

  // Same device, fault spent: the priority run completes and matches grid.
  algo::TileSssp again(1), ref(1);
  ScrEngine(store, cfg).run(again);
  ScrEngine(store, tiny_memory()).run(ref);
  EXPECT_EQ(again.distances(), ref.distances());
}

}  // namespace
}  // namespace gstore::store
