#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>

#include "graph/generator.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "util/status.h"

namespace gstore::store {
namespace {

using graph::GraphKind;

// Records which tiles the engine delivers each iteration.
class RecordingAlgo final : public TileAlgorithm {
 public:
  explicit RecordingAlgo(std::uint32_t iterations) : want_iters_(iterations) {}

  std::string name() const override { return "recorder"; }
  void init(const tile::TileStore& store) override {
    grid_ = &store.grid();
    per_iter_.clear();
  }
  void begin_iteration(std::uint32_t) override {
    per_iter_.emplace_back();
  }
  void process_tile(const tile::TileView& view) override {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t idx = grid_->layout_index(view.coord.i, view.coord.j);
    ++per_iter_.back()[idx];
    edges_seen_ += view.edge_count();
  }
  bool end_iteration(std::uint32_t iter) override { return iter + 1 < want_iters_; }

  bool tile_needed(std::uint32_t i, std::uint32_t j) const override {
    return needed_rows_.empty() || needed_rows_.count(i) || needed_rows_.count(j);
  }

  std::set<std::uint32_t> needed_rows_;  // empty = all
  std::vector<std::map<std::uint64_t, int>> per_iter_;
  std::uint64_t edges_seen_ = 0;

 private:
  std::uint32_t want_iters_;
  const tile::Grid* grid_ = nullptr;
  std::mutex mu_;
};

tile::TileStore kron_store(const io::TempDir& dir, unsigned scale = 9,
                           unsigned ef = 6) {
  tile::ConvertOptions o;
  o.tile_bits = 5;   // 32-vertex tiles → many tiles at small scale
  o.group_side = 3;  // non-dividing group side
  return gstore::testing::make_store(
      dir, graph::kronecker(scale, ef, GraphKind::kUndirected, 17), o);
}

EngineConfig tiny_memory() {
  EngineConfig c;
  c.stream_memory_bytes = 16 << 10;  // forces many slide phases + evictions
  c.segment_bytes = 2 << 10;
  return c;
}

TEST(ScrEngine, EveryNonEmptyTileProcessedOncePerIteration) {
  io::TempDir dir;
  auto store = kron_store(dir);
  RecordingAlgo algo(3);
  ScrEngine engine(store, tiny_memory());
  const auto stats = engine.run(algo);

  EXPECT_EQ(stats.iterations, 3u);
  ASSERT_EQ(algo.per_iter_.size(), 3u);
  std::set<std::uint64_t> nonempty;
  for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k)
    if (store.tile_edge_count(k) > 0) nonempty.insert(k);
  for (const auto& seen : algo.per_iter_) {
    ASSERT_EQ(seen.size(), nonempty.size());
    for (const auto& [idx, count] : seen) {
      EXPECT_EQ(count, 1) << "tile " << idx << " processed more than once";
      EXPECT_TRUE(nonempty.count(idx));
    }
  }
  EXPECT_EQ(algo.edges_seen_, 3 * store.edge_count());
}

TEST(ScrEngine, RewindServesTilesFromCache) {
  io::TempDir dir;
  auto store = kron_store(dir, 8, 4);
  EngineConfig c;
  c.stream_memory_bytes = 64 << 20;  // whole graph fits the pool
  c.segment_bytes = 1 << 20;
  RecordingAlgo algo(3);
  ScrEngine engine(store, c);
  const auto stats = engine.run(algo);
  // After iteration 0 everything is cached; iterations 1-2 do zero disk I/O.
  EXPECT_GT(stats.tiles_from_cache, 0u);
  EXPECT_EQ(stats.bytes_read, store.bytes_of_range(0, store.grid().tile_count()));
}

TEST(ScrEngine, RewindIsZeroCopy) {
  io::TempDir dir;
  auto store = kron_store(dir, 9, 6);
  EngineConfig c = tiny_memory();
  c.stream_memory_bytes = 64 << 10;
  // Small enough that the (codec-compressed) store spans several segment
  // fills, so at least one refill hits a segment with pinned slices.
  c.segment_bytes = 1 << 10;
  RecordingAlgo algo(3);
  const auto stats = ScrEngine(store, c).run(algo);
  // Tiles were served from the cache, and none of them was memcpy'd into
  // the pool: REWIND reads the segments' own pinned bytes.
  EXPECT_GT(stats.tiles_from_cache, 0u);
  EXPECT_EQ(stats.bytes_copied_to_pool, 0u);
  // The zero-copy contract's other half: refilling a segment whose slices
  // are pinned must swap in a fresh buffer, never overwrite in place.
  EXPECT_GT(stats.segment_refreshes, 0u);
}

TEST(ScrEngine, NoCacheBaselineRereadsEveryIteration) {
  io::TempDir dir;
  auto store = kron_store(dir, 8, 4);
  EngineConfig c = tiny_memory();
  c.policy = CachePolicyKind::kNone;
  c.rewind = false;
  RecordingAlgo algo(3);
  ScrEngine engine(store, c);
  const auto stats = engine.run(algo);
  EXPECT_EQ(stats.tiles_from_cache, 0u);
  EXPECT_EQ(stats.bytes_read,
            3 * store.bytes_of_range(0, store.grid().tile_count()));
}

TEST(ScrEngine, CacheReducesIoVsNoCache) {
  io::TempDir dir;
  auto store = kron_store(dir, 9, 6);
  EngineConfig base = tiny_memory();
  base.stream_memory_bytes = 64 << 10;
  base.segment_bytes = 4 << 10;

  EngineConfig nocache = base;
  nocache.policy = CachePolicyKind::kNone;
  nocache.rewind = false;

  RecordingAlgo a1(4), a2(4);
  const auto with_cache = ScrEngine(store, base).run(a1);
  const auto without = ScrEngine(store, nocache).run(a2);
  EXPECT_LT(with_cache.bytes_read, without.bytes_read);
  EXPECT_EQ(a1.edges_seen_, a2.edges_seen_);  // identical work either way
}

TEST(ScrEngine, SelectiveFetchSkipsUnneededTiles) {
  io::TempDir dir;
  auto store = kron_store(dir);
  RecordingAlgo algo(2);
  algo.needed_rows_ = {0};  // only tiles touching row/col 0
  ScrEngine engine(store, tiny_memory());
  const auto stats = engine.run(algo);
  EXPECT_GT(stats.tiles_skipped, 0u);
  for (const auto& seen : algo.per_iter_)
    for (const auto& [idx, n] : seen) {
      const auto c = store.grid().coord_at(idx);
      EXPECT_TRUE(c.i == 0 || c.j == 0);
      EXPECT_EQ(n, 1);
    }
}

TEST(ScrEngine, SyncAndAsyncProduceSameCoverage) {
  io::TempDir dir;
  auto store = kron_store(dir);
  EngineConfig async_cfg = tiny_memory();
  EngineConfig sync_cfg = tiny_memory();
  sync_cfg.overlap_io = false;
  RecordingAlgo a(2), b(2);
  ScrEngine(store, async_cfg).run(a);
  ScrEngine(store, sync_cfg).run(b);
  ASSERT_EQ(a.per_iter_.size(), b.per_iter_.size());
  for (std::size_t k = 0; k < a.per_iter_.size(); ++k)
    EXPECT_EQ(a.per_iter_[k], b.per_iter_[k]);
}

TEST(ScrEngine, LruPolicyRuns) {
  io::TempDir dir;
  auto store = kron_store(dir, 8, 4);
  EngineConfig c = tiny_memory();
  c.policy = CachePolicyKind::kLru;
  RecordingAlgo algo(3);
  const auto stats = ScrEngine(store, c).run(algo);
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_GT(stats.tiles_from_cache, 0u);
}

TEST(ScrEngine, StatsAreCoherent) {
  io::TempDir dir;
  auto store = kron_store(dir);
  RecordingAlgo algo(2);
  const auto stats = ScrEngine(store, tiny_memory()).run(algo);
  EXPECT_GT(stats.io_batches, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
  EXPECT_EQ(stats.edges_processed, algo.edges_seen_);
  EXPECT_EQ(stats.tiles_from_disk + stats.tiles_from_cache,
            [&] {
              std::uint64_t total = 0;
              for (const auto& seen : algo.per_iter_) total += seen.size();
              return total;
            }());
}

TEST(ScrEngine, HonorsMaxIterationsGuard) {
  io::TempDir dir;
  auto store = kron_store(dir, 7, 4);

  // An algorithm that never converges must trip the guard, not spin forever.
  class NeverDone final : public TileAlgorithm {
   public:
    std::string name() const override { return "never"; }
    void init(const tile::TileStore&) override {}
    void begin_iteration(std::uint32_t) override {}
    void process_tile(const tile::TileView&) override {}
    bool end_iteration(std::uint32_t) override { return true; }
  } algo;

  EngineConfig c = tiny_memory();
  c.max_iterations = 5;
  EXPECT_THROW(ScrEngine(store, c).run(algo), Error);
}

TEST(ScrEngine, OversizedTileStreamsWhenSegmentTiny) {
  io::TempDir dir;
  // A star graph puts ~all edges into one tile, far larger than the segment.
  tile::ConvertOptions o;
  o.tile_bits = 5;
  auto store = gstore::testing::make_store(dir, graph::star(32 * 6), o);
  EngineConfig c;
  c.stream_memory_bytes = 2 << 10;
  c.segment_bytes = 128;  // much smaller than the hub tile
  RecordingAlgo algo(2);
  const auto stats = ScrEngine(store, c).run(algo);
  EXPECT_EQ(stats.iterations, 2u);
  EXPECT_EQ(algo.edges_seen_, 2 * store.edge_count());
}

}  // namespace
}  // namespace gstore::store
// Appended: engine edge cases.
namespace gstore::store {
namespace {

TEST(ScrEngine, SingleTileGraph) {
  io::TempDir dir;
  auto store = gstore::testing::make_store(dir, graph::path(50));  // 1 tile
  ASSERT_EQ(store.grid().tile_count(), 1u);
  RecordingAlgo algo(2);
  const auto stats = ScrEngine(store).run(algo);
  EXPECT_EQ(stats.iterations, 2u);
  EXPECT_EQ(algo.edges_seen_, 2 * store.edge_count());
}

TEST(ScrEngine, GraphWithNoEdges) {
  io::TempDir dir;
  graph::EdgeList el({}, 100, graph::GraphKind::kUndirected);
  auto store = gstore::testing::make_store(dir, el);
  RecordingAlgo algo(2);
  const auto stats = ScrEngine(store).run(algo);
  EXPECT_EQ(stats.iterations, 2u);
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(algo.edges_seen_, 0u);
}

TEST(ScrEngine, SegmentLargerThanGraph) {
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 5;
  auto store = gstore::testing::make_store(
      dir, graph::kronecker(8, 4, graph::GraphKind::kUndirected, 2), o);
  EngineConfig cfg;
  cfg.stream_memory_bytes = 256 << 20;  // everything fits one segment
  cfg.segment_bytes = 64 << 20;
  RecordingAlgo algo(2);
  const auto stats = ScrEngine(store, cfg).run(algo);
  EXPECT_EQ(stats.iterations, 2u);
  EXPECT_EQ(algo.edges_seen_, 2 * store.edge_count());
}

TEST(ScrEngine, ExactlyMaxIterationsSucceeds) {
  io::TempDir dir;
  auto store = gstore::testing::make_store(dir, graph::path(20));
  EngineConfig cfg;
  cfg.max_iterations = 3;
  RecordingAlgo algo(3);  // wants exactly the cap
  const auto stats = ScrEngine(store, cfg).run(algo);
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(ScrEngine, SelectiveFetchDisabledStreamsEverything) {
  io::TempDir dir;
  auto store = kron_store(dir, 8, 4);
  EngineConfig cfg = tiny_memory();
  cfg.selective_fetch = false;
  cfg.policy = CachePolicyKind::kNone;
  cfg.rewind = false;
  RecordingAlgo algo(2);
  algo.needed_rows_ = {0};  // oracle says row 0 only — engine must ignore it
  const auto stats = ScrEngine(store, cfg).run(algo);
  EXPECT_EQ(stats.tiles_skipped, 0u);
  EXPECT_EQ(stats.bytes_read,
            2 * store.bytes_of_range(0, store.grid().tile_count()));
}

TEST(ScrEngine, FatTupleStoreStreamsCorrectByteCounts) {
  io::TempDir dir;
  auto el = graph::kronecker(8, 4, graph::GraphKind::kUndirected, 3);
  tile::ConvertOptions o;
  o.tile_bits = 5;
  o.snb = false;
  auto store = gstore::testing::make_store(dir, el, o);
  EngineConfig cfg = tiny_memory();
  cfg.policy = CachePolicyKind::kNone;
  cfg.rewind = false;
  RecordingAlgo algo(1);
  const auto stats = ScrEngine(store, cfg).run(algo);
  EXPECT_EQ(stats.bytes_read, store.edge_count() * 8);
  EXPECT_EQ(stats.edges_processed, store.edge_count());
}

}  // namespace
}  // namespace gstore::store
// Appended: per-iteration statistics.
namespace gstore::store {
namespace {

TEST(ScrEngine, PerIterationStatsSumToTotals) {
  io::TempDir dir;
  auto store = kron_store(dir);
  RecordingAlgo algo(4);
  const auto stats = ScrEngine(store, tiny_memory()).run(algo);
  ASSERT_EQ(stats.per_iteration.size(), 4u);
  IterationStats sum;
  for (const auto& it : stats.per_iteration) {
    sum.tiles_from_disk += it.tiles_from_disk;
    sum.tiles_from_cache += it.tiles_from_cache;
    sum.tiles_skipped += it.tiles_skipped;
    sum.edges_processed += it.edges_processed;
    EXPECT_GE(it.seconds, 0.0);
  }
  EXPECT_EQ(sum.tiles_from_disk, stats.tiles_from_disk);
  EXPECT_EQ(sum.tiles_from_cache, stats.tiles_from_cache);
  EXPECT_EQ(sum.tiles_skipped, stats.tiles_skipped);
  EXPECT_EQ(sum.edges_processed, stats.edges_processed);
}

TEST(ScrEngine, CacheWarmupVisibleInPerIterationStats) {
  io::TempDir dir;
  auto store = kron_store(dir, 8, 4);
  EngineConfig c;
  c.stream_memory_bytes = 64 << 20;  // everything cacheable
  c.segment_bytes = 1 << 20;
  RecordingAlgo algo(3);
  const auto stats = ScrEngine(store, c).run(algo);
  ASSERT_EQ(stats.per_iteration.size(), 3u);
  EXPECT_GT(stats.per_iteration[0].tiles_from_disk, 0u);
  EXPECT_EQ(stats.per_iteration[1].tiles_from_disk, 0u);  // fully cached
  EXPECT_EQ(stats.per_iteration[2].tiles_from_disk, 0u);
  EXPECT_GT(stats.per_iteration[1].tiles_from_cache, 0u);
}

}  // namespace
}  // namespace gstore::store
// Appended: priority-driven selective scheduling (ISSUE 10).
#include "store/worklist.h"

namespace gstore::store {
namespace {

TEST(TileWorklist, DrainsBucketsAscendingAndTilesInLayoutOrder) {
  TileWorklist wl;
  wl.reset(16);
  wl.push(3, 5);
  wl.push(7, 2);
  wl.push(1, 2);
  wl.push(11, 9);
  EXPECT_EQ(wl.size(), 4u);
  EXPECT_EQ(wl.priority_of(7), 2u);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(wl.drain_min(out), 2u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 7}));
  EXPECT_EQ(wl.drain_min(out), 5u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(wl.drain_min(out), 9u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11}));
  EXPECT_TRUE(wl.empty());
  EXPECT_EQ(wl.drain_min(out), TileWorklist::kIdle);
}

TEST(TileWorklist, LazyRefileDeliversEachTileOnce) {
  TileWorklist wl;
  wl.reset(8);
  wl.push(4, 8);
  wl.push(4, 3);  // improve: the bucket-8 entry goes stale
  EXPECT_EQ(wl.size(), 1u);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(wl.drain_min(out), 3u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{4}));
  // The stale bucket-8 entry must not resurface.
  EXPECT_EQ(wl.drain_min(out), TileWorklist::kIdle);
  EXPECT_TRUE(out.empty());
  // Worsening a priority also refiles (engine re-pushes after each round).
  wl.push(4, 2);
  wl.push(4, 6);
  EXPECT_EQ(wl.size(), 1u);
  EXPECT_EQ(wl.drain_min(out), 6u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{4}));
}

TEST(TileWorklist, IdlePushAndDeactivateUnfile) {
  TileWorklist wl;
  wl.reset(8);
  wl.push(2, 4);
  wl.push(5, 4);
  wl.push(2, TileWorklist::kIdle);
  wl.deactivate(5);
  wl.deactivate(5);  // idempotent
  EXPECT_TRUE(wl.empty());
  std::vector<std::uint64_t> out;
  EXPECT_EQ(wl.drain_min(out), TileWorklist::kIdle);
  EXPECT_EQ(wl.priority_of(2), TileWorklist::kIdle);
}

TEST(TileWorklist, PathologicalPrioritiesShareTheOverflowBucket) {
  TileWorklist wl;
  wl.reset(4);
  wl.push(0, TileWorklist::kMaxBucket + 1000);
  wl.push(1, 0xfffffffeu);  // kIdle - 1, the largest non-idle priority
  wl.push(2, 1);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(wl.drain_min(out), 1u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2}));
  // Both clamped tiles drain together from the single overflow bucket.
  EXPECT_EQ(wl.drain_min(out), TileWorklist::kMaxBucket);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_TRUE(wl.empty());
}

// Orders tiles by their row index and records which bucket each round
// drained — the engine must deliver rounds in ascending bucket order, each
// containing exactly that row's tiles.
class RowPriorityAlgo final : public TileAlgorithm {
 public:
  std::string name() const override { return "row-priority"; }
  void init(const tile::TileStore& store) override { grid_ = &store.grid(); }
  void begin_round(std::uint32_t, std::uint32_t bucket) override {
    bucket_ = bucket;
    round_buckets_.push_back(bucket);
  }
  void process_tile(const tile::TileView& view) override {
    std::lock_guard<std::mutex> lock(mu_);
    EXPECT_EQ(view.coord.i, bucket_);
    ++tiles_seen_;
  }
  bool end_round(std::uint32_t, std::uint32_t) override { return true; }
  void begin_iteration(std::uint32_t) override {}
  bool end_iteration(std::uint32_t) override { return true; }
  std::uint32_t tile_priority(std::uint32_t i, std::uint32_t) const override {
    return i;
  }
  // Nothing ever changes priority: drained tiles stay drained, so the run
  // ends when the seeded worklist empties.
  bool dirty_rows(std::vector<std::uint32_t>&) const override { return true; }

  std::vector<std::uint32_t> round_buckets_;
  std::uint64_t tiles_seen_ = 0;

 private:
  const tile::Grid* grid_ = nullptr;
  std::uint32_t bucket_ = 0;
  std::mutex mu_;
};

TEST(ScrEngine, PriorityRoundsDrainAscendingBuckets) {
  io::TempDir dir;
  auto store = kron_store(dir);
  EngineConfig cfg = tiny_memory();
  cfg.schedule = ScheduleMode::kPriority;
  RowPriorityAlgo algo;
  const auto stats = ScrEngine(store, cfg).run(algo);
  ASSERT_FALSE(algo.round_buckets_.size() == 0);
  for (std::size_t k = 1; k < algo.round_buckets_.size(); ++k)
    EXPECT_LT(algo.round_buckets_[k - 1], algo.round_buckets_[k]);
  std::uint64_t nonempty = 0;
  for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k)
    if (store.tile_edge_count(k) > 0) ++nonempty;
  EXPECT_EQ(algo.tiles_seen_, nonempty);  // every tile exactly once
  EXPECT_EQ(stats.rounds, algo.round_buckets_.size());
  EXPECT_EQ(stats.max_bucket, algo.round_buckets_.back());
}

TEST(ScrEngine, PriorityModeCoversSameTilesAsGrid) {
  io::TempDir dir;
  auto store = kron_store(dir);
  RecordingAlgo grid_algo(3), prio_algo(3);
  ScrEngine(store, tiny_memory()).run(grid_algo);
  EngineConfig cfg = tiny_memory();
  cfg.schedule = ScheduleMode::kPriority;
  const auto stats = ScrEngine(store, cfg).run(prio_algo);
  // Default oracle files every needed tile at priority 0, so one round is
  // one full sweep: coverage is identical to the grid schedule.
  ASSERT_EQ(prio_algo.per_iter_.size(), grid_algo.per_iter_.size());
  for (std::size_t k = 0; k < grid_algo.per_iter_.size(); ++k)
    EXPECT_EQ(prio_algo.per_iter_[k], grid_algo.per_iter_[k]);
  EXPECT_EQ(prio_algo.edges_seen_, grid_algo.edges_seen_);
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(ScrEngine, PriorityStatsAreCoherent) {
  io::TempDir dir;
  auto store = kron_store(dir);
  EngineConfig cfg = tiny_memory();
  cfg.schedule = ScheduleMode::kPriority;
  RecordingAlgo algo(4);
  const auto stats = ScrEngine(store, cfg).run(algo);
  EXPECT_EQ(stats.rounds, 4u);
  EXPECT_EQ(stats.iterations, 4u);
  ASSERT_EQ(stats.per_iteration.size(), 4u);
  IterationStats sum;
  std::uint64_t fetched = 0;
  for (const auto& it : stats.per_iteration) {
    EXPECT_NE(it.bucket, IterationStats::kNoBucket);
    EXPECT_LE(it.bucket, stats.max_bucket);
    // Priority mode never "skips" — unfiled tiles were never candidates.
    EXPECT_EQ(it.tiles_skipped, 0u);
    sum.tiles_from_disk += it.tiles_from_disk;
    sum.tiles_from_cache += it.tiles_from_cache;
    sum.edges_processed += it.edges_processed;
    fetched += it.bytes_fetched;
  }
  EXPECT_EQ(sum.tiles_from_disk, stats.tiles_from_disk);
  EXPECT_EQ(sum.tiles_from_cache, stats.tiles_from_cache);
  EXPECT_EQ(sum.edges_processed, stats.edges_processed);
  EXPECT_EQ(sum.edges_processed, algo.edges_seen_);
  // Per-round fetch accounting reconciles with the device's byte counter.
  EXPECT_EQ(fetched, stats.bytes_read);
  EXPECT_EQ(stats.tiles_skipped, 0u);
  // RecordingAlgo always reports progress, so nothing was wasted.
  EXPECT_EQ(stats.wasted_fetch_bytes, 0u);
}

TEST(ScrEngine, PriorityModeHonorsMaxIterations) {
  io::TempDir dir;
  auto store = kron_store(dir, 7, 4);
  class NeverDone final : public TileAlgorithm {
   public:
    std::string name() const override { return "never"; }
    void init(const tile::TileStore&) override {}
    void begin_iteration(std::uint32_t) override {}
    void process_tile(const tile::TileView&) override {}
    bool end_iteration(std::uint32_t) override { return true; }
  } algo;
  EngineConfig cfg = tiny_memory();
  cfg.schedule = ScheduleMode::kPriority;
  cfg.max_iterations = 5;
  EXPECT_THROW(ScrEngine(store, cfg).run(algo), Error);
}

TEST(ScrEngine, PriorityModeCachesAcrossRounds) {
  io::TempDir dir;
  auto store = kron_store(dir, 8, 4);
  EngineConfig cfg;
  cfg.stream_memory_bytes = 64 << 20;  // whole graph fits the pool
  cfg.segment_bytes = 1 << 20;
  cfg.schedule = ScheduleMode::kPriority;
  RecordingAlgo algo(3);
  const auto stats = ScrEngine(store, cfg).run(algo);
  // Round 0 fetches, rounds 1-2 run entirely out of the pool.
  ASSERT_EQ(stats.per_iteration.size(), 3u);
  EXPECT_GT(stats.per_iteration[0].tiles_from_disk, 0u);
  EXPECT_EQ(stats.per_iteration[1].tiles_from_disk, 0u);
  EXPECT_EQ(stats.per_iteration[2].tiles_from_disk, 0u);
  EXPECT_GT(stats.per_iteration[1].tiles_from_cache, 0u);
  EXPECT_EQ(stats.bytes_read,
            store.bytes_of_range(0, store.grid().tile_count()));
}

}  // namespace
}  // namespace gstore::store
