#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generator.h"
#include "test_util.h"
#include "tile/compress.h"
#include "tile/convert.h"
#include "tile/grid.h"
#include "tile/grouping.h"
#include "tile/snb.h"
#include "tile/tile_file.h"
#include "util/rng.h"
#include "util/status.h"

namespace gstore::tile {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::GraphKind;
using graph::vid_t;

// ---- SNB codec ----------------------------------------------------------

TEST(Snb, EncodeDecodeRoundtrip) {
  const SnbEdge e = snb_encode(0x12345, 0x2468a, 0x10000, 0x20000);
  EXPECT_EQ(e.src16, 0x2345);
  EXPECT_EQ(e.dst16, 0x468a);
  const Edge back = snb_decode(e, 0x10000, 0x20000);
  EXPECT_EQ(back.src, 0x12345u);
  EXPECT_EQ(back.dst, 0x2468au);
}

TEST(Snb, PaperExampleTile11) {
  // Paper Fig 4(b): tile[1,1] offset (4,4); tuple (0,1) represents (4,5).
  const SnbEdge e = snb_encode(4, 5, 4, 4);
  EXPECT_EQ(e.src16, 0);
  EXPECT_EQ(e.dst16, 1);
  EXPECT_EQ(snb_decode(e, 4, 4), (Edge{4, 5}));
}

TEST(Snb, FourBytesPerEdge) { EXPECT_EQ(sizeof(SnbEdge), 4u); }

// ---- Grid ---------------------------------------------------------------

TEST(Grid, BasicDimensions) {
  Grid g(/*vertex_count=*/1000, /*symmetric=*/false, /*tile_bits=*/8,
         /*group_side=*/2);
  EXPECT_EQ(g.p(), 4u);  // ceil(1000/256)
  EXPECT_EQ(g.tile_width(), 256u);
  EXPECT_EQ(g.groups_per_side(), 2u);
  EXPECT_EQ(g.group_count(), 4u);
  EXPECT_EQ(g.tile_count(), 16u);
}

TEST(Grid, SymmetricStoresUpperTriangleOnly) {
  Grid g(1024, true, 8, 4);
  EXPECT_EQ(g.p(), 4u);
  EXPECT_EQ(g.tile_count(), 10u);  // 4*5/2
  EXPECT_TRUE(g.tile_exists(1, 3));
  EXPECT_FALSE(g.tile_exists(3, 1));
  EXPECT_TRUE(g.tile_exists(2, 2));
}

TEST(Grid, LayoutIsBijective) {
  for (const bool symmetric : {false, true}) {
    Grid g(5000, symmetric, 8, 3);  // p = 20, q = 3 (non-dividing)
    std::set<std::uint64_t> seen;
    for (std::uint32_t i = 0; i < g.p(); ++i)
      for (std::uint32_t j = 0; j < g.p(); ++j) {
        if (!g.tile_exists(i, j)) continue;
        const std::uint64_t idx = g.layout_index(i, j);
        EXPECT_TRUE(seen.insert(idx).second) << "duplicate layout index";
        const TileCoord c = g.coord_at(idx);
        EXPECT_EQ(c.i, i);
        EXPECT_EQ(c.j, j);
      }
    EXPECT_EQ(seen.size(), g.tile_count());
    EXPECT_EQ(*seen.rbegin(), g.tile_count() - 1);  // dense 0..n-1
  }
}

TEST(Grid, GroupRangesPartitionLayout) {
  Grid g(4096, true, 8, 4);
  std::uint64_t covered = 0;
  std::uint64_t prev_end = 0;
  for (std::uint64_t grp = 0; grp < g.group_count(); ++grp) {
    const auto [first, last] = g.group_range(grp);
    EXPECT_EQ(first, prev_end);  // contiguous on disk
    covered += last - first;
    prev_end = last;
  }
  EXPECT_EQ(covered, g.tile_count());
}

TEST(Grid, GroupOfMatchesRanges) {
  Grid g(4096, false, 8, 4);
  for (std::uint32_t i = 0; i < g.p(); ++i)
    for (std::uint32_t j = 0; j < g.p(); ++j) {
      const std::uint64_t grp = g.group_of(i, j);
      const auto [first, last] = g.group_range(grp);
      const std::uint64_t idx = g.layout_index(i, j);
      EXPECT_GE(idx, first);
      EXPECT_LT(idx, last);
    }
}

TEST(Grid, TilesWithinGroupAreLayoutContiguous) {
  // The point of physical grouping: one group = one sequential disk read.
  Grid g(1 << 14, true, 8, 8);
  for (std::uint64_t grp = 0; grp < g.group_count(); ++grp) {
    const auto [first, last] = g.group_range(grp);
    for (std::uint64_t k = first; k < last; ++k)
      EXPECT_EQ(g.group_of(g.coord_at(k).i, g.coord_at(k).j), grp);
  }
}

TEST(Grid, RejectsBadParameters) {
  EXPECT_THROW(Grid(0, false, 8, 1), Error);
  EXPECT_THROW(Grid(100, false, 0, 1), Error);
  EXPECT_THROW(Grid(100, false, 17, 1), Error);
}

TEST(Grid, NonexistentTileThrows) {
  Grid g(1024, true, 8, 2);
  EXPECT_THROW(g.layout_index(3, 1), InvalidArgument);
}

TEST(Grid, TileRowOfAndBase) {
  Grid g(1 << 12, false, 8, 1);
  EXPECT_EQ(g.tile_row_of(0), 0u);
  EXPECT_EQ(g.tile_row_of(255), 0u);
  EXPECT_EQ(g.tile_row_of(256), 1u);
  EXPECT_EQ(g.tile_base(3), 768u);
}

TEST(Grid, GroupSideClampedToP) {
  Grid g(512, false, 8, 1000);  // p = 2, q clamps to 2
  EXPECT_EQ(g.group_side(), 2u);
  EXPECT_EQ(g.groups_per_side(), 1u);
}

// ---- conversion + store -------------------------------------------------

ConvertOptions small_tiles() {
  ConvertOptions o;
  o.tile_bits = 4;  // 16-vertex tiles so toy graphs span many tiles
  o.group_side = 2;
  return o;
}

TEST(Convert, UndirectedEdgesStoredOnceUpperTriangle) {
  io::TempDir dir;
  auto el = EdgeList::from_edges({{5, 1}, {1, 2}, {30, 7}, {7, 30}},
                                 GraphKind::kUndirected);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  EXPECT_TRUE(store.meta().symmetric());
  const auto got = gstore::testing::decode_all_edges(store);
  // Canonical (min,max) per edge; the duplicate (7,30)/(30,7) is stored twice
  // (converter does not dedupe — that is normalize()'s job).
  std::multiset<std::pair<vid_t, vid_t>> want{{1, 5}, {1, 2}, {7, 30}, {7, 30}};
  std::multiset<std::pair<vid_t, vid_t>> have;
  for (const Edge& e : got) {
    EXPECT_LE(e.src, e.dst);
    have.insert({e.src, e.dst});
  }
  EXPECT_EQ(have, want);
}

TEST(Convert, SelfLoopsDropped) {
  io::TempDir dir;
  auto el = EdgeList::from_edges({{3, 3}, {1, 2}}, GraphKind::kUndirected);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  EXPECT_EQ(store.edge_count(), 1u);
}

TEST(Convert, DirectedOutEdges) {
  io::TempDir dir;
  auto el = EdgeList::from_edges({{5, 1}, {1, 5}}, GraphKind::kDirected);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  EXPECT_TRUE(store.meta().directed());
  EXPECT_FALSE(store.meta().in_edges());
  const auto got = gstore::testing::decode_all_edges(store);
  std::multiset<std::pair<vid_t, vid_t>> have;
  for (const Edge& e : got) have.insert({e.src, e.dst});
  EXPECT_EQ(have, (std::multiset<std::pair<vid_t, vid_t>>{{1, 5}, {5, 1}}));
}

TEST(Convert, DirectedInEdgesStoredTransposed) {
  io::TempDir dir;
  auto el = EdgeList::from_edges({{5, 1}}, GraphKind::kDirected);
  ConvertOptions o = small_tiles();
  o.out_edges = false;
  auto store = gstore::testing::make_store(dir, el, o);
  EXPECT_TRUE(store.meta().in_edges());
  const auto got = gstore::testing::decode_all_edges(store);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Edge{1, 5}));  // tuple is (dst, src)
}

TEST(Convert, StartEdgeIndexConsistent) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 8, GraphKind::kUndirected, 11);
  ConvertOptions o;
  o.tile_bits = 6;
  o.group_side = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  const auto& start = store.start_edge();
  EXPECT_EQ(start.front(), 0u);
  EXPECT_EQ(start.back(), store.edge_count());
  EXPECT_TRUE(std::is_sorted(start.begin(), start.end()));
  std::uint64_t sum = 0;
  for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k)
    sum += store.tile_edge_count(k);
  EXPECT_EQ(sum, store.edge_count());
}

TEST(Convert, EveryEdgePreservedOnKron) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 13);
  ConvertOptions o;
  o.tile_bits = 5;
  o.group_side = 3;
  auto store = gstore::testing::make_store(dir, el, o);
  std::multiset<std::pair<vid_t, vid_t>> want;
  for (Edge e : el.edges()) {
    if (e.src == e.dst) continue;
    if (e.src > e.dst) std::swap(e.src, e.dst);
    want.insert({e.src, e.dst});
  }
  std::multiset<std::pair<vid_t, vid_t>> have;
  for (const Edge& e : gstore::testing::decode_all_edges(store))
    have.insert({e.src, e.dst});
  EXPECT_EQ(have, want);
}

TEST(Convert, DegreesFileMatchesEdgeList) {
  io::TempDir dir;
  auto el = graph::star(40);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  const auto deg = store.load_degrees();
  ASSERT_EQ(deg.size(), 40u);
  EXPECT_EQ(deg[0], 39u);
  for (vid_t v = 1; v < 40; ++v) EXPECT_EQ(deg[v], 1u);
}

TEST(Convert, StorageHalvedVsEdgeListForSmallGraphs) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 8, GraphKind::kUndirected, 3);
  auto store = gstore::testing::make_store(dir, el, ConvertOptions{});
  // Undirected edge list = 2|E| × 8B; tiles = |E| × 4B (minus dropped
  // loops) + index overhead → at least ~4× saving at these sizes.
  EXPECT_LT(store.storage_bytes(), el.storage_bytes() / 3);
}

TEST(Convert, ConversionStatsPopulated) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 4, GraphKind::kUndirected, 3);
  const auto stats = convert_to_tiles(el, dir.file("k"), ConvertOptions{});
  EXPECT_GT(stats.stored_edges, 0u);
  // v3 codecs beat the raw 4-byte tuples on a kron graph, so total bytes
  // (payloads + headers + index) land below the logical SNB size.
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.payload_bytes, 0u);
  EXPECT_LT(stats.payload_bytes, stats.stored_edges * sizeof(SnbEdge));
  std::uint64_t coded_tiles = 0;
  for (std::uint64_t c : stats.codec_tiles) coded_tiles += c;
  EXPECT_EQ(coded_tiles, stats.tile_count);
  EXPECT_GE(stats.total_seconds, 0.0);
  EXPECT_EQ(stats.tile_count, 1u);  // scale 10 fits one 2^16 tile
}

TEST(TileStore, RejectsCorruptSei) {
  io::TempDir dir;
  auto el = graph::path(100);
  convert_to_tiles(el, dir.file("g"), small_tiles());
  {
    io::File f(dir.file("g.sei"), io::OpenMode::kReadWrite);
    std::uint64_t junk = 0xdeadbeef;
    f.pwrite_full(&junk, sizeof(junk), 0);
  }
  EXPECT_THROW(TileStore::open(dir.file("g")), FormatError);
}

TEST(TileStore, RejectsTruncatedTiles) {
  io::TempDir dir;
  auto el = graph::path(100);
  convert_to_tiles(el, dir.file("g"), small_tiles());
  {
    io::File f(dir.file("g.tiles"), io::OpenMode::kReadWrite);
    f.truncate(f.size() - 4);
  }
  EXPECT_THROW(TileStore::open(dir.file("g")), FormatError);
}

TEST(TileStore, ReadRangeSpansMultipleTiles) {
  io::TempDir dir;
  auto el = graph::complete(32);
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  ASSERT_GE(store.grid().tile_count(), 3u);
  const std::uint64_t bytes = store.bytes_of_range(0, 3);
  std::vector<std::uint8_t> buf(bytes);
  store.read_range(0, 3, buf.data());
  // Views over the packed range must decode to edges in range.
  std::uint64_t off = 0;
  for (std::uint64_t k = 0; k < 3; ++k) {
    const TileView v = store.view(k, buf.data() + off);
    for (const SnbEdge& e : v.edges) {
      const Edge g = snb_decode(e, v.src_base, v.dst_base);
      EXPECT_LT(g.src, 32u);
      EXPECT_LT(g.dst, 32u);
    }
    off += store.tile_bytes(k);
  }
}

TEST(TileStore, MaxTileBytesIsMax) {
  io::TempDir dir;
  auto el = graph::star(200);  // everything lands in row 0 tiles
  auto store = gstore::testing::make_store(dir, el, small_tiles());
  std::uint64_t mx = 0;
  for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k)
    mx = std::max(mx, store.tile_bytes(k));
  EXPECT_EQ(store.max_tile_bytes(), mx);
  EXPECT_GT(mx, 0u);
}

// ---- grouping -----------------------------------------------------------

TEST(Grouping, StatsSumToStoreTotals) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 8, GraphKind::kUndirected, 5);
  ConvertOptions o;
  o.tile_bits = 5;
  o.group_side = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  const auto stats = group_stats(store);
  std::uint64_t edges = 0, tiles = 0;
  for (const auto& s : stats) {
    edges += s.edges;
    tiles += s.tiles;
  }
  EXPECT_EQ(edges, store.edge_count());
  EXPECT_EQ(tiles, store.grid().tile_count());
}

TEST(Grouping, TileEdgeCountsMatchStore) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 4, GraphKind::kUndirected, 5);
  ConvertOptions o;
  o.tile_bits = 5;
  auto store = gstore::testing::make_store(dir, el, o);
  const auto counts = tile_edge_counts(store);
  ASSERT_EQ(counts.size(), store.grid().tile_count());
  for (std::uint64_t k = 0; k < counts.size(); ++k)
    EXPECT_EQ(counts[k], store.tile_edge_count(k));
}

TEST(Grouping, MetadataBytesDiagonalVsOffDiagonal) {
  Grid g(1 << 12, false, 8, 4);  // p=16, q=4, width=256
  // Diagonal group covers one 1024-vertex range; off-diagonal covers two.
  const std::uint64_t diag = group_metadata_bytes(g, 0, 4);
  const std::uint64_t off = group_metadata_bytes(g, 1, 4);
  EXPECT_EQ(diag, 1024u * 4);
  EXPECT_EQ(off, 2048u * 4);
}

TEST(Grouping, PickGroupSideFitsLlc) {
  // 16MB LLC, 4B metadata, 2^16-wide tiles: 2*q*65536*4 <= 16MB → q = 32.
  EXPECT_EQ(pick_group_side(16, 16ull << 20, 4), 32u);
  // Tiny LLC floors at 1.
  EXPECT_EQ(pick_group_side(16, 1024, 4), 1u);
}

// ---- compression (future-work extension) ---------------------------------

TEST(Compress, RoundTripRandomTiles) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SnbEdge> edges(rng.next_below(500));
    for (auto& e : edges) {
      e.src16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
      e.dst16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
    }
    auto payload = compress_tile(edges);
    auto back = decompress_tile(payload);
    // compress_tile preserves input order (writers sort beforehand when
    // they want ratio); the round trip must be bit-exact, not merely a
    // multiset match.
    EXPECT_EQ(back, edges);
  }
}

TEST(Compress, DenseRowsCompressWell) {
  // One hub row with many sorted destinations — the power-law tile shape.
  std::vector<SnbEdge> edges;
  for (std::uint16_t d = 0; d < 2000; ++d)
    edges.push_back(SnbEdge{7, static_cast<std::uint16_t>(d * 3)});
  const std::size_t raw = edges.size() * sizeof(SnbEdge);
  // ~2 bytes/edge (two 1-byte varints) vs 4 raw.
  EXPECT_LT(compressed_size(edges), raw * 6 / 10);
}

TEST(Compress, IncompressibleFallsBackToRaw) {
  Xoshiro256 rng(123);
  std::vector<SnbEdge> edges(300);
  for (auto& e : edges) {
    e.src16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
    e.dst16 = static_cast<std::uint16_t>(rng.next_below(1 << 16));
  }
  auto payload = compress_tile(edges);
  EXPECT_LE(payload.size(),
            kTilePayloadHeaderBytes + edges.size() * sizeof(SnbEdge));
  auto back = decompress_tile(payload);
  EXPECT_EQ(back.size(), edges.size());
}

TEST(Compress, EmptyTile) {
  auto payload = compress_tile({});
  EXPECT_TRUE(decompress_tile(payload).empty());
}

TEST(Compress, RejectsGarbage) {
  std::vector<std::uint8_t> junk{42, 1, 2, 3};
  EXPECT_THROW(decompress_tile(junk), FormatError);
  EXPECT_THROW(decompress_tile({}), FormatError);
}

}  // namespace
}  // namespace gstore::tile
// Appended: Fig 10 ablation format variants (non-SNB tuples, full-matrix
// storage). These live outside the anonymous namespace above on purpose —
// they re-open the same namespaces.
namespace gstore::tile {
namespace {

TEST(ConvertVariants, FatTuplesRoundTrip) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, graph::GraphKind::kUndirected, 41);
  ConvertOptions snb_opts;
  snb_opts.tile_bits = 5;
  ConvertOptions fat_opts = snb_opts;
  fat_opts.snb = false;
  auto s1 = gstore::testing::make_store(dir, el, snb_opts, {}, "snb");
  auto s2 = gstore::testing::make_store(dir, el, fat_opts, {}, "fat");
  EXPECT_FALSE(s1.meta().fat_tuples());
  EXPECT_TRUE(s2.meta().fat_tuples());
  EXPECT_EQ(s1.edge_count(), s2.edge_count());
  // Same logical edges, twice the bytes.
  EXPECT_EQ(s2.data_bytes(), 2 * s1.data_bytes());
  auto e1 = gstore::testing::decode_all_edges(s1);
  auto e2 = gstore::testing::decode_all_edges(s2);
  std::sort(e1.begin(), e1.end());
  std::sort(e2.begin(), e2.end());
  EXPECT_EQ(e1, e2);
}

TEST(ConvertVariants, FullMatrixStoresBothOrientations) {
  io::TempDir dir;
  auto el = graph::EdgeList::from_edges({{1, 5}, {2, 9}},
                                        graph::GraphKind::kUndirected);
  ConvertOptions o;
  o.tile_bits = 4;
  o.symmetry = false;
  auto store = gstore::testing::make_store(dir, el, o);
  EXPECT_FALSE(store.meta().symmetric());
  EXPECT_EQ(store.edge_count(), 4u);  // both orientations
  const auto got = gstore::testing::decode_all_edges(store);
  std::multiset<std::pair<graph::vid_t, graph::vid_t>> have;
  for (const auto& e : got) have.insert({e.src, e.dst});
  EXPECT_EQ(have, (std::multiset<std::pair<graph::vid_t, graph::vid_t>>{
                      {1, 5}, {5, 1}, {2, 9}, {9, 2}}));
}

TEST(ConvertVariants, SpaceLadderMatchesFig10) {
  // base (full matrix + fat) : symmetry only (fat) : symmetry+SNB
  // must be 4 : 2 : 1 in data bytes — the paper's space-saving ladder.
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, graph::GraphKind::kUndirected, 43);
  el.normalize();
  ConvertOptions base, sym, full;
  base.tile_bits = sym.tile_bits = full.tile_bits = 6;
  base.symmetry = false;
  base.snb = false;
  sym.snb = false;
  auto s_base = gstore::testing::make_store(dir, el, base, {}, "base");
  auto s_sym = gstore::testing::make_store(dir, el, sym, {}, "sym");
  auto s_full = gstore::testing::make_store(dir, el, full, {}, "full");
  EXPECT_EQ(s_base.data_bytes(), 4 * s_full.data_bytes());
  EXPECT_EQ(s_sym.data_bytes(), 2 * s_full.data_bytes());
}

}  // namespace
}  // namespace gstore::tile
