#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "io/async_engine.h"
#include "io/device.h"
#include "io/file.h"
#include "io/throttle.h"
#include "util/aligned_buffer.h"
#include "util/status.h"
#include "util/timer.h"

namespace gstore::io {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return v;
}

// ---- File ---------------------------------------------------------------

TEST(File, WriteReadRoundtrip) {
  TempDir dir;
  const auto data = pattern_bytes(10000);
  {
    File f(dir.file("a.bin"), OpenMode::kWrite);
    f.append(data.data(), data.size());
    f.sync();
  }
  File f(dir.file("a.bin"), OpenMode::kRead);
  EXPECT_EQ(f.size(), data.size());
  std::vector<std::uint8_t> back(data.size());
  f.pread_full(back.data(), back.size(), 0);
  EXPECT_EQ(back, data);
}

TEST(File, PreadAtOffset) {
  TempDir dir;
  const auto data = pattern_bytes(4096);
  File w(dir.file("b.bin"), OpenMode::kWrite);
  w.append(data.data(), data.size());
  File r(dir.file("b.bin"), OpenMode::kRead);
  std::uint8_t byte = 0;
  r.pread_full(&byte, 1, 1234);
  EXPECT_EQ(byte, data[1234]);
}

TEST(File, ShortReadThrows) {
  TempDir dir;
  File w(dir.file("c.bin"), OpenMode::kWrite);
  w.append("hello", 5);
  File r(dir.file("c.bin"), OpenMode::kRead);
  char buf[32];
  EXPECT_THROW(r.pread_full(buf, 32, 0), IoError);
  EXPECT_EQ(r.pread_some(buf, 32, 0), 5u);
  EXPECT_EQ(r.pread_some(buf, 32, 100), 0u);  // past EOF
}

TEST(File, OpenMissingThrows) {
  EXPECT_THROW(File("/nonexistent/dir/file", OpenMode::kRead), IoError);
}

TEST(File, TruncateAndSize) {
  TempDir dir;
  File f(dir.file("d.bin"), OpenMode::kReadWrite);
  const auto data = pattern_bytes(1000);
  f.pwrite_full(data.data(), data.size(), 0);
  EXPECT_EQ(f.size(), 1000u);
  f.truncate(100);
  EXPECT_EQ(f.size(), 100u);
}

TEST(File, MoveSemantics) {
  TempDir dir;
  File a(dir.file("e.bin"), OpenMode::kWrite);
  a.append("x", 1);
  File b(std::move(a));
  EXPECT_FALSE(a.is_open());
  EXPECT_TRUE(b.is_open());
  b.append("y", 1);
  b.close();
  EXPECT_EQ(File::file_size(dir.file("e.bin")), 2u);
}

TEST(File, ExistsAndRemove) {
  TempDir dir;
  const std::string p = dir.file("f.bin");
  EXPECT_FALSE(File::exists(p));
  {
    File f(p, OpenMode::kWrite);
  }
  EXPECT_TRUE(File::exists(p));
  File::remove(p);
  EXPECT_FALSE(File::exists(p));
  File::remove(p);  // idempotent
}

TEST(File, DirectModeFallsBackOrWorks) {
  // tmpfs rejects O_DIRECT; either path must produce a readable file.
  TempDir dir;
  const auto data = pattern_bytes(8192);
  {
    File f(dir.file("g.bin"), OpenMode::kWrite);
    f.append(data.data(), data.size());
  }
  File r(dir.file("g.bin"), OpenMode::kRead, /*direct=*/true);
  AlignedBuffer buf(8192);
  r.pread_full(buf.data(), 8192, 0);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), 8192), 0);
}

TEST(TempDir, RemovesContentsOnDestruction) {
  std::string path;
  {
    TempDir dir;
    path = dir.path();
    File f(dir.file("x"), OpenMode::kWrite);
    f.append("data", 4);
    EXPECT_TRUE(File::exists(path));
  }
  EXPECT_FALSE(File::exists(path));
}

// ---- AsyncEngine --------------------------------------------------------

class AsyncEngineTest : public ::testing::TestWithParam<Backend> {};

TEST_P(AsyncEngineTest, BatchReadCompletesAll) {
  TempDir dir;
  const auto data = pattern_bytes(64 * 1024);
  {
    File w(dir.file("a.bin"), OpenMode::kWrite);
    w.append(data.data(), data.size());
  }
  File r(dir.file("a.bin"), OpenMode::kRead);
  AsyncEngine eng(GetParam(), 16, 2);

  constexpr int kReqs = 20;
  std::vector<std::vector<std::uint8_t>> bufs(kReqs,
                                              std::vector<std::uint8_t>(1024));
  std::vector<ReadRequest> batch;
  for (int i = 0; i < kReqs; ++i) {
    ReadRequest req;
    req.file = &r;
    req.offset = static_cast<std::uint64_t>(i) * 1024;
    req.length = 1024;
    req.buffer = bufs[i].data();
    req.tag = static_cast<std::uint64_t>(i);
    batch.push_back(req);
  }
  eng.submit(batch);

  std::vector<Completion> done;
  while (done.size() < kReqs) eng.poll(1, kReqs, done);
  EXPECT_EQ(eng.in_flight(), 0u);

  std::vector<bool> seen(kReqs, false);
  for (const auto& c : done) {
    EXPECT_TRUE(c.ok);
    EXPECT_EQ(c.bytes, 1024u);
    seen[c.tag] = true;
  }
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_TRUE(seen[i]);
    EXPECT_EQ(std::memcmp(bufs[i].data(), data.data() + i * 1024, 1024), 0);
  }
  EXPECT_EQ(eng.bytes_read(), static_cast<std::uint64_t>(kReqs) * 1024);
  EXPECT_EQ(eng.submit_calls(), 1u);
}

TEST_P(AsyncEngineTest, EofGivesShortCompletion) {
  TempDir dir;
  {
    File w(dir.file("s.bin"), OpenMode::kWrite);
    w.append("abc", 3);
  }
  File r(dir.file("s.bin"), OpenMode::kRead);
  AsyncEngine eng(GetParam());
  std::uint8_t buf[16];
  eng.submit({ReadRequest{&r, 0, 16, buf, 1}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_EQ(done[0].bytes, 3u);
}

TEST_P(AsyncEngineTest, DrainWaitsForEverything) {
  TempDir dir;
  const auto data = pattern_bytes(256 * 1024);
  {
    File w(dir.file("d.bin"), OpenMode::kWrite);
    w.append(data.data(), data.size());
  }
  File r(dir.file("d.bin"), OpenMode::kRead);
  AsyncEngine eng(GetParam(), 8, 2);
  std::vector<std::vector<std::uint8_t>> bufs(50,
                                              std::vector<std::uint8_t>(4096));
  std::vector<ReadRequest> batch;
  for (int i = 0; i < 50; ++i)
    batch.push_back(ReadRequest{&r, static_cast<std::uint64_t>(i) * 4096, 4096,
                                bufs[i].data(), static_cast<std::uint64_t>(i)});
  eng.submit(batch);
  eng.drain();
  EXPECT_EQ(eng.in_flight(), 0u);
  EXPECT_EQ(eng.bytes_read(), 50u * 4096);
}

TEST_P(AsyncEngineTest, NonBlockingPollReturnsZeroWhenIdle) {
  AsyncEngine eng(GetParam());
  std::vector<Completion> done;
  EXPECT_EQ(eng.poll(0, 8, done), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncEngineTest,
                         ::testing::Values(Backend::kThreadPool, Backend::kSync),
                         [](const auto& info) {
                           return info.param == Backend::kThreadPool ? "ThreadPool"
                                                                     : "Sync";
                         });

// ---- Throttle -----------------------------------------------------------

TEST(Throttle, DisabledIsFree) {
  Throttle t(0);
  Timer timer;
  for (int i = 0; i < 100; ++i) t.acquire(100 << 20);
  EXPECT_LT(timer.seconds(), 0.5);
}

TEST(Throttle, LimitsSustainedRate) {
  // 100 MB/s with a 1MB burst: acquiring 20MB more than the burst must take
  // roughly 20MB / 100MBps ~= 0.2s.
  Throttle t(100ull << 20, 1ull << 20);
  Timer timer;
  std::uint64_t total = 0;
  while (total < (21ull << 20)) {
    t.acquire(256 << 10);
    total += 256 << 10;
  }
  const double elapsed = timer.seconds();
  EXPECT_GT(elapsed, 0.10);
  EXPECT_LT(elapsed, 2.0);
}

TEST(Throttle, OversizedRequestProceeds) {
  Throttle t(1ull << 30, 64 << 10);  // request far above burst
  t.acquire(10ull << 20);            // must not deadlock
}

// ---- Device -------------------------------------------------------------

TEST(Device, SyncReadAndStats) {
  TempDir dir;
  const auto data = pattern_bytes(32 * 1024);
  {
    File w(dir.file("v.bin"), OpenMode::kWrite);
    w.append(data.data(), data.size());
  }
  Device dev(dir.file("v.bin"));
  std::vector<std::uint8_t> buf(1024);
  dev.read(buf.data(), buf.size(), 2048);
  EXPECT_EQ(std::memcmp(buf.data(), data.data() + 2048, 1024), 0);
  EXPECT_EQ(dev.stats().bytes_read, 1024u);
  EXPECT_EQ(dev.stats().read_ops, 1u);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().bytes_read, 0u);
}

TEST(Device, AsyncBatchAndDrain) {
  TempDir dir;
  const auto data = pattern_bytes(64 * 1024);
  {
    File w(dir.file("w.bin"), OpenMode::kWrite);
    w.append(data.data(), data.size());
  }
  Device dev(dir.file("w.bin"));
  std::vector<std::uint8_t> a(4096), b(4096);
  std::vector<ReadRequest> batch(2);
  batch[0].offset = 0;
  batch[0].length = 4096;
  batch[0].buffer = a.data();
  batch[0].tag = 1;
  batch[1].offset = 8192;
  batch[1].length = 4096;
  batch[1].buffer = b.data();
  batch[1].tag = 2;
  dev.submit(std::move(batch));
  dev.drain();
  EXPECT_EQ(std::memcmp(a.data(), data.data(), 4096), 0);
  EXPECT_EQ(std::memcmp(b.data(), data.data() + 8192, 4096), 0);
  EXPECT_EQ(dev.stats().bytes_read, 8192u);
  EXPECT_EQ(dev.stats().submit_calls, 1u);
}

TEST(Device, ThrottledDeviceSlowerThanUnthrottled) {
  TempDir dir;
  const auto data = pattern_bytes(4 << 20);
  {
    File w(dir.file("t.bin"), OpenMode::kWrite);
    w.append(data.data(), data.size());
  }
  std::vector<std::uint8_t> buf(4 << 20);

  DeviceConfig slow;
  slow.devices = 1;
  slow.per_device_bw = 8ull << 20;  // 8 MB/s
  Device dev(dir.file("t.bin"), slow);
  Timer t;
  dev.read(buf.data(), buf.size(), 0);
  // 4MB at 8MB/s minus the initial 4MB burst allowance: should take a
  // measurable fraction of a second but not instantly.
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_EQ(dev.stats().bytes_read, std::uint64_t{4} << 20);
}

}  // namespace
}  // namespace gstore::io
// Appended: byte-range tiering (future-work feature).
#include "io/tiering.h"

namespace gstore::io {
namespace {

TEST(TierMap, SplitsRangesExactly) {
  TierMap m;
  m.add_range(0, 100, 0);
  m.add_range(100, 300, 1);
  m.add_range(300, 400, 0);
  EXPECT_EQ(m.split(0, 100), (std::pair<std::uint64_t, std::uint64_t>{100, 0}));
  EXPECT_EQ(m.split(100, 300), (std::pair<std::uint64_t, std::uint64_t>{0, 200}));
  // 50..100 fast (50) + 100..300 slow (200) + 300..350 fast (50).
  EXPECT_EQ(m.split(50, 350), (std::pair<std::uint64_t, std::uint64_t>{100, 200}));
  EXPECT_EQ(m.split(150, 250), (std::pair<std::uint64_t, std::uint64_t>{0, 100}));
  EXPECT_EQ(m.tier_bytes(0), 200u);
  EXPECT_EQ(m.tier_bytes(1), 200u);
}

TEST(TierMap, UndeclaredBytesAreFast) {
  TierMap m;
  m.add_range(100, 200, 1);
  EXPECT_EQ(m.split(0, 100).second, 0u);
  EXPECT_EQ(m.split(0, 300).second, 100u);
  EXPECT_EQ(m.split(250, 300).second, 0u);
}

TEST(TierMap, MergesAdjacentSameTier) {
  TierMap m;
  m.add_range(0, 50, 1);
  m.add_range(50, 100, 1);
  EXPECT_EQ(m.split(0, 100).second, 100u);
}

TEST(TierMap, RejectsOutOfOrder) {
  TierMap m;
  m.add_range(100, 200, 0);
  EXPECT_THROW(m.add_range(50, 150, 1), gstore::Error);
  EXPECT_THROW(m.add_range(300, 250, 0), gstore::Error);
  EXPECT_THROW(m.add_range(300, 400, 7), gstore::Error);
}

TEST(TierMap, EmptySplit) {
  TierMap m;
  EXPECT_EQ(m.split(10, 10).first, 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Device, TieredReadsChargeSlowTier) {
  TempDir dir;
  const auto data = pattern_bytes(2 << 20);
  {
    File w(dir.file("t.bin"), OpenMode::kWrite);
    w.append(data.data(), data.size());
  }
  DeviceConfig cfg;
  cfg.devices = 1;
  cfg.per_device_bw = 1ull << 30;  // fast tier effectively free
  cfg.slow_tier_bw = 8ull << 20;   // slow tier 8 MB/s
  cfg.burst_bytes = 64 << 10;
  Device dev(dir.file("t.bin"), cfg);
  TierMap map;
  map.add_range(0, 1 << 20, 0);
  map.add_range(1 << 20, 2 << 20, 1);
  dev.set_tier_map(std::move(map));

  std::vector<std::uint8_t> buf(1 << 20);
  Timer fast_t;
  dev.read(buf.data(), buf.size(), 0);  // fast tier
  const double fast_secs = fast_t.seconds();
  Timer slow_t;
  dev.read(buf.data(), buf.size(), 1 << 20);  // slow tier: ~1MB at 8MB/s
  const double slow_secs = slow_t.seconds();
  EXPECT_GT(slow_secs, 0.05);
  EXPECT_GT(slow_secs, 5 * fast_secs);
  EXPECT_EQ(std::memcmp(buf.data(), data.data() + (1 << 20), 1 << 20), 0);
}

}  // namespace
}  // namespace gstore::io
// Appended: RAID-0 style striping.
#include "io/striped.h"

#include "util/rng.h"

namespace gstore::io {
namespace {

TEST(Striped, RoundTripMatchesFlatFile) {
  TempDir dir;
  const auto data = pattern_bytes(300'000);  // not a stripe multiple
  {
    File f(dir.file("flat"), OpenMode::kWrite);
    f.append(data.data(), data.size());
  }
  for (const unsigned members : {1u, 2u, 3u, 8u}) {
    const std::string base = dir.file("set" + std::to_string(members));
    const std::uint64_t total =
        stripe_file(dir.file("flat"), base, members, 4096);
    EXPECT_EQ(total, data.size());
    StripedFile sf(base, members, 4096);
    EXPECT_EQ(sf.size(), data.size());

    std::vector<std::uint8_t> back(data.size());
    sf.pread_full(back.data(), back.size(), 0);
    ASSERT_EQ(back, data) << members << " members";
  }
}

TEST(Striped, RandomOffsetReadsMatch) {
  TempDir dir;
  const auto data = pattern_bytes(100'000);
  {
    File f(dir.file("flat"), OpenMode::kWrite);
    f.append(data.data(), data.size());
  }
  stripe_file(dir.file("flat"), dir.file("set"), 4, 1024);
  StripedFile sf(dir.file("set"), 4, 1024);
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t off = rng.next_below(data.size());
    const std::size_t len =
        static_cast<std::size_t>(rng.next_below(5000) + 1);
    std::vector<std::uint8_t> got(len, 0);
    const std::size_t n = sf.pread_some(got.data(), len, off);
    const std::size_t want_n =
        static_cast<std::size_t>(std::min<std::uint64_t>(len, data.size() - off));
    ASSERT_EQ(n, want_n);
    ASSERT_EQ(0, std::memcmp(got.data(), data.data() + off, n));
  }
  // Reads entirely past EOF return zero bytes.
  std::uint8_t b;
  EXPECT_EQ(sf.pread_some(&b, 1, data.size() + 10), 0u);
}

TEST(Striped, MissingMemberThrows) {
  TempDir dir;
  {
    File f(dir.file("flat"), OpenMode::kWrite);
    f.append("0123456789", 10);
  }
  stripe_file(dir.file("flat"), dir.file("set"), 2, 1024);
  EXPECT_THROW(StripedFile(dir.file("set"), 3, 1024), IoError);
}

TEST(Striped, DeviceReadsThroughStripes) {
  TempDir dir;
  const auto data = pattern_bytes(256 * 1024);
  {
    File f(dir.file("flat"), OpenMode::kWrite);
    f.append(data.data(), data.size());
  }
  stripe_file(dir.file("flat"), dir.file("set"), 4);
  DeviceConfig cfg;
  cfg.stripe_files = 4;
  Device dev(dir.file("set"), cfg);
  EXPECT_EQ(dev.size(), data.size());
  std::vector<std::uint8_t> a(10'000), b(10'000);
  dev.read(a.data(), a.size(), 12'345);
  EXPECT_EQ(0, std::memcmp(a.data(), data.data() + 12'345, a.size()));
  std::vector<ReadRequest> batch(1);
  batch[0].offset = 100'000;
  batch[0].length = b.size();
  batch[0].buffer = b.data();
  dev.submit(std::move(batch));
  dev.drain();
  EXPECT_EQ(0, std::memcmp(b.data(), data.data() + 100'000, b.size()));
}

}  // namespace
}  // namespace gstore::io
