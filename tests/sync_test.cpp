// Tests for util/sync.h: wrapper behavior in every build, lockdep-lite
// reports in GSTORE_DCHECK builds (skipped elsewhere — release builds
// compile the checking out entirely).
#include "util/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gstore {
namespace {

TEST(SyncTest, MutexProvidesMutualExclusion) {
  Mutex mu{"test::counter_mu"};
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000u);
}

TEST(SyncTest, TryLockReflectsOwnership) {
  Mutex mu{"test::trylock_mu"};
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu{"test::rw_mu"};
  ReaderMutexLock first(mu);
  // A second reader on another thread must not block behind the first.
  std::thread reader([&] { ReaderMutexLock second(mu); });
  reader.join();
}

TEST(SyncTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu{"test::cv_mu"};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

#if GSTORE_LOCKDEP

// The two-lock inversion: thread 1 takes A then B (recording A → B), thread
// 2 then takes B and A in the reverse order. Lockdep must abort on the
// second thread's acquisition of A even though this interleaving never
// actually deadlocks (thread 1 is long gone).
void run_ab_ba_inversion() {
  Mutex a{"test::A"};
  Mutex b{"test::B"};
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock lb(b);
    MutexLock la(a);  // inversion: aborts here
  });
  t2.join();
}

TEST(SyncLockdepDeathTest, DetectsOrderInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(run_ab_ba_inversion(), "lock-order inversion");
}

void run_transitive_inversion() {
  Mutex a{"test::TA"};
  Mutex b{"test::TB"};
  Mutex c{"test::TC"};
  {
    MutexLock la(a);
    MutexLock lb(b);  // A → B
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);  // B → C
  }
  {
    MutexLock lc(c);
    MutexLock la(a);  // closes C → A: cycle through B
  }
}

TEST(SyncLockdepDeathTest, DetectsInversionThroughChain) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(run_transitive_inversion(), "lock-order inversion");
}

TEST(SyncLockdepDeathTest, DetectsRecursiveAcquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      [] {
        Mutex mu{"test::recursive"};
        MutexLock outer(mu);
        mu.lock();  // self-deadlock
      }(),
      "recursive acquisition");
}

TEST(SyncLockdepTest, ConsistentOrderIsQuiet) {
  // Same pair, same order, from two threads: no report, no deadlock.
  Mutex a{"test::QA"};
  Mutex b{"test::QB"};
  auto locked_sum = [&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock la(a);
      MutexLock lb(b);
    }
  };
  std::thread t1(locked_sum);
  std::thread t2(locked_sum);
  t1.join();
  t2.join();
}

#else  // !GSTORE_LOCKDEP

TEST(SyncLockdepDeathTest, CompiledOutInRelease) {
  GTEST_SKIP() << "lockdep rides GSTORE_DCHECK builds; nothing to test here";
}

#endif  // GSTORE_LOCKDEP

}  // namespace
}  // namespace gstore
