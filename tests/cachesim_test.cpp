#include <gtest/gtest.h>

#include "cachesim/cache_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace gstore::cachesim {
namespace {

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheLevel, GeometryDerived) {
  CacheLevel c(64 << 10, 64, 8);
  EXPECT_EQ(c.sets(), (64u << 10) / (64 * 8));
  EXPECT_EQ(c.line_bytes(), 64u);
  EXPECT_EQ(c.ways(), 8u);
}

TEST(CacheLevel, LruEvictionWithinSet) {
  // 2-way, line 64, 2 sets → addresses 0, 256, 512 all map to set 0.
  CacheLevel c(256, 64, 2);
  EXPECT_EQ(c.sets(), 2u);
  c.access(0);
  c.access(256);
  EXPECT_TRUE(c.access(0));    // refresh 0; 256 becomes LRU
  c.access(512);               // evicts 256
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(256));  // was evicted
}

TEST(CacheLevel, FullyAssociativeKeepsWorkingSet) {
  CacheLevel c(64 * 16, 64, 16);  // one set, 16 ways
  for (int round = 0; round < 3; ++round)
    for (std::uint64_t line = 0; line < 16; ++line) c.access(line * 64);
  EXPECT_EQ(c.stats().misses, 16u);  // only cold misses
}

TEST(CacheLevel, ResetClears) {
  CacheLevel c(1024, 64, 2);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_FALSE(c.access(0));
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(CacheLevel(1000, 64, 2), Error);   // not multiple
  EXPECT_THROW(CacheLevel(1024, 60, 2), Error);   // line not pow2
  EXPECT_THROW(CacheLevel(1024, 64, 0), Error);   // zero ways
}

TEST(CacheHierarchy, L2HitNeverReachesLlc) {
  CacheHierarchy h(4096, 64 << 10, 64);
  h.access(0);
  h.access(0);
  h.access(0);
  EXPECT_EQ(h.llc_operations(), 1u);  // only the cold miss went down
  EXPECT_EQ(h.l2_stats().hits, 2u);
}

TEST(CacheHierarchy, SequentialBeatsRandomMissCount) {
  // Same number of 4-byte accesses; sequential touches each line 16 times
  // (absorbed by L2), random misses almost every time.
  Xoshiro256 rng(5);
  const std::uint64_t span = 64ull << 20;  // 64MB working set >> LLC
  CacheHierarchy seq(256 << 10, 4 << 20);
  for (std::uint64_t a = 0; a < (1u << 20); a += 4) seq.access(a % span);
  CacheHierarchy rnd(256 << 10, 4 << 20);
  for (int i = 0; i < (1 << 18); ++i) rnd.access(rng.next_below(span));
  EXPECT_LT(seq.llc_misses() * 4, rnd.llc_misses());
  EXPECT_LT(seq.llc_operations(), rnd.llc_operations());
}

TEST(CacheHierarchy, LocalizedAccessLowersLlcMisses) {
  // The Fig 12 mechanism in miniature: the same number of "metadata"
  // accesses, either confined to an LLC-sized window (grouped tiles) or
  // spread over a much larger array (ungrouped).
  const std::uint64_t llc = 1 << 20;
  Xoshiro256 rng(7);
  CacheHierarchy grouped(32 << 10, llc);
  for (int i = 0; i < 200000; ++i)
    grouped.access(rng.next_below(llc / 2));  // fits LLC
  CacheHierarchy scattered(32 << 10, llc);
  for (int i = 0; i < 200000; ++i)
    scattered.access(rng.next_below(64ull << 20));  // way beyond LLC
  EXPECT_LT(grouped.llc_misses() * 5, scattered.llc_misses());
}

}  // namespace
}  // namespace gstore::cachesim
