// Tests for the gstore_serve subsystem: the NDJSON protocol, generation
// pinning, the shared-I/O gang scheduler (bit-identity vs serial runs and
// fetch dedup), job lifecycle through JobManager, and the TCP front end
// (ISSUE: concurrent multi-tenant query server).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/generator.h"
#include "ingest/ingestor.h"
#include "serve/client.h"
#include "serve/job.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "tile/convert.h"
#include "util/status.h"

namespace gstore {
namespace {

using serve::JobKind;
using serve::JobManager;
using serve::JobSpec;
using serve::JobState;
using serve::Json;
using serve::ManagerOptions;
using serve::SnapshotManager;

// ---- helpers ---------------------------------------------------------------

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// Converts `el` under `dir` and opens an ingestor on it.
std::string convert(const io::TempDir& dir, const graph::EdgeList& el,
                    tile::ConvertOptions opts = {},
                    const std::string& name = "g") {
  const std::string base = dir.file(name);
  tile::convert_to_tiles(el, base, opts);
  return base;
}

// A graph whose vertices all fall inside ONE tile (n < 2^16): with a single
// non-empty tile, cost_chunks emits one chunk, every kernel dispatch runs
// sequentially, and even PageRank's float accumulation order is fixed — so
// digests are bit-comparable between the serial engine and any gang mix.
graph::EdgeList single_tile_graph() {
  return graph::uniform_random(2000, 8000, graph::GraphKind::kUndirected, 11);
}

// Multi-tile graph for dedup/cache tests (order-independent algorithms only).
graph::EdgeList multi_tile_graph() {
  return graph::uniform_random(150000, 450000, graph::GraphKind::kUndirected,
                               23);
}

// Serial reference: same algorithm, same store (with whatever overlay is
// attached), run through the single-tenant ScrEngine.
Json serial_result(tile::TileStore& store, const JobSpec& spec) {
  auto algo = serve::make_algorithm(spec);
  store::EngineConfig cfg;
  store::ScrEngine engine(store, cfg);
  engine.run(*algo);
  return serve::make_result(spec, *algo);
}

std::uint64_t digest_of(const Json& result) {
  return result.at("digest").as_uint();
}

JobSpec bfs_spec(graph::vid_t root) {
  JobSpec s;
  s.kind = JobKind::kBfs;
  s.vertex = root;
  return s;
}

Json bfs_json(graph::vid_t root) {
  Json j = Json::object();
  j.set("algo", Json("bfs"));
  j.set("root", Json(static_cast<std::uint64_t>(root)));
  return j;
}

// ---- protocol --------------------------------------------------------------

TEST(ServeProtocol, RoundTripsValues) {
  const std::string line =
      R"({"op":"submit","n":-3,"pi":1.5,"flag":true,"none":null,)"
      R"("list":[1,2,3],"s":"a\"b\\c\né"})";
  const Json j = Json::parse(line);
  EXPECT_EQ(j.at("op").as_string(), "submit");
  EXPECT_EQ(j.at("n").as_int(), -3);
  EXPECT_DOUBLE_EQ(j.at("pi").as_number(), 1.5);
  EXPECT_TRUE(j.at("flag").as_bool());
  EXPECT_EQ(j.at("list").items().size(), 3u);
  EXPECT_EQ(j.at("s").as_string(), "a\"b\\c\n\xc3\xa9");
  // dump → parse → dump is a fixed point.
  const std::string once = j.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(ServeProtocol, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), FormatError);
  EXPECT_THROW(Json::parse("{\"a\":}"), FormatError);
  EXPECT_THROW(Json::parse("[1,2,]"), FormatError);
  EXPECT_THROW(Json::parse("{} trailing"), FormatError);
  EXPECT_THROW(Json::parse("\"unterminated"), FormatError);
  std::string deep;
  for (int k = 0; k < 100; ++k) deep += "[";
  EXPECT_THROW(Json::parse(deep), FormatError);
}

TEST(ServeProtocol, CheckedIntegerAccess) {
  EXPECT_EQ(Json::parse("{\"v\":12345678901}").at("v").as_uint(),
            12345678901ull);
  EXPECT_THROW(Json::parse("{\"v\":-1}").at("v").as_uint(), Error);
  EXPECT_THROW(Json::parse("{\"v\":1.5}").at("v").as_int(), Error);
  EXPECT_THROW(Json::parse("{}").at("missing"), Error);
}

// ---- snapshots + generation pinning ---------------------------------------

TEST(SnapshotManager, SharesSnapshotsBetweenWrites) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  SnapshotManager snaps(ingestor);

  const serve::SnapshotRef a = snaps.acquire();
  const serve::SnapshotRef b = snaps.acquire();
  EXPECT_EQ(a.get(), b.get()) << "identical state must share one snapshot";
  EXPECT_EQ(snaps.pinned_generations(), 1u);

  const graph::Edge e[] = {{1, 2}};
  ingestor.ingest(e);
  const serve::SnapshotRef c = snaps.acquire();
  EXPECT_NE(a.get(), c.get()) << "a write must invalidate the cached snapshot";
  EXPECT_EQ(c->delta_edges(), 1u);
}

TEST(SnapshotManager, CompactionDefersUnlinkUntilLastPinDrops) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  SnapshotManager snaps(ingestor);

  const graph::Edge e[] = {{3, 4}, {5, 6}};
  ingestor.ingest(e);
  serve::SnapshotRef pinned = snaps.acquire();
  const std::uint32_t old_gen = pinned->generation();
  const std::string old_base = tile::TileStore::generation_base(base, old_gen);

  const ingest::CompactStats cs = snaps.compact();
  EXPECT_EQ(cs.old_generation, old_gen);
  // The pinned generation's files must survive the compaction...
  EXPECT_EQ(snaps.retired_pending_unlink(), 1u);
  EXPECT_TRUE(file_exists(tile::TileStore::tiles_path(old_base)));
  // ...and still serve reads (a full BFS over the pinned snapshot).
  {
    serve::SharedScheduler sched(*pinned, serve::SchedulerConfig{});
    auto algo = serve::make_algorithm(bfs_spec(0));
    std::vector<serve::JobState> states;
    sched.run({serve::GangJob{1, algo.get(), {}}}, nullptr,
              [&](const serve::GangJob&, serve::JobState st,
                  const serve::JobStats&, const std::string&) {
                states.push_back(st);
              });
    ASSERT_EQ(states.size(), 1u);
    EXPECT_EQ(states[0], JobState::kDone);
  }
  // Dropping the last pin reclaims the retired generation promptly.
  pinned.reset();
  EXPECT_EQ(snaps.retired_pending_unlink(), 0u);
  EXPECT_FALSE(file_exists(tile::TileStore::tiles_path(old_base)));
  // The new generation is what fresh snapshots see.
  EXPECT_EQ(snaps.acquire()->generation(), cs.new_generation);
}

// ---- gang scheduling: correctness -----------------------------------------

TEST(JobManager, MixedGangBitIdenticalToSerial) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  // Live WAL edges so the overlay path is part of the identity check.
  const graph::Edge extra[] = {{10, 1500}, {7, 42}, {1999, 3}};
  ingestor.ingest(extra);

  // Serial references first (same live store + overlay).
  std::vector<JobSpec> specs;
  for (graph::vid_t r : {0u, 17u, 999u}) specs.push_back(bfs_spec(r));
  {
    JobSpec s;
    s.kind = JobKind::kSssp;
    s.vertex = 5;
    specs.push_back(s);
  }
  {
    JobSpec s;
    s.kind = JobKind::kWcc;
    specs.push_back(s);
  }
  {
    JobSpec s;
    s.kind = JobKind::kPageRank;
    s.max_iterations = 15;
    specs.push_back(s);
  }
  {
    JobSpec s;
    s.kind = JobKind::kNeighbors;
    s.vertex = 10;
    specs.push_back(s);
  }
  std::vector<Json> serial;
  for (const JobSpec& s : specs)
    serial.push_back(serial_result(ingestor.store(), s));

  // The whole mix as ONE gang sharing one fetch stream.
  JobManager manager(ingestor);
  std::vector<std::uint64_t> ids;
  for (const JobSpec& s : specs) {
    Json j = s.to_json();
    ids.push_back(manager.submit(j));
  }
  manager.start();
  for (std::size_t k = 0; k < ids.size(); ++k) {
    ASSERT_TRUE(manager.wait(ids[k], std::chrono::milliseconds(60000)));
    const Json r = manager.result(ids[k]);
    ASSERT_EQ(r.at("state").as_string(), "done")
        << "job " << k << ": " << r.dump();
    EXPECT_EQ(digest_of(r.at("result")), digest_of(serial[k]))
        << to_string(specs[k].kind) << " diverged from the serial engine";
  }
  manager.stop(/*drain=*/true);
}

TEST(JobManager, SharedFetchDedup32WayBfs) {
  io::TempDir dir;
  const std::string base = convert(dir, multi_tile_graph());
  ingest::EdgeIngestor ingestor(base);

  const auto run_n_bfs = [&](std::size_t n) {
    ManagerOptions mo;
    mo.max_gang = 64;
    JobManager manager(ingestor, mo);
    std::vector<std::uint64_t> ids;
    for (std::size_t k = 0; k < n; ++k) {
      Json j = bfs_json(0);
      ids.push_back(manager.submit(j));
    }
    manager.start();
    for (const std::uint64_t id : ids)
      EXPECT_TRUE(manager.wait(id, std::chrono::milliseconds(120000)));
    // Gang-level I/O counters fold into the aggregate when the gang ends;
    // stop() joins the scheduler thread, so the fold is visible after it.
    manager.stop(true);
    const Json s = manager.stats();
    EXPECT_EQ(s.at("jobs_done").as_uint(), n);
    return s.at("bytes_read").as_uint();
  };

  const std::uint64_t single = run_n_bfs(1);
  const std::uint64_t gang32 = run_n_bfs(32);
  ASSERT_GT(single, 0u);
  // The acceptance bound: 32 co-scheduled BFS jobs share one tile stream,
  // so they read less than 2× one job's bytes (not 32×).
  EXPECT_LT(gang32, 2 * single)
      << "shared fetch is not deduplicating: 32 jobs read " << gang32
      << " bytes vs " << single << " for one";
}

TEST(JobManager, LiveIngestAndSnapshotIsolation) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);

  // Pre-ingest serial reference.
  const Json serial_before = serial_result(ingestor.store(), bfs_spec(0));

  JobManager manager(ingestor);
  Json j0 = bfs_json(0);
  const std::uint64_t before = manager.submit(j0);
  manager.start();
  ASSERT_TRUE(manager.wait(before, std::chrono::milliseconds(60000)));

  // Live ingest through the manager (what the wire-level `ingest` op does),
  // then a job that must see the NEW state.
  const std::vector<graph::Edge> burst = {{0, 1999}, {0, 1998}, {0, 1997}};
  EXPECT_EQ(manager.ingest(burst), 3u);
  const Json serial_after = serial_result(ingestor.store(), bfs_spec(0));

  Json j1 = bfs_json(0);
  const std::uint64_t after = manager.submit(j1);
  ASSERT_TRUE(manager.wait(after, std::chrono::milliseconds(60000)));

  const Json rb = manager.result(before);
  const Json ra = manager.result(after);
  EXPECT_EQ(digest_of(rb.at("result")), digest_of(serial_before));
  EXPECT_EQ(digest_of(ra.at("result")), digest_of(serial_after));
  // The snapshot key each job recorded proves which state it ran against.
  EXPECT_EQ(manager.status(before).at("delta_edges").as_uint(), 0u);
  EXPECT_EQ(manager.status(after).at("delta_edges").as_uint(), 3u);
  manager.stop(true);
}

TEST(JobManager, CompactMidJobRunsOnPinnedGeneration) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  const graph::Edge e[] = {{0, 1000}, {1000, 1500}};
  ingestor.ingest(e);
  const Json serial = serial_result(ingestor.store(), bfs_spec(0));

  JobManager manager(ingestor);
  // Many iterations of real work so compaction lands mid-gang: a wide
  // PageRank plus the BFS under test.
  Json pr = Json::object();
  pr.set("algo", Json("pagerank"));
  pr.set("iterations", Json(static_cast<std::uint64_t>(200)));
  const std::uint64_t pr_id = manager.submit(pr);
  Json j = bfs_json(0);
  const std::uint64_t bfs_id = manager.submit(j);
  manager.start();

  // Compact while the gang runs. The gang's snapshot pinned the old
  // generation, so this must neither fail nor perturb results.
  manager.compact();

  ASSERT_TRUE(manager.wait(bfs_id, std::chrono::milliseconds(120000)));
  ASSERT_TRUE(manager.wait(pr_id, std::chrono::milliseconds(120000)));
  const Json r = manager.result(bfs_id);
  ASSERT_EQ(r.at("state").as_string(), "done") << r.dump();
  EXPECT_EQ(digest_of(r.at("result")), digest_of(serial));
  EXPECT_EQ(manager.result(pr_id).at("state").as_string(), "done");
  manager.stop(true);
  // With every snapshot released, no retired generation may linger.
  EXPECT_EQ(manager.snapshots().retired_pending_unlink(), 0u);
}

// ---- lifecycle, fairness bookkeeping, backpressure -------------------------

TEST(JobManager, BackpressureRejectsPastMaxQueued) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  ManagerOptions mo;
  mo.max_queued = 2;
  JobManager manager(ingestor, mo);

  Json a = bfs_json(0);
  Json b = bfs_json(1);
  Json c = bfs_json(2);
  manager.submit(a);
  manager.submit(b);
  EXPECT_THROW(manager.submit(c), Error);
  const Json s = manager.stats();
  EXPECT_EQ(s.at("jobs_rejected").as_uint(), 1u);
  EXPECT_EQ(s.at("jobs_queued").as_uint(), 2u);
  // The queue drains once the scheduler starts; then submits work again.
  manager.start();
  manager.stop(true);
  EXPECT_EQ(manager.stats().at("jobs_done").as_uint(), 2u);
}

TEST(JobManager, CancelQueuedAndInvalidSpecs) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  JobManager manager(ingestor);

  Json j = bfs_json(5);
  const std::uint64_t id = manager.submit(j);
  EXPECT_TRUE(manager.cancel(id));
  EXPECT_FALSE(manager.cancel(id)) << "already terminal";
  EXPECT_EQ(manager.status(id).at("state").as_string(), "cancelled");
  EXPECT_TRUE(manager.wait(id, std::chrono::milliseconds(0)));

  // Spec validation happens at submit time, against the store's range.
  Json bad_root = bfs_json(1u << 30);
  EXPECT_THROW(manager.submit(bad_root), InvalidArgument);
  Json bad_algo = Json::object();
  bad_algo.set("algo", Json("dijkstra"));
  EXPECT_THROW(manager.submit(bad_algo), InvalidArgument);
  EXPECT_THROW(manager.status(9999), InvalidArgument);
  EXPECT_THROW(manager.result(id + 1000), InvalidArgument);
}

TEST(JobManager, StatsAreJobScopedWithMonotonicAggregate) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  JobManager manager(ingestor);

  // A multi-iteration BFS and a single-pass neighbors probe in one gang:
  // their per-job counters must stay separate.
  Json a = bfs_json(0);
  Json b = Json::object();
  b.set("algo", Json("neighbors"));
  b.set("vertex", Json(static_cast<std::uint64_t>(0)));
  const std::uint64_t bfs_id = manager.submit(a);
  const std::uint64_t nbr_id = manager.submit(b);
  manager.start();
  ASSERT_TRUE(manager.wait(bfs_id, std::chrono::milliseconds(60000)));
  ASSERT_TRUE(manager.wait(nbr_id, std::chrono::milliseconds(60000)));

  const Json bfs_stats = manager.status(bfs_id).at("stats");
  const Json nbr_stats = manager.status(nbr_id).at("stats");
  EXPECT_GT(bfs_stats.at("iterations").as_uint(), 1u);
  EXPECT_EQ(nbr_stats.at("iterations").as_uint(), 1u)
      << "neighbors is single-pass; a shared counter would show BFS rounds";
  EXPECT_GT(bfs_stats.at("edges_processed").as_uint(),
            nbr_stats.at("edges_processed").as_uint());

  // The process-wide aggregate is separate and only ever grows.
  const std::uint64_t done1 = manager.stats().at("jobs_done").as_uint();
  EXPECT_EQ(done1, 2u);
  Json again = bfs_json(1);
  const std::uint64_t id2 = manager.submit(again);
  ASSERT_TRUE(manager.wait(id2, std::chrono::milliseconds(60000)));
  EXPECT_EQ(manager.stats().at("jobs_done").as_uint(), done1 + 1);
  manager.stop(true);
}

// ---- TCP server ------------------------------------------------------------

TEST(ServeServer, EndToEndOverTcp) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  const Json serial = serial_result(ingestor.store(), bfs_spec(0));

  JobManager manager(ingestor);
  manager.start();
  serve::Server server(manager);
  server.start();
  ASSERT_GT(server.port(), 0);

  serve::Client client("127.0.0.1", server.port());
  Json ping = Json::object();
  ping.set("op", Json("ping"));
  EXPECT_TRUE(client.call(ping).at("ok").as_bool());

  Json info_req = Json::object();
  info_req.set("op", Json("info"));
  const Json info = client.call(info_req).at("info");
  EXPECT_EQ(info.at("vertex_count").as_uint(), 2000u);

  // Submit over the wire, wait over the wire, compare against serial.
  Json submit = Json::object();
  submit.set("op", Json("submit"));
  submit.set("job", bfs_json(0));
  const std::uint64_t id = client.call(submit).at("id").as_uint();
  Json wait = Json::object();
  wait.set("op", Json("wait"));
  wait.set("id", Json(id));
  wait.set("timeout_ms", Json(static_cast<std::uint64_t>(60000)));
  const Json waited = client.call(wait);
  EXPECT_TRUE(waited.at("done").as_bool());
  Json result = Json::object();
  result.set("op", Json("result"));
  result.set("id", Json(id));
  const Json r = client.call(result).at("job");
  EXPECT_EQ(r.at("state").as_string(), "done");
  EXPECT_EQ(digest_of(r.at("result")), digest_of(serial));

  // Wire-level ingest, then a second client in parallel with the first.
  Json ing = Json::object();
  ing.set("op", Json("ingest"));
  Json edges = Json::array();
  Json e1 = Json::array();
  e1.push(Json(static_cast<std::uint64_t>(0)));
  e1.push(Json(static_cast<std::uint64_t>(1999)));
  edges.push(std::move(e1));
  ing.set("edges", std::move(edges));
  EXPECT_EQ(client.call(ing).at("accepted").as_uint(), 1u);

  serve::Client second("127.0.0.1", server.port());
  Json stats_req = Json::object();
  stats_req.set("op", Json("stats"));
  const Json stats = second.call(stats_req).at("stats");
  EXPECT_GE(stats.at("jobs_done").as_uint(), 1u);
  EXPECT_EQ(stats.at("edges_ingested").as_uint(), 1u);

  // Protocol errors are responses, not dropped connections.
  const Json bad = client.request(Json::parse("{\"op\":\"nope\"}"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_NE(bad.at("error").as_string().find("unknown op"),
            std::string::npos);
  const Json garbage = client.request(Json::parse("{\"no_op\":1}"));
  EXPECT_FALSE(garbage.at("ok").as_bool());

  // Client-initiated shutdown: wait_shutdown() observes the drain flag.
  Json sd = Json::object();
  sd.set("op", Json("shutdown"));
  sd.set("drain", Json(true));
  EXPECT_TRUE(client.call(sd).at("ok").as_bool());
  EXPECT_TRUE(server.wait_shutdown());
  server.stop();
  manager.stop(true);
}

TEST(ServeServer, SurvivesAbruptClientsAndRestarts) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  JobManager manager(ingestor);
  manager.start();
  serve::Server server(manager);
  server.start();

  // Clients that connect and vanish without a clean close, plus one that
  // sends garbage: none of it may wedge the accept loop.
  for (int k = 0; k < 4; ++k) {
    serve::Client c("127.0.0.1", server.port());
  }
  {
    serve::Client c("127.0.0.1", server.port());
    // A non-object request gets an error response, not a dropped connection.
    const Json r = c.request(Json::parse("\"just a string\""));
    EXPECT_FALSE(r.at("ok").as_bool());
    EXPECT_THROW(c.call(Json::parse("\"again\"")), Error);
  }
  serve::Client alive("127.0.0.1", server.port());
  Json ping = Json::object();
  ping.set("op", Json("ping"));
  EXPECT_TRUE(alive.call(ping).at("ok").as_bool());

  server.stop();
  manager.stop(false);
}

// ---- chaos: fault injection through the serve read path --------------------

TEST(ServeChaos, JobsReachTerminalStatesUnderIoFaults) {
  io::TempDir dir;
  const std::string base = convert(dir, multi_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  ManagerOptions mo;
  // Transient faults at rates the retry ladder should mostly absorb, plus
  // enough EIO to exercise the gang-failure path now and then.
  mo.snapshot_device.fault_spec = "seed=7,eio=0.002,short=0.02,eintr=0.05";
  JobManager manager(ingestor, mo);

  std::vector<std::uint64_t> ids;
  for (graph::vid_t r = 0; r < 6; ++r) {
    Json j = bfs_json(r);
    ids.push_back(manager.submit(j));
  }
  manager.start();
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(manager.wait(id, std::chrono::milliseconds(120000)));
    const std::string state = manager.status(id).at("state").as_string();
    EXPECT_TRUE(state == "done" || state == "failed") << state;
    if (state == "failed") {
      // A failed job must carry a diagnosis and a queryable result payload.
      EXPECT_FALSE(manager.result(id).at("error").as_string().empty());
    }
  }
  // The daemon survives its jobs' storage faults: new work still runs.
  Json j = bfs_json(0);
  const std::uint64_t retry = manager.submit(j);
  ASSERT_TRUE(manager.wait(retry, std::chrono::milliseconds(120000)));
  manager.stop(true);
}

// ---- cache admission fairness (ISSUE 10 bugfix regression) -----------------

// Subscribes every tile every round, for a fixed number of rounds. The
// graph under test has a single non-empty tile, so this job re-reads one
// hot tile per round — the workload the cache pool exists for.
class HotTileAlgo final : public store::TileAlgorithm {
 public:
  explicit HotTileAlgo(std::uint32_t rounds) : rounds_(rounds) {}
  std::string name() const override { return "hot-tile"; }
  void init(const tile::TileStore&) override {}
  void begin_iteration(std::uint32_t) override {}
  void process_tile(const tile::TileView&) override {}
  bool end_iteration(std::uint32_t) override { return ++done_ < rounds_; }

 private:
  std::uint32_t rounds_;
  std::uint32_t done_ = 0;
};

// Occupies a gang slot for the same number of rounds but never subscribes
// a tile — it exists to keep active_jobs at 2 so the per-job fairness
// quota (budget / active_jobs) stays below the hot tile's size.
class IdleBystanderAlgo final : public store::TileAlgorithm {
 public:
  explicit IdleBystanderAlgo(std::uint32_t rounds) : rounds_(rounds) {}
  std::string name() const override { return "idle-bystander"; }
  void init(const tile::TileStore&) override {}
  void begin_iteration(std::uint32_t) override {}
  void process_tile(const tile::TileView&) override {}
  bool end_iteration(std::uint32_t) override { return ++done_ < rounds_; }
  bool tile_needed(std::uint32_t, std::uint32_t) const override {
    return false;
  }
  bool tile_useful_next(std::uint32_t, std::uint32_t) const override {
    return false;
  }

 private:
  std::uint32_t rounds_;
  std::uint32_t done_ = 0;
};

// Regression for the admission bug at src/serve/scheduler.cpp: a tile whose
// split charge exceeds every subscriber's REMAINING quota was never admitted
// even with free pool headroom, so a hot tile larger than one job's quota
// was re-fetched from disk every round. The pool here holds 1.5 tiles, the
// per-job quota (two active jobs) is 0.75 tiles, and the single subscriber's
// charge is a full tile: pre-fix the tile is fetched every round; post-fix
// it is fetched once and served from cache thereafter.
TEST(SharedScheduler, AdmitsTileLargerThanPerJobQuotaOnPoolHeadroom) {
  io::TempDir dir;
  const std::string base = convert(dir, single_tile_graph());
  ingest::EdgeIngestor ingestor(base);
  SnapshotManager snaps(ingestor);
  serve::SnapshotRef pinned = snaps.acquire();

  const std::uint64_t tile_bytes = pinned->store().max_tile_bytes();
  ASSERT_GT(tile_bytes, 0u);
  serve::SchedulerConfig cfg;
  cfg.segment_bytes = 64 << 10;
  cfg.stream_memory_bytes =
      2 * cfg.segment_bytes + tile_bytes + tile_bytes / 2;

  constexpr std::uint32_t kRounds = 6;
  HotTileAlgo hot(kRounds);
  IdleBystanderAlgo idle(kRounds);
  serve::SharedScheduler sched(*pinned, cfg);
  std::vector<serve::JobState> states;
  const serve::GangStats gang = sched.run(
      {serve::GangJob{1, &hot, {}}, serve::GangJob{2, &idle, {}}}, nullptr,
      [&](const serve::GangJob&, serve::JobState st, const serve::JobStats&,
          const std::string&) { states.push_back(st); });

  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0], JobState::kDone);
  EXPECT_EQ(states[1], JobState::kDone);
  EXPECT_EQ(gang.rounds, kRounds);
  // One disk fetch for the first round; every later round is a cache hit.
  EXPECT_EQ(gang.tiles_fetched, 1u);
  EXPECT_EQ(gang.tiles_from_cache, kRounds - 1);
  // Dedup ratio (kernel deliveries per unique payload fetch) stays high:
  // pre-fix it collapses to 1.0 because each round re-materializes the tile.
  const double dedup = static_cast<double>(gang.tile_dispatches) /
                       static_cast<double>(gang.tiles_fetched);
  EXPECT_GE(dedup, static_cast<double>(kRounds));
  EXPECT_LT(gang.bytes_read, static_cast<std::uint64_t>(kRounds) * tile_bytes);
}

}  // namespace
}  // namespace gstore
