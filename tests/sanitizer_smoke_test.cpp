// Concurrency smoke test, written to be run under TSan/ASan (the sanitizer
// presets) but cheap enough for tier-1. Each test drives one of the shared
// structures the SCR/AIO core races on — async-engine submit/reap, the
// cache pool's insert/evict churn, throttle reconfiguration, thread-pool
// load — from N real threads, so the sanitizer watches actual cross-thread
// handoffs rather than single-threaded logic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "algo/bfs.h"
#include "algo/reference.h"
#include "graph/generator.h"
#include "io/async_engine.h"
#include "io/device.h"
#include "io/file.h"
#include "io/throttle.h"
#include "store/cache_pool.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gstore {
namespace {

constexpr int kThreads = 4;

// ---- async engine: concurrent submit + reap --------------------------------

TEST(SanitizerSmoke, AsyncEngineConcurrentSubmitAndPoll) {
  io::TempDir dir;
  const std::string path = dir.file("data.bin");
  constexpr std::size_t kChunk = 4096;
  constexpr std::size_t kChunks = 64;
  {
    io::File f(path, io::OpenMode::kWrite);
    std::vector<std::uint8_t> block(kChunk);
    for (std::size_t c = 0; c < kChunks; ++c) {
      std::memset(block.data(), static_cast<int>(c & 0xff), kChunk);
      f.append(block.data(), kChunk);
    }
  }
  io::File file(path, io::OpenMode::kRead);

  // Small depth forces submitters to block on space_cv while workers and
  // the reaper drain — the interesting handoff path.
  io::AsyncEngine engine(io::Backend::kThreadPool, /*depth=*/8, /*workers=*/3);

  std::vector<std::vector<std::uint8_t>> buffers(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    buffers[t].resize(kChunk * kChunks);
    submitters.emplace_back([&, t] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
      std::vector<io::ReadRequest> batch;
      for (std::size_t c = 0; c < kChunks; ++c) {
        io::ReadRequest req;
        req.file = &file;
        req.offset = rng.next_below(kChunks) * kChunk;
        req.length = kChunk;
        req.buffer = buffers[t].data() + c * kChunk;
        req.tag = static_cast<std::uint64_t>(t) * kChunks + c;
        batch.push_back(req);
        if (batch.size() == 8) {
          engine.submit(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) engine.submit(batch);
    });
  }

  // Concurrent reaper: polls while submitters are still pushing, and owns
  // every completion (drain() would swallow them), so it can account for
  // the exact request count.
  std::thread reaper([&] {
    const std::size_t total = static_cast<std::size_t>(kThreads) * kChunks;
    std::vector<io::Completion> done;
    std::size_t reaped = 0;
    while (reaped < total) {
      done.clear();
      engine.poll(0, 16, done);
      for (const auto& c : done) {
        EXPECT_TRUE(c.ok);
        EXPECT_EQ(c.bytes, kChunk);
      }
      reaped += done.size();
      if (done.empty()) std::this_thread::yield();
    }
  });

  for (auto& s : submitters) s.join();
  reaper.join();
  EXPECT_EQ(engine.in_flight(), 0u);
}

// ---- cache pool: concurrent insert/evict churn -----------------------------
//
// CachePool is thread-compatible, not thread-safe: the engine serializes
// access. This test reproduces that discipline (one mutex) while hammering
// insert/erase/evict_lru/entries from N threads — ASan checks the copy
// churn for buffer errors, TSan checks that the locking really covers every
// access including reads through the entries() snapshot.

TEST(SanitizerSmoke, CachePoolConcurrentChurn) {
  store::CachePool pool(/*budget=*/64 << 10);
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(7 + static_cast<std::uint64_t>(t));
      std::vector<std::uint8_t> payload(2048);
      for (int op = 0; op < 800; ++op) {
        const std::uint64_t idx = rng.next_below(32);
        const std::uint64_t bytes = 1 + rng.next_below(payload.size());
        std::memset(payload.data(), static_cast<int>(idx), bytes);
        std::lock_guard<std::mutex> lock(mu);
        switch (rng.next_below(4)) {
          case 0:
            pool.insert(idx, payload.data(), bytes);
            break;
          case 1:
            pool.erase(idx);
            break;
          case 2:
            pool.evict_lru(bytes);
            break;
          default:
            for (const auto& e : pool.entries()) {
              ASSERT_LE(e.bytes, payload.size());
              if (e.bytes > 0) {  // every cached byte must match its tile id
                ASSERT_EQ(e.data[e.bytes - 1],
                          static_cast<std::uint8_t>(e.layout_idx));
              }
            }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(pool.used(), pool.budget());
}

// ---- throttle: reconfiguration racing acquisition --------------------------

TEST(SanitizerSmoke, ThrottleSetRateRacesAcquire) {
  io::Throttle throttle(/*bytes_per_second=*/0);  // start disabled
  std::atomic<bool> stop{false};
  std::vector<std::thread> acquirers;
  for (int t = 0; t < kThreads; ++t) {
    acquirers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire))
        throttle.acquire(4096);  // usually free; briefly paced mid-test
    });
  }
  for (int i = 0; i < 50; ++i) {
    // Flip between disabled and a rate high enough to never block long.
    throttle.set_rate(i % 2 == 0 ? 0 : (8ull << 30));
    std::this_thread::yield();
  }
  throttle.set_rate(0);
  stop.store(true, std::memory_order_release);
  for (auto& t : acquirers) t.join();
  EXPECT_FALSE(throttle.enabled());
}

// ---- thread pool: concurrent parallel_for callers --------------------------

TEST(SanitizerSmoke, ThreadPoolConcurrentParallelFor) {
  ThreadPool pool(kThreads);
  std::vector<std::atomic<int>> hits(4096);
  std::vector<std::thread> callers;
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([&] {
      pool.parallel_for(
          hits.size(),
          [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
          /*grain=*/17);
    });
  }
  for (auto& t : callers) t.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), 3);
}

// ---- full engine pass: SCR segment handoff under the async backend ---------
//
// End-to-end: the async-engine workers fill segment buffers while the main
// thread processes the other segment; the sanitizer watches the
// double-buffered handoff (submit → poll → process → cache).

TEST(SanitizerSmoke, ScrEngineOverlappedRunMatchesReference) {
  auto el = graph::kronecker(8, 6, graph::GraphKind::kUndirected, 42);
  el.normalize();
  io::TempDir dir;
  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  copt.group_side = 4;
  auto store = gstore::testing::make_store(dir, el, copt);

  store::EngineConfig cfg;
  cfg.stream_memory_bytes = 96 << 10;
  cfg.segment_bytes = 8 << 10;
  cfg.overlap_io = true;
  store::ScrEngine engine(store, cfg);

  algo::TileBfs bfs(0);
  engine.run(bfs);
  EXPECT_EQ(bfs.depth(), algo::ref_bfs(el, 0));
}

}  // namespace
}  // namespace gstore
