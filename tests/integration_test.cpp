// Full-pipeline integration tests: generate → write edge file → convert →
// open store → run every algorithm through the SCR engine under stress
// configurations (tiny memory, throttled devices, sync I/O) → validate
// against references. These are the closest thing to the paper's actual
// runs at miniature scale.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "algo/reference.h"
#include "algo/sssp.h"
#include "baseline/flashgraph.h"
#include "baseline/xstream.h"
#include "graph/generator.h"
#include "graph/graph_io.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "tile/grouping.h"

namespace gstore {
namespace {

using graph::EdgeList;
using graph::GraphKind;
using graph::vid_t;

TEST(Integration, FullPipelineKronUndirected) {
  io::TempDir dir;
  auto el = graph::kronecker(11, 8, GraphKind::kUndirected, 77);

  // Persist and reload through the edge-file interchange format.
  graph::write_edge_file(dir.file("g.el"), el);
  auto loaded = graph::read_edge_file(dir.file("g.el"));

  tile::ConvertOptions o;
  o.tile_bits = 7;
  o.group_side = 4;
  const auto cs = tile::convert_to_tiles(loaded, dir.file("g"), o);
  EXPECT_GT(cs.stored_edges, 0u);

  auto store = tile::TileStore::open(dir.file("g"));
  store::EngineConfig cfg;
  cfg.stream_memory_bytes = 96 << 10;  // far below graph size: real streaming
  cfg.segment_bytes = 16 << 10;

  {
    algo::TileBfs bfs(0);
    store::ScrEngine(store, cfg).run(bfs);
    const auto want = algo::ref_bfs(loaded, 0);
    for (vid_t v = 0; v < want.size(); ++v) ASSERT_EQ(bfs.depth()[v], want[v]);
  }
  {
    algo::TilePageRank pr(algo::PageRankOptions{0.85, 5, 0.0});
    store::ScrEngine(store, cfg).run(pr);
    const auto want = algo::ref_pagerank(loaded, 5);
    for (vid_t v = 0; v < want.size(); ++v)
      ASSERT_NEAR(pr.ranks()[v], want[v], 1e-4);
  }
  {
    algo::TileWcc wcc;
    store::ScrEngine(store, cfg).run(wcc);
    const auto want = algo::ref_wcc(loaded);
    for (vid_t v = 0; v < want.size(); ++v) ASSERT_EQ(wcc.labels()[v], want[v]);
  }
  {
    algo::TileSssp sssp(0);
    store::ScrEngine(store, cfg).run(sssp);
    const auto want = algo::ref_sssp(loaded, 0);
    for (vid_t v = 0; v < want.size(); ++v) {
      if (std::isinf(want[v]))
        ASSERT_TRUE(std::isinf(sssp.distances()[v]));
      else
        ASSERT_NEAR(sssp.distances()[v], want[v], 1e-3);
    }
  }
}

TEST(Integration, ThrottledDeviceProducesSameResults) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 3);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  tile::convert_to_tiles(el, dir.file("g"), o);

  io::DeviceConfig slow;
  slow.devices = 2;
  slow.per_device_bw = 16ull << 20;
  auto store = tile::TileStore::open(dir.file("g"), slow);

  algo::TileBfs bfs(0);
  store::ScrEngine(store).run(bfs);
  const auto want = algo::ref_bfs(el, 0);
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_EQ(bfs.depth()[v], want[v]);
}

TEST(Integration, SyncBackendMatchesAsync) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 13);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  tile::convert_to_tiles(el, dir.file("g"), o);

  io::DeviceConfig sync_dev;
  sync_dev.backend = io::Backend::kSync;
  auto store_sync = tile::TileStore::open(dir.file("g"), sync_dev);
  auto store_async = tile::TileStore::open(dir.file("g"));

  algo::TilePageRank pr1(algo::PageRankOptions{0.85, 3, 0.0});
  algo::TilePageRank pr2(algo::PageRankOptions{0.85, 3, 0.0});
  store::ScrEngine(store_sync).run(pr1);
  store::ScrEngine(store_async).run(pr2);
  for (vid_t v = 0; v < el.vertex_count(); ++v)
    EXPECT_FLOAT_EQ(pr1.ranks()[v], pr2.ranks()[v]);
}

TEST(Integration, AllThreeEnginesAgree) {
  // G-Store vs X-Stream vs FlashGraph on the same graph, all on disk.
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, GraphKind::kUndirected, 55);
  el.normalize();

  tile::ConvertOptions o;
  o.tile_bits = 6;
  tile::convert_to_tiles(el, dir.file("g"), o);
  tile::convert_to_csr_file(el, dir.file("csr"));
  const std::uint64_t xbytes = baseline::write_xstream_edges(dir.file("xs"), el, 8);

  auto store = tile::TileStore::open(dir.file("g"));
  algo::TileBfs gbfs(2);
  store::ScrEngine(store).run(gbfs);

  baseline::FlashGraphEngine fg(dir.file("csr"));
  std::vector<std::int32_t> fg_depth;
  fg.run_bfs(2, fg_depth);

  baseline::XStreamEngine xs(dir.file("xs"), dir.path(), el.vertex_count(),
                             xbytes / 8);
  std::vector<std::int32_t> xs_depth;
  xs.run_bfs(2, xs_depth);

  for (vid_t v = 0; v < el.vertex_count(); ++v) {
    ASSERT_EQ(gbfs.depth()[v], fg_depth[v]);
    ASSERT_EQ(gbfs.depth()[v], xs_depth[v]);
  }
}

TEST(Integration, SpaceSavingShapeOnRealConversion) {
  // Table II shape at miniature scale: G-Store ≈ 4× smaller than the
  // undirected edge list, ≈ 2× smaller than CSR.
  io::TempDir dir;
  auto el = graph::kronecker(12, 8, GraphKind::kUndirected, 5);
  // Raw SNB tuples (v2) reproduce the paper's ratios; the v3 codec layer
  // then has to beat them by the ≥25% the format change promises.
  tile::ConvertOptions raw_opts;
  raw_opts.compress = false;
  tile::convert_to_tiles(el, dir.file("raw"), raw_opts);
  auto raw_store = tile::TileStore::open(dir.file("raw"));
  tile::convert_to_tiles(el, dir.file("g"), tile::ConvertOptions{});
  auto store = tile::TileStore::open(dir.file("g"));

  const double edge_list = static_cast<double>(el.storage_bytes());
  const graph::Csr csr = graph::Csr::build(el);
  const double csr_bytes = static_cast<double>(csr.storage_bytes());
  const double raw_bytes = static_cast<double>(raw_store.storage_bytes());
  const double gstore_bytes = static_cast<double>(store.storage_bytes());

  EXPECT_GT(edge_list / raw_bytes, 3.0);
  EXPECT_LT(edge_list / raw_bytes, 5.0);
  EXPECT_GT(csr_bytes / raw_bytes, 1.5);
  EXPECT_LT(gstore_bytes, raw_bytes * 0.75);
}

TEST(Integration, GroupDistributionIsSkewedForTwitterLike) {
  // Fig 5/7 shape: a skewed graph leaves a large share of tiles empty while
  // a few tiles hold most edges.
  io::TempDir dir;
  auto el = graph::twitter_like(12, 8, GraphKind::kDirected);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  o.group_side = 8;
  tile::convert_to_tiles(el, dir.file("g"), o);
  auto store = tile::TileStore::open(dir.file("g"));

  const auto counts = tile::tile_edge_counts(store);
  std::uint64_t empty = 0, max_count = 0;
  for (std::uint64_t c : counts) {
    if (c == 0) ++empty;
    max_count = std::max(max_count, c);
  }
  const double empty_frac = static_cast<double>(empty) / counts.size();
  EXPECT_GT(empty_frac, 0.15);
  EXPECT_GT(max_count * counts.size(), 20 * store.edge_count())
      << "expected a dominant hub tile";
}

TEST(Integration, LargerCacheNeverIncreasesIo) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 8, GraphKind::kUndirected, 5);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  tile::convert_to_tiles(el, dir.file("g"), o);

  std::uint64_t prev_bytes = ~std::uint64_t{0};
  for (const std::uint64_t mem_kb : {16u, 64u, 256u, 1024u}) {
    auto store = tile::TileStore::open(dir.file("g"));
    store::EngineConfig cfg;
    cfg.stream_memory_bytes = mem_kb << 10;
    cfg.segment_bytes = 4 << 10;
    algo::TilePageRank pr(algo::PageRankOptions{0.85, 4, 0.0});
    const auto stats = store::ScrEngine(store, cfg).run(pr);
    EXPECT_LE(stats.bytes_read, prev_bytes)
        << "more cache must not cause more I/O (mem=" << mem_kb << "KiB)";
    prev_bytes = stats.bytes_read;
  }
}

TEST(Integration, DirectedInAndOutStoresAgreeOnPageRank) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, GraphKind::kDirected, 8);
  el.normalize();
  tile::ConvertOptions out_opts;
  out_opts.tile_bits = 6;
  tile::ConvertOptions in_opts = out_opts;
  in_opts.out_edges = false;
  tile::convert_to_tiles(el, dir.file("out"), out_opts);
  tile::convert_to_tiles(el, dir.file("in"), in_opts);

  auto s_out = tile::TileStore::open(dir.file("out"));
  auto s_in = tile::TileStore::open(dir.file("in"));
  algo::TilePageRank a(algo::PageRankOptions{0.85, 4, 0.0});
  algo::TilePageRank b(algo::PageRankOptions{0.85, 4, 0.0});
  store::ScrEngine(s_out).run(a);
  store::ScrEngine(s_in).run(b);
  for (vid_t v = 0; v < el.vertex_count(); ++v)
    EXPECT_NEAR(a.ranks()[v], b.ranks()[v], 1e-5);
}

}  // namespace
}  // namespace gstore
// Appended: tiered tile stores.
#include "util/status.h"

namespace gstore {
namespace {

TEST(Integration, TieredStoreProducesCorrectResults) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 3);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  tile::convert_to_tiles(el, dir.file("g"), o);

  io::DeviceConfig dev;
  dev.devices = 1;
  dev.per_device_bw = 1ull << 30;
  dev.slow_tier_bw = 256ull << 20;
  for (const auto policy :
       {tile::TierPolicy::kLargestTiles, tile::TierPolicy::kHotPrefix}) {
    auto store = tile::TileStore::open_tiered(dir.file("g"), dev, 0.5, policy);
    algo::TileBfs bfs(0);
    store::ScrEngine(store).run(bfs);
    const auto want = algo::ref_bfs(el, 0);
    for (vid_t v = 0; v < el.vertex_count(); ++v)
      ASSERT_EQ(bfs.depth()[v], want[v]);
  }
}

TEST(Integration, TieredStoreHotFractionBoundsChecked) {
  io::TempDir dir;
  auto el = graph::path(50);
  tile::convert_to_tiles(el, dir.file("g"), tile::ConvertOptions{});
  io::DeviceConfig dev;
  dev.slow_tier_bw = 1 << 20;
  EXPECT_THROW(tile::TileStore::open_tiered(dir.file("g"), dev, 1.5), Error);
  io::DeviceConfig no_slow;
  EXPECT_THROW(tile::TileStore::open_tiered(dir.file("g"), no_slow, 0.5), Error);
}

TEST(Integration, LargestTilesPlacementCoversMoreMass) {
  // On a skewed graph, largest-tiles placement at 25% capacity must cover
  // strictly more edge bytes on the fast tier than prefix placement.
  io::TempDir dir;
  auto el = graph::twitter_like(11, 8, GraphKind::kDirected);
  tile::ConvertOptions o;
  o.tile_bits = 5;
  tile::convert_to_tiles(el, dir.file("g"), o);
  io::DeviceConfig dev;
  dev.devices = 1;
  dev.slow_tier_bw = 1 << 20;
  auto largest = tile::TileStore::open_tiered(dir.file("g"), dev, 0.25,
                                              tile::TierPolicy::kLargestTiles);
  auto prefix = tile::TileStore::open_tiered(dir.file("g"), dev, 0.25,
                                             tile::TierPolicy::kHotPrefix);
  // Same budget, so fast-tier byte totals are comparable; slow-tier share
  // is what differs in *which* tiles, visible through per-read splits: the
  // largest single tile must be fast under kLargestTiles.
  std::uint64_t biggest = 0;
  for (std::uint64_t k = 0; k < largest.grid().tile_count(); ++k)
    if (largest.tile_bytes(k) > largest.tile_bytes(biggest)) biggest = k;
  const auto [fast_l, slow_l] = largest.device().tier_map().split(
      largest.tile_offset(biggest),
      largest.tile_offset(biggest) + largest.tile_bytes(biggest));
  EXPECT_EQ(slow_l, 0u) << "largest tile must sit on the fast tier";
  (void)prefix;
  (void)fast_l;
}

}  // namespace
}  // namespace gstore
// Appended: striped tile stores.
#include "io/striped.h"

namespace gstore {
namespace {

TEST(Integration, StripedStoreRunsAllAlgorithms) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 77);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  tile::convert_to_tiles(el, dir.file("g"), o);
  io::stripe_file(dir.file("g") + ".tiles", dir.file("g") + ".tiles", 4, 4096);

  io::DeviceConfig dev;
  dev.stripe_files = 4;
  dev.stripe_bytes = 4096;
  auto store = tile::TileStore::open(dir.file("g"), dev);

  algo::TileBfs bfs(0);
  store::ScrEngine(store).run(bfs);
  const auto want = algo::ref_bfs(el, 0);
  for (vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(bfs.depth()[v], want[v]);

  algo::TilePageRank pr(algo::PageRankOptions{0.85, 3, 0.0});
  store::ScrEngine(store).run(pr);
  const auto want_pr = algo::ref_pagerank(el, 3);
  for (vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_NEAR(pr.ranks()[v], want_pr[v], 1e-4);
}

}  // namespace
}  // namespace gstore
