// Correctness of the X-Stream-like and FlashGraph-like baseline engines
// against the in-memory references (they must be honest, working engines
// for the paper's speedup comparisons to mean anything).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/reference.h"
#include "baseline/flashgraph.h"
#include "baseline/xstream.h"
#include "graph/generator.h"
#include "tile/convert.h"
#include "test_util.h"

namespace gstore::baseline {
namespace {

using graph::EdgeList;
using graph::GraphKind;
using graph::vid_t;

// ---- PageCache -----------------------------------------------------------

TEST(PageCache, LookupMissThenHit) {
  PageCache cache(4096 * 4, 4096);
  std::vector<std::uint8_t> page(4096, 7);
  EXPECT_EQ(cache.lookup(5), nullptr);
  cache.insert(5, page.data());
  ASSERT_NE(cache.lookup(5), nullptr);
  EXPECT_EQ(cache.lookup(5)[0], 7);
}

TEST(PageCache, EvictsLruWhenFull) {
  PageCache cache(4096 * 2, 4096);
  std::vector<std::uint8_t> page(4096, 0);
  cache.insert(1, page.data());
  cache.insert(2, page.data());
  cache.lookup(1);             // 2 becomes LRU
  cache.insert(3, page.data());  // evicts 2
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_EQ(cache.resident_pages(), 2u);
}

TEST(PageCache, ReinsertUpdatesContent) {
  PageCache cache(4096 * 2, 4096);
  std::vector<std::uint8_t> a(4096, 1), b(4096, 2);
  cache.insert(9, a.data());
  cache.insert(9, b.data());
  EXPECT_EQ(cache.lookup(9)[0], 2);
  EXPECT_EQ(cache.resident_pages(), 1u);
}

// ---- X-Stream engine -------------------------------------------------------

struct XsCase {
  std::string name;
  GraphKind kind;
  std::size_t tuple_bytes;
};

class XStreamTest : public ::testing::TestWithParam<XsCase> {
 protected:
  void SetUp() override {
    el_ = graph::kronecker(8, 5, GetParam().kind, 21);
    el_.normalize();
    tuples_ = write_xstream_edges(dir_.file("edges"), el_,
                                  GetParam().tuple_bytes) /
              GetParam().tuple_bytes;
    cfg_.tuple_bytes = GetParam().tuple_bytes;
    cfg_.chunk_bytes = 64 << 10;
    cfg_.partitions = 4;
  }

  XStreamEngine make_engine() {
    return XStreamEngine(dir_.file("edges"), dir_.path(), el_.vertex_count(),
                         tuples_, cfg_);
  }

  EdgeList el_;
  io::TempDir dir_;
  std::uint64_t tuples_ = 0;
  XStreamConfig cfg_;
};

TEST_P(XStreamTest, BfsMatchesReference) {
  auto eng = make_engine();
  std::vector<std::int32_t> depth;
  const auto stats = eng.run_bfs(1, depth);
  const auto want = algo::ref_bfs(el_, 1);
  ASSERT_EQ(depth.size(), want.size());
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_EQ(depth[v], want[v]);
  EXPECT_GT(stats.edge_bytes_read, 0u);
}

TEST_P(XStreamTest, PageRankMatchesReference) {
  auto eng = make_engine();
  std::vector<float> rank;
  eng.run_pagerank(4, 0.85, el_.degrees(), rank);
  const auto want = algo::ref_pagerank(el_, 4);
  ASSERT_EQ(rank.size(), want.size());
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_NEAR(rank[v], want[v], 1e-4);
}

TEST_P(XStreamTest, WccMatchesReference) {
  if (GetParam().kind == GraphKind::kDirected)
    GTEST_SKIP() << "one-directional scatter computes WCC only for undirected "
                    "edge files";
  auto eng = make_engine();
  std::vector<vid_t> label;
  eng.run_wcc(label);
  const auto want = algo::ref_wcc(el_);
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_EQ(label[v], want[v]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XStreamTest,
    ::testing::Values(XsCase{"Und8B", GraphKind::kUndirected, 8},
                      XsCase{"Und16B", GraphKind::kUndirected, 16},
                      XsCase{"Dir8B", GraphKind::kDirected, 8},
                      XsCase{"Dir16B", GraphKind::kDirected, 16}),
    [](const auto& info) { return info.param.name; });

TEST(XStream, UndirectedFileStoresBothDirections) {
  io::TempDir dir;
  auto el = EdgeList::from_edges({{0, 1}, {2, 3}}, GraphKind::kUndirected);
  const std::uint64_t bytes = write_xstream_edges(dir.file("e"), el, 8);
  EXPECT_EQ(bytes, 4u * 8);  // two edges, both orientations
}

TEST(XStream, StorageFormula) {
  EXPECT_EQ(xstream_storage_bytes(1u << 20, 1000, true), 16000u);
  EXPECT_EQ(xstream_storage_bytes(1u << 20, 1000, false), 8000u);
  // >2^32 vertices forces 16-byte tuples (the Kron-33 case).
  EXPECT_EQ(xstream_storage_bytes(std::uint64_t{1} << 33, 1000, false), 16000u);
}

TEST(XStream, SixteenByteTuplesDoubleIo) {
  io::TempDir dir;
  auto el = graph::kronecker(8, 4, GraphKind::kUndirected, 5);
  const std::uint64_t b8 = write_xstream_edges(dir.file("e8"), el, 8);
  const std::uint64_t b16 = write_xstream_edges(dir.file("e16"), el, 16);
  EXPECT_EQ(b16, 2 * b8);

  XStreamConfig c8, c16;
  c8.tuple_bytes = 8;
  c16.tuple_bytes = 16;
  XStreamEngine e8(dir.file("e8"), dir.path(), el.vertex_count(), b8 / 8, c8);
  XStreamEngine e16(dir.file("e16"), dir.path(), el.vertex_count(), b16 / 16, c16);
  std::vector<float> r8, r16;
  const auto s8 = e8.run_pagerank(2, 0.85, el.degrees(), r8);
  const auto s16 = e16.run_pagerank(2, 0.85, el.degrees(), r16);
  EXPECT_EQ(s16.edge_bytes_read, 2 * s8.edge_bytes_read);
  for (vid_t v = 0; v < el.vertex_count(); ++v)
    EXPECT_FLOAT_EQ(r8[v], r16[v]);  // same math, different storage
}

// ---- FlashGraph engine ---------------------------------------------------

class FlashGraphTest : public ::testing::TestWithParam<GraphKind> {
 protected:
  void SetUp() override {
    el_ = graph::kronecker(8, 5, GetParam(), 31);
    el_.normalize();
    tile::convert_to_csr_file(el_, dir_.file("csr"));
    cfg_.cache_bytes = 64 << 10;  // small cache to exercise eviction
    cfg_.page_bytes = 1024;
    cfg_.batch_vertices = 64;
  }

  EdgeList el_;
  io::TempDir dir_;
  FlashGraphConfig cfg_;
};

TEST_P(FlashGraphTest, BfsMatchesReference) {
  FlashGraphEngine eng(dir_.file("csr"), cfg_);
  std::vector<std::int32_t> depth;
  const auto stats = eng.run_bfs(1, depth);
  const auto want = algo::ref_bfs(el_, 1);
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_EQ(depth[v], want[v]);
  EXPECT_GT(stats.bytes_read, 0u);
}

TEST_P(FlashGraphTest, PageRankMatchesReference) {
  // The engine divides by the CSR out-degree; after normalize() (no self
  // loops/dups) that equals the edge-list degree the reference uses.
  FlashGraphEngine eng(dir_.file("csr"), cfg_);
  std::vector<float> rank;
  eng.run_pagerank(4, 0.85, rank);
  const auto want = algo::ref_pagerank(el_, 4);
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_NEAR(rank[v], want[v], 1e-4);
}

TEST_P(FlashGraphTest, WccMatchesReference) {
  FlashGraphEngine eng(dir_.file("csr"), cfg_);
  std::vector<vid_t> label;
  eng.run_wcc(label);
  const auto want = algo::ref_wcc(el_);
  for (vid_t v = 0; v < want.size(); ++v) EXPECT_EQ(label[v], want[v]);
}

INSTANTIATE_TEST_SUITE_P(Kinds, FlashGraphTest,
                         ::testing::Values(GraphKind::kUndirected,
                                           GraphKind::kDirected),
                         [](const auto& info) {
                           return info.param == GraphKind::kUndirected
                                      ? "Undirected"
                                      : "Directed";
                         });

TEST(FlashGraph, CacheHitsGrowAcrossIterations) {
  io::TempDir dir;
  auto el = graph::kronecker(8, 4, GraphKind::kUndirected, 9);
  tile::convert_to_csr_file(el, dir.file("csr"));
  FlashGraphConfig cfg;
  cfg.cache_bytes = 64 << 20;  // everything fits: second iteration = all hits
  cfg.page_bytes = 4096;
  FlashGraphEngine eng(dir.file("csr"), cfg);
  std::vector<float> rank;
  const auto stats = eng.run_pagerank(3, 0.85, rank);
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
}

TEST(FlashGraph, SelectiveIoReadsLessForBfsThanPagerank) {
  // BFS touches each adjacency list once; 3-iteration PR touches all thrice.
  io::TempDir dir;
  auto el = graph::kronecker(9, 6, GraphKind::kUndirected, 9);
  tile::convert_to_csr_file(el, dir.file("csr"));
  FlashGraphConfig cfg;
  cfg.cache_bytes = 4 << 10;  // effectively no caching
  cfg.page_bytes = 1024;
  FlashGraphEngine eng(dir.file("csr"), cfg);
  std::vector<std::int32_t> depth;
  const auto bfs_stats = eng.run_bfs(0, depth);
  std::vector<float> rank;
  FlashGraphEngine eng2(dir.file("csr"), cfg);
  const auto pr_stats = eng2.run_pagerank(3, 0.85, rank);
  EXPECT_LT(bfs_stats.bytes_read, pr_stats.bytes_read);
}

}  // namespace
}  // namespace gstore::baseline
// Appended: GridGraph-like baseline.
#include "baseline/gridgraph.h"

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"

namespace gstore::baseline {
namespace {

TEST(GridGraph, LayoutIsFatFullMatrix) {
  io::TempDir dir;
  auto el = graph::EdgeList::from_edges({{0, 1}, {2, 3}},
                                        graph::GraphKind::kUndirected);
  GridGraphConfig cfg;
  cfg.tile_bits = 4;
  convert_to_gridgraph(el, dir.file("gg"), cfg);
  GridGraphEngine eng(dir.file("gg"), cfg);
  EXPECT_TRUE(eng.tile_store().meta().fat_tuples());
  EXPECT_FALSE(eng.tile_store().meta().symmetric());
  EXPECT_EQ(eng.tile_store().edge_count(), 4u);  // both orientations
}

TEST(GridGraph, AlgorithmsMatchReference) {
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, graph::GraphKind::kUndirected, 61);
  el.normalize();
  GridGraphConfig cfg;
  cfg.tile_bits = 6;
  cfg.memory_bytes = 256 << 10;
  convert_to_gridgraph(el, dir.file("gg"), cfg);
  GridGraphEngine eng(dir.file("gg"), cfg);

  algo::TileBfs bfs(0);
  eng.run(bfs);
  const auto want_bfs = algo::ref_bfs(el, 0);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(bfs.depth()[v], want_bfs[v]);

  algo::TilePageRank pr(algo::PageRankOptions{0.85, 4, 0.0});
  eng.run(pr);
  const auto want_pr = algo::ref_pagerank(el, 4);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_NEAR(pr.ranks()[v], want_pr[v], 1e-4);

  algo::TileWcc wcc;
  eng.run(wcc);
  const auto want_cc = algo::ref_wcc(el);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(wcc.labels()[v], want_cc[v]);
}

TEST(GridGraph, ReadsMoreBytesThanGStoreFormat) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 6, graph::GraphKind::kUndirected, 62);
  el.normalize();
  GridGraphConfig cfg;
  cfg.tile_bits = 6;
  cfg.memory_bytes = 64 << 10;  // tiny cache: every iteration mostly streams
  convert_to_gridgraph(el, dir.file("gg"), cfg);
  GridGraphEngine gg(dir.file("gg"), cfg);
  algo::TilePageRank pr1(algo::PageRankOptions{0.85, 3, 0.0});
  const auto gg_stats = gg.run(pr1);

  tile::ConvertOptions copt;
  copt.tile_bits = 6;
  auto store = gstore::testing::make_store(dir, el, copt, {}, "gs");
  store::EngineConfig ecfg;
  ecfg.stream_memory_bytes = 64 << 10;
  ecfg.segment_bytes = 8 << 10;
  algo::TilePageRank pr2(algo::PageRankOptions{0.85, 3, 0.0});
  const auto gs_stats = store::ScrEngine(store, ecfg).run(pr2);

  // Full-matrix 8B tuples = 4x the bytes of the symmetric SNB store.
  EXPECT_GE(gg_stats.bytes_read, 3 * gs_stats.bytes_read);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_NEAR(pr1.ranks()[v], pr2.ranks()[v], 1e-5);
}

}  // namespace
}  // namespace gstore::baseline
// Appended: streaming boundary conditions.
namespace gstore::baseline {
namespace {

TEST(XStream, TinyChunkSizeStillCorrect) {
  // Chunk barely larger than one tuple: exercises every chunk boundary.
  io::TempDir dir;
  auto el = graph::kronecker(7, 4, GraphKind::kUndirected, 11);
  el.normalize();
  const std::uint64_t bytes = write_xstream_edges(dir.file("e"), el, 8);
  XStreamConfig cfg;
  cfg.chunk_bytes = 24;  // three tuples per chunk
  cfg.partitions = 3;
  XStreamEngine eng(dir.file("e"), dir.path(), el.vertex_count(), bytes / 8, cfg);
  std::vector<std::int32_t> depth;
  eng.run_bfs(0, depth);
  const auto want = algo::ref_bfs(el, 0);
  for (vid_t v = 0; v < want.size(); ++v) ASSERT_EQ(depth[v], want[v]);
}

TEST(XStream, SinglePartitionMatchesMany) {
  io::TempDir dir;
  auto el = graph::kronecker(7, 4, GraphKind::kUndirected, 12);
  el.normalize();
  const std::uint64_t bytes = write_xstream_edges(dir.file("e"), el, 8);
  std::vector<float> r1, r8;
  {
    XStreamConfig cfg;
    cfg.partitions = 1;
    XStreamEngine eng(dir.file("e"), dir.path(), el.vertex_count(), bytes / 8, cfg);
    eng.run_pagerank(3, 0.85, el.degrees(), r1);
  }
  {
    XStreamConfig cfg;
    cfg.partitions = 8;
    XStreamEngine eng(dir.file("e"), dir.path(), el.vertex_count(), bytes / 8, cfg);
    eng.run_pagerank(3, 0.85, el.degrees(), r8);
  }
  for (vid_t v = 0; v < el.vertex_count(); ++v) ASSERT_FLOAT_EQ(r1[v], r8[v]);
}

TEST(FlashGraph, OneVertexPerBatchStillCorrect) {
  io::TempDir dir;
  auto el = graph::kronecker(7, 4, GraphKind::kUndirected, 13);
  el.normalize();
  tile::convert_to_csr_file(el, dir.file("csr"));
  FlashGraphConfig cfg;
  cfg.batch_vertices = 1;
  cfg.page_bytes = 256;
  cfg.cache_bytes = 2048;  // 8 pages
  FlashGraphEngine eng(dir.file("csr"), cfg);
  std::vector<vid_t> label;
  eng.run_wcc(label);
  const auto want = algo::ref_wcc(el);
  for (vid_t v = 0; v < want.size(); ++v) ASSERT_EQ(label[v], want[v]);
}

TEST(FlashGraph, IsolatedVerticesHandled) {
  auto el = EdgeList({{0, 1}}, 10, GraphKind::kUndirected);  // 8 isolated
  io::TempDir dir;
  tile::convert_to_csr_file(el, dir.file("csr"));
  FlashGraphEngine eng(dir.file("csr"));
  std::vector<std::int32_t> depth;
  eng.run_bfs(0, depth);
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(depth[1], 1);
  for (vid_t v = 2; v < 10; ++v) EXPECT_EQ(depth[v], -1);
}

}  // namespace
}  // namespace gstore::baseline
// Appended: GraphChi-like PSW baseline.
#include "baseline/graphchi.h"
#include "util/status.h"

namespace gstore::baseline {
namespace {

class GraphChiTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    el_ = graph::kronecker(8, 5, GraphKind::kUndirected, 44);
    el_.normalize();
    cfg_.shards = GetParam();
    build_graphchi_shards(el_, dir_.file("psw"), cfg_);
  }
  EdgeList el_;
  io::TempDir dir_;
  GraphChiConfig cfg_;
};

TEST_P(GraphChiTest, BfsMatchesReference) {
  GraphChiEngine eng(dir_.file("psw"), cfg_);
  std::vector<std::int32_t> depth;
  const auto stats = eng.run_bfs(1, depth);
  const auto want = algo::ref_bfs(el_, 1);
  for (vid_t v = 0; v < want.size(); ++v) ASSERT_EQ(depth[v], want[v]);
  EXPECT_GT(stats.bytes_read, 0u);
}

TEST_P(GraphChiTest, PageRankMatchesReference) {
  GraphChiEngine eng(dir_.file("psw"), cfg_);
  std::vector<float> rank;
  eng.run_pagerank(4, 0.85, el_.degrees(), rank);
  const auto want = algo::ref_pagerank(el_, 4);
  for (vid_t v = 0; v < want.size(); ++v) ASSERT_NEAR(rank[v], want[v], 1e-4);
}

TEST_P(GraphChiTest, WccMatchesReference) {
  GraphChiEngine eng(dir_.file("psw"), cfg_);
  std::vector<vid_t> label;
  eng.run_wcc(label);
  const auto want = algo::ref_wcc(el_);
  for (vid_t v = 0; v < want.size(); ++v) ASSERT_EQ(label[v], want[v]);
}

INSTANTIATE_TEST_SUITE_P(Shards, GraphChiTest, ::testing::Values(1, 3, 8),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(GraphChi, WindowIndexCoversEveryEdgeTwice) {
  // One iteration over all intervals reads each directed edge twice (memory
  // shard + window) except edges whose endpoints share an interval.
  auto el = graph::EdgeList::from_edges({{0, 9}, {9, 0}, {1, 2}},
                                        graph::GraphKind::kDirected);
  io::TempDir dir;
  GraphChiConfig cfg;
  cfg.shards = 2;
  build_graphchi_shards(el, dir.file("psw"), cfg);
  GraphChiEngine eng(dir.file("psw"), cfg);
  std::vector<vid_t> label;
  const auto stats = eng.run_wcc(label);
  // (0,9) and (9,0) cross intervals: 2 reads each per sweep; (1,2) intra: 1.
  EXPECT_GE(stats.bytes_read, stats.iterations * 5u * sizeof(graph::Edge));
}

TEST(GraphChi, ShardCountMismatchRejected) {
  auto el = graph::path(20);
  io::TempDir dir;
  GraphChiConfig build_cfg;
  build_cfg.shards = 4;
  build_graphchi_shards(el, dir.file("psw"), build_cfg);
  GraphChiConfig open_cfg;
  open_cfg.shards = 2;
  EXPECT_THROW(GraphChiEngine(dir.file("psw"), open_cfg), gstore::FormatError);
}

TEST(GraphChi, DirectedBfsFollowsDirection) {
  auto el = graph::EdgeList::from_edges({{0, 1}, {1, 2}, {3, 0}},
                                        graph::GraphKind::kDirected);
  io::TempDir dir;
  GraphChiConfig cfg;
  cfg.shards = 2;
  build_graphchi_shards(el, dir.file("psw"), cfg);
  GraphChiEngine eng(dir.file("psw"), cfg);
  std::vector<std::int32_t> depth;
  eng.run_bfs(0, depth);
  EXPECT_EQ(depth[1], 1);
  EXPECT_EQ(depth[2], 2);
  EXPECT_EQ(depth[3], -1);
}

}  // namespace
}  // namespace gstore::baseline
