// Tests for the online ingestion subsystem: WAL durability/replay, the delta
// overlay, snapshot-safe compaction, and crash recovery at every protocol
// step (ISSUE: online edge ingestion).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "graph/generator.h"
#include "ingest/compact.h"
#include "ingest/delta.h"
#include "ingest/ingestor.h"
#include "ingest/wal.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "tile/overlay.h"
#include "tile/verify.h"
#include "util/status.h"

namespace gstore {
namespace {

using testing::decode_all_edges;
using testing::make_store;

// ---- helpers ---------------------------------------------------------------

std::vector<std::uint8_t> slurp(const std::string& path) {
  io::File f(path, io::OpenMode::kRead);
  std::vector<std::uint8_t> out(f.size());
  if (!out.empty()) f.pread_full(out.data(), out.size(), 0);
  return out;
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  io::File f(path, io::OpenMode::kWrite);
  if (!bytes.empty()) f.pwrite_full(bytes.data(), bytes.size(), 0);
}

void patch(const std::string& path, std::uint64_t offset,
           std::vector<std::uint8_t> bytes) {
  io::File f(path, io::OpenMode::kReadWrite);
  f.pwrite_full(bytes.data(), bytes.size(), offset);
}

std::vector<graph::Edge> sorted(std::vector<graph::Edge> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Decodes the overlay's tuples to global coordinates (base tiles excluded).
std::vector<graph::Edge> overlay_tuples(const tile::TileStore& store) {
  std::vector<graph::Edge> out;
  const tile::TileOverlay* ov = store.overlay();
  if (ov == nullptr) return out;
  for (const std::uint64_t idx : ov->nonempty_tiles()) {
    const tile::TileCoord c = store.grid().coord_at(idx);
    for (const tile::SnbEdge& e : ov->tile_edges(idx))
      out.push_back(tile::snb_decode(e, store.grid().tile_base(c.i),
                                     store.grid().tile_base(c.j)));
  }
  return out;
}

std::vector<graph::Edge> logical_tuples(tile::TileStore& store) {
  std::vector<graph::Edge> all = decode_all_edges(store);
  const std::vector<graph::Edge> extra = overlay_tuples(store);
  all.insert(all.end(), extra.begin(), extra.end());
  return sorted(std::move(all));
}

graph::EdgeList strip_self_loops(const graph::EdgeList& el) {
  std::vector<graph::Edge> kept;
  kept.reserve(el.edge_count());
  for (const graph::Edge& e : el.edges())
    if (e.src != e.dst) kept.push_back(e);
  return graph::EdgeList(std::move(kept), el.vertex_count(), el.kind());
}

struct AlgoResults {
  std::vector<std::int32_t> bfs_depth;
  std::vector<float> pr_ranks;
  std::vector<graph::vid_t> wcc_labels;
};

AlgoResults run_algos(tile::TileStore& store) {
  const store::EngineConfig cfg;
  AlgoResults r;
  {
    algo::TileBfs bfs(0);
    store::ScrEngine(store, cfg).run(bfs);
    r.bfs_depth = bfs.depth();
  }
  {
    algo::PageRankOptions popt;
    popt.max_iterations = 10;
    popt.tolerance = 0;  // fixed iteration count, deterministic shape
    algo::TilePageRank pr(popt);
    store::ScrEngine(store, cfg).run(pr);
    r.pr_ranks = pr.ranks();
  }
  {
    algo::TileWcc wcc;
    store::ScrEngine(store, cfg).run(wcc);
    r.wcc_labels = wcc.labels();
  }
  return r;
}

void expect_same_results(const AlgoResults& a, const AlgoResults& b) {
  EXPECT_EQ(a.bfs_depth, b.bfs_depth);
  EXPECT_EQ(a.wcc_labels, b.wcc_labels);
  ASSERT_EQ(a.pr_ranks.size(), b.pr_ranks.size());
  for (std::size_t v = 0; v < a.pr_ranks.size(); ++v)
    EXPECT_NEAR(a.pr_ranks[v], b.pr_ranks[v], 1e-4f) << "vertex " << v;
}

// Splits an edge list into a base graph and a delta batch.
void split(const graph::EdgeList& el, double base_fraction,
           graph::EdgeList& base, std::vector<graph::Edge>& delta) {
  const auto cut = static_cast<std::size_t>(el.edge_count() * base_fraction);
  std::vector<graph::Edge> head(el.edges().begin(), el.edges().begin() + cut);
  delta.assign(el.edges().begin() + cut, el.edges().end());
  base = graph::EdgeList(std::move(head), el.vertex_count(), el.kind());
}

// ---- WAL -------------------------------------------------------------------

TEST(Wal, RoundTrip) {
  io::TempDir dir;
  const std::string path = dir.file("g.wal");
  const std::vector<graph::Edge> b1 = {{1, 2}, {3, 4}};
  const std::vector<graph::Edge> b2 = {{5, 6}};
  {
    ingest::EdgeWal wal(path, 7);
    wal.append(b1);
    wal.append(b2);
    wal.append({});  // no-op
    EXPECT_EQ(wal.generation(), 7u);
  }
  const ingest::WalReplay r = ingest::EdgeWal::replay(path);
  EXPECT_TRUE(r.exists);
  EXPECT_EQ(r.generation, 7u);
  EXPECT_EQ(r.frames, 2u);
  EXPECT_EQ(r.tail, ingest::WalTail::kClean);
  EXPECT_EQ(r.dropped_bytes, 0u);
  ASSERT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.edges[0], (graph::Edge{1, 2}));
  EXPECT_EQ(r.edges[2], (graph::Edge{5, 6}));
}

TEST(Wal, MissingFileReplaysEmpty) {
  io::TempDir dir;
  const ingest::WalReplay r = ingest::EdgeWal::replay(dir.file("none.wal"));
  EXPECT_FALSE(r.exists);
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.tail, ingest::WalTail::kClean);
}

// Property: truncating the log at *every* byte boundary still replays
// exactly the frames that are fully contained — never a partial frame,
// never an exception, never corruption.
TEST(Wal, TruncationAtEveryByteReplaysCompleteFrames) {
  io::TempDir dir;
  const std::string path = dir.file("g.wal");
  const std::vector<std::vector<graph::Edge>> batches = {
      {{1, 2}, {3, 4}, {5, 6}}, {{7, 8}}, {{9, 10}, {11, 12}}};
  {
    ingest::EdgeWal wal(path, 0);
    for (const auto& b : batches) wal.append(b);
  }
  const std::vector<std::uint8_t> full = slurp(path);

  // Frame boundaries: offset after the file header and after each frame.
  std::vector<std::uint64_t> boundary = {sizeof(ingest::WalFileHeader)};
  for (const auto& b : batches)
    boundary.push_back(boundary.back() + sizeof(ingest::WalFrameHeader) +
                       b.size() * sizeof(graph::Edge));
  ASSERT_EQ(boundary.back(), full.size());

  const std::string cut_path = dir.file("cut.wal");
  for (std::uint64_t len = 0; len <= full.size(); ++len) {
    spit(cut_path, {full.begin(), full.begin() + len});
    const ingest::WalReplay r = ingest::EdgeWal::replay(cut_path);
    EXPECT_NE(r.tail, ingest::WalTail::kCorrupt) << "len " << len;
    std::size_t want_frames = 0;
    std::size_t want_edges = 0;
    for (std::size_t k = 0; k < batches.size(); ++k)
      if (boundary[k + 1] <= len) {
        ++want_frames;
        want_edges += batches[k].size();
      }
    EXPECT_EQ(r.frames, want_frames) << "len " << len;
    EXPECT_EQ(r.edges.size(), want_edges) << "len " << len;
    if (len >= sizeof(ingest::WalFileHeader)) {
      // Replay must account exactly the bytes of the intact prefix.
      const auto it = std::upper_bound(boundary.begin(), boundary.end(), len);
      EXPECT_EQ(r.valid_bytes, *(it - 1)) << "len " << len;
    }
  }
}

TEST(Wal, CorruptFrameDetected) {
  io::TempDir dir;
  const std::string path = dir.file("g.wal");
  {
    ingest::EdgeWal wal(path, 0);
    wal.append(std::vector<graph::Edge>{{1, 2}});
    wal.append(std::vector<graph::Edge>{{3, 4}});
  }
  // Flip a payload byte of the second (fully present) frame.
  const std::uint64_t second_payload =
      sizeof(ingest::WalFileHeader) + 2 * sizeof(ingest::WalFrameHeader) +
      sizeof(graph::Edge);
  std::vector<std::uint8_t> bytes = slurp(path);
  bytes[second_payload] ^= 0xff;
  spit(path, bytes);

  const ingest::WalReplay r = ingest::EdgeWal::replay(path);
  EXPECT_EQ(r.tail, ingest::WalTail::kCorrupt);
  EXPECT_EQ(r.frames, 1u);
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0], (graph::Edge{1, 2}));
}

TEST(Wal, StaleGenerationIsReset) {
  io::TempDir dir;
  const std::string path = dir.file("g.wal");
  {
    ingest::EdgeWal wal(path, 0);
    wal.append(std::vector<graph::Edge>{{1, 2}});
  }
  // A writer opening on behalf of generation 1 must discard generation 0's
  // edges (they are already compacted into the tiles).
  ingest::EdgeWal wal(path, 1);
  EXPECT_EQ(wal.size_bytes(), sizeof(ingest::WalFileHeader));
  const ingest::WalReplay r = ingest::EdgeWal::replay(path);
  EXPECT_EQ(r.generation, 1u);
  EXPECT_TRUE(r.edges.empty());
}

TEST(Wal, TornTailTruncatedOnReopen) {
  io::TempDir dir;
  const std::string path = dir.file("g.wal");
  {
    ingest::EdgeWal wal(path, 0);
    wal.append(std::vector<graph::Edge>{{1, 2}});
    wal.append(std::vector<graph::Edge>{{3, 4}});
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  bytes.resize(bytes.size() - 3);  // tear the last frame
  spit(path, bytes);
  ingest::EdgeWal wal(path, 0);  // reopen truncates the torn tail
  wal.append(std::vector<graph::Edge>{{5, 6}});
  const ingest::WalReplay r = ingest::EdgeWal::replay(path);
  EXPECT_EQ(r.tail, ingest::WalTail::kClean);
  ASSERT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.edges[0], (graph::Edge{1, 2}));
  EXPECT_EQ(r.edges[1], (graph::Edge{5, 6}));
}

// ---- delta buffer ----------------------------------------------------------

TEST(DeltaBuffer, GroupsByTileAndTracksDegrees) {
  io::TempDir dir;
  // 4 vertices in one undirected symmetric store, tile_bits 1 → 2×2 grid of
  // 2-vertex tiles, upper triangle stored.
  graph::EdgeList el({{0, 1}}, 4, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 1;
  copt.group_side = 2;
  auto store = make_store(dir, el, copt);

  ingest::DeltaBuffer delta(store.grid(), store.meta(), 1 << 20);
  EXPECT_TRUE(delta.add({3, 0}));   // canonicalized to (0,3) → tile (0,1)
  EXPECT_TRUE(delta.add({2, 3}));   // tile (1,1)
  EXPECT_FALSE(delta.add({2, 2}));  // self loop dropped
  EXPECT_THROW(delta.add({0, 4}), InvalidArgument);

  EXPECT_EQ(delta.ingested_edges(), 2u);
  EXPECT_EQ(delta.edge_count(), 2u);
  const auto tiles = delta.nonempty_tiles();
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_EQ(tiles[0], store.grid().layout_index(0, 1));
  EXPECT_EQ(tiles[1], store.grid().layout_index(1, 1));
  const auto span01 = delta.tile_edges(store.grid().layout_index(0, 1));
  ASSERT_EQ(span01.size(), 1u);
  EXPECT_EQ(tile::snb_decode(span01[0], 0, 2), (graph::Edge{0, 3}));

  std::vector<graph::degree_t> deg(4, 0);
  delta.apply_degree_deltas(deg);
  EXPECT_EQ(deg, (std::vector<graph::degree_t>{1, 0, 1, 2}));

  delta.clear();
  EXPECT_EQ(delta.edge_count(), 0u);
  EXPECT_EQ(delta.memory_bytes(), 0u);
}

// ---- end-to-end equivalence (the acceptance criterion) ---------------------

TEST(IngestEquivalence, OverlayAndCompactionMatchFreshConvert) {
  io::TempDir dir;
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(9, 8, graph::GraphKind::kUndirected, 42));
  graph::EdgeList base;
  std::vector<graph::Edge> delta;
  split(full, 0.85, base, delta);
  ASSERT_GT(delta.size(), 100u);

  tile::ConvertOptions copt;
  copt.tile_bits = 6;
  copt.group_side = 2;

  // Reference: a fresh conversion of G0 ∪ ΔE.
  auto union_store = make_store(dir, full, copt, {}, "union");
  const AlgoResults want = run_algos(union_store);
  const std::vector<graph::Edge> want_tuples = sorted(decode_all_edges(union_store));

  // Online path: convert G0, ingest ΔE through the WAL.
  tile::convert_to_tiles(base, dir.file("g"), copt);
  ingest::EdgeIngestor ingestor(dir.file("g"));
  EXPECT_EQ(ingestor.ingest(delta), delta.size());
  EXPECT_EQ(ingestor.generation(), 0u);
  EXPECT_GT(ingestor.wal_bytes(), sizeof(ingest::WalFileHeader));

  // Stage 1: algorithms through the overlay, store un-compacted.
  expect_same_results(run_algos(ingestor.store()), want);
  EXPECT_EQ(logical_tuples(ingestor.store()), want_tuples);

  // Stage 2: compact, then re-run on the new generation.
  const ingest::CompactStats cs = ingestor.compact();
  EXPECT_EQ(cs.old_generation, 0u);
  EXPECT_EQ(cs.new_generation, 1u);
  EXPECT_EQ(cs.wal_edges, delta.size());
  EXPECT_EQ(ingestor.generation(), 1u);
  EXPECT_EQ(ingestor.wal_bytes(), sizeof(ingest::WalFileHeader));
  EXPECT_EQ(ingestor.delta().ingested_edges(), 0u);
  EXPECT_EQ(ingestor.store().edge_count(), union_store.edge_count());
  EXPECT_EQ(sorted(decode_all_edges(ingestor.store())), want_tuples);
  expect_same_results(run_algos(ingestor.store()), want);

  // A fresh open through the manifest lands on generation 1 too.
  auto reopened = tile::TileStore::open(dir.file("g"));
  EXPECT_EQ(reopened.meta().generation, 1u);
  const tile::VerifyReport report = tile::verify_store(dir.file("g"));
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

// Compaction must reproduce the converter's canonicalization for every
// store flavor: directed out-edges, directed in-edges, and the full-matrix
// undirected ablation.
TEST(IngestEquivalence, CompactionMatchesAcrossStoreFlavors) {
  struct Flavor {
    graph::GraphKind kind;
    bool out_edges;
    bool symmetry;
  };
  const Flavor flavors[] = {
      {graph::GraphKind::kDirected, true, true},
      {graph::GraphKind::kDirected, false, true},
      {graph::GraphKind::kUndirected, true, false},
  };
  for (const Flavor& f : flavors) {
    io::TempDir dir;
    const graph::EdgeList full =
        strip_self_loops(graph::kronecker(8, 8, f.kind, 7));
    graph::EdgeList base;
    std::vector<graph::Edge> delta;
    split(full, 0.9, base, delta);

    tile::ConvertOptions copt;
    copt.tile_bits = 5;
    copt.group_side = 2;
    copt.out_edges = f.out_edges;
    copt.symmetry = f.symmetry;

    auto union_store = make_store(dir, full, copt, {}, "union");
    tile::convert_to_tiles(base, dir.file("g"), copt);

    ingest::EdgeIngestor ingestor(dir.file("g"));
    ingestor.ingest(delta);
    EXPECT_EQ(logical_tuples(ingestor.store()),
              sorted(decode_all_edges(union_store)));
    ingestor.compact();
    EXPECT_EQ(sorted(decode_all_edges(ingestor.store())),
              sorted(decode_all_edges(union_store)))
        << "flavor out=" << f.out_edges << " sym=" << f.symmetry;
    EXPECT_EQ(ingestor.store().edge_count(), union_store.edge_count());
  }
}

// ---- crash safety ----------------------------------------------------------

TEST(CompactionCrash, EveryCrashPointRecoversToExactlyOneGeneration) {
  const ingest::CrashPoint points[] = {
      ingest::CrashPoint::kAfterNewGeneration,
      ingest::CrashPoint::kAfterManifestTemp,
      ingest::CrashPoint::kAfterPublish,
  };
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(8, 8, graph::GraphKind::kUndirected, 13));
  graph::EdgeList base;
  std::vector<graph::Edge> delta;
  split(full, 0.85, base, delta);

  for (const ingest::CrashPoint cp : points) {
    io::TempDir dir;
    tile::ConvertOptions copt;
    copt.tile_bits = 5;
    copt.group_side = 2;
    tile::convert_to_tiles(base, dir.file("g"), copt);
    std::vector<graph::Edge> want_tuples;
    {
      auto union_store = make_store(dir, full, copt, {}, "union");
      want_tuples = sorted(decode_all_edges(union_store));
      ingest::EdgeIngestor ingestor(dir.file("g"));
      ingestor.ingest(delta);
    }  // "process" exits; WAL is durable

    ingest::CompactOptions copts;
    copts.crash = cp;
    EXPECT_THROW(ingest::compact_store(dir.file("g"), copts),
                 ingest::CrashInjected);

    // The next "process" must land on exactly one generation and still
    // observe G0 ∪ ΔE — through the overlay if the publish didn't happen,
    // through the new tiles if it did.
    ingest::EdgeIngestor recovered(dir.file("g"));
    const std::uint32_t gen = recovered.generation();
    EXPECT_TRUE(gen == 0 || gen == 1) << "crash point " << int(cp);
    if (cp == ingest::CrashPoint::kAfterPublish) {
      EXPECT_EQ(gen, 1u);
      EXPECT_EQ(recovered.delta().ingested_edges(), 0u);  // stale WAL discarded
    } else {
      EXPECT_EQ(gen, 0u);
      EXPECT_EQ(recovered.delta().ingested_edges(), delta.size());
    }
    EXPECT_EQ(logical_tuples(recovered.store()), want_tuples)
        << "crash point " << int(cp);
    const tile::VerifyReport report = tile::verify_store(dir.file("g"));
    EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);

    // And a second, uninterrupted compaction completes from that state.
    recovered.compact();
    EXPECT_EQ(sorted(decode_all_edges(recovered.store())), want_tuples);
  }
}

TEST(Compaction, InFlightReaderFinishesOnOldGeneration) {
  io::TempDir dir;
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(8, 8, graph::GraphKind::kUndirected, 3));
  graph::EdgeList base;
  std::vector<graph::Edge> delta;
  split(full, 0.9, base, delta);

  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  copt.group_side = 2;
  tile::convert_to_tiles(base, dir.file("g"), copt);
  auto old_tuples = [&] {
    auto s = tile::TileStore::open(dir.file("g"));
    return sorted(decode_all_edges(s));
  }();

  // Reader opens generation 0 and keeps its fds across the compaction.
  auto reader = tile::TileStore::open(dir.file("g"));
  {
    ingest::EdgeIngestor ingestor(dir.file("g"));
    ingestor.ingest(delta);
    ingestor.compact();  // unlinks generation 0's files
  }
  EXPECT_FALSE(io::File::exists(tile::TileStore::tiles_path(dir.file("g"))));

  // The reader still scans the complete old snapshot (POSIX keeps unlinked
  // files alive while open), and sees none of the delta.
  EXPECT_EQ(sorted(decode_all_edges(reader)), old_tuples);
  EXPECT_EQ(reader.meta().generation, 0u);

  // A new open lands on generation 1 with everything merged.
  auto fresh = tile::TileStore::open(dir.file("g"));
  EXPECT_EQ(fresh.meta().generation, 1u);
  EXPECT_EQ(fresh.edge_count(), old_tuples.size() + delta.size());
}

TEST(Ingestor, AutoCompactTriggersOnBudget) {
  io::TempDir dir;
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(8, 8, graph::GraphKind::kUndirected, 21));
  graph::EdgeList base;
  std::vector<graph::Edge> delta;
  split(full, 0.5, base, delta);

  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  copt.group_side = 2;
  tile::convert_to_tiles(base, dir.file("g"), copt);

  ingest::IngestorOptions iopt;
  iopt.delta_budget_bytes = 1024;  // tiny: force a compaction
  iopt.auto_compact = true;
  ingest::EdgeIngestor ingestor(dir.file("g"), iopt);
  ingestor.ingest(delta);
  EXPECT_GE(ingestor.generation(), 1u);
  EXPECT_EQ(ingestor.delta().ingested_edges(), 0u);

  auto union_store = make_store(dir, full, copt, {}, "union");
  EXPECT_EQ(logical_tuples(ingestor.store()),
            sorted(decode_all_edges(union_store)));
}

// ---- format hardening (satellite: version/magic rejection) -----------------

TEST(MetaVersion, NewerSeiVersionRejected) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}, {1, 2}}, 8, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 2;
  { auto s = make_store(dir, el, copt); }
  // TileStoreMeta.version sits at byte 8 of the .sei file.
  patch(tile::TileStore::sei_path(dir.file("g")), 8, {99, 0, 0, 0});
  try {
    tile::TileStore::open(dir.file("g"));
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos);
  }
}

TEST(MetaVersion, NewerTilesVersionRejected) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}, {1, 2}}, 8, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 2;
  { auto s = make_store(dir, el, copt); }
  // TilesFileHeader.version sits at byte 8 of the .tiles file.
  patch(tile::TileStore::tiles_path(dir.file("g")), 8, {77, 0, 0, 0});
  try {
    tile::TileStore::open(dir.file("g"));
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version 77"), std::string::npos);
  }
}

TEST(MetaVersion, MagicMismatchRejected) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}}, 4, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 2;
  { auto s = make_store(dir, el, copt); }
  patch(tile::TileStore::sei_path(dir.file("g")), 0, {0xde, 0xad});
  try {
    tile::TileStore::open(dir.file("g"));
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("magic mismatch"), std::string::npos);
  }
}

TEST(MetaVersion, LegacyV1StoreOpensAsGenerationZero) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}, {1, 2}, {2, 3}}, 8, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 2;
  // v1 stores carry a single start-edge index and raw SNB payloads, so the
  // store being patched below must be written without the v3 codec layer.
  copt.compress = false;
  std::vector<graph::Edge> want;
  {
    auto s = make_store(dir, el, copt);
    want = sorted(decode_all_edges(s));
  }
  // Rewrite both headers as a v1 store: version 1, generation bytes zero
  // (v1 wrote them as reserved zeros; generation sits at byte 48 of meta).
  patch(tile::TileStore::sei_path(dir.file("g")), 8, {1, 0, 0, 0});
  patch(tile::TileStore::sei_path(dir.file("g")), 48, {0, 0, 0, 0});
  patch(tile::TileStore::tiles_path(dir.file("g")), 8, {1, 0, 0, 0});
  auto s = tile::TileStore::open(dir.file("g"));
  EXPECT_EQ(s.meta().version, 1u);
  EXPECT_EQ(s.meta().generation, 0u);
  EXPECT_EQ(sorted(decode_all_edges(s)), want);
}

TEST(MetaVersion, GarbledManifestRejected) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}}, 4, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 2;
  { auto s = make_store(dir, el, copt); }
  spit(tile::TileStore::current_path(dir.file("g")), {'x', 'y', '\n'});
  EXPECT_THROW(tile::TileStore::open(dir.file("g")), FormatError);
}

// ---- verify extensions -----------------------------------------------------

TEST(Verify, CatchesTruncatedDegreeFile) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}, {1, 2}, {2, 3}}, 8, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 3;
  { auto s = make_store(dir, el, copt); }
  const std::string deg = tile::TileStore::deg_path(dir.file("g"));
  std::vector<std::uint8_t> bytes = slurp(deg);
  bytes.resize(bytes.size() - sizeof(graph::degree_t));
  spit(deg, bytes);
  const tile::VerifyReport report = tile::verify_store(dir.file("g"));
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("degree file"), std::string::npos);
}

TEST(Verify, CatchesCountingSymmetryBreak) {
  io::TempDir dir;
  // All vertices in one diagonal tile so a diagonal tuple is reachable.
  graph::EdgeList el({{0, 1}, {1, 2}, {2, 3}}, 8, graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 3;
  // Patch raw tuple bytes directly: needs an uncoded (v2) payload — under
  // v3 codecs the same byte patch would trip the payload cross-check first.
  copt.compress = false;
  { auto s = make_store(dir, el, copt); }
  // Turn the first tuple (src16, dst16) into a diagonal (src16, src16): it
  // now bumps one degree instead of two, breaking the counting identity.
  const std::string tiles = tile::TileStore::tiles_path(dir.file("g"));
  std::vector<std::uint8_t> bytes = slurp(tiles);
  bytes[64 + 2] = bytes[64 + 0];  // dst16 := src16 of the first SNB tuple
  bytes[64 + 3] = bytes[64 + 1];
  spit(tiles, bytes);
  const tile::VerifyReport report = tile::verify_store(dir.file("g"));
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("counting symmetry"), std::string::npos);
}

TEST(Verify, ChecksWalFrames) {
  io::TempDir dir;
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(7, 4, graph::GraphKind::kUndirected, 5));
  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  copt.group_side = 2;
  tile::convert_to_tiles(full, dir.file("g"), copt);
  {
    ingest::EdgeIngestor ingestor(dir.file("g"));
    ingestor.ingest(std::vector<graph::Edge>{{1, 2}, {3, 4}, {5, 6}});
  }
  tile::VerifyReport report = tile::verify_store(dir.file("g"));
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
  EXPECT_EQ(report.wal_frames_checked, 1u);
  EXPECT_EQ(report.wal_edges_checked, 3u);

  // Corrupt the frame payload: verify must flag it.
  const std::string wal = ingest::EdgeWal::path_for(dir.file("g"));
  std::vector<std::uint8_t> bytes = slurp(wal);
  bytes.back() ^= 0xff;
  spit(wal, bytes);
  report = tile::verify_store(dir.file("g"));
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("corrupt frame"), std::string::npos);
}

}  // namespace
}  // namespace gstore
// Appended: incremental recompute + codec-aware compaction (ISSUE 10).
#include "algo/sssp.h"
#include "tile/compress.h"

namespace gstore {
namespace {

tile::TileCodec codec_of(tile::TileStore& s, std::uint64_t k) {
  std::vector<std::uint8_t> buf(s.tile_bytes(k));
  s.read_range(k, k + 1, buf.data());
  return s.view(k, buf.data()).codec;
}

// The WAL delta arrives, and instead of rerunning SSSP from scratch the
// engine re-activates only the tiles the delta touched (ScrEngine::resume).
// New edges can only shorten paths, so resuming from the converged
// distances must reach the same fixpoint as a cold run over base ∪ delta.
TEST(IncrementalRecompute, SsspResumeMatchesColdRerun) {
  io::TempDir dir;
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(11, 6, graph::GraphKind::kUndirected, 77));
  graph::EdgeList base;
  std::vector<graph::Edge> batch;
  split(full, 0.995, base, batch);
  ASSERT_GT(batch.size(), 5u);
  batch.resize(std::min<std::size_t>(batch.size(), 12));  // few touched tiles

  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  copt.group_side = 2;
  tile::convert_to_tiles(base, dir.file("g"), copt);
  auto store = tile::TileStore::open(dir.file("g"));

  store::EngineConfig cfg;
  cfg.stream_memory_bytes = 96 << 10;
  cfg.segment_bytes = 8 << 10;

  // Converged cold state on the base graph, no overlay.
  algo::TileSssp sssp(0);
  store::ScrEngine engine(store, cfg);
  const auto cold_stats = engine.run(sssp);

  // Deliver the batch; the dirty-tile set drives the re-activation.
  ingest::DeltaBuffer delta(store.grid(), store.meta(), 1 << 20);
  delta.add_batch(batch);
  const auto dirty = delta.take_dirty_tiles();
  EXPECT_EQ(dirty, delta.nonempty_tiles());
  EXPECT_TRUE(delta.take_dirty_tiles().empty());  // take clears the set
  store.attach_overlay(&delta);

  const auto resume_stats = engine.resume(sssp, dirty);

  // Reference: a from-scratch run over the same base ∪ overlay view.
  algo::TileSssp ref(0);
  store::ScrEngine(store, cfg).run(ref);
  const auto& have = sssp.distances();
  const auto& want = ref.distances();
  ASSERT_EQ(have.size(), want.size());
  for (std::size_t v = 0; v < have.size(); ++v)
    ASSERT_EQ(have[v], want[v]) << "vertex " << v;

  // The resume touched only the delta's neighbourhood — far less I/O than
  // the converged cold run it replaces.
  EXPECT_GT(resume_stats.rounds, 0u);
  EXPECT_LT(resume_stats.bytes_read, cold_stats.bytes_read);
}

TEST(IncrementalRecompute, BfsDeclinesAndFallsBackToColdRun) {
  io::TempDir dir;
  const graph::EdgeList full = strip_self_loops(
      graph::kronecker(9, 6, graph::GraphKind::kUndirected, 31));
  graph::EdgeList base;
  std::vector<graph::Edge> batch;
  split(full, 0.95, base, batch);

  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  tile::convert_to_tiles(base, dir.file("g"), copt);
  auto store = tile::TileStore::open(dir.file("g"));

  algo::TileBfs bfs(0);
  store::ScrEngine engine(store);
  engine.run(bfs);

  ingest::DeltaBuffer delta(store.grid(), store.meta(), 1 << 20);
  delta.add_batch(batch);
  store.attach_overlay(&delta);

  // BFS cannot lower already-assigned depths in place (its visited CAS is
  // one-shot), so reactivate() declines and resume() reruns cold — the
  // fallback must still produce the union graph's answer.
  engine.resume(bfs, delta.nonempty_tiles());
  algo::TileBfs ref(0);
  store::ScrEngine(store).run(ref);
  EXPECT_EQ(bfs.depth(), ref.depth());
}

TEST(IncrementalRecompute, EmptyDeltaFallsBackToColdRun) {
  io::TempDir dir;
  graph::EdgeList el({{0, 1}, {1, 2}, {2, 3}}, 8,
                     graph::GraphKind::kUndirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 2;
  auto store = make_store(dir, el, copt);
  algo::TileSssp sssp(0);
  store::ScrEngine engine(store);
  engine.resume(sssp, {});  // no prior run, no delta: plain cold run
  algo::TileSssp ref(0);
  store::ScrEngine(store).run(ref);
  EXPECT_EQ(sssp.distances(), ref.distances());
}

// Satellite: codec-aware compaction. A tile whose base payload encodes as
// row runs must be re-encoded under whichever codec wins for the *merged*
// edge set once a dense scattered overlay is folded in — compaction always
// re-runs codec selection, it never keeps the old tile's choice.
TEST(Compaction, RunsFriendlyTileFlipsCodecAfterDenseOverlayMerge) {
  io::TempDir dir;
  // One 32×32 tile. Base rows are complete contiguous ranges — the runs
  // codec encodes each row in a couple of bytes and wins outright.
  std::vector<graph::Edge> base_edges;
  for (graph::vid_t s = 0; s < 8; ++s)
    for (graph::vid_t d = 8; d < 32; ++d) base_edges.push_back({s, d});
  graph::EdgeList base(std::move(base_edges), 32, graph::GraphKind::kDirected);
  tile::ConvertOptions copt;
  copt.tile_bits = 5;
  tile::convert_to_tiles(base, dir.file("g"), copt);

  ingest::EdgeIngestor ingestor(dir.file("g"));
  const auto before = codec_of(ingestor.store(), 0);
  EXPECT_TRUE(before == tile::TileCodec::kRuns ||
              before == tile::TileCodec::kHybrid)
      << "base tile should be runs-friendly, got " << int(before);

  // Scatter pseudo-random edges over the whole tile: runs break apart.
  std::vector<graph::Edge> scattered;
  for (std::uint32_t k = 0; k < 300; ++k) {
    const auto s = static_cast<graph::vid_t>((k * 17 + 5) % 32);
    const auto d = static_cast<graph::vid_t>((k * k * 13 + 7) % 32);
    if (s != d) scattered.push_back({s, d});
  }
  ingestor.ingest(scattered);
  ingestor.compact();

  const auto after = codec_of(ingestor.store(), 0);
  EXPECT_NE(after, before)
      << "compaction kept codec " << int(before)
      << " for a tile whose merged payload is no longer runs-friendly";

  // And the re-encoded tile still decodes to exactly base ∪ delta.
  auto union_el = base.edges();
  std::vector<graph::Edge> all(union_el.begin(), union_el.end());
  for (const graph::Edge& e : scattered) all.push_back(e);
  EXPECT_EQ(sorted(decode_all_edges(ingestor.store())), sorted(all));
}

}  // namespace
}  // namespace gstore
