// Fault-injection and retry/recovery tests for the async I/O path.
//
// Covers: FaultSpec parsing, schedule determinism, each injected fault
// type, AsyncEngine's errno classification and bounded retries, short-read
// tail resubmission, drain()'s all-failures report, the no-progress stall
// guard, striped-member truncation, and WAL replay under a torn tail.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.h"
#include "ingest/wal.h"
#include "io/async_engine.h"
#include "io/device.h"
#include "io/fault.h"
#include "io/file.h"
#include "io/striped.h"
#include "util/status.h"

namespace gstore::io {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return v;
}

std::string write_pattern_file(const TempDir& dir, const std::string& name,
                               std::size_t n) {
  File w(dir.file(name), OpenMode::kWrite);
  const auto data = pattern_bytes(n);
  w.append(data.data(), data.size());
  return dir.file(name);
}

// ---- FaultSpec ----------------------------------------------------------

TEST(FaultSpec, ParsesEveryKey) {
  const FaultSpec s = FaultSpec::parse(
      "seed=7,eio-nth=40,eio=0.01,eintr=0.2,eagain=0.1,short=0.05,"
      "latency=0.25:5.5,torn-tail=64");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.eio_nth, 40u);
  EXPECT_DOUBLE_EQ(s.eio_rate, 0.01);
  EXPECT_DOUBLE_EQ(s.eintr_rate, 0.2);
  EXPECT_DOUBLE_EQ(s.eagain_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.short_rate, 0.05);
  EXPECT_DOUBLE_EQ(s.latency_rate, 0.25);
  EXPECT_DOUBLE_EQ(s.latency_ms, 5.5);
  EXPECT_EQ(s.torn_tail_bytes, 64u);
  EXPECT_FALSE(s.empty());
}

TEST(FaultSpec, EmptyAndRoundtrip) {
  EXPECT_TRUE(FaultSpec::parse("").empty());
  EXPECT_TRUE(FaultSpec::parse("seed=99").empty());  // seed alone injects nothing
  const FaultSpec s = FaultSpec::parse("seed=3,eintr=0.5,torn-tail=10");
  const FaultSpec back = FaultSpec::parse(s.to_string());
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_DOUBLE_EQ(back.eintr_rate, s.eintr_rate);
  EXPECT_EQ(back.torn_tail_bytes, s.torn_tail_bytes);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultSpec::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("eio"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("eio=1.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("eio=-0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("eio=abc"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("seed=xyz"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("latency=0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("latency=0.1:-3"), InvalidArgument);
}

// ---- FaultInjectingSource ----------------------------------------------

// Replays the same read sequence against two identically-seeded wrappers
// and requires decision-for-decision identical outcomes.
TEST(FaultInjectingSource, ScheduleIsDeterministic) {
  TempDir dir;
  const std::string path = write_pattern_file(dir, "a.bin", 16 << 10);
  File f(path, OpenMode::kRead);
  const FaultSpec spec =
      FaultSpec::parse("seed=11,eio=0.1,eintr=0.15,eagain=0.1,short=0.3");

  auto trace = [&](const FaultInjectingSource& src) {
    std::vector<long long> events;
    std::vector<std::uint8_t> buf(512);
    for (int k = 0; k < 200; ++k) {
      try {
        events.push_back(static_cast<long long>(
            src.pread_some(buf.data(), buf.size(),
                           static_cast<std::uint64_t>(k) * 64)));
      } catch (const IoError& e) {
        events.push_back(-e.sys_errno());
      }
    }
    return events;
  };

  const FaultInjectingSource a(f, spec);
  const FaultInjectingSource b(f, spec);
  EXPECT_EQ(trace(a), trace(b));
  const FaultStats sa = a.stats();
  const FaultStats sb = b.stats();
  EXPECT_EQ(sa.reads, sb.reads);
  EXPECT_EQ(sa.injected_eio, sb.injected_eio);
  EXPECT_EQ(sa.injected_eintr, sb.injected_eintr);
  EXPECT_EQ(sa.injected_eagain, sb.injected_eagain);
  EXPECT_EQ(sa.injected_short, sb.injected_short);
  // The rates are high enough that a 200-read schedule exercising none of
  // them would itself be a determinism bug.
  EXPECT_GT(sa.injected_eio + sa.injected_eintr + sa.injected_eagain, 0u);
  EXPECT_GT(sa.injected_short, 0u);
}

TEST(FaultInjectingSource, EioNthFiresOnExactlyThatRead) {
  TempDir dir;
  File f(write_pattern_file(dir, "a.bin", 4096), OpenMode::kRead);
  const FaultInjectingSource src(f, FaultSpec::parse("eio-nth=3"));
  std::uint8_t buf[64];
  EXPECT_EQ(src.pread_some(buf, sizeof buf, 0), sizeof buf);  // read 1
  EXPECT_EQ(src.pread_some(buf, sizeof buf, 0), sizeof buf);  // read 2
  try {
    src.pread_some(buf, sizeof buf, 0);  // read 3: injected EIO
    FAIL() << "expected injected EIO";
  } catch (const IoError& e) {
    EXPECT_EQ(e.sys_errno(), EIO);
  }
  EXPECT_EQ(src.pread_some(buf, sizeof buf, 0), sizeof buf);  // read 4
  EXPECT_EQ(src.stats().injected_eio, 1u);
}

TEST(FaultInjectingSource, TornTailBehavesLikeShorterFile) {
  TempDir dir;
  const auto data = pattern_bytes(1000);
  File f(write_pattern_file(dir, "a.bin", 1000), OpenMode::kRead);
  const FaultInjectingSource src(f, FaultSpec::parse("torn-tail=100"));
  EXPECT_EQ(src.size(), 900u);
  std::vector<std::uint8_t> buf(200);
  EXPECT_EQ(src.pread_some(buf.data(), 200, 850), 50u);  // clamped at 900
  EXPECT_EQ(std::memcmp(buf.data(), data.data() + 850, 50), 0);
  EXPECT_EQ(src.pread_some(buf.data(), 200, 950), 0u);  // past the torn end
  // A tail larger than the file clamps to zero, not underflow.
  const FaultInjectingSource all_torn(f, FaultSpec::parse("torn-tail=5000"));
  EXPECT_EQ(all_torn.size(), 0u);
}

TEST(FaultInjectingSource, ShortReadsAlwaysMakeProgress) {
  TempDir dir;
  File f(write_pattern_file(dir, "a.bin", 4096), OpenMode::kRead);
  const FaultInjectingSource src(f, FaultSpec::parse("seed=5,short=1"));
  std::uint8_t buf[256];
  for (int k = 0; k < 50; ++k) {
    const std::size_t got = src.pread_some(buf, sizeof buf, 0);
    EXPECT_GE(got, 1u);  // never a zero-byte mid-file read
    EXPECT_LE(got, sizeof buf);
  }
  EXPECT_GT(src.stats().injected_short, 0u);
}

// ---- AsyncEngine retry/recovery ----------------------------------------

// Test sources for failure modes fault injection cannot express.
class PermanentFailSource final : public Source {
 public:
  std::size_t pread_some(void*, std::size_t, std::uint64_t) const override {
    throw IoError("simulated hardware death", EBADF);
  }
  std::uint64_t size() const override { return 1 << 20; }
};

class NonGstoreThrowSource final : public Source {
 public:
  std::size_t pread_some(void*, std::size_t, std::uint64_t) const override {
    throw std::runtime_error("boom from a non-gstore layer");
  }
  std::uint64_t size() const override { return 1 << 20; }
};

// Claims bytes it never delivers, like a truncated member behind an intact
// directory entry.
class StallingSource final : public Source {
 public:
  std::size_t pread_some(void*, std::size_t, std::uint64_t) const override {
    return 0;
  }
  std::uint64_t size() const override { return 100; }
};

TEST(ErrnoClassification, MatchesTheTaxonomy) {
  EXPECT_EQ(classify_errno(EINTR), ErrnoClass::kInterrupted);
  EXPECT_EQ(classify_errno(EAGAIN), ErrnoClass::kInterrupted);
  EXPECT_EQ(classify_errno(EIO), ErrnoClass::kTransient);
  EXPECT_EQ(classify_errno(ENOMEM), ErrnoClass::kTransient);
  EXPECT_EQ(classify_errno(EBUSY), ErrnoClass::kTransient);
  EXPECT_EQ(classify_errno(EBADF), ErrnoClass::kPermanent);
  EXPECT_EQ(classify_errno(EINVAL), ErrnoClass::kPermanent);
  EXPECT_EQ(classify_errno(ENXIO), ErrnoClass::kPermanent);
}

class AsyncRetryTest : public ::testing::TestWithParam<Backend> {
 protected:
  RetryPolicy fast_retry() const {
    RetryPolicy p;
    p.backoff_initial_ms = 0.1;  // keep injected-failure tests fast
    p.backoff_max_ms = 1.0;
    return p;
  }
};

TEST_P(AsyncRetryTest, TransientFaultIsRetriedToSuccess) {
  TempDir dir;
  const auto data = pattern_bytes(8192);
  File f(write_pattern_file(dir, "a.bin", 8192), OpenMode::kRead);
  const FaultInjectingSource src(f, FaultSpec::parse("eio-nth=1"));
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::vector<std::uint8_t> buf(4096);
  eng.submit({ReadRequest{&src, 0, buf.size(), buf.data(), 42}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_EQ(done[0].bytes, buf.size());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), buf.size()), 0);
  const RetryStats s = eng.retry_stats();
  EXPECT_GE(s.retries, 1u);
  EXPECT_EQ(s.failed_reads, 0u);
  EXPECT_GT(s.backoff_seconds, 0.0);
}

TEST_P(AsyncRetryTest, InterruptStormIsAbsorbed) {
  TempDir dir;
  const auto data = pattern_bytes(64 << 10);
  File f(write_pattern_file(dir, "a.bin", 64 << 10), OpenMode::kRead);
  const FaultInjectingSource src(
      f, FaultSpec::parse("seed=5,eintr=0.4,eagain=0.2"));
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  constexpr int kReqs = 16;
  std::vector<std::vector<std::uint8_t>> bufs(kReqs,
                                              std::vector<std::uint8_t>(4096));
  std::vector<ReadRequest> batch;
  for (int i = 0; i < kReqs; ++i)
    batch.push_back(ReadRequest{&src, static_cast<std::uint64_t>(i) * 4096,
                                4096, bufs[i].data(),
                                static_cast<std::uint64_t>(i)});
  eng.submit(batch);
  eng.drain();  // no-throw: every interrupt was reissued
  for (int i = 0; i < kReqs; ++i)
    EXPECT_EQ(std::memcmp(bufs[i].data(), data.data() + i * 4096, 4096), 0)
        << "request " << i;
  EXPECT_GE(eng.retry_stats().retries, 1u);
  EXPECT_EQ(eng.retry_stats().failed_reads, 0u);
}

TEST_P(AsyncRetryTest, ShortReadsResubmitTheTail) {
  TempDir dir;
  const auto data = pattern_bytes(64 << 10);
  File f(write_pattern_file(dir, "a.bin", 64 << 10), OpenMode::kRead);
  const FaultInjectingSource src(f, FaultSpec::parse("seed=9,short=0.7"));
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::vector<std::uint8_t> buf(48 << 10);
  eng.submit({ReadRequest{&src, 4096, buf.size(), buf.data(), 7}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_EQ(done[0].bytes, buf.size());  // the tail was pursued to the end
  EXPECT_EQ(std::memcmp(buf.data(), data.data() + 4096, buf.size()), 0);
  EXPECT_GE(eng.retry_stats().short_reads, 1u);
}

TEST_P(AsyncRetryTest, EofShortReadStillCompletesOk) {
  // The EOF contract must survive the tail-resubmit machinery: reading past
  // the end is a legitimate short completion, not a retry loop.
  TempDir dir;
  File f(write_pattern_file(dir, "a.bin", 3), OpenMode::kRead);
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::uint8_t buf[16];
  eng.submit({ReadRequest{&f, 0, 16, buf, 1}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_EQ(done[0].bytes, 3u);
  EXPECT_EQ(eng.retry_stats().failed_reads, 0u);
}

TEST_P(AsyncRetryTest, PermanentErrorFailsWithoutRetry) {
  const PermanentFailSource src;
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::uint8_t buf[64];
  eng.submit({ReadRequest{&src, 0, sizeof buf, buf, 5}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].ok);
  EXPECT_EQ(done[0].error, EBADF);
  EXPECT_NE(done[0].message.find("simulated hardware death"),
            std::string::npos);
  EXPECT_EQ(eng.retry_stats().retries, 0u);  // permanent: no retry burned
  EXPECT_EQ(eng.retry_stats().failed_reads, 1u);
}

TEST_P(AsyncRetryTest, NonGstoreExceptionBecomesFailedCompletion) {
  // A worker that lets a non-gstore exception escape terminates the whole
  // process; it must surface as a failed completion instead.
  const NonGstoreThrowSource src;
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::uint8_t buf[64];
  eng.submit({ReadRequest{&src, 0, sizeof buf, buf, 9}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].ok);
  EXPECT_EQ(done[0].error, EIO);
  EXPECT_NE(done[0].message.find("boom from a non-gstore layer"),
            std::string::npos);
  EXPECT_EQ(eng.in_flight(), 0u);  // the worker survived to serve more
}

TEST_P(AsyncRetryTest, StalledSourceFailsInsteadOfSpinning) {
  const StallingSource src;
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::uint8_t buf[64];
  eng.submit({ReadRequest{&src, 0, sizeof buf, buf, 3}});
  std::vector<Completion> done;
  eng.poll(1, 1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].ok);
  EXPECT_EQ(done[0].error, EIO);
  EXPECT_NE(done[0].message.find("stalled"), std::string::npos);
}

TEST_P(AsyncRetryTest, DrainReportsEveryFailedTagInOneError) {
  const PermanentFailSource src;
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::uint8_t buf[64];
  std::vector<ReadRequest> batch;
  for (std::uint64_t tag : {70u, 80u, 90u})
    batch.push_back(ReadRequest{&src, 0, sizeof buf, buf, tag});
  eng.submit(batch);
  try {
    eng.drain();
    FAIL() << "expected drain() to throw";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 request(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("70"), std::string::npos) << what;
    EXPECT_NE(what.find("80"), std::string::npos) << what;
    EXPECT_NE(what.find("90"), std::string::npos) << what;
    EXPECT_EQ(e.sys_errno(), EBADF);
  }
  // Everything was reaped before the throw; the engine is reusable.
  EXPECT_EQ(eng.in_flight(), 0u);
  eng.drain();  // nothing outstanding: no-throw
}

TEST_P(AsyncRetryTest, QuiesceNeverThrowsAndCountsFailures) {
  const PermanentFailSource src;
  AsyncEngine eng(GetParam(), 16, 2, fast_retry());
  std::uint8_t buf[64];
  std::vector<ReadRequest> batch;
  for (std::uint64_t tag = 0; tag < 4; ++tag)
    batch.push_back(ReadRequest{&src, 0, sizeof buf, buf, tag});
  eng.submit(batch);
  EXPECT_EQ(eng.quiesce(), 4u);
  EXPECT_EQ(eng.in_flight(), 0u);
  EXPECT_EQ(eng.quiesce(), 0u);  // idempotent
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncRetryTest,
                         ::testing::Values(Backend::kThreadPool,
                                           Backend::kSync),
                         [](const auto& info) {
                           return info.param == Backend::kThreadPool
                                      ? "ThreadPool"
                                      : "Sync";
                         });

// ---- Striped-set truncation --------------------------------------------

TEST(Striped, TruncatedMemberFailsLoudly) {
  TempDir dir;
  const auto data = pattern_bytes(64 << 10);
  {
    File f(dir.file("flat"), OpenMode::kWrite);
    f.append(data.data(), data.size());
  }
  stripe_file(dir.file("flat"), dir.file("set"), 2, 4096);
  StripedFile sf(dir.file("set"), 2, 4096);
  // Chop the second member after the set is open: the set's advertised size
  // still counts the missing bytes, exactly like a degraded array.
  {
    File m(StripedFile::member_path(dir.file("set"), 1), OpenMode::kReadWrite);
    m.truncate(m.size() / 2);
  }
  std::vector<std::uint8_t> buf(data.size());
  try {
    sf.pread_full(buf.data(), buf.size(), 0);
    FAIL() << "expected the truncated member to be reported";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
    EXPECT_EQ(e.sys_errno(), EIO);
  }
}

// ---- Device + fault spec -----------------------------------------------

TEST(Device, FaultSpecWiresInjectionIntoBothReadPaths) {
  TempDir dir;
  const auto data = pattern_bytes(256 << 10);
  const std::string path = write_pattern_file(dir, "v.bin", 256 << 10);

  DeviceConfig cfg;
  cfg.fault_spec = "seed=4,eintr=0.3,short=0.4";
  cfg.retry.backoff_initial_ms = 0.1;
  cfg.retry.backoff_max_ms = 1.0;
  Device dev(path, cfg);

  // Synchronous path: interrupted/transient faults are retried inline.
  std::vector<std::uint8_t> sync_buf(32 << 10);
  dev.read(sync_buf.data(), sync_buf.size(), 8192);
  EXPECT_EQ(std::memcmp(sync_buf.data(), data.data() + 8192, sync_buf.size()),
            0);

  // Async path: workers absorb the same faults; stats surface the recovery.
  std::vector<std::vector<std::uint8_t>> bufs(8,
                                              std::vector<std::uint8_t>(8192));
  std::vector<ReadRequest> batch;
  for (int i = 0; i < 8; ++i) {
    ReadRequest req;
    req.offset = static_cast<std::uint64_t>(i) * 8192;
    req.length = 8192;
    req.buffer = bufs[i].data();
    req.tag = static_cast<std::uint64_t>(i);
    batch.push_back(req);
  }
  dev.submit(std::move(batch));
  dev.drain();
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(std::memcmp(bufs[i].data(), data.data() + i * 8192, 8192), 0);
  const DeviceStats s = dev.stats();
  EXPECT_GT(s.retries + s.short_reads, 0u);
  EXPECT_EQ(s.failed_reads, 0u);
}

TEST(Device, EmptyFaultSpecIsPassThrough) {
  TempDir dir;
  const std::string path = write_pattern_file(dir, "v.bin", 4096);
  DeviceConfig cfg;
  cfg.fault_spec = "seed=123";  // a seed alone injects nothing
  Device dev(path, cfg);
  std::vector<std::uint8_t> buf(4096);
  dev.read(buf.data(), buf.size(), 0);
  EXPECT_EQ(dev.stats().retries, 0u);
}

}  // namespace
}  // namespace gstore::io

// ---- WAL replay under a torn tail --------------------------------------

namespace gstore::ingest {
namespace {

std::vector<graph::Edge> some_edges(unsigned n, unsigned salt) {
  std::vector<graph::Edge> v;
  v.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    v.push_back({static_cast<graph::vid_t>(i + salt),
                 static_cast<graph::vid_t>(i * 3 + salt + 1)});
  return v;
}

TEST(WalFault, ReplayThroughSourceMatchesPathReplay) {
  io::TempDir dir;
  const std::string path = dir.file("log.wal");
  {
    EdgeWal wal(path, /*generation=*/2);
    wal.append(some_edges(10, 0));
    wal.append(some_edges(7, 100));
  }
  const WalReplay by_path = EdgeWal::replay(path);
  io::File f(path, io::OpenMode::kRead);
  const WalReplay by_source = EdgeWal::replay(f, path);
  EXPECT_EQ(by_source.edges.size(), by_path.edges.size());
  EXPECT_EQ(by_source.frames, by_path.frames);
  EXPECT_EQ(by_source.generation, 2u);
  EXPECT_EQ(by_source.tail, WalTail::kClean);
}

TEST(WalFault, TornTailDropsOnlyTheLastFrame) {
  io::TempDir dir;
  const std::string path = dir.file("log.wal");
  {
    EdgeWal wal(path, 0);
    wal.append(some_edges(10, 0));   // frame 1: 16 + 80 bytes
    wal.append(some_edges(10, 50));  // frame 2
    wal.append(some_edges(10, 99));  // frame 3
  }
  io::File f(path, io::OpenMode::kRead);
  const WalReplay full = EdgeWal::replay(f, path);
  ASSERT_EQ(full.frames, 3u);
  ASSERT_EQ(full.edges.size(), 30u);
  ASSERT_EQ(full.tail, WalTail::kClean);

  // Tear into frame 3's payload: replay keeps frames 1-2 and reports the
  // torn tail. Sweep several tear depths, including one that leaves only a
  // partial frame header.
  for (const std::uint64_t torn : {1ull, 40ull, 80ull, 90ull}) {
    const io::FaultInjectingSource torn_src(
        f, io::FaultSpec::parse("torn-tail=" + std::to_string(torn)));
    const WalReplay r = EdgeWal::replay(torn_src, path);
    EXPECT_EQ(r.frames, 2u) << "torn=" << torn;
    EXPECT_EQ(r.edges.size(), 20u) << "torn=" << torn;
    EXPECT_EQ(r.tail, WalTail::kTruncated) << "torn=" << torn;
    EXPECT_TRUE(std::equal(r.edges.begin(), r.edges.end(),
                           full.edges.begin(),
                           [](const graph::Edge& a, const graph::Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }))
        << "torn=" << torn;
    EXPECT_GT(r.dropped_bytes, 0u);
  }
}

TEST(WalFault, TearingEverythingLeavesAnEmptyValidLog) {
  io::TempDir dir;
  const std::string path = dir.file("log.wal");
  {
    EdgeWal wal(path, 0);
    wal.append(some_edges(4, 0));
  }
  io::File f(path, io::OpenMode::kRead);
  // Tear every frame away but keep the 16-byte file header intact.
  const std::uint64_t frames_bytes = f.size() - sizeof(WalFileHeader);
  const io::FaultInjectingSource src(
      f,
      io::FaultSpec::parse("torn-tail=" + std::to_string(frames_bytes)));
  const WalReplay r = EdgeWal::replay(src, path);
  EXPECT_TRUE(r.exists);
  EXPECT_EQ(r.frames, 0u);
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.tail, WalTail::kClean);  // ends exactly on the header boundary
}

}  // namespace
}  // namespace gstore::ingest
