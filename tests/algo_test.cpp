// End-to-end validation of the four tile algorithms against in-memory
// reference implementations, swept across graph families, directedness,
// tile sizes, and engine configurations (parameterized property tests).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "algo/reference.h"
#include "algo/sssp.h"
#include "graph/generator.h"
#include "store/scr_engine.h"
#include "test_util.h"
#include "util/status.h"

namespace gstore::algo {
namespace {

using graph::EdgeList;
using graph::GraphKind;
using graph::vid_t;

struct Scenario {
  std::string name;
  EdgeList (*make)(std::uint64_t seed);
  unsigned tile_bits;
  std::uint64_t stream_kb;  // engine stream memory (KiB)
  store::CachePolicyKind policy;
};

EdgeList kron_und(std::uint64_t seed) {
  return graph::kronecker(9, 6, GraphKind::kUndirected, seed);
}
EdgeList kron_dir(std::uint64_t seed) {
  return graph::kronecker(9, 6, GraphKind::kDirected, seed);
}
EdgeList twitterish(std::uint64_t seed) {
  return graph::twitter_like(9, 6, GraphKind::kDirected, seed);
}
EdgeList uniform_und(std::uint64_t seed) {
  return graph::uniform_random(600, 2400, GraphKind::kUndirected, seed);
}
EdgeList grid_graph(std::uint64_t) { return graph::grid(20, 30); }
EdgeList path_graph(std::uint64_t) { return graph::path(300); }
EdgeList star_graph(std::uint64_t) { return graph::star(400); }
EdgeList cliques(std::uint64_t) { return graph::two_cliques(64); }

const Scenario kScenarios[] = {
    {"KronUndTiny", kron_und, 5, 16, store::CachePolicyKind::kProactive},
    {"KronUndBig", kron_und, 8, 64, store::CachePolicyKind::kProactive},
    {"KronUndLru", kron_und, 5, 16, store::CachePolicyKind::kLru},
    {"KronUndNoCache", kron_und, 5, 16, store::CachePolicyKind::kNone},
    {"KronDir", kron_dir, 5, 16, store::CachePolicyKind::kProactive},
    {"TwitterLikeDir", twitterish, 6, 32, store::CachePolicyKind::kProactive},
    {"UniformUnd", uniform_und, 5, 16, store::CachePolicyKind::kProactive},
    {"Grid2D", grid_graph, 4, 8, store::CachePolicyKind::kProactive},
    {"Path", path_graph, 4, 8, store::CachePolicyKind::kProactive},
    {"Star", star_graph, 5, 8, store::CachePolicyKind::kProactive},
    {"TwoCliques", cliques, 4, 8, store::CachePolicyKind::kProactive},
};

class AlgoScenarioTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    el_ = GetParam().make(1234);
    tile::ConvertOptions o;
    o.tile_bits = GetParam().tile_bits;
    o.group_side = 3;
    store_.emplace(gstore::testing::make_store(dir_, el_, o));
    cfg_.stream_memory_bytes = GetParam().stream_kb << 10;
    cfg_.segment_bytes = std::max<std::uint64_t>(cfg_.stream_memory_bytes / 8, 512);
    cfg_.policy = GetParam().policy;
    cfg_.rewind = GetParam().policy != store::CachePolicyKind::kNone;
  }

  vid_t pick_root() const {
    // Root with nonzero degree so BFS explores something.
    const auto deg = el_.degrees();
    for (vid_t v = 0; v < el_.vertex_count(); ++v)
      if (deg[v] > 0) return v;
    return 0;
  }

  EdgeList el_;
  io::TempDir dir_;
  std::optional<tile::TileStore> store_;
  store::EngineConfig cfg_;
};

TEST_P(AlgoScenarioTest, BfsMatchesReference) {
  const vid_t root = pick_root();
  TileBfs bfs(root);
  store::ScrEngine engine(*store_, cfg_);
  engine.run(bfs);
  const auto want = ref_bfs(el_, root);
  ASSERT_EQ(bfs.depth().size(), want.size());
  std::uint64_t reachable = 0;
  for (vid_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(bfs.depth()[v], want[v]) << "vertex " << v;
    if (want[v] >= 0) ++reachable;
  }
  EXPECT_EQ(bfs.visited_count(), reachable);
}

TEST_P(AlgoScenarioTest, PageRankMatchesReference) {
  PageRankOptions opt;
  opt.max_iterations = 5;
  TilePageRank pr(opt);
  store::ScrEngine engine(*store_, cfg_);
  engine.run(pr);
  const auto want = ref_pagerank(el_, 5);
  ASSERT_EQ(pr.ranks().size(), want.size());
  for (vid_t v = 0; v < want.size(); ++v)
    EXPECT_NEAR(pr.ranks()[v], want[v], 1e-4) << "vertex " << v;
}

TEST_P(AlgoScenarioTest, WccMatchesReference) {
  TileWcc wcc;
  store::ScrEngine engine(*store_, cfg_);
  engine.run(wcc);
  const auto want = ref_wcc(el_);
  ASSERT_EQ(wcc.labels().size(), want.size());
  for (vid_t v = 0; v < want.size(); ++v)
    EXPECT_EQ(wcc.labels()[v], want[v]) << "vertex " << v;
}

TEST_P(AlgoScenarioTest, SsspMatchesDijkstra) {
  const vid_t root = pick_root();
  TileSssp sssp(root);
  store::ScrEngine engine(*store_, cfg_);
  engine.run(sssp);
  const auto want = ref_sssp(el_, root);
  ASSERT_EQ(sssp.distances().size(), want.size());
  for (vid_t v = 0; v < want.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(sssp.distances()[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(sssp.distances()[v], want[v], 1e-3) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgoScenarioTest, ::testing::ValuesIn(kScenarios),
                         [](const auto& info) { return info.param.name; });

// ---- targeted behaviours beyond the sweep --------------------------------

TEST(TileBfs, DisconnectedComponentStaysUnvisited) {
  io::TempDir dir;
  auto el = graph::two_cliques(32);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  TileBfs bfs(0);
  store::ScrEngine engine(store);
  engine.run(bfs);
  for (vid_t v = 0; v < 16; ++v) EXPECT_GE(bfs.depth()[v], 0);
  for (vid_t v = 16; v < 32; ++v) EXPECT_EQ(bfs.depth()[v], TileBfs::kUnvisited);
  EXPECT_EQ(bfs.visited_count(), 16u);
}

TEST(TileBfs, PathDepthsAreLinear) {
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, graph::path(100), o);
  TileBfs bfs(0);
  store::ScrEngine engine(store);
  const auto stats = engine.run(bfs);
  for (vid_t v = 0; v < 100; ++v) EXPECT_EQ(bfs.depth()[v], static_cast<int>(v));
  EXPECT_EQ(stats.iterations, 100u);  // 99 expanding levels + terminal check
  // Selective fetch: a 100-iteration path BFS must NOT read the full graph
  // 100 times; frontier rows bound each iteration's I/O.
  EXPECT_GT(stats.tiles_skipped, 0u);
}

TEST(TileBfs, RootOutOfRangeThrows) {
  io::TempDir dir;
  auto store = gstore::testing::make_store(dir, graph::path(10));
  TileBfs bfs(10'000);
  store::ScrEngine engine(store);
  EXPECT_THROW(engine.run(bfs), Error);
}

TEST(TileBfs, DirectedFollowsEdgeDirection) {
  io::TempDir dir;
  // 0 → 1 → 2, plus 3 → 0: from root 0 only {0,1,2} are reachable.
  auto el = EdgeList::from_edges({{0, 1}, {1, 2}, {3, 0}}, GraphKind::kDirected);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  TileBfs bfs(0);
  store::ScrEngine engine(store);
  engine.run(bfs);
  EXPECT_EQ(bfs.depth()[0], 0);
  EXPECT_EQ(bfs.depth()[1], 1);
  EXPECT_EQ(bfs.depth()[2], 2);
  EXPECT_EQ(bfs.depth()[3], TileBfs::kUnvisited);
}

TEST(TileBfs, InEdgeStoreTraversesCorrectly) {
  io::TempDir dir;
  auto el = EdgeList::from_edges({{0, 1}, {1, 2}, {3, 0}}, GraphKind::kDirected);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  o.out_edges = false;  // store in-edges; BFS must still follow out direction
  auto store = gstore::testing::make_store(dir, el, o);
  TileBfs bfs(0);
  store::ScrEngine engine(store);
  engine.run(bfs);
  EXPECT_EQ(bfs.depth()[1], 1);
  EXPECT_EQ(bfs.depth()[2], 2);
  EXPECT_EQ(bfs.depth()[3], TileBfs::kUnvisited);
}

TEST(TilePageRank, RanksSumToApproxOne) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 8, GraphKind::kUndirected, 3);
  auto store = gstore::testing::make_store(dir, el);
  TilePageRank pr(PageRankOptions{0.85, 8, 0.0});
  store::ScrEngine engine(store);
  engine.run(pr);
  double sum = 0;
  for (float r : pr.ranks()) sum += r;
  // Rank mass leaks only via dangling (zero-degree) vertices.
  EXPECT_GT(sum, 0.5);
  EXPECT_LT(sum, 1.01);
}

TEST(TilePageRank, StarCenterDominates) {
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, graph::star(100), o);
  TilePageRank pr(PageRankOptions{0.85, 10, 0.0});
  store::ScrEngine engine(store);
  engine.run(pr);
  for (vid_t v = 1; v < 100; ++v) EXPECT_GT(pr.ranks()[0], pr.ranks()[v]);
}

TEST(TilePageRank, ToleranceStopsEarly) {
  io::TempDir dir;
  auto store = gstore::testing::make_store(dir, graph::cycle(64),
                                           [] {
                                             tile::ConvertOptions o;
                                             o.tile_bits = 4;
                                             return o;
                                           }());
  // On a cycle every vertex keeps rank 1/n: delta hits 0 after iteration 1.
  TilePageRank pr(PageRankOptions{0.85, 50, 1e-7});
  store::ScrEngine engine(store);
  engine.run(pr);
  EXPECT_LT(pr.iterations_run(), 5u);
  for (float r : pr.ranks()) EXPECT_NEAR(r, 1.0f / 64, 1e-5);
}

TEST(TileWcc, CountsComponents) {
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, graph::two_cliques(40), o);
  TileWcc wcc;
  store::ScrEngine engine(store);
  engine.run(wcc);
  EXPECT_EQ(wcc.component_count(), 2u);
  for (vid_t v = 0; v < 20; ++v) EXPECT_EQ(wcc.labels()[v], 0u);
  for (vid_t v = 20; v < 40; ++v) EXPECT_EQ(wcc.labels()[v], 20u);
}

TEST(TileWcc, DirectedEdgesGiveWeakComponents) {
  io::TempDir dir;
  // 0→1, 2→1: weakly one component {0,1,2}, vertex 3 isolated.
  auto el = EdgeList({{0, 1}, {2, 1}}, 4, GraphKind::kDirected);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  TileWcc wcc;
  store::ScrEngine engine(store);
  engine.run(wcc);
  EXPECT_EQ(wcc.labels()[0], 0u);
  EXPECT_EQ(wcc.labels()[1], 0u);
  EXPECT_EQ(wcc.labels()[2], 0u);
  EXPECT_EQ(wcc.labels()[3], 3u);
  EXPECT_EQ(wcc.component_count(), 2u);
}

TEST(TileSssp, WeightsAreDeterministicAndSymmetric) {
  EXPECT_EQ(edge_weight(3, 9), edge_weight(9, 3));
  EXPECT_EQ(edge_weight(3, 9), edge_weight(3, 9));
  EXPECT_GE(edge_weight(1, 2), 1.0f);
  EXPECT_LE(edge_weight(1, 2), 16.0f);
}

TEST(TileSssp, ShorterMultiHopBeatsHeavyDirect) {
  // SSSP must find multi-hop routes cheaper than heavy direct edges; verify
  // against Dijkstra on a dense graph where such routes exist.
  io::TempDir dir;
  auto el = graph::complete(24);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  TileSssp sssp(0);
  store::ScrEngine engine(store);
  engine.run(sssp);
  const auto want = ref_sssp(el, 0);
  for (vid_t v = 0; v < 24; ++v)
    EXPECT_FLOAT_EQ(sssp.distances()[v], want[v]);
}

}  // namespace
}  // namespace gstore::algo
// Appended: all four on-disk format variants must produce identical results.
namespace gstore::algo {
namespace {

class FormatVariantTest : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(FormatVariantTest, BfsAndPagerankInvariantToFormat) {
  const auto [snb, symmetry] = GetParam();
  io::TempDir dir;
  auto el = graph::kronecker(9, 5, graph::GraphKind::kUndirected, 99);
  el.normalize();
  tile::ConvertOptions o;
  o.tile_bits = 6;
  o.snb = snb;
  o.symmetry = symmetry;
  auto store = gstore::testing::make_store(dir, el, o);

  TileBfs bfs(0);
  store::ScrEngine(store).run(bfs);
  const auto want_depth = ref_bfs(el, 0);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(bfs.depth()[v], want_depth[v]) << "snb=" << snb << " sym=" << symmetry;

  TilePageRank pr(PageRankOptions{0.85, 4, 0.0});
  store::ScrEngine(store).run(pr);
  const auto want_rank = ref_pagerank(el, 4);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_NEAR(pr.ranks()[v], want_rank[v], 1e-4);

  TileWcc wcc;
  store::ScrEngine(store).run(wcc);
  const auto want_cc = ref_wcc(el);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(wcc.labels()[v], want_cc[v]);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FormatVariantTest,
    ::testing::Values(std::make_pair(true, true), std::make_pair(true, false),
                      std::make_pair(false, true), std::make_pair(false, false)),
    [](const auto& info) {
      return std::string(info.param.first ? "Snb" : "Fat") +
             (info.param.second ? "Sym" : "Full");
    });

}  // namespace
}  // namespace gstore::algo
// Appended: extension algorithms — asynchronous BFS and k-core.
#include "algo/bfs_async.h"
#include "algo/kcore.h"

namespace gstore::algo {
namespace {

TEST(TileBfsAsync, MatchesSynchronousDepths) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 6, graph::GraphKind::kUndirected, 5);
  tile::ConvertOptions o;
  o.tile_bits = 6;
  auto store = gstore::testing::make_store(dir, el, o);
  TileBfsAsync async_bfs(0);
  store::ScrEngine(store).run(async_bfs);
  const auto want = ref_bfs(el, 0);
  const auto got = async_bfs.depths();
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
}

TEST(TileBfsAsync, FewerPassesThanLevelsOnPath) {
  // On a path, synchronous BFS needs one iteration per level; asynchronous
  // relaxation rides the in-tile processing order and collapses levels that
  // point "forward" in layout order.
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, graph::path(200), o);
  TileBfsAsync bfs(0);
  store::ScrEngine(store).run(bfs);
  const auto d = bfs.depths();
  for (graph::vid_t v = 0; v < 200; ++v) EXPECT_EQ(d[v], static_cast<int>(v));
  EXPECT_LT(bfs.passes(), 100u);  // sync BFS needs 200 iterations
}

TEST(TileBfsAsync, DirectedFollowsDirection) {
  io::TempDir dir;
  auto el = graph::EdgeList::from_edges({{0, 1}, {1, 2}, {3, 0}},
                                        graph::GraphKind::kDirected);
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  TileBfsAsync bfs(0);
  store::ScrEngine(store).run(bfs);
  const auto d = bfs.depths();
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], -1);
}

class KCoreTest : public ::testing::TestWithParam<graph::degree_t> {};

TEST_P(KCoreTest, MatchesPeelingReference) {
  io::TempDir dir;
  auto el = graph::kronecker(10, 6, graph::GraphKind::kUndirected, 77);
  el.normalize();
  tile::ConvertOptions o;
  o.tile_bits = 6;
  auto store = gstore::testing::make_store(dir, el, o);
  TileKCore kcore(GetParam());
  store::ScrEngine(store).run(kcore);
  const auto want = ref_kcore(el, GetParam());
  ASSERT_EQ(kcore.alive().size(), want.size());
  for (graph::vid_t v = 0; v < want.size(); ++v)
    ASSERT_EQ(kcore.alive()[v], want[v]) << "vertex " << v << " k=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Ks, KCoreTest, ::testing::Values(1, 2, 3, 5, 8, 16),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(TileKCore, CliqueSurvivesStarDoesNot) {
  // Two cliques of 10: every vertex has degree 9 → 9-core keeps everything,
  // 10-core empties the graph.
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, graph::two_cliques(20), o);
  {
    TileKCore k9(9);
    store::ScrEngine(store).run(k9);
    EXPECT_EQ(k9.core_size(), 20u);
  }
  {
    TileKCore k10(10);
    store::ScrEngine(store).run(k10);
    EXPECT_EQ(k10.core_size(), 0u);
  }
}

TEST(TileKCore, CascadingPeel) {
  // A path hung off a triangle: 2-core strips the whole path, keeps the
  // triangle — requires the iterative cascade, not a single degree filter.
  auto el = graph::EdgeList::from_edges(
      {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}},
      graph::GraphKind::kUndirected);
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  TileKCore kcore(2);
  store::ScrEngine(store).run(kcore);
  EXPECT_EQ(kcore.core_size(), 3u);
  for (graph::vid_t v = 0; v < 3; ++v) EXPECT_TRUE(kcore.alive()[v]);
  for (graph::vid_t v = 3; v < 6; ++v) EXPECT_FALSE(kcore.alive()[v]);
}

TEST(TileKCore, RejectsDirectedStore) {
  io::TempDir dir;
  auto el = graph::EdgeList::from_edges({{0, 1}}, graph::GraphKind::kDirected);
  auto store = gstore::testing::make_store(dir, el);
  TileKCore kcore(2);
  store::ScrEngine engine(store);
  EXPECT_THROW(engine.run(kcore), Error);
}

TEST(TileKCore, SkipsDeadTiles) {
  // Star graph: 1-core keeps everything; 2-core kills all leaves in one
  // iteration, after which selective fetch must skip the dead ranges.
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, graph::star(16 * 8), o);
  TileKCore kcore(2);
  const auto stats = store::ScrEngine(store).run(kcore);
  EXPECT_EQ(kcore.core_size(), 0u);
  EXPECT_GT(stats.tiles_skipped, 0u);
}

}  // namespace
}  // namespace gstore::algo
// Appended: SCC over dual tile stores.
#include "algo/scc.h"

namespace gstore::algo {
namespace {

// Builds out- and in-edge stores for one directed edge list.
std::pair<tile::TileStore, tile::TileStore> dual_stores(const io::TempDir& dir,
                                                        const EdgeList& el,
                                                        unsigned tile_bits) {
  tile::ConvertOptions out_o;
  out_o.tile_bits = tile_bits;
  tile::ConvertOptions in_o = out_o;
  in_o.out_edges = false;
  tile::convert_to_tiles(el, dir.file("out"), out_o);
  tile::convert_to_tiles(el, dir.file("in"), in_o);
  return {tile::TileStore::open(dir.file("out")),
          tile::TileStore::open(dir.file("in"))};
}

TEST(RefScc, HandlesCycleAndTail) {
  // 0→1→2→0 is one SCC; 3→4 are singletons.
  auto el = EdgeList::from_edges({{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}},
                                 GraphKind::kDirected);
  const auto scc = ref_scc(el);
  EXPECT_EQ(scc[0], 0u);
  EXPECT_EQ(scc[1], 0u);
  EXPECT_EQ(scc[2], 0u);
  EXPECT_EQ(scc[3], 3u);
  EXPECT_EQ(scc[4], 4u);
}

TEST(TileScc, TwoCyclesAndBridge) {
  // Two 3-cycles joined by a one-way bridge: two SCCs of size 3.
  auto el = EdgeList::from_edges(
      {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}},
      GraphKind::kDirected);
  io::TempDir dir;
  auto [out_s, in_s] = dual_stores(dir, el, 4);
  const auto got = tile_scc(out_s, in_s);
  const auto want = ref_scc(el);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    EXPECT_EQ(got[v], want[v]) << "vertex " << v;
}

TEST(TileScc, MatchesTarjanOnRandomDigraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto el = graph::uniform_random(120, 400, GraphKind::kDirected, seed);
    el.normalize();
    io::TempDir dir;
    auto [out_s, in_s] = dual_stores(dir, el, 4);
    store::EngineConfig small;
    small.stream_memory_bytes = 32 << 10;
    small.segment_bytes = 4 << 10;
    const auto got = tile_scc(out_s, in_s, SccOptions{small});
    const auto want = ref_scc(el);
    for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
      ASSERT_EQ(got[v], want[v]) << "seed " << seed << " vertex " << v;
  }
}

TEST(TileScc, MatchesTarjanOnKron) {
  auto el = graph::kronecker(8, 6, GraphKind::kDirected, 7);
  el.normalize();
  io::TempDir dir;
  auto [out_s, in_s] = dual_stores(dir, el, 5);
  const auto got = tile_scc(out_s, in_s);
  const auto want = ref_scc(el);
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v)
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
}

TEST(TileScc, RejectsMismatchedStores) {
  auto el = EdgeList::from_edges({{0, 1}}, GraphKind::kDirected);
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  tile::convert_to_tiles(el, dir.file("out"), o);
  auto out1 = tile::TileStore::open(dir.file("out"));
  auto out2 = tile::TileStore::open(dir.file("out"));
  EXPECT_THROW(tile_scc(out1, out2), Error);  // both are out-edge stores
}

TEST(TileReach, MaskRestrictsTraversal) {
  // 0→1→2; masking out vertex 1 must stop the wave.
  auto el = EdgeList::from_edges({{0, 1}, {1, 2}}, GraphKind::kDirected);
  io::TempDir dir;
  tile::ConvertOptions o;
  o.tile_bits = 4;
  auto store = gstore::testing::make_store(dir, el, o);
  std::vector<std::uint8_t> mask(el.vertex_count(), 1);
  mask[1] = 0;
  TileReach reach(0, &mask);
  store::ScrEngine(store).run(reach);
  EXPECT_TRUE(reach.reached()[0]);
  EXPECT_FALSE(reach.reached()[1]);
  EXPECT_FALSE(reach.reached()[2]);
}

}  // namespace
}  // namespace gstore::algo
