#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "graph/csr.h"
#include "graph/degree.h"
#include "graph/edge_list.h"
#include "graph/generator.h"
#include "graph/graph_io.h"
#include "io/file.h"
#include "util/status.h"

namespace gstore::graph {
namespace {

// ---- EdgeList ------------------------------------------------------------

TEST(EdgeList, FromEdgesInfersVertexCount) {
  auto el = EdgeList::from_edges({{0, 5}, {3, 2}}, GraphKind::kDirected);
  EXPECT_EQ(el.vertex_count(), 6u);
  EXPECT_EQ(el.edge_count(), 2u);
}

TEST(EdgeList, RejectsOutOfRangeEdges) {
  EXPECT_THROW(EdgeList({{0, 9}}, 5, GraphKind::kDirected), Error);
}

TEST(EdgeList, NormalizeDropsLoopsAndDups) {
  auto el = EdgeList::from_edges({{1, 2}, {2, 1}, {3, 3}, {1, 2}, {4, 5}},
                                 GraphKind::kUndirected);
  const std::uint64_t removed = el.normalize();
  EXPECT_EQ(removed, 3u);  // loop + reverse-dup + exact-dup
  EXPECT_EQ(el.edge_count(), 2u);
  for (const Edge& e : el.edges()) EXPECT_LT(e.src, e.dst);
}

TEST(EdgeList, NormalizeDirectedKeepsBothOrientations) {
  auto el = EdgeList::from_edges({{1, 2}, {2, 1}, {3, 3}}, GraphKind::kDirected);
  el.normalize();
  EXPECT_EQ(el.edge_count(), 2u);  // only the loop dropped
}

TEST(EdgeList, DegreesUndirectedCountBothEnds) {
  auto el = EdgeList::from_edges({{0, 1}, {0, 2}}, GraphKind::kUndirected);
  const auto deg = el.degrees();
  EXPECT_EQ(deg[0], 2u);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 1u);
}

TEST(EdgeList, DegreesDirected) {
  auto el = EdgeList::from_edges({{0, 1}, {0, 2}, {1, 0}}, GraphKind::kDirected);
  const auto out = el.degrees();
  const auto in = el.in_degrees();
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(in[2], 1u);
}

TEST(EdgeList, StorageBytesDoublesForUndirected) {
  auto und = EdgeList::from_edges({{0, 1}, {1, 2}}, GraphKind::kUndirected);
  auto dir = EdgeList::from_edges({{0, 1}, {1, 2}}, GraphKind::kDirected);
  EXPECT_EQ(und.storage_bytes(), 2 * dir.storage_bytes());
  EXPECT_EQ(dir.storage_bytes(), 2 * sizeof(Edge));
}

// ---- CSR -------------------------------------------------------------

TEST(Csr, UndirectedStoresBothDirections) {
  auto el = EdgeList::from_edges({{0, 1}, {1, 2}}, GraphKind::kUndirected);
  const Csr csr = Csr::build(el);
  EXPECT_EQ(csr.vertex_count(), 3u);
  EXPECT_EQ(csr.adjacency_size(), 4u);
  EXPECT_EQ(csr.degree(1), 2u);
  const auto n1 = csr.neighbors(1);
  std::multiset<vid_t> got(n1.begin(), n1.end());
  EXPECT_EQ(got, (std::multiset<vid_t>{0, 2}));
}

TEST(Csr, DirectedOutAndIn) {
  auto el = EdgeList::from_edges({{0, 1}, {2, 1}}, GraphKind::kDirected);
  const Csr out = Csr::build(el, true);
  const Csr in = Csr::build(el, false);
  EXPECT_EQ(out.degree(0), 1u);
  EXPECT_EQ(out.degree(1), 0u);
  EXPECT_EQ(in.degree(1), 2u);
  const auto n = in.neighbors(1);
  std::multiset<vid_t> got(n.begin(), n.end());
  EXPECT_EQ(got, (std::multiset<vid_t>{0, 2}));
}

TEST(Csr, SelfLoopStoredOnce) {
  auto el = EdgeList::from_edges({{1, 1}}, GraphKind::kUndirected);
  const Csr csr = Csr::build(el);
  EXPECT_EQ(csr.degree(1), 1u);
}

TEST(Csr, StorageBytesFormula) {
  auto el = EdgeList::from_edges({{0, 1}, {1, 2}}, GraphKind::kUndirected);
  const Csr csr = Csr::build(el);
  EXPECT_EQ(csr.storage_bytes(), 4 * sizeof(vid_t) + 4 * sizeof(std::uint64_t));
}

// ---- CompressedDegrees -------------------------------------------------

TEST(CompressedDegrees, InlineValues) {
  std::vector<degree_t> deg{0, 1, 100, 32767};
  auto cd = CompressedDegrees::build(deg);
  EXPECT_TRUE(cd.compressed());
  EXPECT_EQ(cd.overflow_count(), 0u);
  for (vid_t v = 0; v < deg.size(); ++v) EXPECT_EQ(cd[v], deg[v]);
  EXPECT_EQ(cd.storage_bytes(), deg.size() * 2);
}

TEST(CompressedDegrees, OverflowValues) {
  std::vector<degree_t> deg{5, 32768, 7, 1000000, 779958};
  auto cd = CompressedDegrees::build(deg);
  EXPECT_TRUE(cd.compressed());
  EXPECT_EQ(cd.overflow_count(), 3u);
  for (vid_t v = 0; v < deg.size(); ++v) EXPECT_EQ(cd[v], deg[v]);
  EXPECT_EQ(cd.storage_bytes(), deg.size() * 2 + 3 * sizeof(degree_t));
}

TEST(CompressedDegrees, FallsBackWhenTooManyBigDegrees) {
  std::vector<degree_t> deg(CompressedDegrees::kMaxOverflow + 1, 40000);
  auto cd = CompressedDegrees::build(deg);
  EXPECT_FALSE(cd.compressed());
  for (vid_t v = 0; v < deg.size(); ++v) EXPECT_EQ(cd[v], 40000u);
}

TEST(CompressedDegrees, HalvesStorageForPowerLawGraph) {
  // The paper: degree array drops from 4GB to 2GB for Kron-30. Emulate in
  // miniature: nearly all degrees small, a handful huge.
  std::vector<degree_t> deg(100000, 12);
  for (int i = 0; i < 100; ++i) deg[i * 997] = 50000 + i;
  auto cd = CompressedDegrees::build(deg);
  EXPECT_TRUE(cd.compressed());
  EXPECT_LT(cd.storage_bytes(), deg.size() * sizeof(degree_t) * 55 / 100);
}

// ---- generators ---------------------------------------------------------

TEST(Generator, KroneckerSizes) {
  auto el = kronecker(10, 8, GraphKind::kUndirected);
  EXPECT_EQ(el.vertex_count(), 1u << 10);
  EXPECT_EQ(el.edge_count(), 8u << 10);
}

TEST(Generator, KroneckerDeterministic) {
  auto a = kronecker(8, 4, GraphKind::kUndirected, 3);
  auto b = kronecker(8, 4, GraphKind::kUndirected, 3);
  EXPECT_EQ(a.edges(), b.edges());
  auto c = kronecker(8, 4, GraphKind::kUndirected, 4);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generator, RmatEndpointsInRange) {
  auto el = rmat(9, 4, GraphKind::kDirected, RmatParams{});
  for (const Edge& e : el.edges()) {
    EXPECT_LT(e.src, el.vertex_count());
    EXPECT_LT(e.dst, el.vertex_count());
  }
}

TEST(Generator, SkewedRmatIsSkewed) {
  // twitter_like must concentrate degree mass far more than uniform random.
  auto skew = twitter_like(12, 8, GraphKind::kDirected);
  auto unif = uniform_random(1u << 12, 8u << 12, GraphKind::kDirected);
  auto max_deg = [](const EdgeList& el) {
    const auto d = el.degrees();
    return *std::max_element(d.begin(), d.end());
  };
  EXPECT_GT(max_deg(skew), 2 * max_deg(unif));
}

TEST(Generator, UniformRandomSizes) {
  auto el = uniform_random(1000, 5000, GraphKind::kUndirected, 2);
  EXPECT_EQ(el.vertex_count(), 1000u);
  EXPECT_EQ(el.edge_count(), 5000u);
}

TEST(Generator, PathStructure) {
  auto el = path(5);
  EXPECT_EQ(el.edge_count(), 4u);
  const auto deg = el.degrees();
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[2], 2u);
  EXPECT_EQ(deg[4], 1u);
}

TEST(Generator, CycleStructure) {
  auto el = cycle(6);
  EXPECT_EQ(el.edge_count(), 6u);
  for (degree_t d : el.degrees()) EXPECT_EQ(d, 2u);
}

TEST(Generator, StarStructure) {
  auto el = star(10);
  EXPECT_EQ(el.edge_count(), 9u);
  EXPECT_EQ(el.degrees()[0], 9u);
}

TEST(Generator, CompleteGraphEdgeCount) {
  EXPECT_EQ(complete(6).edge_count(), 15u);
  EXPECT_EQ(complete(6, GraphKind::kDirected).edge_count(), 30u);
}

TEST(Generator, GridStructure) {
  auto el = grid(3, 4);
  EXPECT_EQ(el.vertex_count(), 12u);
  EXPECT_EQ(el.edge_count(), 3u * 3 + 2u * 4);  // horizontal + vertical
}

TEST(Generator, TwoCliquesDisconnected) {
  auto el = two_cliques(8);
  for (const Edge& e : el.edges())
    EXPECT_EQ(e.src < 4, e.dst < 4) << "edge crosses the cliques";
}

// ---- graph_io -------------------------------------------------------

TEST(GraphIo, RoundTrip) {
  io::TempDir dir;
  auto el = kronecker(8, 4, GraphKind::kDirected, 5);
  write_edge_file(dir.file("g.el"), el);
  auto back = read_edge_file(dir.file("g.el"));
  EXPECT_EQ(back.vertex_count(), el.vertex_count());
  EXPECT_EQ(back.kind(), GraphKind::kDirected);
  EXPECT_EQ(back.edges(), el.edges());
}

TEST(GraphIo, HeaderOnlyRead) {
  io::TempDir dir;
  auto el = path(100);
  write_edge_file(dir.file("p.el"), el);
  const auto h = read_edge_file_header(dir.file("p.el"));
  EXPECT_EQ(h.vertex_count, 100u);
  EXPECT_EQ(h.edge_count, 99u);
  EXPECT_EQ(h.kind, 0u);
}

TEST(GraphIo, BadMagicRejected) {
  io::TempDir dir;
  io::File f(dir.file("bad.el"), io::OpenMode::kWrite);
  std::vector<std::uint8_t> junk(128, 0xab);
  f.append(junk.data(), junk.size());
  f.close();
  EXPECT_THROW(read_edge_file(dir.file("bad.el")), FormatError);
}

TEST(GraphIo, TruncatedFileRejected) {
  io::TempDir dir;
  auto el = path(50);
  write_edge_file(dir.file("t.el"), el);
  {
    io::File f(dir.file("t.el"), io::OpenMode::kReadWrite);
    f.truncate(f.size() - 4);
  }
  EXPECT_THROW(read_edge_file(dir.file("t.el")), FormatError);
}

TEST(GraphIo, EmptyGraphRoundTrips) {
  io::TempDir dir;
  EdgeList el({}, 3, GraphKind::kUndirected);
  write_edge_file(dir.file("e.el"), el);
  auto back = read_edge_file(dir.file("e.el"));
  EXPECT_EQ(back.vertex_count(), 3u);
  EXPECT_EQ(back.edge_count(), 0u);
}

}  // namespace
}  // namespace gstore::graph
