#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/aligned_buffer.h"
#include "util/bitops.h"
#include "util/dcheck.h"
#include "util/histogram.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gstore {
namespace {

// ---- bitops -----------------------------------------------------------

TEST(Bitops, BitsFor) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 0u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 2u);
  EXPECT_EQ(bits_for(5), 3u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
  EXPECT_EQ(bits_for(std::uint64_t{1} << 63), 63u);
}

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1025));
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 3), 4u);
}

TEST(Bitops, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bitops, AlignUpDown) {
  EXPECT_EQ(align_up(0, 4096), 0u);
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_EQ(align_down(4095, 4096), 0u);
}

// ---- status ------------------------------------------------------------

TEST(Status, CheckThrowsWithLocation) {
  try {
    GS_CHECK_MSG(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Status, CheckPassesSilently) { GS_CHECK(2 + 2 == 4); }

TEST(Status, IoErrorCapturesErrno) {
  IoError e("open /nope", ENOENT);
  EXPECT_EQ(e.sys_errno(), ENOENT);
  EXPECT_NE(std::string(e.what()).find("open /nope"), std::string::npos);
}

TEST(Status, ExceptionHierarchy) {
  EXPECT_THROW(throw FormatError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw IoError("x", EIO), Error);
}

// ---- AlignedBuffer -----------------------------------------------------

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer b(1000);
  ASSERT_NE(b.data(), nullptr);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kIoAlignment, 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(128);
  auto* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer b;
  EXPECT_TRUE(b.empty());
  AlignedBuffer z(0);
  EXPECT_TRUE(z.empty());
}

// ---- rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // rough uniformity
}

// ---- histogram ---------------------------------------------------------

TEST(Histogram, BucketsAndZeros) {
  LogHistogram h(10);
  h.add(0, 4);
  h.add(1);
  h.add(9);
  h.add(10);
  h.add(99);
  h.add(100);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.zeros(), 4u);
  EXPECT_EQ(h.max_value(), 100u);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].count, 4u);  // [0,1)
  EXPECT_EQ(buckets[1].count, 2u);  // [1,10)
  EXPECT_EQ(buckets[2].count, 2u);  // [10,100)
  EXPECT_EQ(buckets[3].count, 1u);  // [100,1000)
}

TEST(Histogram, FractionBelow) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_DOUBLE_EQ(h.fraction_below(0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(50), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(1000), 1.0);
  EXPECT_EQ(h.count_below(10), 10u);
}

TEST(Histogram, EmptyIsSafe) {
  LogHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_below(5), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(Histogram, RejectsBadBase) { EXPECT_THROW(LogHistogram h(1), Error); }

// ---- options -----------------------------------------------------------

TEST(Options, ParsesAllForms) {
  Options o;
  o.add("scale", "20", "graph scale").add("name", "x", "graph name");
  o.add_flag("verbose", "noisy");
  const char* argv[] = {"prog", "--scale=22", "--name", "kron", "--verbose"};
  o.parse(5, argv);
  EXPECT_EQ(o.get_int("scale"), 22);
  EXPECT_EQ(o.get("name"), "kron");
  EXPECT_TRUE(o.get_bool("verbose"));
}

TEST(Options, DefaultsApply) {
  Options o;
  o.add("scale", "20", "s");
  o.add_flag("verbose", "v");
  const char* argv[] = {"prog"};
  o.parse(1, argv);
  EXPECT_EQ(o.get_int("scale"), 20);
  EXPECT_FALSE(o.get_bool("verbose"));
}

TEST(Options, UnknownOptionThrows) {
  Options o;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(o.parse(2, argv), InvalidArgument);
}

TEST(Options, MissingValueThrows) {
  Options o;
  o.add("scale", "20", "s");
  const char* argv[] = {"prog", "--scale"};
  EXPECT_THROW(o.parse(2, argv), InvalidArgument);
}

TEST(Options, PositionalAndHelp) {
  Options o;
  o.add("k", "1", "k");
  const char* argv[] = {"prog", "input.bin", "--help", "--k=3"};
  o.parse(4, argv);
  EXPECT_TRUE(o.help_requested());
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "input.bin");
  EXPECT_NE(o.usage("prog").find("--k"), std::string::npos);
}

TEST(Options, BadNumberThrows) {
  Options o;
  o.add("k", "1", "k");
  const char* argv[] = {"prog", "--k=12abc"};
  o.parse(2, argv);
  EXPECT_THROW(o.get_int("k"), InvalidArgument);
}

// ---- timer -------------------------------------------------------------

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.micros(), 0u);
}

TEST(Timer, AccumTimerSumsIntervals) {
  AccumTimer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_GE(t.seconds(), 0.0);
  t.clear();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

// ---- thread pool -------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; }, 7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 50) throw Error("halt");
                                 }),
               Error);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

// Regression: several workers throw at once. The first exception captured
// must be rethrown exactly once and the rest discarded without racing on the
// shared exception slot (this is the case TSan flagged before parallel_for
// used call_once + a release/acquire failure flag).
TEST(ThreadPool, ParallelForManyConcurrentThrowers) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(
          400,
          [&](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            throw Error("worker " + std::to_string(i));
          },
          /*grain=*/1);
      FAIL() << "parallel_for swallowed the exceptions";
    } catch (const Error& e) {
      // Whichever worker won, the message must be one we actually threw.
      EXPECT_NE(std::string(e.what()).find("worker "), std::string::npos);
    }
    EXPECT_GT(ran.load(), 0);
    // The pool must still be usable after an aborted parallel_for.
    std::atomic<bool> alive{false};
    pool.submit([&] { alive.store(true); }).get();
    EXPECT_TRUE(alive.load());
  }
}

TEST(Dcheck, EnabledMatchesBuildMode) {
#if GSTORE_DCHECK_ENABLED
  EXPECT_TRUE(true);  // sanitizer/debug presets: checks are live (see below)
#else
  EXPECT_TRUE(true);  // release: checks compile away (see below)
#endif
}

#if GSTORE_DCHECK_ENABLED
TEST(DcheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH_IF_SUPPORTED(GSTORE_DCHECK(1 + 1 == 3), "GSTORE_DCHECK");
}

TEST(DcheckDeathTest, ComparisonFormPrintsOperands) {
  EXPECT_DEATH_IF_SUPPORTED(GSTORE_DCHECK_EQ(2 + 2, 5), "GSTORE_DCHECK");
}

TEST(Dcheck, PassingChecksAreSilent) {
  GSTORE_DCHECK(true);
  GSTORE_DCHECK_MSG(1 < 2, "never printed");
  GSTORE_DCHECK_EQ(4, 2 + 2);
  GSTORE_DCHECK_LT(1, 2);
}
#else
TEST(Dcheck, DisabledChecksAreTrueNoOps) {
  // Release builds: the condition must not be evaluated at all, so a check
  // whose predicate would abort (or has side effects) is inert.
  int evaluations = 0;
  auto would_fail = [&] {
    ++evaluations;
    return false;
  };
  GSTORE_DCHECK(would_fail());
  GSTORE_DCHECK_MSG(would_fail(), "never printed");
  EXPECT_EQ(evaluations, 0);
  GSTORE_DCHECK_EQ(1, 2);  // operands unevaluated, nothing aborts
}
#endif

}  // namespace
}  // namespace gstore
