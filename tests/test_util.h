// Shared helpers for the gstore test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "io/file.h"
#include "tile/convert.h"
#include "tile/tile_file.h"

namespace gstore::testing {

// Converts an edge list into a tile store inside `dir` and opens it.
inline tile::TileStore make_store(const io::TempDir& dir,
                                  const graph::EdgeList& el,
                                  tile::ConvertOptions opts = {},
                                  io::DeviceConfig dev = {},
                                  const std::string& name = "g") {
  const std::string base = dir.file(name);
  tile::convert_to_tiles(el, base, opts);
  return tile::TileStore::open(base, dev);
}

// Decodes every edge of every tile back to global coordinates.
inline std::vector<graph::Edge> decode_all_edges(tile::TileStore& store) {
  std::vector<graph::Edge> out;
  std::vector<std::uint8_t> buf;
  for (std::uint64_t k = 0; k < store.grid().tile_count(); ++k) {
    const std::uint64_t bytes = store.tile_bytes(k);
    if (bytes == 0) continue;
    buf.resize(bytes);
    store.read_range(k, k + 1, buf.data());
    const tile::TileView v = store.view(k, buf.data());
    tile::visit_edges(
        v, [&](graph::vid_t a, graph::vid_t b) { out.push_back({a, b}); });
  }
  return out;
}

}  // namespace gstore::testing
