// MUST NOT COMPILE under clang -Wthread-safety -Werror=thread-safety-analysis.
//
// Reads a GSTORE_GUARDED_BY member without holding its mutex. The
// try_compile logic in tests/CMakeLists.txt asserts this translation unit is
// rejected — if it ever compiles, the annotation plumbing in util/sync.h has
// silently stopped working and lock discipline is no longer enforced.
#include "util/sync.h"

struct Counter {
  gstore::Mutex mu;
  int value GSTORE_GUARDED_BY(mu) = 0;

  int read_unlocked() { return value; }  // BAD: no lock held
};

int main() {
  Counter c;
  return c.read_unlocked();
}
