// Positive control for the compile-fail check: identical shape to
// guarded_by_violation.cpp but correctly locked, so it MUST compile under
// clang -Wthread-safety -Werror=thread-safety-analysis. If this one fails,
// the harness flags (not the violation) broke.
#include "util/sync.h"

struct Counter {
  gstore::Mutex mu;
  int value GSTORE_GUARDED_BY(mu) = 0;

  int read_locked() GSTORE_EXCLUDES(mu) {
    gstore::MutexLock lock(mu);
    return value;
  }
};

int main() {
  Counter c;
  return c.read_locked();
}
