#include "serve/job.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/pagerank.h"
#include "algo/sssp.h"
#include "util/crc32.h"
#include "util/status.h"
#include "util/sync.h"

namespace gstore::serve {

namespace {

// Adjacency responses are capped: the digest always covers the full list,
// but a hub vertex must not turn one response line into hundreds of
// megabytes.
constexpr std::size_t kMaxNeighborsReturned = 1024;

// Per-vertex adjacency query as a (single-iteration) tile algorithm, so it
// rides the same shared-fetch scheduler as the analytics jobs. Selective
// fetch makes it cheap: only the target vertex's tile row (and, on
// symmetric stores, tile column) is touched. Neighbors follow the stored
// orientation: out-neighbors on an out-edge store, in-neighbors on an
// in-edge store, all neighbors on undirected stores.
class NeighborhoodQuery final : public store::TileAlgorithm {
 public:
  explicit NeighborhoodQuery(graph::vid_t v) : v_(v) {}

  std::string name() const override { return "neighbors"; }

  void init(const tile::TileStore& store) override {
    const tile::TileStoreMeta& meta = store.meta();
    // Upper-triangle symmetric stores keep one tuple per undirected edge, so
    // the reverse direction must be collected too. Full-matrix undirected
    // stores carry both orientations — collecting the reverse would double
    // every neighbor.
    collect_reverse_ = meta.symmetric();
    tile_bits_ = meta.tile_bits;
    target_tile_ = v_ >> tile_bits_;
  }

  void begin_iteration(std::uint32_t) override {}

  void process_tile(const tile::TileView& view) override {
    std::vector<graph::vid_t> found;
    tile::visit_edges(view, [&](graph::vid_t s, graph::vid_t d) {
      if (s == v_) found.push_back(d);
      else if (collect_reverse_ && d == v_) found.push_back(s);
    });
    if (found.empty()) return;
    MutexLock lock(mu_);
    // GL-SAFE(GL1): tiles are processed concurrently and each appends its
    // (tiny, pre-collected) matches; the append must be under the lock and
    // the scan above already ran outside it.
    neighbors_.insert(neighbors_.end(), found.begin(), found.end());
  }

  bool end_iteration(std::uint32_t) override {
    // Single pass. Canonicalize here — begin/end run single-threaded.
    MutexLock lock(mu_);
    std::sort(neighbors_.begin(), neighbors_.end());
    neighbors_.erase(std::unique(neighbors_.begin(), neighbors_.end()),
                     neighbors_.end());
    return false;
  }

  bool tile_needed(std::uint32_t i, std::uint32_t j) const override {
    if (i == target_tile_) return true;
    return collect_reverse_ && j == target_tile_;
  }

  bool tile_useful_next(std::uint32_t, std::uint32_t) const override {
    return false;  // one iteration; cache nothing on this job's behalf
  }

  // Safe once the run finished (no concurrent process_tile anymore).
  const std::vector<graph::vid_t>& neighbors() const noexcept {
    return neighbors_;
  }

 private:
  const graph::vid_t v_;
  bool collect_reverse_ = true;
  unsigned tile_bits_ = 16;
  std::uint32_t target_tile_ = 0;
  mutable Mutex mu_{"NeighborhoodQuery::mu_"};
  std::vector<graph::vid_t> neighbors_ GSTORE_GUARDED_BY(mu_);
};

template <typename T>
std::uint32_t vector_digest(const std::vector<T>& v) {
  return crc32(v.data(), v.size() * sizeof(T));
}

graph::vid_t parse_vertex(const Json& j, const char* field,
                          graph::vid_t vertex_count) {
  if (vertex_count == 0)
    throw InvalidArgument("store has no vertices");
  try {
    return static_cast<graph::vid_t>(
        j.at(field).as_u64_in(0, std::uint64_t{vertex_count} - 1));
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(field) + ": " + e.what());
  }
}

}  // namespace

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kBfs: return "bfs";
    case JobKind::kSssp: return "sssp";
    case JobKind::kPageRank: return "pagerank";
    case JobKind::kWcc: return "wcc";
    case JobKind::kNeighbors: return "neighbors";
  }
  return "?";
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobSpec JobSpec::from_json(const Json& j, graph::vid_t vertex_count) {
  JobSpec spec;
  const std::string& algo = j.at("algo").as_string();
  if (algo == "bfs") {
    spec.kind = JobKind::kBfs;
    spec.vertex = parse_vertex(j, "root", vertex_count);
  } else if (algo == "sssp") {
    spec.kind = JobKind::kSssp;
    spec.vertex = parse_vertex(j, "root", vertex_count);
  } else if (algo == "pagerank") {
    spec.kind = JobKind::kPageRank;
    if (const Json* d = j.find("damping")) {
      spec.damping = d->as_f64_in(0.0, 1.0);
      if (spec.damping == 0.0 || spec.damping == 1.0)
        throw InvalidArgument("damping must be in (0, 1)");
    }
    if (const Json* it = j.find("iterations"))
      spec.max_iterations = it->as_u32_in(1, 100000);
    if (const Json* t = j.find("tolerance"))
      spec.tolerance = t->as_f64_in(0.0, std::numeric_limits<double>::max());
  } else if (algo == "wcc") {
    spec.kind = JobKind::kWcc;
  } else if (algo == "neighbors") {
    spec.kind = JobKind::kNeighbors;
    spec.vertex = parse_vertex(j, "vertex", vertex_count);
  } else {
    throw InvalidArgument("unknown algorithm \"" + algo +
                          "\" (bfs|sssp|pagerank|wcc|neighbors)");
  }
  return spec;
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  j.set("algo", Json(to_string(kind)));
  switch (kind) {
    case JobKind::kBfs:
    case JobKind::kSssp:
      j.set("root", Json(static_cast<std::uint64_t>(vertex)));
      break;
    case JobKind::kNeighbors:
      j.set("vertex", Json(static_cast<std::uint64_t>(vertex)));
      break;
    case JobKind::kPageRank:
      j.set("damping", Json(damping));
      j.set("iterations", Json(static_cast<std::uint64_t>(max_iterations)));
      j.set("tolerance", Json(tolerance));
      break;
    case JobKind::kWcc:
      break;
  }
  return j;
}

Json JobStats::to_json() const {
  Json j = Json::object();
  j.set("iterations", Json(static_cast<std::uint64_t>(iterations)));
  j.set("edges_processed", Json(edges_processed));
  j.set("overlay_edges", Json(overlay_edges));
  j.set("tiles_dispatched", Json(tiles_dispatched));
  j.set("seconds", Json(seconds));
  return j;
}

std::unique_ptr<store::TileAlgorithm> make_algorithm(const JobSpec& spec) {
  switch (spec.kind) {
    case JobKind::kBfs:
      return std::make_unique<algo::TileBfs>(spec.vertex);
    case JobKind::kSssp:
      return std::make_unique<algo::TileSssp>(spec.vertex);
    case JobKind::kPageRank: {
      algo::PageRankOptions opts;
      opts.damping = spec.damping;
      opts.max_iterations = spec.max_iterations;
      opts.tolerance = spec.tolerance;
      return std::make_unique<algo::TilePageRank>(opts);
    }
    case JobKind::kWcc:
      return std::make_unique<algo::TileWcc>();
    case JobKind::kNeighbors:
      return std::make_unique<NeighborhoodQuery>(spec.vertex);
  }
  throw InvalidArgument("unreachable job kind");
}

Json make_result(const JobSpec& spec, const store::TileAlgorithm& algo) {
  Json r = Json::object();
  r.set("algo", Json(to_string(spec.kind)));
  switch (spec.kind) {
    case JobKind::kBfs: {
      const auto& bfs = dynamic_cast<const algo::TileBfs&>(algo);
      r.set("visited", Json(bfs.visited_count()));
      r.set("max_depth", Json(static_cast<std::int64_t>(bfs.max_depth())));
      r.set("digest", Json(vector_digest(bfs.depth())));
      break;
    }
    case JobKind::kSssp: {
      const auto& sssp = dynamic_cast<const algo::TileSssp&>(algo);
      std::uint64_t reached = 0;
      for (const float d : sssp.distances())
        if (d != algo::TileSssp::kInf) ++reached;
      r.set("reached", Json(reached));
      r.set("digest", Json(vector_digest(sssp.distances())));
      break;
    }
    case JobKind::kPageRank: {
      const auto& pr = dynamic_cast<const algo::TilePageRank&>(algo);
      r.set("iterations", Json(static_cast<std::uint64_t>(pr.iterations_run())));
      r.set("last_delta", Json(pr.last_delta()));
      r.set("digest", Json(vector_digest(pr.ranks())));
      break;
    }
    case JobKind::kWcc: {
      const auto& wcc = dynamic_cast<const algo::TileWcc&>(algo);
      r.set("components", Json(wcc.component_count()));
      r.set("digest", Json(vector_digest(wcc.labels())));
      break;
    }
    case JobKind::kNeighbors: {
      const auto& q = dynamic_cast<const NeighborhoodQuery&>(algo);
      const auto& nbrs = q.neighbors();
      r.set("vertex", Json(static_cast<std::uint64_t>(spec.vertex)));
      r.set("degree", Json(static_cast<std::uint64_t>(nbrs.size())));
      r.set("digest", Json(vector_digest(nbrs)));
      Json arr = Json::array();
      const std::size_t n = std::min(nbrs.size(), kMaxNeighborsReturned);
      for (std::size_t k = 0; k < n; ++k)
        arr.push(Json(static_cast<std::uint64_t>(nbrs[k])));
      r.set("truncated", Json(nbrs.size() > kMaxNeighborsReturned));
      r.set("neighbors", std::move(arr));
      break;
    }
  }
  return r;
}

}  // namespace gstore::serve
