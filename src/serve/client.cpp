#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/status.h"

namespace gstore::serve {

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw IoError("socket", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw InvalidArgument("bad server address \"" + host + "\"");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw IoError("connect to " + host + ":" + std::to_string(port), err);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Json Client::request(const Json& req) {
  std::string line = req.dump();
  line += '\n';
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t sent = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw IoError("send to gstore_serve", errno);
    }
    data += sent;
    left -= static_cast<std::size_t>(sent);
  }

  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return Json::parse(response);
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("recv from gstore_serve", errno);
    }
    if (n == 0) throw IoError("gstore_serve closed the connection", 0);
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Json Client::call(const Json& req) {
  Json response = request(req);
  if (const Json* ok = response.find("ok"); ok && ok->as_bool())
    return response;
  if (const Json* err = response.find("error"))
    throw Error("gstore_serve: " + err->as_string());
  throw Error("gstore_serve: malformed response " + response.dump());
}

}  // namespace gstore::serve
