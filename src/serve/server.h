// gstore_serve's two long-lived layers.
//
// JobManager — job lifecycle + the scheduling loop. Jobs are submitted as
// JobSpecs, assigned monotonic ids, queued, and executed by ONE scheduler
// thread that forms gangs: it pins a snapshot, seeds a SharedScheduler with
// every queued job, and keeps admitting newly queued jobs at round
// boundaries while the ingest state still matches the gang's snapshot
// (jobs that arrive after a write form the next gang, against a fresh
// snapshot). Lifecycle: queued → running → done | failed | cancelled;
// status/result/cancel/wait are queryable at any time. Backpressure: past
// max_queued the submit is rejected (the client retries later) instead of
// growing an unbounded queue.
//
// Statistics discipline (satellite): per-run counters are job-scoped
// (JobStats, returned per job) — concurrent jobs never interleave their
// counters. The process-wide ServerStats aggregate is monotonic and only
// ever *added to* from completed jobs/gangs, which is what the daemon's
// `stats` endpoint reports.
//
// Server — the NDJSON-over-TCP front end: an acceptor thread plus one
// handler thread per connection, every thread joined on stop() (no
// detached threads — enforced repo-wide by check_concurrency.py R7).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "graph/types.h"
#include "ingest/ingestor.h"
#include "serve/job.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/snapshot.h"
#include "util/sync.h"

namespace gstore::serve {

// Monotonic process-wide aggregate for the `stats` endpoint. Guarded by
// JobManager::mu_; snapshotted into JSON on request.
struct ServerStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t gangs = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t tiles_fetched = 0;
  std::uint64_t tiles_from_cache = 0;
  std::uint64_t tile_dispatches = 0;
  std::uint64_t edges_processed = 0;
  std::uint64_t edges_ingested = 0;
  std::uint64_t compactions = 0;

  Json to_json() const;
};

struct ManagerOptions {
  SchedulerConfig scheduler;
  // Gang width: how many jobs share one fetch stream (≤ 64).
  std::size_t max_gang = 32;
  // Backpressure threshold: submits are rejected while this many jobs are
  // queued (running jobs don't count — they already have their snapshot).
  std::size_t max_queued = 1024;
  // Device config for snapshot stores (fault injection flows through here).
  io::DeviceConfig snapshot_device;
};

class JobManager {
 public:
  // The ingestor must outlive the manager. Call start() before submitting.
  explicit JobManager(ingest::EdgeIngestor& ingestor, ManagerOptions options = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  void start();
  // drain=true: finish every queued and running job first. drain=false:
  // cancel everything still queued or running, then return. Idempotent;
  // joins the scheduler thread either way.
  void stop(bool drain) GSTORE_EXCLUDES(mu_);

  // Returns the new job id. Throws InvalidArgument on a bad spec and Error
  // ("server busy") when the queue is at max_queued.
  std::uint64_t submit(const Json& job) GSTORE_EXCLUDES(mu_);

  Json status(std::uint64_t id) const GSTORE_EXCLUDES(mu_);
  // Terminal-state payload: result object for done jobs, error for
  // failed/cancelled; throws InvalidArgument for unknown ids, Error when
  // the job is still queued/running.
  Json result(std::uint64_t id) const GSTORE_EXCLUDES(mu_);
  // True if the job was still pending/running (its cancellation takes
  // effect at the next round boundary); false if already terminal.
  bool cancel(std::uint64_t id) GSTORE_EXCLUDES(mu_);
  // Blocks until the job reaches a terminal state or the timeout expires.
  bool wait(std::uint64_t id, std::chrono::milliseconds timeout) const
      GSTORE_EXCLUDES(mu_);

  Json stats() const GSTORE_EXCLUDES(mu_);
  Json info() const GSTORE_EXCLUDES(mu_);

  // Write path, proxied so clients reach it over the wire.
  std::uint64_t ingest(std::span<const graph::Edge> edges) GSTORE_EXCLUDES(mu_);
  Json compact() GSTORE_EXCLUDES(mu_);

  SnapshotManager& snapshots() noexcept { return snapshots_; }

 private:
  struct JobRecord {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
    JobStats stats;
    Json result_json;
    std::uint32_t generation = 0;
    std::uint64_t delta_edges = 0;
    std::unique_ptr<store::TileAlgorithm> algo;
    std::atomic<bool> cancel_flag{false};
  };

  void scheduler_main();
  void run_gang(std::vector<JobRecord*> batch);
  Json status_locked(const JobRecord& rec) const GSTORE_REQUIRES(mu_);
  const JobRecord& find_locked(std::uint64_t id) const GSTORE_REQUIRES(mu_);

  ingest::EdgeIngestor& ingestor_;
  const ManagerOptions options_;
  SnapshotManager snapshots_;
  const graph::vid_t vertex_count_;  // fixed at conversion time

  mutable Mutex mu_{"JobManager::mu_"};
  // Scheduler wake-ups (new work / stop); completion broadcasts for wait().
  mutable CondVar work_cv_;
  mutable CondVar done_cv_;
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> jobs_ GSTORE_GUARDED_BY(mu_);
  std::deque<JobRecord*> queue_ GSTORE_GUARDED_BY(mu_);
  std::uint64_t next_id_ GSTORE_GUARDED_BY(mu_) = 1;
  bool stop_ GSTORE_GUARDED_BY(mu_) = false;
  bool drain_ GSTORE_GUARDED_BY(mu_) = true;
  bool started_ GSTORE_GUARDED_BY(mu_) = false;
  ServerStats aggregate_ GSTORE_GUARDED_BY(mu_);

  std::thread scheduler_thread_;
};

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is Server::port()
};

class Server {
 public:
  Server(JobManager& manager, ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the acceptor. Throws IoError on bind failure.
  void start();
  int port() const noexcept { return port_; }

  // Wakes every blocked socket call and joins the acceptor and all
  // connection handlers. Idempotent. Does NOT stop the JobManager — the
  // daemon decides drain-vs-cancel semantics.
  void stop();

  // Blocks until some client issued a `shutdown` op (or stop() /
  // request_stop() was called from elsewhere). Returns the requested
  // drain flag.
  bool wait_shutdown() GSTORE_EXCLUDES(state_mu_);

  // Async-signal-safe shutdown request: a lock-free store, no mutex, no
  // condvar notify — callable from a signal handler. wait_shutdown()
  // polls the flag on a timed wait; the caller still runs stop() from
  // normal thread context afterwards. (Calling stop() from the handler
  // instead self-deadlocks: the signal can land on the thread blocked in
  // wait_shutdown() while it holds state_mu_ — the runtime lockdep
  // flags exactly that.)
  void request_stop() noexcept { async_stop_.store(true, std::memory_order_release); }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Conn* conn);
  Json dispatch(const Json& request);

  JobManager& manager_;
  const ServeOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;

  Mutex conn_mu_{"Server::conn_mu_"};
  std::vector<std::unique_ptr<Conn>> conns_ GSTORE_GUARDED_BY(conn_mu_);

  Mutex state_mu_{"Server::state_mu_"};
  CondVar shutdown_cv_;
  std::atomic<bool> async_stop_{false};  // set by request_stop() only
  bool shutdown_requested_ GSTORE_GUARDED_BY(state_mu_) = false;
  bool shutdown_drain_ GSTORE_GUARDED_BY(state_mu_) = true;
  bool stopped_ GSTORE_GUARDED_BY(state_mu_) = false;
};

}  // namespace gstore::serve
