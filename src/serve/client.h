// Minimal blocking NDJSON client for gstore_serve.
//
// One connection, one outstanding request at a time: request() writes a
// single JSON line and blocks until the response line arrives. That is all
// the daemon's protocol needs (responses are ordered per connection), and
// it keeps gstore_cli, the serve tests, and bench_serve on one code path.
// Not thread-safe — open one Client per thread.
#pragma once

#include <string>

#include "serve/protocol.h"

namespace gstore::serve {

class Client {
 public:
  // Connects immediately; throws IoError on failure.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  // Sends one request line and returns the parsed response. Throws IoError
  // if the connection drops and FormatError if the response is not JSON.
  Json request(const Json& req);

  // Convenience wrapper: request() + throw Error(response.error) unless the
  // response carries {"ok": true}.
  Json call(const Json& req);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed response line
};

}  // namespace gstore::serve
