// Multi-tenant SCR scheduler: one tile-fetch stream, many jobs.
//
// ScrEngine runs one algorithm per iteration loop; this scheduler
// generalizes its slide–cache–rewind loop to a *gang* of up to 64 jobs
// co-scheduled over one StoreSnapshot. Per round (one iteration of every
// active job):
//
//   REWIND — every tile in the shared cache pool is dispatched to each
//            active job whose selective-fetch oracle wants it, before any
//            I/O is issued.
//   SLIDE  — the fetch list is the UNION of the active jobs' needed tiles;
//            each tile's bytes are read once through the async engine
//            (double-buffered, coalesced, with the same whole-tile retry
//            budget as ScrEngine) and the decoded payload is dispatched to
//            every subscribed job's kernel before the segment is reused.
//            This is the shared-I/O dedup: 32 BFS jobs over the same graph
//            cost ~1× the bytes, not 32×.
//   CACHE  — processed tiles are offered to the SHARED cache pool under a
//            fairness policy: the pool budget is split into per-job quotas
//            (budget / active jobs) and a tile is admitted only while some
//            subscriber is under quota, each subscriber charged
//            bytes / #subscribers. One full-graph PageRank therefore cannot
//            evict-starve small BFS jobs, and tiles wanted by many jobs are
//            proportionally cheaper to keep. Tiles whose next-round
//            subscriber set is empty are evicted at the round boundary.
//
// Jobs join at round boundaries (the admit callback), finish independently
// (their end_iteration() returns false), and are cancelled at round
// boundaries. Per-job statistics are job-scoped (JobStats); the gang-level
// I/O counters live in GangStats. Zero-copy is preserved: cached tiles pin
// segment slices, and bytes_copied_to_pool stays 0.
//
// Threading: run() is called from ONE control thread (the JobManager's
// scheduler thread); kernels fan out over OpenMP inside a round exactly
// like ScrEngine. The snapshot (store + frozen overlay) is immutable for
// the gang's lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/job.h"
#include "serve/snapshot.h"
#include "store/algorithm.h"

namespace gstore::serve {

struct SchedulerConfig {
  std::uint64_t stream_memory_bytes = 64ull << 20;
  std::uint64_t segment_bytes = 8ull << 20;
  bool rewind = true;
  bool selective_fetch = true;
  bool overlap_io = true;
  std::uint32_t max_iterations = 100000;
  int read_retry_budget = 2;
};

// Gang-level shared-fetch counters (the daemon's dedup observability).
struct GangStats {
  std::uint32_t rounds = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t tiles_fetched = 0;     // unique tile payload fetches
  std::uint64_t tiles_from_cache = 0;  // rewind dispatches served from pool
  std::uint64_t tiles_skipped = 0;
  std::uint64_t tile_dispatches = 0;   // job×tile kernel deliveries
  std::uint64_t io_batches = 0;
  std::uint64_t tile_resubmits = 0;
  std::uint64_t bytes_copied_to_pool = 0;  // must stay 0 (zero-copy)
  std::uint64_t segment_refreshes = 0;
  std::uint64_t retries = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t failed_reads = 0;
  double backoff_seconds = 0;
  double io_wait_seconds = 0;
  double compute_seconds = 0;
  double elapsed_seconds = 0;
};

// One job as the scheduler sees it. The algorithm is owned by the caller
// and must outlive the gang; `cancelled` (optional) is polled at round
// boundaries; `id` is opaque and only echoed through the done callback.
struct GangJob {
  std::uint64_t id = 0;
  store::TileAlgorithm* algo = nullptr;
  std::function<bool()> cancelled;
};

class SharedScheduler {
 public:
  // At most this many co-scheduled jobs (subscriber sets are 64-bit masks).
  static constexpr std::size_t kMaxGang = 64;

  // Offers free gang capacity to the caller at each round boundary; the
  // returned jobs (at most `free_slots`) join the gang against the SAME
  // snapshot. May be null.
  using AdmitFn = std::function<std::vector<GangJob>(std::size_t free_slots)>;
  // Reports a job leaving the gang: state is kDone, kFailed (error holds
  // why) or kCancelled. Called from the control thread.
  using DoneFn = std::function<void(const GangJob& job, JobState state,
                                    const JobStats& stats,
                                    const std::string& error)>;

  SharedScheduler(StoreSnapshot& snapshot, SchedulerConfig config);
  ~SharedScheduler();

  SharedScheduler(const SharedScheduler&) = delete;
  SharedScheduler& operator=(const SharedScheduler&) = delete;

  // Runs every job (initial + admitted) to completion or cancellation and
  // returns the gang-level counters. A gang-level I/O failure past the
  // retry budget fails every job still active (reported through `done`)
  // and returns — the daemon outlives its jobs' storage faults.
  GangStats run(std::vector<GangJob> initial, const AdmitFn& admit,
                const DoneFn& done);

 private:
  struct Runner;
  StoreSnapshot& snapshot_;
  SchedulerConfig config_;
};

}  // namespace gstore::serve
