// Generation-pinned store snapshots for serving jobs.
//
// A job must see one consistent graph for its whole run even while the
// ingest write path keeps accepting edges and compacting underneath it. A
// StoreSnapshot freezes both halves of the online store:
//   * its own TileStore opened on the snapshot generation's file base —
//     own fds, so a later compaction unlinking those files cannot hurt it
//     (POSIX keeps open fds valid past unlink);
//   * a frozen copy of the delta buffer taken atomically with the
//     generation number (EdgeIngestor::snapshot), attached as the store's
//     overlay.
//
// The SnapshotManager layers explicit generation ref-counting on top: every
// live StoreSnapshot pins its generation, and compaction through
// compact() defers the old generation's file unlink (step 5 of the
// compaction protocol) until the last pin drops, instead of unlinking
// eagerly. That turns "jobs survive compaction by accident of POSIX fd
// semantics" into an explicit lifetime contract — and means a *new* job can
// still open a retired-but-pinned generation's files if its snapshot is
// shared, while unpinned retired generations are reclaimed promptly.
//
// Snapshot identity is (generation, delta_edges): the delta is append-only
// between compactions, so two acquires that observe the same pair saw
// byte-identical data and can share one snapshot (and therefore one tile
// fetch stream). acquire() caches the latest snapshot by that key.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "ingest/ingestor.h"
#include "tile/tile_file.h"
#include "util/sync.h"

namespace gstore::serve {

class SnapshotManager;

// Immutable for its whole lifetime; shared by every job in a gang. The
// TileStore is thread-compatible for concurrent reads and the overlay is a
// frozen copy nobody mutates, so no locking is needed to use one.
class StoreSnapshot {
 public:
  std::uint32_t generation() const noexcept { return generation_; }
  std::uint64_t delta_edges() const noexcept { return delta_edges_; }
  tile::TileStore& store() noexcept { return *store_; }
  const tile::TileStore& store() const noexcept { return *store_; }

 private:
  friend class SnapshotManager;
  StoreSnapshot() = default;

  std::uint32_t generation_ = 0;
  std::uint64_t delta_edges_ = 0;
  std::shared_ptr<const ingest::DeltaBuffer> delta_;  // null if empty
  std::unique_ptr<tile::TileStore> store_;
};

using SnapshotRef = std::shared_ptr<StoreSnapshot>;

class SnapshotManager {
 public:
  // The ingestor (and the manager itself) must outlive every SnapshotRef
  // handed out: snapshot deleters call back into the manager to unpin.
  explicit SnapshotManager(ingest::EdgeIngestor& ingestor,
                           io::DeviceConfig device = {});

  // Pins the live generation and returns a snapshot of it. Consecutive
  // acquires between writes share one StoreSnapshot (same fds, same frozen
  // overlay) — the property gang scheduling relies on.
  SnapshotRef acquire() GSTORE_EXCLUDES(mu_);

  // Compacts through the ingestor but keeps the old generation's files on
  // disk while any snapshot still pins them; the unlink happens when the
  // last pin drops. Unpinned old generations are removed immediately.
  ingest::CompactStats compact(ingest::CompactOptions opts = {})
      GSTORE_EXCLUDES(mu_);

  // Observability (tests assert on these).
  std::size_t pinned_generations() const GSTORE_EXCLUDES(mu_);
  std::size_t retired_pending_unlink() const GSTORE_EXCLUDES(mu_);

 private:
  void release(std::uint32_t generation) noexcept GSTORE_EXCLUDES(mu_);

  ingest::EdgeIngestor& ingestor_;
  const io::DeviceConfig device_;
  mutable Mutex mu_{"SnapshotManager::mu_"};
  // generation → number of live StoreSnapshots on it.
  std::map<std::uint32_t, std::uint64_t> pins_ GSTORE_GUARDED_BY(mu_);
  // Generations compaction has superseded whose files still exist because
  // they were pinned at retire time.
  std::map<std::uint32_t, bool> retired_ GSTORE_GUARDED_BY(mu_);
  // Cache of the newest snapshot, keyed by (generation, delta_edges).
  std::weak_ptr<StoreSnapshot> cached_ GSTORE_GUARDED_BY(mu_);
};

}  // namespace gstore::serve
