#include "serve/scheduler.h"

#include <algorithm>
#include <array>
#include <bit>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/cache_pool.h"
#include "store/chunking.h"
#include "store/memory_budget.h"
#include "store/segment.h"
#include "tile/overlay.h"
#include "util/dcheck.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace gstore::serve {

namespace {

using store::CachePool;
using store::Chunk;
using store::Segment;
using store::TileSlot;

// Subscriber set: bit k = gang slot k wants this tile. Bounded by
// SharedScheduler::kMaxGang == 64.
using Mask = std::uint64_t;

template <typename Fn>
void for_bits(Mask m, Fn&& fn) {
  while (m != 0) {
    fn(static_cast<std::size_t>(std::countr_zero(m)));
    m &= m - 1;
  }
}

// Tags encode which segment a read belongs to so completions can be
// attributed while both segments have I/O in flight (same scheme as
// ScrEngine).
constexpr std::uint64_t make_tag(int segment, std::uint64_t serial) {
  GSTORE_DCHECK(segment == 0 || segment == 1);
  GSTORE_DCHECK_LT(serial, 1ull << 56);
  return (static_cast<std::uint64_t>(segment) << 56) | serial;
}
constexpr int tag_segment(std::uint64_t tag) {
  return static_cast<int>(tag >> 56);
}

}  // namespace

struct SharedScheduler::Runner {
  Runner(StoreSnapshot& snapshot, const SchedulerConfig& config,
         const AdmitFn& admit, const DoneFn& done)
      : store(snapshot.store()),
        grid(store.grid()),
        config(config),
        admit(admit),
        done(done),
        budget(store::MemoryBudget::compute(config.stream_memory_bytes,
                                            config.segment_bytes)),
        pool(budget.pool_bytes),
        overlay(store.overlay()) {
    const std::uint64_t cap =
        std::max<std::uint64_t>(budget.segment_bytes, store.max_tile_bytes());
    segments[0] = Segment(cap);
    segments[1] = Segment(cap);
    // The snapshot's overlay is a frozen copy — its tile list is stable for
    // the whole gang.
    if (overlay != nullptr) overlay_tiles = overlay->nonempty_tiles();
    slots.resize(kMaxGang);
  }

  // ---- gang membership ---------------------------------------------------

  struct Slot {
    GangJob job;
    JobStats stats;
    Timer timer;
    std::uint32_t iter = 0;
    bool in_use = false;
  };

  std::size_t active_count() const noexcept {
    return static_cast<std::size_t>(std::popcount(occupied));
  }

  void add_job(GangJob job) {
    GSTORE_DCHECK_LT(active_count(), kMaxGang);
    const auto free_bit = static_cast<std::size_t>(std::countr_one(occupied));
    Slot& s = slots[free_bit];
    s = Slot{};
    s.job = std::move(job);
    s.job.algo->init(store);
    s.in_use = true;
    occupied |= Mask{1} << free_bit;
  }

  void finish_slot(std::size_t k, JobState state, const std::string& error) {
    Slot& s = slots[k];
    s.stats.seconds = s.timer.seconds();
    occupied &= ~(Mask{1} << k);
    s.in_use = false;
    if (done) done(s.job, state, s.stats, error);
  }

  // ---- per-tile oracles over the gang ------------------------------------

  Mask needed_mask(std::uint64_t layout_idx) const {
    if (!config.selective_fetch) return occupied;
    const tile::TileCoord c = grid.coord_at(layout_idx);
    Mask m = 0;
    for_bits(occupied, [&](std::size_t k) {
      if (slots[k].job.algo->tile_needed(c.i, c.j)) m |= Mask{1} << k;
    });
    return m;
  }

  Mask useful_next_mask(std::uint64_t layout_idx) const {
    const tile::TileCoord c = grid.coord_at(layout_idx);
    Mask m = 0;
    for_bits(occupied, [&](std::size_t k) {
      if (slots[k].job.algo->tile_useful_next(c.i, c.j)) m |= Mask{1} << k;
    });
    return m;
  }

  std::uint64_t overlay_count(std::uint64_t layout_idx) const {
    return overlay == nullptr ? 0 : overlay->tile_edges(layout_idx).size();
  }

  // Delivers one tile's payload to every subscribed job, splicing the
  // frozen overlay in as a second view (same contract as ScrEngine).
  void dispatch(std::uint64_t layout_idx, const std::uint8_t* data,
                Mask mask) {
    const tile::TileView v = store.view(layout_idx, data);
    std::span<const tile::SnbEdge> extra;
    if (overlay != nullptr) extra = overlay->tile_edges(layout_idx);
    // splice_view resets the representation to raw in-memory SNB tuples —
    // overlays exist only for SNB stores, whatever codec the base tile used.
    const tile::TileView ov =
        extra.empty() ? v : tile::splice_view(v, extra);
    for_bits(mask, [&](std::size_t k) {
      store::TileAlgorithm& algo = *slots[k].job.algo;
      algo.process_tile(v);
      if (!extra.empty()) algo.process_tile(ov);
    });
  }

  // An exception cannot unwind through an OpenMP region (the runtime would
  // terminate the daemon), and since v3 the decode inside dispatch can throw
  // FormatError on a corrupt payload — as can a job's kernel. Workers capture
  // the first exception here; the scheduler thread rethrows after the region
  // joins, and run()'s gang-level catch downs the jobs while the daemon
  // survives.
  std::exception_ptr scan_error;

  void dispatch_captured(std::uint64_t layout_idx, const std::uint8_t* data,
                         Mask mask) noexcept {
    try {
      dispatch(layout_idx, data, mask);
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical(gstore_serve_scan_error)
#endif
      if (scan_error == nullptr) scan_error = std::current_exception();
    }
  }

  void rethrow_scan_error() {
    if (scan_error == nullptr) return;
    std::exception_ptr e = std::exchange(scan_error, nullptr);
    std::rethrow_exception(e);
  }

  // Sequentially folds one dispatched batch into per-job and gang counters
  // (kernel fan-out is parallel; bookkeeping is not).
  void account_dispatches(const std::vector<std::uint64_t>& indices,
                          const std::vector<Mask>& masks) {
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::uint64_t base = store.tile_edge_count(indices[k]);
      const std::uint64_t extra = overlay_count(indices[k]);
      for_bits(masks[k], [&](std::size_t j) {
        Slot& s = slots[j];
        s.stats.edges_processed += base + extra;
        s.stats.overlay_edges += extra;
        ++s.stats.tiles_dispatched;
      });
      gang.tile_dispatches +=
          static_cast<std::uint64_t>(std::popcount(masks[k]));
    }
  }

  // ---- I/O (double-buffered slide, shared with every subscriber) ---------

  std::size_t fill_and_submit(int s, const std::vector<std::uint64_t>& fetch,
                              const std::vector<Mask>& fetch_masks,
                              std::size_t& pos) {
    Segment& seg = segments[s];
    seg_masks[s].clear();
    if (pos >= fetch.size()) {
      seg.clear();
      return 0;
    }
    seg.begin_fill();
    seg.ensure_capacity(store.tile_bytes(fetch[pos]));
    while (pos < fetch.size() &&
           seg.try_add(fetch[pos], store.tile_bytes(fetch[pos]))) {
      seg_masks[s].push_back(fetch_masks[pos]);
      ++pos;
    }

    // Coalesce layout-consecutive runs into single requests — contiguous in
    // file and buffer alike (segment packing invariant).
    std::vector<io::ReadRequest> batch;
    const auto& sl = seg.slots();
    std::size_t run_begin = 0;
    auto flush_run = [&](std::size_t run_end) {
      const TileSlot& first = sl[run_begin];
      const TileSlot& last = sl[run_end - 1];
      io::ReadRequest req;
      req.offset = store.tile_offset(first.layout_idx);
      req.length =
          static_cast<std::size_t>(last.offset + last.bytes - first.offset);
      req.buffer = seg.slot_data(first);
      req.tag = make_tag(s, next_serial++);
      batch.push_back(req);
      run_begin = run_end;
    };
    for (std::size_t k = 1; k < sl.size(); ++k) {
      GSTORE_DCHECK_EQ(sl[k].offset, sl[k - 1].offset + sl[k - 1].bytes);
      if (sl[k].layout_idx != sl[k - 1].layout_idx + 1) flush_run(k);
    }
    if (!sl.empty()) flush_run(sl.size());

    gang.tiles_fetched += sl.size();
    if (batch.empty()) return 0;
    ++gang.io_batches;
    if (config.overlap_io) {
      const std::size_t n_requests = batch.size();
      for (const auto& req : batch)
        inflight.emplace(req.tag, InFlightRead{req, 0});
      store.device().submit(std::move(batch));
      return n_requests;
    }
    Timer t;
    for (const auto& req : batch)
      store.device().read(req.buffer, req.length, req.offset);
    gang.io_wait_seconds += t.seconds();
    return 0;
  }

  void wait_segment(int s) {
    Timer t;
    while (pending[s] > 0) {
      completions_scratch.clear();
      store.device().poll(1, 64, completions_scratch);
      for (const io::Completion& c : completions_scratch)
        handle_completion(c);
    }
    gang.io_wait_seconds += t.seconds();
    if (!read_failures.empty()) fail_round();
  }

  void handle_completion(const io::Completion& c) {
    const int seg = tag_segment(c.tag);
    GSTORE_DCHECK(seg == 0 || seg == 1);
    GSTORE_DCHECK_GT(pending[seg], 0);
    --pending[seg];
    const auto it = inflight.find(c.tag);
    GSTORE_DCHECK(it != inflight.end());
    if (it == inflight.end()) return;
    InFlightRead& r = it->second;
    if (c.ok && c.bytes == r.req.length) {
      inflight.erase(it);
      return;
    }
    if (r.attempts < config.read_retry_budget) {
      ++r.attempts;
      ++gang.tile_resubmits;
      std::vector<io::ReadRequest> one{r.req};
      store.device().submit(std::move(one));
      ++pending[seg];
      return;
    }
    const std::string why =
        !c.ok ? (c.message.empty() ? "read failed" : c.message)
              : ("truncated read: " + std::to_string(c.bytes) + "/" +
                 std::to_string(r.req.length) + " bytes");
    read_failures.push_back("tile read at offset " +
                            std::to_string(r.req.offset) + " (tag " +
                            std::to_string(c.tag) + "): " + why);
    inflight.erase(it);
  }

  [[noreturn]] void fail_round() {
    quiesce_all();
    std::string msg = "gang round aborted: " +
                      std::to_string(read_failures.size()) +
                      " tile read(s) failed past the retry budget";
    for (const auto& f : read_failures) msg += "; " + f;
    read_failures.clear();
    throw IoError(msg, EIO);
  }

  // Unwind-path barrier: waits out every in-flight read for both segments
  // without throwing, then resets the double-buffer bookkeeping. No
  // exception may unwind while I/O workers can write into segment buffers.
  void quiesce_all() noexcept {
    store.device().quiesce();
    pending[0] = pending[1] = 0;
    inflight.clear();
  }

  // ---- compute + shared-cache admission ----------------------------------

  void process_segment(int s) {
    Segment& seg = segments[s];
    const auto& sl = seg.slots();
    const std::vector<Mask>& masks = seg_masks[s];
    GSTORE_DCHECK_EQ(sl.size(), masks.size());
    Timer t;
    slot_costs.clear();
    slot_costs.reserve(sl.size());
    for (std::size_t k = 0; k < sl.size(); ++k)
      slot_costs.push_back(
          (store.tile_edge_count(sl[k].layout_idx) +
           overlay_count(sl[k].layout_idx)) *
          static_cast<std::uint64_t>(std::popcount(masks[k])));
    cost_chunks(slot_costs, chunks);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k)
        dispatch_captured(sl[k].layout_idx, seg.slot_data(sl[k]), masks[k]);
    }
    rethrow_scan_error();  // before pinning possibly-corrupt tiles below
    gang.compute_seconds += t.seconds();
    scratch_indices.clear();
    for (const auto& slot : sl) scratch_indices.push_back(slot.layout_idx);
    account_dispatches(scratch_indices, masks);

    // CACHE: shared-pool admission under per-job quotas. Each admitted tile
    // pins a zero-copy slice of the segment buffer; its cost is split
    // evenly across next-round subscribers, and it enters only while some
    // subscriber is still under budget/active_jobs — the fairness rule that
    // keeps one full-graph job from squeezing everyone else out.
    if (pool.budget() == 0) return;
    const std::uint64_t quota =
        pool.budget() / std::max<std::uint64_t>(active_count(), 1);
    for (const auto& slot : sl) {
      const Mask nm = useful_next_mask(slot.layout_idx);
      if (nm == 0) continue;
      if (slot.bytes > pool.free_bytes()) continue;  // no forced eviction
      const auto subs = static_cast<std::uint64_t>(std::popcount(nm));
      const std::uint64_t charge = slot.bytes / subs;
      // Admit while any subscriber still has quota headroom *before* the
      // charge lands. Requiring the full charge to fit under the quota
      // (charged[j] + charge <= quota) starved hot tiles whose split charge
      // exceeds every job's remaining allowance — they were re-fetched
      // every round even with free pool headroom (the free_bytes check
      // above already guards capacity; the quota is a fairness knob, so a
      // job's last admission may overshoot it by one tile).
      bool under_quota = false;
      for_bits(nm, [&](std::size_t j) {
        if (charged[j] < quota) under_quota = true;
      });
      if (!under_quota) continue;
      if (!pool.insert_pinned(slot.layout_idx, seg.pin_slot(slot),
                              slot.bytes))
        continue;
      cache_info[slot.layout_idx] = CachedTile{slot.bytes, nm};
      for_bits(nm, [&](std::size_t j) { charged[j] += charge; });
    }
  }

  // Round-boundary cache analysis: recompute every cached tile's
  // subscriber set for the upcoming round, evict the orphans, and rebuild
  // the per-job charge table (jobs that finished stop being charged; tiles
  // that gained subscribers get cheaper for everyone).
  void analyze_cache() {
    if (pool.budget() == 0) return;
    scratch_indices.clear();
    for (auto& [idx, info] : cache_info) {
      const Mask nm = useful_next_mask(idx);
      if (nm == 0) {
        scratch_indices.push_back(idx);
      } else {
        info.mask = nm;
      }
    }
    for (const std::uint64_t idx : scratch_indices) {
      pool.erase(idx);
      cache_info.erase(idx);
    }
    charged.fill(0);
    for (const auto& [idx, info] : cache_info) {
      const auto subs = static_cast<std::uint64_t>(std::popcount(info.mask));
      const std::uint64_t charge = info.bytes / subs;
      for_bits(info.mask, [&](std::size_t j) { charged[j] += charge; });
    }
  }

  // ---- one gang round ----------------------------------------------------

  void run_round() {
    for_bits(occupied,
             [&](std::size_t k) { slots[k].job.algo->begin_iteration(slots[k].iter); });

    // REWIND: dispatch cached tiles to this round's subscribers, no I/O.
    std::vector<std::uint64_t> cached_indices;
    if (config.rewind && pool.tile_count() > 0) {
      Timer t;
      rewind_entries.clear();
      pool.for_each_entry(
          [&](const CachePool::Entry& e) { rewind_entries.push_back(e); });
      cached_indices.reserve(rewind_entries.size());
      for (const auto& e : rewind_entries)
        cached_indices.push_back(e.layout_idx);
      rewind_masks.clear();
      for (const auto& e : rewind_entries)
        rewind_masks.push_back(needed_mask(e.layout_idx));
      // Unwanted-this-round entries stay cached (and excluded from the
      // fetch list) but are not dispatched.
      for (std::size_t k = 0; k < rewind_entries.size();) {
        if (rewind_masks[k] == 0) {
          rewind_entries[k] = rewind_entries.back();
          rewind_entries.pop_back();
          rewind_masks[k] = rewind_masks.back();
          rewind_masks.pop_back();
        } else {
          ++k;
        }
      }
      slot_costs.clear();
      slot_costs.reserve(rewind_entries.size());
      for (std::size_t k = 0; k < rewind_entries.size(); ++k)
        slot_costs.push_back(
            (store.tile_edge_count(rewind_entries[k].layout_idx) +
             overlay_count(rewind_entries[k].layout_idx)) *
            static_cast<std::uint64_t>(std::popcount(rewind_masks[k])));
      cost_chunks(slot_costs, chunks);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k)
          dispatch_captured(rewind_entries[k].layout_idx,
                            rewind_entries[k].data, rewind_masks[k]);
      }
      rethrow_scan_error();
      gang.compute_seconds += t.seconds();
      scratch_indices.clear();
      for (const auto& e : rewind_entries)
        scratch_indices.push_back(e.layout_idx);
      account_dispatches(scratch_indices, rewind_masks);
      for (const auto& e : rewind_entries) {
        pool.touch(e.layout_idx);
        gang.tiles_from_cache += static_cast<std::uint64_t>(
            std::popcount(rewind_masks[&e - rewind_entries.data()]));
      }
      std::sort(cached_indices.begin(), cached_indices.end());
    } else if (!config.rewind) {
      pool.clear();
      cache_info.clear();
      charged.fill(0);
    }

    // Fetch list: the union of the active jobs' needed tiles, minus what
    // the cache already served, in layout order.
    std::vector<std::uint64_t> fetch;
    std::vector<Mask> fetch_masks;
    {
      std::size_t ci = 0;
      for (std::uint64_t idx = 0; idx < grid.tile_count(); ++idx) {
        while (ci < cached_indices.size() && cached_indices[ci] < idx) ++ci;
        const bool in_cache =
            ci < cached_indices.size() && cached_indices[ci] == idx;
        if (in_cache) continue;
        if (store.tile_bytes(idx) == 0) continue;
        const Mask m = needed_mask(idx);
        if (m == 0) {
          ++gang.tiles_skipped;
          continue;
        }
        fetch.push_back(idx);
        fetch_masks.push_back(m);
      }
    }

    // SLIDE: double-buffered shared stream. Quiesce before any exception
    // escapes — I/O workers write into buffers this Runner owns.
    std::size_t pos = 0;
    int cur = 0;
    pending[0] = pending[1] = 0;
    try {
      pending[cur] = fill_and_submit(cur, fetch, fetch_masks, pos);
      while (!segments[cur].empty()) {
        const int nxt = cur ^ 1;
        GSTORE_DCHECK_EQ(pending[nxt], 0);
        pending[nxt] = fill_and_submit(nxt, fetch, fetch_masks, pos);
        wait_segment(cur);
        process_segment(cur);
        cur = nxt;
      }
    } catch (...) {
      quiesce_all();
      throw;
    }
    GSTORE_DCHECK_EQ(pos, fetch.size());
    GSTORE_DCHECK_EQ(pending[0], 0);
    GSTORE_DCHECK_EQ(pending[1], 0);

    // Overlay tiles with no base bytes never hit the fetch list: no-I/O pass.
    if (overlay != nullptr) {
      Timer t;
      std::vector<std::uint64_t> delta_only;
      std::vector<Mask> delta_masks;
      for (const std::uint64_t idx : overlay_tiles) {
        if (store.tile_bytes(idx) != 0) continue;
        const Mask m = needed_mask(idx);
        if (m == 0) continue;
        delta_only.push_back(idx);
        delta_masks.push_back(m);
      }
      slot_costs.clear();
      slot_costs.reserve(delta_only.size());
      for (std::size_t k = 0; k < delta_only.size(); ++k)
        slot_costs.push_back(
            overlay_count(delta_only[k]) *
            static_cast<std::uint64_t>(std::popcount(delta_masks[k])));
      cost_chunks(slot_costs, chunks);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k)
          dispatch_captured(delta_only[k], nullptr, delta_masks[k]);
      }
      rethrow_scan_error();
      gang.compute_seconds += t.seconds();
      account_dispatches(delta_only, delta_masks);
    }

    // End the round: every active job decides whether it wants another
    // iteration; finished jobs leave the gang before the cache analysis so
    // their subscriptions stop counting.
    for_bits(occupied, [&](std::size_t k) {
      Slot& s = slots[k];
      const bool more = s.job.algo->end_iteration(s.iter);
      ++s.iter;
      s.stats.iterations = s.iter;
      if (!more) {
        finish_slot(k, JobState::kDone, {});
      } else if (s.iter >= config.max_iterations) {
        finish_slot(k, JobState::kFailed,
                    "did not converge within max_iterations");
      }
    });
    analyze_cache();
    ++gang.rounds;
  }

  // Round boundary: reap cancellations, then offer free capacity to the
  // admit callback. Returns false when the gang is empty (run() ends).
  bool boundary() {
    for_bits(occupied, [&](std::size_t k) {
      if (slots[k].job.cancelled && slots[k].job.cancelled())
        finish_slot(k, JobState::kCancelled, {});
    });
    if (admit && active_count() < kMaxGang) {
      std::vector<GangJob> joined = admit(kMaxGang - active_count());
      GS_CHECK_MSG(joined.size() <= kMaxGang - active_count(),
                   "admit callback returned more jobs than offered slots");
      for (GangJob& j : joined) add_job(std::move(j));
    }
    return occupied != 0;
  }

  GangStats run(std::vector<GangJob> initial) {
    Timer total;
    store.device().reset_stats();
    GS_CHECK_MSG(initial.size() <= kMaxGang, "gang larger than kMaxGang");
    for (GangJob& j : initial) add_job(std::move(j));
    try {
      while (boundary()) run_round();
    } catch (const std::exception& e) {
      // A gang-level failure (I/O past the retry budget) downs every job
      // still on board; the daemon itself survives.
      quiesce_all();
      const std::string why = e.what();
      GS_LOG(Warn) << "gang failed: " << why;
      for_bits(occupied,
               [&](std::size_t k) { finish_slot(k, JobState::kFailed, why); });
    }
    const io::DeviceStats dev = store.device().stats();
    gang.bytes_read = dev.bytes_read;
    gang.retries = dev.retries;
    gang.short_reads = dev.short_reads;
    gang.failed_reads = dev.failed_reads;
    gang.backoff_seconds = dev.backoff_seconds;
    gang.bytes_copied_to_pool = pool.bytes_copied();
    gang.segment_refreshes =
        segments[0].buffer_refreshes() + segments[1].buffer_refreshes();
    gang.elapsed_seconds = total.seconds();
    return gang;
  }

  // ---- state -------------------------------------------------------------

  tile::TileStore& store;
  const tile::Grid& grid;
  const SchedulerConfig& config;
  const AdmitFn& admit;
  const DoneFn& done;
  store::MemoryBudget budget;
  CachePool pool;
  const tile::TileOverlay* overlay = nullptr;
  std::vector<std::uint64_t> overlay_tiles;

  std::vector<Slot> slots;
  Mask occupied = 0;

  Segment segments[2];
  std::vector<Mask> seg_masks[2];
  std::size_t pending[2] = {0, 0};
  std::uint64_t next_serial = 0;
  struct InFlightRead {
    io::ReadRequest req;
    int attempts = 0;
  };
  std::unordered_map<std::uint64_t, InFlightRead> inflight;
  std::vector<std::string> read_failures;
  std::vector<io::Completion> completions_scratch;

  // Shared-cache fairness bookkeeping (control thread only).
  struct CachedTile {
    std::uint64_t bytes = 0;
    Mask mask = 0;
  };
  std::unordered_map<std::uint64_t, CachedTile> cache_info;
  std::array<std::uint64_t, kMaxGang> charged{};

  // Reused per-phase scratch.
  std::vector<std::uint64_t> slot_costs;
  std::vector<Chunk> chunks;
  std::vector<CachePool::Entry> rewind_entries;
  std::vector<Mask> rewind_masks;
  std::vector<std::uint64_t> scratch_indices;

  GangStats gang;
};

SharedScheduler::SharedScheduler(StoreSnapshot& snapshot,
                                 SchedulerConfig config)
    : snapshot_(snapshot), config_(config) {}

SharedScheduler::~SharedScheduler() = default;

GangStats SharedScheduler::run(std::vector<GangJob> initial,
                               const AdmitFn& admit, const DoneFn& done) {
  Runner runner(snapshot_, config_, admit, done);
  return runner.run(std::move(initial));
}

}  // namespace gstore::serve
