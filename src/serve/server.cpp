#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace gstore::serve {

namespace {

// One NDJSON request line may not exceed this (a malicious or broken client
// must not balloon the handler's buffer); responses are capped by
// kMaxNeighborsReturned on the result side.
constexpr std::size_t kMaxLineBytes = 64ull << 20;

// Upper bound on a client-requested blocking wait: a hostile timeout_ms
// must not pin a handler thread for centuries. Clients needing longer
// simply re-issue the wait.
constexpr std::uint64_t kMaxWaitMs = 10ull * 60 * 1000;

// Job ids are allocated from 1 (server.h: next_id_), so 0 never matches.
std::uint64_t parse_id(const Json& request) {
  return request.at("id").as_u64_in(
      1, std::numeric_limits<std::uint64_t>::max());
}

bool is_terminal(JobState s) noexcept {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

bool send_all(int fd, const char* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServerStats

Json ServerStats::to_json() const {
  Json j = Json::object();
  j.set("jobs_submitted", Json(jobs_submitted));
  j.set("jobs_rejected", Json(jobs_rejected));
  j.set("jobs_done", Json(jobs_done));
  j.set("jobs_failed", Json(jobs_failed));
  j.set("jobs_cancelled", Json(jobs_cancelled));
  j.set("gangs", Json(gangs));
  j.set("bytes_read", Json(bytes_read));
  j.set("tiles_fetched", Json(tiles_fetched));
  j.set("tiles_from_cache", Json(tiles_from_cache));
  j.set("tile_dispatches", Json(tile_dispatches));
  j.set("edges_processed", Json(edges_processed));
  j.set("edges_ingested", Json(edges_ingested));
  j.set("compactions", Json(compactions));
  // Shared-fetch payoff: kernel deliveries per unique payload materialized.
  // 32 identical BFS jobs push this towards 32; a lone job sits at ~1.
  const std::uint64_t unique = tiles_fetched + tiles_from_cache;
  j.set("dedup_ratio",
        Json(unique == 0 ? 1.0
                         : static_cast<double>(tile_dispatches) /
                               static_cast<double>(unique)));
  return j;
}

// ---------------------------------------------------------------------------
// JobManager

JobManager::JobManager(ingest::EdgeIngestor& ingestor, ManagerOptions options)
    : ingestor_(ingestor),
      options_(std::move(options)),
      snapshots_(ingestor, options_.snapshot_device),
      vertex_count_(ingestor.store().vertex_count()) {
  GS_CHECK_MSG(options_.max_gang >= 1 &&
                   options_.max_gang <= SharedScheduler::kMaxGang,
               "max_gang must be in [1, 64]");
}

JobManager::~JobManager() { stop(/*drain=*/false); }

void JobManager::start() {
  MutexLock lock(mu_);
  GS_CHECK_MSG(!started_, "JobManager already started");
  stop_ = false;
  started_ = true;
  scheduler_thread_ = std::thread(&JobManager::scheduler_main, this);
}

void JobManager::stop(bool drain) {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    stop_ = true;
    drain_ = drain;
    if (!drain) {
      // Cancel everything queued here (the scheduler may be mid-gang and
      // not reach the queue for a while) and flag the running jobs; the
      // gang observes the flags at its next round boundary.
      for (JobRecord* rec : queue_) {
        rec->state = JobState::kCancelled;
        ++aggregate_.jobs_cancelled;
      }
      queue_.clear();
      for (auto& [id, rec] : jobs_)
        if (rec->state == JobState::kRunning) rec->cancel_flag.store(true);
      done_cv_.notify_all();
    }
    work_cv_.notify_all();
  }
  scheduler_thread_.join();
}

std::uint64_t JobManager::submit(const Json& job) {
  // Parse + allocate everything outside the lock; the guarded region below
  // only links the record in.
  auto rec = std::make_unique<JobRecord>();
  rec->spec = JobSpec::from_json(job, vertex_count_);
  rec->algo = make_algorithm(rec->spec);
  JobRecord* raw = rec.get();

  MutexLock lock(mu_);
  // Submitting before start() is allowed (jobs queue until the scheduler
  // thread exists) — only a stopped manager rejects.
  if (stop_) throw Error("server is shutting down");
  if (queue_.size() >= options_.max_queued) {
    ++aggregate_.jobs_rejected;
    throw Error("server busy: job queue is full (" +
                std::to_string(options_.max_queued) + " jobs queued)");
  }
  const std::uint64_t id = next_id_++;
  raw->id = id;
  // GL-SAFE(GL1): jobs_ is the guarded registry — the map node must be
  // linked in under mu_ or a concurrent status() could miss a submitted id.
  jobs_.emplace(id, std::move(rec));
  // GL-SAFE(GL1): queue_ is the guarded work queue; same rationale.
  queue_.push_back(raw);
  ++aggregate_.jobs_submitted;
  work_cv_.notify_one();
  return id;
}

const JobManager::JobRecord& JobManager::find_locked(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw InvalidArgument("unknown job id " + std::to_string(id));
  return *it->second;
}

Json JobManager::status_locked(const JobRecord& rec) const {
  Json j = Json::object();
  j.set("id", Json(rec.id));
  j.set("state", Json(to_string(rec.state)));
  j.set("job", rec.spec.to_json());
  if (is_terminal(rec.state)) {
    j.set("generation", Json(static_cast<std::uint64_t>(rec.generation)));
    j.set("delta_edges", Json(rec.delta_edges));
    j.set("stats", rec.stats.to_json());
    if (!rec.error.empty()) j.set("error", Json(rec.error));
  } else if (rec.state == JobState::kRunning) {
    j.set("generation", Json(static_cast<std::uint64_t>(rec.generation)));
    j.set("delta_edges", Json(rec.delta_edges));
  }
  return j;
}

Json JobManager::status(std::uint64_t id) const {
  MutexLock lock(mu_);
  return status_locked(find_locked(id));
}

Json JobManager::result(std::uint64_t id) const {
  MutexLock lock(mu_);
  const JobRecord& rec = find_locked(id);
  if (!is_terminal(rec.state))
    throw Error("job " + std::to_string(id) + " is still " +
                to_string(rec.state));
  Json j = Json::object();
  j.set("id", Json(rec.id));
  j.set("state", Json(to_string(rec.state)));
  if (rec.state == JobState::kDone) {
    j.set("result", rec.result_json);
    j.set("stats", rec.stats.to_json());
  } else {
    j.set("error", Json(rec.error));
  }
  return j;
}

bool JobManager::cancel(std::uint64_t id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw InvalidArgument("unknown job id " + std::to_string(id));
  JobRecord& rec = *it->second;
  if (is_terminal(rec.state)) return false;
  if (rec.state == JobState::kQueued) {
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (*qit == &rec) {
        queue_.erase(qit);
        break;
      }
    }
    rec.state = JobState::kCancelled;
    ++aggregate_.jobs_cancelled;
    done_cv_.notify_all();
    return true;
  }
  // Running: the gang honors the flag at its next round boundary and
  // reports kCancelled through the done callback.
  rec.cancel_flag.store(true);
  return true;
}

bool JobManager::wait(std::uint64_t id,
                      std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(mu_);
  for (;;) {
    if (is_terminal(find_locked(id).state)) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    done_cv_.wait_for(mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - now));
  }
}

Json JobManager::stats() const {
  ServerStats agg;
  std::size_t queued = 0;
  std::size_t running = 0;
  {
    MutexLock lock(mu_);
    agg = aggregate_;
    queued = queue_.size();
    for (const auto& [id, rec] : jobs_)
      if (rec->state == JobState::kRunning) ++running;
  }
  Json j = agg.to_json();
  j.set("jobs_queued", Json(static_cast<std::uint64_t>(queued)));
  j.set("jobs_running", Json(static_cast<std::uint64_t>(running)));
  j.set("pinned_generations",
        Json(static_cast<std::uint64_t>(snapshots_.pinned_generations())));
  j.set("retired_pending_unlink",
        Json(static_cast<std::uint64_t>(snapshots_.retired_pending_unlink())));
  return j;
}

Json JobManager::info() const {
  // The ingestor serializes these reads under its own lock; nothing here
  // touches mu_ (no nesting, no ordering obligation).
  const std::uint32_t generation = ingestor_.generation();
  const std::uint64_t delta_edges = ingestor_.delta_edges();
  Json j = Json::object();
  j.set("base", Json(ingestor_.base()));
  j.set("generation", Json(static_cast<std::uint64_t>(generation)));
  j.set("delta_edges", Json(delta_edges));
  j.set("vertex_count", Json(static_cast<std::uint64_t>(vertex_count_)));
  j.set("max_gang", Json(static_cast<std::uint64_t>(options_.max_gang)));
  j.set("max_queued", Json(static_cast<std::uint64_t>(options_.max_queued)));
  return j;
}

std::uint64_t JobManager::ingest(std::span<const graph::Edge> edges) {
  const std::uint64_t accepted = ingestor_.ingest(edges);
  MutexLock lock(mu_);
  aggregate_.edges_ingested += accepted;
  return accepted;
}

Json JobManager::compact() {
  const ingest::CompactStats cs = snapshots_.compact();
  {
    MutexLock lock(mu_);
    ++aggregate_.compactions;
  }
  Json j = Json::object();
  j.set("old_generation", Json(static_cast<std::uint64_t>(cs.old_generation)));
  j.set("new_generation", Json(static_cast<std::uint64_t>(cs.new_generation)));
  j.set("base_edges", Json(cs.base_edges));
  j.set("wal_edges", Json(cs.wal_edges));
  j.set("merged_edges", Json(cs.merged_edges));
  j.set("bytes_written", Json(cs.bytes_written));
  j.set("seconds", Json(cs.seconds));
  j.set("retired_pending_unlink",
        Json(static_cast<std::uint64_t>(snapshots_.retired_pending_unlink())));
  return j;
}

void JobManager::scheduler_main() {
  for (;;) {
    // Pop the next gang's seed jobs. A fixed-size buffer keeps the guarded
    // region allocation-free; the vector is built after unlock.
    std::array<JobRecord*, SharedScheduler::kMaxGang> popped{};
    std::size_t npopped = 0;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stop_) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stop requested, nothing left to drain
      while (!queue_.empty() && npopped < options_.max_gang) {
        JobRecord* rec = queue_.front();
        queue_.pop_front();
        rec->state = JobState::kRunning;
        popped[npopped++] = rec;
      }
    }
    std::vector<JobRecord*> batch(popped.begin(), popped.begin() + npopped);
    run_gang(std::move(batch));
  }
}

void JobManager::run_gang(std::vector<JobRecord*> batch) {
  SnapshotRef snap;
  try {
    snap = snapshots_.acquire();
  } catch (const std::exception& e) {
    GS_LOG(Warn) << "gang snapshot acquisition failed: " << e.what();
    MutexLock lock(mu_);
    for (JobRecord* rec : batch) {
      rec->state = JobState::kFailed;
      rec->error = e.what();
      ++aggregate_.jobs_failed;
    }
    done_cv_.notify_all();
    return;
  }

  {
    MutexLock lock(mu_);
    for (JobRecord* rec : batch) {
      rec->generation = snap->generation();
      rec->delta_edges = snap->delta_edges();
    }
  }

  std::vector<GangJob> initial;
  initial.reserve(batch.size());
  for (JobRecord* rec : batch) {
    initial.push_back(GangJob{
        rec->id, rec->algo.get(),
        [rec] { return rec->cancel_flag.load(std::memory_order_relaxed); }});
  }

  // Mid-gang admission: queued jobs join the running gang only while the
  // write path still matches the gang's snapshot — (generation,
  // delta_edges) is exact snapshot identity because the delta is
  // append-only between compactions. Jobs queued after a write wait for
  // the next gang (and its fresh snapshot).
  const auto admit = [&](std::size_t free_slots) -> std::vector<GangJob> {
    std::array<JobRecord*, SharedScheduler::kMaxGang> taken{};
    std::size_t ntaken = 0;
    {
      MutexLock lock(mu_);
      if (!queue_.empty() &&
          ingestor_.generation() == snap->generation() &&
          ingestor_.delta_edges() == snap->delta_edges()) {
        while (!queue_.empty() && ntaken < free_slots) {
          JobRecord* rec = queue_.front();
          queue_.pop_front();
          rec->state = JobState::kRunning;
          rec->generation = snap->generation();
          rec->delta_edges = snap->delta_edges();
          taken[ntaken++] = rec;
        }
      }
    }
    std::vector<GangJob> joined;
    joined.reserve(ntaken);
    for (std::size_t k = 0; k < ntaken; ++k) {
      JobRecord* rec = taken[k];
      joined.push_back(GangJob{
          rec->id, rec->algo.get(),
          [rec] { return rec->cancel_flag.load(std::memory_order_relaxed); }});
    }
    return joined;
  };

  const auto done = [&](const GangJob& job, JobState state,
                        const JobStats& stats, const std::string& error) {
    JobRecord* rec = nullptr;
    {
      MutexLock lock(mu_);
      rec = jobs_.at(job.id).get();
    }
    // Result digests walk full per-vertex vectors — build outside mu_.
    Json result;
    if (state == JobState::kDone) result = make_result(rec->spec, *rec->algo);
    {
      MutexLock lock(mu_);
      rec->state = state;
      rec->stats = stats;
      rec->error = error;
      if (state == JobState::kDone) {
        rec->result_json = std::move(result);
        ++aggregate_.jobs_done;
      } else if (state == JobState::kFailed) {
        ++aggregate_.jobs_failed;
      } else {
        ++aggregate_.jobs_cancelled;
      }
      aggregate_.edges_processed += stats.edges_processed;
      done_cv_.notify_all();
    }
    // The algorithm's per-vertex state (ranks, depths, …) is dead weight
    // once the result summary exists; a finished PageRank must not keep
    // gigabytes resident while the record waits to be queried.
    rec->algo.reset();
  };

  SharedScheduler scheduler(*snap, options_.scheduler);
  const GangStats gs = scheduler.run(std::move(initial), admit, done);

  MutexLock lock(mu_);
  ++aggregate_.gangs;
  aggregate_.bytes_read += gs.bytes_read;
  aggregate_.tiles_fetched += gs.tiles_fetched;
  aggregate_.tiles_from_cache += gs.tiles_from_cache;
  aggregate_.tile_dispatches += gs.tile_dispatches;
}

// ---------------------------------------------------------------------------
// Server

Server::Server(JobManager& manager, ServeOptions options)
    : manager_(manager), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("socket", errno);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("bad listen address \"" + options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("bind/listen on " + options_.host + ":" +
                      std::to_string(options_.port),
                  err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread(&Server::accept_loop, this);
  GS_LOG(Info) << "gstore_serve listening on " << options_.host << ":"
               << port_;
}

void Server::stop() {
  {
    MutexLock lock(state_mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;  // unblock wait_shutdown()
    shutdown_cv_.notify_all();
  }
  // Wake the acceptor (accept() returns once the listen socket is shut
  // down), join it, then tear down connections. Joining the acceptor FIRST
  // guarantees conns_ is complete — it is only ever appended to from there.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Conn>> conns;
  {
    MutexLock lock(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);  // wake blocked recv()
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
}

bool Server::wait_shutdown() {
  MutexLock lock(state_mu_);
  // Timed wait so a request_stop() from a signal handler (atomic store,
  // no notify) is observed within one tick even though nothing signals
  // the condvar.
  while (!shutdown_requested_) {
    if (async_stop_.load(std::memory_order_acquire)) break;
    shutdown_cv_.wait_for(state_mu_, std::chrono::milliseconds(100));
  }
  return shutdown_drain_;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down — server stopping
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    // The handler thread exists before the list entry does; stop() cannot
    // run concurrently with this push (it joins the acceptor first).
    raw->thread = std::thread(&Server::handle_connection, this, raw);
    // Reap handlers that already returned, so a long-lived daemon does not
    // accumulate dead threads: finished entries are moved out under the
    // lock (swap-remove, allocation-free) and joined/closed after it —
    // blocking in join()/close() must not stall concurrent stop(). The
    // bounded batch just spreads a reap burst over a few accepts. Their
    // fds stay open until the join completes: closing earlier could let
    // the kernel recycle the descriptor into a live connection mid-recv.
    std::array<std::unique_ptr<Conn>, 16> finished;
    std::size_t nfinished = 0;
    {
      MutexLock lock(conn_mu_);
      for (std::size_t i = 0;
           i < conns_.size() && nfinished < finished.size();) {
        if (conns_[i]->done.load(std::memory_order_acquire)) {
          finished[nfinished++] = std::move(conns_[i]);
          conns_[i] = std::move(conns_.back());
          conns_.pop_back();
        } else {
          ++i;
        }
      }
      // GL-SAFE(GL1): conns_ is the guarded registry of live connections;
      // the entry must be linked in under conn_mu_ so stop() can find it.
      conns_.push_back(std::move(conn));
    }
    for (std::size_t i = 0; i < nfinished; ++i) {
      if (finished[i]->thread.joinable()) finished[i]->thread.join();
      if (finished[i]->fd >= 0) ::close(finished[i]->fd);
    }
  }
}

void Server::handle_connection(Conn* conn) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed (or stop() shut the socket down)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while (alive && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty() || line == "\r") continue;
      Json response;
      try {
        response = dispatch(Json::parse(line));
      } catch (const std::exception& e) {
        response = error_response(e.what());
      }
      std::string out = response.dump();
      out += '\n';
      alive = send_all(conn->fd, out.data(), out.size());
    }
    if (buffer.size() > kMaxLineBytes) {
      const std::string out =
          error_response("request line exceeds 64 MiB").dump() + "\n";
      send_all(conn->fd, out.data(), out.size());
      break;
    }
  }
  conn->done.store(true, std::memory_order_release);
  // fd is left open: reap_finished_locked / stop() closes it after join.
}

Json Server::dispatch(const Json& request) {
  const std::string& op = request.at("op").as_string();
  if (op == "ping") return ok_response();
  if (op == "submit") {
    const std::uint64_t id = manager_.submit(request.at("job"));
    Json r = ok_response();
    r.set("id", Json(id));
    return r;
  }
  if (op == "status") {
    Json r = ok_response();
    r.set("job", manager_.status(parse_id(request)));
    return r;
  }
  if (op == "result") {
    Json r = ok_response();
    r.set("job", manager_.result(parse_id(request)));
    return r;
  }
  if (op == "cancel") {
    Json r = ok_response();
    r.set("cancelled", Json(manager_.cancel(parse_id(request))));
    return r;
  }
  if (op == "wait") {
    std::uint64_t timeout_ms = 60000;
    if (const Json* t = request.find("timeout_ms"))
      timeout_ms = t->as_u64_in(0, kMaxWaitMs);
    const std::uint64_t id = parse_id(request);
    const bool finished =
        manager_.wait(id, std::chrono::milliseconds(timeout_ms));
    Json r = ok_response();
    r.set("done", Json(finished));
    r.set("job", manager_.status(id));
    return r;
  }
  if (op == "stats") {
    Json r = ok_response();
    r.set("stats", manager_.stats());
    return r;
  }
  if (op == "info") {
    Json r = ok_response();
    r.set("info", manager_.info());
    return r;
  }
  if (op == "ingest") {
    const Json& arr = request.at("edges");
    std::vector<graph::Edge> edges;
    edges.reserve(arr.items().size());
    for (const Json& e : arr.items()) {
      if (e.items().size() != 2)
        throw InvalidArgument("each edge must be a [src, dst] pair");
      constexpr std::uint32_t kVidMax =
          std::numeric_limits<graph::vid_t>::max();
      edges.push_back(graph::Edge{e.items()[0].as_u32_in(0, kVidMax),
                                  e.items()[1].as_u32_in(0, kVidMax)});
    }
    Json r = ok_response();
    r.set("accepted", Json(manager_.ingest(edges)));
    return r;
  }
  if (op == "compact") {
    Json r = ok_response();
    r.set("stats", manager_.compact());
    return r;
  }
  if (op == "shutdown") {
    bool drain = true;
    if (const Json* d = request.find("drain")) drain = d->as_bool();
    {
      MutexLock lock(state_mu_);
      shutdown_requested_ = true;
      shutdown_drain_ = drain;
      shutdown_cv_.notify_all();
    }
    return ok_response();
  }
  throw InvalidArgument("unknown op \"" + op + "\"");
}

}  // namespace gstore::serve
