#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/status.h"

namespace gstore::serve {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "object",
                                "array"};
  throw InvalidArgument(std::string("json: expected ") + want + ", got " +
                        names[static_cast<int>(got)]);
}

// ---- parser ---------------------------------------------------------------

struct Parser {
  std::string_view in;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw FormatError("json at byte " + std::to_string(pos) + ": " + why);
  }

  bool eof() const { return pos >= in.size(); }
  char peek() const { return in[pos]; }

  void skip_ws() {
    while (!eof() && (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                      in[pos] == '\r'))
      ++pos;
  }

  void expect(char c) {
    if (eof() || in[pos] != c)
      fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view word) {
    if (in.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos + 4 > in.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = in[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = in[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("truncated escape");
      const char e = in[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos + 2 > in.size() || in[pos] != '\\' || in[pos + 1] != 'u')
              fail("unpaired surrogate");
            pos += 2;
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (!eof() && in[pos] == '-') ++pos;
    if (eof() || in[pos] < '0' || in[pos] > '9') fail("bad number");
    while (!eof() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    if (!eof() && in[pos] == '.') {
      ++pos;
      if (eof() || in[pos] < '0' || in[pos] > '9') fail("bad fraction");
      while (!eof() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    if (!eof() && (in[pos] == 'e' || in[pos] == 'E')) {
      ++pos;
      if (!eof() && (in[pos] == '+' || in[pos] == '-')) ++pos;
      if (eof() || in[pos] < '0' || in[pos] > '9') fail("bad exponent");
      while (!eof() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    const std::string slice(in.substr(start, pos - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size() || errno == ERANGE)
      fail("number out of range");
    return Json(v);
  }

  Json parse_value(int depth) {
    if (depth > Json::kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (!eof() && peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (eof()) fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (!eof() && peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push(parse_value(depth + 1));
        skip_ws();
        if (eof()) fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(parse_string());
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    fail("unexpected character");
  }
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull:
      out += "null";
      break;
    case Json::Type::kBool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber: {
      const double v = j.as_number();
      // Integral values (ids, counters) print exactly; doubles get enough
      // digits to round-trip.
      if (std::isfinite(v) && v == std::floor(v) &&
          std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        out += buf;
      } else if (std::isfinite(v)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Json::Type::kString:
      dump_string(j.as_string(), out);
      break;
    case Json::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(v, out);
      }
      out.push_back('}');
      break;
    }
    case Json::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : j.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(v, out);
      }
      out.push_back(']');
      break;
    }
  }
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Json::as_int() const {
  const double v = as_number();
  if (!std::isfinite(v) || v != std::floor(v) ||
      v < -9.007199254740992e15 || v > 9.007199254740992e15)
    throw InvalidArgument("json: number is not an exact integer");
  return static_cast<std::int64_t>(v);
}

std::uint64_t Json::as_uint() const {
  const std::int64_t v = as_int();
  if (v < 0) throw InvalidArgument("json: expected a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

namespace {
[[noreturn]] void range_error(const std::string& v, const std::string& lo,
                              const std::string& hi) {
  throw InvalidArgument("json: number " + v + " is outside [" + lo + ", " +
                        hi + "]");
}
}  // namespace

std::uint32_t Json::as_u32_in(std::uint32_t lo, std::uint32_t hi) const {
  const std::uint64_t v = as_uint();
  if (v < lo || v > hi)
    range_error(std::to_string(v), std::to_string(lo), std::to_string(hi));
  return static_cast<std::uint32_t>(v);
}

std::uint64_t Json::as_u64_in(std::uint64_t lo, std::uint64_t hi) const {
  const std::uint64_t v = as_uint();
  if (v < lo || v > hi)
    range_error(std::to_string(v), std::to_string(lo), std::to_string(hi));
  return v;
}

std::int64_t Json::as_i64_in(std::int64_t lo, std::int64_t hi) const {
  const std::int64_t v = as_int();
  if (v < lo || v > hi)
    range_error(std::to_string(v), std::to_string(lo), std::to_string(hi));
  return v;
}

double Json::as_f64_in(double lo, double hi) const {
  const double v = as_number();
  // The negated comparison also rejects NaN, which compares false to both.
  if (!(v >= lo && v <= hi))
    range_error(std::to_string(v), std::to_string(lo), std::to_string(hi));
  return v;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr)
    throw InvalidArgument("json: missing field \"" + std::string(key) + "\"");
  return *v;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (!p.eof()) p.fail("trailing bytes after value");
  return v;
}

Json ok_response() {
  Json r = Json::object();
  r.set("ok", Json(true));
  return r;
}

Json error_response(const std::string& message) {
  Json r = Json::object();
  r.set("ok", Json(false));
  r.set("error", Json(message));
  return r;
}

}  // namespace gstore::serve
