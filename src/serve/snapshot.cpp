#include "serve/snapshot.h"

#include <utility>

#include "ingest/compact.h"
#include "util/logging.h"
#include "util/status.h"

namespace gstore::serve {

SnapshotManager::SnapshotManager(ingest::EdgeIngestor& ingestor,
                                 io::DeviceConfig device)
    : ingestor_(ingestor), device_(std::move(device)) {}

SnapshotRef SnapshotManager::acquire() {
  // The open below races with concurrent compaction: between reading the
  // ingest snapshot and opening the generation's files, a compact() may
  // publish a newer generation (and, if nothing pinned the old one, unlink
  // it). Detect both outcomes — an open failure or a generation mismatch in
  // the opened header — and retake the snapshot. Bounded: compaction is
  // rare and each retry observes a strictly newer generation.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const ingest::EdgeIngestor::Snapshot ing = ingestor_.snapshot();
    {
      MutexLock lock(mu_);
      if (SnapshotRef hit = cached_.lock();
          hit != nullptr && hit->generation() == ing.generation &&
          hit->delta_edges() == ing.delta_edges)
        return hit;
    }

    // File opens happen outside the manager lock (they are syscalls and can
    // be slow); the cache is re-checked before publishing.
    auto snap = std::unique_ptr<StoreSnapshot>(new StoreSnapshot());
    snap->generation_ = ing.generation;
    snap->delta_edges_ = ing.delta_edges;
    snap->delta_ = ing.delta;
    const std::string gen_base = tile::TileStore::generation_base(
        ingestor_.base(), ing.generation);
    try {
      snap->store_ = std::make_unique<tile::TileStore>(
          tile::TileStore::open(gen_base, device_));
    } catch (const Error&) {
      continue;  // generation vanished under us — retake the snapshot
    }
    if (snap->store_->meta().generation != ing.generation)
      continue;  // manifest re-resolved to a newer generation mid-open
    if (snap->delta_ != nullptr)
      snap->store_->attach_overlay(snap->delta_.get());

    MutexLock lock(mu_);
    if (SnapshotRef hit = cached_.lock();
        hit != nullptr && hit->generation() == ing.generation &&
        hit->delta_edges() == ing.delta_edges)
      return hit;  // another acquire won the race; drop our duplicate
    ++pins_[ing.generation];
    SnapshotRef ref(snap.release(), [this](StoreSnapshot* s) {
      const std::uint32_t gen = s->generation();
      delete s;
      release(gen);
    });
    cached_ = ref;
    return ref;
  }
  throw Error("snapshot acquire: compaction kept invalidating the store (16 attempts)");
}

void SnapshotManager::release(std::uint32_t generation) noexcept {
  bool unlink_now = false;
  {
    MutexLock lock(mu_);
    const auto it = pins_.find(generation);
    if (it == pins_.end()) return;
    if (--it->second > 0) return;
    pins_.erase(it);
    const auto rit = retired_.find(generation);
    if (rit != retired_.end()) {
      retired_.erase(rit);
      unlink_now = true;
    }
  }
  // The unlink (a syscall) runs outside the lock; remove_generation_files
  // is itself noexcept best-effort.
  if (unlink_now)
    ingest::remove_generation_files(
        tile::TileStore::generation_base(ingestor_.base(), generation));
}

ingest::CompactStats SnapshotManager::compact(ingest::CompactOptions opts) {
  // The ingestor must never unlink eagerly: pinned snapshots still name the
  // old generation's files for *new* opens (shared snapshots), not just
  // already-open fds.
  opts.remove_old_generation = false;
  const ingest::CompactStats stats = ingestor_.compact(opts);
  bool unlink_now = false;
  {
    MutexLock lock(mu_);
    if (pins_.count(stats.old_generation) > 0)
      retired_[stats.old_generation] = true;  // last release() unlinks
    else
      unlink_now = true;
  }
  if (unlink_now)
    ingest::remove_generation_files(tile::TileStore::generation_base(
        ingestor_.base(), stats.old_generation));
  return stats;
}

std::size_t SnapshotManager::pinned_generations() const {
  MutexLock lock(mu_);
  return pins_.size();
}

std::size_t SnapshotManager::retired_pending_unlink() const {
  MutexLock lock(mu_);
  return retired_.size();
}

}  // namespace gstore::serve
