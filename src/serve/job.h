// Job model for gstore_serve: what a client asks for, how it progresses,
// and what comes back.
//
// A JobSpec is parsed from the "job" object of a submit request and
// validated against the snapshot's vertex range before anything is queued.
// Each running job owns its own TileAlgorithm instance and its own JobStats
// — per-run statistics are job-scoped by construction (concurrent jobs
// never share mutable counters); the daemon's process-wide aggregate lives
// separately in ServerStats (server.h).
//
// Results are summarized, not shipped whole: full per-vertex vectors on a
// billion-vertex store would be gigabytes per response. Every result
// carries a CRC-32 digest of the full metadata vector instead, which is
// what the bit-identity acceptance tests compare against serial runs, plus
// algorithm-specific scalars (visited counts, component counts, …). The
// "neighbors" kind is the exception — it is a data query and returns the
// actual adjacency list (capped).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/types.h"
#include "serve/protocol.h"
#include "store/algorithm.h"
#include "tile/tile_file.h"

namespace gstore::serve {

enum class JobKind { kBfs, kSssp, kPageRank, kWcc, kNeighbors };

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobKind kind) noexcept;
const char* to_string(JobState state) noexcept;

struct JobSpec {
  JobKind kind = JobKind::kBfs;
  graph::vid_t vertex = 0;            // bfs/sssp root, neighbors target
  double damping = 0.85;              // pagerank
  std::uint32_t max_iterations = 20;  // pagerank
  double tolerance = 0.0;             // pagerank early exit (0 = exact count)

  // Parses {"algo": "bfs", "root": 5, ...}; throws InvalidArgument on an
  // unknown algorithm, missing/ill-typed fields, or a vertex outside
  // [0, vertex_count).
  static JobSpec from_json(const Json& j, graph::vid_t vertex_count);
  Json to_json() const;
};

// Per-job run statistics (satellite: stats are job-scoped, not
// engine-global). Written by the scheduler thread that owns the job's gang
// slot; published to readers together with the done/failed state change.
struct JobStats {
  std::uint32_t iterations = 0;
  std::uint64_t edges_processed = 0;
  std::uint64_t overlay_edges = 0;
  // Tile payloads this job's kernel consumed (each shared fetch counts once
  // per *subscribed* job — the dedup denominator).
  std::uint64_t tiles_dispatched = 0;
  double seconds = 0;

  Json to_json() const;
};

// Instantiates the algorithm a spec asks for. The returned algorithm is
// exclusively owned by one job; it is init()'ed by the scheduler against
// the job's snapshot store.
std::unique_ptr<store::TileAlgorithm> make_algorithm(const JobSpec& spec);

// Builds the result payload once the algorithm converged: scalars + the
// CRC-32 digest over the full metadata vector (the serial-equivalence
// fingerprint). `algo` must be the instance make_algorithm created for
// `spec`.
Json make_result(const JobSpec& spec, const store::TileAlgorithm& algo);

}  // namespace gstore::serve
