// Wire protocol for gstore_serve: newline-delimited JSON over TCP.
//
// Every request is one JSON object on one line; every response is one JSON
// object on one line. Requests carry an "op" string; responses always carry
// "ok" (true/false) and, on failure, "error". The full grammar is in
// docs/SERVE.md. The Json value class below is a deliberately tiny
// recursive-descent implementation — the server cannot take on a JSON
// library dependency, and the protocol only needs objects, arrays, strings,
// numbers, bools and null.
//
// Parsing untrusted client bytes: parse() throws FormatError on anything
// malformed (including a nesting depth past kMaxDepth and trailing bytes),
// never reads past the input, and allocates proportionally to the input
// size. Type accessors throw InvalidArgument on mismatch so a handler that
// forgets to validate a field fails loudly instead of misreading it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gstore::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  // Nesting bound for parse(): a hostile client must not be able to
  // overflow the parser's stack with ten thousand '['s.
  static constexpr int kMaxDepth = 64;

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), num_(n) {}
  Json(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::uint64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::uint32_t n) : type_(Type::kNumber), num_(n) {}
  Json(int n) : type_(Type::kNumber), num_(n) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json object() { return Json(Type::kObject); }
  static Json array() { return Json(Type::kArray); }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }

  bool as_bool() const;
  double as_number() const;
  // Checked integer narrowing: throws InvalidArgument when the number has a
  // fractional part or lies outside the destination range.
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  // Range-checked variants: throw InvalidArgument when the number is
  // ill-typed, fractional, or outside [lo, hi]. Handlers decode every
  // wire integer through one of these so the value is bounded before it
  // can reach an allocation, index, or wait duration.
  std::uint32_t as_u32_in(std::uint32_t lo, std::uint32_t hi) const;
  std::uint64_t as_u64_in(std::uint64_t lo, std::uint64_t hi) const;
  std::int64_t as_i64_in(std::int64_t lo, std::int64_t hi) const;
  double as_f64_in(double lo, double hi) const;
  const std::string& as_string() const;

  // Object access. find() returns nullptr when absent; at() throws.
  const Json* find(std::string_view key) const;
  const Json& at(std::string_view key) const;
  Json& set(std::string key, Json value);  // appends or replaces

  // Array access.
  Json& push(Json value);
  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  // Serializes on one line (no newline appended): the NDJSON framing is the
  // caller's job. Integral-valued numbers print without a decimal point so
  // ids and counters round-trip textually.
  std::string dump() const;

  // Parses exactly one JSON value spanning the whole input (surrounding
  // whitespace allowed). Throws FormatError with a byte offset otherwise.
  static Json parse(std::string_view text);

 private:
  explicit Json(Type t) : type_(t) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> object_;
  std::vector<Json> array_;
};

// Canonical response shells.
Json ok_response();
Json error_response(const std::string& message);

}  // namespace gstore::serve
