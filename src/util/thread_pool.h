// Fixed-size worker pool used by the async I/O engine and by parallel loops
// when OpenMP is unavailable.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace gstore {

class ThreadPool {
 public:
  // n == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Enqueues a task; returns a future for its completion/exception.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, count) across the pool and waits for completion.
  // Work is chunked dynamically; exceptions propagate (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_{"ThreadPool::mutex_"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GSTORE_GUARDED_BY(mutex_);
  bool stopping_ GSTORE_GUARDED_BY(mutex_) = false;
};

}  // namespace gstore
