// Bit manipulation helpers shared by the SNB codec and generators.
#pragma once

#include <bit>
#include <cstdint>

namespace gstore {

// Number of bits needed to represent values in [0, n) — i.e. ceil(log2(n)),
// with bits_for(0) == bits_for(1) == 0.
constexpr unsigned bits_for(std::uint64_t n) noexcept {
  return n <= 1 ? 0u : static_cast<unsigned>(std::bit_width(n - 1));
}

constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

// Next power of two >= n (n must be representable).
constexpr std::uint64_t next_pow2(std::uint64_t n) noexcept {
  return n <= 1 ? 1 : std::uint64_t{1} << std::bit_width(n - 1);
}

}  // namespace gstore
