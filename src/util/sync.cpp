// Lockdep-lite: runtime lock-order checking behind GSTORE_DCHECK builds.
//
// Model (a small subset of the kernel's lockdep): each Mutex/SharedMutex
// instance is a node; acquiring B while holding A inserts the directed edge
// A → B into a global order graph the first time that pair is seen. An
// acquisition whose new edge closes a cycle (B is already an ancestor of A)
// is a potential deadlock — two threads interleaving those two orders can
// block forever — and aborts with the current thread's held stack and the
// remembered context of every edge on the conflicting path. Inversions are
// caught the first time both orders have *ever* been used, not only on the
// interleaving that actually deadlocks.
#include "util/sync.h"

#if GSTORE_LOCKDEP

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gstore::sync_detail {

namespace {

struct HeldLock {
  std::uint64_t id;
  const char* name;
};

// The held stack is per-thread and touched without any lock.
thread_local std::vector<HeldLock> t_held;

// Context remembered for the first recording of each order edge, so an
// inversion report can show where the conflicting order came from.
struct EdgeContext {
  std::string holder_name;    // lock already held
  std::string acquired_name;  // lock acquired under it
  std::string held_chain;     // full held stack at record time
  std::string thread_id;
};

// Global order graph. Guarded by graph_mu — a raw std::mutex on purpose:
// lockdep cannot use gstore::Mutex (it would recurse into itself), and this
// file is part of the sync component where rule R4 permits raw primitives.
std::mutex g_graph_mu;
std::map<std::uint64_t, std::set<std::uint64_t>>& successors() {
  static auto* s = new std::map<std::uint64_t, std::set<std::uint64_t>>();
  return *s;
}
std::map<std::pair<std::uint64_t, std::uint64_t>, EdgeContext>& edge_contexts() {
  static auto* m = new std::map<std::pair<std::uint64_t, std::uint64_t>, EdgeContext>();
  return *m;
}

std::string thread_id_string() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu",
                std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return std::string(buf);
}

std::string held_chain_string() {
  std::string s;
  for (const HeldLock& h : t_held) {
    if (!s.empty()) s += " -> ";
    s += h.name;
    s += "#" + std::to_string(h.id);
  }
  return s.empty() ? std::string("(nothing)") : s;
}

// Finds a path from → to in the order graph; fills `path` with the node
// sequence when found. Caller holds g_graph_mu.
bool find_path(std::uint64_t from, std::uint64_t to,
               std::vector<std::uint64_t>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  auto it = successors().find(from);
  if (it == successors().end()) return false;
  path.push_back(from);
  for (std::uint64_t next : it->second) {
    // The graph is acyclic by construction (a cycle aborts before the edge
    // that would close it is inserted), so plain DFS terminates.
    if (find_path(next, to, path)) return true;
  }
  path.pop_back();
  return false;
}

[[noreturn]] void report_inversion(std::uint64_t held_id, const char* held_name,
                                   std::uint64_t acq_id, const char* acq_name,
                                   const std::vector<std::uint64_t>& path) {
  std::fprintf(stderr,
               "\n=== gstore lockdep: lock-order inversion (potential "
               "deadlock) ===\n"
               "this thread (%s) is acquiring \"%s\"#%llu while holding: %s\n"
               "but the reverse order \"%s\"#%llu -> ... -> \"%s\"#%llu was "
               "recorded earlier:\n",
               thread_id_string().c_str(), acq_name,
               static_cast<unsigned long long>(acq_id),
               held_chain_string().c_str(), acq_name,
               static_cast<unsigned long long>(acq_id), held_name,
               static_cast<unsigned long long>(held_id));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = edge_contexts().find({path[i], path[i + 1]});
    if (it == edge_contexts().end()) continue;
    const EdgeContext& c = it->second;
    std::fprintf(stderr,
                 "  edge \"%s\" -> \"%s\": first recorded on thread %s "
                 "holding %s\n",
                 c.holder_name.c_str(), c.acquired_name.c_str(),
                 c.thread_id.c_str(), c.held_chain.c_str());
  }
  std::fprintf(stderr,
               "=== a thread interleaving these two orders deadlocks; fix "
               "the acquisition order ===\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

std::uint64_t register_lock(const char* /*name*/) {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void before_acquire(std::uint64_t id, const char* name) {
  for (const HeldLock& h : t_held) {
    if (h.id == id) {
      std::fprintf(stderr,
                   "\n=== gstore lockdep: recursive acquisition of \"%s\"#%llu "
                   "(self-deadlock) ===\nheld stack: %s\n",
                   name, static_cast<unsigned long long>(id),
                   held_chain_string().c_str());
      std::fflush(stderr);
      std::abort();
    }
  }
  if (t_held.empty()) return;

  std::lock_guard<std::mutex> g(g_graph_mu);
  for (const HeldLock& h : t_held) {
    if (!successors()[h.id].insert(id).second) continue;  // edge already known
    // New edge h → id: adding it must not close a cycle, i.e. h must not be
    // reachable from id. Check before the edge becomes usable by others.
    std::vector<std::uint64_t> path;
    if (find_path(id, h.id, path)) {
      successors()[h.id].erase(id);
      report_inversion(h.id, h.name, id, name, path);
    }
    edge_contexts()[{h.id, id}] =
        EdgeContext{h.name, name, held_chain_string(), thread_id_string()};
  }
}

void on_acquired(std::uint64_t id, const char* name) {
  t_held.push_back(HeldLock{id, name});
}

void on_try_acquired(std::uint64_t id, const char* name) {
  // A successful try_lock holds the lock (later acquisitions under it must
  // be ordered), but the attempt itself cannot deadlock, so no edges.
  t_held.push_back(HeldLock{id, name});
}

void on_release(std::uint64_t id) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->id == id) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "\n=== gstore lockdep: releasing lock #%llu not held by this "
               "thread ===\n",
               static_cast<unsigned long long>(id));
  std::fflush(stderr);
  std::abort();
}

}  // namespace gstore::sync_detail

#endif  // GSTORE_LOCKDEP
