// Annotated synchronization primitives: the only place in the codebase that
// may touch <mutex>/<shared_mutex>/<condition_variable> directly
// (tools/check_concurrency.py rule R4 enforces this).
//
// Two layers, both zero-cost in release builds:
//
// 1. Clang Thread Safety Analysis. Every wrapper carries the capability
//    attributes, so annotating a member `GSTORE_GUARDED_BY(mu_)` and a
//    method `GSTORE_REQUIRES(mu_)` turns lock misuse into a compile error
//    under clang's `-Wthread-safety -Werror` (the `thread-safety` CI job and
//    the `tidy` preset). Under gcc the attributes expand to nothing.
//
// 2. Lockdep-lite (GSTORE_DCHECK builds only). Every Mutex acquisition is
//    recorded in a per-thread held-lock stack and a global lock-order graph;
//    acquiring B while holding A when some thread previously acquired A
//    while holding B is a potential deadlock, and aborts immediately with
//    both acquisition contexts printed — even if this particular run never
//    actually deadlocks. docs/CORRECTNESS.md explains how to read a report.
//
// Escape hatch: `GSTORE_NO_THREAD_SAFETY_ANALYSIS` disables the analysis
// for one function. Every use must carry a `// SAFETY:` comment justifying
// it (check_concurrency.py rule R5), e.g. a documented external
// synchronization contract the analysis cannot see.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/dcheck.h"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops outside clang).
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GSTORE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#if !defined(GSTORE_THREAD_ANNOTATION_)
#define GSTORE_THREAD_ANNOTATION_(x)
#endif

// On types: this class is a lockable capability (e.g. a mutex).
#define GSTORE_CAPABILITY(x) GSTORE_THREAD_ANNOTATION_(capability(x))
// On types: RAII object that acquires in its ctor and releases in its dtor.
#define GSTORE_SCOPED_CAPABILITY GSTORE_THREAD_ANNOTATION_(scoped_lockable)
// On data members: reads/writes require holding the named capability.
#define GSTORE_GUARDED_BY(x) GSTORE_THREAD_ANNOTATION_(guarded_by(x))
// On pointer members: the pointed-to data requires the capability.
#define GSTORE_PT_GUARDED_BY(x) GSTORE_THREAD_ANNOTATION_(pt_guarded_by(x))
// On functions: caller must hold (exclusively / shared) the capabilities.
#define GSTORE_REQUIRES(...) \
  GSTORE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define GSTORE_REQUIRES_SHARED(...) \
  GSTORE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
// On functions: the function acquires / releases the capabilities.
#define GSTORE_ACQUIRE(...) \
  GSTORE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define GSTORE_ACQUIRE_SHARED(...) \
  GSTORE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define GSTORE_RELEASE(...) \
  GSTORE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define GSTORE_RELEASE_SHARED(...) \
  GSTORE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define GSTORE_TRY_ACQUIRE(...) \
  GSTORE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// On functions: caller must NOT hold the capabilities (deadlock guard).
#define GSTORE_EXCLUDES(...) GSTORE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// On functions: tells the analysis the capability is held (runtime-checked
// elsewhere); used for assertion helpers.
#define GSTORE_ASSERT_CAPABILITY(x) GSTORE_THREAD_ANNOTATION_(assert_capability(x))
// On functions: returns a reference to the named capability.
#define GSTORE_RETURN_CAPABILITY(x) GSTORE_THREAD_ANNOTATION_(lock_returned(x))
// Audited escape hatch; requires a SAFETY justification comment (lint R5).
#define GSTORE_NO_THREAD_SAFETY_ANALYSIS \
  GSTORE_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Lockdep rides the DCHECK switch: on in Debug/sanitizer builds, compiled
// out (plain std::mutex forwarding, fully inlinable) in release.
#if !defined(GSTORE_LOCKDEP)
#define GSTORE_LOCKDEP GSTORE_DCHECK_ENABLED
#endif

namespace gstore {

#if GSTORE_LOCKDEP
namespace sync_detail {
// Assigns a process-unique id to a lock instance (ids are never reused, so
// the order graph cannot alias a destroyed lock with a new one).
std::uint64_t register_lock(const char* name);
// Records `id` as about-to-be-acquired: checks the per-thread held stack
// for recursion and the global order graph for an inversion, aborting with
// both acquisition contexts on a violation. Call BEFORE blocking on the
// native lock so a real deadlock still produces the report.
void before_acquire(std::uint64_t id, const char* name);
// Pushes onto the per-thread held stack once the native lock is owned.
void on_acquired(std::uint64_t id, const char* name);
// try_lock success: held-stack entry only — a failed try cannot deadlock,
// so no order edges are recorded for the attempt.
void on_try_acquired(std::uint64_t id, const char* name);
void on_release(std::uint64_t id);
}  // namespace sync_detail
#endif  // GSTORE_LOCKDEP

// Exclusive mutex. The `name` (static string) appears in lockdep reports.
class GSTORE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex("mutex") {}
  explicit Mutex(const char* name) {
#if GSTORE_LOCKDEP
    name_ = name;
    ld_id_ = sync_detail::register_lock(name);
#else
    (void)name;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GSTORE_ACQUIRE() {
#if GSTORE_LOCKDEP
    sync_detail::before_acquire(ld_id_, name_);
    m_.lock();
    sync_detail::on_acquired(ld_id_, name_);
#else
    m_.lock();
#endif
  }

  void unlock() GSTORE_RELEASE() {
#if GSTORE_LOCKDEP
    sync_detail::on_release(ld_id_);
#endif
    m_.unlock();
  }

  bool try_lock() GSTORE_TRY_ACQUIRE(true) {
    const bool ok = m_.try_lock();
#if GSTORE_LOCKDEP
    if (ok) sync_detail::on_try_acquired(ld_id_, name_);
#endif
    return ok;
  }

 private:
  friend class CondVar;
  std::mutex m_;
#if GSTORE_LOCKDEP
  const char* name_ = "mutex";
  std::uint64_t ld_id_ = 0;
#endif
};

// Reader/writer mutex. Lockdep treats shared and exclusive acquisitions of
// the same lock identically (conservative: flags shared/shared orderings a
// real deadlock needs a writer to close — cheap to keep consistent instead).
class GSTORE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : SharedMutex("shared_mutex") {}
  explicit SharedMutex(const char* name) {
#if GSTORE_LOCKDEP
    name_ = name;
    ld_id_ = sync_detail::register_lock(name);
#else
    (void)name;
#endif
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() GSTORE_ACQUIRE() {
#if GSTORE_LOCKDEP
    sync_detail::before_acquire(ld_id_, name_);
    m_.lock();
    sync_detail::on_acquired(ld_id_, name_);
#else
    m_.lock();
#endif
  }
  void unlock() GSTORE_RELEASE() {
#if GSTORE_LOCKDEP
    sync_detail::on_release(ld_id_);
#endif
    m_.unlock();
  }
  void lock_shared() GSTORE_ACQUIRE_SHARED() {
#if GSTORE_LOCKDEP
    sync_detail::before_acquire(ld_id_, name_);
    m_.lock_shared();
    sync_detail::on_acquired(ld_id_, name_);
#else
    m_.lock_shared();
#endif
  }
  void unlock_shared() GSTORE_RELEASE_SHARED() {
#if GSTORE_LOCKDEP
    sync_detail::on_release(ld_id_);
#endif
    m_.unlock_shared();
  }

 private:
  std::shared_mutex m_;
#if GSTORE_LOCKDEP
  const char* name_ = "shared_mutex";
  std::uint64_t ld_id_ = 0;
#endif
};

// RAII exclusive lock.
class GSTORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GSTORE_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() GSTORE_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// RAII exclusive lock over a SharedMutex (the writer side).
class GSTORE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) GSTORE_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterMutexLock() GSTORE_RELEASE() { mu_->unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

// RAII shared lock over a SharedMutex (the reader side).
class GSTORE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) GSTORE_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() GSTORE_RELEASE() { mu_->unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

// Condition variable bound to Mutex. wait() must be called with `mu` held;
// as with std::condition_variable the lock is released while blocked and
// reacquired before return, so the caller re-checks its predicate in a
// `while` loop (which is also the shape the thread-safety analysis can
// follow — predicate lambdas would escape it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) GSTORE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then leak ownership
    // back to the caller's scope. Lockdep keeps the lock on the held stack
    // across the wait: the thread is blocked, so no order edges can form,
    // and the post-wake state (lock held) matches the stack again.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Timed wait: returns false if `timeout` elapsed without a notification.
  // Same contract as wait() — caller holds `mu` and re-checks its predicate
  // in a while loop (spurious wakeups and timeouts look identical to it).
  bool wait_for(Mutex& mu, std::chrono::milliseconds timeout)
      GSTORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

// One-time initialization. Wraps std::once_flag/std::call_once so callers
// outside this component never touch the raw primitives (lint rule R4):
// the std versions are invisible to both the thread-safety analysis and
// gstore-lint's lock modeling, and their exception semantics (a throwing
// callable re-arms the flag) deserve one documented home.
//
// call_once blocks other callers for the duration of `fn`; treat the
// callable like a critical section (no I/O, no long work) — gstore-lint
// GL1 sees through it the same way it sees through MutexLock scopes.
class OnceFlag {
 public:
  OnceFlag() = default;
  OnceFlag(const OnceFlag&) = delete;
  OnceFlag& operator=(const OnceFlag&) = delete;

  template <typename Fn, typename... Args>
  void call_once(Fn&& fn, Args&&... args) {
    std::call_once(flag_, std::forward<Fn>(fn), std::forward<Args>(args)...);
  }

 private:
  std::once_flag flag_;
};

template <typename Fn, typename... Args>
void call_once(OnceFlag& flag, Fn&& fn, Args&&... args) {
  flag.call_once(std::forward<Fn>(fn), std::forward<Args>(args)...);
}

}  // namespace gstore
