// Error handling primitives for gstore.
//
// The library uses exceptions for unrecoverable errors (I/O failure,
// format corruption, contract violations at API boundaries). GS_CHECK is
// used for conditions that must hold regardless of build type.
#pragma once

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gstore {

// Base exception for all gstore errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Raised when on-disk data fails validation (bad magic, truncated file,
// inconsistent index).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error("format error: " + what) {}
};

// Raised when a system call fails; captures errno.
class IoError : public Error {
 public:
  IoError(const std::string& what, int err)
      : Error("io error: " + what + ": " + std::strerror(err)), errno_(err) {}
  explicit IoError(const std::string& what) : IoError(what, errno) {}
  int sys_errno() const noexcept { return errno_; }

 private:
  int errno_;
};

// Raised on caller contract violations (bad arguments, out-of-range ids).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

// Always-on invariant check (unlike assert, active in release builds).
#define GS_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::gstore::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GS_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::gstore::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

}  // namespace gstore
