#include "util/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/dcheck.h"

namespace gstore {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Workers drain the queue before exiting, so nothing may be left behind.
  // The pool is single-threaded again here (all workers joined), but the
  // analysis cannot know that, so take the lock — it is uncontended.
  MutexLock lock(mutex_);
  GSTORE_DCHECK(queue_.empty());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      GSTORE_DCHECK(stopping_ || !queue_.empty());
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    GSTORE_DCHECK(task != nullptr);
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> next{0};
  // First-exception capture: call_once picks the winner race-free, and
  // `failed` is a release/acquire flag so (a) other workers stop claiming
  // chunks promptly and (b) the final first_error read below is ordered
  // after the winning store even if a future's synchronization were absent.
  OnceFlag error_once;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};

  auto body = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_acquire)) return;
      const std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + grain, count);
      GSTORE_DCHECK_LE(end, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        gstore::call_once(error_once,
                          [&] { first_error = std::current_exception(); });
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(workers_.size());
  // The calling thread participates too, so a 1-thread pool still overlaps.
  for (std::size_t i = 0; i + 1 < workers_.size(); ++i)
    futs.push_back(submit(body));
  body();
  for (auto& f : futs) f.get();
  if (failed.load(std::memory_order_acquire)) {
    GSTORE_DCHECK(first_error != nullptr);
    std::rethrow_exception(first_error);
  }
}

}  // namespace gstore
