// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace gstore {

// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  std::uint64_t micros() const {
    return static_cast<std::uint64_t>(seconds() * 1e6);
  }

 private:
  clock::time_point start_;
};

// Accumulates elapsed time across start/stop intervals (e.g. total I/O time
// over many fetches).
class AccumTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  double seconds() const { return total_ + (running_ ? t_.seconds() : 0.0); }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace gstore
