// Tiny command-line option parser for examples and benchmark drivers.
//
// Supports --key=value, --key value, and boolean --flag forms. Unknown
// options raise InvalidArgument so typos fail loudly. A bare "--" ends
// option parsing; everything after it is positional verbatim (so values
// like "damping=0.9" can't be mistaken for misspelled options).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gstore {

class Options {
 public:
  Options() = default;

  // Declares an option with a default value and help text. Must be called
  // before parse().
  Options& add(const std::string& name, const std::string& default_value,
               const std::string& help);
  Options& add_flag(const std::string& name, const std::string& help);

  // Parses argv; leftover positional arguments are available via
  // positional(). Throws InvalidArgument on unknown options. Recognizes
  // --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_; }
  std::string usage(const std::string& program) const;

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  struct Spec {
    std::string value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

// Reads an integer environment override, falling back to `fallback`.
// Used by benches: GSTORE_BENCH_SCALE etc.
std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace gstore
