// Page-aligned heap buffer for O_DIRECT I/O.
//
// O_DIRECT requires the user buffer, the file offset, and the transfer size
// to be aligned to the logical block size (512B; we use 4096B to be safe on
// any device). AlignedBuffer owns such a region with RAII semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/status.h"

namespace gstore {

inline constexpr std::size_t kIoAlignment = 4096;

// Rounds n up to the next multiple of `align` (power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

constexpr std::size_t align_down(std::size_t n, std::size_t align) noexcept {
  return n & ~(align - 1);
}

class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  // Allocates `size` bytes aligned to `alignment`. The usable size is exactly
  // `size`; callers performing O_DIRECT reads should align size themselves.
  explicit AlignedBuffer(std::size_t size, std::size_t alignment = kIoAlignment)
      : size_(size) {
    if (size == 0) return;
    void* p = std::aligned_alloc(alignment, align_up(size, alignment));
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<std::uint8_t*>(p);
  }

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)), size_(std::exchange(o.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace gstore
