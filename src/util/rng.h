// Deterministic, fast pseudo-random number generation.
//
// Graph generators must be reproducible across runs and platforms, so we use
// fixed algorithms (splitmix64 for seeding, xoshiro256** for streams) rather
// than std::mt19937 whose distributions are implementation-defined when used
// through <random> adaptors.
#pragma once

#include <cstdint>

namespace gstore {

// splitmix64: used to expand a single seed into stream state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses Lemire's multiply-shift reduction (slightly
  // biased for astronomically large bounds; fine for graph generation).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // std::uniform_random_bit_generator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace gstore
