// CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, header-only.
//
// Used to frame the write-ahead edge log: every WAL frame carries the CRC of
// its header+payload so replay can distinguish intact frames from a torn
// tail after a crash (see src/ingest/wal.h).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace gstore {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

// Chainable: pass a previous return value as `seed` to continue a checksum
// over discontiguous buffers.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return ~c;
}

}  // namespace gstore
