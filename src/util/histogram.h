// Log-scale histogram used to report tile/group edge-count distributions
// (paper Figures 5 and 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gstore {

// Buckets values by power-of-`base` ranges: [0], [1,base), [base,base^2)...
class LogHistogram {
 public:
  explicit LogHistogram(std::uint64_t base = 10);

  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t zeros() const noexcept { return zeros_; }
  std::uint64_t max_value() const noexcept { return max_value_; }

  // Count of samples with value < bound.
  std::uint64_t count_below(std::uint64_t bound) const;
  // Fraction (0..1) of samples with value < bound; 0 when empty.
  double fraction_below(std::uint64_t bound) const;

  // Multi-line table: "bucket_lo..bucket_hi  count  percent".
  std::string to_string() const;

  struct Bucket {
    std::uint64_t lo, hi;  // half-open [lo, hi)
    std::uint64_t count;
  };
  std::vector<Bucket> buckets() const;

 private:
  std::uint64_t base_;
  std::uint64_t zeros_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t max_value_ = 0;
  std::vector<std::uint64_t> counts_;      // counts_[i] covers [base^i, base^(i+1))
  std::vector<std::uint64_t> raw_;         // kept sorted lazily for count_below
  mutable std::vector<std::uint64_t> sorted_cache_;
  mutable bool sorted_valid_ = false;
};

}  // namespace gstore
