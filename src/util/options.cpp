#include "util/options.h"

#include <cstdlib>
#include <sstream>

#include "util/status.h"

namespace gstore {

Options& Options::add(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  specs_[name] = Spec{default_value, help, false};
  return *this;
}

Options& Options::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{"false", help, true};
  return *this;
}

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg == "--") {  // end of options: the rest is positional verbatim
      for (++i; i < argc; ++i) positional_.push_back(argv[i]);
      break;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(key);
    if (it == specs_.end())
      throw InvalidArgument("unknown option --" + key);
    if (it->second.is_flag) {
      it->second.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc)
          throw InvalidArgument("option --" + key + " requires a value");
        value = argv[++i];
      }
      it->second.value = value;
    }
  }
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << "=<value> (default: " << spec.value << ")";
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

std::string Options::get(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) throw InvalidArgument("undeclared option --" + name);
  return it->second.value;
}

std::int64_t Options::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size())
    throw InvalidArgument("option --" + name + " is not an integer: " + v);
  return out;
}

double Options::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size())
    throw InvalidArgument("option --" + name + " is not a number: " + v);
  return out;
}

bool Options::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgument("option --" + name + " is not a boolean: " + v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace gstore
