// Debug-only invariant checks (DCHECKs).
//
// GS_CHECK (util/status.h) stays on in every build and throws; it guards
// API-boundary contracts whose violation must surface in production.
// GSTORE_DCHECK guards *internal* invariants on hot or hot-adjacent paths —
// tile offset monotonicity, SNB local-id ranges, segment state machines,
// queue bookkeeping — where a per-edge or per-tile branch is affordable in
// debug/sanitizer builds but not in release.
//
// Enablement: GSTORE_DCHECK_ENABLED defaults to 1 when NDEBUG is not defined
// (Debug builds, including the asan-ubsan/tsan presets) and 0 otherwise
// (RelWithDebInfo/Release). The CMake option GSTORE_DCHECKS=ON forces it on
// regardless of build type. When disabled, the macros expand to a
// non-evaluating no-op: arguments are parsed (so they cannot bit-rot) but
// never executed — see util_test's Dcheck.DisabledChecksAreTrueNoOps.
//
// Failure behaviour is abort(), not throw: a DCHECK failure means internal
// state is already corrupt, and several call sites are noexcept or run on
// detached worker threads where an exception would terminate anyway.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if !defined(GSTORE_DCHECK_ENABLED)
#if defined(NDEBUG)
#define GSTORE_DCHECK_ENABLED 0
#else
#define GSTORE_DCHECK_ENABLED 1
#endif
#endif

namespace gstore::detail {

[[noreturn]] inline void dcheck_failed(const char* expr, const char* file,
                                       int line, const char* msg) noexcept {
  std::fprintf(stderr, "GSTORE_DCHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void dcheck_cmp_failed(const char* expr, const char* file,
                                           int line, long long lhs,
                                           long long rhs) noexcept {
  std::fprintf(stderr,
               "GSTORE_DCHECK failed: %s at %s:%d (lhs=%lld rhs=%lld)\n", expr,
               file, line, lhs, rhs);
  std::fflush(stderr);
  std::abort();
}

}  // namespace gstore::detail

#if GSTORE_DCHECK_ENABLED

#define GSTORE_DCHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::gstore::detail::dcheck_failed(#expr, __FILE__, __LINE__, "");  \
  } while (0)

#define GSTORE_DCHECK_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::gstore::detail::dcheck_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Comparison forms print both operands on failure. Operands are evaluated
// exactly once; values are reported via long long (enough for every vid,
// offset, and count in the codebase).
#define GSTORE_DCHECK_CMP_(lhs, op, rhs)                                      \
  do {                                                                        \
    const auto gs_dc_l_ = (lhs);                                              \
    const auto gs_dc_r_ = (rhs);                                              \
    if (!(gs_dc_l_ op gs_dc_r_)) [[unlikely]]                                 \
      ::gstore::detail::dcheck_cmp_failed(#lhs " " #op " " #rhs, __FILE__,    \
                                          __LINE__,                           \
                                          static_cast<long long>(gs_dc_l_),   \
                                          static_cast<long long>(gs_dc_r_));  \
  } while (0)

#else  // !GSTORE_DCHECK_ENABLED

// sizeof() keeps the expression type-checked without evaluating it, so a
// DCHECK cannot change behaviour between build types via side effects.
#define GSTORE_DCHECK(expr) \
  do {                      \
    (void)sizeof((expr));   \
  } while (0)

#define GSTORE_DCHECK_MSG(expr, msg) \
  do {                               \
    (void)sizeof((expr));            \
    (void)sizeof(msg);               \
  } while (0)

#define GSTORE_DCHECK_CMP_(lhs, op, rhs) \
  do {                                   \
    (void)sizeof((lhs)op(rhs));          \
  } while (0)

#endif  // GSTORE_DCHECK_ENABLED

#define GSTORE_DCHECK_EQ(lhs, rhs) GSTORE_DCHECK_CMP_(lhs, ==, rhs)
#define GSTORE_DCHECK_NE(lhs, rhs) GSTORE_DCHECK_CMP_(lhs, !=, rhs)
#define GSTORE_DCHECK_LT(lhs, rhs) GSTORE_DCHECK_CMP_(lhs, <, rhs)
#define GSTORE_DCHECK_LE(lhs, rhs) GSTORE_DCHECK_CMP_(lhs, <=, rhs)
#define GSTORE_DCHECK_GT(lhs, rhs) GSTORE_DCHECK_CMP_(lhs, >, rhs)
#define GSTORE_DCHECK_GE(lhs, rhs) GSTORE_DCHECK_CMP_(lhs, >=, rhs)
