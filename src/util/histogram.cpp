#include "util/histogram.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"

namespace gstore {

LogHistogram::LogHistogram(std::uint64_t base) : base_(base) {
  GS_CHECK_MSG(base >= 2, "histogram base must be >= 2");
}

void LogHistogram::add(std::uint64_t value, std::uint64_t count) {
  total_ += count;
  max_value_ = std::max(max_value_, value);
  for (std::uint64_t k = 0; k < count; ++k) raw_.push_back(value);
  sorted_valid_ = false;
  if (value == 0) {
    zeros_ += count;
    return;
  }
  std::size_t bucket = 0;
  std::uint64_t hi = base_;
  while (value >= hi) {
    ++bucket;
    if (hi > ~std::uint64_t{0} / base_) {  // would overflow; clamp to last bucket
      break;
    }
    hi *= base_;
  }
  if (counts_.size() <= bucket) counts_.resize(bucket + 1, 0);
  counts_[bucket] += count;
}

std::uint64_t LogHistogram::count_below(std::uint64_t bound) const {
  if (!sorted_valid_) {
    sorted_cache_ = raw_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_valid_ = true;
  }
  return static_cast<std::uint64_t>(
      std::lower_bound(sorted_cache_.begin(), sorted_cache_.end(), bound) -
      sorted_cache_.begin());
}

double LogHistogram::fraction_below(std::uint64_t bound) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count_below(bound)) /
                           static_cast<double>(total_);
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  if (zeros_ > 0) out.push_back({0, 1, zeros_});
  std::uint64_t lo = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t hi = lo * base_;
    if (counts_[i] > 0) out.push_back({lo, hi, counts_[i]});
    lo = hi;
  }
  return out;
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (const auto& b : buckets()) {
    const double pct =
        total_ ? 100.0 * static_cast<double>(b.count) / static_cast<double>(total_)
               : 0.0;
    os << "[" << b.lo << ", " << b.hi << ")\t" << b.count << "\t" << pct << "%\n";
  }
  return os.str();
}

}  // namespace gstore
