// Overflow-checked arithmetic for values decoded from untrusted bytes.
//
// Parser code (tile_file.cpp, wal.cpp, fault.cpp) must not apply raw
// `*`, `+` or `<<` to wire-derived integers: a crafted header can wrap
// the result and defeat the size cross-checks that gate allocations.
// gstore-lint's GL4 check enforces this; these helpers are the blessed
// route. They throw FormatError on overflow, which the parsers already
// translate into "reject the file" at their call sites.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/status.h"

namespace gstore {

inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b,
                                 const char* what = "sum") {
  std::uint64_t out;
  if (__builtin_add_overflow(a, b, &out))
    throw FormatError(std::string(what) + " overflows (" +
                      std::to_string(a) + " + " + std::to_string(b) + ")");
  return out;
}

inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b,
                                 const char* what = "product") {
  std::uint64_t out;
  if (__builtin_mul_overflow(a, b, &out))
    throw FormatError(std::string(what) + " overflows (" +
                      std::to_string(a) + " * " + std::to_string(b) + ")");
  return out;
}

inline std::uint64_t checked_in(std::uint64_t v, std::uint64_t lo,
                                std::uint64_t hi,
                                const char* what = "value") {
  if (v < lo || v > hi)
    throw FormatError(std::string(what) + " is " + std::to_string(v) +
                      ", outside [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "]");
  return v;
}

inline std::uint64_t checked_shl(std::uint64_t a, unsigned shift,
                                 const char* what = "shifted value") {
  if (shift >= 64 || (shift > 0 && a > (std::numeric_limits<std::uint64_t>::max() >> shift)))
    throw FormatError(std::string(what) + " overflows (" +
                      std::to_string(a) + " << " + std::to_string(shift) + ")");
  return a << shift;
}

}  // namespace gstore
