#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/sync.h"

namespace gstore::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
Mutex g_emit_mutex{"log::g_emit_mutex"};

Level initial_level() {
  if (const char* env = std::getenv("GSTORE_LOG")) return parse_level(env);
  return Level::kWarn;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

struct LevelInit {
  LevelInit() { g_level.store(initial_level(), std::memory_order_relaxed); }
} g_level_init;
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

Level parse_level(std::string_view name) noexcept {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kInfo;
}

namespace detail {

LineSink::LineSink(Level lvl, const char* file, int line) : lvl_(lvl) {
  // Strip directories from __FILE__ for terser output.
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  os_ << "[" << level_name(lvl) << " " << base << ":" << line << "] ";
}

LineSink::~LineSink() {
  os_ << "\n";
  const std::string line = os_.str();
  MutexLock lock(g_emit_mutex);
  // GL-SAFE(GL1): the emit mutex exists precisely to serialize this write —
  // interleaved log lines are worse than a blocked logger, and the format
  // step above already happened outside the lock.
  std::fwrite(line.data(), 1, line.size(), stderr);
  // GL-SAFE(GL1): same serialization rationale as the fwrite above.
  if (lvl_ >= Level::kWarn) std::fflush(stderr);
}

}  // namespace detail
}  // namespace gstore::log
