// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage:
//   GS_LOG(info) << "loaded " << n << " tiles";
// Level is controlled globally via set_log_level() or the GSTORE_LOG
// environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string_view>

namespace gstore::log {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

Level level() noexcept;
void set_level(Level lvl) noexcept;
// Parses a level name; returns kInfo for unknown names.
Level parse_level(std::string_view name) noexcept;

namespace detail {
// Accumulates one log line and emits it on destruction.
class LineSink {
 public:
  LineSink(Level lvl, const char* file, int line);
  ~LineSink();
  LineSink(const LineSink&) = delete;
  LineSink& operator=(const LineSink&) = delete;

  template <typename T>
  LineSink& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace gstore::log

#define GS_LOG(severity)                                                   \
  if (::gstore::log::Level::k##severity < ::gstore::log::level()) {       \
  } else                                                                   \
    ::gstore::log::detail::LineSink(::gstore::log::Level::k##severity,    \
                                    __FILE__, __LINE__)

// Convenience aliases matching common spellings.
#define GS_LOG_TRACE GS_LOG(Trace)
#define GS_LOG_DEBUG GS_LOG(Debug)
#define GS_LOG_INFO GS_LOG(Info)
#define GS_LOG_WARN GS_LOG(Warn)
#define GS_LOG_ERROR GS_LOG(Error)
