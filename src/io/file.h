// RAII file wrapper with positional I/O and optional O_DIRECT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/source.h"

namespace gstore::io {

enum class OpenMode {
  kRead,        // existing file, read-only
  kWrite,       // create/truncate, write-only
  kReadWrite,   // create if missing, read/write
};

class File : public Source {
 public:
  File() = default;
  // Opens the file; throws IoError on failure. If `direct` is set, opens
  // with O_DIRECT (falls back to buffered automatically if the filesystem
  // rejects it, e.g. tmpfs).
  File(const std::string& path, OpenMode mode, bool direct = false);

  File(File&& o) noexcept;
  File& operator=(File&& o) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File() override;

  bool is_open() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  const std::string& path() const noexcept { return path_; }
  bool is_direct() const noexcept { return direct_; }

  // Reads exactly n bytes at offset; throws on short read or error.
  void pread_full(void* buf, std::size_t n, std::uint64_t offset) const;
  // Reads up to n bytes (tolerates EOF); returns bytes read.
  std::size_t pread_some(void* buf, std::size_t n,
                         std::uint64_t offset) const override;
  // Writes exactly n bytes at offset.
  void pwrite_full(const void* buf, std::size_t n, std::uint64_t offset) const;
  // Appends exactly n bytes at current size (tracked internally for kWrite).
  void append(const void* buf, std::size_t n);

  std::uint64_t size() const override;
  void truncate(std::uint64_t size) const;
  void sync() const;
  void close();

  static bool exists(const std::string& path);
  static void remove(const std::string& path);
  static std::uint64_t file_size(const std::string& path);
  static void rename(const std::string& from, const std::string& to);

 private:
  int fd_ = -1;
  std::string path_;
  bool direct_ = false;
  std::uint64_t append_offset_ = 0;
};

// Durability helpers for atomic-publish protocols (ingest compaction):
// fsync a directory so just-created/renamed entries survive power loss.
void fsync_dir(const std::string& dir_path);
// Directory component of `path` ("." when there is none).
std::string parent_dir(const std::string& path);
// rename(2) + fsync of the destination's parent directory: after this
// returns, a crash leaves exactly one of {from, to} visible — the publish
// primitive the compaction protocol builds on.
void atomic_publish(const std::string& from, const std::string& to);

// Creates a unique temporary directory (under $TMPDIR or /tmp) and removes
// it with all contents on destruction. Used by tests and benches.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "gstore");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const noexcept { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace gstore::io
