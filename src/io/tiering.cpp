#include "io/tiering.h"

#include <algorithm>

#include "util/status.h"

namespace gstore::io {

void TierMap::add_range(std::uint64_t begin, std::uint64_t end, unsigned tier) {
  GS_CHECK_MSG(begin <= end, "inverted tier range");
  GS_CHECK_MSG(tier <= 1, "tier must be 0 (fast) or 1 (slow)");
  if (begin == end) return;
  GS_CHECK_MSG(ranges_.empty() || ranges_.back().end <= begin,
               "tier ranges must be added in increasing order");
  // Merge with the previous range when contiguous and same tier.
  if (!ranges_.empty() && ranges_.back().end == begin &&
      ranges_.back().tier == tier) {
    ranges_.back().end = end;
  } else {
    ranges_.push_back(Range{begin, end, tier});
  }
  (tier == 0 ? fast_total_ : slow_total_) += end - begin;
}

std::pair<std::uint64_t, std::uint64_t> TierMap::split(std::uint64_t begin,
                                                       std::uint64_t end) const {
  if (begin >= end) return {0, 0};
  std::uint64_t slow = 0;
  // Find the first range that could overlap [begin, end).
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), begin,
      [](const Range& r, std::uint64_t pos) { return r.end <= pos; });
  for (; it != ranges_.end() && it->begin < end; ++it) {
    if (it->tier != 1) continue;
    const std::uint64_t lo = std::max(begin, it->begin);
    const std::uint64_t hi = std::min(end, it->end);
    if (hi > lo) slow += hi - lo;
  }
  const std::uint64_t total = end - begin;
  return {total - slow, slow};
}

}  // namespace gstore::io
