// Abstract random-access read source.
//
// The async engine and device model read through this interface so that a
// "file" can be a plain file or a RAID-0 style striped set (io/striped.h),
// matching the paper's testbed of eight SSDs under software RAID-0.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gstore::io {

class Source {
 public:
  virtual ~Source() = default;

  // Reads up to n bytes at offset (tolerates EOF); returns bytes read.
  virtual std::size_t pread_some(void* buf, std::size_t n,
                                 std::uint64_t offset) const = 0;
  // Total readable bytes.
  virtual std::uint64_t size() const = 0;

  // Reads exactly n bytes; throws IoError on short read.
  void pread_full(void* buf, std::size_t n, std::uint64_t offset) const;
};

}  // namespace gstore::io
