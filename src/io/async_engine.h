// Batched asynchronous read engine.
//
// G-Store (the paper) batches tile reads into single Linux AIO submissions
// (io_submit / io_getevents) so one system call covers many tiles, and polls
// completions while compute proceeds on previously fetched data. libaio is
// not available in this environment, so AsyncEngine reproduces the exact
// programming model — batch submit, completion polling, bounded in-flight
// queue — on top of a worker pool issuing pread(2). A synchronous backend is
// provided for the paper's AIO-vs-POSIX comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/file.h"

namespace gstore::io {

class Throttle;

// Errno classification driving the retry decision. The taxonomy follows
// what the kernel actually hands back from block-device reads:
//   kInterrupted — EINTR/EAGAIN/EWOULDBLOCK: the syscall never ran to
//                  completion; reissue immediately (storms are bounded by a
//                  generous separate budget, no backoff needed).
//   kTransient   — EIO/ENOMEM/EBUSY/ETIMEDOUT/ENOSPC pressure-class errors
//                  a retry with backoff can outlive (a flaky link, a
//                  momentarily saturated controller).
//   kPermanent   — everything else (EBADF, EINVAL, EFAULT, ENXIO, ...):
//                  retrying cannot help; fail the request now.
enum class ErrnoClass { kInterrupted, kTransient, kPermanent };
ErrnoClass classify_errno(int err) noexcept;

// Bounded-retry contract for one read request. All recovery is performed on
// the I/O worker executing the request, so submitters and pollers never see
// a transient failure at all — only requests that exhausted their budget
// complete with ok == false.
struct RetryPolicy {
  int max_retries = 4;         // budget for kTransient failures
  int max_interrupts = 256;    // budget for kInterrupted storms
  double backoff_initial_ms = 1.0;   // doubles per transient retry...
  double backoff_max_ms = 100.0;     // ...capped here
  // Short reads before EOF are resubmitted for the missing tail (offset,
  // length and buffer advanced past the delivered bytes). Off = a short
  // read completes as-is, like plain pread(2).
  bool resubmit_short_reads = true;
};

// Recovery counters, aggregated across all requests since construction.
struct RetryStats {
  std::uint64_t retries = 0;       // error retries (interrupted + transient)
  std::uint64_t short_reads = 0;   // tail resubmissions after short reads
  std::uint64_t failed_reads = 0;  // requests completed with ok == false
  double backoff_seconds = 0;      // total time spent sleeping in backoff
};

// One read request: fill `buffer[0..length)` from `file` at `offset`.
// `file` may be a plain File or any other Source (e.g. a striped set).
struct ReadRequest {
  const Source* file = nullptr;
  std::uint64_t offset = 0;
  std::size_t length = 0;
  std::uint8_t* buffer = nullptr;
  std::uint64_t tag = 0;  // opaque caller cookie, returned in the Completion
  // Dispatch urgency: workers pick pending requests with the smallest
  // priority first; equal priorities keep submit (FIFO) order, so plain
  // callers that never set this are unaffected. The SCR engine's worklist
  // scheduler stamps each round's bucket here, which keeps the fetch queue
  // ordered to match the worklist when several submitters share a device
  // (docs/SCHEDULING.md).
  std::uint32_t priority = 0;
  // Optional device pacing: the executing worker acquires `length` tokens
  // before reading, so emulated device latency stays off the compute thread.
  Throttle* throttle = nullptr;
  // Tiered storage: `slow_bytes` of the request live on the slow tier and
  // are charged against `slow_throttle` instead (see io/tiering.h).
  Throttle* slow_throttle = nullptr;
  std::size_t slow_bytes = 0;
};

struct Completion {
  std::uint64_t tag = 0;
  std::size_t bytes = 0;   // bytes actually read (may be < length at EOF)
  bool ok = true;          // false if the read failed past its retry budget
  int error = 0;           // errno-style code when !ok (0 otherwise)
  std::string message;     // failure detail (exception what()) when !ok
};

enum class Backend {
  kThreadPool,  // asynchronous: worker threads execute preads
  kSync,        // synchronous: requests complete inside submit() — the
                // "direct and synchronous POSIX I/O" baseline from the paper
};

class AsyncEngine {
 public:
  // `depth` bounds in-flight requests (like the aio context's nr_events);
  // `workers` is the number of I/O threads for the thread-pool backend.
  explicit AsyncEngine(Backend backend = Backend::kThreadPool,
                       std::size_t depth = 128, std::size_t workers = 4,
                       RetryPolicy retry = {});
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  Backend backend() const noexcept { return backend_; }

  // Submits a batch of reads in one call (mirrors io_submit). Blocks only
  // if the in-flight queue is full. Buffers must stay valid until the
  // matching completion is polled.
  void submit(const std::vector<ReadRequest>& batch);

  // Waits for at least `min_events` completions (0 = non-blocking peek) and
  // appends up to `max_events` of them to `out`. Mirrors io_getevents.
  // Returns the number of completions delivered.
  std::size_t poll(std::size_t min_events, std::size_t max_events,
                   std::vector<Completion>& out);

  // Convenience: waits until ALL in-flight requests complete (keeping
  // in_flight() consistent throughout), discards the completions, then — if
  // any failed — throws a single IoError listing every failed tag. Nothing
  // is left in flight when the exception propagates.
  void drain();

  // Like drain() but never throws: waits out every in-flight request and
  // discards all completions. Returns the number of failed completions
  // discarded. This is the unwind-path primitive — callers about to
  // propagate an exception call quiesce() first so no worker is still
  // writing into buffers the unwind is about to free.
  std::size_t quiesce() noexcept;

  std::size_t in_flight() const;

  // Total bytes read through this engine (successful completions).
  std::uint64_t bytes_read() const noexcept;
  // Total submit() calls — the paper counts system calls saved by batching.
  std::uint64_t submit_calls() const noexcept;
  // Recovery counters (retries, short-read resubmits, failures, backoff).
  RetryStats retry_stats() const noexcept;
  const RetryPolicy& retry_policy() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Backend backend_;
};

}  // namespace gstore::io
