#include "io/striped.h"

#include <algorithm>

#include "util/status.h"

namespace gstore::io {

void Source::pread_full(void* buf, std::size_t n, std::uint64_t offset) const {
  const std::size_t got = pread_some(buf, n, offset);
  if (got != n)
    throw IoError("short read at offset " + std::to_string(offset) + " (" +
                      std::to_string(got) + "/" + std::to_string(n) +
                      " bytes)",
                  EIO);
}

std::uint64_t stripe_file(const std::string& flat_path,
                          const std::string& base_path, unsigned members,
                          std::uint64_t stripe_bytes) {
  GS_CHECK_MSG(members >= 1, "need at least one stripe member");
  GS_CHECK_MSG(stripe_bytes >= 512, "stripe size too small");
  File src(flat_path, OpenMode::kRead);
  const std::uint64_t total = src.size();

  std::vector<File> out;
  out.reserve(members);
  for (unsigned k = 0; k < members; ++k)
    out.emplace_back(StripedFile::member_path(base_path, k), OpenMode::kWrite);

  std::vector<std::uint8_t> buf(stripe_bytes);
  std::uint64_t off = 0;
  std::uint64_t stripe = 0;
  while (off < total) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(stripe_bytes, total - off));
    src.pread_full(buf.data(), n, off);
    out[stripe % members].append(buf.data(), n);
    off += n;
    ++stripe;
  }
  for (auto& f : out) f.sync();
  return total;
}

StripedFile::StripedFile(const std::string& base_path, unsigned members,
                         std::uint64_t stripe_bytes, bool direct)
    : stripe_bytes_(stripe_bytes) {
  GS_CHECK_MSG(members >= 1, "need at least one stripe member");
  GS_CHECK_MSG(stripe_bytes >= 512, "stripe size too small");
  files_.reserve(members);
  for (unsigned k = 0; k < members; ++k) {
    files_.emplace_back(member_path(base_path, k), OpenMode::kRead, direct);
    logical_size_ += files_.back().size();
  }
}

std::size_t StripedFile::pread_some(void* buf, std::size_t n,
                                    std::uint64_t offset) const {
  auto* out = static_cast<std::uint8_t*>(buf);
  const unsigned members = static_cast<unsigned>(files_.size());
  std::size_t done = 0;
  while (done < n && offset + done < logical_size_) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes_;
    const std::uint64_t in_stripe = pos % stripe_bytes_;
    const unsigned member = static_cast<unsigned>(stripe % members);
    const std::uint64_t member_off =
        (stripe / members) * stripe_bytes_ + in_stripe;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>({n - done, stripe_bytes_ - in_stripe,
                                 logical_size_ - pos}));
    const std::size_t got =
        files_[member].pread_some(out + done, want, member_off);
    done += got;
    if (got < want) {
      // `want` was already clamped to the logical size, so a short member
      // read means the set is internally inconsistent: this member holds
      // fewer bytes than the round-robin layout requires for the total the
      // members advertise. Returning a silently truncated buffer here is
      // how a degraded array corrupts results downstream — fail loudly so
      // the engine's retry/abort machinery takes over.
      throw IoError("striped member " + files_[member].path() +
                        " is truncated: stripe " + std::to_string(stripe) +
                        " at member offset " + std::to_string(member_off) +
                        " delivered " + std::to_string(got) + "/" +
                        std::to_string(want) + " bytes",
                    EIO);
    }
  }
  return done;
}

}  // namespace gstore::io
