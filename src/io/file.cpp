#include "io/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gstore::io {

namespace {
int open_flags(OpenMode mode) {
  switch (mode) {
    case OpenMode::kRead: return O_RDONLY;
    case OpenMode::kWrite: return O_WRONLY | O_CREAT | O_TRUNC;
    case OpenMode::kReadWrite: return O_RDWR | O_CREAT;
  }
  return O_RDONLY;
}
}  // namespace

File::File(const std::string& path, OpenMode mode, bool direct) : path_(path) {
#ifdef GSTORE_SANITIZE_BUILD
  // Sanitizer builds never use O_DIRECT: instrumented allocations carry
  // redzones that break the kernel's DMA alignment contract, and bypassing
  // the page cache hides nothing from ASan/TSan anyway. is_direct() then
  // reports false, which is the truth.
  direct = false;
#endif
  int flags = open_flags(mode);
#ifdef O_DIRECT
  if (direct) flags |= O_DIRECT;
#endif
  fd_ = ::open(path.c_str(), flags, 0644);
#ifdef O_DIRECT
  if (fd_ < 0 && direct && errno == EINVAL) {
    // Filesystem (e.g. tmpfs) rejects O_DIRECT; fall back to buffered.
    flags &= ~O_DIRECT;
    direct = false;
    fd_ = ::open(path.c_str(), flags, 0644);
  }
#endif
  if (fd_ < 0) throw IoError("open " + path);
  direct_ = direct;
  if (mode == OpenMode::kWrite) append_offset_ = 0;
  else if (mode == OpenMode::kReadWrite) append_offset_ = size();
}

File::File(File&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      direct_(o.direct_),
      append_offset_(o.append_offset_) {}

File& File::operator=(File&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    direct_ = o.direct_;
    append_offset_ = o.append_offset_;
  }
  return *this;
}

File::~File() { close(); }

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void File::pread_full(void* buf, std::size_t n, std::uint64_t offset) const {
  const std::size_t got = pread_some(buf, n, offset);
  if (got != n)
    throw IoError("short read from " + path_ + " at offset " +
                      std::to_string(offset) + " (" + std::to_string(got) +
                      "/" + std::to_string(n) + " bytes)",
                  EIO);
}

std::size_t File::pread_some(void* buf, std::size_t n, std::uint64_t offset) const {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got =
        ::pread(fd_, p + done, n - done, static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw IoError("pread " + path_ + " at offset " +
                    std::to_string(offset + done));
    }
    if (got == 0) break;  // EOF
    done += static_cast<std::size_t>(got);
  }
  return done;
}

void File::pwrite_full(const void* buf, std::size_t n, std::uint64_t offset) const {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put =
        ::pwrite(fd_, p + done, n - done, static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw IoError("pwrite " + path_ + " at offset " +
                    std::to_string(offset + done));
    }
    done += static_cast<std::size_t>(put);
  }
}

void File::append(const void* buf, std::size_t n) {
  pwrite_full(buf, n, append_offset_);
  append_offset_ += n;
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw IoError("fstat " + path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::truncate(std::uint64_t size) const {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
    throw IoError("ftruncate " + path_);
}

void File::sync() const {
  if (::fsync(fd_) != 0) throw IoError("fsync " + path_);
}

bool File::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void File::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    throw IoError("unlink " + path);
}

std::uint64_t File::file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) throw IoError("stat " + path);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0)
    throw IoError("rename " + from + " -> " + to);
}

void fsync_dir(const std::string& dir_path) {
  const int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw IoError("open dir " + dir_path);
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  // Some filesystems (notably overlayfs) reject directory fsync with EINVAL;
  // there is nothing more we can do for durability there, and failing the
  // publish over it would make the protocol unusable on those mounts.
  if (rc != 0 && saved != EINVAL)
    throw IoError("fsync dir " + dir_path, saved);
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void atomic_publish(const std::string& from, const std::string& to) {
  File::rename(from, to);
  fsync_dir(parent_dir(to));
}

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base ? base : "/tmp") + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) throw IoError("mkdtemp " + tmpl);
  path_ = buf.data();
}

TempDir::~TempDir() {
  // Remove regular files then the directory; we never create subdirectories.
  if (DIR* d = ::opendir(path_.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((path_ + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(path_.c_str());
}

}  // namespace gstore::io
