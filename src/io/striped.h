// RAID-0 style striping over member files (paper §VII: "Linux software
// RAID0 to bundle the disks together with the stripe size set to 64KB").
//
// A striped set <base>.s0 … <base>.s{N-1} holds the logical file cut into
// fixed-size stripes dealt round-robin: stripe k lives in member k % N at
// member offset (k / N) × stripe_bytes. Reads spanning stripes are split
// and reassembled transparently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/file.h"
#include "io/source.h"

namespace gstore::io {

inline constexpr std::uint64_t kDefaultStripeBytes = 64 << 10;  // the paper's

// Splits an existing flat file into a striped set. Returns logical size.
std::uint64_t stripe_file(const std::string& flat_path,
                          const std::string& base_path, unsigned members,
                          std::uint64_t stripe_bytes = kDefaultStripeBytes);

class StripedFile final : public Source {
 public:
  // Opens <base>.s0 … ; member count and stripe size must match the writer.
  StripedFile(const std::string& base_path, unsigned members,
              std::uint64_t stripe_bytes = kDefaultStripeBytes,
              bool direct = false);

  std::size_t pread_some(void* buf, std::size_t n,
                         std::uint64_t offset) const override;
  std::uint64_t size() const override { return logical_size_; }

  unsigned members() const noexcept {
    return static_cast<unsigned>(files_.size());
  }
  std::uint64_t stripe_bytes() const noexcept { return stripe_bytes_; }

  static std::string member_path(const std::string& base, unsigned index) {
    return base + ".s" + std::to_string(index);
  }

 private:
  std::vector<File> files_;
  std::uint64_t stripe_bytes_;
  std::uint64_t logical_size_ = 0;
};

}  // namespace gstore::io
