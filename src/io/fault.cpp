#include "io/fault.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "util/rng.h"
#include "util/status.h"

namespace gstore::io {

namespace {

double parse_probability(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0)
    throw InvalidArgument("fault-spec: " + key + "=" + text +
                          " is not a probability in [0, 1]");
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw InvalidArgument("fault-spec: " + key + "=" + text +
                          " is not an unsigned integer");
  return v;
}

// Per-read decision stream: every fault type gets an independent uniform
// draw derived from (seed, read index) alone, so the schedule is a pure
// function of the read sequence.
struct Draws {
  Draws(std::uint64_t seed, std::uint64_t read_idx) : state_(seed ^ (read_idx * 0x9e3779b97f4a7c15ULL + 1)) {}
  double uniform() {
    return static_cast<double>(splitmix64(state_) >> 11) * 0x1.0p-53;
  }
  std::uint64_t state_;
};

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw InvalidArgument("fault-spec: '" + item + "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_u64(key, val);
    } else if (key == "eio-nth") {
      spec.eio_nth = parse_u64(key, val);
    } else if (key == "eio") {
      spec.eio_rate = parse_probability(key, val);
    } else if (key == "eintr") {
      spec.eintr_rate = parse_probability(key, val);
    } else if (key == "eagain") {
      spec.eagain_rate = parse_probability(key, val);
    } else if (key == "short") {
      spec.short_rate = parse_probability(key, val);
    } else if (key == "torn-tail") {
      spec.torn_tail_bytes = parse_u64(key, val);
    } else if (key == "latency") {
      // latency=P:MS — probability and spike duration together.
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos)
        throw InvalidArgument("fault-spec: latency wants P:MS, got " + val);
      spec.latency_rate = parse_probability(key, val.substr(0, colon));
      char* end = nullptr;
      const std::string ms = val.substr(colon + 1);
      spec.latency_ms = std::strtod(ms.c_str(), &end);
      if (end == ms.c_str() || *end != '\0' || spec.latency_ms < 0)
        throw InvalidArgument("fault-spec: latency duration '" + ms +
                              "' is not a non-negative number");
    } else {
      throw InvalidArgument("fault-spec: unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (eio_nth != 0) os << ",eio-nth=" << eio_nth;
  if (eio_rate != 0) os << ",eio=" << eio_rate;
  if (eintr_rate != 0) os << ",eintr=" << eintr_rate;
  if (eagain_rate != 0) os << ",eagain=" << eagain_rate;
  if (short_rate != 0) os << ",short=" << short_rate;
  if (latency_rate != 0) os << ",latency=" << latency_rate << ":" << latency_ms;
  if (torn_tail_bytes != 0) os << ",torn-tail=" << torn_tail_bytes;
  return os.str();
}

FaultInjectingSource::FaultInjectingSource(std::unique_ptr<Source> inner,
                                           FaultSpec spec)
    : owned_(std::move(inner)), inner_(owned_.get()), spec_(spec) {
  GS_CHECK_MSG(inner_ != nullptr, "fault injection needs a source to wrap");
}

FaultInjectingSource::FaultInjectingSource(const Source& inner, FaultSpec spec)
    : inner_(&inner), spec_(spec) {}

std::uint64_t FaultInjectingSource::size() const {
  const std::uint64_t inner_size = inner_->size();
  return inner_size > spec_.torn_tail_bytes
             ? inner_size - spec_.torn_tail_bytes
             : 0;
}

std::size_t FaultInjectingSource::pread_some(void* buf, std::size_t n,
                                             std::uint64_t offset) const {
  const std::uint64_t idx =
      next_read_.fetch_add(1, std::memory_order_relaxed);
  Draws draws(spec_.seed, idx);
  // Order: latency (composes with any outcome), then hard errors by
  // increasing severity of the recovery they demand, then truncation.
  if (spec_.latency_rate > 0 && draws.uniform() < spec_.latency_rate) {
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(spec_.latency_ms));
  }
  if (spec_.eintr_rate > 0 && draws.uniform() < spec_.eintr_rate) {
    injected_eintr_.fetch_add(1, std::memory_order_relaxed);
    throw IoError("injected fault (read " + std::to_string(idx + 1) + ")",
                  EINTR);
  }
  if (spec_.eagain_rate > 0 && draws.uniform() < spec_.eagain_rate) {
    injected_eagain_.fetch_add(1, std::memory_order_relaxed);
    throw IoError("injected fault (read " + std::to_string(idx + 1) + ")",
                  EAGAIN);
  }
  if ((spec_.eio_nth != 0 && idx + 1 == spec_.eio_nth) ||
      (spec_.eio_rate > 0 && draws.uniform() < spec_.eio_rate)) {
    injected_eio_.fetch_add(1, std::memory_order_relaxed);
    throw IoError("injected fault (read " + std::to_string(idx + 1) + ")",
                  EIO);
  }
  // Torn tail: the file simply ends early; normal EOF clamping applies.
  const std::uint64_t effective_size = size();
  if (offset >= effective_size) return 0;
  std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, effective_size - offset));
  if (spec_.short_rate > 0 && want > 1 && draws.uniform() < spec_.short_rate) {
    injected_short_.fetch_add(1, std::memory_order_relaxed);
    // Keep at least one byte so a short read always makes progress — a
    // zero-byte mid-file read would be indistinguishable from EOF.
    want = 1 + static_cast<std::size_t>(draws.uniform() * (want - 1));
  }
  return inner_->pread_some(buf, want, offset);
}

FaultStats FaultInjectingSource::stats() const {
  FaultStats s;
  s.reads = next_read_.load(std::memory_order_relaxed);
  s.injected_eio = injected_eio_.load(std::memory_order_relaxed);
  s.injected_eintr = injected_eintr_.load(std::memory_order_relaxed);
  s.injected_eagain = injected_eagain_.load(std::memory_order_relaxed);
  s.injected_short = injected_short_.load(std::memory_order_relaxed);
  s.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gstore::io
