// Byte-range storage tiering (paper §IX future work: "extend G-Store to
// support even larger graphs on a tiered storage, where SSDs can be utilized
// with a set of hard drives").
//
// A TierMap assigns each byte range of the data file to tier 0 (fast, SSD)
// or tier 1 (slow, HDD). The Device charges each read against the throttle
// of the tier(s) it touches, so placement policy directly shapes runtime.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace gstore::io {

class TierMap {
 public:
  TierMap() = default;

  // Declares [begin, end) as belonging to `tier` (0 = fast, 1 = slow).
  // Ranges must be added in increasing, non-overlapping order.
  void add_range(std::uint64_t begin, std::uint64_t end, unsigned tier);

  bool empty() const noexcept { return ranges_.empty(); }

  // Splits a read [begin, end) into (fast_bytes, slow_bytes). Bytes outside
  // any declared range count as fast (tier 0).
  std::pair<std::uint64_t, std::uint64_t> split(std::uint64_t begin,
                                                std::uint64_t end) const;

  // Total bytes declared per tier.
  std::uint64_t tier_bytes(unsigned tier) const noexcept {
    return tier == 0 ? fast_total_ : slow_total_;
  }

 private:
  struct Range {
    std::uint64_t begin, end;
    unsigned tier;
  };
  std::vector<Range> ranges_;
  std::uint64_t fast_total_ = 0;
  std::uint64_t slow_total_ = 0;
};

}  // namespace gstore::io
