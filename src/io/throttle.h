// Bandwidth throttle emulating a storage device.
//
// Implemented as a virtual-time reservation queue: each acquire(bytes)
// reserves the next bytes/rate seconds of device time and sleeps until its
// reservation completes. Properties that matter for honest emulation:
//   * sustained rate is exact (reservations are back-to-back);
//   * idle time is lost (a disk cannot bank bandwidth while the CPU
//     computes) apart from one small `burst` worth of credit that models
//     request pipelining in the device;
//   * concurrent requesters serialize through the queue like commands at a
//     single device, so N-worker submission cannot exceed the device rate.
//
// Used to emulate SSD arrays (aggregate rate = devices × per-device rate)
// and HDD tiers for the scaling / tiered-storage experiments.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/sync.h"

namespace gstore::io {

class Throttle {
 public:
  // bytes_per_second == 0 disables throttling entirely.
  explicit Throttle(std::uint64_t bytes_per_second = 0,
                    std::uint64_t burst_bytes = 1 << 20);

  // Blocks until `bytes` of device time have been reserved and elapsed.
  void acquire(std::uint64_t bytes) GSTORE_EXCLUDES(mutex_);

  std::uint64_t rate() const noexcept {
    return rate_.load(std::memory_order_relaxed);
  }
  void set_rate(std::uint64_t bytes_per_second) GSTORE_EXCLUDES(mutex_);

  bool enabled() const noexcept { return rate() != 0; }

 private:
  using clock = std::chrono::steady_clock;

  Mutex mutex_{"Throttle::mutex_"};
  // cross-thread: acquire()'s disabled-throttle fast path and enabled() run
  // on I/O workers concurrently with set_rate() on the control thread, so
  // this is atomic rather than mutex-guarded.
  std::atomic<std::uint64_t> rate_;
  std::uint64_t burst_;  // set once at construction, read-only afterwards
  // when the device finishes current work
  clock::time_point next_free_ GSTORE_GUARDED_BY(mutex_);
};

}  // namespace gstore::io
