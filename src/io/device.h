// Storage device model: a file plus an optional emulated SSD-array profile.
//
// Device is the single entry point the engine uses to read graph data. It
// wires together the file, the async engine, a bandwidth throttle (for the
// SSD-scaling experiments), and I/O statistics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/async_engine.h"
#include "io/file.h"
#include "io/throttle.h"
#include "io/tiering.h"
#include "util/sync.h"

namespace gstore::io {

// Configuration for an emulated device array. With `devices == 0` (the
// default) reads run at native speed; otherwise aggregate bandwidth is
// devices × per_device_bw, modelling software RAID-0 over identical SSDs.
struct DeviceConfig {
  unsigned devices = 0;
  std::uint64_t per_device_bw = 500ull << 20;  // 500 MB/s, SATA-SSD class
  std::uint64_t burst_bytes = 1ull << 20;      // throttle token-bucket depth
  // Tiered storage (paper §IX future work): bandwidth of the slow tier
  // (e.g. an HDD). 0 disables tiering; byte placement comes from a TierMap
  // installed with set_tier_map().
  std::uint64_t slow_tier_bw = 0;
  // RAID-0 striping (the paper's testbed layout): with stripe_files > 0 the
  // device path is a striped-set base (<path>.s0 …) written by
  // io::stripe_file, read round-robin with stripe_bytes-sized stripes.
  unsigned stripe_files = 0;
  std::uint64_t stripe_bytes = 64 << 10;  // the paper's 64KB stripes
  Backend backend = Backend::kThreadPool;
  std::size_t queue_depth = 128;
  std::size_t io_workers = 4;
  bool direct = false;  // request O_DIRECT where the filesystem allows it
  // Bounded-retry contract applied by the async engine's workers (and the
  // synchronous baseline) to every read. See io/async_engine.h.
  RetryPolicy retry;
  // Fault injection (io/fault.h): when non-empty, the opened source is
  // wrapped in a FaultInjectingSource with FaultSpec::parse(fault_spec).
  // Drives `gstore_run --fault-spec` and the chaos tests; empty in
  // production use.
  std::string fault_spec;
};

struct DeviceStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t submit_calls = 0;
  // Recovery counters from the async engine (see RetryStats): how many
  // reads were retried, how many short reads were resubmitted for their
  // tail, how many exhausted the budget, and the total backoff slept.
  std::uint64_t retries = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t failed_reads = 0;
  double backoff_seconds = 0;
};

class Device {
 public:
  Device(const std::string& path, DeviceConfig config = {});

  // Synchronous full read (throttled).
  void read(void* buf, std::size_t n, std::uint64_t offset);

  // Batched asynchronous reads (throttled on submission, like a host-side
  // bandwidth limit). Completion via poll()/drain().
  void submit(std::vector<ReadRequest> batch);
  std::size_t poll(std::size_t min_events, std::size_t max_events,
                   std::vector<Completion>& out);
  void drain();
  // Waits out every in-flight request without throwing (unwind-path
  // barrier); returns the number of failed completions discarded.
  std::size_t quiesce() noexcept;

  const Source& file() const noexcept { return *source_; }
  std::uint64_t size() const { return source_->size(); }

  DeviceStats stats() const;
  void reset_stats();

  const DeviceConfig& config() const noexcept { return config_; }

  // Installs the byte-range → tier assignment. Only meaningful when
  // config.slow_tier_bw > 0. Safe to call while reads are in flight: the
  // map is swapped under a writer lock and each read routes under a reader
  // lock.
  void set_tier_map(TierMap map) GSTORE_EXCLUDES(tier_mutex_);
  // Snapshot of the installed map (by value: the member may be swapped by
  // set_tier_map() concurrently).
  TierMap tier_map() const GSTORE_EXCLUDES(tier_mutex_);

 private:
  // Computes the slow-tier portion of a read and returns request routing.
  std::pair<std::uint64_t, std::uint64_t> tier_split(std::uint64_t offset,
                                                     std::size_t n) const
      GSTORE_EXCLUDES(tier_mutex_);

  DeviceConfig config_;
  std::unique_ptr<Source> source_;
  Throttle throttle_;
  Throttle slow_throttle_;
  mutable SharedMutex tier_mutex_{"Device::tier_mutex_"};
  TierMap tier_map_ GSTORE_GUARDED_BY(tier_mutex_);
  AsyncEngine engine_;
  // cross-thread: TileStore advertises thread-compatible concurrent reads,
  // so the stats counters read()/submit() bump must be atomic.
  std::atomic<std::uint64_t> read_ops_{0};
  // cross-thread (same contract as read_ops_).
  std::atomic<std::uint64_t> sync_bytes_{0};
  mutable Mutex stats_mutex_{"Device::stats_mutex_"};
  std::uint64_t stats_bytes_base_ GSTORE_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stats_submit_base_ GSTORE_GUARDED_BY(stats_mutex_) = 0;
  RetryStats stats_retry_base_ GSTORE_GUARDED_BY(stats_mutex_);
};

}  // namespace gstore::io
