#include "io/device.h"

#include "io/fault.h"
#include "io/striped.h"
#include "util/status.h"

namespace gstore::io {

namespace {
std::uint64_t aggregate_bw(const DeviceConfig& c) {
  return c.devices == 0 ? 0 : c.devices * c.per_device_bw;
}

std::unique_ptr<Source> open_source(const std::string& path,
                                    const DeviceConfig& c) {
  std::unique_ptr<Source> src;
  if (c.stripe_files > 0)
    src = std::make_unique<StripedFile>(path, c.stripe_files, c.stripe_bytes,
                                        c.direct);
  else
    src = std::make_unique<File>(path, OpenMode::kRead, c.direct);
  if (!c.fault_spec.empty()) {
    const FaultSpec spec = FaultSpec::parse(c.fault_spec);
    if (!spec.empty())
      src = std::make_unique<FaultInjectingSource>(std::move(src), spec);
  }
  return src;
}
}  // namespace

Device::Device(const std::string& path, DeviceConfig config)
    : config_(config),
      source_(open_source(path, config)),
      throttle_(aggregate_bw(config), config.burst_bytes),
      slow_throttle_(config.slow_tier_bw, config.burst_bytes),
      engine_(config.backend, config.queue_depth, config.io_workers,
              config.retry) {}

void Device::set_tier_map(TierMap map) {
  WriterMutexLock lock(tier_mutex_);
  tier_map_ = std::move(map);
}

TierMap Device::tier_map() const {
  ReaderMutexLock lock(tier_mutex_);
  return tier_map_;
}

std::pair<std::uint64_t, std::uint64_t> Device::tier_split(
    std::uint64_t offset, std::size_t n) const {
  ReaderMutexLock lock(tier_mutex_);
  if (config_.slow_tier_bw == 0 || tier_map_.empty())
    return {n, 0};
  return tier_map_.split(offset, offset + n);
}

void Device::read(void* buf, std::size_t n, std::uint64_t offset) {
  const auto [fast, slow] = tier_split(offset, n);
  throttle_.acquire(fast);
  if (slow > 0) slow_throttle_.acquire(slow);
  // The synchronous path honors the same retry contract as the async
  // workers for interrupted/transient errors, so `gstore_run --fault-spec`
  // behaves the same in overlap and no-overlap modes. Failures past the
  // budget propagate as the IoError they are.
  int transient_attempts = 0;
  int interrupt_attempts = 0;
  for (;;) {
    try {
      source_->pread_full(buf, n, offset);
      break;
    } catch (const IoError& e) {
      switch (classify_errno(e.sys_errno())) {
        case ErrnoClass::kInterrupted:
          if (++interrupt_attempts <= config_.retry.max_interrupts) continue;
          break;
        case ErrnoClass::kTransient:
          if (++transient_attempts <= config_.retry.max_retries) continue;
          break;
        case ErrnoClass::kPermanent:
          break;
      }
      throw;
    }
  }
  sync_bytes_.fetch_add(n, std::memory_order_relaxed);
  read_ops_.fetch_add(1, std::memory_order_relaxed);
}

void Device::submit(std::vector<ReadRequest> batch) {
  for (auto& req : batch) {
    req.file = source_.get();
    // Pacing happens on the I/O workers so emulated device time overlaps
    // with compute, exactly like a real disk.
    req.throttle = throttle_.enabled() ? &throttle_ : nullptr;
    const auto [fast, slow] = tier_split(req.offset, req.length);
    (void)fast;
    if (slow > 0) {
      req.slow_throttle = &slow_throttle_;
      req.slow_bytes = static_cast<std::size_t>(slow);
    }
  }
  read_ops_.fetch_add(batch.size(), std::memory_order_relaxed);
  engine_.submit(batch);
}

std::size_t Device::poll(std::size_t min_events, std::size_t max_events,
                         std::vector<Completion>& out) {
  return engine_.poll(min_events, max_events, out);
}

void Device::drain() { engine_.drain(); }

std::size_t Device::quiesce() noexcept { return engine_.quiesce(); }

DeviceStats Device::stats() const {
  MutexLock lock(stats_mutex_);
  DeviceStats s;
  s.bytes_read = engine_.bytes_read() - stats_bytes_base_ +
                 sync_bytes_.load(std::memory_order_relaxed);
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.submit_calls = engine_.submit_calls() - stats_submit_base_;
  const RetryStats r = engine_.retry_stats();
  s.retries = r.retries - stats_retry_base_.retries;
  s.short_reads = r.short_reads - stats_retry_base_.short_reads;
  s.failed_reads = r.failed_reads - stats_retry_base_.failed_reads;
  s.backoff_seconds = r.backoff_seconds - stats_retry_base_.backoff_seconds;
  return s;
}

void Device::reset_stats() {
  MutexLock lock(stats_mutex_);
  stats_bytes_base_ = engine_.bytes_read();
  stats_submit_base_ = engine_.submit_calls();
  stats_retry_base_ = engine_.retry_stats();
  sync_bytes_.store(0, std::memory_order_relaxed);
  read_ops_.store(0, std::memory_order_relaxed);
}

}  // namespace gstore::io
