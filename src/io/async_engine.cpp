#include "io/async_engine.h"

#include <atomic>
#include <deque>
#include <thread>

#include "io/throttle.h"
#include "util/dcheck.h"
#include "util/status.h"
#include "util/sync.h"

namespace gstore::io {

struct AsyncEngine::Impl {
  explicit Impl(Backend backend, std::size_t depth, std::size_t workers)
      : backend(backend), depth(depth == 0 ? 1 : depth) {
    if (backend == Backend::kThreadPool) {
      if (workers == 0) workers = 1;
      threads.reserve(workers);
      for (std::size_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      stopping = true;
    }
    queue_cv.notify_all();
    for (auto& t : threads) t.join();
  }

  Completion execute(const ReadRequest& req) {
    Completion c;
    c.tag = req.tag;
    try {
      if (req.throttle != nullptr)
        req.throttle->acquire(req.length - req.slow_bytes);
      if (req.slow_throttle != nullptr && req.slow_bytes > 0)
        req.slow_throttle->acquire(req.slow_bytes);
      c.bytes = req.file->pread_some(req.buffer, req.length, req.offset);
      c.ok = true;
      bytes_read.fetch_add(c.bytes, std::memory_order_relaxed);
    } catch (const Error&) {
      c.bytes = 0;
      c.ok = false;
    }
    return c;
  }

  void worker_loop() {
    for (;;) {
      ReadRequest req;
      {
        MutexLock lock(mutex);
        while (!stopping && pending.empty()) queue_cv.wait(mutex);
        if (pending.empty()) return;  // stopping and drained
        req = pending.front();
        pending.pop_front();
      }
      Completion c = execute(req);
      {
        MutexLock lock(mutex);
        completed.push_back(c);
        GSTORE_DCHECK_GT(inflight, 0);
        --inflight;
      }
      done_cv.notify_all();
      space_cv.notify_all();
    }
  }

  Backend backend;
  std::size_t depth;
  // cross-thread: bumped by I/O workers inside execute(), read lock-free by
  // the accessors; everything else below is guarded by `mutex`.
  std::atomic<std::uint64_t> bytes_read{0};
  // cross-thread (same contract as bytes_read).
  std::atomic<std::uint64_t> submit_calls{0};

  Mutex mutex{"AsyncEngine::mutex"};
  CondVar queue_cv;   // workers wait for pending requests
  CondVar done_cv;    // pollers wait for completions
  CondVar space_cv;   // submitters wait for queue space
  std::deque<ReadRequest> pending GSTORE_GUARDED_BY(mutex);
  std::deque<Completion> completed GSTORE_GUARDED_BY(mutex);
  std::size_t inflight GSTORE_GUARDED_BY(mutex) = 0;  // pending + executing
  bool stopping GSTORE_GUARDED_BY(mutex) = false;
  std::vector<std::thread> threads;
};

AsyncEngine::AsyncEngine(Backend backend, std::size_t depth, std::size_t workers)
    : impl_(std::make_unique<Impl>(backend, depth, workers)), backend_(backend) {}

AsyncEngine::~AsyncEngine() = default;

void AsyncEngine::submit(const std::vector<ReadRequest>& batch) {
  impl_->submit_calls.fetch_add(1, std::memory_order_relaxed);
  for (const auto& req : batch) {
    GS_CHECK_MSG(req.file != nullptr, "read request without a source");
    GS_CHECK_MSG(req.buffer != nullptr || req.length == 0,
                 "read request with null buffer");
  }

  if (backend_ == Backend::kSync) {
    // The synchronous baseline performs the reads inline, in submit order.
    std::vector<Completion> results;
    results.reserve(batch.size());
    for (const auto& req : batch) results.push_back(impl_->execute(req));
    {
      MutexLock lock(impl_->mutex);
      for (const auto& c : results) impl_->completed.push_back(c);
    }
    impl_->done_cv.notify_all();
    return;
  }

  for (const auto& req : batch) {
    {
      MutexLock lock(impl_->mutex);
      while (impl_->inflight >= impl_->depth) impl_->space_cv.wait(impl_->mutex);
      impl_->pending.push_back(req);
      ++impl_->inflight;
      GSTORE_DCHECK_LE(impl_->inflight, impl_->depth);
      GSTORE_DCHECK_LE(impl_->pending.size(), impl_->inflight);
    }
    impl_->queue_cv.notify_one();
  }
}

std::size_t AsyncEngine::poll(std::size_t min_events, std::size_t max_events,
                              std::vector<Completion>& out) {
  if (max_events == 0) return 0;
  MutexLock lock(impl_->mutex);
  if (min_events > 0) {
    while (impl_->completed.size() < min_events &&
           impl_->completed.size() + impl_->inflight >= min_events)
      impl_->done_cv.wait(impl_->mutex);
    GS_CHECK_MSG(impl_->completed.size() + impl_->inflight >= min_events ||
                     !impl_->completed.empty(),
                 "poll(min) exceeds outstanding requests");
  }
  std::size_t n = 0;
  while (n < max_events && !impl_->completed.empty()) {
    out.push_back(impl_->completed.front());
    impl_->completed.pop_front();
    ++n;
  }
  return n;
}

void AsyncEngine::drain() {
  std::vector<Completion> done;
  for (;;) {
    {
      MutexLock lock(impl_->mutex);
      while (impl_->inflight != 0 && impl_->completed.empty())
        impl_->done_cv.wait(impl_->mutex);
      while (!impl_->completed.empty()) {
        done.push_back(impl_->completed.front());
        impl_->completed.pop_front();
      }
      if (impl_->inflight == 0 && impl_->completed.empty()) break;
    }
  }
  for (const auto& c : done)
    if (!c.ok) throw IoError("async read failed (tag " + std::to_string(c.tag) + ")", EIO);
}

std::size_t AsyncEngine::in_flight() const {
  MutexLock lock(impl_->mutex);
  return impl_->inflight;
}

std::uint64_t AsyncEngine::bytes_read() const noexcept {
  return impl_->bytes_read.load(std::memory_order_relaxed);
}

std::uint64_t AsyncEngine::submit_calls() const noexcept {
  return impl_->submit_calls.load(std::memory_order_relaxed);
}

}  // namespace gstore::io
