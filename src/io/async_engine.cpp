#include "io/async_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "io/throttle.h"
#include "util/dcheck.h"
#include "util/status.h"
#include "util/sync.h"

namespace gstore::io {

ErrnoClass classify_errno(int err) noexcept {
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return ErrnoClass::kInterrupted;
    case EIO:
    case ENOMEM:
    case EBUSY:
    case ETIMEDOUT:
    case ENOSPC:
      return ErrnoClass::kTransient;
    default:
      return ErrnoClass::kPermanent;
  }
}

struct AsyncEngine::Impl {
  explicit Impl(Backend backend, std::size_t depth, std::size_t workers,
                RetryPolicy retry)
      : backend(backend), depth(depth == 0 ? 1 : depth), retry(retry) {
    if (backend == Backend::kThreadPool) {
      if (workers == 0) workers = 1;
      threads.reserve(workers);
      for (std::size_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      stopping = true;
    }
    queue_cv.notify_all();
    for (auto& t : threads) t.join();
  }

  void sleep_backoff(int transient_attempt) {
    const double ms =
        std::min(retry.backoff_initial_ms *
                     static_cast<double>(1ull << std::min(transient_attempt, 30)),
                 retry.backoff_max_ms);
    backoff_micros.fetch_add(static_cast<std::uint64_t>(ms * 1000.0),
                             std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }

  // Executes one request to a final completion, performing all recovery
  // inline on the calling thread: transient errors retry with exponential
  // backoff, interrupt storms reissue against a separate budget, and short
  // reads before EOF resubmit the missing tail. Never throws — any
  // exception (including non-gstore ones like std::bad_alloc: a worker that
  // lets one escape takes the whole process down via std::terminate)
  // becomes a failed completion carrying the errno and message.
  Completion execute(const ReadRequest& req) {
    Completion c;
    c.tag = req.tag;
    std::size_t done = 0;       // bytes delivered so far (across resubmits)
    int transient_attempts = 0;
    int interrupt_attempts = 0;
    for (;;) {
      try {
        const std::size_t remaining = req.length - done;
        if (done == 0) {
          if (req.throttle != nullptr)
            req.throttle->acquire(req.length - req.slow_bytes);
          if (req.slow_throttle != nullptr && req.slow_bytes > 0)
            req.slow_throttle->acquire(req.slow_bytes);
        } else if (req.throttle != nullptr) {
          // Tail resubmit / retry: re-charge only the bytes about to be
          // re-read, against the fast tier (per-range tier attribution is
          // not worth recomputing for an emulated profile's error path).
          req.throttle->acquire(remaining);
        }
        const std::size_t got = req.length == 0
                                    ? 0
                                    : req.file->pread_some(req.buffer + done,
                                                           remaining,
                                                           req.offset + done);
        bytes_read.fetch_add(got, std::memory_order_relaxed);
        done += got;
        if (done == req.length || req.length == 0) {
          c.bytes = done;
          c.ok = true;
          return c;
        }
        // Short read. Distinguish EOF (legitimate: the caller asked past
        // the end) from a mid-file truncation the source may yet serve.
        if (!retry.resubmit_short_reads ||
            req.offset + done >= req.file->size()) {
          c.bytes = done;
          c.ok = true;
          return c;
        }
        if (got == 0) {
          // The source claims more bytes exist but delivers none — without
          // this guard a truncated striped member would spin forever.
          c.bytes = done;
          c.ok = false;
          c.error = EIO;
          c.message = "read stalled at " + std::to_string(done) + "/" +
                      std::to_string(req.length) + " bytes (source reports " +
                      std::to_string(req.file->size()) + " total)";
          failed_reads.fetch_add(1, std::memory_order_relaxed);
          return c;
        }
        short_reads.fetch_add(1, std::memory_order_relaxed);
        continue;  // resubmit the tail
      } catch (const IoError& e) {
        const int err = e.sys_errno();
        switch (classify_errno(err)) {
          case ErrnoClass::kInterrupted:
            if (++interrupt_attempts <= retry.max_interrupts) {
              retries.fetch_add(1, std::memory_order_relaxed);
              continue;  // reissue immediately; interrupts carry no backoff
            }
            break;
          case ErrnoClass::kTransient:
            if (++transient_attempts <= retry.max_retries) {
              retries.fetch_add(1, std::memory_order_relaxed);
              sleep_backoff(transient_attempts - 1);
              continue;
            }
            break;
          case ErrnoClass::kPermanent:
            break;
        }
        c.bytes = done;
        c.ok = false;
        c.error = err;
        c.message = e.what();
      } catch (const std::exception& e) {
        c.bytes = done;
        c.ok = false;
        c.error = EIO;
        c.message = e.what();
      } catch (...) {
        c.bytes = done;
        c.ok = false;
        c.error = EIO;
        c.message = "unknown exception during read";
      }
      failed_reads.fetch_add(1, std::memory_order_relaxed);
      return c;
    }
  }

  // Collects every outstanding completion: waits until nothing is in
  // flight, then moves the whole completed queue out. Shared by drain() and
  // quiesce() so both keep in_flight() consistent and leave nothing behind.
  std::vector<Completion> reap_all() {
    // Swap the queue out under the lock, then build the result outside
    // it: reserve/push_back can take the allocator lock or fault pages,
    // and I/O workers would stall behind `mutex` for the duration.
    std::deque<Completion> drained;
    {
      MutexLock lock(mutex);
      // Workers only ever move inflight toward zero (this engine has no
      // requeue), so a single wait suffices; nothing is popped until
      // everything has landed.
      while (inflight != 0) done_cv.wait(mutex);
      drained.swap(completed);
    }
    std::vector<Completion> done;
    done.reserve(drained.size());
    for (Completion& c : drained) done.push_back(std::move(c));
    return done;
  }

  void worker_loop() {
    for (;;) {
      ReadRequest req;
      {
        MutexLock lock(mutex);
        while (!stopping && pending.empty()) queue_cv.wait(mutex);
        if (pending.empty()) return;  // stopping and drained
        req = pending.front();
        pending.pop_front();
      }
      Completion c = execute(req);
      {
        MutexLock lock(mutex);
        // GL-SAFE(GL1): one-element handoff; the deque grows by at most a
        // block and the alternative is an extra copy on every completion.
        completed.push_back(std::move(c));
        GSTORE_DCHECK_GT(inflight, 0);
        --inflight;
      }
      done_cv.notify_all();
      space_cv.notify_all();
    }
  }

  Backend backend;
  std::size_t depth;
  RetryPolicy retry;
  // cross-thread: bumped by I/O workers inside execute(), read lock-free by
  // the accessors; everything else below is guarded by `mutex`.
  std::atomic<std::uint64_t> bytes_read{0};
  // cross-thread (same contract as bytes_read).
  std::atomic<std::uint64_t> submit_calls{0};
  // cross-thread (same contract as bytes_read).
  std::atomic<std::uint64_t> retries{0};
  // cross-thread (same contract as bytes_read).
  std::atomic<std::uint64_t> short_reads{0};
  // cross-thread (same contract as bytes_read).
  std::atomic<std::uint64_t> failed_reads{0};
  // cross-thread (same contract as bytes_read).
  std::atomic<std::uint64_t> backoff_micros{0};

  Mutex mutex{"AsyncEngine::mutex"};
  CondVar queue_cv;   // workers wait for pending requests
  CondVar done_cv;    // pollers wait for completions
  CondVar space_cv;   // submitters wait for queue space
  std::deque<ReadRequest> pending GSTORE_GUARDED_BY(mutex);
  std::deque<Completion> completed GSTORE_GUARDED_BY(mutex);
  std::size_t inflight GSTORE_GUARDED_BY(mutex) = 0;  // pending + executing
  bool stopping GSTORE_GUARDED_BY(mutex) = false;
  std::vector<std::thread> threads;
};

AsyncEngine::AsyncEngine(Backend backend, std::size_t depth,
                         std::size_t workers, RetryPolicy retry)
    : impl_(std::make_unique<Impl>(backend, depth, workers, retry)),
      backend_(backend) {}

AsyncEngine::~AsyncEngine() = default;

void AsyncEngine::submit(const std::vector<ReadRequest>& batch) {
  impl_->submit_calls.fetch_add(1, std::memory_order_relaxed);
  for (const auto& req : batch) {
    GS_CHECK_MSG(req.file != nullptr, "read request without a source");
    GS_CHECK_MSG(req.buffer != nullptr || req.length == 0,
                 "read request with null buffer");
  }

  if (backend_ == Backend::kSync) {
    // The synchronous baseline performs the reads inline, in submit order.
    std::vector<Completion> results;
    results.reserve(batch.size());
    for (const auto& req : batch) results.push_back(impl_->execute(req));
    {
      MutexLock lock(impl_->mutex);
      // GL-SAFE(GL1): batch publish point — results were produced outside
      // the lock; the pushes are the handoff itself.
      for (auto& c : results) impl_->completed.push_back(std::move(c));
    }
    impl_->done_cv.notify_all();
    return;
  }

  for (const auto& req : batch) {
    {
      MutexLock lock(impl_->mutex);
      while (impl_->inflight >= impl_->depth) impl_->space_cv.wait(impl_->mutex);
      // Priority order: insert before the first pending request with a
      // strictly greater priority value. Equal priorities stay FIFO, so the
      // default (priority 0 everywhere) degenerates to the old push_back,
      // and within one worklist round the layout-ascending submit order —
      // hence sequential I/O — is preserved. The deque is bounded by
      // `depth`, so the linear insert touches at most `depth` entries.
      const auto at = std::upper_bound(
          impl_->pending.begin(), impl_->pending.end(), req,
          [](const ReadRequest& a, const ReadRequest& b) {
            return a.priority < b.priority;
          });
      // GL-SAFE(GL1): one-element enqueue under the queue's own lock; the
      // deque is bounded by `depth`, so growth is bounded too.
      impl_->pending.insert(at, req);
      ++impl_->inflight;
      GSTORE_DCHECK_LE(impl_->inflight, impl_->depth);
      GSTORE_DCHECK_LE(impl_->pending.size(), impl_->inflight);
    }
    impl_->queue_cv.notify_one();
  }
}

std::size_t AsyncEngine::poll(std::size_t min_events, std::size_t max_events,
                              std::vector<Completion>& out) {
  if (max_events == 0) return 0;
  MutexLock lock(impl_->mutex);
  if (min_events > 0) {
    while (impl_->completed.size() < min_events &&
           impl_->completed.size() + impl_->inflight >= min_events)
      impl_->done_cv.wait(impl_->mutex);
    GS_CHECK_MSG(impl_->completed.size() + impl_->inflight >= min_events ||
                     !impl_->completed.empty(),
                 "poll(min) exceeds outstanding requests");
  }
  std::size_t n = 0;
  while (n < max_events && !impl_->completed.empty()) {
    // GL-SAFE(GL1): poll's contract is to move completions into the
    // caller's vector; callers reserve `max_events` ahead of the call.
    out.push_back(std::move(impl_->completed.front()));
    impl_->completed.pop_front();
    ++n;
  }
  return n;
}

void AsyncEngine::drain() {
  const std::vector<Completion> done = impl_->reap_all();
  // Everything is reaped and in_flight() == 0; only now report failures —
  // all of them, in one exception, so callers see the full blast radius
  // instead of the first unlucky tag.
  std::size_t failures = 0;
  int first_error = EIO;
  std::string tags;
  for (const auto& c : done) {
    if (c.ok) continue;
    if (failures == 0) first_error = c.error != 0 ? c.error : EIO;
    if (failures > 0) tags += ", ";
    tags += std::to_string(c.tag);
    if (!c.message.empty() && failures == 0) tags += " (" + c.message + ")";
    ++failures;
  }
  if (failures > 0)
    throw IoError("async read failed for " + std::to_string(failures) +
                      " request(s), tags: " + tags,
                  first_error);
}

std::size_t AsyncEngine::quiesce() noexcept {
  try {
    const std::vector<Completion> done = impl_->reap_all();
    std::size_t failures = 0;
    for (const auto& c : done)
      if (!c.ok) ++failures;
    return failures;
  } catch (...) {
    // reap_all only allocates; on allocation failure there is nothing more
    // a quiescing unwind path can do.
    return 0;
  }
}

std::size_t AsyncEngine::in_flight() const {
  MutexLock lock(impl_->mutex);
  return impl_->inflight;
}

std::uint64_t AsyncEngine::bytes_read() const noexcept {
  return impl_->bytes_read.load(std::memory_order_relaxed);
}

std::uint64_t AsyncEngine::submit_calls() const noexcept {
  return impl_->submit_calls.load(std::memory_order_relaxed);
}

RetryStats AsyncEngine::retry_stats() const noexcept {
  RetryStats s;
  s.retries = impl_->retries.load(std::memory_order_relaxed);
  s.short_reads = impl_->short_reads.load(std::memory_order_relaxed);
  s.failed_reads = impl_->failed_reads.load(std::memory_order_relaxed);
  s.backoff_seconds =
      static_cast<double>(
          impl_->backoff_micros.load(std::memory_order_relaxed)) /
      1e6;
  return s;
}

const RetryPolicy& AsyncEngine::retry_policy() const noexcept {
  return impl_->retry;
}

}  // namespace gstore::io
