#include "io/throttle.h"

#include <algorithm>
#include <thread>

namespace gstore::io {

Throttle::Throttle(std::uint64_t bytes_per_second, std::uint64_t burst_bytes)
    : rate_(bytes_per_second),
      burst_(std::max<std::uint64_t>(burst_bytes, 4 << 10)),
      next_free_(clock::now()) {}

void Throttle::set_rate(std::uint64_t bytes_per_second) {
  MutexLock lock(mutex_);
  rate_.store(bytes_per_second, std::memory_order_relaxed);
  next_free_ = clock::now();
}

void Throttle::acquire(std::uint64_t bytes) {
  if (rate() == 0) return;
  clock::time_point finish;
  {
    MutexLock lock(mutex_);
    // Re-read under the lock so one consistent rate prices this reservation
    // even if set_rate() lands between the fast path and here.
    const double rate = static_cast<double>(rate_.load(std::memory_order_relaxed));
    if (rate == 0) return;
    const auto now = clock::now();
    // The device may have been idle: it cannot bank that time, except for a
    // small burst of pipelined work.
    const auto burst_credit =
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(static_cast<double>(burst_) / rate));
    const auto start = std::max(now - burst_credit, next_free_);
    const auto cost = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double>(static_cast<double>(bytes) / rate));
    finish = start + cost;
    next_free_ = finish;
  }
  std::this_thread::sleep_until(finish);
}

}  // namespace gstore::io
