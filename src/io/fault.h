// I/O fault injection: a Source wrapper that fails reads on a deterministic,
// seeded schedule.
//
// Disk-backed engines corrupt results on the error path, not the happy path
// (FlashGraph and GraphChi-DB both grew their recovery layers after field
// failures). This wrapper lets every recovery mechanism in the stack —
// AsyncEngine's retry/backoff, ScrEngine's segment quiesce, WAL torn-tail
// replay — be exercised forever in ordinary unit tests and from the command
// line (`gstore_run --fault-spec=...`), instead of waiting for a dying SSD.
//
// Faults are drawn per read call from a counter-indexed splitmix64 stream,
// so a given (seed, read-index) pair always yields the same decision: a
// single-threaded read sequence replays bit-identically, and a concurrent
// one is reproducible up to read-arrival order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "io/source.h"

namespace gstore::io {

// What to inject, parsed from a compact `key=value[,key=value...]` spec:
//
//   seed=N        stream seed (default 1)
//   eio-nth=N     exactly one EIO on the Nth read call (1-based; 0 = never)
//   eio=P         per-read probability of an EIO failure
//   eintr=P       per-read probability of an EINTR failure (syscall interrupt)
//   eagain=P      per-read probability of an EAGAIN failure
//   short=P       per-read probability the read returns fewer bytes than asked
//   latency=P:MS  per-read probability P of sleeping MS milliseconds
//   torn-tail=N   the file appears N bytes shorter than it is (models a torn
//                 append for WAL replay; reads are clamped to the new size)
//
// Example: --fault-spec="seed=7,eintr=0.2,short=0.1,eio-nth=40"
struct FaultSpec {
  std::uint64_t seed = 1;
  std::uint64_t eio_nth = 0;
  double eio_rate = 0;
  double eintr_rate = 0;
  double eagain_rate = 0;
  double short_rate = 0;
  double latency_rate = 0;
  double latency_ms = 0;
  std::uint64_t torn_tail_bytes = 0;

  // True when no fault can ever fire (the wrapper is then a pass-through).
  bool empty() const noexcept {
    return eio_nth == 0 && eio_rate == 0 && eintr_rate == 0 &&
           eagain_rate == 0 && short_rate == 0 && latency_rate == 0 &&
           torn_tail_bytes == 0;
  }

  // Parses the spec grammar above; throws InvalidArgument on unknown keys,
  // malformed numbers, or probabilities outside [0, 1].
  static FaultSpec parse(const std::string& text);
  std::string to_string() const;
};

// Counts of injected events, for tests and tool output.
struct FaultStats {
  std::uint64_t reads = 0;
  std::uint64_t injected_eio = 0;
  std::uint64_t injected_eintr = 0;
  std::uint64_t injected_eagain = 0;
  std::uint64_t injected_short = 0;
  std::uint64_t latency_spikes = 0;
};

class FaultInjectingSource final : public Source {
 public:
  // Owning: the wrapper keeps `inner` alive (Device's wiring).
  FaultInjectingSource(std::unique_ptr<Source> inner, FaultSpec spec);
  // Non-owning: `inner` must outlive the wrapper (test wiring).
  FaultInjectingSource(const Source& inner, FaultSpec spec);

  // Draws this call's fault from the schedule, then either throws IoError
  // (EIO/EINTR/EAGAIN), truncates the read, sleeps, or forwards unchanged.
  // Reads are always clamped to size() so a torn tail behaves exactly like
  // a shorter file.
  std::size_t pread_some(void* buf, std::size_t n,
                         std::uint64_t offset) const override;

  // Inner size minus the torn tail (never underflows).
  std::uint64_t size() const override;

  const FaultSpec& spec() const noexcept { return spec_; }
  FaultStats stats() const;

 private:
  std::unique_ptr<Source> owned_;
  const Source* inner_;
  FaultSpec spec_;
  // cross-thread: read index and stats counters are bumped by concurrent
  // I/O workers (pread_some is const and thread-compatible like any Source).
  mutable std::atomic<std::uint64_t> next_read_{0};
  // cross-thread (same contract as next_read_).
  mutable std::atomic<std::uint64_t> injected_eio_{0};
  // cross-thread (same contract as next_read_).
  mutable std::atomic<std::uint64_t> injected_eintr_{0};
  // cross-thread (same contract as next_read_).
  mutable std::atomic<std::uint64_t> injected_eagain_{0};
  // cross-thread (same contract as next_read_).
  mutable std::atomic<std::uint64_t> injected_short_{0};
  // cross-thread (same contract as next_read_).
  mutable std::atomic<std::uint64_t> latency_spikes_{0};
};

}  // namespace gstore::io
