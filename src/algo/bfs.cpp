#include "algo/bfs.h"

#include "algo/atomics.h"
#include "util/status.h"

namespace gstore::algo {

void TileBfs::init(const tile::TileStore& store) {
  const auto& meta = store.meta();
  symmetric_ = meta.symmetric();
  in_edges_ = meta.in_edges();
  tile_bits_ = meta.tile_bits;
  GS_CHECK_MSG(root_ < store.vertex_count(), "BFS root out of range");

  depth_.assign(store.vertex_count(), kUnvisited);
  frontier_row_cur_.assign(store.grid().p(), 0);
  frontier_row_next_.assign(store.grid().p(), 0);

  level_ = 0;
  visited_ = 1;
  newly_visited_ = 0;
  depth_[root_] = 0;
  frontier_row_cur_[root_ >> tile_bits_] = 1;
}

void TileBfs::begin_iteration(std::uint32_t) { newly_visited_ = 0; }

void TileBfs::visit(graph::vid_t v, std::int32_t next_level) {
  if (atomic_cas(&depth_[v], kUnvisited, next_level)) {
    atomic_set_flag(&frontier_row_next_[v >> tile_bits_]);
    std::atomic_ref<std::uint64_t>(newly_visited_)
        .fetch_add(1, std::memory_order_relaxed);
  }
}

void TileBfs::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileBfs::process_block(const tile::EdgeBlock& block) {
  // For in-edge stores the tuple is (dst, src): `from` is then the head of
  // the original edge and `to` its tail, so the frontier test flips.
  const graph::vid_t* from = in_edges_ ? block.dst : block.src;
  const graph::vid_t* to = in_edges_ ? block.src : block.dst;
  block.prefetch_src(depth_.data());
  block.prefetch_dst(depth_.data());
  const std::int32_t next_level = level_ + 1;
  for (std::uint32_t k = 0; k < block.size; ++k) {
    if (atomic_load(&depth_[from[k]]) == level_ &&
        atomic_load(&depth_[to[k]]) == kUnvisited)
      visit(to[k], next_level);
    if (symmetric_ && atomic_load(&depth_[to[k]]) == level_ &&
        atomic_load(&depth_[from[k]]) == kUnvisited)
      visit(from[k], next_level);  // Algorithm 1 lines 8-10
  }
}

bool TileBfs::end_iteration(std::uint32_t) {
  visited_ += newly_visited_;
  ++level_;
  frontier_row_cur_.swap(frontier_row_next_);
  std::fill(frontier_row_next_.begin(), frontier_row_next_.end(), 0);
  return newly_visited_ > 0;
}

bool TileBfs::tile_needed(std::uint32_t i, std::uint32_t j) const {
  // A tile can generate visits only if a frontier vertex lies in its source
  // range — or, on symmetric stores, its destination range.
  if (frontier_row_cur_[in_edges_ ? j : i]) return true;
  return symmetric_ && frontier_row_cur_[j];
}

bool TileBfs::tile_useful_next(std::uint32_t i, std::uint32_t j) const {
  if (frontier_row_next_[in_edges_ ? j : i]) return true;
  return symmetric_ && frontier_row_next_[j];
}

std::uint32_t TileBfs::tile_priority(std::uint32_t i, std::uint32_t j) const {
  // All frontier rows share one level, so every needed tile lands in the
  // same bucket and a round drains exactly the current level's tiles.
  return tile_needed(i, j) ? static_cast<std::uint32_t>(level_)
                           : kPriorityIdle;
}

bool TileBfs::end_round(std::uint32_t round, std::uint32_t) {
  // Collect the rows whose priority the round changed *before*
  // end_iteration swaps the frontier flags away: the drained current
  // frontier (those tiles go idle or move to the next level) and the newly
  // discovered one (those tiles enter the next bucket).
  dirty_rows_.clear();
  for (std::uint32_t r = 0; r < frontier_row_cur_.size(); ++r)
    if (frontier_row_cur_[r] || frontier_row_next_[r])
      dirty_rows_.push_back(r);
  return end_iteration(round);
}

bool TileBfs::dirty_rows(std::vector<std::uint32_t>& out) const {
  out.insert(out.end(), dirty_rows_.begin(), dirty_rows_.end());
  return true;
}

}  // namespace gstore::algo
