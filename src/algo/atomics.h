// Lock-free update helpers for algorithm metadata. process_tile() runs
// concurrently across tiles (OpenMP), so metadata writes go through these.
// When the process runs single-threaded (this is detected once at startup),
// the helpers take plain non-atomic paths — a CAS loop per edge would
// otherwise dominate single-core runs and distort engine comparisons.
#pragma once

#include <atomic>
#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gstore::algo {

inline bool concurrent_execution() noexcept {
#ifdef _OPENMP
  static const bool multi = omp_get_max_threads() > 1;
  return multi;
#else
  return false;  // engine parallelism comes from OpenMP only
#endif
}

// Relaxed read of a location that concurrent workers may be writing through
// the helpers below. When tiles are processed in parallel, a plain load from
// e.g. depth_[v] races with another worker's CAS on the same element — that
// is UB (and a TSan report) even though the algorithms tolerate stale values.
// The relaxed atomic load has identical codegen on x86 and keeps the
// tolerate-staleness semantics data-race-free.
template <typename T>
inline T atomic_load(const T* p) noexcept {
  if (!concurrent_execution()) return *p;
  // atomic_ref<const T> is C++26; the const_cast is safe because we only load.
  return std::atomic_ref<T>(*const_cast<T*>(p)).load(std::memory_order_relaxed);
}

// Atomically sets *p to min(*p, val); returns true if it lowered the value.
template <typename T>
inline bool atomic_min(T* p, T val) noexcept {
  if (!concurrent_execution()) {
    if (val < *p) {
      *p = val;
      return true;
    }
    return false;
  }
  std::atomic_ref<T> ref(*p);
  T cur = ref.load(std::memory_order_relaxed);
  while (val < cur) {
    if (ref.compare_exchange_weak(cur, val, std::memory_order_relaxed))
      return true;
  }
  return false;
}

// Atomically: if (*p == expected) *p = desired. Returns true on success.
template <typename T>
inline bool atomic_cas(T* p, T expected, T desired) noexcept {
  if (!concurrent_execution()) {
    if (*p == expected) {
      *p = desired;
      return true;
    }
    return false;
  }
  std::atomic_ref<T> ref(*p);
  return ref.compare_exchange_strong(expected, desired,
                                     std::memory_order_relaxed);
}

// Atomic floating-point accumulate.
template <typename T>
inline void atomic_add(T* p, T val) noexcept {
  if (!concurrent_execution()) {
    *p += val;
    return;
  }
  std::atomic_ref<T> ref(*p);
  T cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + val, std::memory_order_relaxed)) {
  }
}

// Relaxed atomic flag set on a byte array.
inline void atomic_set_flag(std::uint8_t* p) noexcept {
  if (!concurrent_execution()) {
    *p = 1;
    return;
  }
  std::atomic_ref<std::uint8_t> ref(*p);
  ref.store(1, std::memory_order_relaxed);
}

}  // namespace gstore::algo
