// k-core decomposition for a fixed k — an extension algorithm showcasing a
// *shrinking* working set: vertices are peeled until every remaining vertex
// has at least k live neighbours. Exercises the engine's selective fetch
// from the opposite direction of BFS (tiles become unnecessary as their
// vertex ranges die off).
//
// Undirected graphs only (the classical definition).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

class TileKCore final : public store::TileAlgorithm {
 public:
  explicit TileKCore(graph::degree_t k) : k_(k) {}

  std::string name() const override { return "kcore"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  bool tile_useful_next(std::uint32_t i, std::uint32_t j) const override;

  // True if v survives in the k-core.
  const std::vector<std::uint8_t>& alive() const noexcept { return alive_; }
  std::uint64_t core_size() const;

 private:
  graph::degree_t k_;
  unsigned tile_bits_ = 16;
  std::uint64_t killed_this_iter_ = 0;
  std::vector<std::uint8_t> alive_;
  std::vector<graph::degree_t> live_degree_;  // recomputed every iteration
  // A tile row stays relevant while it contains any alive vertex.
  std::vector<std::uint8_t> row_alive_;
};

// In-memory reference: classic peeling. Returns the alive bitmap.
std::vector<std::uint8_t> ref_kcore(const graph::EdgeList& el, graph::degree_t k);

}  // namespace gstore::algo
