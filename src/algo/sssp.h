// Single-source shortest paths — the extension algorithm (paper §IX plans
// broader algorithm support; SSSP exercises frontier-driven selective fetch
// with non-monotone metadata, unlike BFS).
//
// The 4-byte tile tuple has no room for weights, so weights are derived
// deterministically from the endpoint pair (hash → [1, 16]); the in-memory
// Dijkstra reference uses the same function, keeping validation exact.
// Relaxation is Bellman-Ford style with per-tile-row activity flags.
//
// Priority mode (docs/SCHEDULING.md) turns this into delta-stepping over
// tiles: each tile row tracks the minimum un-drained candidate distance,
// tile_priority buckets it by floor(dist/delta), and the engine drains the
// lowest bucket first — so the wavefront's tiles are fetched before
// far-from-the-source tiles that a grid sweep would stream every iteration.
// Final distances are bit-identical to grid order: relaxation is a monotone
// min over left-associated float path sums, so the converged fixpoint does
// not depend on the order relaxations arrive in.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

// Deterministic pseudo-weight in [1,16], symmetric in its arguments.
inline float edge_weight(graph::vid_t u, graph::vid_t v) noexcept {
  const graph::vid_t lo = u < v ? u : v;
  const graph::vid_t hi = u < v ? v : u;
  std::uint64_t x = (static_cast<std::uint64_t>(lo) << 32) | hi;
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 33;
  return 1.0f + static_cast<float>(x % 16);
}

class TileSssp final : public store::TileAlgorithm {
 public:
  static constexpr float kInf = std::numeric_limits<float>::infinity();

  explicit TileSssp(graph::vid_t root) : root_(root) {}

  std::string name() const override { return "sssp"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  bool tile_useful_next(std::uint32_t i, std::uint32_t j) const override;

  // Delta-stepping hooks (priority mode).
  std::uint32_t tile_priority(std::uint32_t i, std::uint32_t j) const override;
  void begin_round(std::uint32_t round, std::uint32_t bucket) override;
  bool end_round(std::uint32_t round, std::uint32_t bucket) override;
  std::uint64_t last_round_updates() const override { return relaxed_; }
  bool dirty_rows(std::vector<std::uint32_t>& out) const override;
  bool reactivate(const tile::TileStore& store,
                  std::span<const std::uint64_t> delta_tiles) override;

  // Delta-stepping bucket width. Weights are in [1, 16], so the default
  // groups a few hops per bucket; smaller deltas order more strictly (fewer
  // wasted relaxations, more rounds), larger ones approach grid behaviour.
  void set_delta(float delta) { delta_ = delta; }

  const std::vector<float>& distances() const noexcept { return dist_; }

 private:
  void relax(graph::vid_t to, float cand);
  std::uint32_t bucket_of(float d) const;

  graph::vid_t root_;
  bool symmetric_ = true;
  bool in_edges_ = false;
  unsigned tile_bits_ = 16;
  float delta_ = 8.0f;
  std::uint64_t relaxed_ = 0;
  std::vector<float> dist_;
  std::vector<std::uint8_t> active_row_cur_;   // row had a distance drop last iter
  std::vector<std::uint8_t> active_row_next_;
  // Priority-mode state: per tile-row minimum un-drained candidate distance
  // (kInf = nothing pending). relax() lowers it; begin_round clears it for
  // the rows whose bucket the round drains, so in-round relaxations re-arm
  // them for a later round.
  std::vector<float> row_pending_;
  std::vector<std::uint32_t> drained_rows_;  // rows cleared by begin_round
  std::vector<std::uint32_t> dirty_rows_;    // rows whose priority changed
};

}  // namespace gstore::algo
