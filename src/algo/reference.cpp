#include "algo/reference.h"

#include <limits>
#include <numeric>
#include <queue>

#include "algo/sssp.h"

namespace gstore::algo {

std::vector<std::int32_t> ref_bfs(const graph::EdgeList& el, graph::vid_t root) {
  const graph::Csr csr = graph::Csr::build(el);
  std::vector<std::int32_t> depth(el.vertex_count(), -1);
  std::queue<graph::vid_t> q;
  depth[root] = 0;
  q.push(root);
  while (!q.empty()) {
    const graph::vid_t v = q.front();
    q.pop();
    for (graph::vid_t w : csr.neighbors(v)) {
      if (depth[w] == -1) {
        depth[w] = depth[v] + 1;
        q.push(w);
      }
    }
  }
  return depth;
}

std::vector<double> ref_pagerank(const graph::EdgeList& el,
                                 std::uint32_t iterations, double damping) {
  const graph::vid_t n = el.vertex_count();
  const std::vector<graph::degree_t> deg = el.degrees();
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const graph::Edge& e : el.edges()) {
      if (e.src == e.dst) continue;  // converter drops self loops
      if (deg[e.src] > 0) next[e.dst] += rank[e.src] / deg[e.src];
      if (el.kind() == graph::GraphKind::kUndirected && deg[e.dst] > 0)
        next[e.src] += rank[e.dst] / deg[e.dst];
    }
    const double base = (1.0 - damping) / n;
    for (graph::vid_t v = 0; v < n; ++v) rank[v] = base + damping * next[v];
  }
  return rank;
}

namespace {
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), graph::vid_t{0});
  }
  graph::vid_t find(graph::vid_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(graph::vid_t a, graph::vid_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // keep the smaller id as root
    parent_[b] = a;
  }

 private:
  std::vector<graph::vid_t> parent_;
};
}  // namespace

std::vector<graph::vid_t> ref_wcc(const graph::EdgeList& el) {
  UnionFind uf(el.vertex_count());
  for (const graph::Edge& e : el.edges()) uf.unite(e.src, e.dst);
  // Because unite() always roots at the smaller id, find() yields the
  // component's minimum vertex id.
  std::vector<graph::vid_t> label(el.vertex_count());
  for (graph::vid_t v = 0; v < el.vertex_count(); ++v) label[v] = uf.find(v);
  return label;
}

std::vector<float> ref_sssp(const graph::EdgeList& el, graph::vid_t root) {
  const graph::Csr csr = graph::Csr::build(el);
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(el.vertex_count(), kInf);
  using Item = std::pair<float, graph::vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[root] = 0.0f;
  pq.emplace(0.0f, root);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (graph::vid_t w : csr.neighbors(v)) {
      if (v == w) continue;  // self loops carry no useful weight
      const float nd = d + edge_weight(v, w);
      if (nd < dist[w]) {
        dist[w] = nd;
        pq.emplace(nd, w);
      }
    }
  }
  return dist;
}

}  // namespace gstore::algo
