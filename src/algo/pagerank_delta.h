// Push-based PageRank-delta (Gauss–Southwell residual propagation) — the
// residual-mass workload the priority scheduler exists for (ROADMAP item 2,
// docs/SCHEDULING.md).
//
// Instead of power iteration over the whole graph (TilePageRank), every
// vertex carries a residual: un-propagated probability mass. Draining a
// vertex moves its residual into its rank and pushes damping·residual/degree
// to each neighbour. Work therefore concentrates where mass still moves —
// per-tile-row residual mass is the priority oracle, and the engine's
// worklist drains heavy tiles first while converged regions of the graph are
// never fetched again.
//
// Determinism: residuals, ranks, and pushes are all uint64 fixed-point
// (kFxBits fractional bits). Integer atomic adds commute exactly, so a run's
// result is independent of thread count and tile dispatch order *within* a
// schedule. Across schedules (grid vs priority) drain order differs, which
// changes where the per-drain truncation to fixed point lands — results
// agree to within the truncation tolerance, not bit-exactly; the property
// tests bound the difference. Total residual shrinks geometrically (each
// drain removes res and re-injects at most damping·res), so termination at
// any tolerance is guaranteed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/degree.h"
#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

struct PageRankDeltaOptions {
  double damping = 0.85;
  // Stop once the total un-drained residual mass falls below this fraction
  // of the total rank mass (1.0).
  double tolerance = 1e-7;
};

class TilePageRankDelta final : public store::TileAlgorithm {
 public:
  // Fixed-point scale: residual 1.0 == 1 << kFxBits. 40 fractional bits
  // leave 24 integer bits — total mass is 1.0, so overflow is unreachable.
  static constexpr unsigned kFxBits = 40;

  explicit TilePageRankDelta(PageRankDeltaOptions options = {})
      : options_(options) {}

  std::string name() const override { return "pagerank-delta"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  bool tile_useful_next(std::uint32_t i, std::uint32_t j) const override;

  std::uint32_t tile_priority(std::uint32_t i, std::uint32_t j) const override;
  void begin_round(std::uint32_t round, std::uint32_t bucket) override;
  bool end_round(std::uint32_t round, std::uint32_t bucket) override;
  std::uint64_t last_round_updates() const override { return drained_; }
  bool dirty_rows(std::vector<std::uint32_t>& out) const override;

  // Final ranks: drained mass plus whatever residual is still pending (it
  // would all land in the rank eventually, so counting it tightens the
  // truncation error).
  std::vector<float> ranks() const;
  // Total un-drained residual mass, as a fraction of 1.0.
  double residual_mass() const;
  std::uint32_t rounds_run() const noexcept { return rounds_; }

 private:
  void drain_rows_upto(std::uint32_t bucket);
  std::uint32_t bucket_of_row(std::uint32_t r) const;
  void deposit(graph::vid_t v, std::uint64_t amount_fx);

  PageRankDeltaOptions options_;
  bool symmetric_ = true;
  bool in_edges_ = false;
  unsigned tile_bits_ = 16;
  graph::vid_t n_ = 0;
  std::uint32_t rounds_ = 0;
  std::uint64_t drained_ = 0;  // vertices drained in the last round
  graph::CompressedDegrees degrees_;
  std::vector<std::uint64_t> rank_fx_;     // settled mass
  std::vector<std::uint64_t> res_fx_;      // pending mass per vertex
  std::vector<std::uint64_t> push_fx_;     // per-edge push of drained vertices
  std::vector<std::uint64_t> row_res_fx_;  // pending mass per tile row
  // Rows whose vertices hold armed pushes for the in-progress round. The
  // grid scheduler builds its fetch list *after* begin_iteration has drained
  // the residuals into pushes, so tile_needed must read this, not the
  // (already-zeroed) row residuals.
  std::vector<std::uint8_t> row_armed_;
  std::vector<std::uint32_t> drained_rows_;
  std::vector<std::uint32_t> dirty_rows_;
};

}  // namespace gstore::algo
