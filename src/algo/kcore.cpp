#include "algo/kcore.h"

#include <algorithm>

#include "algo/atomics.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "util/status.h"

namespace gstore::algo {

void TileKCore::init(const tile::TileStore& store) {
  GS_CHECK_MSG(store.meta().symmetric(),
               "k-core requires an undirected (symmetric) tile store");
  tile_bits_ = store.meta().tile_bits;
  alive_.assign(store.vertex_count(), 1);
  live_degree_.assign(store.vertex_count(), 0);
  row_alive_.assign(store.grid().p(), 1);
  killed_this_iter_ = 0;
}

void TileKCore::begin_iteration(std::uint32_t) {
  std::fill(live_degree_.begin(), live_degree_.end(), 0);
  killed_this_iter_ = 0;
}

void TileKCore::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileKCore::process_block(const tile::EdgeBlock& block) {
  block.prefetch_src(alive_.data());
  block.prefetch_dst(alive_.data());
  for (std::uint32_t k = 0; k < block.size; ++k) {
    const graph::vid_t a = block.src[k];
    const graph::vid_t b = block.dst[k];
    if (!alive_[a] || !alive_[b]) continue;
    // Each stored tuple is one undirected edge: counts toward both ends.
    std::atomic_ref<graph::degree_t>(live_degree_[a])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<graph::degree_t>(live_degree_[b])
        .fetch_add(1, std::memory_order_relaxed);
  }
}

bool TileKCore::end_iteration(std::uint32_t) {
  // Peel every vertex whose live degree fell below k, then refresh the
  // per-row liveness used for selective fetch.
  const std::uint32_t p = static_cast<std::uint32_t>(row_alive_.size());
  std::vector<std::uint8_t> next_row_alive(p, 0);
  for (graph::vid_t v = 0; v < alive_.size(); ++v) {
    if (!alive_[v]) continue;
    if (live_degree_[v] < k_) {
      alive_[v] = 0;
      ++killed_this_iter_;
    } else {
      next_row_alive[v >> tile_bits_] = 1;
    }
  }
  row_alive_.swap(next_row_alive);
  return killed_this_iter_ > 0;
}

bool TileKCore::tile_needed(std::uint32_t i, std::uint32_t j) const {
  // A tile can only contribute degree if both its ranges still hold alive
  // vertices... no: an edge needs both endpoints alive, and they live in
  // ranges i and j respectively, so both rows must be alive.
  return row_alive_[i] && row_alive_[j];
}

bool TileKCore::tile_useful_next(std::uint32_t i, std::uint32_t j) const {
  return row_alive_[i] && row_alive_[j];
}

std::uint64_t TileKCore::core_size() const {
  std::uint64_t n = 0;
  for (std::uint8_t a : alive_) n += a;
  return n;
}

std::vector<std::uint8_t> ref_kcore(const graph::EdgeList& el,
                                    graph::degree_t k) {
  GS_CHECK_MSG(el.kind() == graph::GraphKind::kUndirected,
               "k-core reference requires an undirected graph");
  const graph::Csr csr = graph::Csr::build(el);
  const graph::vid_t n = el.vertex_count();
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<graph::degree_t> deg(n);
  for (graph::vid_t v = 0; v < n; ++v) {
    deg[v] = 0;
    for (graph::vid_t w : csr.neighbors(v))
      if (w != v) ++deg[v];  // self loops are dropped by the converter
  }
  // Classic peeling with a worklist.
  std::vector<graph::vid_t> stack;
  for (graph::vid_t v = 0; v < n; ++v)
    if (deg[v] < k) {
      alive[v] = 0;
      stack.push_back(v);
    }
  while (!stack.empty()) {
    const graph::vid_t v = stack.back();
    stack.pop_back();
    for (graph::vid_t w : csr.neighbors(v)) {
      if (!alive[w] || w == v) continue;
      if (--deg[w] < k) {
        alive[w] = 0;
        stack.push_back(w);
      }
    }
  }
  return alive;
}

}  // namespace gstore::algo
