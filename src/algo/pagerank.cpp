#include "algo/pagerank.h"

#include <algorithm>
#include <cmath>

#include "algo/atomics.h"
#include "util/status.h"

namespace gstore::algo {

void TilePageRank::init(const tile::TileStore& store) {
  const auto& meta = store.meta();
  symmetric_ = meta.symmetric();
  in_edges_ = meta.in_edges();
  n_ = store.vertex_count();
  degrees_ = store.load_degrees();
  GS_CHECK_MSG(degrees_.size() == n_, "degree array size mismatch");

  const float init_rank = 1.0f / static_cast<float>(n_);
  rank_.assign(n_, init_rank);
  contrib_.assign(n_, 0.0f);
  incoming_.assign(n_, 0.0f);
  iterations_ = 0;
}

void TilePageRank::begin_iteration(std::uint32_t) {
  // Precomputing rank/degree once per vertex (instead of per edge) keeps the
  // inner loop to one load + one atomic add per endpoint.
  for (graph::vid_t v = 0; v < n_; ++v) {
    const graph::degree_t d = degrees_[v];
    contrib_[v] = d == 0 ? 0.0f : rank_[v] / static_cast<float>(d);
  }
  std::fill(incoming_.begin(), incoming_.end(), 0.0f);
}

void TilePageRank::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TilePageRank::process_block(const tile::EdgeBlock& block) {
  const graph::vid_t* a = block.src;
  const graph::vid_t* b = block.dst;
  const std::uint32_t n = block.size;
  if (symmetric_) {
    // One stored tuple represents both directions of an undirected edge.
    block.prefetch_src(contrib_.data());
    block.prefetch_dst(contrib_.data());
    block.prefetch_src(incoming_.data());
    block.prefetch_dst(incoming_.data());
    for (std::uint32_t k = 0; k < n; ++k) {
      atomic_add(&incoming_[b[k]], contrib_[a[k]]);
      atomic_add(&incoming_[a[k]], contrib_[b[k]]);
    }
  } else if (in_edges_) {
    // Tuple is (dst, src): a receives from b.
    block.prefetch_dst(contrib_.data());
    block.prefetch_src(incoming_.data());
    for (std::uint32_t k = 0; k < n; ++k)
      atomic_add(&incoming_[a[k]], contrib_[b[k]]);
  } else {
    block.prefetch_src(contrib_.data());
    block.prefetch_dst(incoming_.data());
    for (std::uint32_t k = 0; k < n; ++k)
      atomic_add(&incoming_[b[k]], contrib_[a[k]]);
  }
}

bool TilePageRank::end_iteration(std::uint32_t) {
  const float base =
      static_cast<float>((1.0 - options_.damping) / static_cast<double>(n_));
  double max_delta = 0.0;
  for (graph::vid_t v = 0; v < n_; ++v) {
    const float next =
        base + static_cast<float>(options_.damping) * incoming_[v];
    max_delta = std::max(max_delta,
                         static_cast<double>(std::fabs(next - rank_[v])));
    rank_[v] = next;
  }
  last_delta_ = max_delta;
  ++iterations_;
  if (iterations_ >= options_.max_iterations) return false;
  if (options_.tolerance > 0.0 && max_delta < options_.tolerance) return false;
  return true;
}

}  // namespace gstore::algo
