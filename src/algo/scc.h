// Strongly connected components over dual tile stores.
//
// The paper (§IV-A) observes that SCC "needs both in-edges and out-edges",
// which single-direction stores cannot serve — and positions tile-based
// storage as the answer. This module demonstrates the dual-store pattern:
// one store holds out-edges, a second holds in-edges (both half-size), and
// SCC runs forward-backward reachability (Fleischer/Hendrickson/Pınar-style
// FB algorithm, the paper's reference [10]) through the SCR engine:
//
//   repeat until every vertex is assigned:
//     pick an unassigned pivot (highest degree first),
//     FW  = vertices reachable from the pivot (out-store, masked),
//     BW  = vertices that reach the pivot (in-store, masked),
//     SCC(pivot) = FW ∩ BW.
//
// Worst case is O(#SCC) engine traversals — fine for power-law graphs whose
// mass sits in one giant SCC plus small/singleton components (a trim pass
// assigns zero-degree vertices in bulk).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "store/scr_engine.h"
#include "tile/tile_file.h"

namespace gstore::algo {

// Mask-restricted reachability: BFS-like traversal that follows stored
// tuples as (from, to) pairs verbatim — on an out-edge store this yields
// forward reachability, on an in-edge store backward reachability.
class TileReach final : public store::TileAlgorithm {
 public:
  TileReach(graph::vid_t root, const std::vector<std::uint8_t>* mask)
      : root_(root), mask_(mask) {}

  std::string name() const override { return "reach"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  bool tile_useful_next(std::uint32_t i, std::uint32_t j) const override;

  const std::vector<std::uint8_t>& reached() const noexcept { return reached_; }

 private:
  graph::vid_t root_;
  const std::vector<std::uint8_t>* mask_;
  unsigned tile_bits_ = 16;
  std::uint64_t new_reached_ = 0;
  std::vector<std::uint8_t> reached_;
  std::vector<std::uint8_t> frontier_row_cur_;
  std::vector<std::uint8_t> frontier_row_next_;
};

struct SccOptions {
  store::EngineConfig engine;
};

// Runs SCC across the two stores. `out_store` must hold out-edges and
// `in_store` in-edges of the same directed graph. Returns, per vertex, the
// id (smallest member) of its strongly connected component.
std::vector<graph::vid_t> tile_scc(tile::TileStore& out_store,
                                   tile::TileStore& in_store,
                                   SccOptions options = {});

// In-memory reference (iterative Tarjan), labels = smallest member id.
std::vector<graph::vid_t> ref_scc(const graph::EdgeList& el);

}  // namespace gstore::algo
