#include "algo/pagerank_delta.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "algo/atomics.h"
#include "util/status.h"

namespace gstore::algo {

namespace {
constexpr double fx_scale() {
  return static_cast<double>(1ull << TilePageRankDelta::kFxBits);
}
}  // namespace

void TilePageRankDelta::init(const tile::TileStore& store) {
  const auto& meta = store.meta();
  symmetric_ = meta.symmetric();
  in_edges_ = meta.in_edges();
  tile_bits_ = meta.tile_bits;
  n_ = store.vertex_count();
  degrees_ = store.load_degrees();
  GS_CHECK_MSG(degrees_.size() == n_, "degree array size mismatch");

  // Seed: the classic push formulation starts every vertex with residual
  // (1-d)/n and rank 0; rank converges to the PageRank fixpoint as the
  // residual pool drains.
  const auto seed_fx = static_cast<std::uint64_t>(
      (1.0 - options_.damping) / static_cast<double>(n_) * fx_scale());
  rank_fx_.assign(n_, 0);
  res_fx_.assign(n_, seed_fx);
  push_fx_.assign(n_, 0);
  row_res_fx_.assign(store.grid().p(), 0);
  row_armed_.assign(store.grid().p(), 0);
  for (graph::vid_t v = 0; v < n_; ++v)
    row_res_fx_[v >> tile_bits_] += res_fx_[v];
  drained_rows_.clear();
  dirty_rows_.clear();
  rounds_ = 0;
  drained_ = 0;
}

std::uint32_t TilePageRankDelta::bucket_of_row(std::uint32_t r) const {
  const std::uint64_t m = row_res_fx_[r];
  if (m == 0) return kPriorityIdle;
  // Exponent bucketing: more pending mass = smaller bucket = drained
  // earlier. Mass >= 1.0 lands in bucket 0; mass ~2^-k in bucket k. The
  // smallest representable residual bounds the bucket range at kFxBits.
  const unsigned width = std::bit_width(m);
  return width > kFxBits ? 0 : kFxBits + 1 - width;
}

// Moves the residual of every vertex in rows at or under `bucket` into its
// rank and arms the per-edge push amounts. Runs single-threaded between
// rounds; the amounts are read-only while tiles process.
void TilePageRankDelta::drain_rows_upto(std::uint32_t bucket) {
  drained_rows_.clear();
  drained_ = 0;
  const double d = options_.damping;
  for (std::uint32_t r = 0; r < row_res_fx_.size(); ++r) {
    if (row_res_fx_[r] == 0 || bucket_of_row(r) > bucket) continue;
    const graph::vid_t lo = static_cast<graph::vid_t>(r) << tile_bits_;
    const auto hi = static_cast<graph::vid_t>(std::min<std::uint64_t>(
        n_, (static_cast<std::uint64_t>(r) + 1) << tile_bits_));
    for (graph::vid_t v = lo; v < hi; ++v) {
      const std::uint64_t res = res_fx_[v];
      if (res == 0) continue;
      rank_fx_[v] += res;
      res_fx_[v] = 0;
      ++drained_;
      const graph::degree_t deg = degrees_[v];
      // Per-edge push amount. deg == 0 (dangling) propagates nothing, like
      // TilePageRank's zero contrib. Computed from exact integers in double,
      // so the value is schedule-independent for a given drain time.
      push_fx_[v] =
          deg == 0 ? 0
                   : static_cast<std::uint64_t>(
                         d * static_cast<double>(res) / static_cast<double>(deg));
    }
    // In-flight pushes during the round re-add to the row; the drained mass
    // itself is gone.
    row_res_fx_[r] = 0;
    row_armed_[r] = 1;
    drained_rows_.push_back(r);
  }
}

void TilePageRankDelta::begin_round(std::uint32_t, std::uint32_t bucket) {
  drain_rows_upto(bucket);
}

void TilePageRankDelta::begin_iteration(std::uint32_t) {
  // Grid mode: no bucket discrimination — drain every pending row, so one
  // iteration is one full residual sweep.
  drain_rows_upto(kPriorityIdle - 1);
}

void TilePageRankDelta::deposit(graph::vid_t v, std::uint64_t amount_fx) {
  if (!concurrent_execution()) {
    res_fx_[v] += amount_fx;
    row_res_fx_[v >> tile_bits_] += amount_fx;
    return;
  }
  std::atomic_ref<std::uint64_t>(res_fx_[v])
      .fetch_add(amount_fx, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(row_res_fx_[v >> tile_bits_])
      .fetch_add(amount_fx, std::memory_order_relaxed);
}

void TilePageRankDelta::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TilePageRankDelta::process_block(const tile::EdgeBlock& block) {
  const graph::vid_t* a = block.src;
  const graph::vid_t* b = block.dst;
  const std::uint32_t n = block.size;
  block.prefetch_src(push_fx_.data());
  block.prefetch_dst(push_fx_.data());
  if (symmetric_) {
    // One stored tuple carries both directions of the undirected edge.
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint64_t pa = push_fx_[a[k]];
      if (pa != 0) deposit(b[k], pa);
      const std::uint64_t pb = push_fx_[b[k]];
      if (pb != 0) deposit(a[k], pb);
    }
  } else if (in_edges_) {
    // Tuple is (dst, src): a receives from b.
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint64_t pb = push_fx_[b[k]];
      if (pb != 0) deposit(a[k], pb);
    }
  } else {
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint64_t pa = push_fx_[a[k]];
      if (pa != 0) deposit(b[k], pa);
    }
  }
}

bool TilePageRankDelta::end_round(std::uint32_t, std::uint32_t) {
  // Disarm the drained vertices' pushes — their mass is spent; tiles
  // processed in later rounds must not re-push it.
  for (const std::uint32_t r : drained_rows_) {
    const graph::vid_t lo = static_cast<graph::vid_t>(r) << tile_bits_;
    const auto hi = static_cast<graph::vid_t>(std::min<std::uint64_t>(
        n_, (static_cast<std::uint64_t>(r) + 1) << tile_bits_));
    std::fill(push_fx_.begin() + lo, push_fx_.begin() + hi, 0);
    row_armed_[r] = 0;
  }
  // Priorities changed for drained rows and for any row now holding mass
  // (receivers of this round's pushes included).
  dirty_rows_ = drained_rows_;
  std::uint64_t total = 0;
  for (std::uint32_t r = 0; r < row_res_fx_.size(); ++r) {
    if (row_res_fx_[r] != 0) dirty_rows_.push_back(r);
    total += row_res_fx_[r];
  }
  ++rounds_;
  const auto tol_fx =
      static_cast<std::uint64_t>(options_.tolerance * fx_scale());
  return total > tol_fx;
}

bool TilePageRankDelta::end_iteration(std::uint32_t iter) {
  return end_round(iter, 0);
}

bool TilePageRankDelta::tile_needed(std::uint32_t i, std::uint32_t j) const {
  // A tile has work in the current round only if its from-side rows hold
  // armed pushes (same row selection as SSSP/BFS: the stored tuple's
  // propagation direction).
  if (row_armed_[in_edges_ ? j : i] != 0) return true;
  return symmetric_ && row_armed_[j] != 0;
}

bool TilePageRankDelta::tile_useful_next(std::uint32_t i,
                                         std::uint32_t j) const {
  // Useful next = its from-rows will hold mass to drain: pending residual.
  if (row_res_fx_[in_edges_ ? j : i] != 0) return true;
  return symmetric_ && row_res_fx_[j] != 0;
}

std::uint32_t TilePageRankDelta::tile_priority(std::uint32_t i,
                                               std::uint32_t j) const {
  std::uint32_t p = bucket_of_row(in_edges_ ? j : i);
  if (symmetric_) p = std::min(p, bucket_of_row(j));
  return p;
}

bool TilePageRankDelta::dirty_rows(std::vector<std::uint32_t>& out) const {
  out.insert(out.end(), dirty_rows_.begin(), dirty_rows_.end());
  return true;
}

std::vector<float> TilePageRankDelta::ranks() const {
  std::vector<float> out(n_);
  for (graph::vid_t v = 0; v < n_; ++v)
    out[v] = static_cast<float>(
        static_cast<double>(rank_fx_[v] + res_fx_[v]) / fx_scale());
  return out;
}

double TilePageRankDelta::residual_mass() const {
  std::uint64_t total = 0;
  for (const std::uint64_t m : row_res_fx_) total += m;
  return static_cast<double>(total) / fx_scale();
}

}  // namespace gstore::algo
