#include "algo/cc.h"

#include <numeric>
#include <unordered_set>

#include "algo/atomics.h"

namespace gstore::algo {

void TileWcc::init(const tile::TileStore& store) {
  tile_bits_ = store.meta().tile_bits;
  label_.resize(store.vertex_count());
  std::iota(label_.begin(), label_.end(), graph::vid_t{0});
  changed_ = 0;
  iteration_ = 0;
}

void TileWcc::begin_iteration(std::uint32_t) { changed_ = 0; }

void TileWcc::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileWcc::process_block(const tile::EdgeBlock& block) {
  block.prefetch_src(label_.data());
  block.prefetch_dst(label_.data());
  std::uint64_t local_changed = 0;
  for (std::uint32_t k = 0; k < block.size; ++k) {
    const graph::vid_t a = block.src[k];
    const graph::vid_t b = block.dst[k];
    // Snapshot both labels, then CAS-min the larger side down.
    const graph::vid_t la = atomic_load(&label_[a]);
    const graph::vid_t lb = atomic_load(&label_[b]);
    if (la < lb) {
      if (atomic_min(&label_[b], la)) ++local_changed;
    } else if (lb < la) {
      if (atomic_min(&label_[a], lb)) ++local_changed;
    }
  }
  if (local_changed > 0)
    std::atomic_ref<std::uint64_t>(changed_).fetch_add(
        local_changed, std::memory_order_relaxed);
}

bool TileWcc::end_iteration(std::uint32_t) {
  ++iteration_;
  return changed_ > 0;
}

bool TileWcc::tile_needed(std::uint32_t, std::uint32_t) const {
  // First iteration touches everything; afterwards we keep scanning the
  // whole graph while labels move (sequential-bandwidth-friendly, per the
  // paper). Convergence is detected globally via `changed_`.
  return true;
}

std::uint64_t TileWcc::component_count() const {
  std::unordered_set<graph::vid_t> roots;
  for (std::size_t v = 0; v < label_.size(); ++v)
    if (label_[v] == v) roots.insert(static_cast<graph::vid_t>(v));
  return roots.size();
}

}  // namespace gstore::algo
